package mdqa

import (
	"iter"
	"sort"

	"repro/internal/eval"
	"repro/internal/quality"
	"repro/internal/storage"
)

// Snapshot is a frozen, consistent view of a contextual instance:
// chased ontology data, mapped input, quality predicates and quality
// versions as of one Apply. It is immutable and safe for any number
// of concurrent readers, and its accessors stream — relations and
// query answers are exposed as iter.Seq iterators, so consumers can
// stop early or process tuples one at a time without materializing
// whole answer sets.
type Snapshot struct {
	inst        *storage.Instance
	versionPred map[string]string
	vorder      []string
	ver         Version // metadata of the version this view reads
	hasVer      bool    // false when the session's history is disabled
}

// Version returns the metadata of the session version this snapshot
// reads — sequence number, wall time, violation state, scores. ok is
// false when the owning session has history disabled (the snapshot's
// data accessors still work).
func (s *Snapshot) Version() (Version, bool) { return s.ver, s.hasVer }

// Instance returns the underlying frozen instance, for interop with
// formatting helpers (FormatRelation) and direct relation access.
func (s *Snapshot) Instance() *Instance { return s.inst }

// Relations lists the snapshot's relation names sorted
// lexicographically — a deterministic order independent of relation
// creation order (which can vary with the engine's parallelism
// degree).
func (s *Snapshot) Relations() []string {
	names := s.inst.RelationNames()
	sort.Strings(names)
	return names
}

// Versioned lists the original relations with defined quality
// versions, in declaration order.
func (s *Snapshot) Versioned() []string { return append([]string(nil), s.vorder...) }

// NumTuples returns the tuple count of one relation, or
// ErrUnknownRelation.
func (s *Snapshot) NumTuples(rel string) (int, error) {
	r := s.inst.Relation(rel)
	if r == nil {
		return 0, &UnknownRelationError{Relation: rel}
	}
	return r.Len(), nil
}

// Tuples streams the tuples of one relation sorted lexicographically
// by their terms. The order is documented and deterministic: it
// depends only on the snapshot's contents, never on derivation or
// insertion order, so output built from a stream (golden CLI files,
// reports) is stable across engine parallelism degrees. The error is
// ErrUnknownRelation when the relation does not exist in the
// snapshot. The yielded slices are owned by the snapshot: copy before
// retaining.
func (s *Snapshot) Tuples(rel string) (iter.Seq[[]Term], error) {
	r := s.inst.Relation(rel)
	if r == nil {
		return nil, &UnknownRelationError{Relation: rel}
	}
	return streamSorted(r), nil
}

// VersionTuples streams the quality version of an original relation
// (rel is the original name, e.g. "Measurements"; the stream reads
// the version predicate, e.g. "Measurements_q"), sorted
// lexicographically like Tuples. A version whose rules derived
// nothing streams zero tuples; a relation with no declared version is
// ErrUnknownRelation.
func (s *Snapshot) VersionTuples(rel string) (iter.Seq[[]Term], error) {
	pred, ok := s.versionPred[rel]
	if !ok {
		return nil, &UnknownRelationError{Relation: rel}
	}
	r := s.inst.Relation(pred)
	if r == nil {
		// The version predicate exists but derived no tuples, so the
		// relation was never created: stream nothing.
		return func(func([]Term) bool) {}, nil
	}
	return streamSorted(r), nil
}

// streamSorted yields a relation's tuples in sorted order.
func streamSorted(r *storage.Relation) iter.Seq[[]Term] {
	return func(yield func([]Term) bool) {
		for _, tup := range r.SortedTuples() {
			if !yield(tup) {
				return
			}
		}
	}
}

// RewriteClean rewrites a query over the original schema into the
// query Q^q over quality versions (the paper's problem (b)): every
// atom whose predicate has a defined quality version is renamed to
// the version predicate.
func (s *Snapshot) RewriteClean(q *Query) *Query {
	return quality.RewriteCleanQuery(q, s.versionPred)
}

// Answers streams the answers of a conjunctive query evaluated
// directly over the snapshot (closed-world, including answers that
// contain labeled nulls). Each element pairs an answer with a nil
// error; an evaluation failure is yielded once as a final (zero,
// err) element. Answers are deduplicated and produced as the join
// plan finds them — breaking out of the loop stops the evaluation.
func (s *Snapshot) Answers(q *Query) iter.Seq2[Answer, error] {
	return streamQuery(q, s.inst, false, nil)
}

// CleanAnswers streams the clean answers of a query over the original
// schema (the paper's quality query answering): the query is
// rewritten over the quality versions, evaluated on the contextual
// snapshot, and answers containing labeled nulls are dropped (certain
// answers). Error handling follows Answers.
func (s *Snapshot) CleanAnswers(q *Query) iter.Seq2[Answer, error] {
	return streamQuery(s.RewriteClean(q), s.inst, true, nil)
}

// AnswersCached is Answers with join plans served from (and recorded
// into) pc — the fast path for ad-hoc queries asked repeatedly against
// successive snapshots of one session, such as mdserve's ?q= answers.
// A nil cache behaves exactly like Answers.
func (s *Snapshot) AnswersCached(q *Query, pc *PlanCache) iter.Seq2[Answer, error] {
	return streamQuery(q, s.inst, false, pc)
}

// CleanAnswersCached is CleanAnswers with join plans served from pc;
// see AnswersCached.
func (s *Snapshot) CleanAnswersCached(q *Query, pc *PlanCache) iter.Seq2[Answer, error] {
	return streamQuery(s.RewriteClean(q), s.inst, true, pc)
}

// Explain returns the compiled join plan for the query as EXPLAIN
// text — chosen atom order, the planner's candidate estimates and the
// index positions each step probes — without evaluating it. clean
// first rewrites the query over the quality versions, mirroring
// CleanAnswers. pc may be nil; when set, the plan comes from (and
// lands in) the cache, so an explain followed by the same query shares
// one compilation.
func (s *Snapshot) Explain(q *Query, clean bool, pc *PlanCache) (string, error) {
	if clean {
		q = s.RewriteClean(q)
	}
	if err := q.Validate(); err != nil {
		return "", err
	}
	plan := pc.QueryPlan(s.inst, q.Body)
	return plan.Explain(), nil
}

// streamQuery adapts the engine's callback-style streaming evaluation
// to an iter.Seq2, optionally dropping null-carrying answers. pc, when
// non-nil, supplies cached join plans.
func streamQuery(q *Query, db *storage.Instance, certainOnly bool, pc *PlanCache) iter.Seq2[Answer, error] {
	return func(yield func(Answer, error) bool) {
		var planner eval.QueryPlanner
		if pc != nil {
			planner = pc
		}
		err := eval.EvalQueryFuncPlanned(q, db, planner, func(ans Answer) bool {
			if certainOnly && ans.HasNull() {
				return true
			}
			return yield(ans, nil)
		})
		if err != nil {
			yield(Answer{}, err)
		}
	}
}
