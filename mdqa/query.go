package mdqa

import (
	"context"
	"fmt"

	"repro/internal/chase"
	"repro/internal/eval"
	"repro/internal/qa"
	"repro/internal/rewrite"
)

// Chase runs the chase over a compiled ontology: bottom-up data
// completion enforcing the dimensional rules (inventing labeled nulls
// for existential variables), EGDs (merging nulls, reporting hard
// conflicts) and negative constraints. The compiled instance is not
// modified. ctx is checked once per chase work unit (at most one
// dependency's discovery pass).
func Chase(ctx context.Context, comp *Compiled, opts ChaseOptions) (*ChaseResult, error) {
	return chase.Run(ctx, comp.Program, comp.Instance, opts)
}

// QueryEngine selects the certain-answer engine behind CertainAnswers.
type QueryEngine uint8

const (
	// EngineDeterministic is DeterministicWSQAns: the paper's
	// top-down resolution search. No materialization; the default.
	EngineDeterministic QueryEngine = iota
	// EngineChase materializes the chase and evaluates the query over
	// the result — the executable counterpart of WeaklyStickyQAns,
	// used as the reference oracle.
	EngineChase
	// EngineRewrite compiles the query to a union of conjunctive
	// queries via FO rewriting (sound and complete for upward-only
	// ontologies) and evaluates it over the extensional instance.
	EngineRewrite
)

// String names the engine.
func (e QueryEngine) String() string {
	switch e {
	case EngineChase:
		return "chase"
	case EngineRewrite:
		return "rewrite"
	default:
		return "det"
	}
}

// QueryEngineByName parses an engine name ("det", "chase",
// "rewrite").
func QueryEngineByName(name string) (QueryEngine, error) {
	switch name {
	case "det", "deterministic", "":
		return EngineDeterministic, nil
	case "chase":
		return EngineChase, nil
	case "rewrite":
		return EngineRewrite, nil
	default:
		return 0, fmt.Errorf("mdqa: unknown query engine %q (det, chase, rewrite)", name)
	}
}

// AnswerOptions configures CertainAnswers.
type AnswerOptions struct {
	// Engine selects the certain-answer algorithm.
	Engine QueryEngine
	// MaxDepth bounds resolution depth for EngineDeterministic
	// (0 derives a default from program and query size).
	MaxDepth int
	// Chase configures EngineChase's materialization.
	Chase ChaseOptions
	// AllowViolations lets EngineChase answer even when constraints
	// are violated (quality workflows inspect violations separately).
	AllowViolations bool
}

// CertainAnswers computes the certain answers of a conjunctive query
// over a compiled ontology — answers that hold in every model, i.e.
// contain no labeled nulls. The instance is not modified.
func CertainAnswers(ctx context.Context, comp *Compiled, q *Query, opts AnswerOptions) (*AnswerSet, error) {
	switch opts.Engine {
	case EngineChase:
		return qa.CertainAnswersViaChase(ctx, comp.Program, comp.Instance, q, qa.ChaseOptions{
			Chase:           opts.Chase,
			AllowViolations: opts.AllowViolations,
		})
	case EngineRewrite:
		return rewrite.Answer(ctx, comp.Program, comp.Instance, q, rewrite.Options{})
	default:
		return qa.Answer(ctx, comp.Program, comp.Instance, q, qa.Options{MaxDepth: opts.MaxDepth})
	}
}

// HasCertainAnswer decides a Boolean conjunctive query: does it hold
// in every model of the ontology and instance?
func HasCertainAnswer(ctx context.Context, comp *Compiled, q *Query, opts AnswerOptions) (bool, error) {
	if opts.Engine == EngineDeterministic {
		return qa.AnswerBool(ctx, comp.Program, comp.Instance, q, qa.Options{MaxDepth: opts.MaxDepth})
	}
	as, err := CertainAnswers(ctx, comp, q, opts)
	if err != nil {
		return false, err
	}
	return as.Len() > 0, nil
}

// EvalQuery evaluates a conjunctive query (with optional negation and
// comparisons, closed-world) directly over an instance, returning all
// answers including those containing labeled nulls. For streaming
// consumption prefer Snapshot.Answers.
func EvalQuery(q *Query, db *Instance) (*AnswerSet, error) {
	return eval.EvalQuery(q, db)
}
