package mdqa

import (
	"context"
	"fmt"
	"io"
	"testing"

	"repro/internal/bench"
	"repro/internal/gen"
	"repro/internal/wal"
)

// The benchmark and experiment harness behind cmd/mdbench, re-exported
// so tooling compiles against the facade alone. RunPerf additionally
// measures the facade's own assessment path (FacadeColdAssess /
// FacadeWarmApply) next to the engine-level numbers, pinning the
// facade's overhead in every BENCH_<n>.json snapshot.

// Experiment is one paper table/figure reproduction or complexity
// experiment.
type Experiment = bench.Experiment

// Experiments returns every registered experiment in report order.
func Experiments() []Experiment { return bench.All() }

// ExperimentByID finds one experiment.
func ExperimentByID(id string) (Experiment, bool) { return bench.ByID(id) }

// ExperimentIDs lists the registered experiment IDs.
func ExperimentIDs() []string { return bench.IDs() }

// PerfResult is one benchmark measurement (ns, allocs, bytes per op).
type PerfResult = bench.PerfResult

// ScaleRow is one row of the chase/QA scaling sweep.
type ScaleRow = bench.ScaleRow

// RunScaling runs the C1 scaling sweep at the given base sizes.
func RunScaling(sizes []int) ([]ScaleRow, error) { return bench.RunScaling(sizes) }

// WritePerfJSON writes benchmark results as deterministic JSON,
// annotated with the recording machine's shape ("_hardware": CPU
// count, GOMAXPROCS, OS/arch) so single-core parity runs are
// machine-distinguishable from real multi-core sweeps.
func WritePerfJSON(path string, results map[string]PerfResult) error {
	return bench.WritePerfJSON(path, results)
}

// Hardware identifies the machine a benchmark snapshot was recorded
// on.
type Hardware = bench.Hardware

// CurrentHardware probes the running machine.
func CurrentHardware() Hardware { return bench.CurrentHardware() }

// ReadPerfJSON reads a BENCH_<n>.json snapshot; the Hardware is nil
// for snapshots recorded before the annotation existed (BENCH_1–4).
func ReadPerfJSON(path string) (map[string]PerfResult, *Hardware, error) {
	return bench.ReadPerfJSON(path)
}

// Regression is one benchmark that got slower than a baseline allows.
type Regression = bench.Regression

// ComparePerf checks current results against a baseline snapshot for
// the given benchmark-name family prefixes and tolerance (0.30 =
// +30%), returning the regressions (worst first) and how many keys
// were compared.
func ComparePerf(current, baseline map[string]PerfResult, families []string, tolerance float64) ([]Regression, int) {
	return bench.ComparePerf(current, baseline, families, tolerance)
}

// PerfNames returns result names in sorted order.
func PerfNames(results map[string]PerfResult) []string { return bench.PerfNames(results) }

// RunPerfSweep measures the chase scaling benchmark and the cold/warm
// assessment pair at every requested parallelism level (1 = the exact
// sequential engine), keyed "<name>/n=<size>/p=<level>" — the
// parallel-vs-sequential speedup curve recorded per PR in
// BENCH_<n>.json — plus the repeated ad-hoc query pair
// (BenchmarkAdhocQuery, cache=off vs cache=on) at each size.
func RunPerfSweep(sizes, levels []int) (map[string]PerfResult, error) {
	out, err := bench.RunPerfSweep(sizes, levels)
	if err != nil {
		return nil, err
	}
	for _, n := range sizes {
		if err := adhocQueryPerf(out, n); err != nil {
			return nil, err
		}
		if err := asOfAnswersPerf(out, n); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RunDurablePerf measures the durable warm-apply path — the streaming
// workload's per-tick apply with write-ahead logging — at each fsync
// mode ("always", "interval", "async"), keyed
// "BenchmarkDurableWarmApply/n=<size>/fsync=<mode>". Next to the same
// size's BenchmarkWarmAssess the delta is each mode's durability tax.
func RunDurablePerf(sizes []int, modes []string) (map[string]PerfResult, error) {
	ms := make([]wal.SyncMode, len(modes))
	for i, m := range modes {
		var err error
		if ms[i], err = wal.ParseSyncMode(m); err != nil {
			return nil, err
		}
	}
	return bench.RunDurablePerf(sizes, ms)
}

// RunPerf measures the engine scaling benchmarks plus the facade
// assessment path at the given base sizes. Engine-level numbers come
// from the internal harness; FacadeColdAssess and FacadeWarmApply run
// the identical workload through the public NewContext/Assess and
// Prepare/NewSession/Apply entry points, so the two families are
// directly comparable — the facade must stay within noise of the
// engine.
func RunPerf(sizes []int) (map[string]PerfResult, error) {
	out, err := bench.RunPerf(sizes)
	if err != nil {
		return nil, err
	}
	for _, n := range sizes {
		if err := facadePerf(out, n); err != nil {
			return nil, err
		}
		if err := adhocQueryPerf(out, n); err != nil {
			return nil, err
		}
		if err := refreshPerf(out, n); err != nil {
			return nil, err
		}
		if err := asOfAnswersPerf(out, n); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// adhocQueryPerf measures the server's repeated ad-hoc query path —
// parse the query source, plan it, stream the clean answers off a
// session snapshot — with and without a shared plan cache, keyed
// "BenchmarkAdhocQuery/n=<size>/cache=off|on". The query is a
// selective two-atom join bound to one clean patient, the shape of a
// dashboard poll: answer streaming is cheap, so the off/on delta
// isolates the per-request planning cost the cache amortizes for
// second-and-later identical queries.
func adhocQueryPerf(out map[string]PerfResult, n int) error {
	spec := bench.StreamWorkloadSpec(n)
	wl, err := gen.NewStreamingWorkload(spec)
	if err != nil {
		return err
	}
	qc, err := facadeContext(wl.Base)
	if err != nil {
		return err
	}
	ctx := context.Background()
	prep, err := qc.Prepare(ctx)
	if err != nil {
		return err
	}
	sess, err := prep.NewSession(ctx, wl.Base.Instance)
	if err != nil {
		return err
	}
	snap := sess.Snapshot()
	// The last patient is always in the clean half of the generated
	// population, so the clean-mode rewrite keeps its measurements. Four
	// atoms make the compile cost representative of a real dashboard
	// join (measurement, its quality witness, the unit it was taken in).
	patient := fmt.Sprintf("p%d", spec.Base.Patients-1)
	src := fmt.Sprintf(
		`q(t, v, u) <- Measurements(t, %q, v), RightTherm(t, %q), PatientUnit(u, d, %q), DayTime(d, t)`,
		patient, patient, patient)

	run := func(label string, pc *PlanCache) error {
		var benchErr error
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q, err := ParseQuery(src)
				if err != nil {
					benchErr = err
					return
				}
				got := 0
				for _, err := range snap.CleanAnswersCached(q, pc) {
					if err != nil {
						benchErr = err
						return
					}
					got++
				}
				if got == 0 {
					benchErr = fmt.Errorf("ad-hoc query returned no answers at n=%d", n)
					return
				}
			}
		})
		if benchErr != nil {
			return benchErr
		}
		out[fmt.Sprintf("BenchmarkAdhocQuery/n=%d/cache=%s", n, label)] = bench.ToPerfResult(res)
		return nil
	}
	if err := run("off", nil); err != nil {
		return err
	}
	return run("on", NewPlanCache(defaultAdhocCacheSize))
}

// defaultAdhocCacheSize mirrors mdserve's per-context plan cache
// capacity.
const defaultAdhocCacheSize = 128

// asOfAnswersPerf measures the time-travel read path next to the live
// one, keyed "BenchmarkAsOfAnswers/n=<size>/view=live|asof". The
// session applies a few ticks so the history ring holds several
// versions; each op then resolves a view — the latest, or a historical
// version by number — and streams the same clean dashboard query
// AdhocQuery uses. A ring hit is a handle lookup, not a replay, so the
// asof number must stay within noise of live: the delta is the whole
// cost of time travel while the version is retained in memory.
func asOfAnswersPerf(out map[string]PerfResult, n int) error {
	spec := bench.StreamWorkloadSpec(n)
	wl, err := gen.NewStreamingWorkload(spec)
	if err != nil {
		return err
	}
	qc, err := facadeContext(wl.Base)
	if err != nil {
		return err
	}
	ctx := context.Background()
	prep, err := qc.Prepare(ctx)
	if err != nil {
		return err
	}
	sess, err := prep.NewSession(ctx, wl.Base.Instance)
	if err != nil {
		return err
	}
	for tick := 0; tick < 4; tick++ {
		delta, _ := wl.Tick(tick)
		if _, err := sess.Apply(ctx, delta); err != nil {
			return err
		}
	}
	patient := fmt.Sprintf("p%d", spec.Base.Patients-1)
	src := fmt.Sprintf(
		`q(t, v, u) <- Measurements(t, %q, v), RightTherm(t, %q), PatientUnit(u, d, %q), DayTime(d, t)`,
		patient, patient, patient)
	q, err := ParseQuery(src)
	if err != nil {
		return err
	}
	run := func(label string, opts ...ViewOption) error {
		var benchErr error
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				snap, err := sess.View(opts...)
				if err != nil {
					benchErr = err
					return
				}
				got := 0
				for _, err := range snap.CleanAnswers(q) {
					if err != nil {
						benchErr = err
						return
					}
					got++
				}
				if got == 0 {
					benchErr = fmt.Errorf("as-of query returned no answers at n=%d", n)
					return
				}
			}
		})
		if benchErr != nil {
			return benchErr
		}
		out[fmt.Sprintf("BenchmarkAsOfAnswers/n=%d/view=%s", n, label)] = bench.ToPerfResult(res)
		return nil
	}
	if err := run("live"); err != nil {
		return err
	}
	return run("asof", At(1))
}

// facadeContext rebuilds a generated workload's context through the
// public functional-options constructor, exactly as an external
// consumer would; extra options (e.g. WithSource) append after the
// workload's own.
func facadeContext(wl *gen.QualityWorkload, extra ...Option) (*Context, error) {
	opts := []Option{}
	for _, r := range wl.Config.Mappings {
		opts = append(opts, WithMapping(r))
	}
	for _, r := range wl.Config.QualityRules {
		opts = append(opts, WithQualityRule(r))
	}
	for _, v := range wl.Config.Versions {
		opts = append(opts, WithQualityVersion(v.Original, v.Pred, v.Rules...))
	}
	opts = append(opts, extra...)
	return NewContext(wl.Ontology, opts...)
}

// refreshPerf measures Session.Refresh folding a federated contextual
// stream, keyed "BenchmarkSourceRefresh/n=<size>". The workload's ward
// assignments arrive through a bound in-memory source instead of the
// apply stream: each op ingests one tick's measurements and time
// dimension members via Apply (off-timer), publishes the tick's ward
// rows to the source, and times the refresh that folds them through
// the incremental chase. Next to the same size's
// BenchmarkFacadeColdAssess the delta is what chase-time refresh saves
// over cold re-assessment of the grown instance.
func refreshPerf(out map[string]PerfResult, n int) error {
	wl, err := gen.NewStreamingWorkload(bench.StreamWorkloadSpec(n))
	if err != nil {
		return err
	}
	wards := NewMemSource(SourceSchema{
		Relation: "PatientWard",
		Attrs:    []string{"Ward", "Day", "Patient"},
	})
	qc, err := facadeContext(wl.Base, WithSource("wards", wards))
	if err != nil {
		return err
	}
	ctx := context.Background()
	prep, err := qc.Prepare(ctx)
	if err != nil {
		return err
	}
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		wards.Set()
		sess, err := prep.NewSession(ctx, wl.Base.Instance)
		if err != nil {
			benchErr = err
			return
		}
		b.ReportAllocs()
		b.ResetTimer()
		tick := 0
		for i := 0; i < b.N; i++ {
			if tick == bench.WarmResetTicks {
				b.StopTimer()
				wards.Set()
				if sess, err = prep.NewSession(ctx, wl.Base.Instance); err != nil {
					benchErr = err
					return
				}
				tick = 0
				b.StartTimer()
			}
			b.StopTimer()
			delta, _ := wl.Tick(tick)
			tick++
			rest := delta[:0:0]
			for _, a := range delta {
				if a.Pred == "PatientWard" {
					wards.Add(a.Args[0].Name, a.Args[1].Name, a.Args[2].Name)
				} else {
					rest = append(rest, a)
				}
			}
			if _, err := sess.Apply(ctx, rest); err != nil {
				benchErr = fmt.Errorf("refresh ingest failed at n=%d: %w", n, err)
				return
			}
			b.StartTimer()
			rr, err := sess.Refresh(ctx)
			if err != nil {
				benchErr = fmt.Errorf("refresh failed at n=%d: %w", n, err)
				return
			}
			if !rr.Changed || rr.Rebuilt {
				benchErr = fmt.Errorf("refresh at n=%d: changed=%v rebuilt=%v, want incremental change",
					n, rr.Changed, rr.Rebuilt)
				return
			}
		}
	})
	if benchErr != nil {
		return benchErr
	}
	out[fmt.Sprintf("BenchmarkSourceRefresh/n=%d", n)] = bench.ToPerfResult(res)
	return nil
}

// facadePerf measures FacadeColdAssess and FacadeWarmApply at one
// base size, mirroring the engine-level BenchmarkColdAssess /
// BenchmarkWarmAssess loops.
func facadePerf(out map[string]PerfResult, n int) error {
	wl, err := gen.NewStreamingWorkload(bench.StreamWorkloadSpec(n))
	if err != nil {
		return err
	}
	qc, err := facadeContext(wl.Base)
	if err != nil {
		return err
	}
	ctx := context.Background()
	prep, err := qc.Prepare(ctx)
	if err != nil {
		return err
	}

	var benchErr error
	cold := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a, err := qc.Assess(ctx, wl.Base.Instance)
			if err != nil {
				benchErr = fmt.Errorf("facade cold assess failed at n=%d: %w", n, err)
				return
			}
			if v := a.Versions()["Measurements"]; v == nil || v.Len() != wl.Base.ExpectedClean {
				benchErr = fmt.Errorf("facade cold assess wrong at n=%d", n)
				return
			}
		}
	})
	if benchErr != nil {
		return benchErr
	}
	out[fmt.Sprintf("BenchmarkFacadeColdAssess/n=%d", n)] = bench.ToPerfResult(cold)

	warm := testing.Benchmark(func(b *testing.B) {
		sess, err := prep.NewSession(ctx, wl.Base.Instance)
		if err != nil {
			benchErr = err
			return
		}
		b.ReportAllocs()
		b.ResetTimer()
		tick := 0
		for i := 0; i < b.N; i++ {
			if tick == bench.WarmResetTicks {
				// Rebuild the session (off-timer) every few ticks so
				// the measured instance stays near n instead of
				// growing with b.N.
				b.StopTimer()
				sess, err = prep.NewSession(ctx, wl.Base.Instance)
				if err != nil {
					benchErr = err
					return
				}
				tick = 0
				b.StartTimer()
			}
			delta, _ := wl.Tick(tick)
			tick++
			if _, err := sess.Apply(ctx, delta); err != nil {
				benchErr = fmt.Errorf("facade warm apply failed at n=%d: %w", n, err)
				return
			}
		}
	})
	if benchErr != nil {
		return benchErr
	}
	out[fmt.Sprintf("BenchmarkFacadeWarmApply/n=%d", n)] = bench.ToPerfResult(warm)
	return nil
}

// RunExperiment runs one experiment, writing its report to w.
func RunExperiment(e Experiment, w io.Writer) error { return e.Run(w) }
