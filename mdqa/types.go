package mdqa

import (
	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/eval"
	"repro/internal/hm"
	"repro/internal/storage"
)

// The facade re-exports the engine's data vocabulary as aliases: the
// types are identical (no conversion cost, no copying), but external
// consumers reach them without importing internal packages.

// ---- Terms, atoms, queries ----

// Term is a constant, variable or labeled null.
type Term = datalog.Term

// Const builds a constant term.
func Const(name string) Term { return datalog.C(name) }

// Var builds a variable term.
func Var(name string) Term { return datalog.V(name) }

// Null builds a labeled null term.
func Null(label string) Term { return datalog.N(label) }

// Atom is a predicate applied to terms.
type Atom = datalog.Atom

// NewAtom builds an atom.
func NewAtom(pred string, args ...Term) Atom { return datalog.A(pred, args...) }

// CompOp is a comparison operator for rule and query conditions.
type CompOp = datalog.CompOp

// Comparison operators.
const (
	OpEq = datalog.OpEq
	OpNe = datalog.OpNe
	OpLt = datalog.OpLt
	OpLe = datalog.OpLe
	OpGt = datalog.OpGt
	OpGe = datalog.OpGe
)

// Query is a conjunctive query with optional negation and comparisons.
type Query = datalog.Query

// NewQuery builds a query from its head and positive body.
func NewQuery(head Atom, body ...Atom) *Query { return datalog.NewQuery(head, body...) }

// Answer is one query answer.
type Answer = datalog.Answer

// AnswerSet is a deduplicated set of answers.
type AnswerSet = datalog.AnswerSet

// NewAnswerSet builds an empty answer set.
func NewAnswerSet() *AnswerSet { return datalog.NewAnswerSet() }

// ---- Datalog± dependencies ----

// TGD is a tuple-generating dependency (a dimensional rule, possibly
// with existential head variables).
type TGD = datalog.TGD

// NewTGD builds a TGD from head and body atom lists.
func NewTGD(id string, head, body []Atom) *TGD { return datalog.NewTGD(id, head, body) }

// EGD is an equality-generating dependency.
type EGD = datalog.EGD

// NewEGD builds an EGD equating l and r under the body.
func NewEGD(id string, l, r Term, body []Atom) *EGD { return datalog.NewEGD(id, l, r, body) }

// Literal is an atom with an optional negation marker, for negative
// constraint bodies.
type Literal = datalog.Literal

// Pos builds a positive literal.
func Pos(a Atom) Literal { return datalog.Pos(a) }

// Neg builds a negated literal.
func Neg(a Atom) Literal { return datalog.Neg(a) }

// NC is a negative constraint (denial).
type NC = datalog.NC

// NewNC builds a negative constraint from its body literals.
func NewNC(id string, body ...Literal) *NC { return datalog.NewNC(id, body...) }

// Program is a Datalog± program: TGDs, EGDs and NCs.
type Program = datalog.Program

// ---- Derived-layer rules (mappings, quality predicates, versions) ----

// Rule is a plain Datalog rule with optional stratified negation and
// built-in comparisons, used for contextual mappings, quality
// predicates and quality-version definitions.
type Rule = eval.Rule

// NewRule builds a positive rule; chain WithNegated/WithCond for
// negation and comparisons.
func NewRule(id string, head Atom, body ...Atom) *Rule { return eval.NewRule(id, head, body...) }

// ---- Dimensions (the HM model) ----

// DimensionSchema is a hierarchy of categories.
type DimensionSchema = hm.DimensionSchema

// NewDimensionSchema starts an empty dimension schema.
func NewDimensionSchema(name string) *DimensionSchema { return hm.NewDimensionSchema(name) }

// Dimension is a dimension instance: members per category and child
// to parent rollups.
type Dimension = hm.Dimension

// NewDimension builds an empty dimension over a schema.
func NewDimension(schema *DimensionSchema) *Dimension { return hm.NewDimension(schema) }

// RollupPredName names the binary rollup predicate between two
// adjacent categories (parent first: RollupPredName("City","Country")
// is "CountryCity").
func RollupPredName(child, parent string) string { return hm.RollupPredName(child, parent) }

// CategoryPredName names the unary membership predicate of a category.
func CategoryPredName(category string) string { return hm.CategoryPredName(category) }

// ---- Ontologies ----

// Ontology is a multidimensional ontology: dimensions, categorical
// relations, facts, and dimensional rules and constraints.
type Ontology = core.Ontology

// NewOntology starts an empty ontology.
func NewOntology() *Ontology { return core.NewOntology() }

// Attribute describes one attribute of a categorical relation.
type Attribute = core.Attribute

// Cat declares a categorical attribute tied to a dimension category.
func Cat(name, dimension, category string) Attribute { return core.Cat(name, dimension, category) }

// NonCat declares a non-categorical attribute.
func NonCat(name string) Attribute { return core.NonCat(name) }

// CategoricalRelation is a relation whose attributes may be tied to
// dimension categories.
type CategoricalRelation = core.CategoricalRelation

// NewCategoricalRelation builds a categorical relation schema.
func NewCategoricalRelation(name string, attrs ...Attribute) *CategoricalRelation {
	return core.NewCategoricalRelation(name, attrs...)
}

// CompileOptions configures ontology compilation to Datalog±.
type CompileOptions = core.CompileOptions

// Compiled is the Datalog± form of an ontology: the program, the
// extensional instance, and the syntactic classification report.
type Compiled = core.Compiled

// ---- Storage ----

// Instance is a relational instance over interned terms.
type Instance = storage.Instance

// NewInstance builds an empty instance.
func NewInstance() *Instance { return storage.NewInstance() }

// Relation is one relation of an instance.
type Relation = storage.Relation

// FormatRelation renders a relation as an aligned text table.
func FormatRelation(r *Relation) string { return storage.FormatRelation(r) }

// FormatRelationSorted renders a relation with sorted rows (stable
// across runs; use for golden output).
func FormatRelationSorted(r *Relation) string { return storage.FormatRelationSorted(r) }

// PlanCache is a concurrency-safe LRU of compiled query plans keyed by
// normalized query shape, shared across the snapshots of one session
// (or one server context). Pass it to Snapshot.AnswersCached /
// CleanAnswersCached so repeated ad-hoc queries skip recompilation.
type PlanCache = storage.PlanCache

// NewPlanCache builds a plan cache holding at most capacity plans;
// capacity <= 0 disables caching.
func NewPlanCache(capacity int) *PlanCache { return storage.NewPlanCache(capacity) }

// ---- Chase ----

// ChaseVariant selects the chase flavor (restricted or oblivious).
type ChaseVariant = chase.Variant

// Chase variants.
const (
	RestrictedChase = chase.Restricted
	ObliviousChase  = chase.Oblivious
)

// ChaseOptions configures a chase run.
type ChaseOptions = chase.Options

// ChaseResult is the outcome of a chase run.
type ChaseResult = chase.Result
