package mdqa

import (
	"repro/internal/qerr"
	"repro/internal/quality"
)

// The facade's error vocabulary. Every failure class pairs a sentinel
// (errors.Is) with a typed error (errors.As): the sentinel names the
// class, the type carries the structured detail.
//
//	a, err := qc.Assess(ctx, d)
//	if errors.Is(err, mdqa.ErrInconsistent) {
//	    var ie *mdqa.InconsistentError
//	    errors.As(err, &ie)
//	    for _, v := range ie.Violations { ... }
//	}
var (
	// ErrInconsistent marks assessments over instances that violate
	// the ontology's negative constraints or EGDs (only under
	// WithStrictConsistency; by default violations are reported on
	// the Assessment instead).
	ErrInconsistent = qerr.ErrInconsistent
	// ErrUnsafeRule marks mapping, quality or version rules rejected
	// by safety validation.
	ErrUnsafeRule = qerr.ErrUnsafeRule
	// ErrUnknownRelation marks references to relations absent from
	// the queried snapshot or context.
	ErrUnknownRelation = qerr.ErrUnknownRelation
	// ErrBoundExceeded marks chase runs stopped by WithChaseBound or
	// WithAtomBound before reaching a fixpoint.
	ErrBoundExceeded = qerr.ErrBoundExceeded
	// ErrSourceUnavailable marks sessions or refreshes that could not
	// fetch a live external source (and the binding did not opt into
	// stale serving via SourceAllowStale).
	ErrSourceUnavailable = qerr.ErrSourceUnavailable
	// ErrVersionEvicted marks as-of reads (View(At(...)), AsOf) of a
	// version older than everything the session retains — both the
	// in-memory ring and, for durable sessions, the on-disk replay
	// base compaction has kept.
	ErrVersionEvicted = qerr.ErrVersionEvicted
	// ErrHistoryDisabled marks versioned reads on a session whose
	// context disabled history retention (WithHistoryDepth(-1)).
	ErrHistoryDisabled = quality.ErrHistoryDisabled
)

// InconsistentError carries the constraint violations behind an
// ErrInconsistent failure.
type InconsistentError = qerr.InconsistentError

// UnsafeRuleError identifies the rule and variable that failed safety
// validation.
type UnsafeRuleError = qerr.UnsafeRuleError

// UnknownRelationError names the missing relation.
type UnknownRelationError = qerr.UnknownRelationError

// BoundExceededError reports how far a bounded run got before it was
// cut off.
type BoundExceededError = qerr.BoundExceededError

// SourceUnavailableError names the source binding whose fetch failed,
// wrapping the connector error.
type SourceUnavailableError = qerr.SourceUnavailableError

// VersionEvictedError names the requested version and the oldest one
// still reachable behind an ErrVersionEvicted failure.
type VersionEvictedError = qerr.VersionEvictedError

// Violation records one constraint violation found while chasing the
// ontology's dependencies.
type Violation = qerr.Violation

// ViolationKind classifies violations.
type ViolationKind = qerr.ViolationKind

// Violation kinds.
const (
	// NCViolation: a negative constraint body matched.
	NCViolation = qerr.NCViolation
	// EGDConflict: an EGD required two distinct constants to be equal.
	EGDConflict = qerr.EGDConflict
)
