package mdqa

import (
	"context"

	"repro/internal/core"
	"repro/internal/quality"
)

// VersionName is the default naming convention for quality versions:
// the paper's S^q rendered as "<name>_q".
func VersionName(rel string) string { return quality.VersionName(rel) }

// Option configures a quality Context at construction time. Options
// are applied in order; each appends to or overrides part of the
// context's configuration. Because configuration happens only inside
// NewContext, two contexts can never share or leak option state.
type Option func(*quality.Config)

// WithChaseBound bounds the number of chase rounds per assessment.
// Exceeding it surfaces as ErrBoundExceeded. 0 restores the default.
func WithChaseBound(rounds int) Option {
	return func(cfg *quality.Config) { cfg.Chase.MaxRounds = rounds }
}

// WithAtomBound aborts assessment when the contextual instance
// exceeds n tuples, guarding against non-terminating ontologies.
// Exceeding it surfaces as ErrBoundExceeded. 0 restores the default.
func WithAtomBound(n int) Option {
	return func(cfg *quality.Config) { cfg.Chase.MaxAtoms = n }
}

// WithChaseVariant selects the chase flavor (RestrictedChase is the
// default; ObliviousChase exists for ablation studies).
func WithChaseVariant(v ChaseVariant) Option {
	return func(cfg *quality.Config) { cfg.Chase.Variant = v }
}

// WithReferentialNCs compiles referential negative constraints for
// every categorical attribute, so dangling category references are
// reported as violations.
func WithReferentialNCs() Option {
	return func(cfg *quality.Config) { cfg.Compile.ReferentialNCs = true }
}

// WithTransitiveRollups compiles rollup predicates between
// non-adjacent category pairs, letting rules navigate several
// hierarchy levels in one atom.
func WithTransitiveRollups() Option {
	return func(cfg *quality.Config) { cfg.Compile.TransitiveRollups = true }
}

// WithMapping registers a rule mapping original-schema predicates into
// contextual predicates (the paper's footprint step).
func WithMapping(rules ...*Rule) Option {
	return func(cfg *quality.Config) { cfg.Mappings = append(cfg.Mappings, rules...) }
}

// WithQualityRule registers a rule defining a contextual or quality
// predicate P_i.
func WithQualityRule(rules ...*Rule) Option {
	return func(cfg *quality.Config) { cfg.QualityRules = append(cfg.QualityRules, rules...) }
}

// WithQualityVersion declares the quality version of an original
// relation: versionPred is the predicate the rules define (use
// VersionName(rel) by convention).
func WithQualityVersion(rel, versionPred string, rules ...*Rule) Option {
	return func(cfg *quality.Config) {
		cfg.Versions = append(cfg.Versions, quality.VersionSpec{
			Original: rel,
			Pred:     versionPred,
			Rules:    rules,
		})
	}
}

// WithExternalSource merges a pre-materialized external data source
// E_i into the static context. Merge semantics are set-union: every
// tuple of db is copied into the context's compiled base at prepare
// time, creating relations as needed (attribute names come from db
// only when the relation is new; an arity conflict with an existing
// relation fails Prepare). The instance is deep-copied at NewContext,
// so mutating db afterwards never changes the context — the same
// no-aliasing guarantee every other option has.
//
// For sources that change over time, bind a live connector with
// WithSource instead: external-source tuples baked in here are fixed
// for the context's lifetime.
func WithExternalSource(db *Instance) Option {
	return func(cfg *quality.Config) { cfg.Externals = append(cfg.Externals, db) }
}

// WithStrictConsistency makes Assess fail with ErrInconsistent when
// the chase finds constraint violations, instead of reporting them on
// the Assessment.
func WithStrictConsistency() Option {
	return func(cfg *quality.Config) { cfg.StrictConsistency = true }
}

// WithParallelism bounds the worker pool that assessments — cold
// Assess, session NewSession and Apply — fan their chase and eval
// rounds out across. n = 0 (the default) resolves to
// runtime.GOMAXPROCS(0); n = 1 reproduces the sequential engine
// exactly; n > 1 bounds concurrent workers at n.
//
// Parallelism never changes what is computed: the chase result
// (instance, null labels, violations, counters) is identical at every
// degree, and the derived quality layer holds exactly the same tuples
// (only low-level insertion order inside a relation may differ from
// the sequential engine's, which is why Snapshot streams sort their
// tuples). One assessment parallelizes internally; the
// single-writer/many-readers session contract is unchanged.
func WithParallelism(n int) Option {
	return func(cfg *quality.Config) { cfg.Parallelism = n }
}

// Context is an immutable quality-assessment context (the paper's
// Figure 2): an MD ontology plus contextual mappings, quality
// predicates, quality-version definitions and external sources. Build
// one with NewContext; share it freely across goroutines.
type Context struct {
	q *quality.Context
}

// NewContext builds and validates a quality context around the MD
// ontology. Every rule is safety-checked up front (ErrUnsafeRule),
// and duplicate or ill-formed version definitions are rejected, so a
// returned Context cannot fail validation later.
func NewContext(o *Ontology, opts ...Option) (*Context, error) {
	var cfg quality.Config
	for _, opt := range opts {
		opt(&cfg)
	}
	return newContext(o, cfg)
}

// newContext wraps an internal config into the facade type.
func newContext(o *core.Ontology, cfg quality.Config) (*Context, error) {
	q, err := quality.NewContext(o, cfg)
	if err != nil {
		return nil, err
	}
	return &Context{q: q}, nil
}

// Ontology returns the MD ontology the context is built around.
func (c *Context) Ontology() *Ontology { return c.q.Ontology() }

// VersionPred returns the version predicate defined for an original
// relation, or "" when none is.
func (c *Context) VersionPred(rel string) string { return c.q.VersionPred(rel) }

// Versioned lists the original relations with defined quality
// versions, in declaration order.
func (c *Context) Versioned() []string { return c.q.Versioned() }

// DeclaredPreds lists every predicate the context can speak about,
// sorted: ontology relations, rule and constraint predicates,
// dimension membership/rollup predicates, every predicate a mapping,
// quality or version rule mentions, and the version predicates. A
// query over any of these is well-formed even when the relation holds
// no tuples yet — serving layers use the set to tell "empty" from
// ErrUnknownRelation.
func (c *Context) DeclaredPreds() []string { return c.q.DeclaredPreds() }

// Prepare compiles the context once — the ontology's Datalog± program,
// its chase join plans, the merged static context and the stratified
// derived-layer program — caching the result for the context's
// lifetime. Any number of goroutines can open sessions from the
// returned Prepared.
func (c *Context) Prepare(ctx context.Context) (*Prepared, error) {
	p, err := c.q.Prepare(ctx)
	if err != nil {
		return nil, err
	}
	return &Prepared{p: p, c: c}, nil
}

// Assess runs the full Figure 2 pipeline on the instance under
// assessment: compile (cached), merge, chase, evaluate, measure.
// Assess is a one-shot session — long-lived callers use
// Prepare/NewSession and Apply deltas instead of re-assessing from
// scratch. Cancellation of ctx is checked once per chase/eval work
// unit.
func (c *Context) Assess(ctx context.Context, d *Instance) (*Assessment, error) {
	p, err := c.Prepare(ctx)
	if err != nil {
		return nil, err
	}
	s, err := p.NewSession(ctx, d)
	if err != nil {
		return nil, err
	}
	return s.Assess(ctx)
}

// Measure quantifies how much an original relation departs from its
// quality version: |D|, |D^q| and their intersection, with
// CleanFraction and Distance derived from them.
type Measure = quality.Measure

// Assessment is the materialized outcome of mapping an instance
// through the context: quality versions under the original attribute
// names, departure measures, and the violations found while chasing.
// For streaming access to the same state, use Session.Snapshot.
type Assessment struct {
	a    *quality.Assessment
	snap *Snapshot
}

// Snapshot returns the frozen contextual state behind the assessment,
// for streaming reads (quality-version tuples, clean query answers).
// It is the same view Session.View would return for the version the
// assessment was taken at — View is the general surface when you hold
// the session rather than an assessment.
func (a *Assessment) Snapshot() *Snapshot { return a.snap }

// Versions returns the computed quality version of each original
// relation with a defined version, keyed by the original name.
func (a *Assessment) Versions() map[string]*Relation { return a.a.Versions }

// Version returns the computed quality version of one original
// relation, or ErrUnknownRelation when no version is defined for it.
func (a *Assessment) Version(rel string) (*Relation, error) {
	if v, ok := a.a.Versions[rel]; ok {
		return v, nil
	}
	return nil, &UnknownRelationError{Relation: rel}
}

// Measures quantifies the departure of each original relation from
// its quality version, keyed by the original name.
func (a *Assessment) Measures() map[string]Measure { return a.a.Measures }

// Violations lists the dimensional-constraint violations found while
// chasing the ontology.
func (a *Assessment) Violations() []Violation { return a.a.Violations }

// Consistent reports whether the chase found no violations.
func (a *Assessment) Consistent() bool { return len(a.a.Violations) == 0 }

// Contextual returns the full frozen contextual instance: chased
// ontology data, the mapped original instance, external sources,
// quality predicates and quality versions.
func (a *Assessment) Contextual() *Instance { return a.a.Contextual }

// RewriteClean rewrites a query over the original schema into the
// query Q^q over quality versions (the paper's problem (b)).
func (a *Assessment) RewriteClean(q *Query) *Query { return a.a.RewriteClean(q) }

// CleanAnswer answers a query over the original schema with quality
// semantics: rewritten over the quality versions, evaluated on the
// contextual instance, keeping only certain answers (no labeled
// nulls). For large answer sets prefer Snapshot().CleanAnswers, which
// streams instead of materializing.
func (a *Assessment) CleanAnswer(q *Query) (*AnswerSet, error) { return a.a.CleanAnswer(q) }

// newAssessment pairs a quality assessment with its streaming view.
func newAssessment(a *quality.Assessment, versionPred map[string]string, vorder []string) *Assessment {
	return &Assessment{
		a: a,
		snap: &Snapshot{
			inst:        a.Contextual,
			versionPred: versionPred,
			vorder:      vorder,
		},
	}
}
