package mdqa_test

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/mdqa"
)

// timeTravelContext builds the sales workload with a quality version
// over CitySales, at the given parallelism and history depth.
func timeTravelContext(t *testing.T, parallelism, depth int) *mdqa.Context {
	t.Helper()
	o := buildSalesOntology(t)
	version := mdqa.NewRule("sales-q",
		mdqa.NewAtom("CitySales_q", mdqa.Var("w"), mdqa.Var("i")),
		mdqa.NewAtom("CitySales", mdqa.Var("w"), mdqa.Var("i")),
		mdqa.NewAtom("CountrySales", mdqa.Const("Canada"), mdqa.Var("i")))
	qc, err := mdqa.NewContext(o,
		mdqa.WithQualityVersion("CitySales", "CitySales_q", version),
		mdqa.WithParallelism(parallelism),
		mdqa.WithHistoryDepth(depth))
	if err != nil {
		t.Fatal(err)
	}
	return qc
}

func salesInstance(t *testing.T) *mdqa.Instance {
	t.Helper()
	d := mdqa.NewInstance()
	if _, err := d.CreateRelation("CitySales", "City", "Item"); err != nil {
		t.Fatal(err)
	}
	d.MustInsert("CitySales", mdqa.Const("Ottawa"), mdqa.Const("skates"))
	return d
}

// collectAnswers drains a query's answers from a snapshot into a
// canonical sorted form, so two answer sets compare byte-identically.
func collectAnswers(t *testing.T, snap *mdqa.Snapshot, q *mdqa.Query, clean bool) string {
	t.Helper()
	seq := snap.Answers(q)
	if clean {
		seq = snap.CleanAnswers(q)
	}
	var rows []string
	for ans, err := range seq {
		if err != nil {
			t.Fatal(err)
		}
		parts := make([]string, len(ans.Terms))
		for i, tm := range ans.Terms {
			parts[i] = tm.Name
		}
		rows = append(rows, strings.Join(parts, ","))
	}
	sort.Strings(rows)
	return strings.Join(rows, "\n")
}

// TestTimeTravelAnswersMatchLive pins the tentpole property: for every
// version v, Session.View(At(v)).Answers(q) is identical to the
// answers recorded live right after the apply that produced v — at
// parallelism 1 and 2, for raw and clean answers alike.
func TestTimeTravelAnswersMatchLive(t *testing.T) {
	batches := [][]mdqa.Atom{
		{mdqa.NewAtom("CitySales", mdqa.Const("Toronto"), mdqa.Const("syrup"))},
		{mdqa.NewAtom("CountrySales", mdqa.Const("Canada"), mdqa.Const("skates")),
			mdqa.NewAtom("CountrySales", mdqa.Const("Canada"), mdqa.Const("syrup"))},
		{mdqa.NewAtom("CitySales", mdqa.Const("Santiago"), mdqa.Const("wine"))},
	}
	q, err := mdqa.ParseQuery(`ans(w, i) <- CitySales(w, i).`)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2} {
		t.Run(fmt.Sprintf("parallelism=%d", p), func(t *testing.T) {
			ctx := context.Background()
			qc := timeTravelContext(t, p, 16)
			prep, err := qc.Prepare(ctx)
			if err != nil {
				t.Fatal(err)
			}
			sess, err := prep.NewSession(ctx, salesInstance(t))
			if err != nil {
				t.Fatal(err)
			}
			// Record the live answers and measures at every version as
			// it is produced.
			liveRaw := map[uint64]string{}
			liveClean := map[uint64]string{}
			liveMeasure := map[uint64]mdqa.Measure{}
			recordLive := func() uint64 {
				v, ok := sess.LatestVersion()
				if !ok {
					t.Fatal("history must be on")
				}
				snap, err := sess.View()
				if err != nil {
					t.Fatal(err)
				}
				if sv, ok := snap.Version(); !ok || sv.Seq != v.Seq {
					t.Fatalf("latest view reports version %d/%v, want %d", sv.Seq, ok, v.Seq)
				}
				liveRaw[v.Seq] = collectAnswers(t, snap, q, false)
				liveClean[v.Seq] = collectAnswers(t, snap, q, true)
				a, err := sess.Assess(ctx)
				if err != nil {
					t.Fatal(err)
				}
				liveMeasure[v.Seq] = a.Measures()["CitySales"]
				return v.Seq
			}
			if got := recordLive(); got != 0 {
				t.Fatalf("initial version = %d, want 0", got)
			}
			inserted := []int{0} // per-version inserted counts (v0 = initial)
			for i, batch := range batches {
				res, err := sess.Apply(ctx, batch)
				if err != nil {
					t.Fatal(err)
				}
				inserted = append(inserted, res.Inserted)
				if got := recordLive(); got != uint64(i+1) {
					t.Fatalf("after batch %d: version = %d", i, got)
				}
			}

			// History metadata: one entry per version, ascending, batch
			// sizes recorded.
			hist := sess.History()
			if len(hist) != len(batches)+1 {
				t.Fatalf("history length = %d, want %d", len(hist), len(batches)+1)
			}
			for i, v := range hist {
				if v.Seq != uint64(i) {
					t.Fatalf("history[%d].Seq = %d", i, v.Seq)
				}
				if i > 0 && v.Batch != inserted[i] {
					t.Fatalf("history[%d].Batch = %d, want %d", i, v.Batch, inserted[i])
				}
				if i > 0 && v.Time.Before(hist[i-1].Time) {
					t.Fatalf("history times must be monotone: %v then %v", hist[i-1].Time, v.Time)
				}
			}

			// The property: every as-of view answers exactly as the live
			// session did at that version, and AsOf(time) resolves to it.
			for v := uint64(0); v <= uint64(len(batches)); v++ {
				snap, err := sess.View(mdqa.At(v))
				if err != nil {
					t.Fatalf("View(At(%d)): %v", v, err)
				}
				if sv, ok := snap.Version(); !ok || sv.Seq != v {
					t.Fatalf("View(At(%d)) reports version %d", v, sv.Seq)
				}
				if got := collectAnswers(t, snap, q, false); got != liveRaw[v] {
					t.Errorf("At(%d) raw answers drifted:\n got %q\nwant %q", v, got, liveRaw[v])
				}
				if got := collectAnswers(t, snap, q, true); got != liveClean[v] {
					t.Errorf("At(%d) clean answers drifted:\n got %q\nwant %q", v, got, liveClean[v])
				}
				if seq, err := sess.ResolveAsOf(hist[v].Time); err != nil || seq != v {
					t.Errorf("ResolveAsOf(time of v%d) = %d, %v", v, seq, err)
				}
				a, err := sess.Assess(ctx, mdqa.At(v))
				if err != nil {
					t.Fatalf("Assess(At(%d)): %v", v, err)
				}
				if got := a.Measures()["CitySales"]; got != liveMeasure[v] {
					t.Errorf("Assess(At(%d)) measure = %+v, want %+v", v, got, liveMeasure[v])
				}
			}
		})
	}
}

// TestTimeTravelBoundsAndErrors pins the failure vocabulary: evicted
// versions carry the typed boundary error, future versions and mixed
// options are plain client errors, and disabled history fails closed.
func TestTimeTravelBoundsAndErrors(t *testing.T) {
	ctx := context.Background()
	qc := timeTravelContext(t, 1, 2)
	prep, err := qc.Prepare(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := prep.NewSession(ctx, salesInstance(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := sess.Apply(ctx, []mdqa.Atom{
			mdqa.NewAtom("CitySales", mdqa.Const("Toronto"), mdqa.Const(fmt.Sprintf("item%d", i))),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if oldest, _ := sess.OldestRetained(); oldest != 3 {
		t.Fatalf("depth 2 after 4 applies: oldest retained = %d, want 3", oldest)
	}
	_, err = sess.View(mdqa.At(0))
	var ve *mdqa.VersionEvictedError
	if !errors.As(err, &ve) || ve.Version != 0 || ve.Oldest != 3 {
		t.Fatalf("At(evicted) = %v, want VersionEvictedError{0, 3}", err)
	}
	if !errors.Is(err, mdqa.ErrVersionEvicted) {
		t.Fatalf("eviction must match the sentinel: %v", err)
	}
	if _, err := sess.View(mdqa.At(99)); err == nil || errors.Is(err, mdqa.ErrVersionEvicted) {
		t.Fatalf("At(future) must fail as a plain client error, got %v", err)
	}
	if _, err := sess.View(mdqa.At(3), mdqa.AsOf(sess.History()[0].Time)); err == nil {
		t.Fatal("At+AsOf must be mutually exclusive")
	}

	// Disabled history: versioned reads fail closed, latest reads work.
	off, err := timeTravelContext(t, 1, -1).Prepare(ctx)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := off.NewSession(ctx, salesInstance(t))
	if err != nil {
		t.Fatal(err)
	}
	if hist := plain.History(); hist != nil {
		t.Fatalf("disabled history must report nil, got %v", hist)
	}
	if _, err := plain.View(mdqa.At(0)); !errors.Is(err, mdqa.ErrHistoryDisabled) {
		t.Fatalf("At on disabled history = %v, want ErrHistoryDisabled", err)
	}
	snap, err := plain.View()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := snap.Version(); ok {
		t.Fatal("latest view on disabled history must report no version")
	}
}

// TestTimeTravelAttribute pins delta attribution: the version whose
// batch introduced a violation names that batch.
func TestTimeTravelAttribute(t *testing.T) {
	ctx := context.Background()
	o := buildSalesOntology(t)
	// An NC forbidding wine sales makes violations easy to provoke.
	if err := o.AddNC(mdqa.NewNC("no-wine",
		mdqa.Pos(mdqa.NewAtom("CitySales", mdqa.Var("w"), mdqa.Const("wine"))))); err != nil {
		t.Fatal(err)
	}
	qc, err := mdqa.NewContext(o, mdqa.WithParallelism(1), mdqa.WithHistoryDepth(8))
	if err != nil {
		t.Fatal(err)
	}
	prep, err := qc.Prepare(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := prep.NewSession(ctx, salesInstance(t))
	if err != nil {
		t.Fatal(err)
	}
	// Batch 1 is clean; batch 2 introduces the violation.
	if _, err := sess.Apply(ctx, []mdqa.Atom{
		mdqa.NewAtom("CitySales", mdqa.Const("Toronto"), mdqa.Const("syrup")),
	}); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Apply(ctx, []mdqa.Atom{
		mdqa.NewAtom("CitySales", mdqa.Const("Santiago"), mdqa.Const("wine")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("the wine batch must violate the NC")
	}
	v, ok := sess.Attribute(res.Violations[0])
	if !ok || v.Seq != 2 {
		t.Fatalf("Attribute = %+v %v, want version 2", v, ok)
	}
	if len(v.Introduced) == 0 {
		t.Fatal("the attributed version must carry its introduced violations")
	}
}
