package mdqa

import (
	"context"

	"repro/internal/engine"
	"repro/internal/quality"
)

// ApplyResult reports what one Session.Apply call did: facts
// inserted, chase rows derived, derived-layer growth, TGD firings and
// EGD merges, and whether the derived layer had to be rebuilt.
type ApplyResult = engine.ApplyResult

// Prepared is the compiled, immutable form of a quality context:
// everything that does not depend on the instance under assessment,
// compiled exactly once. Any number of goroutines can open sessions
// from one Prepared.
type Prepared struct {
	p *quality.Prepared
	c *Context
}

// Context returns the context this compilation came from.
func (p *Prepared) Context() *Context { return p.c }

// NewSession opens an assessment session: the instance under
// assessment is merged into a private clone of the static context,
// chased to saturation and evaluated — the cold path every later
// Apply amortizes. The caller's instance is never mutated.
// Cancellation of ctx is checked once per chase/eval work unit, so
// latency stays bounded even inside large rounds.
func (p *Prepared) NewSession(ctx context.Context, d *Instance) (*Session, error) {
	s, err := p.p.NewSession(ctx, d)
	if err != nil {
		return nil, err
	}
	// The version metadata is immutable for the session's lifetime:
	// build it once and share it with every snapshot and assessment.
	vorder := s.Versioned()
	vp := make(map[string]string, len(vorder))
	for _, rel := range vorder {
		vp[rel] = s.VersionPred(rel)
	}
	return &Session{s: s, versionPred: vp, vorder: vorder}, nil
}

// Session is a live assessment: a saturated contextual instance that
// grows incrementally via Apply while readers take consistent
// snapshots. One goroutine applies deltas; any number of goroutines
// read snapshots and assessments concurrently.
type Session struct {
	s           *quality.Session
	versionPred map[string]string // immutable after NewSession
	vorder      []string
}

// Apply extends the assessment with a batch of new ground facts —
// measurements, dimension members, rollups — chasing and re-evaluating
// incrementally from the delta frontier (semi-naive: only the delta is
// re-matched). Readers holding earlier snapshots are unaffected.
func (s *Session) Apply(ctx context.Context, delta []Atom) (*ApplyResult, error) {
	return s.s.Apply(ctx, delta)
}

// Snapshot returns a frozen, consistent view of the contextual
// instance as of the last Apply, for streaming reads. Snapshots are
// cheap (copy-on-write) and safe to consume from any number of
// goroutines while the writer keeps applying deltas.
//
// Snapshot is equivalent to View() with no options; use View to read
// a historical version (At, AsOf) instead of the latest state.
func (s *Session) Snapshot() *Snapshot {
	snap, _ := s.View() // the latest view cannot fail
	return snap
}

// Violations returns the session's cumulative constraint violations.
func (s *Session) Violations() []Violation { return s.s.Violations() }

// ChaseRounds returns the cumulative number of chase rounds the
// session has run: the initial saturation plus every incremental
// Apply. Monitoring surfaces (the mdserve /metrics endpoint) report it
// as the session's chase cost.
func (s *Session) ChaseRounds() int { return s.s.ChaseRounds() }

// Assess materializes the session's state as the Figure 2 assessment
// outcome: quality versions, departure measures and accumulated
// violations over a consistent snapshot — the latest state by
// default, or a historical version under At / AsOf (the same options
// View takes; measures then come from the scores recorded when that
// version was produced). Under WithStrictConsistency it fails with
// ErrInconsistent when the chase found violations.
func (s *Session) Assess(ctx context.Context, opts ...ViewOption) (*Assessment, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	o, err := s.resolve(opts)
	if err != nil {
		return nil, err
	}
	if !o.hasAt {
		a, err := s.s.Assessment()
		if err != nil {
			return nil, err
		}
		aa := newAssessment(a, s.versionPred, s.vorder)
		if v, ok := s.s.LatestVersion(); ok {
			aa.snap.ver, aa.snap.hasVer = v, true
		}
		return aa, nil
	}
	a, v, err := s.s.AssessmentAt(o.at)
	if err != nil {
		return nil, err
	}
	aa := newAssessment(a, s.versionPred, s.vorder)
	aa.snap.ver, aa.snap.hasVer = v, true
	return aa, nil
}
