package mdqa

import (
	"repro/internal/hospital"
)

// The paper's running example as a ready-made ontology and context,
// used by the examples, the CLI's example subcommand and the godoc
// examples.

// HospitalOptions configures which optional pieces of the running
// example are included.
type HospitalOptions = hospital.Options

// HospitalOntology builds the running-example MD ontology (Figure 1:
// the Hospital and Time dimensions, Tables III–V, rules (7)–(9) and
// the constraints, per the options).
func HospitalOntology(opts HospitalOptions) *Ontology { return hospital.NewOntology(opts) }

// HospitalQualityContext builds the Example 7 quality context around
// the running-example ontology: the contextual mapping of
// Measurements, the TakenByNurse and TakenWithTherm quality
// predicates, and the Measurements_q version definition. Extra
// options apply on top.
func HospitalQualityContext(opts HospitalOptions, extra ...Option) (*Context, error) {
	cfg := hospital.QualityConfig()
	for _, opt := range extra {
		opt(&cfg)
	}
	return newContext(hospital.NewOntology(opts), cfg)
}

// HospitalMeasurements returns Table I — the instance under
// assessment in Examples 1 and 7.
func HospitalMeasurements() *Instance { return hospital.MeasurementsInstance() }

// HospitalDoctorQuery is the doctor's request of Examples 1 and 7:
// Tom Waits' temperatures around noon on September 5.
func HospitalDoctorQuery() *Query { return hospital.DoctorQuery() }
