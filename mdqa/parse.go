package mdqa

import (
	"repro/internal/parser"
)

// File is a parsed .mdq ontology file: dimensions, relations, rules,
// constraints, named queries and (optionally) a quality context
// declaration.
type File = parser.File

// NamedQuery is a named query declared in a .mdq file.
type NamedQuery = parser.NamedQuery

// ParseFile parses a .mdq multidimensional ontology file from disk.
func ParseFile(path string) (*File, error) { return parser.ParseFile(path) }

// ParseSource parses .mdq source text.
func ParseSource(src string) (*File, error) { return parser.Parse(src) }

// ParseQuery parses one standalone conjunctive query in the .mdq query
// syntax without the leading "query" keyword — `name(vars) <- body.`,
// e.g. `tomtemp(t, v) <- Measurements(t, "Tom Waits", v).` — the form
// ad-hoc clients (the mdserve answers endpoint) accept. A missing
// trailing period is tolerated.
func ParseQuery(src string) (*Query, error) { return parser.ParseQuery(src) }

// NewContextFromFile builds a quality Context from a parsed file's
// ontology and context declarations (input relations aside — the
// instance under assessment is passed to Assess or NewSession; see
// InputInstance). Extra options apply on top of the file's
// declarations, e.g. chase bounds or external sources.
func NewContextFromFile(f *File, opts ...Option) (*Context, error) {
	cfg, err := f.ContextConfig()
	if err != nil {
		return nil, err
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	return newContext(f.Ontology, cfg)
}

// InputInstance returns the file's declared input relations — the
// instance D under assessment — or nil when the file declares none.
func InputInstance(f *File) *Instance {
	if f.Context == nil {
		return nil
	}
	return f.Context.Input
}

// HasQualityContext reports whether the file declared quality-context
// elements (inputs, mappings, quality rules or versions).
func HasQualityContext(f *File) bool { return f.HasContext() }

// HospitalExampleSource returns the paper's running example (Tables
// I–V, Figure 1 dimensions, rules (7)–(9) and constraints) in .mdq
// form.
func HospitalExampleSource() string { return parser.FormatHospitalExample() }

// HospitalQualityExampleSource returns the running example extended
// with the Example 7 quality context (input instance, contextual
// mapping, quality predicates, version definition) in .mdq form.
func HospitalQualityExampleSource() string { return parser.FormatHospitalQualityExample() }
