package mdqa_test

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"testing"

	"repro/mdqa"
)

// buildSalesOntology is a small two-level workload shared by the
// facade tests: CitySales rolls up to CountrySales through a Geo
// dimension.
func buildSalesOntology(t *testing.T) *mdqa.Ontology {
	t.Helper()
	schema := mdqa.NewDimensionSchema("Geo")
	schema.MustAddCategory("City")
	schema.MustAddCategory("Country")
	schema.MustAddEdge("City", "Country")
	geo := mdqa.NewDimension(schema)
	geo.MustAddMember("Country", "Canada")
	geo.MustAddMember("Country", "Chile")
	for city, country := range map[string]string{
		"Ottawa": "Canada", "Toronto": "Canada", "Santiago": "Chile",
	} {
		geo.MustAddMember("City", city)
		geo.MustAddRollup(city, country)
	}
	o := mdqa.NewOntology()
	if err := o.AddDimension(geo); err != nil {
		t.Fatal(err)
	}
	if err := o.AddRelation(mdqa.NewCategoricalRelation("CitySales",
		mdqa.Cat("City", "Geo", "City"), mdqa.NonCat("Item"))); err != nil {
		t.Fatal(err)
	}
	if err := o.AddRelation(mdqa.NewCategoricalRelation("CountrySales",
		mdqa.Cat("Country", "Geo", "Country"), mdqa.NonCat("Item"))); err != nil {
		t.Fatal(err)
	}
	o.MustAddRule(mdqa.NewTGD("up",
		[]mdqa.Atom{mdqa.NewAtom("CountrySales", mdqa.Var("c"), mdqa.Var("i"))},
		[]mdqa.Atom{
			mdqa.NewAtom("CitySales", mdqa.Var("w"), mdqa.Var("i")),
			mdqa.NewAtom(mdqa.RollupPredName("City", "Country"), mdqa.Var("c"), mdqa.Var("w")),
		}))
	return o
}

func TestHospitalPipelineThroughFacade(t *testing.T) {
	qc, err := mdqa.HospitalQualityContext(mdqa.HospitalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := qc.Assess(context.Background(), mdqa.HospitalMeasurements())
	if err != nil {
		t.Fatal(err)
	}
	v, err := a.Version("Measurements")
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 2 {
		t.Fatalf("Table II through the facade: %d tuples, want 2", v.Len())
	}
	m := a.Measures()["Measurements"]
	if m.Original != 6 || m.Quality != 2 {
		t.Errorf("measure = %+v, want 6/2", m)
	}
	ans, err := a.CleanAnswer(mdqa.HospitalDoctorQuery())
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 1 {
		t.Errorf("clean answers = %v, want 1", ans)
	}
	if _, err := a.Version("NoSuch"); !errors.Is(err, mdqa.ErrUnknownRelation) {
		t.Errorf("Version(NoSuch) = %v, want ErrUnknownRelation", err)
	}
}

func TestSessionApplyAndSnapshotConsistency(t *testing.T) {
	o := buildSalesOntology(t)
	version := mdqa.NewRule("sales-q",
		mdqa.NewAtom("CitySales_q", mdqa.Var("w"), mdqa.Var("i")),
		mdqa.NewAtom("CitySales", mdqa.Var("w"), mdqa.Var("i")),
		mdqa.NewAtom("CountrySales", mdqa.Const("Canada"), mdqa.Var("i")))
	qc, err := mdqa.NewContext(o,
		mdqa.WithQualityVersion("CitySales", "CitySales_q", version))
	if err != nil {
		t.Fatal(err)
	}
	d := mdqa.NewInstance()
	if _, err := d.CreateRelation("CitySales", "City", "Item"); err != nil {
		t.Fatal(err)
	}
	d.MustInsert("CitySales", mdqa.Const("Ottawa"), mdqa.Const("skates"))
	d.MustInsert("CitySales", mdqa.Const("Santiago"), mdqa.Const("wine"))

	ctx := context.Background()
	prep, err := qc.Prepare(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := prep.NewSession(ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	before := sess.Snapshot()
	nBefore, err := before.NumTuples("CitySales")
	if err != nil {
		t.Fatal(err)
	}
	if nBefore != 2 {
		t.Fatalf("snapshot CitySales = %d, want 2", nBefore)
	}

	res, err := sess.Apply(ctx, []mdqa.Atom{
		mdqa.NewAtom("CitySales", mdqa.Const("Toronto"), mdqa.Const("syrup")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 1 {
		t.Errorf("Inserted = %d, want 1", res.Inserted)
	}
	// The old snapshot is frozen; a fresh one sees the delta and the
	// incrementally derived quality version.
	if n, _ := before.NumTuples("CitySales"); n != 2 {
		t.Errorf("frozen snapshot grew to %d", n)
	}
	after := sess.Snapshot()
	seq, err := after.VersionTuples("CitySales")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for tup := range seq {
		got[tup[0].Name+"/"+tup[1].Name] = true
	}
	want := []string{"Ottawa/skates", "Toronto/syrup"}
	if len(got) != len(want) {
		t.Fatalf("version tuples = %v, want %v", got, want)
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("version tuples missing %s (have %v)", w, got)
		}
	}
}

func TestStreamingEarlyStopAndDedup(t *testing.T) {
	o := buildSalesOntology(t)
	qc, err := mdqa.NewContext(o)
	if err != nil {
		t.Fatal(err)
	}
	d := mdqa.NewInstance()
	if _, err := d.CreateRelation("CitySales", "City", "Item"); err != nil {
		t.Fatal(err)
	}
	for _, row := range [][2]string{
		{"Ottawa", "skates"}, {"Toronto", "skates"}, {"Toronto", "syrup"},
	} {
		d.MustInsert("CitySales", mdqa.Const(row[0]), mdqa.Const(row[1]))
	}
	prep, err := qc.Prepare(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := prep.NewSession(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	snap := sess.Snapshot()

	// Ottawa and Toronto both sell skates: the Canada roll-up derives
	// CountrySales(Canada, skates) once, and the answer stream
	// deduplicates.
	q := mdqa.NewQuery(mdqa.NewAtom("Q", mdqa.Var("i")),
		mdqa.NewAtom("CountrySales", mdqa.Const("Canada"), mdqa.Var("i")))
	seen := map[string]int{}
	for ans, err := range snap.Answers(q) {
		if err != nil {
			t.Fatal(err)
		}
		seen[ans.Terms[0].Name]++
	}
	if len(seen) != 2 || seen["skates"] != 1 || seen["syrup"] != 1 {
		t.Errorf("streamed answers = %v, want skates:1 syrup:1", seen)
	}

	// Early break stops the stream without error.
	count := 0
	for _, err := range snap.Answers(q) {
		if err != nil {
			t.Fatal(err)
		}
		count++
		break
	}
	if count != 1 {
		t.Errorf("early break consumed %d answers", count)
	}

	// Unknown relations surface as typed errors from Tuples.
	if _, err := snap.Tuples("NoSuch"); !errors.Is(err, mdqa.ErrUnknownRelation) {
		t.Errorf("Tuples(NoSuch) = %v, want ErrUnknownRelation", err)
	}
	var ur *mdqa.UnknownRelationError
	if _, err := snap.VersionTuples("CitySales"); !errors.As(err, &ur) || ur.Relation != "CitySales" {
		t.Errorf("VersionTuples without a declared version = %v, want UnknownRelationError", err)
	}
}

func TestTypedErrorsThroughFacade(t *testing.T) {
	o := buildSalesOntology(t)

	// Unsafe version rule -> ErrUnsafeRule at construction.
	unsafe := mdqa.NewRule("bad",
		mdqa.NewAtom("CitySales_q", mdqa.Var("w"), mdqa.Var("other")),
		mdqa.NewAtom("CitySales", mdqa.Var("w"), mdqa.Var("i")))
	_, err := mdqa.NewContext(o, mdqa.WithQualityVersion("CitySales", "CitySales_q", unsafe))
	if !errors.Is(err, mdqa.ErrUnsafeRule) {
		t.Errorf("unsafe rule error = %v, want ErrUnsafeRule", err)
	}
	var ue *mdqa.UnsafeRuleError
	if !errors.As(err, &ue) || ue.Rule != "bad" || ue.Var != "other" {
		t.Errorf("UnsafeRuleError detail = %+v", ue)
	}

	// A chase bound of one round cannot saturate the roll-up ->
	// ErrBoundExceeded at assessment.
	bounded, err := mdqa.NewContext(o, mdqa.WithChaseBound(1))
	if err != nil {
		t.Fatal(err)
	}
	d := mdqa.NewInstance()
	if _, err := d.CreateRelation("CitySales", "City", "Item"); err != nil {
		t.Fatal(err)
	}
	d.MustInsert("CitySales", mdqa.Const("Ottawa"), mdqa.Const("skates"))
	_, err = bounded.Assess(context.Background(), d)
	if !errors.Is(err, mdqa.ErrBoundExceeded) {
		t.Errorf("bounded assess error = %v, want ErrBoundExceeded", err)
	}
	var be *mdqa.BoundExceededError
	if !errors.As(err, &be) || be.Rounds < 1 {
		t.Errorf("BoundExceededError detail = %+v", be)
	}

	// Strict consistency: the intensive-closed denial of the hospital
	// example fires -> ErrInconsistent carrying the violations.
	strict, err := mdqa.HospitalQualityContext(
		mdqa.HospitalOptions{WithConstraints: true},
		mdqa.WithStrictConsistency())
	if err != nil {
		t.Fatal(err)
	}
	_, err = strict.Assess(context.Background(), mdqa.HospitalMeasurements())
	if !errors.Is(err, mdqa.ErrInconsistent) {
		t.Fatalf("strict assess error = %v, want ErrInconsistent", err)
	}
	var ie *mdqa.InconsistentError
	if !errors.As(err, &ie) || len(ie.Violations) == 0 {
		t.Errorf("InconsistentError carries no violations: %+v", ie)
	}
	// Without the option the same context reports, not fails.
	lax, err := mdqa.HospitalQualityContext(mdqa.HospitalOptions{WithConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	a, err := lax.Assess(context.Background(), mdqa.HospitalMeasurements())
	if err != nil {
		t.Fatal(err)
	}
	if a.Consistent() || len(a.Violations()) == 0 {
		t.Error("lax assessment must report the violations")
	}
}

func TestCertainAnswerEnginesAgree(t *testing.T) {
	o := buildSalesOntology(t)
	comp, err := o.Compile(mdqa.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	comp.Instance.MustInsert("CitySales", mdqa.Const("Ottawa"), mdqa.Const("skates"))
	comp.Instance.MustInsert("CitySales", mdqa.Const("Santiago"), mdqa.Const("wine"))
	q := mdqa.NewQuery(mdqa.NewAtom("Q", mdqa.Var("i")),
		mdqa.NewAtom("CountrySales", mdqa.Const("Canada"), mdqa.Var("i")))
	ctx := context.Background()
	var sets []*mdqa.AnswerSet
	for _, eng := range []mdqa.QueryEngine{mdqa.EngineDeterministic, mdqa.EngineChase, mdqa.EngineRewrite} {
		as, err := mdqa.CertainAnswers(ctx, comp, q, mdqa.AnswerOptions{Engine: eng})
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		sets = append(sets, as)
	}
	for i := 1; i < len(sets); i++ {
		if !sets[0].Equal(sets[i]) {
			t.Errorf("engine disagreement: %v vs %v", sets[0], sets[i])
		}
	}
	if sets[0].Len() != 1 {
		t.Errorf("Canada items = %v, want exactly skates", sets[0])
	}
	ok, err := mdqa.HasCertainAnswer(ctx, comp,
		mdqa.NewQuery(mdqa.NewAtom("Q"),
			mdqa.NewAtom("CountrySales", mdqa.Const("Chile"), mdqa.Var("i"))),
		mdqa.AnswerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("Chile must certainly sell something")
	}
}

func TestContextFromParsedFile(t *testing.T) {
	f, err := mdqa.ParseSource(mdqa.HospitalQualityExampleSource())
	if err != nil {
		t.Fatal(err)
	}
	if !mdqa.HasQualityContext(f) {
		t.Fatal("example must declare a quality context")
	}
	qc, err := mdqa.NewContextFromFile(f)
	if err != nil {
		t.Fatal(err)
	}
	a, err := qc.Assess(context.Background(), mdqa.InputInstance(f))
	if err != nil {
		t.Fatal(err)
	}
	v, err := a.Version("Measurements")
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 2 {
		t.Errorf("parsed-file Table II = %d tuples, want 2", v.Len())
	}
	// Cancellation propagates through every facade entry point.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	fresh, err := mdqa.NewContextFromFile(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Assess(cancelled, mdqa.InputInstance(f)); err == nil {
		t.Error("cancelled assess must fail")
	}
	if _, err := fresh.Assess(context.Background(), mdqa.InputInstance(f)); err != nil {
		t.Errorf("context must stay usable after cancellation: %v", err)
	}
}

// TestSnapshotIterationOrderDeterministic pins the documented
// snapshot iteration orders: Relations is sorted by name, and
// Tuples/VersionTuples stream in sorted tuple order — independent of
// insertion/derivation order, so parallel runs can never reorder
// output built from snapshot streams (golden CLI files included).
func TestSnapshotIterationOrderDeterministic(t *testing.T) {
	o := buildSalesOntology(t)
	version := mdqa.NewRule("sales-q",
		mdqa.NewAtom("CitySales_q", mdqa.Var("w"), mdqa.Var("i")),
		mdqa.NewAtom("CitySales", mdqa.Var("w"), mdqa.Var("i")))
	d := mdqa.NewInstance()
	if _, err := d.CreateRelation("CitySales", "City", "Item"); err != nil {
		t.Fatal(err)
	}
	// Deliberately inserted out of sorted order.
	d.MustInsert("CitySales", mdqa.Const("Toronto"), mdqa.Const("syrup"))
	d.MustInsert("CitySales", mdqa.Const("Ottawa"), mdqa.Const("skates"))
	d.MustInsert("CitySales", mdqa.Const("Santiago"), mdqa.Const("wine"))

	for _, degree := range []int{1, 4} {
		qc, err := mdqa.NewContext(o,
			mdqa.WithQualityVersion("CitySales", "CitySales_q", version),
			mdqa.WithParallelism(degree))
		if err != nil {
			t.Fatal(err)
		}
		prep, err := qc.Prepare(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		sess, err := prep.NewSession(context.Background(), d)
		if err != nil {
			t.Fatal(err)
		}
		snap := sess.Snapshot()

		names := snap.Relations()
		if !sort.StringsAreSorted(names) {
			t.Fatalf("p=%d: Relations not sorted: %v", degree, names)
		}

		for _, stream := range []func() (func(func([]mdqa.Term) bool), error){
			func() (func(func([]mdqa.Term) bool), error) { return snap.Tuples("CitySales_q") },
			func() (func(func([]mdqa.Term) bool), error) { return snap.VersionTuples("CitySales") },
		} {
			seq, err := stream()
			if err != nil {
				t.Fatal(err)
			}
			var cities []string
			for tup := range seq {
				cities = append(cities, tup[0].Name)
			}
			want := []string{"Ottawa", "Santiago", "Toronto"}
			if fmt.Sprint(cities) != fmt.Sprint(want) {
				t.Fatalf("p=%d: streamed order %v, want %v", degree, cities, want)
			}
		}
	}
}
