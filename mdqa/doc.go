// Package mdqa is the public facade of the multidimensional
// data-quality engine — a Go reproduction of "Extending contexts with
// ontologies for multidimensional data quality assessment" (Milani,
// Bertossi & Ariyan, ICDE 2014) grown into a serving-oriented system.
//
// The workflow mirrors the paper's Figure 2:
//
//  1. Build a multidimensional ontology: dimensions (hierarchies of
//     categories with member rollups), categorical relations, and
//     dimensional Datalog± rules and constraints. See NewOntology,
//     NewDimensionSchema, NewDimension and NewTGD.
//
//  2. Wrap the ontology in a quality Context with functional options:
//
//     qc, err := mdqa.NewContext(ontology,
//     mdqa.WithMapping(mapRule),
//     mdqa.WithQualityRule(guideline),
//     mdqa.WithQualityVersion("Measurements", "Measurements_q", vRule),
//     mdqa.WithChaseBound(1000))
//
//     Contexts are immutable: all validation happens in NewContext and
//     two contexts never share option state.
//
//  3. Assess an instance: qc.Assess(ctx, d) runs the one-shot
//     pipeline (compile, merge, chase, evaluate, measure). Serving
//     processes instead call qc.Prepare(ctx) once and open sessions:
//     Session.Apply(ctx, delta) extends the fixpoint incrementally,
//     Session.Snapshot() hands concurrent readers frozen views.
//
//  4. Consume results: Assessment carries materialized quality
//     versions and departure measures; Snapshot streams quality
//     version tuples and clean query answers as iter.Seq iterators,
//     so large assessments never materialize whole answer sets.
//
// Every entry point that can do nontrivial work takes a leading
// context.Context and honors cancellation. Failures are structured:
// match ErrInconsistent, ErrUnsafeRule, ErrUnknownRelation and
// ErrBoundExceeded with errors.Is, and recover detail (constraint
// violations, the offending rule, the exceeded bound) with errors.As
// against *InconsistentError, *UnsafeRuleError, *UnknownRelationError
// and *BoundExceededError.
//
// The facade wraps the internal engine packages without forking them:
// Assess, sessions and snapshots all run on the prepared/incremental
// execution path (compiled join plans over interned terms, semi-naive
// delta chasing, copy-on-write snapshots) described in PERF.md.
package mdqa
