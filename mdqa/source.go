package mdqa

import (
	"context"
	"database/sql"
	"net/http"
	"time"

	"repro/internal/quality"
	"repro/internal/source"
)

// Live external sources: the paper's E_i as pluggable connectors
// instead of pre-materialized instances. A Source is bound to a
// context with WithSource; sessions resolve every binding when they
// open (TTL-cached and singleflighted across sessions) and re-poll via
// Session.Refresh, feeding tuple-level changes through the incremental
// chase.

// Source is a pluggable external data source: it declares the
// contextual relation it feeds and fetches that relation's current
// tuples with an opaque version token for cheap revalidation.
type Source = source.Source

// SourceSchema declares the relation a source feeds; Attrs is
// optional (payload-derived or synthetic names apply when empty), but
// required to order the fields of NDJSON object rows.
type SourceSchema = source.Schema

// SourceResult is one fetch outcome: the relation's full current
// extension, or Unchanged when the upstream proved it still matches
// the previous version.
type SourceResult = source.Result

// SourceStats counts one binding's resolver activity: fetches
// (including revalidations), errors, TTL cache hits and stale serves.
type SourceStats = source.Stats

// SourceOption tunes one source binding.
type SourceOption func(*source.Binding)

// SourceTTL sets how long a fetched snapshot stays fresh: within the
// TTL, opening a session serves the cached snapshot without consulting
// the source. The default (0) revalidates on every resolve —
// connectors still short-circuit via version tokens (file mtime, HTTP
// If-None-Match), so revalidation is cheap.
func SourceTTL(ttl time.Duration) SourceOption {
	return func(b *source.Binding) { b.TTL = ttl }
}

// SourceAllowStale opts the binding into degraded serving: when a
// fetch fails but a previously fetched snapshot exists, the stale
// snapshot is served instead of failing with ErrSourceUnavailable.
func SourceAllowStale() SourceOption {
	return func(b *source.Binding) { b.AllowStale = true }
}

// WithSource binds a live external source to the context under a name
// (used in metrics and errors; unique per context, as is the relation
// the source feeds). Unlike WithExternalSource, the tuples are not
// baked into the compiled context: each session resolves the source
// when it opens and can re-poll it with Session.Refresh.
func WithSource(name string, src Source, opts ...SourceOption) Option {
	return func(cfg *quality.Config) {
		b := source.Binding{Name: name, Src: src}
		for _, o := range opts {
			o(&b)
		}
		cfg.Sources = append(cfg.Sources, b)
	}
}

// NewFileSource reads a relation from a CSV or NDJSON/JSON file
// (format by extension), with mtime-based change detection. CSV's
// first record is a header naming the attributes unless the schema
// declares them.
func NewFileSource(path string, schema SourceSchema) Source {
	return source.NewFile(path, schema)
}

// HTTPSourceOption tunes an HTTP source.
type HTTPSourceOption = source.HTTPOption

// HTTPSourceClient substitutes the http.Client used by an HTTP
// source.
func HTTPSourceClient(c *http.Client) HTTPSourceOption { return source.WithClient(c) }

// HTTPSourceRetries sets how many times a transient failure (5xx,
// 429, connection error) is retried with exponential backoff.
func HTTPSourceRetries(n int) HTTPSourceOption { return source.WithRetries(n) }

// HTTPSourceBackoff sets the initial retry backoff, doubled per
// attempt.
func HTTPSourceBackoff(d time.Duration) HTTPSourceOption { return source.WithBackoff(d) }

// NewHTTPSource reads a relation from an HTTP endpoint serving JSON
// or NDJSON rows, revalidating with ETag/If-None-Match when the
// server provides ETags and falling back to body hashing otherwise.
func NewHTTPSource(url string, schema SourceSchema, opts ...HTTPSourceOption) Source {
	return source.NewHTTP(url, schema, opts...)
}

// SQLSourceOption tunes a SQL source.
type SQLSourceOption = source.SQLOption

// SQLSourcePlaceholder sets the positional placeholder syntax the
// driver expects (default "?"; Postgres drivers pass func(i) = "$i").
func SQLSourcePlaceholder(f func(i int) string) SQLSourceOption {
	return source.WithPlaceholder(f)
}

// NewSQLSource reads a relation from a parameterized query over a
// database/sql handle: ":name" parameters are substituted for the
// driver's positional placeholders and resolved against params up
// front. The binary ships no drivers — callers register their own and
// wire the source programmatically.
func NewSQLSource(db *sql.DB, query string, params map[string]any, schema SourceSchema, opts ...SQLSourceOption) (Source, error) {
	return source.NewSQL(db, query, params, schema, opts...)
}

// NewMemSource builds a settable in-memory source — tests and
// benchmarks drive Session.Refresh with it.
func NewMemSource(schema SourceSchema, tuples ...[]string) *MemSource {
	return source.NewMem(schema, tuples...)
}

// MemSource is an in-memory source whose tuples are set
// programmatically; every Set/Add bumps its version.
type MemSource = source.Mem

// SourceStatsByName returns the per-binding resolver counters, keyed
// by binding name (nil when the context declares no sources). Serving
// layers poll it at metrics-scrape time.
func (c *Context) SourceStatsByName() map[string]SourceStats { return c.q.SourceStats() }

// SourceFetchLatencies returns the retained source fetch-duration
// samples, for percentile rendering (nil when the context declares no
// sources).
func (c *Context) SourceFetchLatencies() []time.Duration { return c.q.SourceFetchLatencies() }

// SourceNames lists the context's source binding names in declaration
// order.
func (c *Context) SourceNames() []string {
	var out []string
	for _, b := range c.q.SourceBindings() {
		out = append(out, b.Name)
	}
	return out
}

// SourceRefresh reports what one binding contributed to a Refresh.
type SourceRefresh = quality.SourceRefresh

// RefreshResult reports what Session.Refresh did: per-binding version
// movement and tuple counts, whether anything changed, and whether a
// removal forced a rebuild instead of an incremental apply.
type RefreshResult = quality.RefreshResult

// Refresh re-polls every source bound to the session's context
// (bypassing the TTL) and folds tuple-level changes into the live
// assessment: additions stream through the same incremental chase as
// Apply, removals rebuild the session from the retained applied state
// (see RefreshResult.Rebuilt). A failed fetch surfaces as
// ErrSourceUnavailable and leaves the session untouched; a session
// whose context has no sources returns an empty result.
func (s *Session) Refresh(ctx context.Context) (*RefreshResult, error) {
	return s.s.Refresh(ctx)
}
