package mdqa

import (
	"fmt"
	"time"

	"repro/internal/history"
	"repro/internal/quality"
)

// DefaultHistoryDepth is how many version snapshots a session retains
// in memory when WithHistoryDepth is not used.
const DefaultHistoryDepth = history.DefaultDepth

// Version is the metadata of one session version: its sequence number
// (0 for the initial saturated state, +1 per applied batch or changed
// refresh), WAL sequence, wall time, batch size, cumulative violation
// count, the violations the version introduced over its predecessor,
// and the departure score of every versioned relation.
type Version = history.Version

// Score is the departure measure of one versioned relation at one
// version: |D|, |D^q| and their intersection, with CleanFraction and
// Distance derived from them — Measure in serializable form.
type Score = history.Score

// ViewOption selects which version of a session a View (or Assess)
// reads. The zero set of options reads the latest state.
type ViewOption func(*viewOpts)

type viewOpts struct {
	at      uint64
	hasAt   bool
	asOf    time.Time
	hasAsOf bool
}

// At pins a view to an exact version number. Versions older than the
// session's retained ring fail with ErrVersionEvicted; versions newer
// than the latest fail with a plain error naming the latest.
func At(version uint64) ViewOption {
	return func(o *viewOpts) { o.at, o.hasAt = version, true }
}

// AsOf pins a view to the newest version at or before a wall-clock
// instant. An instant before the session's first known version fails
// with ErrVersionEvicted. Mutually exclusive with At.
func AsOf(t time.Time) ViewOption {
	return func(o *viewOpts) { o.asOf, o.hasAsOf = t, true }
}

// resolve reduces the option set to an exact version number (hasAt
// false means "latest").
func (s *Session) resolve(opts []ViewOption) (viewOpts, error) {
	var o viewOpts
	for _, opt := range opts {
		opt(&o)
	}
	if o.hasAt && o.hasAsOf {
		return viewOpts{}, fmt.Errorf("mdqa: At and AsOf are mutually exclusive")
	}
	if o.hasAsOf {
		seq, err := s.s.AsOfTime(o.asOf)
		if err != nil {
			return viewOpts{}, err
		}
		o.at, o.hasAt = seq, true
	}
	return o, nil
}

// View returns a frozen, consistent Snapshot of the session — the
// latest state by default, an exact version under At, or the newest
// version not after an instant under AsOf. Every Snapshot accessor
// (Answers, CleanAnswers, Explain, Tuples, ...) works identically at
// any version; historical views are exactly as cheap as latest ones
// while the version is retained in memory. View is the one snapshot
// surface — Session.Snapshot and Assessment.Snapshot delegate to it.
func (s *Session) View(opts ...ViewOption) (*Snapshot, error) {
	o, err := s.resolve(opts)
	if err != nil {
		return nil, err
	}
	if !o.hasAt {
		inst, ver, ok := s.s.View()
		return &Snapshot{inst: inst, versionPred: s.versionPred, vorder: s.vorder, ver: ver, hasVer: ok}, nil
	}
	inst, ver, err := s.s.At(o.at)
	if err != nil {
		return nil, err
	}
	return &Snapshot{inst: inst, versionPred: s.versionPred, vorder: s.vorder, ver: ver, hasVer: true}, nil
}

// History returns the metadata of every version the session knows
// about, ascending by sequence; nil when history is disabled. Metadata
// is kept for every version ever produced — only the snapshot
// instances behind old versions are evicted.
func (s *Session) History() []Version { return s.s.History() }

// LatestVersion returns the newest version's metadata (false when
// history is disabled).
func (s *Session) LatestVersion() (Version, bool) { return s.s.LatestVersion() }

// OldestRetained returns the oldest version whose snapshot is still
// held in memory — the boundary below which At fails with
// ErrVersionEvicted (false when history is disabled).
func (s *Session) OldestRetained() (uint64, bool) { return s.s.OldestRetained() }

// ResolveAsOf resolves a wall-clock instant to the version number an
// AsOf view of it would read, without building the view.
func (s *Session) ResolveAsOf(t time.Time) (uint64, error) { return s.s.AsOfTime(t) }

// Attribute reports which version — and therefore which applied
// batch — introduced the given violation, by consulting the
// per-version delta-attribution records. false when the violation is
// not attributed (history disabled, or the record predates a source
// rebuild that reset violation accounting).
func (s *Session) Attribute(v Violation) (Version, bool) { return s.s.Attribute(v) }

// WithHistoryDepth bounds how many version snapshots each session
// retains in memory for time travel (0 = the default, currently 8;
// negative disables history entirely — View(At(...)) then fails with
// ErrHistoryDisabled). Older versions keep their metadata; a durable
// serving layer can still reconstruct them from disk.
func WithHistoryDepth(depth int) Option {
	return func(cfg *quality.Config) { cfg.HistoryDepth = depth }
}

// WithHistoryBytes caps the estimated memory of each session's
// retained version snapshots; the oldest are evicted first and the
// latest always survives. 0 leaves retention bounded by depth alone.
func WithHistoryBytes(n int64) Option {
	return func(cfg *quality.Config) { cfg.HistoryBytes = n }
}
