package mdqa

import (
	"context"

	"repro/internal/datalog"
	"repro/internal/persist"
)

// SessionState is the durable state of one session: the saturated
// contextual instance, the raw applied facts backing the departure
// measures, and the portable chase counters. The mdserve persistence
// layer encodes it into snapshot files (package internal/persist) and
// feeds it back through Prepared.RestoreSession on recovery.
type SessionState = persist.SessionState

// Interner is the dense term-id table instances share; exposed so the
// persistence layer can decode snapshots against a prepared context's
// base (see Prepared.BaseInterner).
type Interner = datalog.Interner

// ExportState returns the session's durable state as frozen
// copy-on-write snapshots: cheap, safe against concurrent readers, and
// serialized with Apply. Restoring the state (in this process or after
// a restart) yields a session whose answers, assessments, violations
// and chase counters are identical to this one's at export time.
func (s *Session) ExportState() SessionState {
	return s.s.Export()
}

// RestoreSession rebuilds a session from exported (or decoded) durable
// state without re-running the cold saturation chase: the chased
// instance is adopted as-is, the incremental chase resumes from the
// recorded counters, and only the derived layer is recomputed. The
// state must come from a session of this same prepared context —
// decoded snapshots enforce that via interner prefix verification.
func (p *Prepared) RestoreSession(ctx context.Context, st SessionState) (*Session, error) {
	s, err := p.p.RestoreSession(ctx, st)
	if err != nil {
		return nil, err
	}
	vorder := s.Versioned()
	vp := make(map[string]string, len(vorder))
	for _, rel := range vorder {
		vp[rel] = s.VersionPred(rel)
	}
	return &Session{s: s, versionPred: vp, vorder: vorder}, nil
}

// BaseInterner exposes the prepared context's compile-time interner
// for snapshot decoding (persist.ReadSnapshot): restored rows keep the
// exact ids the compiled plans were built over.
func (p *Prepared) BaseInterner() *Interner {
	return p.p.BaseInterner()
}
