package mdqa_test

import (
	"context"
	"fmt"
	"sort"

	"repro/mdqa"
)

// salesContext builds the small Geo workload used by the examples: a
// City -> Country dimension, an upward roll-up rule, and a quality
// version keeping only city sales whose item also certainly sells at
// the Canada level.
func salesContext() (*mdqa.Context, *mdqa.Instance, error) {
	schema := mdqa.NewDimensionSchema("Geo")
	schema.MustAddCategory("City")
	schema.MustAddCategory("Country")
	schema.MustAddEdge("City", "Country")
	geo := mdqa.NewDimension(schema)
	geo.MustAddMember("Country", "Canada")
	geo.MustAddMember("Country", "Chile")
	for _, m := range []struct{ city, country string }{
		{"Ottawa", "Canada"}, {"Toronto", "Canada"}, {"Santiago", "Chile"},
	} {
		geo.MustAddMember("City", m.city)
		geo.MustAddRollup(m.city, m.country)
	}
	o := mdqa.NewOntology()
	if err := o.AddDimension(geo); err != nil {
		return nil, nil, err
	}
	for _, rel := range []*mdqa.CategoricalRelation{
		mdqa.NewCategoricalRelation("CitySales", mdqa.Cat("City", "Geo", "City"), mdqa.NonCat("Item")),
		mdqa.NewCategoricalRelation("CountrySales", mdqa.Cat("Country", "Geo", "Country"), mdqa.NonCat("Item")),
	} {
		if err := o.AddRelation(rel); err != nil {
			return nil, nil, err
		}
	}
	o.MustAddRule(mdqa.NewTGD("up",
		[]mdqa.Atom{mdqa.NewAtom("CountrySales", mdqa.Var("c"), mdqa.Var("i"))},
		[]mdqa.Atom{
			mdqa.NewAtom("CitySales", mdqa.Var("w"), mdqa.Var("i")),
			mdqa.NewAtom(mdqa.RollupPredName("City", "Country"), mdqa.Var("c"), mdqa.Var("w")),
		}))

	version := mdqa.NewRule("sales-q",
		mdqa.NewAtom("CitySales_q", mdqa.Var("w"), mdqa.Var("i")),
		mdqa.NewAtom("CitySales", mdqa.Var("w"), mdqa.Var("i")),
		mdqa.NewAtom("CountrySales", mdqa.Const("Canada"), mdqa.Var("i")))
	qc, err := mdqa.NewContext(o,
		mdqa.WithQualityVersion("CitySales", "CitySales_q", version),
		mdqa.WithChaseBound(100))
	if err != nil {
		return nil, nil, err
	}

	d := mdqa.NewInstance()
	if _, err := d.CreateRelation("CitySales", "City", "Item"); err != nil {
		return nil, nil, err
	}
	d.MustInsert("CitySales", mdqa.Const("Ottawa"), mdqa.Const("skates"))
	d.MustInsert("CitySales", mdqa.Const("Santiago"), mdqa.Const("wine"))
	return qc, d, nil
}

// ExampleNewContext builds a quality context with functional options
// and reads its configuration back.
func ExampleNewContext() {
	qc, _, err := salesContext()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("versioned relations:", qc.Versioned())
	fmt.Println("version predicate:", qc.VersionPred("CitySales"))
	// Output:
	// versioned relations: [CitySales]
	// version predicate: CitySales_q
}

// ExampleContext_Assess runs the one-shot Figure 2 pipeline and reads
// the departure measure.
func ExampleContext_Assess() {
	qc, d, err := salesContext()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	a, err := qc.Assess(context.Background(), d)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	m := a.Measures()["CitySales"]
	fmt.Printf("|D|=%d |D_q|=%d clean-fraction=%.2f\n", m.Original, m.Quality, m.CleanFraction())
	// Output:
	// |D|=2 |D_q|=1 clean-fraction=0.50
}

// ExampleSession_Apply feeds a session incrementally: the delta is
// chased semi-naively instead of re-assessing from scratch.
func ExampleSession_Apply() {
	qc, d, err := salesContext()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	ctx := context.Background()
	prep, err := qc.Prepare(ctx)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sess, err := prep.NewSession(ctx, d)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := sess.Apply(ctx, []mdqa.Atom{
		mdqa.NewAtom("CitySales", mdqa.Const("Toronto"), mdqa.Const("syrup")),
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	n, err := sess.Snapshot().NumTuples("CitySales_q")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("inserted=%d rebuilt=%v clean-tuples=%d\n", res.Inserted, res.Rebuilt, n)
	// Output:
	// inserted=1 rebuilt=false clean-tuples=2
}

// ExampleWithParallelism builds two contexts over the same ontology —
// one pinned to the sequential engine, one fanning chase and eval
// rounds across four workers — and shows that parallelism changes
// only how the assessment is computed, never what it computes.
func ExampleWithParallelism() {
	for _, degree := range []int{1, 4} {
		qc, d, err := salesContext()
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		// Rebuild the context with the explicit degree (parallelism is
		// fixed at construction; 0, the default, uses all cores).
		qc, err = mdqa.NewContext(qc.Ontology(),
			mdqa.WithQualityVersion("CitySales", "CitySales_q",
				mdqa.NewRule("sales-q",
					mdqa.NewAtom("CitySales_q", mdqa.Var("w"), mdqa.Var("i")),
					mdqa.NewAtom("CitySales", mdqa.Var("w"), mdqa.Var("i")),
					mdqa.NewAtom("CountrySales", mdqa.Const("Canada"), mdqa.Var("i")))),
			mdqa.WithParallelism(degree))
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		a, err := qc.Assess(context.Background(), d)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		m := a.Measures()["CitySales"]
		fmt.Printf("p=%d: |D|=%d |D_q|=%d clean-fraction=%.2f\n", degree, m.Original, m.Quality, m.CleanFraction())
	}
	// Output:
	// p=1: |D|=2 |D_q|=1 clean-fraction=0.50
	// p=4: |D|=2 |D_q|=1 clean-fraction=0.50
}

// ExampleSnapshot_CleanAnswers streams clean query answers off a
// frozen snapshot without materializing an answer set.
func ExampleSnapshot_CleanAnswers() {
	qc, d, err := salesContext()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	prep, err := qc.Prepare(context.Background())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sess, err := prep.NewSession(context.Background(), d)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// Ask for all city sales; the clean rewriting answers over
	// CitySales_q, so only quality tuples stream out.
	q := mdqa.NewQuery(mdqa.NewAtom("Q", mdqa.Var("w"), mdqa.Var("i")),
		mdqa.NewAtom("CitySales", mdqa.Var("w"), mdqa.Var("i")))
	var rows []string
	for ans, err := range sess.Snapshot().CleanAnswers(q) {
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		rows = append(rows, ans.Terms[0].Name+" sells "+ans.Terms[1].Name)
	}
	sort.Strings(rows)
	for _, r := range rows {
		fmt.Println(r)
	}
	// Output:
	// Ottawa sells skates
}
