// Sensor-network data quality: a deployment dimension
// (Sensor → Station → Region) and a calibration guideline expressed as
// a dimensional rule. Readings qualify only when their sensor belongs
// to a station that was calibrated in the reading's month — the same
// context pattern as the paper's Example 7, on a different domain.
// This example also shows the streaming side of the facade: clean
// answers are consumed as an iterator off the assessment snapshot.
//
// Run with: go run ./examples/sensors
package main

import (
	"context"
	"fmt"
	"log"

	"repro/mdqa"
)

func main() {
	ctx := context.Background()

	// Deployment dimension: Sensor -> Station -> Region.
	ds := mdqa.NewDimensionSchema("Deployment")
	for _, c := range []string{"Sensor", "Station", "Region"} {
		ds.MustAddCategory(c)
	}
	ds.MustAddEdge("Sensor", "Station")
	ds.MustAddEdge("Station", "Region")
	dep := mdqa.NewDimension(ds)
	dep.MustAddMember("Region", "North")
	dep.MustAddMember("Region", "South")
	for station, region := range map[string]string{
		"ST1": "North", "ST2": "North", "ST3": "South",
	} {
		dep.MustAddMember("Station", station)
		dep.MustAddRollup(station, region)
	}
	for sensor, station := range map[string]string{
		"s1": "ST1", "s2": "ST1", "s3": "ST2", "s4": "ST3",
	} {
		dep.MustAddMember("Sensor", "Sensor-"+sensor)
		dep.MustAddRollup("Sensor-"+sensor, station)
	}

	// Time dimension: Day -> Month.
	ts := mdqa.NewDimensionSchema("Time")
	ts.MustAddCategory("Day")
	ts.MustAddCategory("Month")
	ts.MustAddEdge("Day", "Month")
	tm := mdqa.NewDimension(ts)
	tm.MustAddMember("Month", "2026-05")
	tm.MustAddMember("Month", "2026-06")
	for _, d := range []string{"2026-05-30", "2026-05-31", "2026-06-01", "2026-06-02"} {
		tm.MustAddMember("Day", d)
		tm.MustAddRollup(d, d[:7])
	}

	o := mdqa.NewOntology()
	must(o.AddDimension(dep))
	must(o.AddDimension(tm))

	// Calibrations live at the Station level and month granularity;
	// SensorCalibrated is virtual, filled by downward navigation.
	must(o.AddRelation(mdqa.NewCategoricalRelation("Calibrated",
		mdqa.Cat("Station", "Deployment", "Station"),
		mdqa.Cat("Month", "Time", "Month"))))
	must(o.AddRelation(mdqa.NewCategoricalRelation("SensorCalibrated",
		mdqa.Cat("Sensor", "Deployment", "Sensor"),
		mdqa.Cat("Month", "Time", "Month"))))
	o.MustAddFact("Calibrated", "ST1", "2026-06")
	o.MustAddFact("Calibrated", "ST3", "2026-05")

	// Downward dimensional rule: a station calibration covers every
	// sensor of the station (the paper's rule (8) pattern, without an
	// invented attribute).
	o.MustAddRule(mdqa.NewTGD("calib-down",
		[]mdqa.Atom{mdqa.NewAtom("SensorCalibrated", mdqa.Var("s"), mdqa.Var("m"))},
		[]mdqa.Atom{
			mdqa.NewAtom("Calibrated", mdqa.Var("st"), mdqa.Var("m")),
			mdqa.NewAtom(mdqa.RollupPredName("Sensor", "Station"), mdqa.Var("st"), mdqa.Var("s")),
		}))

	fmt.Println("== Sensor ontology ==")
	fmt.Print(o.Summary())

	// Readings under assessment: Readings(Day, Sensor, Value).
	d := mdqa.NewInstance()
	if _, err := d.CreateRelation("Readings", "Day", "Sensor", "Value"); err != nil {
		log.Fatal(err)
	}
	rows := [][3]string{
		{"2026-06-01", "Sensor-s1", "21.5"}, // ST1 calibrated 2026-06: clean
		{"2026-06-02", "Sensor-s2", "22.1"}, // ST1: clean
		{"2026-06-01", "Sensor-s3", "19.8"}, // ST2 never calibrated: dirty
		{"2026-05-31", "Sensor-s4", "18.0"}, // ST3 calibrated 2026-05: clean
		{"2026-06-02", "Sensor-s4", "18.4"}, // ST3 calibration expired: dirty
	}
	for _, r := range rows {
		d.MustInsert("Readings", mdqa.Const(r[0]), mdqa.Const(r[1]), mdqa.Const(r[2]))
	}
	fmt.Println("\n== Readings under assessment ==")
	fmt.Print(mdqa.FormatRelation(d.Relation("Readings")))

	// Quality context: a reading is clean when its sensor was
	// calibrated in the reading's month.
	day, sensor, val, month := mdqa.Var("d"), mdqa.Var("s"), mdqa.Var("v"), mdqa.Var("m")
	version := mdqa.NewRule("readings-q",
		mdqa.NewAtom("Readings_q", day, sensor, val),
		mdqa.NewAtom("Readings", day, sensor, val),
		mdqa.NewAtom(mdqa.RollupPredName("Day", "Month"), month, day),
		mdqa.NewAtom("SensorCalibrated", sensor, month))
	qc, err := mdqa.NewContext(o,
		mdqa.WithQualityVersion("Readings", "Readings_q", version))
	must(err)

	a, err := qc.Assess(ctx, d)
	must(err)
	fmt.Println("\n== Quality version (calibrated readings only) ==")
	rq, err := a.Version("Readings")
	must(err)
	fmt.Print(mdqa.FormatRelation(rq))
	m := a.Measures()["Readings"]
	fmt.Printf("\nclean fraction: %.2f (3 of 5 readings)\n", m.CleanFraction())

	// Clean query answering, streamed: ask for North-region readings;
	// dimensional navigation resolves sensors to regions, the clean
	// rewriting answers over Readings_q, and the iterator yields
	// answers one by one without materializing a set.
	q := mdqa.NewQuery(
		mdqa.NewAtom("Q", mdqa.Var("d"), mdqa.Var("s"), mdqa.Var("v")),
		mdqa.NewAtom("Readings", mdqa.Var("d"), mdqa.Var("s"), mdqa.Var("v")),
		mdqa.NewAtom(mdqa.RollupPredName("Sensor", "Station"), mdqa.Var("st"), mdqa.Var("s")),
		mdqa.NewAtom(mdqa.RollupPredName("Station", "Region"), mdqa.Const("North"), mdqa.Var("st")))
	fmt.Println("\nclean North-region readings (streamed):")
	for ans, err := range a.Snapshot().CleanAnswers(q) {
		must(err)
		fmt.Printf("  %s\n", ans)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
