// Sensor-network data quality: a deployment dimension
// (Sensor → Station → Region) and a calibration guideline expressed as
// a dimensional rule. Readings qualify only when their sensor belongs
// to a station that was calibrated in the reading's month — the same
// context pattern as the paper's Example 7, on a different domain.
//
// Run with: go run ./examples/sensors
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/eval"
	"repro/internal/hm"
	"repro/internal/quality"
	"repro/internal/storage"
)

func main() {
	// Deployment dimension: Sensor -> Station -> Region.
	ds := hm.NewDimensionSchema("Deployment")
	for _, c := range []string{"Sensor", "Station", "Region"} {
		ds.MustAddCategory(c)
	}
	ds.MustAddEdge("Sensor", "Station")
	ds.MustAddEdge("Station", "Region")
	dep := hm.NewDimension(ds)
	dep.MustAddMember("Region", "North")
	dep.MustAddMember("Region", "South")
	for station, region := range map[string]string{
		"ST1": "North", "ST2": "North", "ST3": "South",
	} {
		dep.MustAddMember("Station", station)
		dep.MustAddRollup(station, region)
	}
	for sensor, station := range map[string]string{
		"s1": "ST1", "s2": "ST1", "s3": "ST2", "s4": "ST3",
	} {
		dep.MustAddMember("Sensor", "Sensor-"+sensor)
		dep.MustAddRollup("Sensor-"+sensor, station)
	}

	// Time dimension: Day -> Month.
	ts := hm.NewDimensionSchema("Time")
	ts.MustAddCategory("Day")
	ts.MustAddCategory("Month")
	ts.MustAddEdge("Day", "Month")
	tm := hm.NewDimension(ts)
	tm.MustAddMember("Month", "2026-05")
	tm.MustAddMember("Month", "2026-06")
	for _, d := range []string{"2026-05-30", "2026-05-31", "2026-06-01", "2026-06-02"} {
		tm.MustAddMember("Day", d)
		tm.MustAddRollup(d, d[:7])
	}

	o := core.NewOntology()
	must(o.AddDimension(dep))
	must(o.AddDimension(tm))

	// SensorAssignment places sensors; Calibrations live at the
	// Station level and month granularity.
	must(o.AddRelation(core.NewCategoricalRelation("Calibrated",
		core.Cat("Station", "Deployment", "Station"),
		core.Cat("Month", "Time", "Month"))))
	must(o.AddRelation(core.NewCategoricalRelation("SensorCalibrated",
		core.Cat("Sensor", "Deployment", "Sensor"),
		core.Cat("Month", "Time", "Month"))))
	o.MustAddFact("Calibrated", "ST1", "2026-06")
	o.MustAddFact("Calibrated", "ST3", "2026-05")

	// Downward dimensional rule: a station calibration covers every
	// sensor of the station (the paper's rule (8) pattern, without an
	// invented attribute).
	o.MustAddRule(datalog.NewTGD("calib-down",
		[]datalog.Atom{datalog.A("SensorCalibrated", datalog.V("s"), datalog.V("m"))},
		[]datalog.Atom{
			datalog.A("Calibrated", datalog.V("st"), datalog.V("m")),
			datalog.A(hm.RollupPredName("Sensor", "Station"), datalog.V("st"), datalog.V("s")),
		}))

	fmt.Println("== Sensor ontology ==")
	fmt.Print(o.Summary())

	// Readings under assessment: Readings(Day, Sensor, Value).
	d := storage.NewInstance()
	if _, err := d.CreateRelation("Readings", "Day", "Sensor", "Value"); err != nil {
		log.Fatal(err)
	}
	rows := [][3]string{
		{"2026-06-01", "Sensor-s1", "21.5"}, // ST1 calibrated 2026-06: clean
		{"2026-06-02", "Sensor-s2", "22.1"}, // ST1: clean
		{"2026-06-01", "Sensor-s3", "19.8"}, // ST2 never calibrated: dirty
		{"2026-05-31", "Sensor-s4", "18.0"}, // ST3 calibrated 2026-05: clean
		{"2026-06-02", "Sensor-s4", "18.4"}, // ST3 calibration expired: dirty
	}
	for _, r := range rows {
		d.MustInsert("Readings", datalog.C(r[0]), datalog.C(r[1]), datalog.C(r[2]))
	}
	fmt.Println("\n== Readings under assessment ==")
	fmt.Print(storage.FormatRelation(d.Relation("Readings")))

	// Quality context: a reading is clean when its sensor was
	// calibrated in the reading's month.
	ctx := quality.NewContext(o)
	day, sensor, val, month := datalog.V("d"), datalog.V("s"), datalog.V("v"), datalog.V("m")
	version := eval.NewRule("readings-q",
		datalog.A("Readings_q", day, sensor, val),
		datalog.A("Readings", day, sensor, val),
		datalog.A(hm.RollupPredName("Day", "Month"), month, day),
		datalog.A("SensorCalibrated", sensor, month))
	must(ctx.DefineQualityVersion("Readings", "Readings_q", version))

	a, err := ctx.Assess(d)
	must(err)
	fmt.Println("\n== Quality version (calibrated readings only) ==")
	fmt.Print(storage.FormatRelation(a.Versions["Readings"]))
	m := a.Measures["Readings"]
	fmt.Printf("\nclean fraction: %.2f (3 of 5 readings)\n", m.CleanFraction())

	// Clean query answering: June averages-worthy readings per region
	// ask for North readings; dimensional navigation resolves sensors
	// to regions.
	q := datalog.NewQuery(
		datalog.A("Q", datalog.V("d"), datalog.V("s"), datalog.V("v")),
		datalog.A("Readings", datalog.V("d"), datalog.V("s"), datalog.V("v")),
		datalog.A(hm.RollupPredName("Sensor", "Station"), datalog.V("st"), datalog.V("s")),
		datalog.A(hm.RollupPredName("Station", "Region"), datalog.C("North"), datalog.V("st")))
	clean, err := a.CleanAnswer(q)
	must(err)
	fmt.Printf("\nclean North-region readings:\n%s", clean)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
