// Quickstart: build a small multidimensional ontology in code, chase
// it, and answer a query through dimensional navigation.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/hm"
	"repro/internal/qa"
	"repro/internal/storage"
)

func main() {
	// 1. A two-level dimension: City -> Country.
	schema := hm.NewDimensionSchema("Geo")
	schema.MustAddCategory("City")
	schema.MustAddCategory("Country")
	schema.MustAddEdge("City", "Country")

	geo := hm.NewDimension(schema)
	geo.MustAddMember("Country", "Canada")
	geo.MustAddMember("Country", "Chile")
	for city, country := range map[string]string{
		"Ottawa": "Canada", "Toronto": "Canada", "Santiago": "Chile",
	} {
		geo.MustAddMember("City", city)
		geo.MustAddRollup(city, country)
	}

	// 2. A categorical relation at the City level with sales data,
	//    and a virtual relation at the Country level.
	o := core.NewOntology()
	must(o.AddDimension(geo))
	must(o.AddRelation(core.NewCategoricalRelation("CitySales",
		core.Cat("City", "Geo", "City"),
		core.NonCat("Item"))))
	must(o.AddRelation(core.NewCategoricalRelation("CountrySales",
		core.Cat("Country", "Geo", "Country"),
		core.NonCat("Item"))))
	o.MustAddFact("CitySales", "Ottawa", "skates")
	o.MustAddFact("CitySales", "Toronto", "maple syrup")
	o.MustAddFact("CitySales", "Santiago", "wine")

	// 3. An upward dimensional rule (the paper's rule (7) pattern):
	//    CountrySales(c, i) <- CitySales(w, i), CountryCity(c, w).
	o.MustAddRule(datalog.NewTGD("up",
		[]datalog.Atom{datalog.A("CountrySales", datalog.V("c"), datalog.V("i"))},
		[]datalog.Atom{
			datalog.A("CitySales", datalog.V("w"), datalog.V("i")),
			datalog.A(hm.RollupPredName("City", "Country"), datalog.V("c"), datalog.V("w")),
		}))

	// 4. Compile to Datalog± and inspect the classification.
	comp, err := o.Compile(core.CompileOptions{ReferentialNCs: true})
	must(err)
	fmt.Println("ontology summary:")
	fmt.Print(o.Summary())
	fmt.Println("classification:", comp.Report)

	// 5. Chase: materialize the upward navigation.
	res, err := chase.Run(comp.Program, comp.Instance, chase.Options{})
	must(err)
	fmt.Printf("\nchase: %d firings, saturated=%v\n\n", res.Fired, res.Saturated)
	fmt.Print(storage.FormatRelationSorted(res.Instance.Relation("CountrySales")))

	// 6. Query with DeterministicWSQAns — no materialization needed.
	q := datalog.NewQuery(
		datalog.A("Q", datalog.V("i")),
		datalog.A("CountrySales", datalog.C("Canada"), datalog.V("i")))
	answers, err := qa.Answer(comp.Program, comp.Instance, q, qa.Options{})
	must(err)
	fmt.Printf("\nitems sold in Canada (via top-down QA):\n%s", answers)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
