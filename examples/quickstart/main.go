// Quickstart: build a small multidimensional ontology in code, chase
// it, and answer a query through dimensional navigation — entirely
// through the public mdqa facade.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/mdqa"
)

func main() {
	ctx := context.Background()

	// 1. A two-level dimension: City -> Country.
	schema := mdqa.NewDimensionSchema("Geo")
	schema.MustAddCategory("City")
	schema.MustAddCategory("Country")
	schema.MustAddEdge("City", "Country")

	geo := mdqa.NewDimension(schema)
	geo.MustAddMember("Country", "Canada")
	geo.MustAddMember("Country", "Chile")
	for city, country := range map[string]string{
		"Ottawa": "Canada", "Toronto": "Canada", "Santiago": "Chile",
	} {
		geo.MustAddMember("City", city)
		geo.MustAddRollup(city, country)
	}

	// 2. A categorical relation at the City level with sales data,
	//    and a virtual relation at the Country level.
	o := mdqa.NewOntology()
	must(o.AddDimension(geo))
	must(o.AddRelation(mdqa.NewCategoricalRelation("CitySales",
		mdqa.Cat("City", "Geo", "City"),
		mdqa.NonCat("Item"))))
	must(o.AddRelation(mdqa.NewCategoricalRelation("CountrySales",
		mdqa.Cat("Country", "Geo", "Country"),
		mdqa.NonCat("Item"))))
	o.MustAddFact("CitySales", "Ottawa", "skates")
	o.MustAddFact("CitySales", "Toronto", "maple syrup")
	o.MustAddFact("CitySales", "Santiago", "wine")

	// 3. An upward dimensional rule (the paper's rule (7) pattern):
	//    CountrySales(c, i) <- CitySales(w, i), CountryCity(c, w).
	o.MustAddRule(mdqa.NewTGD("up",
		[]mdqa.Atom{mdqa.NewAtom("CountrySales", mdqa.Var("c"), mdqa.Var("i"))},
		[]mdqa.Atom{
			mdqa.NewAtom("CitySales", mdqa.Var("w"), mdqa.Var("i")),
			mdqa.NewAtom(mdqa.RollupPredName("City", "Country"), mdqa.Var("c"), mdqa.Var("w")),
		}))

	// 4. Compile to Datalog± and inspect the classification.
	comp, err := o.Compile(mdqa.CompileOptions{ReferentialNCs: true})
	must(err)
	fmt.Println("ontology summary:")
	fmt.Print(o.Summary())
	fmt.Println("classification:", comp.Report)

	// 5. Chase: materialize the upward navigation.
	res, err := mdqa.Chase(ctx, comp, mdqa.ChaseOptions{})
	must(err)
	fmt.Printf("\nchase: %d firings, saturated=%v\n\n", res.Fired, res.Saturated)
	fmt.Print(mdqa.FormatRelationSorted(res.Instance.Relation("CountrySales")))

	// 6. Query with the deterministic top-down engine — no
	//    materialization needed.
	q := mdqa.NewQuery(
		mdqa.NewAtom("Q", mdqa.Var("i")),
		mdqa.NewAtom("CountrySales", mdqa.Const("Canada"), mdqa.Var("i")))
	answers, err := mdqa.CertainAnswers(ctx, comp, q, mdqa.AnswerOptions{})
	must(err)
	fmt.Printf("\nitems sold in Canada (via top-down QA):\n%s", answers)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
