// Retail OLAP: summarizability checking, upward navigation for
// roll-up reporting, and EGD-based entity resolution with labeled
// nulls — the classic HM/OLAP setting the multidimensional model comes
// from (Section II of the paper), driven through the public mdqa
// facade.
//
// Run with: go run ./examples/retail
package main

import (
	"context"
	"fmt"
	"log"

	"repro/mdqa"
)

func main() {
	ctx := context.Background()

	// Location dimension: Store -> City -> Country.
	ls := mdqa.NewDimensionSchema("Location")
	for _, c := range []string{"Store", "City", "Country"} {
		ls.MustAddCategory(c)
	}
	ls.MustAddEdge("Store", "City")
	ls.MustAddEdge("City", "Country")
	loc := mdqa.NewDimension(ls)
	loc.MustAddMember("Country", "Canada")
	for city, stores := range map[string][]string{
		"Ottawa":  {"OTT-1", "OTT-2"},
		"Toronto": {"TOR-1"},
	} {
		loc.MustAddMember("City", city)
		loc.MustAddRollup(city, "Canada")
		for _, st := range stores {
			loc.MustAddMember("Store", st)
			loc.MustAddRollup(st, city)
		}
	}

	fmt.Println("== Summarizability (HM integrity checks) ==")
	fmt.Printf("strict: %v, homogeneous: %v\n",
		len(loc.CheckStrictness()) == 0, len(loc.CheckHomogeneity()) == 0)
	fmt.Printf("Store -> Country summarizable: %v\n", loc.Summarizable("Store", "Country"))

	// A store with no city breaks summarizability — the check catches
	// the modeling error before any aggregation goes wrong.
	loc.MustAddMember("Store", "NYC-1")
	fmt.Printf("after adding an unmapped store: summarizable: %v, homogeneity violations: %v\n\n",
		loc.Summarizable("Store", "Country"), loc.CheckHomogeneity())
	loc.MustAddMember("City", "New York") // repair: uncovered city...
	loc.MustAddRollup("NYC-1", "New York")
	loc.MustAddRollup("New York", "Canada") // (a data bug to find later)

	o := mdqa.NewOntology()
	must(o.AddDimension(loc))
	must(o.AddRelation(mdqa.NewCategoricalRelation("StoreSales",
		mdqa.Cat("Store", "Location", "Store"),
		mdqa.NonCat("SKU"))))
	must(o.AddRelation(mdqa.NewCategoricalRelation("CitySales",
		mdqa.Cat("City", "Location", "City"),
		mdqa.NonCat("SKU"))))
	must(o.AddRelation(mdqa.NewCategoricalRelation("StoreManager",
		mdqa.Cat("Store", "Location", "Store"),
		mdqa.NonCat("Manager"))))
	for _, row := range [][2]string{
		{"OTT-1", "skates"}, {"OTT-1", "jersey"}, {"OTT-2", "skates"},
		{"TOR-1", "jersey"}, {"NYC-1", "bagel"},
	} {
		o.MustAddFact("StoreSales", row[0], row[1])
	}

	// Upward navigation rule for city-level reporting.
	o.MustAddRule(mdqa.NewTGD("sales-up",
		[]mdqa.Atom{mdqa.NewAtom("CitySales", mdqa.Var("c"), mdqa.Var("k"))},
		[]mdqa.Atom{
			mdqa.NewAtom("StoreSales", mdqa.Var("s"), mdqa.Var("k")),
			mdqa.NewAtom(mdqa.RollupPredName("Store", "City"), mdqa.Var("c"), mdqa.Var("s")),
		}))

	// Entity resolution EGD: a store has one manager. Two reports
	// with a null placeholder merge; genuinely conflicting constants
	// are flagged, not merged.
	must(o.AddEGD(mdqa.NewEGD("one-manager", mdqa.Var("m"), mdqa.Var("m2"), []mdqa.Atom{
		mdqa.NewAtom("StoreManager", mdqa.Var("s"), mdqa.Var("m")),
		mdqa.NewAtom("StoreManager", mdqa.Var("s"), mdqa.Var("m2")),
	})))

	comp, err := o.Compile(mdqa.CompileOptions{ReferentialNCs: true})
	must(err)
	fmt.Println("== Ontology ==")
	fmt.Print(o.Summary())
	fmt.Println("classification:", comp.Report)
	fmt.Println("upward-only:", o.IsUpwardOnly())

	// Stage manager reports: one null placeholder, one conflict.
	comp.Instance.MustInsert("StoreManager", mdqa.Const("OTT-1"), mdqa.Null("unknown0"))
	comp.Instance.MustInsert("StoreManager", mdqa.Const("OTT-1"), mdqa.Const("Maya"))
	comp.Instance.MustInsert("StoreManager", mdqa.Const("TOR-1"), mdqa.Const("Ann"))
	comp.Instance.MustInsert("StoreManager", mdqa.Const("TOR-1"), mdqa.Const("Bob"))

	res, err := mdqa.Chase(ctx, comp, mdqa.ChaseOptions{})
	must(err)
	fmt.Println("\n== After the chase ==")
	fmt.Print(mdqa.FormatRelationSorted(res.Instance.Relation("CitySales")))
	fmt.Println()
	fmt.Print(mdqa.FormatRelationSorted(res.Instance.Relation("StoreManager")))
	fmt.Printf("\nEGD merges: %d (the OTT-1 placeholder resolved to Maya)\n", res.Merged)
	for _, v := range res.Violations {
		fmt.Println("violation:", v, "— conflicting managers are reported, not merged")
	}

	// Because the ontology is upward-only, city reports can skip the
	// chase entirely via FO rewriting.
	q := mdqa.NewQuery(
		mdqa.NewAtom("Q", mdqa.Var("k")),
		mdqa.NewAtom("CitySales", mdqa.Const("Ottawa"), mdqa.Var("k")))
	ans, err := mdqa.CertainAnswers(ctx, comp, q, mdqa.AnswerOptions{Engine: mdqa.EngineRewrite})
	must(err)
	fmt.Printf("\nOttawa SKUs via FO rewriting (no materialization):\n%s", ans)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
