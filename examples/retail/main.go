// Retail OLAP: summarizability checking, upward navigation for
// roll-up reporting, and EGD-based entity resolution with labeled
// nulls — the classic HM/OLAP setting the multidimensional model comes
// from (Section II of the paper).
//
// Run with: go run ./examples/retail
package main

import (
	"fmt"
	"log"

	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/hm"
	"repro/internal/rewrite"
	"repro/internal/storage"
)

func main() {
	// Location dimension: Store -> City -> Country.
	ls := hm.NewDimensionSchema("Location")
	for _, c := range []string{"Store", "City", "Country"} {
		ls.MustAddCategory(c)
	}
	ls.MustAddEdge("Store", "City")
	ls.MustAddEdge("City", "Country")
	loc := hm.NewDimension(ls)
	loc.MustAddMember("Country", "Canada")
	for city, stores := range map[string][]string{
		"Ottawa":  {"OTT-1", "OTT-2"},
		"Toronto": {"TOR-1"},
	} {
		loc.MustAddMember("City", city)
		loc.MustAddRollup(city, "Canada")
		for _, st := range stores {
			loc.MustAddMember("Store", st)
			loc.MustAddRollup(st, city)
		}
	}

	fmt.Println("== Summarizability (HM integrity checks) ==")
	fmt.Printf("strict: %v, homogeneous: %v\n",
		len(loc.CheckStrictness()) == 0, len(loc.CheckHomogeneity()) == 0)
	fmt.Printf("Store -> Country summarizable: %v\n", loc.Summarizable("Store", "Country"))

	// A store with no city breaks summarizability — the check catches
	// the modeling error before any aggregation goes wrong.
	loc.MustAddMember("Store", "NYC-1")
	fmt.Printf("after adding an unmapped store: summarizable: %v, homogeneity violations: %v\n\n",
		loc.Summarizable("Store", "Country"), loc.CheckHomogeneity())
	loc.MustAddMember("City", "New York") // repair: uncovered city...
	loc.MustAddRollup("NYC-1", "New York")
	loc.MustAddRollup("New York", "Canada") // (a data bug to find later)

	o := core.NewOntology()
	must(o.AddDimension(loc))
	must(o.AddRelation(core.NewCategoricalRelation("StoreSales",
		core.Cat("Store", "Location", "Store"),
		core.NonCat("SKU"))))
	must(o.AddRelation(core.NewCategoricalRelation("CitySales",
		core.Cat("City", "Location", "City"),
		core.NonCat("SKU"))))
	must(o.AddRelation(core.NewCategoricalRelation("StoreManager",
		core.Cat("Store", "Location", "Store"),
		core.NonCat("Manager"))))
	for _, row := range [][2]string{
		{"OTT-1", "skates"}, {"OTT-1", "jersey"}, {"OTT-2", "skates"},
		{"TOR-1", "jersey"}, {"NYC-1", "bagel"},
	} {
		o.MustAddFact("StoreSales", row[0], row[1])
	}

	// Upward navigation rule for city-level reporting.
	o.MustAddRule(datalog.NewTGD("sales-up",
		[]datalog.Atom{datalog.A("CitySales", datalog.V("c"), datalog.V("k"))},
		[]datalog.Atom{
			datalog.A("StoreSales", datalog.V("s"), datalog.V("k")),
			datalog.A(hm.RollupPredName("Store", "City"), datalog.V("c"), datalog.V("s")),
		}))

	// Entity resolution EGD: a store has one manager. Two reports
	// with a null placeholder merge; genuinely conflicting constants
	// are flagged, not merged.
	must(o.AddEGD(datalog.NewEGD("one-manager", datalog.V("m"), datalog.V("m2"), []datalog.Atom{
		datalog.A("StoreManager", datalog.V("s"), datalog.V("m")),
		datalog.A("StoreManager", datalog.V("s"), datalog.V("m2")),
	})))

	comp, err := o.Compile(core.CompileOptions{ReferentialNCs: true})
	must(err)
	fmt.Println("== Ontology ==")
	fmt.Print(o.Summary())
	fmt.Println("classification:", comp.Report)
	fmt.Println("upward-only:", o.IsUpwardOnly())

	// Stage manager reports: one null placeholder, one conflict.
	comp.Instance.MustInsert("StoreManager", datalog.C("OTT-1"), datalog.N("unknown0"))
	comp.Instance.MustInsert("StoreManager", datalog.C("OTT-1"), datalog.C("Maya"))
	comp.Instance.MustInsert("StoreManager", datalog.C("TOR-1"), datalog.C("Ann"))
	comp.Instance.MustInsert("StoreManager", datalog.C("TOR-1"), datalog.C("Bob"))

	res, err := chase.Run(comp.Program, comp.Instance, chase.Options{})
	must(err)
	fmt.Println("\n== After the chase ==")
	fmt.Print(storage.FormatRelationSorted(res.Instance.Relation("CitySales")))
	fmt.Println()
	fmt.Print(storage.FormatRelationSorted(res.Instance.Relation("StoreManager")))
	fmt.Printf("\nEGD merges: %d (the OTT-1 placeholder resolved to Maya)\n", res.Merged)
	for _, v := range res.Violations {
		fmt.Println("violation:", v, "— conflicting managers are reported, not merged")
	}

	// Because the ontology is upward-only, city reports can skip the
	// chase entirely via FO rewriting.
	q := datalog.NewQuery(
		datalog.A("Q", datalog.V("k")),
		datalog.A("CitySales", datalog.C("Ottawa"), datalog.V("k")))
	ucq, err := rewrite.Rewrite(comp.Program, q, rewrite.Options{})
	must(err)
	ans, err := rewrite.Answer(comp.Program, comp.Instance, q, rewrite.Options{})
	must(err)
	fmt.Printf("\nOttawa SKUs via FO rewriting (%d disjuncts, no materialization):\n%s", len(ucq), ans)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
