// The paper's running example, end to end: Tables I–V, dimensional
// navigation (Examples 1, 2, 5, 6), constraint checking, and the
// quality assessment pipeline of Example 7 / Figure 2.
//
// Run with: go run ./examples/hospital
package main

import (
	"fmt"
	"log"

	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/eval"
	"repro/internal/hospital"
	"repro/internal/qa"
	"repro/internal/storage"
)

func main() {
	fmt.Println("== The original instance D (Table I) ==")
	d := hospital.MeasurementsInstance()
	fmt.Print(storage.FormatRelation(d.Relation("Measurements")))

	o := hospital.NewOntology(hospital.Options{WithRuleNine: true, WithConstraints: true})
	fmt.Println("\n== The multidimensional context ontology (Fig. 1) ==")
	fmt.Print(o.Summary())

	comp, err := o.Compile(core.CompileOptions{ReferentialNCs: true})
	must(err)
	fmt.Println("classification:", comp.Report)
	sep, reason := o.SeparabilityHeuristic()
	fmt.Printf("EGD separability: %v (%s)\n", sep, reason)

	// Dimensional navigation via the chase (Examples 1, 5, 6).
	res, err := chase.Run(comp.Program, comp.Instance, chase.Options{})
	must(err)
	fmt.Printf("\n== Chase: %d firings, %d nulls, %d violations ==\n",
		res.Fired, res.NullsCreated, len(res.Violations))
	for _, v := range res.Violations {
		fmt.Println("violation:", v)
	}
	fmt.Println("\nPatientUnit (upward navigation, rule 7 + rule 9):")
	fmt.Print(storage.FormatRelationSorted(res.Instance.Relation("PatientUnit")))
	fmt.Println("\nShifts (downward navigation, rule 8):")
	fmt.Print(storage.FormatRelationSorted(res.Instance.Relation("Shifts")))

	// Example 5: when does Mark work in W1? (Answer: Sep/9.)
	q5 := datalog.NewQuery(datalog.A("Q", datalog.V("d")),
		datalog.A("Shifts", datalog.C("W1"), datalog.V("d"), datalog.C("Mark"), datalog.V("s")))
	a5, err := qa.Answer(comp.Program, comp.Instance, q5, qa.Options{})
	must(err)
	fmt.Printf("\nExample 5 — Mark's W1 dates: %s", a5)

	// Example 6: Elvis's unit is existential but his discharge
	// certainly places him in some H2 unit.
	q6 := datalog.NewQuery(datalog.A("Q"),
		datalog.A("InstitutionUnit", datalog.C("H2"), datalog.V("u")),
		datalog.A("PatientUnit", datalog.V("u"), datalog.C("Oct/5"), datalog.V("p")))
	ok, err := qa.AnswerBool(comp.Program, comp.Instance, q6, qa.Options{})
	must(err)
	fmt.Printf("Example 6 — was someone in an H2 unit on Oct/5? %v\n", ok)

	// Example 7 / Figure 2: quality assessment.
	fmt.Println("\n== Quality assessment (Example 7, Fig. 2) ==")
	ctx, err := hospital.QualityContext(hospital.Options{})
	must(err)
	assessment, err := ctx.Assess(d)
	must(err)

	fmt.Println("quality version Measurements_q (the paper's Table II):")
	fmt.Print(storage.FormatRelation(assessment.Versions["Measurements"]))
	m := assessment.Measures["Measurements"]
	fmt.Printf("quality measure: clean fraction %.3f, distance %.3f\n",
		m.CleanFraction(), m.Distance())

	doctor := hospital.DoctorQuery()
	raw, err := eval.EvalQuery(doctor, assessment.Contextual)
	must(err)
	clean, err := assessment.CleanAnswer(doctor)
	must(err)
	fmt.Printf("\ndoctor's query, raw:   %s", raw)
	fmt.Printf("doctor's query, clean: %s", clean)
	fmt.Println("\nThe clean answer keeps only the measurement taken by a certified")
	fmt.Println("nurse with a brand-B1 thermometer — inferred by rolling PatientWard")
	fmt.Println("up to PatientUnit (rule 7) and applying the institutional guideline.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
