// The paper's running example, end to end: Tables I–V, dimensional
// navigation (Examples 1, 2, 5, 6), constraint checking, and the
// quality assessment pipeline of Example 7 / Figure 2 — entirely
// through the public mdqa facade.
//
// Run with: go run ./examples/hospital
package main

import (
	"context"
	"fmt"
	"log"

	"repro/mdqa"
)

func main() {
	ctx := context.Background()

	fmt.Println("== The original instance D (Table I) ==")
	d := mdqa.HospitalMeasurements()
	fmt.Print(mdqa.FormatRelation(d.Relation("Measurements")))

	o := mdqa.HospitalOntology(mdqa.HospitalOptions{WithRuleNine: true, WithConstraints: true})
	fmt.Println("\n== The multidimensional context ontology (Fig. 1) ==")
	fmt.Print(o.Summary())

	comp, err := o.Compile(mdqa.CompileOptions{ReferentialNCs: true})
	must(err)
	fmt.Println("classification:", comp.Report)
	sep, reason := o.SeparabilityHeuristic()
	fmt.Printf("EGD separability: %v (%s)\n", sep, reason)

	// Dimensional navigation via the chase (Examples 1, 5, 6).
	res, err := mdqa.Chase(ctx, comp, mdqa.ChaseOptions{})
	must(err)
	fmt.Printf("\n== Chase: %d firings, %d nulls, %d violations ==\n",
		res.Fired, res.NullsCreated, len(res.Violations))
	for _, v := range res.Violations {
		fmt.Println("violation:", v)
	}
	fmt.Println("\nPatientUnit (upward navigation, rule 7 + rule 9):")
	fmt.Print(mdqa.FormatRelationSorted(res.Instance.Relation("PatientUnit")))
	fmt.Println("\nShifts (downward navigation, rule 8):")
	fmt.Print(mdqa.FormatRelationSorted(res.Instance.Relation("Shifts")))

	// Example 5: when does Mark work in W1? (Answer: Sep/9.)
	q5 := mdqa.NewQuery(mdqa.NewAtom("Q", mdqa.Var("d")),
		mdqa.NewAtom("Shifts", mdqa.Const("W1"), mdqa.Var("d"), mdqa.Const("Mark"), mdqa.Var("s")))
	a5, err := mdqa.CertainAnswers(ctx, comp, q5, mdqa.AnswerOptions{})
	must(err)
	fmt.Printf("\nExample 5 — Mark's W1 dates: %s", a5)

	// Example 6: Elvis's unit is existential but his discharge
	// certainly places him in some H2 unit.
	q6 := mdqa.NewQuery(mdqa.NewAtom("Q"),
		mdqa.NewAtom("InstitutionUnit", mdqa.Const("H2"), mdqa.Var("u")),
		mdqa.NewAtom("PatientUnit", mdqa.Var("u"), mdqa.Const("Oct/5"), mdqa.Var("p")))
	ok, err := mdqa.HasCertainAnswer(ctx, comp, q6, mdqa.AnswerOptions{})
	must(err)
	fmt.Printf("Example 6 — was someone in an H2 unit on Oct/5? %v\n", ok)

	// Example 7 / Figure 2: quality assessment.
	fmt.Println("\n== Quality assessment (Example 7, Fig. 2) ==")
	qc, err := mdqa.HospitalQualityContext(mdqa.HospitalOptions{})
	must(err)
	assessment, err := qc.Assess(ctx, d)
	must(err)

	fmt.Println("quality version Measurements_q (the paper's Table II):")
	mq, err := assessment.Version("Measurements")
	must(err)
	fmt.Print(mdqa.FormatRelation(mq))
	m := assessment.Measures()["Measurements"]
	fmt.Printf("quality measure: clean fraction %.3f, distance %.3f\n",
		m.CleanFraction(), m.Distance())

	doctor := mdqa.HospitalDoctorQuery()
	raw, err := mdqa.EvalQuery(doctor, assessment.Contextual())
	must(err)
	clean, err := assessment.CleanAnswer(doctor)
	must(err)
	fmt.Printf("\ndoctor's query, raw:   %s", raw)
	fmt.Printf("doctor's query, clean: %s", clean)
	fmt.Println("\nThe clean answer keeps only the measurement taken by a certified")
	fmt.Println("nurse with a brand-B1 thermometer — inferred by rolling PatientWard")
	fmt.Println("up to PatientUnit (rule 7) and applying the institutional guideline.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
