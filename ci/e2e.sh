#!/usr/bin/env bash
# End-to-end check: boot the real mdserve binary against the built-in
# hospital example and diff every response against the golden files in
# cmd/mdserve/testdata (shared with `go test ./cmd/mdserve`; regenerate
# with `go test ./cmd/mdserve -update`). The request sequence here must
# stay identical to TestE2EGolden.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="127.0.0.1:${MDSERVE_PORT:-8127}"
BASE="http://$ADDR/v1/contexts/hospital"
GOLDEN=cmd/mdserve/testdata
OUT="$(mktemp -d)"
BIN="$OUT/mdserve"

go build -o "$BIN" ./cmd/mdserve

"$BIN" -addr "$ADDR" -example -parallelism 1 &
SERVER_PID=$!
cleanup() {
  kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$OUT"
}
trap cleanup EXIT

# Wait for the server to come up.
for _ in $(seq 1 100); do
  if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.1
done

fail=0
check() { # check <name> <file>
  if ! diff -u "$GOLDEN/$1.golden" "$2"; then
    echo "e2e: $1 response differs from golden" >&2
    fail=1
  fi
}

curl -fsS "http://$ADDR/healthz" >"$OUT/healthz"
check healthz "$OUT/healthz"

curl -fsS "http://$ADDR/v1/contexts" >"$OUT/contexts"
check contexts "$OUT/contexts"

curl -fsS -X POST "$BASE/assess" >"$OUT/assess"
check assess "$OUT/assess"

curl -fsS -X POST "$BASE/sessions" >"$OUT/session-create"
check session-create "$OUT/session-create"

printf '%s\n' \
  '{"atoms":[{"pred":"Clock","args":["Sep/6-12:30","Sep/6"]},{"pred":"Measurements","args":["Sep/6-12:30","Tom Waits","37.3"]}]}' \
  '{"atoms":[{"pred":"Clock","args":["Sep/5-13:00","Sep/5"]},{"pred":"Measurements","args":["Sep/5-13:00","Lou Reed","38.4"]}]}' \
  | curl -fsS -X POST --data-binary @- "$BASE/sessions/s1/apply" >"$OUT/apply"
check apply "$OUT/apply"

# The answer stream's order is unspecified: sort byte-wise, exactly as
# the Go golden test does.
curl -fsS -G --data-urlencode 'q=tomtemp(t, v) <- Measurements(t, "Tom Waits", v).' \
  "$BASE/sessions/s1/answers" | LC_ALL=C sort >"$OUT/answers"
check answers "$OUT/answers"

curl -fsS "$BASE/sessions/s1/assessment" >"$OUT/session-assess"
check session-assess "$OUT/session-assess"

curl -fsS -X DELETE "$BASE/sessions/s1" >"$OUT/session-close"
check session-close "$OUT/session-close"

# Metrics sanity (latencies vary; pin the deterministic counters only).
curl -fsS "http://$ADDR/metrics" >"$OUT/metrics"
for want in \
  'mdserve_assess_total{context="hospital"} 2' \
  'mdserve_apply_batches_total{context="hospital"} 2' \
  'mdserve_answers_streamed_total{context="hospital"} 3' \
  'mdserve_sessions_opened_total{context="hospital"} 1' \
  'mdserve_chase_rounds_total{context="hospital"} 6' \
  'mdserve_errors_total{context="hospital"} 0'; do
  if ! grep -qF "$want" "$OUT/metrics"; then
    echo "e2e: /metrics missing: $want" >&2
    cat "$OUT/metrics" >&2
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "e2e: FAILED" >&2
  exit 1
fi
echo "e2e: all responses match golden files"
