#!/usr/bin/env bash
# End-to-end check: boot the real mdserve binary against the built-in
# hospital example and diff every response against the golden files in
# cmd/mdserve/testdata (shared with `go test ./cmd/mdserve`; regenerate
# with `go test ./cmd/mdserve -update`). The request sequence here must
# stay identical to TestE2EGolden.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="127.0.0.1:${MDSERVE_PORT:-8127}"
BASE="http://$ADDR/v1/contexts/hospital"
GOLDEN=cmd/mdserve/testdata
OUT="$(mktemp -d)"
BIN="$OUT/mdserve"

go build -o "$BIN" ./cmd/mdserve

"$BIN" -addr "$ADDR" -example -parallelism 1 &
SERVER_PID=$!
cleanup() {
  kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$OUT"
}
trap cleanup EXIT

# Wait for the server to come up.
for _ in $(seq 1 100); do
  if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.1
done

fail=0
check() { # check <name> <file>
  if ! diff -u "$GOLDEN/$1.golden" "$2"; then
    echo "e2e: $1 response differs from golden" >&2
    fail=1
  fi
}

curl -fsS "http://$ADDR/healthz" >"$OUT/healthz"
check healthz "$OUT/healthz"

curl -fsS "http://$ADDR/v1/contexts" >"$OUT/contexts"
check contexts "$OUT/contexts"

curl -fsS -X POST "$BASE/assess" >"$OUT/assess"
check assess "$OUT/assess"

curl -fsS -X POST "$BASE/sessions" >"$OUT/session-create"
check session-create "$OUT/session-create"

printf '%s\n' \
  '{"atoms":[{"pred":"Clock","args":["Sep/6-12:30","Sep/6"]},{"pred":"Measurements","args":["Sep/6-12:30","Tom Waits","37.3"]}]}' \
  '{"atoms":[{"pred":"Clock","args":["Sep/5-13:00","Sep/5"]},{"pred":"Measurements","args":["Sep/5-13:00","Lou Reed","38.4"]}]}' \
  | curl -fsS -X POST --data-binary @- "$BASE/sessions/s1/apply" >"$OUT/apply"
check apply "$OUT/apply"

# The answer stream's order is unspecified: sort byte-wise, exactly as
# the Go golden test does.
curl -fsS -G --data-urlencode 'q=tomtemp(t, v) <- Measurements(t, "Tom Waits", v).' \
  "$BASE/sessions/s1/answers" | LC_ALL=C sort >"$OUT/answers"
check answers "$OUT/answers"

# The same query again: the plan cache serves this one (first request
# missed, this one hits) and the stream must be byte-identical.
curl -fsS -G --data-urlencode 'q=tomtemp(t, v) <- Measurements(t, "Tom Waits", v).' \
  "$BASE/sessions/s1/answers" | LC_ALL=C sort >"$OUT/answers-repeat"
check answers "$OUT/answers-repeat"

# explain=1 returns the compiled join plan instead of rows.
curl -fsS -G --data-urlencode 'q=tomtemp(t, v) <- Measurements(t, "Tom Waits", v).' \
  --data-urlencode 'explain=1' \
  "$BASE/sessions/s1/answers" >"$OUT/explain"
check explain "$OUT/explain"

curl -fsS "$BASE/sessions/s1/assessment" >"$OUT/session-assess"
check session-assess "$OUT/session-assess"

curl -fsS -X DELETE "$BASE/sessions/s1" >"$OUT/session-close"
check session-close "$OUT/session-close"

# Metrics sanity (latencies vary; pin the deterministic counters only).
curl -fsS "http://$ADDR/metrics" >"$OUT/metrics"
for want in \
  'mdserve_assess_total{context="hospital"} 2' \
  'mdserve_apply_batches_total{context="hospital"} 2' \
  'mdserve_answers_streamed_total{context="hospital"} 6' \
  'mdserve_sessions_opened_total{context="hospital"} 1' \
  'mdserve_chase_rounds_total{context="hospital"} 6' \
  'mdserve_plan_cache_hits_total{context="hospital"} 2' \
  'mdserve_plan_cache_misses_total{context="hospital"} 1' \
  'mdserve_plan_cache_evictions_total{context="hospital"} 0' \
  'mdserve_replans_total{context="hospital"} 0' \
  'mdserve_errors_total{context="hospital"} 0'; do
  if ! grep -qF "$want" "$OUT/metrics"; then
    echo "e2e: /metrics missing: $want" >&2
    cat "$OUT/metrics" >&2
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "e2e: FAILED" >&2
  exit 1
fi
echo "e2e: all responses match golden files"

# ---------------------------------------------------------------------
# Crash-recovery stage: boot a durable server, apply through a session,
# kill -9 mid-life, restart over the same -data-dir, and require every
# acknowledged batch back with identical answers. Then a SIGTERM must
# drain, flush, snapshot and exit 0.
RADDR="127.0.0.1:${MDSERVE_RECOVERY_PORT:-8128}"
RBASE="http://$RADDR/v1/contexts/hospital"
DATA="$OUT/data"

"$BIN" -addr "$RADDR" -example -parallelism 1 -data-dir "$DATA" &
RECOVERY_PID=$!
for _ in $(seq 1 100); do
  if curl -fsS "http://$RADDR/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.1
done

curl -fsS -X POST "$RBASE/sessions" >/dev/null
printf '%s\n' \
  '{"atoms":[{"pred":"Clock","args":["Sep/6-12:30","Sep/6"]},{"pred":"Measurements","args":["Sep/6-12:30","Tom Waits","37.3"]}]}' \
  | curl -fsS -X POST --data-binary @- "$RBASE/sessions/s1/apply" >/dev/null
curl -fsS -G --data-urlencode 'q=m(t, p, v) <- Measurements(t, p, v).' \
  "$RBASE/sessions/s1/answers" | LC_ALL=C sort >"$OUT/answers-before-crash"

kill -9 "$RECOVERY_PID"
wait "$RECOVERY_PID" 2>/dev/null || true

"$BIN" -addr "$RADDR" -example -parallelism 1 -data-dir "$DATA" &
RECOVERY_PID=$!
trap 'kill "$RECOVERY_PID" 2>/dev/null || true; cleanup' EXIT
for _ in $(seq 1 100); do
  if curl -fsS "http://$RADDR/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.1
done

curl -fsS "$RBASE/sessions" >"$OUT/sessions-recovered"
if ! grep -qF '"id":"s1"' "$OUT/sessions-recovered"; then
  echo "e2e: recovery lost session s1" >&2
  cat "$OUT/sessions-recovered" >&2
  exit 1
fi
curl -fsS -G --data-urlencode 'q=m(t, p, v) <- Measurements(t, p, v).' \
  "$RBASE/sessions/s1/answers" | LC_ALL=C sort >"$OUT/answers-after-crash"
if ! diff -u "$OUT/answers-before-crash" "$OUT/answers-after-crash"; then
  echo "e2e: recovered answers differ from pre-crash answers" >&2
  exit 1
fi
printf '%s\n' \
  '{"atoms":[{"pred":"Measurements","args":["Sep/6-13:00","Tom Waits","37.1"]}]}' \
  | curl -fsS -X POST --data-binary @- "$RBASE/sessions/s1/apply" >/dev/null
curl -fsS "http://$RADDR/metrics" >"$OUT/metrics-recovery"
if ! grep -qF 'mdserve_sessions_recovered_total{context="hospital"} 1' "$OUT/metrics-recovery"; then
  echo "e2e: /metrics missing the recovery counter" >&2
  cat "$OUT/metrics-recovery" >&2
  exit 1
fi

# Graceful shutdown: SIGTERM must flush + snapshot + exit 0.
kill -TERM "$RECOVERY_PID"
if ! wait "$RECOVERY_PID"; then
  echo "e2e: SIGTERM shutdown exited non-zero" >&2
  exit 1
fi
trap cleanup EXIT
if ! ls "$DATA"/hospital/s1/snap-*.snap >/dev/null 2>&1; then
  echo "e2e: graceful shutdown left no snapshot behind" >&2
  ls -R "$DATA" >&2
  exit 1
fi
echo "e2e: crash recovery and graceful shutdown OK"

# ---------------------------------------------------------------------
# Federated-source stage: boot mdfixture serving NDJSON relation files,
# bind the hospital context's PatientWard and WorkingSchedules to them
# with -source, and drive a live upstream change through
# POST .../refresh. The clean answers must pick the new measurement up
# through the incremental chase ("rebuilt":false — no re-prepare), and
# the per-source metrics must appear on /metrics.
FXADDR="127.0.0.1:${MDFIXTURE_PORT:-8129}"
SADDR="127.0.0.1:${MDSERVE_SOURCE_PORT:-8130}"
SBASE="http://$SADDR/v1/contexts/hospital"
FIXDIR="$OUT/fixtures"
mkdir -p "$FIXDIR"
: >"$FIXDIR/wards.ndjson"
: >"$FIXDIR/scheds.ndjson"

go build -o "$OUT/mdfixture" ./cmd/mdfixture

"$OUT/mdfixture" -addr "$FXADDR" -dir "$FIXDIR" >/dev/null &
FIXTURE_PID=$!
"$BIN" -addr "$SADDR" -example -parallelism 1 \
  -source "hospital/PatientWard=http://$FXADDR/wards.ndjson" \
  -source "hospital/WorkingSchedules=http://$FXADDR/scheds.ndjson" &
SOURCE_PID=$!
trap 'kill "$FIXTURE_PID" "$SOURCE_PID" 2>/dev/null || true; cleanup' EXIT
for _ in $(seq 1 100); do
  if curl -fsS "http://$SADDR/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.1
done

# Baseline: empty source payloads add nothing — the built-in example's
# two clean measurements come back.
curl -fsS -X POST "$SBASE/sessions" >/dev/null
curl -fsS -G --data-urlencode 'q=m(t, p, v) <- Measurements(t, p, v).' \
  "$SBASE/sessions/s1/answers" | LC_ALL=C sort >"$OUT/answers-sourced-before"
printf '%s\n' \
  '{"answer":["Sep/5-12:10","Tom Waits","38.2"]}' \
  '{"answer":["Sep/6-11:50","Tom Waits","37.1"]}' \
  '{"count":2}' >"$OUT/answers-sourced-before.want"
if ! diff -u "$OUT/answers-sourced-before.want" "$OUT/answers-sourced-before"; then
  echo "e2e: sourced baseline clean answers differ" >&2
  exit 1
fi

# Upstream change: Tom moves into standard ward W1 on Sep/9 and a
# certified nurse covers Standard/Sep/9 — the Sep/9 measurement
# becomes clean.
printf '%s\n' '["W1","Sep/9","Tom Waits"]' >>"$FIXDIR/wards.ndjson"
printf '%s\n' '["Standard","Sep/9","Alice","cert."]' >>"$FIXDIR/scheds.ndjson"

curl -fsS -X POST "$SBASE/sessions/s1/refresh" >"$OUT/refresh"
for want in '"changed":true' '"rebuilt":false'; do
  if ! grep -qF "$want" "$OUT/refresh"; then
    echo "e2e: refresh response missing $want" >&2
    cat "$OUT/refresh" >&2
    exit 1
  fi
done

curl -fsS -G --data-urlencode 'q=m(t, p, v) <- Measurements(t, p, v).' \
  "$SBASE/sessions/s1/answers" | LC_ALL=C sort >"$OUT/answers-sourced-after"
printf '%s\n' \
  '{"answer":["Sep/5-12:10","Tom Waits","38.2"]}' \
  '{"answer":["Sep/6-11:50","Tom Waits","37.1"]}' \
  '{"answer":["Sep/9-12:00","Tom Waits","37.0"]}' \
  '{"count":3}' >"$OUT/answers-sourced-after.want"
if ! diff -u "$OUT/answers-sourced-after.want" "$OUT/answers-sourced-after"; then
  echo "e2e: refreshed clean answers differ" >&2
  exit 1
fi

# Source + refresh metrics, labeled per context and source binding.
curl -fsS "http://$SADDR/metrics" >"$OUT/metrics-sourced"
for want in \
  'mdserve_refreshes_total{context="hospital"} 1' \
  'mdserve_refresh_rebuilds_total{context="hospital"} 0' \
  'mdserve_refresh_errors_total{context="hospital"} 0' \
  'mdserve_source_fetches_total{context="hospital",source="PatientWard"} 2' \
  'mdserve_source_fetches_total{context="hospital",source="WorkingSchedules"} 2' \
  'mdserve_source_fetch_errors_total{context="hospital",source="PatientWard"} 0' \
  'mdserve_source_fetch_latency_seconds_count{context="hospital"}'; do
  if ! grep -qF "$want" "$OUT/metrics-sourced"; then
    echo "e2e: /metrics missing: $want" >&2
    cat "$OUT/metrics-sourced" >&2
    exit 1
  fi
done

kill "$FIXTURE_PID" "$SOURCE_PID" 2>/dev/null || true
wait "$FIXTURE_PID" "$SOURCE_PID" 2>/dev/null || true
trap cleanup EXIT
echo "e2e: federated source refresh OK"

# ---------------------------------------------------------------------
# Time-travel stage: apply three batches, capturing the live answer
# stream after each one; every ?as_of=<version> read must then return
# those captures byte-identically, the version timeline must number one
# version per batch, the trajectory must grow monotonically, and the
# as-of error vocabulary (400 invalid_as_of) must hold.
TTADDR="127.0.0.1:${MDSERVE_TT_PORT:-8134}"
TTBASE="http://$TTADDR/v1/contexts/hospital"

"$BIN" -addr "$TTADDR" -example -parallelism 1 &
TT_PID=$!
trap 'kill "$TT_PID" 2>/dev/null || true; cleanup' EXIT
for _ in $(seq 1 100); do
  if curl -fsS "http://$TTADDR/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.1
done

curl -fsS -X POST "$TTBASE/sessions" >/dev/null
TTQ='m(t, p, v) <- Measurements(t, p, v).'
curl -fsS -G --data-urlencode "q=$TTQ" \
  "$TTBASE/sessions/s1/answers" | LC_ALL=C sort >"$OUT/tt-live-v0"
for i in 0 1 2; do
  printf '{"atoms":[{"pred":"Clock","args":["Sep/6-12:4%d","Sep/6"]},{"pred":"Measurements","args":["Sep/6-12:4%d","Tom Waits","37.%d"]}]}\n' "$i" "$i" "$i" \
    | curl -fsS -X POST --data-binary @- "$TTBASE/sessions/s1/apply" >/dev/null
  curl -fsS -G --data-urlencode "q=$TTQ" \
    "$TTBASE/sessions/s1/answers" | LC_ALL=C sort >"$OUT/tt-live-v$((i + 1))"
done

# As-of reads are byte-identical to what the live session answered at
# each version.
for v in 0 1 2 3; do
  curl -fsS -G --data-urlencode "q=$TTQ" --data-urlencode "as_of=$v" \
    "$TTBASE/sessions/s1/answers" | LC_ALL=C sort >"$OUT/tt-asof-v$v"
  if ! diff -u "$OUT/tt-live-v$v" "$OUT/tt-asof-v$v"; then
    echo "e2e: as_of=$v answers differ from the live capture" >&2
    exit 1
  fi
done

# The timeline numbers one version per batch (plus the initial v0).
curl -fsS "$TTBASE/sessions/s1/versions" >"$OUT/tt-versions"
if ! grep -qF '"latest":3' "$OUT/tt-versions"; then
  echo "e2e: version timeline must end at 3" >&2
  cat "$OUT/tt-versions" >&2
  exit 1
fi
nvers=$(grep -o '"seq":[0-9]*' "$OUT/tt-versions" | wc -l)
if [ "$nvers" -ne 4 ]; then
  echo "e2e: want 4 versions, got $nvers" >&2
  cat "$OUT/tt-versions" >&2
  exit 1
fi

# The trajectory holds one scored point per version and the relation
# only grows: its original-row counts must be strictly increasing.
curl -fsS "$TTBASE/sessions/s1/trajectory?rel=Measurements" >"$OUT/tt-trajectory"
if ! grep -o '"original":[0-9]*' "$OUT/tt-trajectory" | cut -d: -f2 \
  | awk 'NR > 1 && $1 <= prev { exit 1 } { prev = $1 } END { exit NR == 4 ? 0 : 1 }'; then
  echo "e2e: trajectory must hold 4 strictly-growing points" >&2
  cat "$OUT/tt-trajectory" >&2
  exit 1
fi

# The as-of error vocabulary: malformed and future versions are 400
# invalid_as_of on every read endpoint.
for bad in 'as_of=banana' 'as_of=99'; do
  for path in "sessions/s1/answers?q=m(t)%20%3C-%20Clock(t%2C%20d).&$bad" \
    "sessions/s1/assessment?$bad" "sessions/s1/trajectory?rel=Measurements&$bad"; do
    code=$(curl -s -o "$OUT/tt-err" -w '%{http_code}' "$TTBASE/$path")
    if [ "$code" -ne 400 ] || ! grep -qF '"invalid_as_of"' "$OUT/tt-err"; then
      echo "e2e: $path must fail 400 invalid_as_of, got $code" >&2
      cat "$OUT/tt-err" >&2
      exit 1
    fi
  done
done

kill "$TT_PID" 2>/dev/null || true
wait "$TT_PID" 2>/dev/null || true
trap cleanup EXIT
echo "e2e: time travel OK"

# ---------------------------------------------------------------------
# Load-smoke stage: two mdserve shards behind mdrouter, a short open-
# loop mdload burst through the router. Gates: zero failed operations
# (any backend 5xx surfaces as an mdload error), both shards actually
# served traffic (consistent hashing spread the sessions), and the
# machine-readable report lands in LOAD_ci.json for the CI artifact.
LS1ADDR="127.0.0.1:${MDSERVE_SHARD1_PORT:-8131}"
LS2ADDR="127.0.0.1:${MDSERVE_SHARD2_PORT:-8132}"
LRADDR="127.0.0.1:${MDROUTER_PORT:-8133}"

go build -o "$OUT/mdrouter" ./cmd/mdrouter
go build -o "$OUT/mdload" ./cmd/mdload

"$BIN" -addr "$LS1ADDR" -example -parallelism 1 &
SHARD1_PID=$!
"$BIN" -addr "$LS2ADDR" -example -parallelism 1 &
SHARD2_PID=$!
trap 'kill "$SHARD1_PID" "$SHARD2_PID" 2>/dev/null || true; cleanup' EXIT
for addr in "$LS1ADDR" "$LS2ADDR"; do
  for _ in $(seq 1 100); do
    if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.1
  done
done

"$OUT/mdrouter" -addr "$LRADDR" \
  -backend "http://$LS1ADDR" -backend "http://$LS2ADDR" &
ROUTER_PID=$!
trap 'kill "$SHARD1_PID" "$SHARD2_PID" "$ROUTER_PID" 2>/dev/null || true; cleanup' EXIT
for _ in $(seq 1 100); do
  if curl -fsS "http://$LRADDR/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.1
done

# 5-second burst; -max-error-rate 0 fails the stage on any 5xx or
# transport error a client observed.
"$OUT/mdload" -url "http://$LRADDR" -context hospital \
  -rate 100 -duration 5s -sessions 8 -zipf 0.9 -rr 0.9 \
  -seed-batches 5 -max-error-rate 0 -json LOAD_ci.json

# Both shards must have served proxied traffic: the router's
# per-backend request counters are the ground truth.
curl -fsS "http://$LRADDR/metrics" >"$OUT/router-metrics"
for backend in "http://$LS1ADDR" "http://$LS2ADDR"; do
  served=$(awk -v b="mdrouter_backend_requests_total{backend=\"$backend\"}" \
    '$0 ~ "^mdrouter_backend_requests_total" && index($0, b) == 1 { print $NF }' \
    "$OUT/router-metrics")
  if [ -z "$served" ] || [ "$served" -eq 0 ]; then
    echo "e2e: shard $backend served no traffic through the router" >&2
    cat "$OUT/router-metrics" >&2
    exit 1
  fi
  errors=$(awk -v b="mdrouter_backend_errors_total{backend=\"$backend\"}" \
    '$0 ~ "^mdrouter_backend_errors_total" && index($0, b) == 1 { print $NF }' \
    "$OUT/router-metrics")
  if [ -n "$errors" ] && [ "$errors" -ne 0 ]; then
    echo "e2e: router recorded $errors backend errors for $backend" >&2
    exit 1
  fi
done

kill "$SHARD1_PID" "$SHARD2_PID" "$ROUTER_PID" 2>/dev/null || true
wait "$SHARD1_PID" "$SHARD2_PID" "$ROUTER_PID" 2>/dev/null || true
trap cleanup EXIT
echo "e2e: load smoke over 2 shards OK (report in LOAD_ci.json)"
