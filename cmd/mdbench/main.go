// Command mdbench regenerates every table and figure of the paper and
// runs the complexity-claim experiments (see DESIGN.md's experiment
// index).
//
// Usage:
//
//	mdbench                          # run everything
//	mdbench -exp T2                  # one experiment
//	mdbench -scale 6400              # extend the C1 scaling sweep
//	mdbench -benchjson BENCH_1.json  # machine-readable perf snapshot
//	mdbench -benchjson BENCH_4.json -parallelism 1,2,4,8
//	                                 # parallel sweep: chase + cold/warm
//	                                 # assessment at each worker-pool level
//	mdbench -benchjson BENCH_ci.json -sizes 400 -parallelism 1 \
//	        -baseline BENCH_4.json -tolerance 0.30
//	                                 # CI smoke: record a small snapshot
//	                                 # and fail if the assessment path
//	                                 # regressed >30% vs the baseline
//
// Every -benchjson snapshot is annotated with the recording machine
// ("_hardware": CPU count, GOMAXPROCS, OS/arch), so a p=4 sweep from a
// single-core container is distinguishable from a real multi-core run.
// -baseline compares against any earlier snapshot (annotated or not)
// and exits non-zero when a benchmark in -families exceeds the
// baseline ns/op by more than -tolerance.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/mdqa"
)

func main() {
	exp := flag.String("exp", "", "experiment ID to run (default: all); one of "+strings.Join(mdqa.ExperimentIDs(), ","))
	scale := flag.String("scale", "", "comma-separated base sizes for an extended C1 scaling sweep")
	benchJSON := flag.String("benchjson", "", "write the scaling benchmarks (name -> ns/op, allocs/op) to this JSON file; used to track the perf trajectory across PRs")
	parallelism := flag.String("parallelism", "", "comma-separated worker-pool levels for a -benchjson parallel sweep (e.g. 1,2,4,8; 1 = sequential engine); a single value also works")
	sizes := flag.String("sizes", "", "comma-separated base sizes for -benchjson runs (default: 100,400,1600; sweep default: 400,1600)")
	baseline := flag.String("baseline", "", "earlier BENCH_<n>.json to compare the fresh -benchjson snapshot against; regressions beyond -tolerance fail the run")
	tolerance := flag.Float64("tolerance", 0.30, "allowed ns/op slowdown vs -baseline (0.30 = +30%)")
	families := flag.String("families", "BenchmarkColdAssess,BenchmarkWarmAssess", "comma-separated benchmark-name prefixes the -baseline comparison guards")
	durable := flag.Bool("durable", false, "with -benchjson: also measure the durable warm-apply path (session apply + WAL append) at every fsync mode")
	flag.Parse()

	if *benchJSON != "" {
		var results map[string]mdqa.PerfResult
		var err error
		if *parallelism != "" {
			results, err = runBenchSweep(*benchJSON, *parallelism, *sizes)
		} else {
			results, err = runBenchJSON(*benchJSON, *sizes)
		}
		if err == nil && *durable {
			err = addDurable(*benchJSON, results, *sizes, *parallelism)
		}
		if err == nil && *baseline != "" {
			err = compareBaseline(results, *baseline, *families, *tolerance)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdbench:", err)
			os.Exit(1)
		}
		return
	}
	// Flags that only mean something on a -benchjson run must not be
	// silently ignored on experiment runs.
	benchOnly := map[string]bool{"parallelism": true, "sizes": true, "baseline": true, "tolerance": true, "families": true, "durable": true}
	flag.Visit(func(f *flag.Flag) {
		if benchOnly[f.Name] {
			fmt.Fprintf(os.Stderr, "mdbench: -%s requires -benchjson\n", f.Name)
			os.Exit(1)
		}
	})

	if *scale != "" {
		if err := runScale(*scale); err != nil {
			fmt.Fprintln(os.Stderr, "mdbench:", err)
			os.Exit(1)
		}
		return
	}

	experiments := mdqa.Experiments()
	if *exp != "" {
		e, ok := mdqa.ExperimentByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "mdbench: unknown experiment %q (have %s)\n", *exp, strings.Join(mdqa.ExperimentIDs(), ", "))
			os.Exit(1)
		}
		experiments = []mdqa.Experiment{e}
	}
	failed := 0
	for _, e := range experiments {
		fmt.Printf("==== %s — %s ====\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(os.Stdout); err != nil {
			fmt.Printf("FAILED: %v\n", err)
			failed++
		}
		fmt.Printf("(%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "mdbench: %d experiments failed\n", failed)
		os.Exit(1)
	}
}

// resolveSizes parses -sizes, falling back to the given default.
func resolveSizes(spec string, def []int) ([]int, error) {
	if spec == "" {
		return def, nil
	}
	sizes, err := parseInts(spec)
	if err != nil {
		return nil, fmt.Errorf("bad -sizes: %w", err)
	}
	return sizes, nil
}

func runBenchJSON(path, sizeSpec string) (map[string]mdqa.PerfResult, error) {
	sizes, err := resolveSizes(sizeSpec, []int{100, 400, 1600})
	if err != nil {
		return nil, err
	}
	results, err := mdqa.RunPerf(sizes)
	if err != nil {
		return nil, err
	}
	for _, name := range mdqa.PerfNames(results) {
		r := results[name]
		fmt.Printf("%-40s  %12d ns/op  %9d allocs/op  %10d B/op\n",
			name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
	}
	if err := mdqa.WritePerfJSON(path, results); err != nil {
		return nil, err
	}
	fmt.Printf("wrote %s (%s)\n", path, describeHardware(mdqa.CurrentHardware()))
	return results, nil
}

// runBenchSweep records the parallel speedup curve: every benchmark
// family at the requested sizes crossed with the requested worker-pool
// levels.
func runBenchSweep(path, levels, sizeSpec string) (map[string]mdqa.PerfResult, error) {
	ps, err := parseInts(levels)
	if err != nil {
		return nil, err
	}
	sizes, err := resolveSizes(sizeSpec, []int{400, 1600})
	if err != nil {
		return nil, err
	}
	results, err := mdqa.RunPerfSweep(sizes, ps)
	if err != nil {
		return nil, err
	}
	for _, name := range mdqa.PerfNames(results) {
		r := results[name]
		fmt.Printf("%-45s  %12d ns/op  %9d allocs/op  %10d B/op\n",
			name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
	}
	if err := mdqa.WritePerfJSON(path, results); err != nil {
		return nil, err
	}
	fmt.Printf("wrote %s (%s)\n", path, describeHardware(mdqa.CurrentHardware()))
	return results, nil
}

// addDurable appends the durable warm-apply benchmarks (session apply
// + WAL append at every fsync mode) to a fresh -benchjson snapshot and
// rewrites the file with the merged results.
func addDurable(path string, results map[string]mdqa.PerfResult, sizeSpec, levelSpec string) error {
	def := []int{100, 400, 1600}
	if levelSpec != "" {
		def = []int{400, 1600}
	}
	sizes, err := resolveSizes(sizeSpec, def)
	if err != nil {
		return err
	}
	durable, err := mdqa.RunDurablePerf(sizes, []string{"always", "interval", "async"})
	if err != nil {
		return err
	}
	for _, name := range mdqa.PerfNames(durable) {
		r := durable[name]
		fmt.Printf("%-45s  %12d ns/op  %9d allocs/op  %10d B/op\n",
			name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
		results[name] = r
	}
	return mdqa.WritePerfJSON(path, results)
}

// describeHardware renders the machine annotation for run logs.
func describeHardware(hw mdqa.Hardware) string {
	return fmt.Sprintf("nproc=%d gomaxprocs=%d %s/%s", hw.NumCPU, hw.Gomaxprocs, hw.GoOS, hw.GoArch)
}

// compareBaseline guards the banked perf wins: the fresh results must
// stay within tolerance of the baseline snapshot for the guarded
// benchmark families. Cross-machine comparisons are flagged — a CI
// runner differs from the machine that recorded the baseline, which is
// exactly why the tolerance is generous.
func compareBaseline(results map[string]mdqa.PerfResult, baselinePath, familySpec string, tolerance float64) error {
	baseline, hw, err := mdqa.ReadPerfJSON(baselinePath)
	if err != nil {
		return err
	}
	cur := mdqa.CurrentHardware()
	switch {
	case hw == nil:
		fmt.Printf("baseline %s has no hardware annotation (pre-PR 5 snapshot); current machine: %s\n",
			baselinePath, describeHardware(cur))
	case hw.NumCPU != cur.NumCPU:
		fmt.Printf("baseline %s recorded on %s, comparing on %s: parallel numbers are not directly comparable\n",
			baselinePath, describeHardware(*hw), describeHardware(cur))
	}
	var families []string
	for _, f := range strings.Split(familySpec, ",") {
		if f = strings.TrimSpace(f); f != "" {
			families = append(families, f)
		}
	}
	regressions, compared := mdqa.ComparePerf(results, baseline, families, tolerance)
	if compared == 0 {
		return fmt.Errorf("baseline comparison matched no benchmarks (families %s vs %s) — check -sizes/-parallelism against the baseline keys", familySpec, baselinePath)
	}
	fmt.Printf("baseline check: %d benchmarks compared against %s, tolerance +%.0f%%\n", compared, baselinePath, tolerance*100)
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "REGRESSION:", r)
		}
		return fmt.Errorf("%d benchmark(s) regressed beyond +%.0f%% vs %s", len(regressions), tolerance*100, baselinePath)
	}
	return nil
}

// parseInts parses a comma-separated list of positive integers.
func parseInts(spec string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func runScale(spec string) error {
	sizes, err := parseInts(spec)
	if err != nil {
		return fmt.Errorf("bad -scale: %w", err)
	}
	rows, err := mdqa.RunScaling(sizes)
	if err != nil {
		return err
	}
	fmt.Printf("%8s  %12s  %12s  %12s  %10s\n", "n", "chase", "DetQA", "rewrite", "atoms")
	for _, r := range rows {
		fmt.Printf("%8d  %12v  %12v  %12v  %10d\n",
			r.N, r.Chase.Round(time.Microsecond), r.DetQA.Round(time.Microsecond),
			r.Rewrite.Round(time.Microsecond), r.Atoms)
	}
	return nil
}
