// Command mdbench regenerates every table and figure of the paper and
// runs the complexity-claim experiments (see DESIGN.md's experiment
// index).
//
// Usage:
//
//	mdbench                          # run everything
//	mdbench -exp T2                  # one experiment
//	mdbench -scale 6400              # extend the C1 scaling sweep
//	mdbench -benchjson BENCH_1.json  # machine-readable perf snapshot
//	mdbench -benchjson BENCH_4.json -parallelism 1,2,4,8
//	                                 # parallel sweep: chase + cold/warm
//	                                 # assessment at each worker-pool level
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/mdqa"
)

func main() {
	exp := flag.String("exp", "", "experiment ID to run (default: all); one of "+strings.Join(mdqa.ExperimentIDs(), ","))
	scale := flag.String("scale", "", "comma-separated base sizes for an extended C1 scaling sweep")
	benchJSON := flag.String("benchjson", "", "write the scaling benchmarks (name -> ns/op, allocs/op) to this JSON file; used to track the perf trajectory across PRs")
	parallelism := flag.String("parallelism", "", "comma-separated worker-pool levels for a -benchjson parallel sweep (e.g. 1,2,4,8; 1 = sequential engine); a single value also works")
	flag.Parse()

	if *benchJSON != "" {
		var err error
		if *parallelism != "" {
			err = runBenchSweep(*benchJSON, *parallelism)
		} else {
			err = runBenchJSON(*benchJSON)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdbench:", err)
			os.Exit(1)
		}
		return
	}
	if *parallelism != "" {
		fmt.Fprintln(os.Stderr, "mdbench: -parallelism requires -benchjson")
		os.Exit(1)
	}

	if *scale != "" {
		if err := runScale(*scale); err != nil {
			fmt.Fprintln(os.Stderr, "mdbench:", err)
			os.Exit(1)
		}
		return
	}

	experiments := mdqa.Experiments()
	if *exp != "" {
		e, ok := mdqa.ExperimentByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "mdbench: unknown experiment %q (have %s)\n", *exp, strings.Join(mdqa.ExperimentIDs(), ", "))
			os.Exit(1)
		}
		experiments = []mdqa.Experiment{e}
	}
	failed := 0
	for _, e := range experiments {
		fmt.Printf("==== %s — %s ====\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(os.Stdout); err != nil {
			fmt.Printf("FAILED: %v\n", err)
			failed++
		}
		fmt.Printf("(%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "mdbench: %d experiments failed\n", failed)
		os.Exit(1)
	}
}

func runBenchJSON(path string) error {
	results, err := mdqa.RunPerf([]int{100, 400, 1600})
	if err != nil {
		return err
	}
	for _, name := range mdqa.PerfNames(results) {
		r := results[name]
		fmt.Printf("%-40s  %12d ns/op  %9d allocs/op  %10d B/op\n",
			name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
	}
	if err := mdqa.WritePerfJSON(path, results); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// runBenchSweep records the parallel speedup curve: every benchmark
// family at n in {400, 1600} crossed with the requested worker-pool
// levels.
func runBenchSweep(path, levels string) error {
	ps, err := parseInts(levels)
	if err != nil {
		return err
	}
	results, err := mdqa.RunPerfSweep([]int{400, 1600}, ps)
	if err != nil {
		return err
	}
	for _, name := range mdqa.PerfNames(results) {
		r := results[name]
		fmt.Printf("%-45s  %12d ns/op  %9d allocs/op  %10d B/op\n",
			name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
	}
	if err := mdqa.WritePerfJSON(path, results); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// parseInts parses a comma-separated list of positive integers.
func parseInts(spec string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func runScale(spec string) error {
	sizes, err := parseInts(spec)
	if err != nil {
		return fmt.Errorf("bad -scale: %w", err)
	}
	rows, err := mdqa.RunScaling(sizes)
	if err != nil {
		return err
	}
	fmt.Printf("%8s  %12s  %12s  %12s  %10s\n", "n", "chase", "DetQA", "rewrite", "atoms")
	for _, r := range rows {
		fmt.Printf("%8d  %12v  %12v  %12v  %10d\n",
			r.N, r.Chase.Round(time.Microsecond), r.DetQA.Round(time.Microsecond),
			r.Rewrite.Round(time.Microsecond), r.Atoms)
	}
	return nil
}
