package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/mdqa"
)

func TestEmitHospitalDefault(t *testing.T) {
	var buf bytes.Buffer
	if err := emit(nil, "", false, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`digraph "Hospital"`, `digraph "Time"`, `"Ward" -> "Unit"`} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "m:W1") {
		t.Error("members must be absent without -members")
	}
}

func TestEmitWithMembersAndDimFilter(t *testing.T) {
	var buf bytes.Buffer
	if err := emit(nil, "Hospital", true, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"m:W1" -> "m:Standard"`) {
		t.Error("member rollup edge missing")
	}
	if strings.Contains(out, `digraph "Time"`) {
		t.Error("-dim must filter to one dimension")
	}
}

func TestEmitUnknownDimension(t *testing.T) {
	if err := emit(nil, "Nope", false, &bytes.Buffer{}); err == nil {
		t.Error("unknown dimension must error")
	}
}

func TestEmitFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "h.mdq")
	if err := os.WriteFile(path, []byte(mdqa.HospitalExampleSource()), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := mdqa.ParseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := emit(f.Ontology, "", false, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `digraph "Hospital"`) {
		t.Error("file-based export missing Hospital")
	}
}
