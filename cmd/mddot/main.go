// Command mddot exports the dimensions of a .mdq ontology (or the
// built-in hospital example) as Graphviz DOT — the executable
// counterpart of the paper's Figure 1.
//
// Usage:
//
//	mddot                       # hospital example, schemas only
//	mddot -members              # include member hierarchies
//	mddot -dim Time file.mdq    # one dimension of a file
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/mdqa"
)

func main() {
	members := flag.Bool("members", false, "include dimension members")
	dim := flag.String("dim", "", "export only the named dimension")
	flag.Parse()

	var o *mdqa.Ontology
	if flag.NArg() > 0 {
		f, err := mdqa.ParseFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "mddot:", err)
			os.Exit(1)
		}
		o = f.Ontology
	}
	if err := emit(o, *dim, *members, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mddot:", err)
		os.Exit(1)
	}
}

// emit writes the DOT rendering of the ontology's dimensions (the
// built-in hospital example when o is nil), optionally restricted to
// one dimension.
func emit(o *mdqa.Ontology, dim string, members bool, w io.Writer) error {
	if o == nil {
		o = mdqa.HospitalOntology(mdqa.HospitalOptions{WithRuleNine: true, WithConstraints: true})
	}
	names := o.Dimensions()
	if dim != "" {
		if o.Dimension(dim) == nil {
			return fmt.Errorf("no dimension %q (have %v)", dim, names)
		}
		names = []string{dim}
	}
	for _, name := range names {
		if _, err := io.WriteString(w, o.Dimension(name).DOT(members)); err != nil {
			return err
		}
	}
	return nil
}
