// Command mdload offers an open-loop workload to an mdserve (or
// mdrouter) endpoint: arrivals are scheduled at a fixed rate — the
// offered load does not slow down when the server does, so overload
// shows up as queueing latency and shed arrivals rather than a
// silently reduced rate — with zipf-skewed session popularity, a
// configurable read/write mix, and per-op latency histograms measured
// from scheduled arrival time.
//
// Usage:
//
//	mdload -url http://localhost:8080 -context hospital -rate 500 -duration 10s
//	mdload -url ... -rr 0.8 -zipf 1.1 -sessions 32 -delta 8 -json LOAD_1.json
//	mdload -sweep 1,2,4 -rate 400 -duration 8s -benchjson BENCH_9.json -json LOAD_9.json
//
// The -sweep form needs no -url: it boots in-process mdserve shards on
// loopback — the same server package the mdserve binary runs — and
// drives the workload directly against one backend and through
// mdrouter at each shard count, recording the latency trajectory in
// BENCH-compatible keys (BenchmarkLoadReadP50/mode=router/shards=2,
// ...).
//
// Exit status: 0 on success; 1 on harness errors; 2 when -max-error-rate
// is exceeded (for CI smoke gates).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/gen"
	"repro/internal/load"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	code, err := run(ctx, os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdload:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

func run(ctx context.Context, args []string) (int, error) {
	fs := flag.NewFlagSet("mdload", flag.ContinueOnError)
	url := fs.String("url", "", "target base URL (mdserve or mdrouter)")
	contextName := fs.String("context", "hospital", "context name under /v1/contexts/")
	rate := fs.Float64("rate", 200, "offered arrival rate, ops/sec (open loop)")
	duration := fs.Duration("duration", 10*time.Second, "how long to offer arrivals")
	workers := fs.Int("workers", 0, "max in-flight ops (0 = sized from rate)")
	sessions := fs.Int("sessions", 8, "session population (ids \"<prefix>-<i>\")")
	prefix := fs.String("session-prefix", "lg", "session id prefix")
	zipf := fs.Float64("zipf", 0.9, "session popularity skew (0 = uniform)")
	rr := fs.Float64("rr", 0.9, "read ratio: fraction of ops that are answer reads")
	delta := fs.Int("delta", 4, "fact pairs per write batch")
	patients := fs.Int("patients", 16, "patient population per session")
	seedBatches := fs.Int("seed-batches", 1, "write batches pre-applied per session before the clock starts (scales read data volume)")
	mode := fs.String("mode", "clean", "answers mode: clean or raw")
	readScope := fs.String("read-scope", "patient", "read query scope: patient (point read) or relation (full scan)")
	seed := fs.Int64("seed", 1, "op-sequence seed")
	jsonPath := fs.String("json", "", "write LOAD report JSON here")
	maxErrRate := fs.Float64("max-error-rate", -1, "exit 2 when the error fraction exceeds this (negative = no gate)")
	sweep := fs.String("sweep", "", "comma-separated shard counts (e.g. 1,2,4): boot in-process shards and sweep direct + router topologies instead of hitting -url")
	benchJSON := fs.String("benchjson", "", "with -sweep: write latency quantiles as BENCH-compatible JSON here")
	parallelism := fs.Int("parallelism", 0, "with -sweep: engine pool per in-process shard (0 = all cores)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0, nil
		}
		return 1, err
	}

	spec := load.Spec{
		Target:        gen.HTTPTarget{BaseURL: strings.TrimRight(*url, "/"), Context: *contextName},
		Rate:          *rate,
		Duration:      *duration,
		Workers:       *workers,
		Sessions:      *sessions,
		SessionPrefix: *prefix,
		Zipf:          *zipf,
		ReadRatio:     *rr,
		DeltaAtoms:    *delta,
		Patients:      *patients,
		SeedBatches:   *seedBatches,
		Mode:          *mode,
		ReadScope:     *readScope,
		Seed:          *seed,
	}

	if *sweep != "" {
		return runSweep(ctx, spec, *sweep, *parallelism, *jsonPath, *benchJSON)
	}
	if *url == "" {
		return 1, fmt.Errorf("pass -url (or -sweep for the in-process topology sweep)")
	}
	res, err := load.Run(ctx, spec)
	if err != nil {
		return 1, err
	}
	rep := load.NewReport("mdload", spec, res)
	fmt.Print(load.FormatReport(rep))
	if *jsonPath != "" {
		if err := load.WriteLoadJSON(*jsonPath, []load.Report{rep}); err != nil {
			return 1, err
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	if *maxErrRate >= 0 && rep.ErrorRate() > *maxErrRate {
		return 2, fmt.Errorf("error rate %.4f exceeds gate %.4f (last error: %v)", rep.ErrorRate(), *maxErrRate, res.LastErr)
	}
	return 0, nil
}

func runSweep(ctx context.Context, spec load.Spec, shardsCSV string, parallelism int, jsonPath, benchJSON string) (int, error) {
	var shards []int
	for _, f := range strings.Split(shardsCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return 1, fmt.Errorf("bad -sweep entry %q", f)
		}
		shards = append(shards, n)
	}
	reports, perf, err := load.RunShardSweep(ctx, load.SweepSpec{
		Shards:      shards,
		Load:        spec,
		Parallelism: parallelism,
	})
	if err != nil {
		return 1, err
	}
	for _, r := range reports {
		fmt.Print(load.FormatReport(r))
	}
	if overhead, err := load.RouterOverheadP50(reports); err == nil {
		fmt.Printf("router overhead at shards=1: %+.1f%% read p50\n", overhead*100)
	}
	if jsonPath != "" {
		if err := load.WriteLoadJSON(jsonPath, reports); err != nil {
			return 1, err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	if benchJSON != "" {
		if err := bench.WritePerfJSON(benchJSON, perf); err != nil {
			return 1, err
		}
		fmt.Printf("wrote %s\n", benchJSON)
	}
	return 0, nil
}
