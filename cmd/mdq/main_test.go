package main

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/mdqa"
)

// update regenerates the golden files: go test ./cmd/mdq -update
var update = flag.Bool("update", false, "rewrite golden files")

// writeExample writes the built-in hospital example (optionally with
// the quality context) to a temp file.
func writeExample(t *testing.T, quality bool) string {
	t.Helper()
	src := mdqa.HospitalExampleSource()
	if quality {
		src = mdqa.HospitalQualityExampleSource()
	}
	path := filepath.Join(t.TempDir(), "hospital.mdq")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// runCLI runs the mdq CLI and returns its output.
func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(context.Background(), args, &buf); err != nil {
		t.Fatalf("mdq %v: %v\noutput:\n%s", args, err, buf.String())
	}
	return buf.String()
}

// checkGolden compares output against testdata/<name>.golden,
// rewriting it under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run: go test ./cmd/mdq -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestExampleCommand(t *testing.T) {
	out := runCLI(t, "example")
	for _, want := range []string{"dimension Hospital", "rule r7:", "query marks"} {
		if !strings.Contains(out, want) {
			t.Errorf("example output missing %q", want)
		}
	}
	if strings.Contains(out, "version Measurements_q") {
		t.Error("plain example must not include the quality context")
	}
	withQ := runCLI(t, "example", "-quality")
	if !strings.Contains(withQ, "version Measurements_q of Measurements") {
		t.Error("-quality example must include the version definition")
	}
	// The emitted examples must round-trip through the parser.
	if _, err := mdqa.ParseSource(out); err != nil {
		t.Errorf("plain example does not re-parse: %v", err)
	}
	if _, err := mdqa.ParseSource(withQ); err != nil {
		t.Errorf("quality example does not re-parse: %v", err)
	}
}

// The golden tests pin the full CLI output of every subcommand over
// the built-in example, so facade-level regressions (ordering,
// formatting, measure arithmetic) surface as diffs.

func TestDescribeGolden(t *testing.T) {
	checkGolden(t, "describe", runCLI(t, "describe", writeExample(t, true)))
}

func TestChaseGolden(t *testing.T) {
	checkGolden(t, "chase", runCLI(t, "chase", writeExample(t, false)))
}

func TestCheckGolden(t *testing.T) {
	checkGolden(t, "check", runCLI(t, "check", writeExample(t, false)))
}

func TestAssessGolden(t *testing.T) {
	checkGolden(t, "assess", runCLI(t, "assess", writeExample(t, true)))
}

func TestCleanGolden(t *testing.T) {
	checkGolden(t, "clean-answer", runCLI(t, "clean", writeExample(t, true)))
}

func TestClassifyCommand(t *testing.T) {
	path := writeExample(t, false)
	out := runCLI(t, "classify", path)
	for _, want := range []string{"weakly-sticky", "not sticky because", "rule r7: upward", "rule r8: downward"} {
		if !strings.Contains(out, want) {
			t.Errorf("classify missing %q:\n%s", want, out)
		}
	}
}

func TestChaseCommand(t *testing.T) {
	path := writeExample(t, false)
	out := runCLI(t, "chase", path)
	for _, want := range []string{"saturated=true", "PatientUnit", "Standard", "⊥"} {
		if !strings.Contains(out, want) {
			t.Errorf("chase missing %q:\n%s", want, out)
		}
	}
}

func TestCheckCommand(t *testing.T) {
	path := writeExample(t, false)
	out := runCLI(t, "check", path)
	// The example's intensive-closed constraint fires on W3/Sep/7.
	if !strings.Contains(out, "violation") || !strings.Contains(out, "W3") {
		t.Errorf("check must report the intensive-closed violation:\n%s", out)
	}
}

func TestQueryCommandAllEngines(t *testing.T) {
	path := writeExample(t, false)
	for _, engine := range []string{"det", "chase", "rewrite"} {
		out := runCLI(t, "query", path, "-engine", engine, "marks")
		if !strings.Contains(out, "Sep/9") {
			t.Errorf("engine %s: marks answer missing Sep/9:\n%s", engine, out)
		}
	}
	// All queries at once.
	out := runCLI(t, "query", path)
	if !strings.Contains(out, "marks") && !strings.Contains(out, "tomunits") {
		t.Errorf("default run must answer every query:\n%s", out)
	}
}

func TestAssessCommand(t *testing.T) {
	path := writeExample(t, true)
	out := runCLI(t, "assess", path)
	for _, want := range []string{"quality version of Measurements", "Sep/5-12:10", "Sep/6-11:50", "clean-fraction=0.333"} {
		if !strings.Contains(out, want) {
			t.Errorf("assess missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Sep/7-12:15") {
		t.Errorf("dirty tuple must not appear in the quality version:\n%s", out)
	}
}

func TestCleanCommand(t *testing.T) {
	path := writeExample(t, true)
	out := runCLI(t, "clean", path, "tomunits")
	// tomunits queries PatientUnit, which has no quality version: the
	// clean rewriting leaves it unchanged, answering over the context.
	if !strings.Contains(out, "Standard") {
		t.Errorf("clean tomunits must answer over the context:\n%s", out)
	}
}

func TestErrorPaths(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, nil, &bytes.Buffer{}); err == nil {
		t.Error("no args must error")
	}
	if err := run(ctx, []string{"describe"}, &bytes.Buffer{}); err == nil {
		t.Error("missing file must error")
	}
	if err := run(ctx, []string{"bogus", "x.mdq"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown command must error")
	}
	if err := run(ctx, []string{"describe", "/nonexistent.mdq"}, &bytes.Buffer{}); err == nil {
		t.Error("missing file must error")
	}
	plain := writeExample(t, false)
	if err := run(ctx, []string{"assess", plain}, &bytes.Buffer{}); err == nil {
		t.Error("assess without a context must error")
	}
	if err := run(ctx, []string{"query", plain, "nope"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown query name must error")
	}
	if err := run(ctx, []string{"query", plain, "-engine", "warp", "marks"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown engine must error")
	}
	// Cancellation propagates into long-running subcommands.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := run(cancelled, []string{"chase", plain}, &bytes.Buffer{}); err == nil {
		t.Error("cancelled chase must error")
	}
}
