// Command mdq loads a .mdq multidimensional ontology file and operates
// on it: describe its contents, classify the compiled Datalog± program,
// chase it, check its constraints, answer its named queries with a
// chosen engine, or run the quality-assessment pipeline.
//
// Usage (a global -parallelism flag before the command bounds the
// worker pool: 0 = all cores, 1 = sequential):
//
//	mdq [-parallelism n] describe file.mdq
//	mdq classify file.mdq
//	mdq chase    file.mdq
//	mdq check    file.mdq
//	mdq query    file.mdq [-engine chase|det|rewrite] [name]
//	mdq assess   file.mdq            # quality versions + measures
//	mdq clean    file.mdq [-explain] [name]
//
// assess and clean accept repeated global -source rel=url-or-path
// flags binding a live external source (HTTP endpoint or CSV/NDJSON
// file) to a contextual relation, fetched once for the assessment:
//
//	mdq -source PatientWard=wards.csv assess file.mdq
//	                                 # clean answers to named queries;
//	                                 # -explain prints the compiled join
//	                                 # plan (atom order + cost estimates)
//	                                 # instead of the answers
//	mdq example                      # print the built-in hospital example
//	mdq example -quality             # ... with the Example 7 context
//
// With no query name, every named query in the file is answered.
//
// The command is a thin shell over the public repro/mdqa facade; every
// operation honors interrupt-driven cancellation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"repro/mdqa"
)

// sourceFlags collects repeated -source rel=url-or-path flags; each
// becomes a live source binding on the quality context (fetched once
// per assessment — the CLI has no long-lived session to refresh).
type sourceFlags []mdqa.Option

func (s *sourceFlags) String() string { return fmt.Sprintf("%d sources", len(*s)) }

func (s *sourceFlags) Set(v string) error {
	rel, spec, ok := strings.Cut(v, "=")
	if !ok || rel == "" || spec == "" {
		return fmt.Errorf("want relation=url-or-path, got %q", v)
	}
	schema := mdqa.SourceSchema{Relation: rel}
	var src mdqa.Source
	if strings.HasPrefix(spec, "http://") || strings.HasPrefix(spec, "https://") {
		src = mdqa.NewHTTPSource(spec, schema)
	} else {
		src = mdqa.NewFileSource(spec, schema)
	}
	*s = append(*s, mdqa.WithSource(rel, src))
	return nil
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mdq:", err)
		os.Exit(1)
	}
}

// run dispatches the CLI; out receives all normal output.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mdq", flag.ContinueOnError)
	fs.SetOutput(out)
	parallelism := fs.Int("parallelism", 0,
		"worker pool bound for chase/eval rounds (0 = all cores, 1 = sequential)")
	var liveSources sourceFlags
	fs.Var(&liveSources, "source",
		"live external source for assess/clean, as relation=url-or-path (repeatable)")
	fs.Usage = func() {
		fmt.Fprintln(out, usageError().Error())
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help printed the usage; a clean exit
		}
		return err
	}
	args = fs.Args()
	if len(args) < 1 {
		return usageError()
	}
	cmd := args[0]
	if cmd == "example" {
		if len(args) > 1 && args[1] == "-quality" {
			fmt.Fprint(out, mdqa.HospitalQualityExampleSource())
		} else {
			fmt.Fprint(out, mdqa.HospitalExampleSource())
		}
		return nil
	}
	if len(args) < 2 {
		return usageError()
	}
	path := args[1]
	rest := args[2:]
	file, err := mdqa.ParseFile(path)
	if err != nil {
		return err
	}
	switch cmd {
	case "describe":
		return describe(file, out)
	case "classify":
		return classify(file, out)
	case "chase":
		return runChase(ctx, file, *parallelism, out)
	case "check":
		return check(ctx, file, *parallelism, out)
	case "query":
		return runQuery(ctx, file, rest, *parallelism, out)
	case "assess":
		return assess(ctx, file, *parallelism, liveSources, out)
	case "clean":
		return cleanAnswer(ctx, file, rest, *parallelism, liveSources, out)
	default:
		return usageError()
	}
}

func usageError() error {
	return fmt.Errorf("usage: mdq <describe|classify|chase|check|query|assess|clean|example> [file.mdq] [args]")
}

func describe(f *mdqa.File, out io.Writer) error {
	fmt.Fprint(out, f.Ontology.Summary())
	if len(f.Queries) > 0 {
		fmt.Fprintln(out, "Queries:")
		for _, nq := range f.Queries {
			fmt.Fprintf(out, "  %s\n", nq.Query)
		}
	}
	if mdqa.HasQualityContext(f) {
		c := f.Context
		fmt.Fprintf(out, "Quality context: %d input tuples, %d mappings, %d quality rules, %d versions\n",
			c.Input.TotalTuples(), len(c.Mappings), len(c.QualityRules), len(c.Versions))
	}
	sep, reason := f.Ontology.SeparabilityHeuristic()
	fmt.Fprintf(out, "EGD separability: %v (%s)\n", sep, reason)
	fmt.Fprintf(out, "Upward-only: %v\n", f.Ontology.IsUpwardOnly())
	return nil
}

func classify(f *mdqa.File, out io.Writer) error {
	comp, err := f.Ontology.Compile(mdqa.CompileOptions{ReferentialNCs: true})
	if err != nil {
		return err
	}
	fmt.Fprintln(out, comp.Report)
	if comp.Report.StickyWitness != "" {
		fmt.Fprintln(out, "not sticky because:", comp.Report.StickyWitness)
	}
	if comp.Report.WSWitness != "" {
		fmt.Fprintln(out, "not weakly sticky because:", comp.Report.WSWitness)
	}
	for _, t := range f.Ontology.Rules() {
		fmt.Fprintf(out, "rule %s: %s navigation, %s\n", t.ID, comp.Directions[t.ID], comp.Forms[t.ID])
	}
	return nil
}

func runChase(ctx context.Context, f *mdqa.File, parallelism int, out io.Writer) error {
	comp, err := f.Ontology.Compile(mdqa.CompileOptions{})
	if err != nil {
		return err
	}
	res, err := mdqa.Chase(ctx, comp, mdqa.ChaseOptions{Parallelism: parallelism})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "chase: %d rounds, %d rule firings, %d nulls invented, saturated=%v\n",
		res.Rounds, res.Fired, res.NullsCreated, res.Saturated)
	for _, name := range f.Ontology.Relations() {
		rel := res.Instance.Relation(name)
		if rel == nil || rel.Len() == 0 {
			continue
		}
		fmt.Fprintln(out)
		fmt.Fprint(out, mdqa.FormatRelationSorted(rel))
	}
	return nil
}

func check(ctx context.Context, f *mdqa.File, parallelism int, out io.Writer) error {
	comp, err := f.Ontology.Compile(mdqa.CompileOptions{ReferentialNCs: true})
	if err != nil {
		return err
	}
	res, err := mdqa.Chase(ctx, comp, mdqa.ChaseOptions{Parallelism: parallelism})
	if err != nil {
		return err
	}
	if res.Consistent() {
		fmt.Fprintln(out, "consistent: no constraint violations")
		return nil
	}
	fmt.Fprintf(out, "%d constraint violations:\n", len(res.Violations))
	for _, v := range res.Violations {
		fmt.Fprintf(out, "  %s\n", v)
	}
	return nil
}

func runQuery(ctx context.Context, f *mdqa.File, args []string, parallelism int, out io.Writer) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	fs.SetOutput(out)
	engineName := fs.String("engine", "det", "answering engine: chase, det, or rewrite")
	if err := fs.Parse(args); err != nil {
		return err
	}
	engine, err := mdqa.QueryEngineByName(*engineName)
	if err != nil {
		return err
	}
	comp, err := f.Ontology.Compile(mdqa.CompileOptions{})
	if err != nil {
		return err
	}
	queries := f.Queries
	if fs.NArg() > 0 {
		q := f.QueryByName(fs.Arg(0))
		if q == nil {
			return fmt.Errorf("no query named %s", fs.Arg(0))
		}
		queries = []mdqa.NamedQuery{{Name: fs.Arg(0), Query: q}}
	}
	if len(queries) == 0 {
		return fmt.Errorf("the file declares no queries")
	}
	for _, nq := range queries {
		as, err := mdqa.CertainAnswers(ctx, comp, nq.Query, mdqa.AnswerOptions{
			Engine:          engine,
			Chase:           mdqa.ChaseOptions{Parallelism: parallelism},
			AllowViolations: true,
		})
		if err != nil {
			return fmt.Errorf("query %s: %w", nq.Name, err)
		}
		fmt.Fprintf(out, "%s (%d answers):\n%s", nq.Query, as.Len(), as)
	}
	return nil
}

// assessFile runs the quality pipeline through the facade's prepared
// session layer; shared by assess and clean.
func assessFile(ctx context.Context, f *mdqa.File, parallelism int, sources []mdqa.Option) (*mdqa.Assessment, error) {
	if !mdqa.HasQualityContext(f) {
		return nil, fmt.Errorf("the file declares no quality context (input/mapping/quality/version statements)")
	}
	opts := append([]mdqa.Option{mdqa.WithParallelism(parallelism)}, sources...)
	qc, err := mdqa.NewContextFromFile(f, opts...)
	if err != nil {
		return nil, err
	}
	return qc.Assess(ctx, mdqa.InputInstance(f))
}

func assess(ctx context.Context, f *mdqa.File, parallelism int, sources []mdqa.Option, out io.Writer) error {
	a, err := assessFile(ctx, f, parallelism, sources)
	if err != nil {
		return err
	}
	for _, v := range a.Violations() {
		fmt.Fprintln(out, "violation:", v)
	}
	for _, spec := range f.Context.Versions {
		rel, err := a.Version(spec.Original)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "quality version of %s:\n", spec.Original)
		fmt.Fprint(out, mdqa.FormatRelationSorted(rel))
		if m, ok := a.Measures()[spec.Original]; ok {
			fmt.Fprintf(out, "measure: |D|=%d |D_q|=%d clean-fraction=%.3f distance=%.3f\n\n",
				m.Original, m.Quality, m.CleanFraction(), m.Distance())
		}
	}
	return nil
}

func cleanAnswer(ctx context.Context, f *mdqa.File, args []string, parallelism int, sources []mdqa.Option, out io.Writer) error {
	fs := flag.NewFlagSet("clean", flag.ContinueOnError)
	fs.SetOutput(out)
	explain := fs.Bool("explain", false,
		"print each query's compiled join plan (atom order + cost estimates) instead of its answers")
	if err := fs.Parse(args); err != nil {
		return err
	}
	args = fs.Args()
	a, err := assessFile(ctx, f, parallelism, sources)
	if err != nil {
		return err
	}
	queries := f.Queries
	if len(args) > 0 {
		q := f.QueryByName(args[0])
		if q == nil {
			return fmt.Errorf("no query named %s", args[0])
		}
		queries = []mdqa.NamedQuery{{Name: args[0], Query: q}}
	}
	if len(queries) == 0 {
		return fmt.Errorf("the file declares no queries")
	}
	// Stream the clean answers off the assessment's snapshot; answers
	// are sorted via the materialized set only for stable CLI output.
	// Explain reads the same snapshot the answers come from — a plan is
	// costed against one snapshot's statistics, so rendering it off any
	// other version would show a plan the query never executes.
	snap := a.Snapshot()
	for _, nq := range queries {
		if *explain {
			text, err := snap.Explain(nq.Query, true, nil)
			if err != nil {
				return fmt.Errorf("query %s: %w", nq.Name, err)
			}
			if v, ok := snap.Version(); ok {
				fmt.Fprintf(out, "-- plan at session version %d\n", v.Seq)
			}
			fmt.Fprintf(out, "%s -> %s", snap.RewriteClean(nq.Query), text)
			continue
		}
		as, err := collectAnswers(snap.CleanAnswers(nq.Query))
		if err != nil {
			return fmt.Errorf("query %s: %w", nq.Name, err)
		}
		fmt.Fprintf(out, "%s -> clean answers (%d):\n%s", snap.RewriteClean(nq.Query), as.Len(), as)
	}
	return nil
}

// collectAnswers drains a streamed answer sequence into a set.
func collectAnswers(seq func(func(mdqa.Answer, error) bool)) (*mdqa.AnswerSet, error) {
	var streamErr error
	as := mdqa.NewAnswerSet()
	seq(func(ans mdqa.Answer, err error) bool {
		if err != nil {
			streamErr = err
			return false
		}
		as.Add(ans)
		return true
	})
	if streamErr != nil {
		return nil, streamErr
	}
	return as, nil
}
