// Command mdrouter shards mdserve traffic across share-nothing
// backends with consistent hashing: session-scoped requests are pinned
// to the backend owning the {context, session} key, stateless work is
// spread with a bounded-load walk, and GET session listings are merged
// across every healthy shard. Ring changes move only ≈ K/N of K keys.
//
// Usage:
//
//	mdrouter -addr :8090 -backend http://10.0.0.1:8080 -backend http://10.0.0.2:8080
//	mdrouter -backend ... -vnodes 128 -load-factor 1.25 -health-interval 2s
//
// Router-local endpoints (everything else is proxied):
//
//	GET /healthz   router + backend health
//	GET /metrics   per-backend counters and latency quantiles
//	GET /topology  ring layout: backends, health, hash-space shares
//
// Session state is NOT replicated: when the backend owning a session
// is down, requests for that session answer 503 backend_unavailable
// until it returns. Every proxied response carries the serving backend
// in X-Mdrouter-Backend.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/router"
)

// backendFlags collects repeated -backend URL flags.
type backendFlags []string

func (b *backendFlags) String() string { return strings.Join(*b, ",") }

func (b *backendFlags) Set(v string) error {
	if v == "" {
		return fmt.Errorf("empty backend URL")
	}
	*b = append(*b, v)
	return nil
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mdrouter:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("mdrouter", flag.ContinueOnError)
	addr := fs.String("addr", ":8090", "listen address")
	vnodes := fs.Int("vnodes", 0, "virtual nodes per backend (0 = default)")
	loadFactor := fs.Float64("load-factor", 0, "bounded-load factor for stateless requests (0 = default 1.25)")
	healthInterval := fs.Duration("health-interval", 0, "backend /healthz probe period (0 = default 2s)")
	retries := fs.Int("retries", 0, "extra attempts after a connect failure (0 = default 1, negative disables)")
	drain := fs.Duration("drain", 5*time.Second, "graceful shutdown drain window")
	var backends backendFlags
	fs.Var(&backends, "backend", "mdserve backend base URL (repeatable)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if len(backends) == 0 {
		return fmt.Errorf("no backends: pass -backend http://host:port at least once")
	}

	rt, err := router.New(router.Config{
		Backends:       backends,
		VNodes:         *vnodes,
		LoadFactor:     *loadFactor,
		HealthInterval: *healthInterval,
		Retries:        *retries,
	})
	if err != nil {
		return err
	}
	// Probe once before accepting traffic so a dead backend at boot is
	// routed around from the first request.
	rt.CheckHealth(ctx)
	log.Printf("mdrouter: %d backends (%d healthy) on %s", len(backends), len(rt.Healthy()), *addr)

	reqCtx, reqCancel := context.WithCancel(context.Background())
	defer reqCancel()
	go rt.Start(reqCtx)

	hs := &http.Server{
		Addr:        *addr,
		Handler:     rt,
		BaseContext: func(net.Listener) context.Context { return reqCtx },
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		log.Printf("mdrouter: shutting down (drain %s)", *drain)
		shCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(shCtx); err != nil {
			log.Printf("mdrouter: drain incomplete: %v", err)
			reqCancel()
			_ = hs.Close()
		}
		return nil
	}
}
