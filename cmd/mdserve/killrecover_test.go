package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/server"
	"repro/mdqa"
)

// buildMdserve compiles the real binary once for the fault-injection
// tests.
func buildMdserve(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mdserve")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// freePort reserves an ephemeral localhost port and releases it for
// the child process to bind.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startMdserve launches the binary and waits for /healthz.
func startMdserve(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	addr := freePort(t)
	cmd := exec.Command(bin, append([]string{"-addr", addr}, args...)...)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	})
	base := "http://" + addr
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd, base
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("mdserve did not come up on %s", addr)
	return nil, ""
}

// killBatch renders the i-th delta batch of the fault-injection
// stream: distinct timestamps so every batch inserts new facts.
func killBatch(i int) string {
	ts := fmt.Sprintf("Sep/6-12:%02d", 10+i)
	return fmt.Sprintf(`{"atoms":[{"pred":"Clock","args":[%q,"Sep/6"]},{"pred":"Measurements","args":[%q,"Tom Waits","37.%d"]}]}`+"\n", ts, ts, i)
}

// TestKillRecover is the crash-safety acceptance test: stream apply
// batches in lock-step (send one, read its ack, send the next), SIGKILL
// the server after k acks with no batch in flight, restart it over the
// same -data-dir, and require the recovered session to answer and
// assess byte-identically to an uninterrupted run over exactly those k
// acknowledged batches — at parallelism 1 and 2.
func TestKillRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills real processes")
	}
	bin := buildMdserve(t)
	for _, par := range []int{1, 2} {
		t.Run(fmt.Sprintf("p=%d", par), func(t *testing.T) {
			dir := t.TempDir()
			pflag := fmt.Sprintf("%d", par)
			cmd, base := startMdserve(t, bin, "-example", "-parallelism", pflag, "-data-dir", dir)

			body := request(t, "POST", base+"/v1/contexts/hospital/sessions", "")
			if !strings.Contains(body, `"id":"s1"`) {
				t.Fatalf("create: %s", body)
			}
			sbase := base + "/v1/contexts/hospital/sessions/s1"

			// Lock-step NDJSON apply over one streaming request.
			const acked = 2
			pr, pw := io.Pipe()
			req, err := http.NewRequest("POST", sbase+"/apply", pr)
			if err != nil {
				t.Fatal(err)
			}
			respc := make(chan *http.Response, 1)
			go func() {
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					respc <- nil
					return
				}
				respc <- resp
			}()
			var sc *bufio.Scanner
			for i := 0; i < acked; i++ {
				if _, err := io.WriteString(pw, killBatch(i)); err != nil {
					t.Fatal(err)
				}
				if sc == nil {
					resp := <-respc
					if resp == nil {
						t.Fatal("apply stream failed to start")
					}
					defer resp.Body.Close()
					sc = bufio.NewScanner(resp.Body)
				}
				if !sc.Scan() {
					t.Fatalf("no ack for batch %d: %v", i, sc.Err())
				}
				if line := sc.Text(); !strings.Contains(line, `"inserted"`) {
					t.Fatalf("batch %d not acknowledged: %s", i, line)
				}
			}
			// Both batches acked, none in flight: kill -9.
			if err := cmd.Process.Kill(); err != nil {
				t.Fatal(err)
			}
			_ = cmd.Wait()
			pw.Close()

			// The uninterrupted reference: the same handler stack,
			// in-process, applying exactly the acknowledged batches.
			refSrv, err := server.New(context.Background(), server.Config{Parallelism: par}, []server.ContextSource{{
				Name: "hospital", Source: mdqa.HospitalQualityExampleSource(),
			}})
			if err != nil {
				t.Fatal(err)
			}
			ref := httptest.NewServer(refSrv)
			defer ref.Close()
			request(t, "POST", ref.URL+"/v1/contexts/hospital/sessions", "")
			refBase := ref.URL + "/v1/contexts/hospital/sessions/s1"
			request(t, "POST", refBase+"/apply", killBatch(0)+killBatch(1))

			// Restart over the same data dir and compare byte-for-byte.
			_, base2 := startMdserve(t, bin, "-example", "-parallelism", pflag, "-data-dir", dir)
			sbase2 := base2 + "/v1/contexts/hospital/sessions/s1"
			info := request(t, "GET", sbase2, "")
			if !strings.Contains(info, `"applies":2`) {
				t.Fatalf("recovered session must hold both acked batches: %s", info)
			}
			q := "/answers?q=" + url.QueryEscape(`m(t, p, v) <- Measurements(t, p, v).`)
			gotAns := sortLines(request(t, "GET", sbase2+q, ""))
			wantAns := sortLines(request(t, "GET", refBase+q, ""))
			if gotAns != wantAns {
				t.Fatalf("recovered answers differ from uninterrupted run:\n got: %s\nwant: %s", gotAns, wantAns)
			}
			gotAssess := request(t, "GET", sbase2+"/assessment", "")
			wantAssess := request(t, "GET", refBase+"/assessment", "")
			if gotAssess != wantAssess {
				t.Fatalf("recovered assessment differs from uninterrupted run:\n got: %s\nwant: %s", gotAssess, wantAssess)
			}
			// Time travel survives the kill: every pre-crash version
			// still answers and assesses byte-identically to the
			// uninterrupted run's as-of reads.
			for v := 0; v <= acked; v++ {
				av := fmt.Sprintf("&as_of=%d", v)
				gotV := sortLines(request(t, "GET", sbase2+q+av, ""))
				wantV := sortLines(request(t, "GET", refBase+q+av, ""))
				if gotV != wantV {
					t.Fatalf("recovered as_of=%d answers differ:\n got: %s\nwant: %s", v, gotV, wantV)
				}
				ap := fmt.Sprintf("/assessment?as_of=%d", v)
				gotA := request(t, "GET", sbase2+ap, "")
				wantA := request(t, "GET", refBase+ap, "")
				if gotA != wantA {
					t.Fatalf("recovered as_of=%d assessment differs:\n got: %s\nwant: %s", v, gotA, wantA)
				}
			}
			// The trajectory is intact across the restart: one scored
			// point per acknowledged batch, score-for-score identical to
			// the reference (wall times are replay times, so they are
			// blanked before comparing).
			var gotTr, wantTr server.TrajectoryResponse
			if err := json.Unmarshal([]byte(request(t, "GET", sbase2+"/trajectory?rel=Measurements", "")), &gotTr); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal([]byte(request(t, "GET", refBase+"/trajectory?rel=Measurements", "")), &wantTr); err != nil {
				t.Fatal(err)
			}
			if len(gotTr.Points) != acked+1 {
				t.Fatalf("recovered trajectory = %d points, want %d", len(gotTr.Points), acked+1)
			}
			for i := range gotTr.Points {
				gotTr.Points[i].Time, wantTr.Points[i].Time = "", ""
			}
			if !reflect.DeepEqual(gotTr.Points, wantTr.Points) {
				t.Fatalf("recovered trajectory differs:\n got: %+v\nwant: %+v", gotTr.Points, wantTr.Points)
			}
			metrics := request(t, "GET", base2+"/metrics", "")
			if !strings.Contains(metrics, `mdserve_sessions_recovered_total{context="hospital"} 1`) {
				t.Fatalf("restart must count the recovery:\n%s", metrics)
			}
		})
	}
}

// TestSigtermGraceful sends SIGTERM mid-life and requires exit code 0
// plus a final snapshot on disk: the graceful path flushes WALs and
// compacts before exiting.
func TestSigtermGraceful(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	bin := buildMdserve(t)
	dir := t.TempDir()
	cmd, base := startMdserve(t, bin, "-example", "-data-dir", dir)
	request(t, "POST", base+"/v1/contexts/hospital/sessions", "")
	request(t, "POST", base+"/v1/contexts/hospital/sessions/s1/apply", killBatch(0))
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("SIGTERM must exit 0, got %v", err)
	}
	// The shutdown snapshot covers the WAL: restart replays nothing and
	// still has the applied batch.
	_, base2 := startMdserve(t, bin, "-example", "-data-dir", dir)
	info := request(t, "GET", base2+"/v1/contexts/hospital/sessions/s1", "")
	if !strings.Contains(info, `"applies":1`) {
		t.Fatalf("graceful restart must keep the session: %s", info)
	}
}
