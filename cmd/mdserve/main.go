// Command mdserve serves quality assessments over HTTP: it loads one
// or more quality contexts at startup, compiles each exactly once, and
// multiplexes concurrent clients over prepared assessment sessions.
//
// Usage:
//
//	mdserve -example                          # built-in hospital context
//	mdserve -context sales=sales.mdq          # context from a .mdq file
//	mdserve -context a=a.mdq -context b=b.mdq # several contexts
//	mdserve -addr :8080 -parallelism 4 ...
//	mdserve -data-dir /var/lib/mdserve -fsync interval   # durable sessions
//	mdserve -example -pprof localhost:6060    # profiling on a side listener
//
// API (JSON; streaming endpoints use NDJSON):
//
//	GET  /healthz
//	GET  /metrics
//	GET  /v1/contexts
//	POST /v1/contexts/{name}/assess                   one-shot assessment
//	POST /v1/contexts/{name}/sessions                 open a session
//	GET  /v1/contexts/{name}/sessions                 list sessions
//	GET  /v1/contexts/{name}/sessions/{id}            session info
//	DELETE /v1/contexts/{name}/sessions/{id}          close a session
//	POST /v1/contexts/{name}/sessions/{id}/apply      NDJSON delta ingest
//	POST /v1/contexts/{name}/sessions/{id}/refresh    re-poll live sources
//	GET  /v1/contexts/{name}/sessions/{id}/answers?q= stream answers
//	GET  /v1/contexts/{name}/sessions/{id}/assessment materialized outcome
//	GET  /v1/contexts/{name}/sessions/{id}/versions   version timeline
//	GET  /v1/contexts/{name}/sessions/{id}/trajectory?rel= score series
//
// Time travel: every applied batch produces a numbered session
// version; answers, assessment, assess and trajectory accept
// ?as_of=<version|RFC3339> to read any version still retained in the
// in-memory ring (-history-depth, -history-bytes) — or, with
// -data-dir, any version reconstructable from retained snapshots and
// WAL replay.
//
// Live external sources bind a contextual relation to an HTTP endpoint
// or file that is re-polled at refresh time:
//
//	mdserve -example -source hospital/PatientWard=http://feeds/wards
//	mdserve -example -source hospital/PatientWard=wards.csv -source-refresh 30s
//
// The server shuts down gracefully on SIGINT/SIGTERM: it stops
// accepting, drains in-flight requests for the -drain window, flushes
// every session WAL, writes final snapshots and exits 0. With
// -data-dir set, sessions survive restarts — and crashes: every
// acknowledged apply batch is write-ahead logged before the ack, so a
// kill -9 recovers to exactly the acknowledged state.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/wal"
	"repro/mdqa"
)

// contextFlags collects repeated -context name=path.mdq flags.
type contextFlags []server.ContextSource

func (c *contextFlags) String() string {
	var parts []string
	for _, s := range *c {
		parts = append(parts, s.Name+"="+s.Path)
	}
	return strings.Join(parts, ",")
}

func (c *contextFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path.mdq, got %q", v)
	}
	*c = append(*c, server.ContextSource{Name: name, Path: path})
	return nil
}

// sourceFlags collects repeated -source context/relation=spec flags:
// spec is an http(s) URL or a CSV/NDJSON file path, bound as a live
// source feeding the named contextual relation (the binding is named
// after the relation in metrics and errors).
type sourceFlags []sourceBinding

type sourceBinding struct {
	context  string
	relation string
	spec     string
}

func (s *sourceFlags) String() string {
	var parts []string
	for _, b := range *s {
		parts = append(parts, b.context+"/"+b.relation+"="+b.spec)
	}
	return strings.Join(parts, ",")
}

func (s *sourceFlags) Set(v string) error {
	target, spec, ok := strings.Cut(v, "=")
	if !ok || spec == "" {
		return fmt.Errorf("want context/relation=url-or-path, got %q", v)
	}
	cname, rel, ok := strings.Cut(target, "/")
	if !ok || cname == "" || rel == "" {
		return fmt.Errorf("want context/relation=url-or-path, got %q", v)
	}
	*s = append(*s, sourceBinding{context: cname, relation: rel, spec: spec})
	return nil
}

// source builds the connector for a binding spec.
func (b sourceBinding) source() mdqa.Source {
	schema := mdqa.SourceSchema{Relation: b.relation}
	if strings.HasPrefix(b.spec, "http://") || strings.HasPrefix(b.spec, "https://") {
		return mdqa.NewHTTPSource(b.spec, schema)
	}
	return mdqa.NewFileSource(b.spec, schema)
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mdserve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("mdserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	example := fs.Bool("example", false, "serve the built-in hospital example quality context as \"hospital\"")
	parallelism := fs.Int("parallelism", 0, "engine worker pool bound per context (0 = all cores, 1 = sequential)")
	maxSessions := fs.Int("max-sessions", 0, "open session limit across contexts (0 = default)")
	drain := fs.Duration("drain", 5*time.Second, "graceful shutdown drain window")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this separate address (e.g. localhost:6060; empty = off)")
	dataDir := fs.String("data-dir", "", "durable sessions: WAL + snapshots under this directory, recovered on restart (empty = ephemeral)")
	fsync := fs.String("fsync", "interval", "WAL durability mode: always, interval or async")
	snapshotEvery := fs.Int("snapshot-every", 0, "apply batches per session WAL before compaction into a snapshot (0 = default)")
	maxResident := fs.Int("max-resident-sessions", 0, "sessions kept saturated in memory; least-recently-used beyond this are evicted to disk (0 = all, needs -data-dir)")
	historyDepth := fs.Int("history-depth", 0, "version snapshots retained in memory per session for as-of reads (0 = default, negative = disable history)")
	historyBytes := fs.Int64("history-bytes", 0, "estimated memory cap for each session's retained version snapshots (0 = bounded by -history-depth alone)")
	var sources contextFlags
	fs.Var(&sources, "context", "quality context to serve, as name=path.mdq (repeatable)")
	var liveSources sourceFlags
	fs.Var(&liveSources, "source", "live external source, as context/relation=url-or-path (repeatable; http(s) URLs poll with ETag revalidation, files by mtime)")
	sourceRefresh := fs.Duration("source-refresh", 0, "background poll interval for live sources across resident sessions (0 = refresh only via the API)")
	sourceTTL := fs.Duration("source-ttl", 0, "freshness window for fetched source snapshots (0 = revalidate on every resolve)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *example {
		sources = append(sources, server.ContextSource{
			Name:   "hospital",
			Source: mdqa.HospitalQualityExampleSource(),
		})
	}
	if len(sources) == 0 {
		return fmt.Errorf("nothing to serve: pass -example and/or -context name=path.mdq")
	}
	for _, b := range liveSources {
		bound := false
		for i := range sources {
			if sources[i].Name == b.context {
				var opts []mdqa.SourceOption
				if *sourceTTL > 0 {
					opts = append(opts, mdqa.SourceTTL(*sourceTTL))
				}
				sources[i].Options = append(sources[i].Options, mdqa.WithSource(b.relation, b.source(), opts...))
				bound = true
			}
		}
		if !bound {
			return fmt.Errorf("-source %s/%s: no such context (declare it with -context or -example first)", b.context, b.relation)
		}
	}

	mode, err := wal.ParseSyncMode(*fsync)
	if err != nil {
		return err
	}
	srv, err := server.New(ctx, server.Config{
		Parallelism:   *parallelism,
		MaxSessions:   *maxSessions,
		DataDir:       *dataDir,
		Fsync:         mode,
		SnapshotEvery: *snapshotEvery,
		MaxResident:   *maxResident,
		HistoryDepth:  *historyDepth,
		HistoryBytes:  *historyBytes,
	}, sources)
	if err != nil {
		return err
	}
	log.Printf("mdserve: serving contexts %s on %s", strings.Join(srv.Contexts(), ", "), *addr)

	// Profiling stays off the serving listener: -pprof binds its own
	// address (keep it loopback-only in production) so the profile
	// endpoints are never exposed alongside the API. Registered on a
	// private mux — the DefaultServeMux side effects of importing
	// net/http/pprof are not relied on.
	if *pprofAddr != "" {
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		log.Printf("mdserve: pprof on %s", *pprofAddr)
		go func() {
			if err := http.ListenAndServe(*pprofAddr, pm); err != nil {
				log.Printf("mdserve: pprof listener: %v", err)
			}
		}()
	}

	// Request contexts are decoupled from the signal context: a SIGTERM
	// stops the listener and drains in-flight work rather than aborting
	// it mid-apply. Only when the drain window closes are the
	// stragglers cancelled.
	reqCtx, reqCancel := context.WithCancel(context.Background())
	defer reqCancel()
	if *sourceRefresh > 0 {
		log.Printf("mdserve: polling live sources every %s", *sourceRefresh)
		go srv.RefreshLoop(reqCtx, *sourceRefresh)
	}
	hs := &http.Server{
		Addr:        *addr,
		Handler:     srv,
		BaseContext: func(net.Listener) context.Context { return reqCtx },
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		log.Printf("mdserve: shutting down (drain %s)", *drain)
		shCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(shCtx); err != nil {
			// Drain window elapsed with requests still in flight: cut
			// them off but still shut down cleanly — acknowledged work
			// is in the WAL regardless.
			log.Printf("mdserve: drain incomplete: %v", err)
			reqCancel()
			_ = hs.Close()
		}
		reqCancel()
		if err := srv.Close(); err != nil {
			// Final snapshots are an optimization over WAL replay; a
			// failure here loses no acknowledged data.
			log.Printf("mdserve: flush durable sessions: %v", err)
		}
		return nil
	}
}
