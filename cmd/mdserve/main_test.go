package main

import (
	"context"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
	"repro/mdqa"
)

// update regenerates the golden files: go test ./cmd/mdserve -update
// The same files back ci/e2e.sh, which drives the built binary with
// curl — the Go test and the script must stay request-for-request
// identical.
var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden compares output against testdata/<name>.golden,
// rewriting it under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run: go test ./cmd/mdserve -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// exampleServer is the in-process equivalent of `mdserve -example
// -parallelism 1`.
func exampleServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv, err := server.New(context.Background(), server.Config{Parallelism: 1}, []server.ContextSource{{
		Name:   "hospital",
		Source: mdqa.HospitalQualityExampleSource(),
	}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

func request(t *testing.T, method, reqURL, body string) string {
	t.Helper()
	req, err := http.NewRequest(method, reqURL, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s %s: %d\n%s", method, reqURL, resp.StatusCode, data)
	}
	return string(data)
}

// applyBatches is the delta stream the e2e flow ingests: one new Tom
// Waits measurement on a Standard-unit day (clean) and one Lou Reed
// measurement with no ward data (dirty).
const applyBatches = `{"atoms":[{"pred":"Clock","args":["Sep/6-12:30","Sep/6"]},{"pred":"Measurements","args":["Sep/6-12:30","Tom Waits","37.3"]}]}
{"atoms":[{"pred":"Clock","args":["Sep/5-13:00","Sep/5"]},{"pred":"Measurements","args":["Sep/5-13:00","Lou Reed","38.4"]}]}
`

// answersQuery asks for Tom Waits' temperatures with quality
// semantics (clean mode rewrites Measurements to Measurements_q).
const answersQuery = `tomtemp(t, v) <- Measurements(t, "Tom Waits", v).`

// sortLines sorts NDJSON lines byte-wise (the answer stream's order is
// unspecified), matching `LC_ALL=C sort` in ci/e2e.sh.
func sortLines(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// TestE2EGolden walks the exact request sequence of ci/e2e.sh against
// an in-process server and pins every response body.
func TestE2EGolden(t *testing.T) {
	ts := exampleServer(t)
	base := ts.URL + "/v1/contexts/hospital"

	checkGolden(t, "healthz", request(t, "GET", ts.URL+"/healthz", ""))
	checkGolden(t, "contexts", request(t, "GET", ts.URL+"/v1/contexts", ""))
	checkGolden(t, "assess", request(t, "POST", base+"/assess", ""))
	checkGolden(t, "session-create", request(t, "POST", base+"/sessions", ""))
	checkGolden(t, "apply", request(t, "POST", base+"/sessions/s1/apply", applyBatches))
	checkGolden(t, "answers", sortLines(request(t, "GET",
		base+"/sessions/s1/answers?q="+url.QueryEscape(answersQuery), "")))
	// The same query again: served via the plan cache (first request
	// missed, this one hits), and the stream must be byte-identical.
	checkGolden(t, "answers", sortLines(request(t, "GET",
		base+"/sessions/s1/answers?q="+url.QueryEscape(answersQuery), "")))
	// explain=1 returns the compiled join plan instead of rows — the
	// exact plan the cached answer path executes.
	checkGolden(t, "explain", request(t, "GET",
		base+"/sessions/s1/answers?q="+url.QueryEscape(answersQuery)+"&explain=1", ""))
	checkGolden(t, "session-assess", request(t, "GET", base+"/sessions/s1/assessment", ""))
	checkGolden(t, "session-close", request(t, "DELETE", base+"/sessions/s1", ""))
}

// TestContextFlag pins the repeatable -context name=path syntax.
func TestContextFlag(t *testing.T) {
	var c contextFlags
	if err := c.Set("sales=/tmp/sales.mdq"); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("bad"); err == nil {
		t.Fatal("missing '=' must error")
	}
	if err := c.Set("=x.mdq"); err == nil {
		t.Fatal("empty name must error")
	}
	if got := c.String(); got != "sales=/tmp/sales.mdq" {
		t.Fatalf("String() = %q", got)
	}
}

// TestRunGraceful boots the real run() on an ephemeral port with a
// context file from disk, then cancels: a graceful shutdown returns
// nil.
func TestRunGraceful(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hospital.mdq")
	if err := os.WriteFile(path, []byte(mdqa.HospitalQualityExampleSource()), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-context", "hospital=" + path, "-drain", "1s"})
	}()
	time.Sleep(300 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("graceful shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not shut down")
	}
}

// TestRunErrors covers the CLI error paths.
func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), nil); err == nil {
		t.Fatal("no contexts must error")
	}
	if err := run(context.Background(), []string{"-context", "x=/nonexistent.mdq"}); err == nil {
		t.Fatal("missing file must error")
	}
}
