// Command mdfixture serves relation payload files (NDJSON/JSON, CSV)
// over HTTP with strong content-hash ETags and If-None-Match
// revalidation — a stub upstream for mdserve's live external sources.
// The e2e pipeline boots one, binds an mdserve -source to it, rewrites
// a file and drives the refresh endpoint against the change.
//
// Usage:
//
//	mdfixture -addr 127.0.0.1:8091 -dir ./fixtures
//
// Every file under -dir is served at its relative path; rewriting a
// file between requests moves its ETag, so pollers see the change on
// their next revalidation.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	"repro/internal/gen"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "listen address (port 0 picks a free port, printed on stdout)")
	dir := flag.String("dir", ".", "directory of payload files to serve")
	flag.Parse()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdfixture:", err)
		os.Exit(1)
	}
	// The resolved address goes to stdout for scripts that passed
	// port 0; logs go to stderr.
	fmt.Printf("http://%s\n", ln.Addr())
	log.Printf("mdfixture: serving %s on %s", *dir, ln.Addr())
	if err := http.Serve(ln, gen.NewFixtureHandler(*dir)); err != nil {
		fmt.Fprintln(os.Stderr, "mdfixture:", err)
		os.Exit(1)
	}
}
