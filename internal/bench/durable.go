package bench

import (
	"context"
	"fmt"
	"os"
	"testing"

	"repro/internal/gen"
	"repro/internal/persist"
	"repro/internal/quality"
	"repro/internal/wal"
)

// RunDurablePerf measures the durable warm-apply path: the streaming
// quality workload's per-tick session apply with every acknowledged
// batch write-ahead logged through a persist.SessionLog, at each
// requested fsync mode. Keys are
// "BenchmarkDurableWarmApply/n=<size>/fsync=<mode>"; compared against
// the same size's BenchmarkWarmAssess key (the identical apply loop
// without logging) the delta is the durability overhead of each mode.
func RunDurablePerf(sizes []int, modes []wal.SyncMode) (map[string]PerfResult, error) {
	out := map[string]PerfResult{}
	ctx := context.Background()
	for _, n := range sizes {
		wl, err := gen.NewStreamingWorkload(StreamWorkloadSpec(n))
		if err != nil {
			return nil, err
		}
		var prep *quality.Prepared
		if prep, err = wl.Base.Context.Prepare(ctx); err != nil {
			return nil, err
		}
		for _, mode := range modes {
			dir, err := os.MkdirTemp("", "mdq-durable-bench-*")
			if err != nil {
				return nil, err
			}
			store, err := persist.OpenStore(dir, persist.Options{WAL: wal.Options{Mode: mode}})
			if err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
			var benchErr error
			sid := 0
			res := testing.Benchmark(func(b *testing.B) {
				// Session setup — including the initial full-state
				// snapshot a server writes at session create — stays
				// off-timer; the measured op is apply + WAL append.
				sess, err := prep.NewSession(ctx, wl.Base.Instance)
				if err != nil {
					benchErr = err
					return
				}
				sid++
				log, err := store.CreateSession("bench", fmt.Sprintf("s%d", sid), persist.Meta{}, sess.Export())
				if err != nil {
					benchErr = err
					return
				}
				defer log.Close()
				b.ReportAllocs()
				b.ResetTimer()
				tick := 0
				for i := 0; i < b.N; i++ {
					if tick == WarmResetTicks {
						b.StopTimer()
						sess, err = prep.NewSession(ctx, wl.Base.Instance)
						if err != nil {
							benchErr = err
							return
						}
						tick = 0
						b.StartTimer()
					}
					delta, _ := wl.Tick(tick)
					tick++
					if _, err := sess.Apply(ctx, delta); err != nil {
						benchErr = fmt.Errorf("durable warm apply failed at n=%d fsync=%s: %v", n, mode, err)
						return
					}
					if _, err := log.Append(delta); err != nil {
						benchErr = fmt.Errorf("wal append failed at n=%d fsync=%s: %v", n, mode, err)
						return
					}
				}
			})
			os.RemoveAll(dir)
			if benchErr != nil {
				return nil, benchErr
			}
			out[fmt.Sprintf("BenchmarkDurableWarmApply/n=%d/fsync=%s", n, mode)] = ToPerfResult(res)
		}
	}
	return out, nil
}
