// Package bench is the experiment harness: one runner per table and
// figure of the paper (T1–T5, F1, F2) plus the complexity-claim
// experiments (C1–C4) from DESIGN.md. cmd/mdbench drives it; the root
// bench_test.go wraps each runner in a testing.B benchmark; tests
// assert the expected shapes.
package bench

import (
	"context"
	"fmt"
	"io"

	"time"

	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/hospital"
	"repro/internal/qa"

	"repro/internal/rewrite"
	"repro/internal/sticky"
	"repro/internal/storage"
)

// Experiment is one reproducible artifact of the paper.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer) error
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{ID: "T1", Title: "Table I: Measurements (original instance D)", Run: RunT1},
		{ID: "T2", Title: "Table II: Measurements_q (quality version)", Run: RunT2},
		{ID: "T3", Title: "Table III: WorkingSchedules", Run: RunT3},
		{ID: "T4", Title: "Table IV: Shifts + Example 5 downward navigation", Run: RunT4},
		{ID: "T5", Title: "Table V: DischargePatients + Example 6 (rule 10)", Run: RunT5},
		{ID: "F1", Title: "Figure 1: extended multidimensional model", Run: RunF1},
		{ID: "F2", Title: "Figure 2: MD context for quality assessment", Run: RunF2},
		{ID: "C1", Title: "Claim IV: PTIME data complexity (scaling)", Run: RunC1},
		{ID: "C2", Title: "Claim IV: FO rewriting vs chase (upward-only)", Run: RunC2},
		{ID: "C3", Title: "Claim III: MD ontologies are weakly sticky", Run: RunC3},
		{ID: "C4", Title: "Section V: quality measure sweep", Run: RunC4},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunT1 prints Table I.
func RunT1(w io.Writer) error {
	d := hospital.MeasurementsInstance()
	rel := d.Relation("Measurements")
	if rel.Len() != 6 {
		return fmt.Errorf("T1: Measurements has %d rows, want 6", rel.Len())
	}
	fmt.Fprint(w, storage.FormatRelation(rel))
	return nil
}

// RunT2 computes and prints the quality version of Table I and checks
// it equals Table II.
func RunT2(w io.Writer) error {
	ctx, err := hospital.QualityContext(hospital.Options{})
	if err != nil {
		return err
	}
	a, err := ctx.Assess(context.Background(), hospital.MeasurementsInstance())
	if err != nil {
		return err
	}
	mq := a.Versions["Measurements"]
	fmt.Fprint(w, storage.FormatRelation(mq))
	if mq.Len() != len(hospital.QualityRows) {
		return fmt.Errorf("T2: quality version has %d rows, want %d", mq.Len(), len(hospital.QualityRows))
	}
	for _, row := range hospital.QualityRows {
		if !mq.Contains([]datalog.Term{datalog.C(row[0]), datalog.C(row[1]), datalog.C(row[2])}) {
			return fmt.Errorf("T2: row %v missing", row)
		}
	}
	m := a.Measures["Measurements"]
	fmt.Fprintf(w, "\nquality measure: |D|=%d |D_q|=%d clean-fraction=%.3f distance=%.3f\n",
		m.Original, m.Quality, m.CleanFraction(), m.Distance())
	fmt.Fprintln(w, "MATCH: exactly the paper's Table II (tuples 1-2 of Table I)")
	return nil
}

// RunT3 prints Table III from the ontology data.
func RunT3(w io.Writer) error {
	o := hospital.NewOntology(hospital.Options{})
	rel := o.Data().Relation("WorkingSchedules")
	if rel.Len() != 5 {
		return fmt.Errorf("T3: WorkingSchedules has %d rows, want 5", rel.Len())
	}
	fmt.Fprint(w, storage.FormatRelation(rel))
	return nil
}

// RunT4 prints Table IV, chases rule (8) and answers Example 5's query
// with all three engines.
func RunT4(w io.Writer) error {
	o := hospital.NewOntology(hospital.Options{})
	comp, err := o.Compile(core.CompileOptions{})
	if err != nil {
		return err
	}
	fmt.Fprint(w, storage.FormatRelation(comp.Instance.Relation("Shifts")))

	res, err := chase.Run(context.Background(), comp.Program, comp.Instance, chase.Options{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nafter chase (rules 7+8): %d Shifts tuples, %d invented nulls\n",
		res.Instance.Relation("Shifts").Len(), res.NullsCreated)
	fmt.Fprint(w, storage.FormatRelationSorted(res.Instance.Relation("Shifts")))

	q := datalog.NewQuery(datalog.A("Q", datalog.V("d")),
		datalog.A("Shifts", datalog.C("W1"), datalog.V("d"), datalog.C("Mark"), datalog.V("s")))
	for _, engine := range []struct {
		name string
		run  func() (*datalog.AnswerSet, error)
	}{
		{"chase-certain", func() (*datalog.AnswerSet, error) {
			return qa.CertainAnswersViaChase(context.Background(), comp.Program, comp.Instance, q, qa.ChaseOptions{})
		}},
		{"DeterministicWSQAns", func() (*datalog.AnswerSet, error) {
			return qa.Answer(context.Background(), comp.Program, comp.Instance, q, qa.Options{})
		}},
		{"FO-rewriting", func() (*datalog.AnswerSet, error) {
			return rewrite.Answer(context.Background(), comp.Program, comp.Instance, q, rewrite.Options{})
		}},
	} {
		start := time.Now()
		as, err := engine.run()
		if err != nil {
			return fmt.Errorf("T4 %s: %w", engine.name, err)
		}
		if as.Len() != 1 || as.All()[0].Terms[0] != datalog.C("Sep/9") {
			return fmt.Errorf("T4 %s: answers %v, want Sep/9", engine.name, as)
		}
		fmt.Fprintf(w, "\nExample 5 query via %-20s -> Sep/9  (%v)", engine.name, time.Since(start).Round(time.Microsecond))
	}
	fmt.Fprintln(w, "\nMATCH: Example 5's answer Sep/9 on all three engines")
	return nil
}

// RunT5 prints Table V and shows the form-(10) downward generation of
// Example 6.
func RunT5(w io.Writer) error {
	o := hospital.NewOntology(hospital.Options{WithRuleNine: true})
	comp, err := o.Compile(core.CompileOptions{})
	if err != nil {
		return err
	}
	fmt.Fprint(w, storage.FormatRelation(comp.Instance.Relation("DischargePatients")))
	res, err := chase.Run(context.Background(), comp.Program, comp.Instance, chase.Options{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nafter chase with rule (9):\n")
	fmt.Fprint(w, storage.FormatRelationSorted(res.Instance.Relation("PatientUnit")))
	elvis := 0
	for _, tup := range res.Instance.Relation("PatientUnit").Tuples() {
		if tup[2] == datalog.C(hospital.ElvisCostello) {
			if !tup[0].IsNull() {
				return fmt.Errorf("T5: Elvis's unit must be a labeled null, got %v", tup[0])
			}
			elvis++
		}
	}
	if elvis != 1 {
		return fmt.Errorf("T5: %d Elvis tuples, want 1", elvis)
	}
	fmt.Fprintln(w, "MATCH: discharge data generates PatientUnit with an existential unit member (rule 10);")
	fmt.Fprintln(w, "       Tom's and Lou's discharges are satisfied by upward-derived data (restricted chase)")
	return nil
}

// RunF1 reproduces Figure 1: the two dimensions, the categorical
// relations attached to them, the HM integrity checks and the
// classifier verdict.
func RunF1(w io.Writer) error {
	o := hospital.NewOntology(hospital.Options{WithRuleNine: true, WithConstraints: true})
	fmt.Fprint(w, o.Summary())

	hdim := o.Dimension("Hospital")
	tdim := o.Dimension("Time")
	if vs := hdim.CheckStrictness(); len(vs) != 0 {
		return fmt.Errorf("F1: Hospital not strict: %v", vs)
	}
	if vs := hdim.CheckHomogeneity(); len(vs) != 0 {
		return fmt.Errorf("F1: Hospital not homogeneous: %v", vs)
	}
	if !hdim.Summarizable("Ward", "Institution") {
		return fmt.Errorf("F1: Ward->Institution must be summarizable")
	}
	if vs := tdim.CheckStrictness(); len(vs) != 0 {
		return fmt.Errorf("F1: Time not strict: %v", vs)
	}
	fmt.Fprintln(w, "\nHM checks: Hospital and Time are strict, homogeneous and summarizable")
	fmt.Fprintln(w, "\nGraphviz DOT (Hospital, schema only):")
	fmt.Fprint(w, hdim.DOT(false))
	return nil
}

// RunF2 walks the Figure 2 pipeline end to end and checks Example 7's
// clean answer.
func RunF2(w io.Writer) error {
	ctx, err := hospital.QualityContext(hospital.Options{})
	if err != nil {
		return err
	}
	d := hospital.MeasurementsInstance()
	fmt.Fprintf(w, "original instance D: %d Measurements tuples\n", d.Relation("Measurements").Len())

	a, err := ctx.Assess(context.Background(), d)
	if err != nil {
		return err
	}
	for _, pred := range []string{hospital.MeasurementC, "PatientUnit", hospital.TakenByNurse, hospital.TakenWithTherm, hospital.MeasurementX, hospital.MeasurementsQ} {
		rel := a.Contextual.Relation(pred)
		n := 0
		if rel != nil {
			n = rel.Len()
		}
		fmt.Fprintf(w, "contextual predicate %-16s: %d tuples\n", pred, n)
	}

	q := hospital.DoctorQuery()
	raw, err := eval.EvalQuery(q, a.Contextual)
	if err != nil {
		return err
	}
	clean, err := a.CleanAnswer(q)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\ndoctor's query Q  (raw over D):   %d answers\n", raw.Len())
	fmt.Fprintf(w, "rewritten query Q_q (over S_q):   %d answers\n", clean.Len())
	for _, ans := range clean.Sorted() {
		fmt.Fprintf(w, "  %s\n", ans)
	}
	if clean.Len() != 1 || clean.All()[0].Terms[0] != datalog.C("Sep/5-12:10") {
		return fmt.Errorf("F2: clean answer wrong: %v", clean)
	}
	fmt.Fprintln(w, "MATCH: Example 7's quality answer (Sep/5-12:10, Tom Waits, 38.2)")
	return nil
}

// ScaleRow is one row of a scaling experiment.
type ScaleRow struct {
	N       int
	Chase   time.Duration
	DetQA   time.Duration
	Rewrite time.Duration
	Atoms   int
}

// RunScaling runs the C1 measurement for the given base sizes and
// returns the rows (exported for tests and cmd/mdbench -scale).
func RunScaling(sizes []int) ([]ScaleRow, error) {
	var rows []ScaleRow
	for _, n := range sizes {
		spec := gen.ChainSpec{
			Dim:    gen.DimensionSpec{Name: "S", Levels: 3, Fanout: 8, BaseMembers: 64},
			Tuples: n,
			Upward: true,
			Seed:   42,
		}
		o, err := gen.ChainOntology(spec)
		if err != nil {
			return nil, err
		}
		comp, err := o.Compile(core.CompileOptions{})
		if err != nil {
			return nil, err
		}
		q := datalog.NewQuery(datalog.A("Q", datalog.V("c")),
			datalog.A(gen.UpRelName(2), datalog.V("c"), datalog.C("v0")))

		start := time.Now()
		res, err := chase.Run(context.Background(), comp.Program, comp.Instance, chase.Options{})
		if err != nil {
			return nil, err
		}
		chaseT := time.Since(start)

		start = time.Now()
		if _, err := qa.Answer(context.Background(), comp.Program, comp.Instance, q, qa.Options{}); err != nil {
			return nil, err
		}
		detT := time.Since(start)

		start = time.Now()
		if _, err := rewrite.Answer(context.Background(), comp.Program, comp.Instance, q, rewrite.Options{}); err != nil {
			return nil, err
		}
		rewT := time.Since(start)

		rows = append(rows, ScaleRow{
			N: n, Chase: chaseT, DetQA: detT, Rewrite: rewT,
			Atoms: res.Instance.TotalTuples(),
		})
	}
	return rows, nil
}

// RunC1 prints the scaling table.
func RunC1(w io.Writer) error {
	rows, err := RunScaling([]int{100, 400, 1600})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%8s  %12s  %12s  %12s  %10s\n", "n", "chase", "DetQA", "rewrite", "atoms")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d  %12v  %12v  %12v  %10d\n",
			r.N, r.Chase.Round(time.Microsecond), r.DetQA.Round(time.Microsecond),
			r.Rewrite.Round(time.Microsecond), r.Atoms)
	}
	// Shape check: growth between successive sizes stays polynomial —
	// chase atoms grow linearly with n for the fixed ontology.
	for i := 1; i < len(rows); i++ {
		factorN := float64(rows[i].N) / float64(rows[i-1].N)
		factorAtoms := float64(rows[i].Atoms) / float64(rows[i-1].Atoms)
		if factorAtoms > factorN*1.5 {
			return fmt.Errorf("C1: atom growth %f exceeds linear in n (%f)", factorAtoms, factorN)
		}
	}
	fmt.Fprintln(w, "SHAPE: chase output grows linearly in n; all engines polynomial (paper: PTIME data complexity)")
	return nil
}

// RunC2 compares rewriting against the chase on upward-only chains of
// increasing depth.
func RunC2(w io.Writer) error {
	fmt.Fprintf(w, "%8s  %8s  %12s  %12s  %8s\n", "levels", "n", "chase", "rewrite", "UCQ size")
	for _, levels := range []int{2, 3, 4} {
		spec := gen.ChainSpec{
			Dim:    gen.DimensionSpec{Name: "S", Levels: levels, Fanout: 4, BaseMembers: 32},
			Tuples: 500,
			Upward: true,
			Seed:   7,
		}
		o, err := gen.ChainOntology(spec)
		if err != nil {
			return err
		}
		if !o.IsUpwardOnly() {
			return fmt.Errorf("C2: chain must be upward-only")
		}
		comp, err := o.Compile(core.CompileOptions{})
		if err != nil {
			return err
		}
		q := datalog.NewQuery(datalog.A("Q", datalog.V("c")),
			datalog.A(gen.UpRelName(levels-1), datalog.V("c"), datalog.C("v1")))

		start := time.Now()
		oracle, err := qa.CertainAnswersViaChase(context.Background(), comp.Program, comp.Instance, q, qa.ChaseOptions{})
		if err != nil {
			return err
		}
		chaseT := time.Since(start)

		start = time.Now()
		ucq, err := rewrite.Rewrite(comp.Program, q, rewrite.Options{})
		if err != nil {
			return err
		}
		ans, err := rewrite.Answer(context.Background(), comp.Program, comp.Instance, q, rewrite.Options{})
		if err != nil {
			return err
		}
		rewT := time.Since(start)
		if !ans.Equal(oracle) {
			return fmt.Errorf("C2: rewriting disagrees with chase at depth %d", levels)
		}
		fmt.Fprintf(w, "%8d  %8d  %12v  %12v  %8d\n",
			levels, spec.Tuples, chaseT.Round(time.Microsecond), rewT.Round(time.Microsecond), len(ucq))
	}
	fmt.Fprintln(w, "SHAPE: rewriting answers without materializing data and agrees with the chase (paper §IV)")
	return nil
}

// RunC3 classifies the hospital ontology and generated variants.
func RunC3(w io.Writer) error {
	fmt.Fprintf(w, "%-28s  %-6s  %-6s  %-8s  %-14s\n", "ontology", "WS", "sticky", "linear", "weakly-acyclic")
	show := func(name string, rep *sticky.Report) {
		fmt.Fprintf(w, "%-28s  %-6v  %-6v  %-8v  %-14v\n", name, rep.WeaklySticky, rep.Sticky, rep.Linear, rep.WeaklyAcyclic)
	}
	o := hospital.NewOntology(hospital.Options{WithRuleNine: true, WithConstraints: true})
	comp, err := o.Compile(core.CompileOptions{ReferentialNCs: true})
	if err != nil {
		return err
	}
	if !comp.Report.WeaklySticky || comp.Report.Sticky {
		return fmt.Errorf("C3: hospital ontology must be WS and not sticky: %s", comp.Report)
	}
	show("hospital (rules 7,8,9)", comp.Report)

	for _, spec := range []gen.ChainSpec{
		{Dim: gen.DimensionSpec{Name: "U", Levels: 4, Fanout: 3, BaseMembers: 27}, Tuples: 10, Upward: true, Seed: 1},
		{Dim: gen.DimensionSpec{Name: "D", Levels: 4, Fanout: 3, BaseMembers: 27}, Tuples: 10, Downward: true, Seed: 1},
	} {
		og, err := gen.ChainOntology(spec)
		if err != nil {
			return err
		}
		cg, err := og.Compile(core.CompileOptions{})
		if err != nil {
			return err
		}
		if !cg.Report.WeaklySticky {
			return fmt.Errorf("C3: generated chain must be WS")
		}
		name := "chain-upward"
		if spec.Downward {
			name = "chain-downward"
		}
		show(name, cg.Report)
	}

	// A non-WS program for contrast.
	bad := datalog.NewProgram()
	bad.AddTGD(datalog.NewTGD("loop",
		[]datalog.Atom{datalog.A("R", datalog.V("y"), datalog.V("z"))},
		[]datalog.Atom{datalog.A("R", datalog.V("x"), datalog.V("y"))}))
	bad.AddTGD(datalog.NewTGD("join",
		[]datalog.Atom{datalog.A("S", datalog.V("x"))},
		[]datalog.Atom{datalog.A("R", datalog.V("x"), datalog.V("y")), datalog.A("R", datalog.V("y"), datalog.V("x"))}))
	badRep := sticky.Classify(bad)
	if badRep.WeaklySticky {
		return fmt.Errorf("C3: contrast program must not be WS")
	}
	show("contrast (non-WS)", badRep)
	fmt.Fprintln(w, "SHAPE: every compiled MD ontology is weakly sticky (paper §III); the contrast program is not")
	return nil
}

// RunC4 sweeps the dirty-data ratio and reports the quality measures.
func RunC4(w io.Writer) error {
	fmt.Fprintf(w, "%10s  %8s  %8s  %14s  %10s\n", "dirty", "|D|", "|D_q|", "clean-fraction", "distance")
	prev := 2.0
	for _, ratio := range []float64{0.0, 0.2, 0.4, 0.6, 0.8, 1.0} {
		wl, err := gen.NewQualityWorkload(gen.QualitySpec{
			Patients: 40, Days: 4, Wards: 3, DirtyRatio: ratio, Seed: 11,
		})
		if err != nil {
			return err
		}
		a, err := wl.Context.Assess(context.Background(), wl.Instance)
		if err != nil {
			return err
		}
		m := a.Measures["Measurements"]
		if m.Quality != wl.ExpectedClean {
			return fmt.Errorf("C4: ratio %.1f: got %d clean, want %d", ratio, m.Quality, wl.ExpectedClean)
		}
		cf := m.CleanFraction()
		if cf > prev {
			return fmt.Errorf("C4: clean fraction must fall as dirt rises (%.3f after %.3f)", cf, prev)
		}
		prev = cf
		fmt.Fprintf(w, "%10.1f  %8d  %8d  %14.3f  %10.3f\n", ratio, m.Original, m.Quality, cf, m.Distance())
	}
	fmt.Fprintln(w, "SHAPE: clean fraction decreases monotonically with the dirty ratio; measures quantify departure (paper §V)")
	return nil
}

// IDs returns the experiment IDs in presentation order.
func IDs() []string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	return ids
}
