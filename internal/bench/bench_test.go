package bench

import (
	"bytes"
	"strings"
	"testing"
)

// runExp runs one experiment and returns its output.
func runExp(t *testing.T, id string) string {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s missing", id)
	}
	var buf bytes.Buffer
	if err := e.Run(&buf); err != nil {
		t.Fatalf("%s failed: %v\noutput so far:\n%s", id, err, buf.String())
	}
	return buf.String()
}

func TestAllExperimentsRegistered(t *testing.T) {
	want := []string{"T1", "T2", "T3", "T4", "T5", "F1", "F2", "C1", "C2", "C3", "C4"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("IDs[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown ID must not resolve")
	}
}

func TestT1ReproducesTableI(t *testing.T) {
	out := runExp(t, "T1")
	for _, want := range []string{"Measurements", "Sep/5-12:10", "Tom Waits", "38.2", "Lou Reed", "38.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("T1 output missing %q:\n%s", want, out)
		}
	}
	// Exactly 6 data rows: title + header + rule + 6.
	if lines := strings.Count(strings.TrimSpace(out), "\n"); lines != 8 {
		t.Errorf("T1 lines = %d, want 8:\n%s", lines, out)
	}
}

func TestT2ReproducesTableII(t *testing.T) {
	out := runExp(t, "T2")
	for _, want := range []string{"Measurements_q", "Sep/5-12:10", "Sep/6-11:50", "MATCH", "clean-fraction=0.333"} {
		if !strings.Contains(out, want) {
			t.Errorf("T2 output missing %q:\n%s", want, out)
		}
	}
	// The dirty rows must NOT appear in the quality version.
	if strings.Contains(out, "Sep/7-12:15") || strings.Contains(out, "Lou Reed") {
		t.Errorf("T2 contains dirty rows:\n%s", out)
	}
}

func TestT3ReproducesTableIII(t *testing.T) {
	out := runExp(t, "T3")
	for _, want := range []string{"WorkingSchedules", "Intensive", "Cathy", "Mark", "non-c."} {
		if !strings.Contains(out, want) {
			t.Errorf("T3 output missing %q:\n%s", want, out)
		}
	}
}

func TestT4DownwardNavigation(t *testing.T) {
	out := runExp(t, "T4")
	for _, want := range []string{"Shifts", "invented nulls", "DeterministicWSQAns", "FO-rewriting", "chase-certain", "Sep/9", "MATCH"} {
		if !strings.Contains(out, want) {
			t.Errorf("T4 output missing %q:\n%s", want, out)
		}
	}
}

func TestT5ExistentialDownward(t *testing.T) {
	out := runExp(t, "T5")
	for _, want := range []string{"DischargePatients", "Elvis Costello", "⊥", "MATCH"} {
		if !strings.Contains(out, want) {
			t.Errorf("T5 output missing %q:\n%s", want, out)
		}
	}
}

func TestF1ModelReproduction(t *testing.T) {
	out := runExp(t, "F1")
	for _, want := range []string{"Hospital", "Time", "PatientWard", "upward", "downward", "strict", "digraph"} {
		if !strings.Contains(out, want) {
			t.Errorf("F1 output missing %q:\n%s", want, out)
		}
	}
}

func TestF2ContextPipeline(t *testing.T) {
	out := runExp(t, "F2")
	for _, want := range []string{"original instance D: 6", "Measurement_c", "TakenByNurse", "TakenWithTherm", "Measurements_q", "MATCH"} {
		if !strings.Contains(out, want) {
			t.Errorf("F2 output missing %q:\n%s", want, out)
		}
	}
}

func TestC1ScalingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling experiment")
	}
	out := runExp(t, "C1")
	if !strings.Contains(out, "SHAPE") {
		t.Errorf("C1 missing shape verdict:\n%s", out)
	}
}

func TestC2RewriteVsChase(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling experiment")
	}
	out := runExp(t, "C2")
	for _, want := range []string{"UCQ size", "SHAPE"} {
		if !strings.Contains(out, want) {
			t.Errorf("C2 output missing %q:\n%s", want, out)
		}
	}
}

func TestC3Classification(t *testing.T) {
	out := runExp(t, "C3")
	for _, want := range []string{"hospital (rules 7,8,9)", "chain-upward", "chain-downward", "contrast (non-WS)", "SHAPE"} {
		if !strings.Contains(out, want) {
			t.Errorf("C3 output missing %q:\n%s", want, out)
		}
	}
}

func TestC4QualitySweep(t *testing.T) {
	out := runExp(t, "C4")
	for _, want := range []string{"dirty", "clean-fraction", "0.0", "1.0", "SHAPE"} {
		if !strings.Contains(out, want) {
			t.Errorf("C4 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunScalingRows(t *testing.T) {
	rows, err := RunScaling([]int{50, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].N != 50 || rows[1].N != 100 {
		t.Errorf("row sizes wrong: %+v", rows)
	}
	if rows[0].Atoms <= 0 || rows[1].Atoms <= rows[0].Atoms {
		t.Errorf("atom counts must grow: %+v", rows)
	}
}
