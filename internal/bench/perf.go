package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"

	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/gen"
	"repro/internal/qa"
	"repro/internal/quality"
	"repro/internal/storage"
)

// PerfResult is one benchmark measurement in machine-readable form.
type PerfResult struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

// ScalingWorkload builds the C1 chain workload used by the scaling
// benchmarks — the single source of truth for the spec, shared with
// the root bench_test.go so `go test -bench` numbers and the
// BENCH_<n>.json snapshots measure the same workload.
func ScalingWorkload(n int) (*datalog.Program, *storage.Instance, *datalog.Query, error) {
	spec := gen.ChainSpec{
		Dim:    gen.DimensionSpec{Name: "S", Levels: 3, Fanout: 8, BaseMembers: 64},
		Tuples: n,
		Upward: true,
		Seed:   42,
	}
	o, err := gen.ChainOntology(spec)
	if err != nil {
		return nil, nil, nil, err
	}
	comp, err := o.Compile(core.CompileOptions{})
	if err != nil {
		return nil, nil, nil, err
	}
	q := datalog.NewQuery(datalog.A("Q", datalog.V("c")),
		datalog.A(gen.UpRelName(2), datalog.V("c"), datalog.C("v0")))
	return comp.Program, comp.Instance, q, nil
}

// WarmResetTicks is how many delta ticks the warm-assessment
// benchmarks apply to one session before rebuilding it off-timer:
// enough to amortize, few enough that the instance stays near its
// nominal size while the benchmark harness scales iterations.
const WarmResetTicks = 10

// StreamWorkloadSpec is the streaming quality workload at n total
// measurements with a ~1% delta tick — the single source of truth for
// the cold/warm assessment benchmarks, shared with the root
// bench_test.go so `go test -bench` numbers and the BENCH_<n>.json
// snapshots measure the same workload.
func StreamWorkloadSpec(n int) gen.StreamSpec {
	tick := n / 400 // 1% of n measurements, at 4 days per patient
	if tick < 1 {
		tick = 1
	}
	return gen.StreamSpec{
		Base:         gen.QualitySpec{Patients: n / 4, Days: 4, Wards: 3, DirtyRatio: 0.5, Seed: 11},
		TickPatients: tick,
	}
}

// RunPerf measures the chase and chase-based-QA scaling benchmarks at
// the given base sizes via testing.Benchmark, keyed by the same names
// `go test -bench` reports, so the emitted JSON is comparable with the
// testing output across PRs.
func RunPerf(sizes []int) (map[string]PerfResult, error) {
	out := map[string]PerfResult{}
	for _, n := range sizes {
		prog, db, q, err := ScalingWorkload(n)
		if err != nil {
			return nil, err
		}
		var benchErr error
		chaseRes := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := chase.Run(context.Background(), prog, db, chase.Options{})
				if err != nil || !res.Saturated {
					benchErr = fmt.Errorf("chase failed at n=%d: %v", n, err)
					return
				}
			}
		})
		if benchErr != nil {
			return nil, benchErr
		}
		out[fmt.Sprintf("BenchmarkScaling_Chase/n=%d", n)] = ToPerfResult(chaseRes)

		qaRes := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := qa.CertainAnswersViaChase(context.Background(), prog, db, q, qa.ChaseOptions{}); err != nil {
					benchErr = fmt.Errorf("qa failed at n=%d: %v", n, err)
					return
				}
			}
		})
		if benchErr != nil {
			return nil, benchErr
		}
		out[fmt.Sprintf("BenchmarkScaling_QA/n=%d", n)] = ToPerfResult(qaRes)

		wl, err := gen.NewStreamingWorkload(StreamWorkloadSpec(n))
		if err != nil {
			return nil, err
		}
		prep, err := wl.Base.Context.Prepare(context.Background())
		if err != nil {
			return nil, err
		}
		coldRes := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a, err := wl.Base.Context.Assess(context.Background(), wl.Base.Instance)
				if err != nil || a.Versions["Measurements"].Len() != wl.Base.ExpectedClean {
					benchErr = fmt.Errorf("cold assess failed at n=%d: %v", n, err)
					return
				}
			}
		})
		if benchErr != nil {
			return nil, benchErr
		}
		out[fmt.Sprintf("BenchmarkColdAssess/n=%d", n)] = ToPerfResult(coldRes)

		ctx := context.Background()
		warmRes := testing.Benchmark(func(b *testing.B) {
			sess, err := prep.NewSession(context.Background(), wl.Base.Instance)
			if err != nil {
				benchErr = err
				return
			}
			b.ReportAllocs()
			b.ResetTimer()
			// Rebuild the session (off-timer) every few ticks so the
			// measured instance stays near n instead of growing with
			// b.N.
			tick := 0
			for i := 0; i < b.N; i++ {
				if tick == WarmResetTicks {
					b.StopTimer()
					sess, err = prep.NewSession(context.Background(), wl.Base.Instance)
					if err != nil {
						benchErr = err
						return
					}
					tick = 0
					b.StartTimer()
				}
				delta, _ := wl.Tick(tick)
				tick++
				if _, err := sess.Apply(ctx, delta); err != nil {
					benchErr = fmt.Errorf("warm assess failed at n=%d: %v", n, err)
					return
				}
			}
		})
		if benchErr != nil {
			return nil, benchErr
		}
		out[fmt.Sprintf("BenchmarkWarmAssess/n=%d", n)] = ToPerfResult(warmRes)
	}
	return out, nil
}

// RunPerfSweep measures the parallel scaling sweep: the chase scaling
// benchmark and the cold/warm assessment pair at every requested
// parallelism level, keyed "<name>/n=<size>/p=<level>" so one
// BENCH_<n>.json records the whole parallel-vs-sequential curve.
// Level 1 is the exact sequential engine; level 0 resolves to
// GOMAXPROCS.
func RunPerfSweep(sizes, levels []int) (map[string]PerfResult, error) {
	out := map[string]PerfResult{}
	ctx := context.Background()
	for _, n := range sizes {
		prog, db, _, err := ScalingWorkload(n)
		if err != nil {
			return nil, err
		}
		wl, err := gen.NewStreamingWorkload(StreamWorkloadSpec(n))
		if err != nil {
			return nil, err
		}
		for _, p := range levels {
			var benchErr error
			chaseRes := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := chase.Run(ctx, prog, db, chase.Options{Parallelism: p})
					if err != nil {
						benchErr = fmt.Errorf("chase failed at n=%d p=%d: %v", n, p, err)
						return
					}
					if !res.Saturated {
						benchErr = fmt.Errorf("chase did not saturate at n=%d p=%d", n, p)
						return
					}
				}
			})
			if benchErr != nil {
				return nil, benchErr
			}
			out[fmt.Sprintf("BenchmarkScaling_Chase/n=%d/p=%d", n, p)] = ToPerfResult(chaseRes)

			// A fresh context per level: parallelism is fixed at
			// construction and the compilation cache is per context.
			cfg := wl.Base.Config
			cfg.Parallelism = p
			qc, err := quality.NewContext(wl.Base.Ontology, cfg)
			if err != nil {
				return nil, err
			}
			prep, err := qc.Prepare(ctx)
			if err != nil {
				return nil, err
			}
			coldRes := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					a, err := qc.Assess(ctx, wl.Base.Instance)
					if err != nil {
						benchErr = fmt.Errorf("cold assess failed at n=%d p=%d: %v", n, p, err)
						return
					}
					if got := a.Versions["Measurements"].Len(); got != wl.Base.ExpectedClean {
						benchErr = fmt.Errorf("cold assess wrong at n=%d p=%d: clean=%d, want %d", n, p, got, wl.Base.ExpectedClean)
						return
					}
				}
			})
			if benchErr != nil {
				return nil, benchErr
			}
			out[fmt.Sprintf("BenchmarkColdAssess/n=%d/p=%d", n, p)] = ToPerfResult(coldRes)

			warmRes := testing.Benchmark(func(b *testing.B) {
				sess, err := prep.NewSession(ctx, wl.Base.Instance)
				if err != nil {
					benchErr = err
					return
				}
				b.ReportAllocs()
				b.ResetTimer()
				tick := 0
				for i := 0; i < b.N; i++ {
					if tick == WarmResetTicks {
						b.StopTimer()
						sess, err = prep.NewSession(ctx, wl.Base.Instance)
						if err != nil {
							benchErr = err
							return
						}
						tick = 0
						b.StartTimer()
					}
					delta, _ := wl.Tick(tick)
					tick++
					if _, err := sess.Apply(ctx, delta); err != nil {
						benchErr = fmt.Errorf("warm assess failed at n=%d p=%d: %v", n, p, err)
						return
					}
				}
			})
			if benchErr != nil {
				return nil, benchErr
			}
			out[fmt.Sprintf("BenchmarkWarmAssess/n=%d/p=%d", n, p)] = ToPerfResult(warmRes)
		}
	}
	return out, nil
}

// ToPerfResult converts a testing result to the JSON snapshot shape;
// every benchmark family recorded in BENCH_<n>.json (including the
// facade benchmarks in mdqa) goes through this one converter.
func ToPerfResult(r testing.BenchmarkResult) PerfResult {
	return PerfResult{
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// Hardware identifies the machine a BENCH_<n>.json snapshot was
// recorded on. The parallel-sweep numbers are only comparable across
// snapshots from machines with the same CPU budget: a p=4 run on a
// single hardware core measures coordination overhead, not speedup
// (see PERF.md "Parallel execution"), so every snapshot carries its
// recording machine's shape under the "_hardware" key.
type Hardware struct {
	// NumCPU is runtime.NumCPU() at record time — the hardware (or
	// container-visible) CPU count, the nproc the PR 4 bench note asked
	// to capture.
	NumCPU int `json:"num_cpu"`
	// Gomaxprocs is runtime.GOMAXPROCS(0) at record time.
	Gomaxprocs int    `json:"gomaxprocs"`
	GoOS       string `json:"goos"`
	GoArch     string `json:"goarch"`
}

// CurrentHardware probes the running machine.
func CurrentHardware() Hardware {
	return Hardware{
		NumCPU:     runtime.NumCPU(),
		Gomaxprocs: runtime.GOMAXPROCS(0),
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
	}
}

// hardwareKey is the reserved results key carrying the Hardware
// annotation. It cannot collide with benchmark names (they all start
// with "Benchmark").
const hardwareKey = "_hardware"

// WritePerfJSON writes the results to path as pretty-printed JSON with
// deterministic key order (encoding/json sorts map keys), annotated
// with the recording machine under "_hardware". Snapshots from before
// the annotation (BENCH_1–4) lack the key; ReadPerfJSON tolerates
// both forms.
func WritePerfJSON(path string, results map[string]PerfResult) error {
	doc := make(map[string]any, len(results)+1)
	for name, r := range results {
		doc[name] = r
	}
	doc[hardwareKey] = CurrentHardware()
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}

// ReadPerfJSON reads a BENCH_<n>.json snapshot. The returned Hardware
// is nil for snapshots recorded before the annotation existed.
func ReadPerfJSON(path string) (map[string]PerfResult, *Hardware, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	var hw *Hardware
	if msg, ok := raw[hardwareKey]; ok {
		hw = &Hardware{}
		if err := json.Unmarshal(msg, hw); err != nil {
			return nil, nil, fmt.Errorf("%s: %s: %w", path, hardwareKey, err)
		}
		delete(raw, hardwareKey)
	}
	results := make(map[string]PerfResult, len(raw))
	for name, msg := range raw {
		var r PerfResult
		if err := json.Unmarshal(msg, &r); err != nil {
			return nil, nil, fmt.Errorf("%s: %s: %w", path, name, err)
		}
		results[name] = r
	}
	return results, hw, nil
}

// Regression is one benchmark that got slower than the baseline
// allows.
type Regression struct {
	Name       string
	BaselineNs int64
	CurrentNs  int64
	Ratio      float64 // CurrentNs / BaselineNs
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %d ns/op vs baseline %d ns/op (%.2fx)", r.Name, r.CurrentNs, r.BaselineNs, r.Ratio)
}

// ComparePerf checks current results against a baseline snapshot: for
// every key present in both whose name starts with one of the family
// prefixes, the current ns/op may exceed the baseline by at most
// tolerance (0.30 = +30%). It returns the regressions, worst first,
// plus how many keys were actually compared — a guard against a
// filter that matches nothing and "passes" vacuously.
func ComparePerf(current, baseline map[string]PerfResult, families []string, tolerance float64) (regressions []Regression, compared int) {
	inFamily := func(name string) bool {
		for _, f := range families {
			if strings.HasPrefix(name, f) {
				return true
			}
		}
		return false
	}
	for name, cur := range current {
		base, ok := baseline[name]
		if !ok || !inFamily(name) || base.NsPerOp <= 0 {
			continue
		}
		compared++
		ratio := float64(cur.NsPerOp) / float64(base.NsPerOp)
		if ratio > 1+tolerance {
			regressions = append(regressions, Regression{
				Name:       name,
				BaselineNs: base.NsPerOp,
				CurrentNs:  cur.NsPerOp,
				Ratio:      ratio,
			})
		}
	}
	sort.Slice(regressions, func(i, j int) bool { return regressions[i].Ratio > regressions[j].Ratio })
	return regressions, compared
}

// PerfNames returns the result names in sorted order, for stable
// human-readable summaries.
func PerfNames(results map[string]PerfResult) []string {
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
