package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"testing"

	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/gen"
	"repro/internal/qa"
	"repro/internal/quality"
	"repro/internal/storage"
)

// PerfResult is one benchmark measurement in machine-readable form.
type PerfResult struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

// ScalingWorkload builds the C1 chain workload used by the scaling
// benchmarks — the single source of truth for the spec, shared with
// the root bench_test.go so `go test -bench` numbers and the
// BENCH_<n>.json snapshots measure the same workload.
func ScalingWorkload(n int) (*datalog.Program, *storage.Instance, *datalog.Query, error) {
	spec := gen.ChainSpec{
		Dim:    gen.DimensionSpec{Name: "S", Levels: 3, Fanout: 8, BaseMembers: 64},
		Tuples: n,
		Upward: true,
		Seed:   42,
	}
	o, err := gen.ChainOntology(spec)
	if err != nil {
		return nil, nil, nil, err
	}
	comp, err := o.Compile(core.CompileOptions{})
	if err != nil {
		return nil, nil, nil, err
	}
	q := datalog.NewQuery(datalog.A("Q", datalog.V("c")),
		datalog.A(gen.UpRelName(2), datalog.V("c"), datalog.C("v0")))
	return comp.Program, comp.Instance, q, nil
}

// WarmResetTicks is how many delta ticks the warm-assessment
// benchmarks apply to one session before rebuilding it off-timer:
// enough to amortize, few enough that the instance stays near its
// nominal size while the benchmark harness scales iterations.
const WarmResetTicks = 10

// StreamWorkloadSpec is the streaming quality workload at n total
// measurements with a ~1% delta tick — the single source of truth for
// the cold/warm assessment benchmarks, shared with the root
// bench_test.go so `go test -bench` numbers and the BENCH_<n>.json
// snapshots measure the same workload.
func StreamWorkloadSpec(n int) gen.StreamSpec {
	tick := n / 400 // 1% of n measurements, at 4 days per patient
	if tick < 1 {
		tick = 1
	}
	return gen.StreamSpec{
		Base:         gen.QualitySpec{Patients: n / 4, Days: 4, Wards: 3, DirtyRatio: 0.5, Seed: 11},
		TickPatients: tick,
	}
}

// RunPerf measures the chase and chase-based-QA scaling benchmarks at
// the given base sizes via testing.Benchmark, keyed by the same names
// `go test -bench` reports, so the emitted JSON is comparable with the
// testing output across PRs.
func RunPerf(sizes []int) (map[string]PerfResult, error) {
	out := map[string]PerfResult{}
	for _, n := range sizes {
		prog, db, q, err := ScalingWorkload(n)
		if err != nil {
			return nil, err
		}
		var benchErr error
		chaseRes := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := chase.Run(context.Background(), prog, db, chase.Options{})
				if err != nil || !res.Saturated {
					benchErr = fmt.Errorf("chase failed at n=%d: %v", n, err)
					return
				}
			}
		})
		if benchErr != nil {
			return nil, benchErr
		}
		out[fmt.Sprintf("BenchmarkScaling_Chase/n=%d", n)] = ToPerfResult(chaseRes)

		qaRes := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := qa.CertainAnswersViaChase(context.Background(), prog, db, q, qa.ChaseOptions{}); err != nil {
					benchErr = fmt.Errorf("qa failed at n=%d: %v", n, err)
					return
				}
			}
		})
		if benchErr != nil {
			return nil, benchErr
		}
		out[fmt.Sprintf("BenchmarkScaling_QA/n=%d", n)] = ToPerfResult(qaRes)

		wl, err := gen.NewStreamingWorkload(StreamWorkloadSpec(n))
		if err != nil {
			return nil, err
		}
		prep, err := wl.Base.Context.Prepare(context.Background())
		if err != nil {
			return nil, err
		}
		coldRes := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a, err := wl.Base.Context.Assess(context.Background(), wl.Base.Instance)
				if err != nil || a.Versions["Measurements"].Len() != wl.Base.ExpectedClean {
					benchErr = fmt.Errorf("cold assess failed at n=%d: %v", n, err)
					return
				}
			}
		})
		if benchErr != nil {
			return nil, benchErr
		}
		out[fmt.Sprintf("BenchmarkColdAssess/n=%d", n)] = ToPerfResult(coldRes)

		ctx := context.Background()
		warmRes := testing.Benchmark(func(b *testing.B) {
			sess, err := prep.NewSession(context.Background(), wl.Base.Instance)
			if err != nil {
				benchErr = err
				return
			}
			b.ReportAllocs()
			b.ResetTimer()
			// Rebuild the session (off-timer) every few ticks so the
			// measured instance stays near n instead of growing with
			// b.N.
			tick := 0
			for i := 0; i < b.N; i++ {
				if tick == WarmResetTicks {
					b.StopTimer()
					sess, err = prep.NewSession(context.Background(), wl.Base.Instance)
					if err != nil {
						benchErr = err
						return
					}
					tick = 0
					b.StartTimer()
				}
				delta, _ := wl.Tick(tick)
				tick++
				if _, err := sess.Apply(ctx, delta); err != nil {
					benchErr = fmt.Errorf("warm assess failed at n=%d: %v", n, err)
					return
				}
			}
		})
		if benchErr != nil {
			return nil, benchErr
		}
		out[fmt.Sprintf("BenchmarkWarmAssess/n=%d", n)] = ToPerfResult(warmRes)
	}
	return out, nil
}

// RunPerfSweep measures the parallel scaling sweep: the chase scaling
// benchmark and the cold/warm assessment pair at every requested
// parallelism level, keyed "<name>/n=<size>/p=<level>" so one
// BENCH_<n>.json records the whole parallel-vs-sequential curve.
// Level 1 is the exact sequential engine; level 0 resolves to
// GOMAXPROCS.
func RunPerfSweep(sizes, levels []int) (map[string]PerfResult, error) {
	out := map[string]PerfResult{}
	ctx := context.Background()
	for _, n := range sizes {
		prog, db, _, err := ScalingWorkload(n)
		if err != nil {
			return nil, err
		}
		wl, err := gen.NewStreamingWorkload(StreamWorkloadSpec(n))
		if err != nil {
			return nil, err
		}
		for _, p := range levels {
			var benchErr error
			chaseRes := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := chase.Run(ctx, prog, db, chase.Options{Parallelism: p})
					if err != nil {
						benchErr = fmt.Errorf("chase failed at n=%d p=%d: %v", n, p, err)
						return
					}
					if !res.Saturated {
						benchErr = fmt.Errorf("chase did not saturate at n=%d p=%d", n, p)
						return
					}
				}
			})
			if benchErr != nil {
				return nil, benchErr
			}
			out[fmt.Sprintf("BenchmarkScaling_Chase/n=%d/p=%d", n, p)] = ToPerfResult(chaseRes)

			// A fresh context per level: parallelism is fixed at
			// construction and the compilation cache is per context.
			cfg := wl.Base.Config
			cfg.Parallelism = p
			qc, err := quality.NewContext(wl.Base.Ontology, cfg)
			if err != nil {
				return nil, err
			}
			prep, err := qc.Prepare(ctx)
			if err != nil {
				return nil, err
			}
			coldRes := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					a, err := qc.Assess(ctx, wl.Base.Instance)
					if err != nil {
						benchErr = fmt.Errorf("cold assess failed at n=%d p=%d: %v", n, p, err)
						return
					}
					if got := a.Versions["Measurements"].Len(); got != wl.Base.ExpectedClean {
						benchErr = fmt.Errorf("cold assess wrong at n=%d p=%d: clean=%d, want %d", n, p, got, wl.Base.ExpectedClean)
						return
					}
				}
			})
			if benchErr != nil {
				return nil, benchErr
			}
			out[fmt.Sprintf("BenchmarkColdAssess/n=%d/p=%d", n, p)] = ToPerfResult(coldRes)

			warmRes := testing.Benchmark(func(b *testing.B) {
				sess, err := prep.NewSession(ctx, wl.Base.Instance)
				if err != nil {
					benchErr = err
					return
				}
				b.ReportAllocs()
				b.ResetTimer()
				tick := 0
				for i := 0; i < b.N; i++ {
					if tick == WarmResetTicks {
						b.StopTimer()
						sess, err = prep.NewSession(ctx, wl.Base.Instance)
						if err != nil {
							benchErr = err
							return
						}
						tick = 0
						b.StartTimer()
					}
					delta, _ := wl.Tick(tick)
					tick++
					if _, err := sess.Apply(ctx, delta); err != nil {
						benchErr = fmt.Errorf("warm assess failed at n=%d p=%d: %v", n, p, err)
						return
					}
				}
			})
			if benchErr != nil {
				return nil, benchErr
			}
			out[fmt.Sprintf("BenchmarkWarmAssess/n=%d/p=%d", n, p)] = ToPerfResult(warmRes)
		}
	}
	return out, nil
}

// ToPerfResult converts a testing result to the JSON snapshot shape;
// every benchmark family recorded in BENCH_<n>.json (including the
// facade benchmarks in mdqa) goes through this one converter.
func ToPerfResult(r testing.BenchmarkResult) PerfResult {
	return PerfResult{
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// WritePerfJSON writes the results to path as pretty-printed JSON with
// deterministic key order (encoding/json sorts map keys).
func WritePerfJSON(path string, results map[string]PerfResult) error {
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}

// PerfNames returns the result names in sorted order, for stable
// human-readable summaries.
func PerfNames(results map[string]PerfResult) []string {
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
