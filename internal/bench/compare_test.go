package bench

import (
	"os"
	"path/filepath"
	"testing"
)

// TestPerfJSONRoundTrip pins the annotated snapshot format: results
// round-trip, and the "_hardware" key carries the recording machine
// without polluting the result map.
func TestPerfJSONRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	in := map[string]PerfResult{
		"BenchmarkColdAssess/n=400/p=1": {NsPerOp: 1000, AllocsPerOp: 10, BytesPerOp: 2048},
		"BenchmarkWarmAssess/n=400/p=1": {NsPerOp: 50, AllocsPerOp: 2, BytesPerOp: 128},
	}
	if err := WritePerfJSON(path, in); err != nil {
		t.Fatal(err)
	}
	out, hw, err := ReadPerfJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if hw == nil || hw.NumCPU < 1 || hw.Gomaxprocs < 1 {
		t.Fatalf("snapshot must carry the hardware annotation, got %+v", hw)
	}
	if len(out) != len(in) {
		t.Fatalf("results polluted by the annotation: %v", out)
	}
	for name, want := range in {
		if out[name] != want {
			t.Fatalf("%s: got %+v want %+v", name, out[name], want)
		}
	}
}

// TestReadPerfJSONLegacy reads a pre-annotation snapshot (no
// "_hardware"): BENCH_1–4 must stay loadable as baselines.
func TestReadPerfJSONLegacy(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_legacy.json")
	legacy := `{"BenchmarkColdAssess/n=400/p=1": {"ns_per_op": 42, "allocs_per_op": 1, "bytes_per_op": 64}}`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	out, hw, err := ReadPerfJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if hw != nil {
		t.Fatalf("legacy snapshot has no hardware, got %+v", hw)
	}
	if out["BenchmarkColdAssess/n=400/p=1"].NsPerOp != 42 {
		t.Fatalf("legacy results misread: %+v", out)
	}
}

// TestComparePerf pins the regression gate: within tolerance passes,
// beyond fails, families filter, and a vacuous comparison is
// detectable via the compared count.
func TestComparePerf(t *testing.T) {
	baseline := map[string]PerfResult{
		"BenchmarkColdAssess/n=400/p=1":   {NsPerOp: 1000},
		"BenchmarkWarmAssess/n=400/p=1":   {NsPerOp: 100},
		"BenchmarkScaling_Chase/n=400":    {NsPerOp: 10},
		"BenchmarkColdAssess/n=1600/p=1":  {NsPerOp: 5000},
		"BenchmarkIgnoredFamily/n=400":    {NsPerOp: 1},
		"BenchmarkColdAssess/n=800/extra": {NsPerOp: 0}, // zero baseline: skipped
	}
	families := []string{"BenchmarkColdAssess", "BenchmarkWarmAssess"}

	// Within tolerance: +25% on a 30% gate.
	current := map[string]PerfResult{
		"BenchmarkColdAssess/n=400/p=1": {NsPerOp: 1250},
		"BenchmarkWarmAssess/n=400/p=1": {NsPerOp: 90},
		"BenchmarkScaling_Chase/n=400":  {NsPerOp: 1000}, // 100x but not guarded
	}
	regs, compared := ComparePerf(current, baseline, families, 0.30)
	if len(regs) != 0 {
		t.Fatalf("within tolerance must pass: %v", regs)
	}
	if compared != 2 {
		t.Fatalf("want 2 compared, got %d", compared)
	}

	// Beyond tolerance fails, worst first.
	current["BenchmarkColdAssess/n=400/p=1"] = PerfResult{NsPerOp: 1400}
	current["BenchmarkWarmAssess/n=400/p=1"] = PerfResult{NsPerOp: 200}
	regs, _ = ComparePerf(current, baseline, families, 0.30)
	if len(regs) != 2 {
		t.Fatalf("want 2 regressions, got %v", regs)
	}
	if regs[0].Name != "BenchmarkWarmAssess/n=400/p=1" {
		t.Fatalf("worst regression (2.0x) must sort first: %v", regs)
	}
	if regs[0].Ratio < 1.9 || regs[0].Ratio > 2.1 {
		t.Fatalf("ratio: %v", regs[0])
	}

	// Keys only in current (new benchmarks) are not regressions.
	regs, compared = ComparePerf(map[string]PerfResult{
		"BenchmarkColdAssess/n=9999/p=1": {NsPerOp: 1},
	}, baseline, families, 0.30)
	if len(regs) != 0 || compared != 0 {
		t.Fatalf("unmatched keys must not count: regs=%v compared=%d", regs, compared)
	}
}
