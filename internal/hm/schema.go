// Package hm implements the Hurtado–Mendelzon (HM) multidimensional
// data model that the paper extends (Section II): dimension schemas
// (directed acyclic graphs of categories), dimension instances (members
// with a child-parent rollup relation paralleling the category DAG),
// transitive rollups, and the classic integrity checks — strictness,
// homogeneity and summarizability — from Hurtado, Gutierrez and
// Mendelzon (TODS 2005).
package hm

import (
	"fmt"
	"sort"
	"strings"
)

// DimensionSchema is a DAG of categories connected by a child-parent
// relation, e.g. Ward → Unit → Institution in the paper's Hospital
// dimension.
type DimensionSchema struct {
	name       string
	categories []string
	catSet     map[string]bool
	parents    map[string][]string // child category -> adjacent parent categories
	children   map[string][]string // parent category -> adjacent child categories
}

// NewDimensionSchema creates an empty schema.
func NewDimensionSchema(name string) *DimensionSchema {
	return &DimensionSchema{
		name:     name,
		catSet:   map[string]bool{},
		parents:  map[string][]string{},
		children: map[string][]string{},
	}
}

// Name returns the dimension name.
func (s *DimensionSchema) Name() string { return s.name }

// AddCategory declares a category. Re-declaring is an error.
func (s *DimensionSchema) AddCategory(cat string) error {
	if cat == "" {
		return fmt.Errorf("hm: %s: empty category name", s.name)
	}
	if s.catSet[cat] {
		return fmt.Errorf("hm: %s: category %s already declared", s.name, cat)
	}
	s.catSet[cat] = true
	s.categories = append(s.categories, cat)
	return nil
}

// MustAddCategory panics on error; for static schema construction.
func (s *DimensionSchema) MustAddCategory(cat string) {
	if err := s.AddCategory(cat); err != nil {
		panic(err)
	}
}

// AddEdge declares that child's members roll up to parent's members
// (child ≺ parent, adjacent in the hierarchy).
func (s *DimensionSchema) AddEdge(child, parent string) error {
	if !s.catSet[child] {
		return fmt.Errorf("hm: %s: unknown category %s", s.name, child)
	}
	if !s.catSet[parent] {
		return fmt.Errorf("hm: %s: unknown category %s", s.name, parent)
	}
	if child == parent {
		return fmt.Errorf("hm: %s: self-edge on %s", s.name, child)
	}
	for _, p := range s.parents[child] {
		if p == parent {
			return fmt.Errorf("hm: %s: edge %s -> %s already declared", s.name, child, parent)
		}
	}
	s.parents[child] = append(s.parents[child], parent)
	s.children[parent] = append(s.children[parent], child)
	if s.hasCycle() {
		// Roll back the offending edge.
		s.parents[child] = s.parents[child][:len(s.parents[child])-1]
		s.children[parent] = s.children[parent][:len(s.children[parent])-1]
		return fmt.Errorf("hm: %s: edge %s -> %s creates a cycle", s.name, child, parent)
	}
	return nil
}

// MustAddEdge panics on error.
func (s *DimensionSchema) MustAddEdge(child, parent string) {
	if err := s.AddEdge(child, parent); err != nil {
		panic(err)
	}
}

// Categories returns the categories in declaration order.
func (s *DimensionSchema) Categories() []string {
	out := make([]string, len(s.categories))
	copy(out, s.categories)
	return out
}

// HasCategory reports whether cat is declared.
func (s *DimensionSchema) HasCategory(cat string) bool { return s.catSet[cat] }

// Parents returns the adjacent parent categories of cat.
func (s *DimensionSchema) Parents(cat string) []string {
	out := make([]string, len(s.parents[cat]))
	copy(out, s.parents[cat])
	return out
}

// Children returns the adjacent child categories of cat.
func (s *DimensionSchema) Children(cat string) []string {
	out := make([]string, len(s.children[cat]))
	copy(out, s.children[cat])
	return out
}

// Edges returns all (child, parent) pairs, sorted.
func (s *DimensionSchema) Edges() [][2]string {
	var out [][2]string
	for child, ps := range s.parents {
		for _, p := range ps {
			out = append(out, [2]string{child, p})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

func (s *DimensionSchema) hasCycle() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(string) bool
	visit = func(c string) bool {
		color[c] = gray
		for _, p := range s.parents[c] {
			switch color[p] {
			case gray:
				return true
			case white:
				if visit(p) {
					return true
				}
			}
		}
		color[c] = black
		return false
	}
	for _, c := range s.categories {
		if color[c] == white && visit(c) {
			return true
		}
	}
	return false
}

// Bottoms returns the categories with no children (the base levels).
func (s *DimensionSchema) Bottoms() []string {
	var out []string
	for _, c := range s.categories {
		if len(s.children[c]) == 0 {
			out = append(out, c)
		}
	}
	return out
}

// Tops returns the categories with no parents.
func (s *DimensionSchema) Tops() []string {
	var out []string
	for _, c := range s.categories {
		if len(s.parents[c]) == 0 {
			out = append(out, c)
		}
	}
	return out
}

// IsAncestor reports whether ancestor is reachable from cat by
// following child-parent edges upward (strictly above, or equal when
// cat == ancestor).
func (s *DimensionSchema) IsAncestor(cat, ancestor string) bool {
	if cat == ancestor {
		return true
	}
	seen := map[string]bool{cat: true}
	queue := []string{cat}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for _, p := range s.parents[c] {
			if p == ancestor {
				return true
			}
			if !seen[p] {
				seen[p] = true
				queue = append(queue, p)
			}
		}
	}
	return false
}

// Levels assigns each category its level: bottoms are level 0 and a
// parent's level is one more than the maximum level of its children.
// Levels orient the paper's dimensional navigation (upward = toward
// higher levels).
func (s *DimensionSchema) Levels() map[string]int {
	level := map[string]int{}
	var visit func(string) int
	visit = func(c string) int {
		if l, ok := level[c]; ok {
			return l
		}
		max := 0
		for _, ch := range s.children[c] {
			if l := visit(ch) + 1; l > max {
				max = l
			}
		}
		level[c] = max
		return max
	}
	for _, c := range s.categories {
		visit(c)
	}
	return level
}

// Height returns the maximum level.
func (s *DimensionSchema) Height() int {
	h := 0
	for _, l := range s.Levels() {
		if l > h {
			h = l
		}
	}
	return h
}

// Validate checks structural sanity: at least one category and
// acyclicity (maintained incrementally, re-checked here).
func (s *DimensionSchema) Validate() error {
	if len(s.categories) == 0 {
		return fmt.Errorf("hm: %s: no categories", s.name)
	}
	if s.hasCycle() {
		return fmt.Errorf("hm: %s: category graph has a cycle", s.name)
	}
	return nil
}

// String renders the schema as "Name: child -> parent, ...".
func (s *DimensionSchema) String() string {
	var parts []string
	for _, e := range s.Edges() {
		parts = append(parts, e[0]+" -> "+e[1])
	}
	if len(parts) == 0 {
		return s.name + ": " + strings.Join(s.Categories(), ", ")
	}
	return s.name + ": " + strings.Join(parts, ", ")
}
