package hm

import (
	"strings"
	"testing"

	dl "repro/internal/datalog"
	"repro/internal/storage"
)

// hospitalSchema builds the Hospital dimension of Fig. 1:
// Ward -> Unit -> Institution -> AllHospital.
func hospitalSchema(t *testing.T) *DimensionSchema {
	t.Helper()
	s := NewDimensionSchema("Hospital")
	for _, c := range []string{"Ward", "Unit", "Institution", "AllHospital"} {
		if err := s.AddCategory(c); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]string{{"Ward", "Unit"}, {"Unit", "Institution"}, {"Institution", "AllHospital"}} {
		if err := s.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// hospitalDim builds the Hospital instance of Fig. 1: wards W1..W4,
// units Standard/Intensive/Terminal, institutions H1/H2.
func hospitalDim(t *testing.T) *Dimension {
	t.Helper()
	d := NewDimension(hospitalSchema(t))
	for _, m := range []string{"W1", "W2", "W3", "W4"} {
		d.MustAddMember("Ward", m)
	}
	for _, m := range []string{"Standard", "Intensive", "Terminal"} {
		d.MustAddMember("Unit", m)
	}
	d.MustAddMember("Institution", "H1")
	d.MustAddMember("Institution", "H2")
	d.MustAddMember("AllHospital", "allHospital")
	d.MustAddRollup("W1", "Standard")
	d.MustAddRollup("W2", "Standard")
	d.MustAddRollup("W3", "Intensive")
	d.MustAddRollup("W4", "Terminal")
	d.MustAddRollup("Standard", "H1")
	d.MustAddRollup("Intensive", "H1")
	d.MustAddRollup("Terminal", "H2")
	d.MustAddRollup("H1", "allHospital")
	d.MustAddRollup("H2", "allHospital")
	return d
}

func TestSchemaBasics(t *testing.T) {
	s := hospitalSchema(t)
	if s.Name() != "Hospital" {
		t.Errorf("Name = %q", s.Name())
	}
	if got := s.Categories(); len(got) != 4 || got[0] != "Ward" {
		t.Errorf("Categories = %v", got)
	}
	if !s.HasCategory("Unit") || s.HasCategory("ICU") {
		t.Error("HasCategory wrong")
	}
	if got := s.Parents("Ward"); len(got) != 1 || got[0] != "Unit" {
		t.Errorf("Parents(Ward) = %v", got)
	}
	if got := s.Children("Unit"); len(got) != 1 || got[0] != "Ward" {
		t.Errorf("Children(Unit) = %v", got)
	}
	if got := s.Bottoms(); len(got) != 1 || got[0] != "Ward" {
		t.Errorf("Bottoms = %v", got)
	}
	if got := s.Tops(); len(got) != 1 || got[0] != "AllHospital" {
		t.Errorf("Tops = %v", got)
	}
}

func TestSchemaErrors(t *testing.T) {
	s := NewDimensionSchema("D")
	if err := s.AddCategory(""); err == nil {
		t.Error("empty category must fail")
	}
	s.MustAddCategory("A")
	if err := s.AddCategory("A"); err == nil {
		t.Error("duplicate category must fail")
	}
	if err := s.AddEdge("A", "Z"); err == nil {
		t.Error("edge to unknown category must fail")
	}
	if err := s.AddEdge("A", "A"); err == nil {
		t.Error("self edge must fail")
	}
	s.MustAddCategory("B")
	s.MustAddEdge("A", "B")
	if err := s.AddEdge("A", "B"); err == nil {
		t.Error("duplicate edge must fail")
	}
	if err := s.AddEdge("B", "A"); err == nil {
		t.Error("cycle must be rejected")
	}
	// Rejected edge must have been rolled back.
	if got := s.Parents("B"); len(got) != 0 {
		t.Errorf("rollback failed: Parents(B) = %v", got)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("valid schema rejected: %v", err)
	}
	if err := NewDimensionSchema("E").Validate(); err == nil {
		t.Error("empty schema must fail validation")
	}
}

func TestSchemaIsAncestorAndLevels(t *testing.T) {
	s := hospitalSchema(t)
	if !s.IsAncestor("Ward", "Institution") {
		t.Error("Institution is an ancestor of Ward")
	}
	if !s.IsAncestor("Ward", "Ward") {
		t.Error("a category is its own ancestor (reflexive)")
	}
	if s.IsAncestor("Institution", "Ward") {
		t.Error("Ward is not an ancestor of Institution")
	}
	lv := s.Levels()
	want := map[string]int{"Ward": 0, "Unit": 1, "Institution": 2, "AllHospital": 3}
	for c, l := range want {
		if lv[c] != l {
			t.Errorf("level(%s) = %d, want %d", c, lv[c], l)
		}
	}
	if s.Height() != 3 {
		t.Errorf("Height = %d, want 3", s.Height())
	}
}

func TestSchemaDAGMultiParent(t *testing.T) {
	// Time-style lattice: Time -> Day -> Month -> Year and Day -> Week.
	s := NewDimensionSchema("Time")
	for _, c := range []string{"Time", "Day", "Week", "Month", "Year"} {
		s.MustAddCategory(c)
	}
	s.MustAddEdge("Time", "Day")
	s.MustAddEdge("Day", "Week")
	s.MustAddEdge("Day", "Month")
	s.MustAddEdge("Month", "Year")
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.Parents("Day"); len(got) != 2 {
		t.Errorf("Parents(Day) = %v, want Week and Month", got)
	}
	lv := s.Levels()
	if lv["Week"] != 2 || lv["Year"] != 3 {
		t.Errorf("levels = %v", lv)
	}
}

func TestDimensionMembers(t *testing.T) {
	d := hospitalDim(t)
	if got, _ := d.CategoryOf("W1"); got != "Ward" {
		t.Errorf("CategoryOf(W1) = %q", got)
	}
	if _, ok := d.CategoryOf("nope"); ok {
		t.Error("unknown member must not resolve")
	}
	if got := d.MembersOf("Unit"); len(got) != 3 {
		t.Errorf("MembersOf(Unit) = %v", got)
	}
	if d.MemberCount() != 10 {
		t.Errorf("MemberCount = %d, want 10", d.MemberCount())
	}
	if err := d.AddMember("Ward", "W1"); err == nil {
		t.Error("duplicate member must fail")
	}
	if err := d.AddMember("ICU", "X"); err == nil {
		t.Error("unknown category must fail")
	}
	if err := d.AddMember("Ward", ""); err == nil {
		t.Error("empty member must fail")
	}
}

func TestDimensionRollupErrors(t *testing.T) {
	d := hospitalDim(t)
	if err := d.AddRollup("W1", "H1"); err == nil {
		t.Error("non-adjacent rollup Ward->Institution must fail")
	}
	if err := d.AddRollup("W1", "Standard"); err == nil {
		t.Error("duplicate rollup must fail")
	}
	if err := d.AddRollup("nope", "Standard"); err == nil {
		t.Error("unknown child must fail")
	}
	if err := d.AddRollup("W1", "nope"); err == nil {
		t.Error("unknown parent must fail")
	}
}

func TestDimensionNavigation(t *testing.T) {
	d := hospitalDim(t)
	if got := d.ParentsOf("W1"); len(got) != 1 || got[0] != "Standard" {
		t.Errorf("ParentsOf(W1) = %v", got)
	}
	if got := d.ChildrenOf("Standard"); len(got) != 2 {
		t.Errorf("ChildrenOf(Standard) = %v", got)
	}
	// Transitive rollup: W1 -> H1 (via Standard).
	if got := d.RollupAll("W1", "Institution"); len(got) != 1 || got[0] != "H1" {
		t.Errorf("RollupAll(W1, Institution) = %v", got)
	}
	one, err := d.RollupOne("W2", "Institution")
	if err != nil || one != "H1" {
		t.Errorf("RollupOne(W2, Institution) = %q, %v", one, err)
	}
	// Same category: identity.
	if got := d.RollupAll("W1", "Ward"); len(got) != 1 || got[0] != "W1" {
		t.Errorf("RollupAll same category = %v", got)
	}
	// Drilldown: Standard unit has wards W1, W2 (Example 2).
	if got := d.DrilldownAll("Standard", "Ward"); len(got) != 2 || got[0] != "W1" || got[1] != "W2" {
		t.Errorf("DrilldownAll(Standard, Ward) = %v", got)
	}
	// H1 hosts wards of Standard and Intensive: W1, W2, W3.
	if got := d.DrilldownAll("H1", "Ward"); len(got) != 3 {
		t.Errorf("DrilldownAll(H1, Ward) = %v", got)
	}
	if got := d.RollupAll("unknown", "Unit"); got != nil {
		t.Errorf("unknown member rollup = %v, want nil", got)
	}
}

func TestDimensionRollupOneErrors(t *testing.T) {
	d := hospitalDim(t)
	// W5 with no rollup: error (no target).
	d.MustAddMember("Ward", "W5")
	if _, err := d.RollupOne("W5", "Unit"); err == nil {
		t.Error("member with no rollup must error")
	}
	// Non-strict: W5 in two units.
	d.MustAddRollup("W5", "Standard")
	d.MustAddRollup("W5", "Intensive")
	if _, err := d.RollupOne("W5", "Unit"); err == nil {
		t.Error("non-strict rollup must error")
	}
}

func TestStrictnessCheck(t *testing.T) {
	d := hospitalDim(t)
	if vs := d.CheckStrictness(); len(vs) != 0 {
		t.Fatalf("Fig. 1 instance is strict, got %v", vs)
	}
	// Make W1 also roll into Intensive: W1 reaches two units but
	// still one institution (both under H1).
	d.MustAddRollup("W1", "Intensive")
	vs := d.CheckStrictness()
	if len(vs) == 0 {
		t.Fatal("strictness violation expected")
	}
	found := false
	for _, v := range vs {
		if v.Member == "W1" && strings.Contains(v.Detail, "Unit") {
			found = true
		}
	}
	if !found {
		t.Errorf("violations = %v, want W1/Unit", vs)
	}
}

func TestHomogeneityCheck(t *testing.T) {
	d := hospitalDim(t)
	if vs := d.CheckHomogeneity(); len(vs) != 0 {
		t.Fatalf("Fig. 1 instance is homogeneous, got %v", vs)
	}
	d.MustAddMember("Ward", "W9") // no rollup at all
	vs := d.CheckHomogeneity()
	if len(vs) != 1 || vs[0].Member != "W9" {
		t.Errorf("violations = %v, want W9 missing Unit parent", vs)
	}
	if !strings.Contains(vs[0].String(), "homogeneity") {
		t.Errorf("violation String = %q", vs[0].String())
	}
}

func TestSummarizable(t *testing.T) {
	d := hospitalDim(t)
	if !d.Summarizable("Ward", "Unit") {
		t.Error("Ward->Unit is summarizable in Fig. 1")
	}
	if !d.Summarizable("Ward", "Institution") {
		t.Error("Ward->Institution is summarizable")
	}
	if d.Summarizable("Unit", "Ward") {
		t.Error("downward direction is not summarizable")
	}
	if d.Summarizable("Ward", "Ward") {
		t.Error("same category is not a rollup")
	}
	d.MustAddMember("Ward", "W9") // breaks totality
	if d.Summarizable("Ward", "Unit") {
		t.Error("uncovered member must break summarizability")
	}
}

func TestEmitAtoms(t *testing.T) {
	d := hospitalDim(t)
	db := storage.NewInstance()
	if err := d.EmitAtoms(db); err != nil {
		t.Fatal(err)
	}
	// Category predicates.
	if !db.ContainsAtom(dl.A("Ward", dl.C("W1"))) {
		t.Error("Ward(W1) missing")
	}
	if !db.ContainsAtom(dl.A("Unit", dl.C("Standard"))) {
		t.Error("Unit(Standard) missing")
	}
	// Parent-child predicates, parent first (paper convention).
	if !db.ContainsAtom(dl.A("UnitWard", dl.C("Standard"), dl.C("W1"))) {
		t.Error("UnitWard(Standard, W1) missing")
	}
	if !db.ContainsAtom(dl.A("InstitutionUnit", dl.C("H1"), dl.C("Standard"))) {
		t.Error("InstitutionUnit(H1, Standard) missing")
	}
	if db.Relation("UnitWard").Len() != 4 {
		t.Errorf("UnitWard = %d rollups, want 4", db.Relation("UnitWard").Len())
	}
	// Empty rollup relations still created (schema completeness).
	if db.Relation("AllHospitalInstitution") == nil {
		t.Error("AllHospitalInstitution relation must exist")
	}
}

func TestTransitiveRollupProgram(t *testing.T) {
	d := hospitalDim(t)
	tgds := d.TransitiveRollupProgram()
	// Non-adjacent ancestor pairs: Ward->Institution, Ward->AllHospital,
	// Unit->AllHospital; each with one via-rule (linear hierarchy).
	if len(tgds) != 3 {
		t.Fatalf("rules = %d, want 3:\n%v", len(tgds), tgds)
	}
	found := false
	for _, tgd := range tgds {
		if tgd.Head[0].Pred == "InstitutionWard" {
			found = true
			if len(tgd.Body) != 2 {
				t.Errorf("composition body = %v", tgd.Body)
			}
		}
	}
	if !found {
		t.Error("InstitutionWard composition rule missing")
	}
}

func TestRollupPredNaming(t *testing.T) {
	if RollupPredName("Ward", "Unit") != "UnitWard" {
		t.Errorf("RollupPredName = %q, want UnitWard", RollupPredName("Ward", "Unit"))
	}
	if RollupPredName("Day", "Month") != "MonthDay" {
		t.Errorf("RollupPredName = %q, want MonthDay", RollupPredName("Day", "Month"))
	}
	if CategoryPredName("Ward") != "Ward" {
		t.Error("CategoryPredName must be the bare category name")
	}
}

func TestDOTExport(t *testing.T) {
	d := hospitalDim(t)
	dot := d.DOT(false)
	for _, want := range []string{"digraph \"Hospital\"", `"Ward" -> "Unit"`, "rankdir=BT"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	if strings.Contains(dot, "m:W1") {
		t.Error("members must not appear without withMembers")
	}
	full := d.DOT(true)
	for _, want := range []string{`"m:W1" -> "m:Standard"`, `"m:W1" -> "Ward"`} {
		if !strings.Contains(full, want) {
			t.Errorf("DOT(with members) missing %q", want)
		}
	}
}

func TestSchemaString(t *testing.T) {
	s := hospitalSchema(t)
	if got := s.String(); !strings.Contains(got, "Ward -> Unit") {
		t.Errorf("String = %q", got)
	}
	lone := NewDimensionSchema("L")
	lone.MustAddCategory("Only")
	if got := lone.String(); !strings.Contains(got, "Only") {
		t.Errorf("String = %q", got)
	}
}
