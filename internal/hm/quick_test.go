package hm

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/storage"
)

func newTestInstance() *storage.Instance { return storage.NewInstance() }

// dimValue generates a random three-level dimension instance with
// arbitrary (possibly non-strict, possibly partial) rollups — the
// checks must classify it, and navigation must stay dual regardless.
type dimValue struct {
	D *Dimension
}

func (dimValue) Generate(r *rand.Rand, _ int) reflect.Value {
	s := NewDimensionSchema("G")
	s.MustAddCategory("L0")
	s.MustAddCategory("L1")
	s.MustAddCategory("L2")
	s.MustAddEdge("L0", "L1")
	s.MustAddEdge("L1", "L2")
	d := NewDimension(s)
	n0 := 2 + r.Intn(5)
	n1 := 1 + r.Intn(3)
	n2 := 1 + r.Intn(2)
	for i := 0; i < n0; i++ {
		d.MustAddMember("L0", fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n1; i++ {
		d.MustAddMember("L1", fmt.Sprintf("b%d", i))
	}
	for i := 0; i < n2; i++ {
		d.MustAddMember("L2", fmt.Sprintf("c%d", i))
	}
	// Random rollups: each L0 member gets 0..2 parents; each L1
	// member 0..1.
	for i := 0; i < n0; i++ {
		for k := 0; k <= r.Intn(3); k++ {
			parent := fmt.Sprintf("b%d", r.Intn(n1))
			// Ignore duplicate errors.
			_ = d.AddRollup(fmt.Sprintf("a%d", i), parent)
		}
	}
	for i := 0; i < n1; i++ {
		if r.Intn(2) == 0 {
			_ = d.AddRollup(fmt.Sprintf("b%d", i), fmt.Sprintf("c%d", r.Intn(n2)))
		}
	}
	return reflect.ValueOf(dimValue{D: d})
}

func TestQuickRollupDrilldownDuality(t *testing.T) {
	// m' ∈ RollupAll(m, cat') ⟺ m ∈ DrilldownAll(m', cat(m)).
	f := func(dv dimValue) bool {
		d := dv.D
		for _, m := range d.MembersOf("L0") {
			for _, target := range []string{"L1", "L2"} {
				for _, up := range d.RollupAll(m, target) {
					found := false
					for _, down := range d.DrilldownAll(up, "L0") {
						if down == m {
							found = true
						}
					}
					if !found {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickStrictnessMatchesRollupCount(t *testing.T) {
	// No strictness violations ⟺ every member reaches ≤1 member of
	// every ancestor category.
	f := func(dv dimValue) bool {
		d := dv.D
		violations := len(d.CheckStrictness()) > 0
		manual := false
		for _, lvl := range []string{"L0", "L1"} {
			for _, m := range d.MembersOf(lvl) {
				for _, target := range []string{"L1", "L2"} {
					if lvl == target || !d.Schema().IsAncestor(lvl, target) {
						continue
					}
					if len(d.RollupAll(m, target)) > 1 {
						manual = true
					}
				}
			}
		}
		return violations == manual
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickSummarizableImpliesUniqueRollup(t *testing.T) {
	f := func(dv dimValue) bool {
		d := dv.D
		if !d.Summarizable("L0", "L2") {
			return true
		}
		for _, m := range d.MembersOf("L0") {
			if _, err := d.RollupOne(m, "L2"); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickHomogeneityMatchesParentPresence(t *testing.T) {
	f := func(dv dimValue) bool {
		d := dv.D
		violations := len(d.CheckHomogeneity()) > 0
		manual := false
		for _, lvl := range []string{"L0", "L1"} {
			for _, m := range d.MembersOf(lvl) {
				if len(d.ParentsOf(m)) == 0 {
					manual = true
				}
			}
		}
		return violations == manual
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickEmitAtomsCardinality(t *testing.T) {
	// EmitAtoms writes exactly one category fact per member and one
	// rollup fact per rollup edge.
	f := func(dv dimValue) bool {
		d := dv.D
		db := newTestInstance()
		if err := d.EmitAtoms(db); err != nil {
			return false
		}
		members := 0
		for _, cat := range d.Schema().Categories() {
			members += db.Relation(CategoryPredName(cat)).Len()
		}
		if members != d.MemberCount() {
			return false
		}
		edges := 0
		for _, m := range d.MembersOf("L0") {
			edges += len(d.ParentsOf(m))
		}
		for _, m := range d.MembersOf("L1") {
			edges += len(d.ParentsOf(m))
		}
		return db.Relation(RollupPredName("L0", "L1")).Len()+
			db.Relation(RollupPredName("L1", "L2")).Len() == edges
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
