package hm

import (
	"fmt"
	"sort"
)

// Dimension is a dimension instance: members assigned to categories,
// and a child-parent rollup relation between members of adjacent
// categories, paralleling the schema DAG.
type Dimension struct {
	schema       *DimensionSchema
	categoryOf   map[string]string   // member -> its category
	membersByCat map[string][]string // category -> members, insertion order
	up           map[string][]string // member -> adjacent parent members
	down         map[string][]string // member -> adjacent child members
}

// NewDimension creates an empty instance over the schema.
func NewDimension(schema *DimensionSchema) *Dimension {
	return &Dimension{
		schema:       schema,
		categoryOf:   map[string]string{},
		membersByCat: map[string][]string{},
		up:           map[string][]string{},
		down:         map[string][]string{},
	}
}

// Schema returns the dimension schema.
func (d *Dimension) Schema() *DimensionSchema { return d.schema }

// Name returns the dimension name.
func (d *Dimension) Name() string { return d.schema.Name() }

// AddMember places a member in a category. A member name is unique
// across the dimension (HM members belong to exactly one category).
func (d *Dimension) AddMember(category, member string) error {
	if !d.schema.HasCategory(category) {
		return fmt.Errorf("hm: %s: unknown category %s", d.Name(), category)
	}
	if member == "" {
		return fmt.Errorf("hm: %s: empty member name", d.Name())
	}
	if prev, ok := d.categoryOf[member]; ok {
		return fmt.Errorf("hm: %s: member %s already in category %s", d.Name(), member, prev)
	}
	d.categoryOf[member] = category
	d.membersByCat[category] = append(d.membersByCat[category], member)
	return nil
}

// MustAddMember panics on error.
func (d *Dimension) MustAddMember(category, member string) {
	if err := d.AddMember(category, member); err != nil {
		panic(err)
	}
}

// AddRollup records that child member rolls up to parent member. Both
// members must exist and their categories must be adjacent in the
// schema.
func (d *Dimension) AddRollup(child, parent string) error {
	cc, ok := d.categoryOf[child]
	if !ok {
		return fmt.Errorf("hm: %s: unknown member %s", d.Name(), child)
	}
	pc, ok := d.categoryOf[parent]
	if !ok {
		return fmt.Errorf("hm: %s: unknown member %s", d.Name(), parent)
	}
	adjacent := false
	for _, p := range d.schema.Parents(cc) {
		if p == pc {
			adjacent = true
			break
		}
	}
	if !adjacent {
		return fmt.Errorf("hm: %s: no schema edge %s -> %s for rollup %s -> %s", d.Name(), cc, pc, child, parent)
	}
	for _, p := range d.up[child] {
		if p == parent {
			return fmt.Errorf("hm: %s: rollup %s -> %s already declared", d.Name(), child, parent)
		}
	}
	d.up[child] = append(d.up[child], parent)
	d.down[parent] = append(d.down[parent], child)
	return nil
}

// MustAddRollup panics on error.
func (d *Dimension) MustAddRollup(child, parent string) {
	if err := d.AddRollup(child, parent); err != nil {
		panic(err)
	}
}

// CategoryOf returns the category of a member.
func (d *Dimension) CategoryOf(member string) (string, bool) {
	c, ok := d.categoryOf[member]
	return c, ok
}

// MembersOf returns the members of a category in insertion order.
func (d *Dimension) MembersOf(category string) []string {
	out := make([]string, len(d.membersByCat[category]))
	copy(out, d.membersByCat[category])
	return out
}

// MemberCount returns the total number of members.
func (d *Dimension) MemberCount() int { return len(d.categoryOf) }

// ParentsOf returns the adjacent parent members of member.
func (d *Dimension) ParentsOf(member string) []string {
	out := make([]string, len(d.up[member]))
	copy(out, d.up[member])
	return out
}

// ChildrenOf returns the adjacent child members of member.
func (d *Dimension) ChildrenOf(member string) []string {
	out := make([]string, len(d.down[member]))
	copy(out, d.down[member])
	return out
}

// RollupAll returns every member of the target category reachable from
// member by following rollups upward; sorted for determinism. It is
// the transitive rollup relation of the HM model.
func (d *Dimension) RollupAll(member, targetCategory string) []string {
	startCat, ok := d.categoryOf[member]
	if !ok {
		return nil
	}
	if startCat == targetCategory {
		return []string{member}
	}
	seen := map[string]bool{member: true}
	queue := []string{member}
	var out []string
	for len(queue) > 0 {
		m := queue[0]
		queue = queue[1:]
		for _, p := range d.up[m] {
			if seen[p] {
				continue
			}
			seen[p] = true
			if d.categoryOf[p] == targetCategory {
				out = append(out, p)
			}
			queue = append(queue, p)
		}
	}
	sort.Strings(out)
	return out
}

// RollupOne returns the unique member of the target category the
// member rolls up to. It errors when there is none or more than one
// (non-strict instance).
func (d *Dimension) RollupOne(member, targetCategory string) (string, error) {
	all := d.RollupAll(member, targetCategory)
	switch len(all) {
	case 0:
		return "", fmt.Errorf("hm: %s: member %s does not roll up to category %s", d.Name(), member, targetCategory)
	case 1:
		return all[0], nil
	default:
		return "", fmt.Errorf("hm: %s: member %s rolls up to %d members of %s (non-strict)", d.Name(), member, len(all), targetCategory)
	}
}

// DrilldownAll returns every member of the target category from which
// member is reachable upward (the inverse transitive rollup), sorted.
func (d *Dimension) DrilldownAll(member, targetCategory string) []string {
	startCat, ok := d.categoryOf[member]
	if !ok {
		return nil
	}
	if startCat == targetCategory {
		return []string{member}
	}
	seen := map[string]bool{member: true}
	queue := []string{member}
	var out []string
	for len(queue) > 0 {
		m := queue[0]
		queue = queue[1:]
		for _, c := range d.down[m] {
			if seen[c] {
				continue
			}
			seen[c] = true
			if d.categoryOf[c] == targetCategory {
				out = append(out, c)
			}
			queue = append(queue, c)
		}
	}
	sort.Strings(out)
	return out
}

// Violation describes a failed integrity check on the instance.
type Violation struct {
	Check  string // "strictness" | "homogeneity"
	Member string
	Detail string
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("%s: member %s: %s", v.Check, v.Member, v.Detail)
}

// CheckStrictness verifies that every member rolls up to at most one
// member in each ancestor category (the HM strictness condition that
// makes rollup functional and summarization sound).
func (d *Dimension) CheckStrictness() []Violation {
	var out []Violation
	levels := d.schema.Levels()
	for member, cat := range d.categoryOf {
		for _, target := range d.schema.Categories() {
			if target == cat || !d.schema.IsAncestor(cat, target) {
				continue
			}
			if levels[target] <= levels[cat] {
				continue
			}
			if ups := d.RollupAll(member, target); len(ups) > 1 {
				out = append(out, Violation{
					Check:  "strictness",
					Member: member,
					Detail: fmt.Sprintf("rolls up to %d members of %s: %v", len(ups), target, ups),
				})
			}
		}
	}
	sortViolations(out)
	return out
}

// CheckHomogeneity verifies that every member has at least one parent
// in every adjacent parent category (no partial rollups), the HM
// covering condition.
func (d *Dimension) CheckHomogeneity() []Violation {
	var out []Violation
	for member, cat := range d.categoryOf {
		for _, pcat := range d.schema.Parents(cat) {
			found := false
			for _, p := range d.up[member] {
				if d.categoryOf[p] == pcat {
					found = true
					break
				}
			}
			if !found {
				out = append(out, Violation{
					Check:  "homogeneity",
					Member: member,
					Detail: fmt.Sprintf("no parent in category %s", pcat),
				})
			}
		}
	}
	sortViolations(out)
	return out
}

// Summarizable reports whether rollup from one category to another is
// summarizable: every member of from reaches exactly one member of to.
// Under HM this is equivalent to strictness plus homogeneity along the
// paths between the two categories.
func (d *Dimension) Summarizable(from, to string) bool {
	if !d.schema.IsAncestor(from, to) || from == to {
		return false
	}
	for _, m := range d.membersByCat[from] {
		if len(d.RollupAll(m, to)) != 1 {
			return false
		}
	}
	return true
}

// Validate runs the structural checks: schema validity and rollup
// integrity are enforced on insertion, so this checks only that the
// instance is non-trivially usable.
func (d *Dimension) Validate() error {
	return d.schema.Validate()
}

func sortViolations(vs []Violation) {
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].Member != vs[j].Member {
			return vs[i].Member < vs[j].Member
		}
		return vs[i].Detail < vs[j].Detail
	})
}
