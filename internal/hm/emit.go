package hm

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/datalog"
	"repro/internal/storage"
)

// RollupPredName names the parent-child predicate for a (child,
// parent) category pair, following the paper's convention of parent
// category first: UnitWard(u, w) holds when ward w belongs to unit u,
// MonthDay(m, d) when day d falls in month m.
func RollupPredName(child, parent string) string { return parent + child }

// CategoryPredName names the unary category predicate; the paper uses
// the bare category name: Ward(·), Unit(·).
func CategoryPredName(category string) string { return category }

// EmitAtoms writes the dimension instance into a storage instance as
// the ontology's extensional dimensional data:
//
//   - one unary fact Category(member) per member (the K predicates),
//   - one binary fact ParentChild(parentMember, childMember) per
//     rollup edge (the O predicates).
func (d *Dimension) EmitAtoms(db *storage.Instance) error {
	for _, cat := range d.schema.Categories() {
		if _, err := db.CreateRelation(CategoryPredName(cat), "member"); err != nil {
			return err
		}
		for _, m := range d.membersByCat[cat] {
			if _, err := db.Insert(CategoryPredName(cat), datalog.C(m)); err != nil {
				return err
			}
		}
	}
	for _, e := range d.schema.Edges() {
		child, parent := e[0], e[1]
		pred := RollupPredName(child, parent)
		if _, err := db.CreateRelation(pred, strings.ToLower(parent), strings.ToLower(child)); err != nil {
			return err
		}
	}
	// Emit rollup facts in category/member insertion order, not map
	// order: the EDB's tuple order is observable (join enumeration
	// order, hence chase null numbering), so it must be deterministic
	// across processes.
	for _, cat := range d.schema.Categories() {
		for _, member := range d.membersByCat[cat] {
			for _, p := range d.up[member] {
				pcat := d.categoryOf[p]
				pred := RollupPredName(cat, pcat)
				if _, err := db.Insert(pred, datalog.C(p), datalog.C(member)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// TransitiveRollupProgram returns plain Datalog rules defining the
// transitive rollup predicate RollupPredName(child, ancestor) for
// every non-adjacent ancestor pair, composed from the adjacent
// predicates. Categorical relations can then navigate across several
// levels in one join.
func (d *Dimension) TransitiveRollupProgram() []*datalog.TGD {
	var out []*datalog.TGD
	cats := d.schema.Categories()
	for _, child := range cats {
		for _, anc := range cats {
			if child == anc || !d.schema.IsAncestor(child, anc) {
				continue
			}
			adjacent := false
			for _, p := range d.schema.Parents(child) {
				if p == anc {
					adjacent = true
					break
				}
			}
			if adjacent {
				continue
			}
			// child -> mid -> ... -> anc: compose via each adjacent
			// parent of child that still reaches anc.
			for _, mid := range d.schema.Parents(child) {
				if !d.schema.IsAncestor(mid, anc) {
					continue
				}
				id := fmt.Sprintf("rollup-%s-%s-%s-via-%s", d.Name(), child, anc, mid)
				out = append(out, datalog.NewTGD(id,
					[]datalog.Atom{datalog.A(RollupPredName(child, anc), datalog.V("a"), datalog.V("c"))},
					[]datalog.Atom{
						datalog.A(RollupPredName(child, mid), datalog.V("m"), datalog.V("c")),
						datalog.A(RollupPredName(mid, anc), datalog.V("a"), datalog.V("m")),
					}))
			}
		}
	}
	return out
}

// DOT renders the dimension (schema and optionally the instance
// members) in Graphviz DOT format; used to regenerate the dimension
// half of the paper's Figure 1.
func (d *Dimension) DOT(withMembers bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", d.Name())
	b.WriteString("  rankdir=BT;\n")
	b.WriteString("  node [shape=box];\n")
	for _, cat := range d.schema.Categories() {
		fmt.Fprintf(&b, "  %q [style=bold];\n", cat)
	}
	for _, e := range d.schema.Edges() {
		fmt.Fprintf(&b, "  %q -> %q;\n", e[0], e[1])
	}
	if withMembers {
		members := make([]string, 0, len(d.categoryOf))
		for m := range d.categoryOf {
			members = append(members, m)
		}
		sort.Strings(members)
		for _, m := range members {
			fmt.Fprintf(&b, "  %q [shape=ellipse];\n", "m:"+m)
			fmt.Fprintf(&b, "  %q -> %q [style=dotted, arrowhead=none];\n", "m:"+m, d.categoryOf[m])
		}
		for _, m := range members {
			ups := append([]string(nil), d.up[m]...)
			sort.Strings(ups)
			for _, p := range ups {
				fmt.Fprintf(&b, "  %q -> %q;\n", "m:"+m, "m:"+p)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}
