package router

import (
	"fmt"
	"math/rand"
	"testing"
)

// testKeys builds M session-shaped keys ("hospital/lg-<i>").
func testKeys(m int) []string {
	keys := make([]string, m)
	for i := range keys {
		keys[i] = fmt.Sprintf("hospital/lg-%d", i)
	}
	return keys
}

func backendNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return out
}

// TestRingAddRelocatesAtMostKOverN is property (a): growing an
// N-backend ring to N+1 moves about K/(N+1) of K keys — within slack
// for vnode variance — and every moved key moves TO the new backend
// (consistent hashing never shuffles keys between surviving backends).
func TestRingAddRelocatesAtMostKOverN(t *testing.T) {
	const m = 20000
	keys := testKeys(m)
	for _, n := range []int{1, 2, 4, 8} {
		nodes := backendNames(n)
		before, err := NewRing(nodes, 0)
		if err != nil {
			t.Fatal(err)
		}
		added := "http://10.0.1.99:8080"
		after, err := NewRing(append(append([]string(nil), nodes...), added), 0)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, k := range keys {
			ob, oa := before.Owner(k), after.Owner(k)
			if ob == oa {
				continue
			}
			moved++
			if oa != added {
				t.Fatalf("n=%d: key %s moved %s -> %s, not to the added backend", n, k, ob, oa)
			}
		}
		// Expected m/(n+1); allow 50% slack plus a constant for vnode
		// placement variance at small n.
		bound := m/(n+1) + m/(2*(n+1)) + 200
		if moved > bound {
			t.Fatalf("n=%d: adding a backend moved %d of %d keys, want <= %d (~K/N)", n, moved, m, bound)
		}
		if moved == 0 {
			t.Fatalf("n=%d: adding a backend moved nothing — the ring is not spreading", n)
		}
	}
}

// TestRingRemoveRelocatesOwnKeysOnly is property (b): removing a
// backend moves exactly the keys it owned; every other key keeps its
// owner.
func TestRingRemoveRelocatesOwnKeysOnly(t *testing.T) {
	const m = 20000
	keys := testKeys(m)
	nodes := backendNames(5)
	before, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	removed := nodes[2]
	var rest []string
	for _, n := range nodes {
		if n != removed {
			rest = append(rest, n)
		}
	}
	after, err := NewRing(rest, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		ob, oa := before.Owner(k), after.Owner(k)
		if ob == removed {
			if oa == removed {
				t.Fatalf("key %s still owned by removed backend", k)
			}
			continue
		}
		if ob != oa {
			t.Fatalf("key %s moved %s -> %s though its owner survived", k, ob, oa)
		}
	}
}

// TestRingDeterministicAcrossConstruction is property (c): lookup is a
// pure function of the backend set — rings built from any permutation
// of the same backends (as independent processes or restarts would)
// agree on every key, and a handful of pinned key→owner pairs guard
// the hash function itself against accidental change.
func TestRingDeterministicAcrossConstruction(t *testing.T) {
	nodes := backendNames(4)
	ref, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(2000)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]string(nil), nodes...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		r2, err := NewRing(shuffled, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			if ref.Owner(k) != r2.Owner(k) {
				t.Fatalf("trial %d: owner(%s) differs across construction order: %s vs %s",
					trial, k, ref.Owner(k), r2.Owner(k))
			}
		}
	}
	// Pinned placements: if these move, the on-the-wire hash changed
	// and every deployed router would re-place every session.
	pinned := map[string]string{
		"hospital/lg-0":   "http://10.0.0.3:8080",
		"hospital/lg-1":   "http://10.0.0.2:8080",
		"hospital/s1":     "http://10.0.0.3:8080",
		"ward/session-17": "http://10.0.0.4:8080",
	}
	for k, want := range pinned {
		if got := ref.Owner(k); got != want {
			t.Fatalf("pinned owner(%q) = %q, want %q — the ring hash changed; this breaks existing deployments", k, got, want)
		}
	}
}

// TestRingWalkCoversAllNodesStartingAtOwner pins the fallback order:
// the first yielded node is the owner and a full walk offers every
// node exactly once.
func TestRingWalkCoversAllNodesStartingAtOwner(t *testing.T) {
	nodes := backendNames(5)
	r, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(200) {
		var walked []string
		r.Walk(k, func(n string) bool { walked = append(walked, n); return true })
		if len(walked) != len(nodes) {
			t.Fatalf("walk(%s) yielded %d nodes, want %d", k, len(walked), len(nodes))
		}
		if walked[0] != r.Owner(k) {
			t.Fatalf("walk(%s) starts at %s, owner is %s", k, walked[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, n := range walked {
			if seen[n] {
				t.Fatalf("walk(%s) yielded %s twice", k, n)
			}
			seen[n] = true
		}
	}
}

// TestRingSharesBalance sanity-checks the vnode count: every backend's
// hash-space share stays within 2x of fair on an 8-backend ring, and
// the shares sum to 1.
func TestRingSharesBalance(t *testing.T) {
	nodes := backendNames(8)
	r, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	shares := r.Shares()
	total := 0.0
	fair := 1.0 / float64(len(nodes))
	for n, s := range shares {
		total += s
		if s > 2*fair || s < fair/2 {
			t.Fatalf("backend %s owns share %.4f, fair is %.4f — vnode balance off", n, s, fair)
		}
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("shares sum to %.6f, want 1", total)
	}
}

func TestRingRejectsBadInput(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty ring must error")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Fatal("duplicate nodes must error")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty node name must error")
	}
}
