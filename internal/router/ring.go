// Package router implements mdrouter: a consistent-hash reverse proxy
// that shards mdserve traffic across share-nothing backends.
//
// Sessions are the unit of placement. Every session-scoped request
// (/v1/contexts/{name}/sessions/{id}...) hashes its {context, session}
// key onto the ring and is pinned to the owning backend — sessions are
// share-nothing and partition-safe, so the owner holds the only copy
// of the session's state. Stateless work (one-shot /assess, the
// context listing) is spread with a bounded-load walk: it starts at
// the key's owner for cache affinity but skips backends carrying more
// than LoadFactor times their fair share of in-flight requests.
//
// The ring is the classic Karger construction with virtual nodes:
// every backend contributes VNodes points (hash of "backend#i"), a key
// is owned by the first point clockwise from its hash. Adding a
// backend to an N-backend ring therefore moves ≈ K/(N+1) of K keys —
// all of them onto the new backend — and removing one moves only the
// keys it owned. Both properties are property-tested, and lookups are
// pure functions of the backend list, so independently constructed
// routers (restarts, replicas) agree on every placement.
package router

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// DefaultVNodes is the virtual-node count per backend. 128 points per
// backend keeps the largest-share/mean-share imbalance around 20% at
// small N while ring construction and lookup stay trivial.
const DefaultVNodes = 128

// Ring is an immutable consistent-hash ring over named nodes. Build
// one with NewRing; lookups are safe for concurrent use.
type Ring struct {
	vnodes int
	nodes  []string // sorted, unique
	points []point  // sorted by hash
}

// point is one virtual node: a position on the ring and the index of
// the owning node in Ring.nodes.
type point struct {
	hash uint64
	node int
}

// NewRing builds a ring with vnodes virtual nodes per node (0 =
// DefaultVNodes). Node names must be unique and non-empty; insertion
// order is irrelevant (nodes are sorted, so any two processes given
// the same set agree on every lookup).
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("router: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	for i, n := range sorted {
		if n == "" {
			return nil, fmt.Errorf("router: empty node name")
		}
		if i > 0 && sorted[i-1] == n {
			return nil, fmt.Errorf("router: duplicate node %q", n)
		}
	}
	r := &Ring{
		vnodes: vnodes,
		nodes:  sorted,
		points: make([]point, 0, len(sorted)*vnodes),
	}
	for ni, n := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s#%d", n, v)), node: ni})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by node order so the
		// winner is still deterministic.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// hash64 is FNV-1a finished with a splitmix64-style avalanche — FNV
// alone leaves near-identical inputs ("backend#1", "backend#2", ...)
// correlated, which skews vnode placement. Both pieces are fixed
// constants, stable across processes, architectures and Go releases,
// which is what makes lookups deterministic across restarts.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Nodes returns the node names, sorted.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// VNodes returns the virtual-node count per node.
func (r *Ring) VNodes() int { return r.vnodes }

// start returns the index of the first ring point at or clockwise
// from the key's hash.
func (r *Ring) start(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Owner returns the node owning key: the node of the first virtual
// point clockwise from the key's hash.
func (r *Ring) Owner(key string) string {
	return r.nodes[r.points[r.start(key)].node]
}

// Walk yields the distinct nodes in ring-successor order starting at
// the key's owner, stopping when yield returns false or every node has
// been offered. The first yielded node is Owner(key); the rest are the
// fallback order a bounded-load or health-skipping policy follows.
func (r *Ring) Walk(key string, yield func(node string) bool) {
	seen := make([]bool, len(r.nodes))
	remaining := len(r.nodes)
	for i, n := r.start(key), len(r.points); n > 0 && remaining > 0; i, n = (i+1)%len(r.points), n-1 {
		ni := r.points[i].node
		if seen[ni] {
			continue
		}
		seen[ni] = true
		remaining--
		if !yield(r.nodes[ni]) {
			return
		}
	}
}

// Shares returns each node's fraction of the hash space — the expected
// share of uniformly hashed keys it owns. Sums to 1.
func (r *Ring) Shares() map[string]float64 {
	shares := make(map[string]float64, len(r.nodes))
	if len(r.points) == 0 {
		return shares
	}
	span := func(from, to uint64) float64 {
		return float64(to-from) / math.MaxUint64 // uint64 wrap-around handles the seam
	}
	for i, p := range r.points {
		prev := r.points[(i+len(r.points)-1)%len(r.points)].hash
		shares[r.nodes[p.node]] += span(prev, p.hash)
	}
	return shares
}
