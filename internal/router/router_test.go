package router

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/server"
	"repro/mdqa"
)

// fakeShard is a stub backend that records which paths it served and
// answers every mdserve-shaped route with a marker of its own name.
func fakeShard(t *testing.T, name string) (*httptest.Server, *[]string) {
	t.Helper()
	var served []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		served = append(served, r.Method+" "+r.URL.Path)
		w.Header().Set("X-Backend", name)
		w.Header().Set("Content-Type", "application/json")
		if r.URL.Path == "/healthz" {
			fmt.Fprint(w, `{"status":"ok"}`)
			return
		}
		fmt.Fprintf(w, `{"backend":%q,"echo":%q}`, name, body)
	}))
	t.Cleanup(ts.Close)
	return ts, &served
}

func newTestRouter(t *testing.T, backends ...string) *Router {
	t.Helper()
	rt, err := New(Config{Backends: backends, Retries: 1})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestClassify(t *testing.T) {
	cases := []struct {
		method, path string
		class        routeClass
		key, ctx     string
		ok           bool
	}{
		{"GET", "/v1/contexts", classStateless, "contexts", "", true},
		{"POST", "/v1/contexts/hospital/assess", classStateless, "hospital", "hospital", true},
		{"POST", "/v1/contexts/hospital/sessions", classCreate, "", "hospital", true},
		{"GET", "/v1/contexts/hospital/sessions", classFanout, "", "hospital", true},
		{"DELETE", "/v1/contexts/hospital/sessions", 0, "", "", false},
		{"GET", "/v1/contexts/hospital/sessions/s1", classPinned, "hospital/s1", "hospital", true},
		{"POST", "/v1/contexts/hospital/sessions/lg-3/apply", classPinned, "hospital/lg-3", "hospital", true},
		{"GET", "/v1/contexts/hospital/sessions/s1/answers", classPinned, "hospital/s1", "hospital", true},
		{"DELETE", "/v1/contexts/hospital/sessions/s1", classPinned, "hospital/s1", "hospital", true},
		{"GET", "/v1/other", 0, "", "", false},
		{"GET", "/v1/contexts//sessions", 0, "", "", false},
	}
	for _, c := range cases {
		class, key, ctxName, ok := classify(c.method, c.path)
		if ok != c.ok || (ok && (class != c.class || key != c.key || ctxName != c.ctx)) {
			t.Errorf("classify(%s %s) = (%v,%q,%q,%v), want (%v,%q,%q,%v)",
				c.method, c.path, class, key, ctxName, ok, c.class, c.key, c.ctx, c.ok)
		}
	}
}

// TestPinnedRoutingIsStable sends many session-scoped requests: each
// session must land on the ring owner every time, and with enough
// sessions both backends must see traffic.
func TestPinnedRoutingIsStable(t *testing.T) {
	a, _ := fakeShard(t, "a")
	b, _ := fakeShard(t, "b")
	rt := newTestRouter(t, a.URL, b.URL)
	front := httptest.NewServer(rt)
	defer front.Close()

	hits := map[string]int{}
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("hospital/sess-%d", i%10) // 4 passes over 10 sessions
		resp, err := http.Get(front.URL + "/v1/contexts/hospital/sessions/sess-" + fmt.Sprint(i%10))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		got := resp.Header.Get("X-Mdrouter-Backend")
		want := rt.ring.Owner(key)
		if got != want {
			t.Fatalf("session %s landed on %s, ring owner is %s", key, got, want)
		}
		hits[got]++
	}
	if len(hits) != 2 {
		t.Fatalf("10 sessions all landed on one backend: %v", hits)
	}
}

// TestCreateInjectsID pins create semantics: a create without an id
// gets one injected by the router, and the backend that received it is
// the ring owner of the injected id — so follow-up requests stay home.
func TestCreateInjectsID(t *testing.T) {
	a, servedA := fakeShard(t, "a")
	b, servedB := fakeShard(t, "b")
	rt := newTestRouter(t, a.URL, b.URL)
	front := httptest.NewServer(rt)
	defer front.Close()

	resp, err := http.Post(front.URL+"/v1/contexts/hospital/sessions", "application/json", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	var out struct{ Backend, Echo string }
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var injected struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal([]byte(out.Echo), &injected); err != nil || injected.ID == "" {
		t.Fatalf("create body reaching backend must carry an injected id, got %q (err %v)", out.Echo, err)
	}
	owner := rt.ring.Owner("hospital/" + injected.ID)
	if got := resp.Header.Get("X-Mdrouter-Backend"); got != owner {
		t.Fatalf("create for id %s served by %s, ring owner is %s", injected.ID, got, owner)
	}
	_ = servedA
	_ = servedB

	// A client-chosen id is forwarded untouched to its owner.
	resp2, err := http.Post(front.URL+"/v1/contexts/hospital/sessions", "application/json",
		strings.NewReader(`{"id":"chosen-1"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if got, want := resp2.Header.Get("X-Mdrouter-Backend"), rt.ring.Owner("hospital/chosen-1"); got != want {
		t.Fatalf("create with chosen id served by %s, owner is %s", got, want)
	}
}

// TestStatelessRetriesPastDeadBackend: with one backend down, every
// stateless request still succeeds by walking to the survivor, and the
// dead backend ends up marked unhealthy.
func TestStatelessRetriesPastDeadBackend(t *testing.T) {
	a, _ := fakeShard(t, "a")
	b, _ := fakeShard(t, "b")
	rt := newTestRouter(t, a.URL, b.URL)
	// Kill whichever backend owns the stateless key, so the first
	// request deterministically dials the dead one and must retry past
	// it (killing the non-owner would never exercise the retry).
	aliveURL, deadURL := a.URL, b.URL
	dead := b
	if rt.ring.Owner("contexts") == strings.TrimRight(a.URL, "/") {
		aliveURL, deadURL, dead = b.URL, a.URL, a
	}
	dead.Close()
	alive := struct{ URL string }{aliveURL}

	front := httptest.NewServer(rt)
	defer front.Close()

	for i := 0; i < 20; i++ {
		resp, err := http.Get(front.URL + "/v1/contexts")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d through half-dead cluster: got %d", i, resp.StatusCode)
		}
		if got := resp.Header.Get("X-Mdrouter-Backend"); got != strings.TrimRight(alive.URL, "/") {
			t.Fatalf("request %d served by %s, want the live backend", i, got)
		}
	}
	deadBE := rt.backends[strings.TrimRight(deadURL, "/")]
	if deadBE.healthy.Load() {
		t.Fatal("dial-refused backend still marked healthy")
	}
	if deadBE.retries.Load() == 0 {
		t.Fatal("no retry recorded against the dead owner — the walk never dialed it")
	}
	// Pinned requests owned by the dead backend are 503, not silently
	// rehomed: the state lives exactly one place.
	found := false
	for i := 0; i < 200 && !found; i++ {
		key := fmt.Sprintf("hospital/k%d", i)
		if rt.ring.Owner(key) == deadBE.name {
			found = true
			resp, err := http.Get(front.URL + "/v1/contexts/hospital/sessions/k" + fmt.Sprint(i))
			if err != nil {
				t.Fatal(err)
			}
			var body struct {
				Error struct{ Code string } `json:"error"`
			}
			json.NewDecoder(resp.Body).Decode(&body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusServiceUnavailable || body.Error.Code != "backend_unavailable" {
				t.Fatalf("pinned request to dead owner: got %d %q, want 503 backend_unavailable", resp.StatusCode, body.Error.Code)
			}
		}
	}
	if !found {
		t.Fatal("no test key hashed to the dead backend (ring broken?)")
	}
}

// TestCheckHealthFlipsFlags: CheckHealth marks dead backends unhealthy
// and /metrics + /topology report it.
func TestCheckHealthFlipsFlags(t *testing.T) {
	alive, _ := fakeShard(t, "alive")
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + l.Addr().String()
	l.Close()

	rt := newTestRouter(t, alive.URL, deadURL)
	rt.CheckHealth(context.Background())
	if got := rt.Healthy(); len(got) != 1 || got[0] != strings.TrimRight(alive.URL, "/") {
		t.Fatalf("Healthy() = %v, want only the live backend", got)
	}

	front := httptest.NewServer(rt)
	defer front.Close()
	resp, err := http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), fmt.Sprintf("mdrouter_backend_healthy{backend=%q} 0", strings.TrimRight(deadURL, "/"))) {
		t.Fatalf("metrics do not report the dead backend unhealthy:\n%s", metrics)
	}

	var topo TopologyResponse
	tresp, err := http.Get(front.URL + "/topology")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(tresp.Body).Decode(&topo); err != nil {
		t.Fatal(err)
	}
	tresp.Body.Close()
	if len(topo.Backends) != 2 {
		t.Fatalf("topology lists %d backends, want 2", len(topo.Backends))
	}
	sum := 0.0
	for _, b := range topo.Backends {
		sum += b.KeyShare
		if b.URL == strings.TrimRight(deadURL, "/") && b.Healthy {
			t.Fatal("topology reports dead backend healthy")
		}
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("topology key shares sum to %f, want 1", sum)
	}
}

// TestSessionListFanout merges listings across backends.
func TestSessionListFanout(t *testing.T) {
	mk := func(ids ...string) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/healthz" {
				fmt.Fprint(w, `{"status":"ok"}`)
				return
			}
			var sessions []map[string]string
			for _, id := range ids {
				sessions = append(sessions, map[string]string{"id": id, "context": "hospital"})
			}
			json.NewEncoder(w).Encode(map[string]any{"sessions": sessions})
		}))
	}
	a := mk("s-b", "s-d")
	b := mk("s-a", "s-c")
	defer a.Close()
	defer b.Close()
	rt := newTestRouter(t, a.URL, b.URL)
	front := httptest.NewServer(rt)
	defer front.Close()

	resp, err := http.Get(front.URL + "/v1/contexts/hospital/sessions")
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Sessions []struct {
			ID string `json:"id"`
		} `json:"sessions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var ids []string
	for _, s := range out.Sessions {
		ids = append(ids, s.ID)
	}
	if got, want := strings.Join(ids, ","), "s-a,s-b,s-c,s-d"; got != want {
		t.Fatalf("merged session list = %s, want %s (sorted union)", got, want)
	}
}

// TestRouterAgainstRealShards is the end-to-end check: two real
// mdserve cores behind the router, sessions created with router-chosen
// ids, data applied and queried — every response must come from the
// session's pinned home and agree with what was written.
func TestRouterAgainstRealShards(t *testing.T) {
	mkShard := func() *httptest.Server {
		srv, err := server.New(context.Background(), server.Config{Parallelism: 1}, []server.ContextSource{{
			Name:   "hospital",
			Source: mdqa.HospitalQualityExampleSource(),
		}})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		return ts
	}
	s1, s2 := mkShard(), mkShard()
	rt := newTestRouter(t, s1.URL, s2.URL)
	front := httptest.NewServer(rt)
	defer front.Close()

	apply := `{"atoms":[{"pred":"Clock","args":["Sep/5-11:45","Sep/5"]},{"pred":"Measurements","args":["Sep/5-11:45","Mark Smith","38.2"]}]}` + "\n"

	homes := map[string]string{}
	for i := 0; i < 6; i++ {
		// Create via router without an id: the router places it.
		resp, err := http.Post(front.URL+"/v1/contexts/hospital/sessions", "application/json", strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		var created struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || created.ID == "" {
			t.Fatalf("create %d via router: %d id=%q", i, resp.StatusCode, created.ID)
		}
		homes[created.ID] = resp.Header.Get("X-Mdrouter-Backend")

		// Apply NDJSON through the router; must reach the same home.
		ar, err := http.Post(front.URL+"/v1/contexts/hospital/sessions/"+created.ID+"/apply",
			"application/x-ndjson", strings.NewReader(apply))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, ar.Body)
		ar.Body.Close()
		if ar.StatusCode != http.StatusOK {
			t.Fatalf("apply to %s: %d", created.ID, ar.StatusCode)
		}
		if got := ar.Header.Get("X-Mdrouter-Backend"); got != homes[created.ID] {
			t.Fatalf("apply for %s went to %s, created on %s", created.ID, got, homes[created.ID])
		}

		// And the written fact is queryable through the router.
		qr, err := http.Get(front.URL + "/v1/contexts/hospital/sessions/" + created.ID +
			"/answers?q=" + url.QueryEscape(`m(t, p, v) <- Measurements(t, p, v).`))
		if err != nil {
			t.Fatal(err)
		}
		qbody, _ := io.ReadAll(qr.Body)
		qr.Body.Close()
		if qr.StatusCode != http.StatusOK {
			t.Fatalf("answers for %s: %d %s", created.ID, qr.StatusCode, qbody)
		}
		if !strings.Contains(string(qbody), "38.2") {
			t.Fatalf("answers for %s missing written value: %s", created.ID, qbody)
		}
	}
	// With 6 sessions the placement should have used both shards.
	used := map[string]bool{}
	for _, h := range homes {
		used[h] = true
	}
	if len(used) != 2 {
		t.Fatalf("6 sessions all pinned to one shard: %v", homes)
	}

	// The merged session list sees every session exactly once.
	lr, err := http.Get(front.URL + "/v1/contexts/hospital/sessions")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Sessions []struct {
			ID string `json:"id"`
		} `json:"sessions"`
	}
	if err := json.NewDecoder(lr.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	lr.Body.Close()
	if len(list.Sessions) != len(homes) {
		t.Fatalf("merged list has %d sessions, created %d", len(list.Sessions), len(homes))
	}
	for _, s := range list.Sessions {
		if _, ok := homes[s.ID]; !ok {
			t.Fatalf("merged list contains unknown session %q", s.ID)
		}
	}
}
