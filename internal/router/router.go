package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes the router.
type Config struct {
	// Backends are the mdserve base URLs ("http://host:port"). The
	// normalized URL string is the backend's ring name and metrics
	// label.
	Backends []string
	// VNodes is the virtual-node count per backend (0 = DefaultVNodes).
	VNodes int
	// LoadFactor bounds the load spread of stateless requests: a
	// backend carrying more than LoadFactor times its fair share of
	// in-flight requests is skipped in favor of the next ring successor
	// (0 = DefaultLoadFactor). Session-pinned requests ignore it — the
	// owner holds the only copy of the state.
	LoadFactor float64
	// HealthInterval is the background /healthz probe period
	// (0 = DefaultHealthInterval); HealthTimeout bounds one probe
	// (0 = DefaultHealthTimeout).
	HealthInterval time.Duration
	HealthTimeout  time.Duration
	// Retries is how many additional attempts a retry-safe request gets
	// after a connect failure (0 = DefaultRetries; negative disables).
	Retries int
	// Transport overrides the outbound round tripper (tests). nil
	// builds a pooled transport sized for the backend count.
	Transport http.RoundTripper
}

const (
	DefaultLoadFactor     = 1.25
	DefaultHealthInterval = 2 * time.Second
	DefaultHealthTimeout  = time.Second
	DefaultRetries        = 1

	// maxBufferedBody bounds request bodies the router buffers for
	// retry or rewrite (session creates, one-shot assess payloads).
	// Apply streams are never buffered.
	maxBufferedBody = 32 << 20
)

// backend is one mdserve process behind the router.
type backend struct {
	name string // normalized URL, the ring node name and metrics label
	url  *url.URL

	healthy  atomic.Bool
	inflight atomic.Int64
	requests atomic.Int64
	errors   atomic.Int64 // transport failures + 5xx responses
	retries  atomic.Int64

	mu  sync.Mutex
	lat *quantileRing
}

// Router is the mdrouter HTTP handler: a consistent-hash reverse proxy
// over share-nothing mdserve backends. Build one with New, optionally
// kick off Start for background health checking, and serve it with
// net/http.
type Router struct {
	cfg       Config
	ring      *Ring
	backends  map[string]*backend
	transport http.RoundTripper
	mux       *http.ServeMux

	proxied    atomic.Int64 // requests forwarded to a backend
	unroutable atomic.Int64 // requests answered 503 (no usable backend)
	genSeq     atomic.Uint64
	genSalt    uint64
}

// New builds a router over the given backends. All backends start out
// healthy; run CheckHealth (or Start) to probe them for real.
func New(cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("router: no backends")
	}
	if cfg.LoadFactor <= 1 {
		cfg.LoadFactor = DefaultLoadFactor
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = DefaultHealthInterval
	}
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = DefaultHealthTimeout
	}
	if cfg.Retries == 0 {
		cfg.Retries = DefaultRetries
	}
	rt := &Router{
		cfg:      cfg,
		backends: make(map[string]*backend, len(cfg.Backends)),
		genSalt:  uint64(time.Now().UnixNano()),
	}
	var names []string
	for _, raw := range cfg.Backends {
		u, err := url.Parse(strings.TrimRight(raw, "/"))
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("router: bad backend URL %q", raw)
		}
		b := &backend{name: u.String(), url: u, lat: newQuantileRing(1024)}
		b.healthy.Store(true)
		if _, dup := rt.backends[b.name]; dup {
			return nil, fmt.Errorf("router: duplicate backend %q", b.name)
		}
		rt.backends[b.name] = b
		names = append(names, b.name)
	}
	ring, err := NewRing(names, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	rt.ring = ring
	rt.transport = cfg.Transport
	if rt.transport == nil {
		rt.transport = &http.Transport{
			MaxIdleConns:        64 * len(names),
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	mux.HandleFunc("GET /topology", rt.handleTopology)
	mux.HandleFunc("/", rt.handleProxy)
	rt.mux = mux
	return rt, nil
}

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// Start runs the background health-check loop until ctx is cancelled.
func (rt *Router) Start(ctx context.Context) {
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.CheckHealth(ctx)
		}
	}
}

// CheckHealth probes every backend's /healthz once, concurrently, and
// updates the health flags.
func (rt *Router) CheckHealth(ctx context.Context) {
	var wg sync.WaitGroup
	for _, b := range rt.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, rt.cfg.HealthTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(pctx, "GET", b.name+"/healthz", nil)
			if err != nil {
				b.healthy.Store(false)
				return
			}
			resp, err := rt.transport.RoundTrip(req)
			if err != nil {
				b.healthy.Store(false)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			b.healthy.Store(resp.StatusCode == http.StatusOK)
		}(b)
	}
	wg.Wait()
}

// Healthy reports the currently healthy backend names, sorted.
func (rt *Router) Healthy() []string {
	var out []string
	for _, name := range rt.ring.Nodes() {
		if rt.backends[name].healthy.Load() {
			out = append(out, name)
		}
	}
	return out
}

// --- request classification ---------------------------------------

// routeClass is what the path tells us about placement.
type routeClass int

const (
	classPinned    routeClass = iota // session-scoped: owner or nothing
	classStateless                   // spreadable: bounded-load walk
	classCreate                      // session create: place by (possibly generated) id
	classFanout                      // session list: merge across backends
)

// classify parses an mdserve API path. key is the ring key ("" for
// unkeyed stateless requests); contextName is set for context-scoped
// paths.
func classify(method, path string) (class routeClass, key, contextName string, ok bool) {
	if path == "/v1/contexts" {
		return classStateless, "contexts", "", true
	}
	parts := strings.Split(path, "/")
	// /v1/contexts/{name}/... → ["", "v1", "contexts", name, ...]
	if len(parts) < 5 || parts[1] != "v1" || parts[2] != "contexts" || parts[3] == "" {
		return 0, "", "", false
	}
	name := parts[3]
	switch {
	case len(parts) == 5 && parts[4] == "assess":
		return classStateless, name, name, true
	case len(parts) == 5 && parts[4] == "sessions":
		switch method {
		case http.MethodPost:
			return classCreate, "", name, true
		case http.MethodGet:
			return classFanout, "", name, true
		}
		return 0, "", "", false
	case len(parts) >= 6 && parts[4] == "sessions" && parts[5] != "":
		return classPinned, name + "/" + parts[5], name, true
	}
	return 0, "", "", false
}

// --- routing policies ---------------------------------------------

// owner resolves the pinned backend for a session key; nil when the
// owner is down (the session's state has exactly one home — a
// different backend would just 404).
func (rt *Router) owner(key string) *backend {
	b := rt.backends[rt.ring.Owner(key)]
	if !b.healthy.Load() {
		return nil
	}
	return b
}

// spread picks a backend for stateless work: the bounded-load walk
// starts at the key's owner (cache affinity) and skips unhealthy
// backends and backends above LoadFactor times their fair share of
// in-flight requests. Every candidate overloaded → least-loaded
// healthy backend (shedding is the backend's job, not the router's).
func (rt *Router) spread(key string, skip map[string]bool) *backend {
	healthy := 0
	var total int64
	for _, b := range rt.backends {
		if b.healthy.Load() && !skip[b.name] {
			healthy++
			total += b.inflight.Load()
		}
	}
	if healthy == 0 {
		return nil
	}
	limit := int64(rt.cfg.LoadFactor*float64(total+1)/float64(healthy)) + 1
	var pick, least *backend
	rt.ring.Walk(key, func(name string) bool {
		b := rt.backends[name]
		if !b.healthy.Load() || skip[name] {
			return true
		}
		if least == nil || b.inflight.Load() < least.inflight.Load() {
			least = b
		}
		if b.inflight.Load() < limit {
			pick = b
			return false
		}
		return true
	})
	if pick == nil {
		pick = least
	}
	return pick
}

// --- proxying ------------------------------------------------------

// trackedBody reports whether any request-body byte was consumed — a
// connect failure after the body started flowing is not retry-safe.
type trackedBody struct {
	io.ReadCloser
	read atomic.Bool
}

func (t *trackedBody) Read(p []byte) (int, error) {
	n, err := t.ReadCloser.Read(p)
	if n > 0 {
		t.read.Store(true)
	}
	return n, err
}

// isDialError reports a failure that happened before any bytes reached
// the backend — always safe to retry.
func isDialError(err error) bool {
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

// forward sends one attempt to b, streaming the response back. body
// non-nil replaces the request body (replayable buffer). Returns the
// transport error, if any, for the caller's retry decision.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, b *backend, body []byte, tracked *trackedBody) error {
	start := time.Now()
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	b.requests.Add(1)
	rt.proxied.Add(1)

	out := &http.Request{
		Method: r.Method,
		URL: &url.URL{
			Scheme:   b.url.Scheme,
			Host:     b.url.Host,
			Path:     r.URL.Path,
			RawQuery: r.URL.RawQuery,
		},
		Proto:      "HTTP/1.1",
		ProtoMajor: 1,
		ProtoMinor: 1,
		Host:       b.url.Host,
		Header:     r.Header.Clone(),
	}
	out = out.WithContext(r.Context())
	for _, hop := range []string{"Connection", "Keep-Alive", "Upgrade", "Proxy-Connection", "Te", "Trailer", "Transfer-Encoding"} {
		out.Header.Del(hop)
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		out.Header.Set("X-Forwarded-For", host)
	}
	switch {
	case body != nil:
		out.Body = io.NopCloser(bytes.NewReader(body))
		out.ContentLength = int64(len(body))
	case tracked != nil:
		out.Body = tracked
		out.ContentLength = r.ContentLength
	}

	resp, err := rt.transport.RoundTrip(out)
	if err != nil {
		b.errors.Add(1)
		if !errors.Is(err, context.Canceled) {
			// A backend we cannot reach is unhealthy now; the probe loop
			// restores it when it comes back.
			if isDialError(err) {
				b.healthy.Store(false)
			}
		}
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		b.errors.Add(1)
	}
	h := w.Header()
	for k, vs := range resp.Header {
		for _, v := range vs {
			h.Add(k, v)
		}
	}
	h.Set("X-Mdrouter-Backend", b.name)
	w.WriteHeader(resp.StatusCode)
	// Unframed (chunked) responses are live NDJSON streams: flush each
	// chunk so answers don't sit in the proxy. Framed responses take
	// the plain buffered copy.
	if flusher, ok := w.(http.Flusher); ok && resp.ContentLength < 0 {
		buf := make([]byte, 32<<10)
		for {
			n, rerr := resp.Body.Read(buf)
			if n > 0 {
				if _, werr := w.Write(buf[:n]); werr != nil {
					break
				}
				flusher.Flush()
			}
			if rerr != nil {
				break
			}
		}
	} else {
		_, _ = io.Copy(w, resp.Body)
	}
	b.mu.Lock()
	b.lat.observe(time.Since(start))
	b.mu.Unlock()
	return nil
}

// routerError answers a request the router itself must fail, in the
// backend's error-body vocabulary.
func (rt *Router) routerError(w http.ResponseWriter, status int, code, msg string) {
	if status == http.StatusServiceUnavailable {
		rt.unroutable.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]any{"error": map[string]string{"code": code, "message": msg}})
}

func (rt *Router) handleProxy(w http.ResponseWriter, r *http.Request) {
	class, key, contextName, ok := classify(r.Method, r.URL.Path)
	if !ok {
		rt.routerError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no route for %s %s", r.Method, r.URL.Path))
		return
	}
	switch class {
	case classPinned:
		rt.proxyPinned(w, r, key)
	case classStateless:
		rt.proxyStateless(w, r, key)
	case classCreate:
		rt.proxyCreate(w, r, contextName)
	case classFanout:
		rt.proxySessionList(w, r, contextName)
	}
}

// proxyPinned serves a session-scoped request: the ring owner or 503.
// Retries stay on the owner — only it has the session — and are
// attempted only when no request-body byte was consumed (GETs, or a
// connect failure before the body started flowing).
func (rt *Router) proxyPinned(w http.ResponseWriter, r *http.Request, key string) {
	tracked := &trackedBody{ReadCloser: r.Body}
	for attempt := 0; ; attempt++ {
		b := rt.owner(key)
		if b == nil {
			rt.routerError(w, http.StatusServiceUnavailable, "backend_unavailable",
				fmt.Sprintf("backend owning session key %q is down (session state is not replicated)", key))
			return
		}
		err := rt.forward(w, r, b, nil, tracked)
		if err == nil {
			return
		}
		if attempt < rt.cfg.Retries && isDialError(err) && !tracked.read.Load() {
			b.retries.Add(1)
			continue // owner() re-checks health; a recovered flag retries the same home
		}
		rt.routerError(w, http.StatusBadGateway, "backend_error", err.Error())
		return
	}
}

// proxyStateless serves spreadable work. Connect failures advance to
// the next ring successor; mid-stream failures retry only for GETs
// with the body untouched (there is none).
func (rt *Router) proxyStateless(w http.ResponseWriter, r *http.Request, key string) {
	// Buffer small bodies (assess instances) so a retry can replay.
	var body []byte
	var tracked *trackedBody
	if r.Body != nil && r.ContentLength >= 0 && r.ContentLength <= maxBufferedBody {
		data, err := io.ReadAll(io.LimitReader(r.Body, maxBufferedBody+1))
		if err != nil {
			rt.routerError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("read body: %v", err))
			return
		}
		body = data
	} else {
		tracked = &trackedBody{ReadCloser: r.Body}
	}
	skip := map[string]bool{}
	for attempt := 0; ; attempt++ {
		b := rt.spread(key, skip)
		if b == nil {
			rt.routerError(w, http.StatusServiceUnavailable, "backend_unavailable", "no healthy backend")
			return
		}
		err := rt.forward(w, r, b, body, tracked)
		if err == nil {
			return
		}
		replayable := body != nil || (tracked != nil && !tracked.read.Load())
		if attempt < rt.cfg.Retries && replayable && (isDialError(err) || r.Method == http.MethodGet) {
			b.retries.Add(1)
			skip[b.name] = true
			continue
		}
		rt.routerError(w, http.StatusBadGateway, "backend_error", err.Error())
		return
	}
}

// proxyCreate places a new session. The {context, id} hash decides the
// owner, so the id must exist before the backend sees the request: a
// client-chosen id is used as sent (503 when its owner is down), and a
// missing id is generated by the router — re-rolled until its owner is
// healthy — and injected into the body. Either way the client learns
// the id from the backend's response and every later request for it
// hashes to the same home.
func (rt *Router) proxyCreate(w http.ResponseWriter, r *http.Request, contextName string) {
	data, err := io.ReadAll(io.LimitReader(r.Body, maxBufferedBody+1))
	if err != nil || len(data) > maxBufferedBody {
		rt.routerError(w, http.StatusBadRequest, "bad_request", "session create body unreadable or too large")
		return
	}
	fields := map[string]json.RawMessage{}
	if len(bytes.TrimSpace(data)) > 0 {
		if err := json.Unmarshal(data, &fields); err != nil {
			rt.routerError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("decode body: %v", err))
			return
		}
	}
	var id string
	if raw, ok := fields["id"]; ok {
		if err := json.Unmarshal(raw, &id); err != nil {
			rt.routerError(w, http.StatusBadRequest, "bad_request", "session id must be a string")
			return
		}
	}
	var b *backend
	if id != "" {
		if b = rt.owner(contextName + "/" + id); b == nil {
			rt.routerError(w, http.StatusServiceUnavailable, "backend_unavailable",
				fmt.Sprintf("backend owning session key %q is down", contextName+"/"+id))
			return
		}
	} else {
		// Generate an id whose owner is up. Bounded: with any healthy
		// backend the expected tries are len/healthy.
		for tries := 0; tries < 16*len(rt.backends); tries++ {
			candidate := fmt.Sprintf("r%x", hash64(fmt.Sprintf("%d/%d", rt.genSalt, rt.genSeq.Add(1))))
			if b = rt.owner(contextName + "/" + candidate); b != nil {
				id = candidate
				break
			}
		}
		if b == nil {
			rt.routerError(w, http.StatusServiceUnavailable, "backend_unavailable", "no healthy backend")
			return
		}
		idJSON, _ := json.Marshal(id)
		fields["id"] = idJSON
		if data, err = json.Marshal(fields); err != nil {
			rt.routerError(w, http.StatusInternalServerError, "internal", err.Error())
			return
		}
	}
	for attempt := 0; ; attempt++ {
		err := rt.forward(w, r, b, data, nil)
		if err == nil {
			return
		}
		// A dial failure never reached the backend: re-resolving the
		// owner is safe even for a create.
		if attempt < rt.cfg.Retries && isDialError(err) {
			b.retries.Add(1)
			if b = rt.owner(contextName + "/" + id); b != nil {
				continue
			}
			rt.routerError(w, http.StatusServiceUnavailable, "backend_unavailable",
				fmt.Sprintf("backend owning session key %q is down", contextName+"/"+id))
			return
		}
		rt.routerError(w, http.StatusBadGateway, "backend_error", err.Error())
		return
	}
}

// proxySessionList merges GET .../sessions across every healthy
// backend: sessions live exactly one place each, so the union is the
// cluster's listing. Sorted by id for a deterministic body.
func (rt *Router) proxySessionList(w http.ResponseWriter, r *http.Request, contextName string) {
	type entry struct {
		id  string
		raw json.RawMessage
	}
	var mu sync.Mutex
	var entries []entry
	var firstErr error
	var wg sync.WaitGroup
	for _, name := range rt.ring.Nodes() {
		b := rt.backends[name]
		if !b.healthy.Load() {
			continue
		}
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			b.requests.Add(1)
			req, err := http.NewRequestWithContext(r.Context(), "GET", b.name+r.URL.Path, nil)
			if err == nil {
				var resp *http.Response
				if resp, err = rt.transport.RoundTrip(req); err == nil {
					defer resp.Body.Close()
					var body struct {
						Sessions []json.RawMessage `json:"sessions"`
					}
					if resp.StatusCode != http.StatusOK {
						data, _ := io.ReadAll(resp.Body)
						err = fmt.Errorf("%s: %d %s", b.name, resp.StatusCode, strings.TrimSpace(string(data)))
					} else if err = json.NewDecoder(resp.Body).Decode(&body); err == nil {
						mu.Lock()
						for _, raw := range body.Sessions {
							var idOnly struct {
								ID string `json:"id"`
							}
							_ = json.Unmarshal(raw, &idOnly)
							entries = append(entries, entry{id: idOnly.ID, raw: raw})
						}
						mu.Unlock()
						return
					}
				}
			}
			b.errors.Add(1)
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}(b)
	}
	wg.Wait()
	if firstErr != nil {
		rt.routerError(w, http.StatusBadGateway, "backend_error", firstErr.Error())
		return
	}
	rt.proxied.Add(1)
	sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
	sessions := make([]json.RawMessage, len(entries))
	for i, e := range entries {
		sessions[i] = e.raw
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(map[string]any{"sessions": sessions})
}

// --- observability -------------------------------------------------

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	healthy := rt.Healthy()
	status := "ok"
	code := http.StatusOK
	if len(healthy) == 0 {
		status, code = "no_backends", http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":   status,
		"backends": len(rt.backends),
		"healthy":  len(healthy),
	})
}

// TopologyBackend is one backend's slice of GET /topology.
type TopologyBackend struct {
	URL      string  `json:"url"`
	Healthy  bool    `json:"healthy"`
	KeyShare float64 `json:"key_share"` // fraction of the hash space owned
	Inflight int64   `json:"inflight"`
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	Retries  int64   `json:"retries"`
}

// TopologyResponse is the body of GET /topology: the ring as deployed.
type TopologyResponse struct {
	VNodes     int               `json:"vnodes"`
	LoadFactor float64           `json:"load_factor"`
	Backends   []TopologyBackend `json:"backends"`
}

func (rt *Router) handleTopology(w http.ResponseWriter, r *http.Request) {
	shares := rt.ring.Shares()
	resp := TopologyResponse{VNodes: rt.ring.VNodes(), LoadFactor: rt.cfg.LoadFactor}
	for _, name := range rt.ring.Nodes() {
		b := rt.backends[name]
		resp.Backends = append(resp.Backends, TopologyBackend{
			URL:      name,
			Healthy:  b.healthy.Load(),
			KeyShare: shares[name],
			Inflight: b.inflight.Load(),
			Requests: b.requests.Load(),
			Errors:   b.errors.Load(),
			Retries:  b.retries.Load(),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var sb strings.Builder
	counter := func(metric string, pick func(*backend) int64) {
		fmt.Fprintf(&sb, "# TYPE %s counter\n", metric)
		for _, name := range rt.ring.Nodes() {
			fmt.Fprintf(&sb, "%s{backend=%q} %d\n", metric, name, pick(rt.backends[name]))
		}
	}
	fmt.Fprintf(&sb, "# TYPE mdrouter_requests_total counter\nmdrouter_requests_total %d\n", rt.proxied.Load())
	fmt.Fprintf(&sb, "# TYPE mdrouter_unroutable_total counter\nmdrouter_unroutable_total %d\n", rt.unroutable.Load())
	counter("mdrouter_backend_requests_total", func(b *backend) int64 { return b.requests.Load() })
	counter("mdrouter_backend_errors_total", func(b *backend) int64 { return b.errors.Load() })
	counter("mdrouter_backend_retries_total", func(b *backend) int64 { return b.retries.Load() })
	fmt.Fprintf(&sb, "# TYPE mdrouter_backend_healthy gauge\n")
	for _, name := range rt.ring.Nodes() {
		v := 0
		if rt.backends[name].healthy.Load() {
			v = 1
		}
		fmt.Fprintf(&sb, "mdrouter_backend_healthy{backend=%q} %d\n", name, v)
	}
	fmt.Fprintf(&sb, "# TYPE mdrouter_backend_inflight gauge\n")
	for _, name := range rt.ring.Nodes() {
		fmt.Fprintf(&sb, "mdrouter_backend_inflight{backend=%q} %d\n", name, rt.backends[name].inflight.Load())
	}
	fmt.Fprintf(&sb, "# TYPE mdrouter_request_latency_seconds summary\n")
	for _, name := range rt.ring.Nodes() {
		b := rt.backends[name]
		b.mu.Lock()
		count := b.lat.count
		p50, p99 := b.lat.quantile(0.50), b.lat.quantile(0.99)
		b.mu.Unlock()
		if count == 0 {
			continue
		}
		fmt.Fprintf(&sb, "mdrouter_request_latency_seconds{backend=%q,quantile=\"0.5\"} %.6f\n", name, p50.Seconds())
		fmt.Fprintf(&sb, "mdrouter_request_latency_seconds{backend=%q,quantile=\"0.99\"} %.6f\n", name, p99.Seconds())
		fmt.Fprintf(&sb, "mdrouter_request_latency_seconds_count{backend=%q} %d\n", name, count)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = io.WriteString(w, sb.String())
}

// quantileRing keeps the last cap durations; quantiles over a sorted
// copy at scrape time (same shape as mdserve's ring).
type quantileRing struct {
	samples []time.Duration
	next    int
	count   int64
}

func newQuantileRing(capacity int) *quantileRing {
	return &quantileRing{samples: make([]time.Duration, 0, capacity)}
}

func (r *quantileRing) observe(d time.Duration) {
	if len(r.samples) < cap(r.samples) {
		r.samples = append(r.samples, d)
	} else {
		r.samples[r.next] = d
	}
	r.next = (r.next + 1) % cap(r.samples)
	r.count++
}

func (r *quantileRing) quantile(p float64) time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), r.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(p*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
