package parser

import (
	"fmt"
	"os"
	"strings"
	"unicode"
	"unicode/utf8"

	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/hm"
)

// NamedQuery is a query with the name it was declared under.
type NamedQuery struct {
	Name  string
	Query *datalog.Query
}

// File is a parsed .mdq file: the assembled ontology, its named
// queries, and the optional quality-context declarations.
type File struct {
	Ontology *core.Ontology
	Queries  []NamedQuery
	// Context holds the quality-context declarations (input data,
	// mappings, quality rules, version definitions); nil when the
	// file declares none.
	Context *ContextSpec
}

// QueryByName returns the named query, or nil.
func (f *File) QueryByName(name string) *datalog.Query {
	for _, nq := range f.Queries {
		if nq.Name == name {
			return nq.Query
		}
	}
	return nil
}

// Parse parses .mdq source text.
func Parse(src string) (*File, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{
		toks: toks,
		file: &File{Ontology: core.NewOntology()},
		dims: map[string]*hm.Dimension{},
	}
	if err := p.parseFile(); err != nil {
		return nil, err
	}
	return p.file, nil
}

// ParseQuery parses one standalone conjunctive query in the .mdq query
// syntax without the leading "query" keyword: "name(vars) <- body." —
// the form network clients send, e.g. `tomtemp(t, v) <-
// Measurements(t, "Tom Waits", v).` A missing trailing period is
// tolerated.
func ParseQuery(src string) (*datalog.Query, error) {
	s := strings.TrimSpace(src)
	if s == "" {
		return nil, fmt.Errorf("parser: empty query")
	}
	if !strings.HasSuffix(s, ".") {
		s += "."
	}
	f, err := Parse("query " + s + "\n")
	if err != nil {
		return nil, err
	}
	if len(f.Queries) != 1 {
		return nil, fmt.Errorf("parser: expected exactly one query, got %d", len(f.Queries))
	}
	return f.Queries[0].Query, nil
}

// ParseFile reads and parses a .mdq file from disk.
func ParseFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f, err := Parse(string(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

type parser struct {
	toks []token
	pos  int
	file *File
	// dims holds dimensions being built; they are registered with the
	// ontology when their block closes.
	dims map[string]*hm.Dimension
}

func (p *parser) peek() token         { return p.toks[p.pos] }
func (p *parser) next() token         { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) at(k tokenKind) bool { return p.toks[p.pos].kind == k }

func (p *parser) errorf(t token, format string, args ...any) error {
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, p.errorf(t, "expected %s, got %s %q", k, t.kind, t.text)
	}
	return t, nil
}

func (p *parser) expectKeyword(word string) (token, error) {
	t := p.next()
	if t.kind != tokIdent || t.text != word {
		return t, p.errorf(t, "expected %q, got %q", word, t.text)
	}
	return t, nil
}

// acceptKeyword consumes the keyword if present.
func (p *parser) acceptKeyword(word string) bool {
	if p.at(tokIdent) && p.peek().text == word {
		p.next()
		return true
	}
	return false
}

func (p *parser) parseFile() error {
	for {
		t := p.peek()
		switch {
		case t.kind == tokEOF:
			return nil
		case t.kind == tokIdent && t.text == "dimension":
			if err := p.parseDimension(); err != nil {
				return err
			}
		case t.kind == tokIdent && t.text == "relation":
			if err := p.parseRelation(); err != nil {
				return err
			}
		case t.kind == tokIdent && t.text == "rule":
			if err := p.parseRule(); err != nil {
				return err
			}
		case t.kind == tokIdent && t.text == "egd":
			if err := p.parseEGD(); err != nil {
				return err
			}
		case t.kind == tokIdent && t.text == "constraint":
			if err := p.parseConstraint(); err != nil {
				return err
			}
		case t.kind == tokIdent && t.text == "query":
			if err := p.parseQuery(); err != nil {
				return err
			}
		case t.kind == tokIdent && t.text == "input":
			if err := p.parseInput(); err != nil {
				return err
			}
		case t.kind == tokIdent && t.text == "mapping":
			if err := p.parseMapping(); err != nil {
				return err
			}
		case t.kind == tokIdent && t.text == "quality":
			if err := p.parseQualityRule(); err != nil {
				return err
			}
		case t.kind == tokIdent && t.text == "version":
			if err := p.parseVersion(); err != nil {
				return err
			}
		default:
			return p.errorf(t, "expected a declaration (dimension, relation, rule, egd, constraint, query, input, mapping, quality, version), got %q", t.text)
		}
	}
}

// name parses an identifier or quoted string used as a name (members
// and data values may need quoting: "Sep/5").
func (p *parser) name() (string, error) {
	t := p.next()
	switch t.kind {
	case tokIdent, tokString, tokNumber:
		return t.text, nil
	default:
		return "", p.errorf(t, "expected a name, got %s", t.kind)
	}
}

func (p *parser) parseDimension() error {
	p.next() // 'dimension'
	nameTok, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return err
	}
	schema := hm.NewDimensionSchema(nameTok.text)
	type rollup struct{ child, parent string }
	type memberDecl struct{ member, category string }
	var edges [][2]string
	var members []memberDecl
	var rollups []rollup
	for !p.at(tokRBrace) {
		t := p.peek()
		switch {
		case t.kind == tokIdent && t.text == "category":
			p.next()
			for {
				cat, err := p.name()
				if err != nil {
					return err
				}
				if err := schema.AddCategory(cat); err != nil {
					return p.errorf(t, "%v", err)
				}
				if !p.at(tokComma) {
					break
				}
				p.next()
			}
			if _, err := p.expect(tokSemicolon); err != nil {
				return err
			}
		case t.kind == tokIdent && t.text == "member":
			p.next()
			var ms []string
			for {
				m, err := p.name()
				if err != nil {
					return err
				}
				ms = append(ms, m)
				if !p.at(tokComma) {
					break
				}
				p.next()
			}
			if _, err := p.expectKeyword("in"); err != nil {
				return err
			}
			cat, err := p.name()
			if err != nil {
				return err
			}
			for _, m := range ms {
				members = append(members, memberDecl{member: m, category: cat})
			}
			if _, err := p.expect(tokSemicolon); err != nil {
				return err
			}
		case t.kind == tokIdent && t.text == "rollup":
			p.next()
			child, err := p.name()
			if err != nil {
				return err
			}
			if _, err := p.expect(tokArrow); err != nil {
				return err
			}
			parent, err := p.name()
			if err != nil {
				return err
			}
			rollups = append(rollups, rollup{child: child, parent: parent})
			if _, err := p.expect(tokSemicolon); err != nil {
				return err
			}
		case t.kind == tokIdent || t.kind == tokString:
			// "Child -> Parent;" category edge.
			child, err := p.name()
			if err != nil {
				return err
			}
			if _, err := p.expect(tokArrow); err != nil {
				return err
			}
			parent, err := p.name()
			if err != nil {
				return err
			}
			edges = append(edges, [2]string{child, parent})
			if _, err := p.expect(tokSemicolon); err != nil {
				return err
			}
		default:
			return p.errorf(t, "expected category, member, rollup, an edge, or '}', got %q", t.text)
		}
	}
	p.next() // '}'
	for _, e := range edges {
		if err := schema.AddEdge(e[0], e[1]); err != nil {
			return p.errorf(nameTok, "%v", err)
		}
	}
	dim := hm.NewDimension(schema)
	for _, m := range members {
		if err := dim.AddMember(m.category, m.member); err != nil {
			return p.errorf(nameTok, "%v", err)
		}
	}
	for _, r := range rollups {
		if err := dim.AddRollup(r.child, r.parent); err != nil {
			return p.errorf(nameTok, "%v", err)
		}
	}
	if err := p.file.Ontology.AddDimension(dim); err != nil {
		return p.errorf(nameTok, "%v", err)
	}
	p.dims[nameTok.text] = dim
	return nil
}

func (p *parser) parseRelation() error {
	p.next() // 'relation'
	nameTok, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	var attrs []core.Attribute
	for !p.at(tokRParen) {
		attrTok, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		if p.at(tokColon) {
			p.next()
			dimTok, err := p.expect(tokIdent)
			if err != nil {
				return err
			}
			if _, err := p.expect(tokDot); err != nil {
				return err
			}
			catTok, err := p.expect(tokIdent)
			if err != nil {
				return err
			}
			attrs = append(attrs, core.Cat(attrTok.text, dimTok.text, catTok.text))
		} else {
			attrs = append(attrs, core.NonCat(attrTok.text))
		}
		if p.at(tokComma) || p.at(tokSemicolon) {
			p.next()
		}
	}
	p.next() // ')'
	rel := core.NewCategoricalRelation(nameTok.text, attrs...)
	if err := p.file.Ontology.AddRelation(rel); err != nil {
		return p.errorf(nameTok, "%v", err)
	}
	// Optional data block.
	if !p.at(tokLBrace) {
		return nil
	}
	p.next()
	for !p.at(tokRBrace) {
		unchecked := false
		if p.at(tokBang) {
			p.next()
			unchecked = true
		}
		open, err := p.expect(tokLParen)
		if err != nil {
			return err
		}
		var values []string
		for !p.at(tokRParen) {
			v, err := p.name()
			if err != nil {
				return err
			}
			values = append(values, v)
			if p.at(tokComma) || p.at(tokSemicolon) {
				p.next()
			}
		}
		p.next() // ')'
		if _, err := p.expect(tokSemicolon); err != nil {
			return err
		}
		if unchecked {
			err = p.file.Ontology.AddFactUnchecked(nameTok.text, values...)
		} else {
			err = p.file.Ontology.AddFact(nameTok.text, values...)
		}
		if err != nil {
			return p.errorf(open, "%v", err)
		}
	}
	p.next() // '}'
	return nil
}

// term interprets an argument token in rule/query position: lowercase
// identifiers are variables; uppercase identifiers, strings and
// numbers are constants.
func (p *parser) term() (datalog.Term, error) {
	t := p.next()
	switch t.kind {
	case tokString, tokNumber:
		return datalog.C(t.text), nil
	case tokIdent:
		r, _ := utf8.DecodeRuneInString(t.text)
		if unicode.IsLower(r) || t.text == "_" {
			return datalog.V(t.text), nil
		}
		return datalog.C(t.text), nil
	default:
		return datalog.Term{}, p.errorf(t, "expected a term, got %s", t.kind)
	}
}

// atom parses Pred(t1, t2; t3).
func (p *parser) atom() (datalog.Atom, error) {
	nameTok, err := p.expect(tokIdent)
	if err != nil {
		return datalog.Atom{}, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return datalog.Atom{}, err
	}
	var args []datalog.Term
	for !p.at(tokRParen) {
		tm, err := p.term()
		if err != nil {
			return datalog.Atom{}, err
		}
		args = append(args, tm)
		if p.at(tokComma) || p.at(tokSemicolon) {
			p.next()
		}
	}
	p.next() // ')'
	return datalog.Atom{Pred: nameTok.text, Args: args}, nil
}

func compOpOf(k tokenKind) (datalog.CompOp, bool) {
	switch k {
	case tokEq:
		return datalog.OpEq, true
	case tokNe:
		return datalog.OpNe, true
	case tokLt:
		return datalog.OpLt, true
	case tokLe:
		return datalog.OpLe, true
	case tokGt:
		return datalog.OpGt, true
	case tokGe:
		return datalog.OpGe, true
	default:
		return 0, false
	}
}

// bodyItem is one parsed element of a body: an atom, a negated atom,
// or a comparison.
type bodyItem struct {
	atom    *datalog.Atom
	negated bool
	comp    *datalog.Comparison
}

// parseBody parses a comma-separated list of body items terminated by
// '.' (consumed).
func (p *parser) parseBody(allowNeg, allowComp bool) ([]bodyItem, error) {
	var items []bodyItem
	for {
		var it bodyItem
		switch {
		case p.acceptKeyword("not"):
			if !allowNeg {
				return nil, p.errorf(p.peek(), "negated atoms are not allowed here")
			}
			a, err := p.atom()
			if err != nil {
				return nil, err
			}
			it = bodyItem{atom: &a, negated: true}
		default:
			// Could be an atom (IDENT '(') or a comparison
			// (term op term).
			if p.at(tokIdent) && p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tokLParen {
				a, err := p.atom()
				if err != nil {
					return nil, err
				}
				it = bodyItem{atom: &a}
			} else {
				l, err := p.term()
				if err != nil {
					return nil, err
				}
				opTok := p.next()
				op, ok := compOpOf(opTok.kind)
				if !ok {
					return nil, p.errorf(opTok, "expected a comparison operator, got %s", opTok.kind)
				}
				if !allowComp {
					return nil, p.errorf(opTok, "comparisons are not allowed here")
				}
				r, err := p.term()
				if err != nil {
					return nil, err
				}
				it = bodyItem{comp: &datalog.Comparison{Op: op, L: l, R: r}}
			}
		}
		items = append(items, it)
		sep := p.next()
		switch sep.kind {
		case tokComma:
			continue
		case tokDot:
			return items, nil
		default:
			return nil, p.errorf(sep, "expected ',' or '.', got %s", sep.kind)
		}
	}
}

func (p *parser) parseRule() error {
	p.next() // 'rule'
	idTok, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokColon); err != nil {
		return err
	}
	// Optional 'exists v1, v2' existential declaration.
	var declared []string
	if p.acceptKeyword("exists") {
		for {
			v, err := p.expect(tokIdent)
			if err != nil {
				return err
			}
			declared = append(declared, v.text)
			if !p.at(tokComma) {
				break
			}
			p.next()
		}
	}
	var head []datalog.Atom
	for {
		a, err := p.atom()
		if err != nil {
			return err
		}
		head = append(head, a)
		if p.at(tokComma) {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(tokImplied); err != nil {
		return err
	}
	items, err := p.parseBody(false, false)
	if err != nil {
		return err
	}
	var body []datalog.Atom
	for _, it := range items {
		body = append(body, *it.atom)
	}
	tgd := datalog.NewTGD(idTok.text, head, body)
	if len(declared) > 0 {
		ex := map[string]bool{}
		for _, v := range tgd.ExistentialVars() {
			ex[v.Name] = true
		}
		for _, d := range declared {
			if !ex[d] {
				return p.errorf(idTok, "declared existential %s also occurs in the body (or not in the head)", d)
			}
		}
		if len(declared) != len(ex) {
			return p.errorf(idTok, "rule has %d existential variables but %d declared", len(ex), len(declared))
		}
	}
	if err := p.file.Ontology.AddRule(tgd); err != nil {
		return p.errorf(idTok, "%v", err)
	}
	return nil
}

func (p *parser) parseEGD() error {
	p.next() // 'egd'
	idTok, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokColon); err != nil {
		return err
	}
	l, err := p.term()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokEq); err != nil {
		return err
	}
	r, err := p.term()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokImplied); err != nil {
		return err
	}
	items, err := p.parseBody(false, false)
	if err != nil {
		return err
	}
	var body []datalog.Atom
	for _, it := range items {
		body = append(body, *it.atom)
	}
	egd := datalog.NewEGD(idTok.text, l, r, body)
	if err := p.file.Ontology.AddEGD(egd); err != nil {
		return p.errorf(idTok, "%v", err)
	}
	return nil
}

func (p *parser) parseConstraint() error {
	p.next() // 'constraint'
	idTok, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokColon); err != nil {
		return err
	}
	if _, err := p.expect(tokBang); err != nil {
		return err
	}
	if _, err := p.expect(tokImplied); err != nil {
		return err
	}
	items, err := p.parseBody(true, true)
	if err != nil {
		return err
	}
	nc := &datalog.NC{ID: idTok.text}
	for _, it := range items {
		switch {
		case it.comp != nil:
			nc.Conds = append(nc.Conds, *it.comp)
		case it.negated:
			nc.Body = append(nc.Body, datalog.Neg(*it.atom))
		default:
			nc.Body = append(nc.Body, datalog.Pos(*it.atom))
		}
	}
	if err := p.file.Ontology.AddNC(nc); err != nil {
		return p.errorf(idTok, "%v", err)
	}
	return nil
}

func (p *parser) parseQuery() error {
	p.next() // 'query'
	idTok, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	var ansVars []datalog.Term
	for !p.at(tokRParen) {
		tm, err := p.term()
		if err != nil {
			return err
		}
		if !tm.IsVar() {
			return p.errorf(idTok, "query head arguments must be variables, got %s", tm)
		}
		ansVars = append(ansVars, tm)
		if p.at(tokComma) {
			p.next()
		}
	}
	p.next() // ')'
	if _, err := p.expect(tokImplied); err != nil {
		return err
	}
	items, err := p.parseBody(true, true)
	if err != nil {
		return err
	}
	q := &datalog.Query{Head: datalog.Atom{Pred: idTok.text, Args: ansVars}}
	for _, it := range items {
		switch {
		case it.comp != nil:
			q.Conds = append(q.Conds, *it.comp)
		case it.negated:
			q.Negated = append(q.Negated, *it.atom)
		default:
			q.Body = append(q.Body, *it.atom)
		}
	}
	if err := q.Validate(); err != nil {
		return p.errorf(idTok, "%v", err)
	}
	for _, existing := range p.file.Queries {
		if existing.Name == idTok.text {
			return p.errorf(idTok, "duplicate query name %s", idTok.text)
		}
	}
	p.file.Queries = append(p.file.Queries, NamedQuery{Name: idTok.text, Query: q})
	return nil
}

// FormatHospitalExample returns a complete .mdq rendering of the
// paper's running example; used by the quickstart, tests and as format
// documentation.
func FormatHospitalExample() string {
	return strings.TrimLeft(hospitalMDQ, "\n")
}

const hospitalMDQ = `
# The running example of Milani, Bertossi & Ariyan (ICDE 2014):
# Hospital and Time dimensions (Fig. 1), categorical relations with
# the data of Tables III-IV, dimensional rules (7) and (8), EGD (6)
# and the "intensive care closed since August 2005" constraint.

dimension Hospital {
  category Ward; category Unit; category Institution;
  Ward -> Unit;
  Unit -> Institution;
  member W1, W2, W3, W4 in Ward;
  member Standard, Intensive, Terminal in Unit;
  member H1, H2 in Institution;
  rollup W1 -> Standard;  rollup W2 -> Standard;
  rollup W3 -> Intensive; rollup W4 -> Terminal;
  rollup Standard -> H1;  rollup Intensive -> H1;
  rollup Terminal -> H1;
}

dimension Time {
  category Day; category Month;
  Day -> Month;
  member "Sep/5", "Sep/6", "Sep/7", "Sep/9" in Day;
  member "2005-08", "2005-09" in Month;
  rollup "Sep/5" -> "2005-09"; rollup "Sep/6" -> "2005-09";
  rollup "Sep/7" -> "2005-09"; rollup "Sep/9" -> "2005-09";
}

relation PatientWard(Ward: Hospital.Ward, Day: Time.Day; Patient) {
  (W1, "Sep/5", "Tom Waits");
  (W2, "Sep/6", "Tom Waits");
  (W3, "Sep/7", "Tom Waits");
  (W4, "Sep/9", "Tom Waits");
}

relation PatientUnit(Unit: Hospital.Unit, Day: Time.Day; Patient)

relation WorkingSchedules(Unit: Hospital.Unit, Day: Time.Day; Nurse, Type) {
  (Intensive, "Sep/5", Cathy, "cert.");
  (Standard, "Sep/5", Helen, "cert.");
  (Standard, "Sep/6", Helen, "cert.");
  (Terminal, "Sep/5", Susan, "non-c.");
  (Standard, "Sep/9", Mark, "non-c.");
}

relation Shifts(Ward: Hospital.Ward, Day: Time.Day; Nurse, Shift) {
  (W4, "Sep/5", Cathy, night);
  (W1, "Sep/6", Helen, morning);
  (W4, "Sep/5", Susan, evening);
}

relation Thermometer(Ward: Hospital.Ward; ThermType, Nurse) {
  (W1, Oral, Helen);
  (W2, Oral, Helen);
  (W4, Tympanic, Susan);
}

# Rule (7): upward navigation Ward -> Unit.
rule r7: PatientUnit(u, d; p) <- PatientWard(w, d; p), UnitWard(u, w).

# Rule (8): downward navigation Unit -> Ward with an invented shift.
rule r8: exists z Shifts(w, d; n, z) <-
  WorkingSchedules(u, d; n, t), UnitWard(u, w).

# EGD (6): thermometers within a unit share a type.
egd e6: t = t2 <- Thermometer(w, t; n), Thermometer(w2, t2; n2),
  UnitWard(u, w), UnitWard(u, w2).

# Example 1's guideline: intensive care closed since August 2005.
constraint closed: ! <- PatientWard(w, d; p), UnitWard(Intensive, w),
  MonthDay(m, d), m >= "2005-08".

# Example 5: when does Mark work in ward W1?
query marks(d) <- Shifts(W1, d, Mark, s).

# Example 1: Tom Waits' units by day.
query tomunits(u, d) <- PatientUnit(u, d, "Tom Waits").
`
