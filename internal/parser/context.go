package parser

import (
	"fmt"

	"repro/internal/datalog"
	"repro/internal/eval"
	"repro/internal/quality"
	"repro/internal/storage"
)

// ContextSpec collects the quality-context declarations of a .mdq file
// (Section V of the paper): contextual mappings, quality predicate
// rules and quality version definitions, plus the input relations that
// make up the instance D under assessment.
//
// Syntax:
//
//	input Measurements(Time, Patient, Value) {
//	  ("Sep/5-12:10", "Tom Waits", 38.2);
//	}
//	mapping m1: Measurement_c(t, p, v) <- Measurements(t, p, v).
//	quality q1: TakenByNurse(t, p, n, y) <- WorkingSchedules(u, d, n, y),
//	            DayTime(d, t), PatientUnit(u, d, p).
//	version Measurements_q of Measurements:
//	  Measurements_q(t, p, v) <- Measurement_x(t, p, v, y, b),
//	  y = "cert.", b = B1.
type ContextSpec struct {
	// Input is the instance under assessment (the paper's D).
	Input *storage.Instance
	// Mappings are the D -> C mapping rules.
	Mappings []*eval.Rule
	// QualityRules define contextual/quality predicates P_i.
	QualityRules []*eval.Rule
	// Versions lists quality-version definitions in declaration order.
	Versions []VersionSpec
}

// VersionSpec is one quality version: the original relation, the
// version predicate and its defining rules. It is an alias of
// quality.VersionSpec so parsed declarations flow into a
// quality.Config unchanged.
type VersionSpec = quality.VersionSpec

// HasContext reports whether the file declared any context elements.
func (f *File) HasContext() bool {
	c := f.Context
	return c != nil && (c.Input.TotalTuples() > 0 || len(c.Mappings) > 0 ||
		len(c.QualityRules) > 0 || len(c.Versions) > 0)
}

// ContextConfig assembles the file's context declarations into a
// quality.Config, ready to extend (chase bounds, external sources)
// before building the immutable context.
func (f *File) ContextConfig() (quality.Config, error) {
	if f.Context == nil {
		return quality.Config{}, fmt.Errorf("mdq: file declares no quality context")
	}
	// The slices are copied so appending options to the returned
	// Config can never write into the File's backing arrays (two
	// contexts built from one parsed file must not share state).
	return quality.Config{
		Mappings:     append([]*eval.Rule(nil), f.Context.Mappings...),
		QualityRules: append([]*eval.Rule(nil), f.Context.QualityRules...),
		Versions:     append([]VersionSpec(nil), f.Context.Versions...),
	}, nil
}

// BuildContext assembles an immutable quality.Context from the file's
// ontology and context declarations.
func (f *File) BuildContext() (*quality.Context, error) {
	cfg, err := f.ContextConfig()
	if err != nil {
		return nil, err
	}
	return quality.NewContext(f.Ontology, cfg)
}

// FormatHospitalQualityExample returns the running example extended
// with the Example 7 quality context in .mdq form: the Table I input,
// the contextual mapping, the quality predicates and the quality
// version definition of Measurements_q.
func FormatHospitalQualityExample() string {
	return FormatHospitalExample() + hospitalContextMDQ
}

const hospitalContextMDQ = `
# ---- Quality context (Example 7 / Figure 2) ----

# The instance D under assessment: Table I.
input Measurements(Time, Patient, Value) {
  ("Sep/5-12:10", "Tom Waits", "38.2");
  ("Sep/6-11:50", "Tom Waits", "37.1");
  ("Sep/7-12:15", "Tom Waits", "37.7");
  ("Sep/9-12:00", "Tom Waits", "37.0");
  ("Sep/6-11:05", "Lou Reed", "37.5");
  ("Sep/5-12:05", "Lou Reed", "38.0");
}

# The paper's Time dimension reaches the Time (timestamp) level; the
# compact example above stops at Day, so the context carries the
# day-of-time pairs it needs as an auxiliary contextual predicate fed
# by a mapping over the input timestamps.
mapping daypart: DayOf(t, d) <- Measurements(t, p, v), Clock(t, d).

# Clock is contextual data: timestamp -> day.
input Clock(Time, Day) {
  ("Sep/5-12:10", "Sep/5");
  ("Sep/6-11:50", "Sep/6");
  ("Sep/7-12:15", "Sep/7");
  ("Sep/9-12:00", "Sep/9");
  ("Sep/6-11:05", "Sep/6");
  ("Sep/5-12:05", "Sep/5");
}

quality nurse: TakenByNurse(t, p, n, y) <-
  WorkingSchedules(u, d, n, y), DayOf(t, d), PatientUnit(u, d, p).

quality therm: TakenWithTherm(t, p) <-
  PatientUnit(Standard, d, p), DayOf(t, d).

version Measurements_q of Measurements:
  Measurements_q(t, p, v) <- Measurements(t, p, v),
  TakenByNurse(t, p, n, y), TakenWithTherm(t, p), y = "cert.".
`

// ensureContext lazily allocates the spec.
func (p *parser) ensureContext() *ContextSpec {
	if p.file.Context == nil {
		p.file.Context = &ContextSpec{Input: storage.NewInstance()}
	}
	return p.file.Context
}

// parseInput parses an input relation with data:
// input Name(attr, ...) { (v, ...); ... }
func (p *parser) parseInput() error {
	p.next() // 'input'
	nameTok, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	var attrs []string
	for !p.at(tokRParen) {
		a, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		attrs = append(attrs, a.text)
		if p.at(tokComma) || p.at(tokSemicolon) {
			p.next()
		}
	}
	p.next() // ')'
	spec := p.ensureContext()
	if _, err := spec.Input.CreateRelation(nameTok.text, attrs...); err != nil {
		return p.errorf(nameTok, "%v", err)
	}
	if !p.at(tokLBrace) {
		return nil
	}
	p.next()
	for !p.at(tokRBrace) {
		open, err := p.expect(tokLParen)
		if err != nil {
			return err
		}
		var values []datalog.Term
		for !p.at(tokRParen) {
			v, err := p.name()
			if err != nil {
				return err
			}
			values = append(values, datalog.C(v))
			if p.at(tokComma) || p.at(tokSemicolon) {
				p.next()
			}
		}
		p.next() // ')'
		if _, err := p.expect(tokSemicolon); err != nil {
			return err
		}
		if _, err := spec.Input.Insert(nameTok.text, values...); err != nil {
			return p.errorf(open, "%v", err)
		}
	}
	p.next() // '}'
	return nil
}

// parseEvalRule parses "id: Head <- items ." into an eval.Rule,
// shared by mapping and quality statements.
func (p *parser) parseEvalRule() (*eval.Rule, error) {
	idTok, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokColon); err != nil {
		return nil, err
	}
	head, err := p.atom()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokImplied); err != nil {
		return nil, err
	}
	items, err := p.parseBody(true, true)
	if err != nil {
		return nil, err
	}
	rule := &eval.Rule{ID: idTok.text, Head: head}
	for _, it := range items {
		switch {
		case it.comp != nil:
			rule.Conds = append(rule.Conds, *it.comp)
		case it.negated:
			rule.Negated = append(rule.Negated, *it.atom)
		default:
			rule.Body = append(rule.Body, *it.atom)
		}
	}
	if err := rule.Validate(); err != nil {
		return nil, p.errorf(idTok, "%v", err)
	}
	return rule, nil
}

// parseMapping parses "mapping id: Head <- body ."
func (p *parser) parseMapping() error {
	p.next() // 'mapping'
	rule, err := p.parseEvalRule()
	if err != nil {
		return err
	}
	spec := p.ensureContext()
	spec.Mappings = append(spec.Mappings, rule)
	return nil
}

// parseQualityRule parses "quality id: Head <- body ."
func (p *parser) parseQualityRule() error {
	p.next() // 'quality'
	rule, err := p.parseEvalRule()
	if err != nil {
		return err
	}
	spec := p.ensureContext()
	spec.QualityRules = append(spec.QualityRules, rule)
	return nil
}

// parseVersion parses
// "version Pred of Original: Head <- body ."
func (p *parser) parseVersion() error {
	p.next() // 'version'
	predTok, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expectKeyword("of"); err != nil {
		return err
	}
	origTok, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokColon); err != nil {
		return err
	}
	head, err := p.atom()
	if err != nil {
		return err
	}
	if head.Pred != predTok.text {
		return p.errorf(predTok, "version rule head is %s, want %s", head.Pred, predTok.text)
	}
	if _, err := p.expect(tokImplied); err != nil {
		return err
	}
	items, err := p.parseBody(true, true)
	if err != nil {
		return err
	}
	rule := &eval.Rule{ID: "version-" + predTok.text, Head: head}
	for _, it := range items {
		switch {
		case it.comp != nil:
			rule.Conds = append(rule.Conds, *it.comp)
		case it.negated:
			rule.Negated = append(rule.Negated, *it.atom)
		default:
			rule.Body = append(rule.Body, *it.atom)
		}
	}
	if err := rule.Validate(); err != nil {
		return p.errorf(predTok, "%v", err)
	}
	spec := p.ensureContext()
	for i := range spec.Versions {
		v := &spec.Versions[i]
		if v.Pred == predTok.text {
			if v.Original != origTok.text {
				return p.errorf(origTok, "version %s already defined over %s", v.Pred, v.Original)
			}
			rule.ID = fmt.Sprintf("version-%s-%d", predTok.text, len(v.Rules))
			v.Rules = append(v.Rules, rule)
			return nil
		}
	}
	spec.Versions = append(spec.Versions, VersionSpec{
		Original: origTok.text,
		Pred:     predTok.text,
		Rules:    []*eval.Rule{rule},
	})
	return nil
}
