package parser

import (
	"context"
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	dl "repro/internal/datalog"
	"repro/internal/qa"
)

func TestParseHospitalExample(t *testing.T) {
	f, err := Parse(FormatHospitalExample())
	if err != nil {
		t.Fatal(err)
	}
	o := f.Ontology
	if got := o.Dimensions(); len(got) != 2 {
		t.Fatalf("dimensions = %v", got)
	}
	hosp := o.Dimension("Hospital")
	if hosp == nil || hosp.MemberCount() != 9 {
		t.Fatalf("Hospital members = %d, want 9", hosp.MemberCount())
	}
	if up, err := hosp.RollupOne("W1", "Institution"); err != nil || up != "H1" {
		t.Errorf("W1 rolls to %q (%v), want H1", up, err)
	}
	if got := len(o.Relations()); got != 5 {
		t.Errorf("relations = %v", o.Relations())
	}
	if o.Data().Relation("PatientWard").Len() != 4 {
		t.Errorf("PatientWard = %d tuples", o.Data().Relation("PatientWard").Len())
	}
	if len(o.Rules()) != 2 || len(o.EGDs()) != 1 || len(o.NCs()) != 1 {
		t.Errorf("rules/egds/ncs = %d/%d/%d", len(o.Rules()), len(o.EGDs()), len(o.NCs()))
	}
	if len(f.Queries) != 2 {
		t.Fatalf("queries = %d", len(f.Queries))
	}
	if f.QueryByName("marks") == nil || f.QueryByName("nope") != nil {
		t.Error("QueryByName wrong")
	}
}

func TestParsedOntologyAnswersExample5(t *testing.T) {
	// End-to-end through the text format: parse, compile, answer.
	f, err := Parse(FormatHospitalExample())
	if err != nil {
		t.Fatal(err)
	}
	comp, err := f.Ontology.Compile(core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !comp.Report.WeaklySticky {
		t.Error("parsed ontology must classify as WS")
	}
	ans, err := qa.Answer(context.Background(), comp.Program, comp.Instance, f.QueryByName("marks"), qa.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 1 || ans.All()[0].Terms[0] != dl.C("Sep/9") {
		t.Errorf("marks answers = %v, want Sep/9", ans)
	}
}

func TestTermConventions(t *testing.T) {
	src := `
dimension D {
  category C;
  member M1 in C;
}
relation R(A: D.C; B)
rule r1: R(c, x) <- R(c, x).
query q(x) <- R(M1, x), x != "lit", x < 10.
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	q := f.QueryByName("q")
	if q == nil {
		t.Fatal("query missing")
	}
	// M1 is uppercase: constant; x lowercase: variable.
	if !q.Body[0].Args[0].IsConst() || q.Body[0].Args[0].Name != "M1" {
		t.Errorf("M1 parsed as %v", q.Body[0].Args[0])
	}
	if !q.Body[0].Args[1].IsVar() {
		t.Errorf("x parsed as %v", q.Body[0].Args[1])
	}
	if len(q.Conds) != 2 {
		t.Fatalf("conds = %v", q.Conds)
	}
	if q.Conds[0].Op != dl.OpNe || q.Conds[0].R != dl.C("lit") {
		t.Errorf("cond 0 = %v", q.Conds[0])
	}
	if q.Conds[1].Op != dl.OpLt || q.Conds[1].R != dl.C("10") {
		t.Errorf("cond 1 = %v", q.Conds[1])
	}
}

func TestUncheckedTuples(t *testing.T) {
	src := `
dimension D {
  category C;
  member M1 in C;
}
relation R(A: D.C; B) {
  (M1, ok);
  !(Ghost, dirty);
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if f.Ontology.Data().Relation("R").Len() != 2 {
		t.Error("both tuples must load")
	}
	// Without the bang, the dirty tuple is rejected.
	bad := strings.Replace(src, "!(Ghost", "(Ghost", 1)
	if _, err := Parse(bad); err == nil {
		t.Error("checked dirty tuple must fail")
	}
}

func TestExistsDeclaration(t *testing.T) {
	base := `
dimension D {
  category C1; category C2;
  C1 -> C2;
  member A1 in C1; member B1 in C2;
  rollup A1 -> B1;
}
relation R(A: D.C2; X)
relation S(A: D.C1; X, Y)
`
	ok := base + "rule r: exists z S(c, x, z) <- R(p, x), C2C1(p, c).\n"
	if _, err := Parse(ok); err != nil {
		t.Fatalf("valid exists rejected: %v", err)
	}
	// Declaring a universal variable as existential fails.
	bad := base + "rule r: exists x S(c, x, z) <- R(p, x), C2C1(p, c).\n"
	if _, err := Parse(bad); err == nil {
		t.Error("declared existential occurring in body must fail")
	}
	// Missing declaration (1 declared of 0 actual).
	bad2 := base + "rule r: exists z S(c, x, x) <- R(p, x), C2C1(p, c).\n"
	if _, err := Parse(bad2); err == nil {
		t.Error("declared count mismatch must fail")
	}
}

func TestParseErrorsCarryPositions(t *testing.T) {
	cases := []struct {
		src      string
		wantLine int
		frag     string
	}{
		{"dimensio X {}", 1, "expected a declaration"},
		{"dimension D {\n  categry C;\n}", 2, "expected '->'"},
		{"dimension D {\n  category C;\n  category C;\n}", 3, "already declared"},
		{"dimension D { category C; }\nrelation R(A: D.Nope; B)", 2, "no category"},
		{"query q(x) <- ", 1, "expected a term"},
		{"query q(X) <- R(X).", 1, "must be variables"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("source %q must fail", tc.src)
			continue
		}
		perr, ok := err.(*Error)
		if !ok {
			t.Errorf("source %q: error type %T, want *Error", tc.src, err)
			continue
		}
		if perr.Line != tc.wantLine {
			t.Errorf("source %q: error at line %d, want %d (%v)", tc.src, perr.Line, tc.wantLine, err)
		}
		if !strings.Contains(perr.Msg, tc.frag) {
			t.Errorf("source %q: message %q, want fragment %q", tc.src, perr.Msg, tc.frag)
		}
	}
}

func TestLexerTokens(t *testing.T) {
	toks, err := lexAll(`abc "a b" 12 3.5 ( ) { } , ; : . -> <- ! = != < <= > >= # comment`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokenKind{
		tokIdent, tokString, tokNumber, tokNumber,
		tokLParen, tokRParen, tokLBrace, tokRBrace,
		tokComma, tokSemicolon, tokColon, tokDot,
		tokArrow, tokImplied, tokBang, tokEq, tokNe,
		tokLt, tokLe, tokGt, tokGe, tokEOF,
	}
	if len(toks) != len(kinds) {
		t.Fatalf("tokens = %d, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Errorf("token %d = %s, want %s", i, toks[i].kind, k)
		}
	}
}

func TestLexerStringEscapes(t *testing.T) {
	toks, err := lexAll(`"a\"b\\c\nd"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != "a\"b\\c\nd" {
		t.Errorf("string = %q", toks[0].text)
	}
	if _, err := lexAll(`"unterminated`); err == nil {
		t.Error("unterminated string must fail")
	}
	if _, err := lexAll(`"bad\q"`); err == nil {
		t.Error("unknown escape must fail")
	}
	if _, err := lexAll("\"new\nline\""); err == nil {
		t.Error("newline in string must fail")
	}
}

func TestLexerNumberVsDot(t *testing.T) {
	// "10." at a rule end: number then statement dot.
	toks, err := lexAll("x < 10.")
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].kind != tokNumber || toks[2].text != "10" {
		t.Errorf("number token = %v", toks[2])
	}
	if toks[3].kind != tokDot {
		t.Errorf("dot token = %v", toks[3])
	}
	// "3.5" inside: one number.
	toks2, err := lexAll("3.5")
	if err != nil {
		t.Fatal(err)
	}
	if toks2[0].text != "3.5" {
		t.Errorf("number = %q", toks2[0].text)
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := lexAll("a - b"); err == nil {
		t.Error("lone '-' must fail")
	}
	if _, err := lexAll("a @ b"); err == nil {
		t.Error("unknown character must fail")
	}
}

func TestParseFileFromDisk(t *testing.T) {
	path := t.TempDir() + "/hospital.mdq"
	if err := writeFile(path, FormatHospitalExample()); err != nil {
		t.Fatal(err)
	}
	f, err := ParseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Ontology.Dimension("Hospital") == nil {
		t.Error("parsed file missing Hospital dimension")
	}
	if _, err := ParseFile(t.TempDir() + "/missing.mdq"); err == nil {
		t.Error("missing file must error")
	}
}

func TestDuplicateQueryName(t *testing.T) {
	src := `
dimension D { category C; member M in C; }
relation R(A: D.C)
query q(x) <- R(x).
query q(x) <- R(x).
`
	if _, err := Parse(src); err == nil || !strings.Contains(err.Error(), "duplicate query") {
		t.Errorf("duplicate query must fail: %v", err)
	}
}

func TestConstraintWithNegationAndConds(t *testing.T) {
	src := `
dimension D { category C; member M in C; }
relation R(A: D.C; V)
constraint c: ! <- R(a, v), not C(a), v >= 10.
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ncs := f.Ontology.NCs()
	if len(ncs) != 1 {
		t.Fatal("constraint missing")
	}
	if len(ncs[0].NegativeBody()) != 1 || len(ncs[0].Conds) != 1 {
		t.Errorf("constraint = %v", ncs[0])
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
