package parser

import (
	"context"
	"strings"
	"testing"

	dl "repro/internal/datalog"
)

func TestParseQualityExample(t *testing.T) {
	f, err := Parse(FormatHospitalQualityExample())
	if err != nil {
		t.Fatal(err)
	}
	if !f.HasContext() {
		t.Fatal("context expected")
	}
	c := f.Context
	if c.Input.Relation("Measurements").Len() != 6 {
		t.Errorf("input Measurements = %d, want 6", c.Input.Relation("Measurements").Len())
	}
	if c.Input.Relation("Clock").Len() != 6 {
		t.Errorf("input Clock = %d, want 6", c.Input.Relation("Clock").Len())
	}
	if len(c.Mappings) != 1 || len(c.QualityRules) != 2 || len(c.Versions) != 1 {
		t.Errorf("mappings/quality/versions = %d/%d/%d", len(c.Mappings), len(c.QualityRules), len(c.Versions))
	}
	v := c.Versions[0]
	if v.Original != "Measurements" || v.Pred != "Measurements_q" || len(v.Rules) != 1 {
		t.Errorf("version spec = %+v", v)
	}
}

func TestQualityExampleDerivesTableII(t *testing.T) {
	// End to end through the text format: parse, build context,
	// assess, compare with Table II.
	f, err := Parse(FormatHospitalQualityExample())
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := f.BuildContext()
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctx.Assess(context.Background(), f.Context.Input)
	if err != nil {
		t.Fatal(err)
	}
	mq := a.Versions["Measurements"]
	if mq.Len() != 2 {
		t.Fatalf("quality version = %d tuples, want 2 (Table II)", mq.Len())
	}
	for _, row := range [][3]string{
		{"Sep/5-12:10", "Tom Waits", "38.2"},
		{"Sep/6-11:50", "Tom Waits", "37.1"},
	} {
		if !mq.Contains([]dl.Term{dl.C(row[0]), dl.C(row[1]), dl.C(row[2])}) {
			t.Errorf("Table II row %v missing", row)
		}
	}
}

func TestVersionAccumulatesRules(t *testing.T) {
	src := `
dimension D { category C; member M in C; }
relation R(A: D.C; V)
input Orig(A, V) { (M, x); }
version Orig_q of Orig: Orig_q(a, v) <- Orig(a, v), v = "x".
version Orig_q of Orig: Orig_q(a, v) <- Orig(a, v), v = "y".
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Context.Versions) != 1 || len(f.Context.Versions[0].Rules) != 2 {
		t.Fatalf("versions = %+v", f.Context.Versions)
	}
	// Conflicting original relation is rejected.
	bad := src + "version Orig_q of Other: Orig_q(a, v) <- Orig(a, v).\n"
	if _, err := Parse(bad); err == nil || !strings.Contains(err.Error(), "already defined over") {
		t.Errorf("conflicting original must fail: %v", err)
	}
}

func TestVersionHeadMismatch(t *testing.T) {
	src := `
dimension D { category C; member M in C; }
input Orig(A) { (M); }
version Orig_q of Orig: Wrong(a) <- Orig(a).
`
	if _, err := Parse(src); err == nil || !strings.Contains(err.Error(), "head is Wrong") {
		t.Errorf("head mismatch must fail: %v", err)
	}
}

func TestMappingAndQualityValidation(t *testing.T) {
	base := "dimension D { category C; member M in C; }\n"
	bad := base + "mapping m: X(z) <- Y(w).\n"
	if _, err := Parse(bad); err == nil {
		t.Error("unsafe mapping must fail")
	}
	bad2 := base + "quality q: X(z) <- Y(w).\n"
	if _, err := Parse(bad2); err == nil {
		t.Error("unsafe quality rule must fail")
	}
	ok := base + "mapping m: X(w) <- Y(w), not Z(w), w < 5.\n"
	f, err := Parse(ok)
	if err != nil {
		t.Fatal(err)
	}
	r := f.Context.Mappings[0]
	if len(r.Negated) != 1 || len(r.Conds) != 1 {
		t.Errorf("mapping rule = %+v", r)
	}
}

func TestInputArityConflict(t *testing.T) {
	src := `
input R(A, B) { (x, y); }
input R(A) { (z); }
`
	if _, err := Parse(src); err == nil {
		t.Error("input arity conflict must fail")
	}
}

func TestBuildContextWithoutDeclarations(t *testing.T) {
	f, err := Parse("dimension D { category C; member M in C; }\n")
	if err != nil {
		t.Fatal(err)
	}
	if f.HasContext() {
		t.Error("no context declared")
	}
	if _, err := f.BuildContext(); err == nil {
		t.Error("BuildContext without declarations must error")
	}
}
