// Package parser implements the .mdq text format for multidimensional
// ontologies: dimension declarations, categorical relations with data,
// dimensional rules, EGDs, negative constraints and named queries. The
// cmd/mdq CLI and the examples load ontologies from this format.
//
// Syntax sketch (see the package tests and the examples directory for
// complete files):
//
//	# the Hospital dimension of Fig. 1
//	dimension Hospital {
//	  category Ward; category Unit;
//	  Ward -> Unit;
//	  member W1 in Ward; member Standard in Unit;
//	  rollup W1 -> Standard;
//	}
//	relation PatientWard(Ward: Hospital.Ward, Day: Time.Day; Patient) {
//	  (W1, "Sep/5", "Tom Waits");
//	}
//	rule r7: PatientUnit(u, d; p) <- PatientWard(w, d; p), UnitWard(u, w).
//	egd e6: t = t2 <- Thermometer(w, t; n), Thermometer(w2, t2; n2),
//	                  UnitWard(u, w), UnitWard(u, w2).
//	constraint closed: ! <- PatientWard(w, d; p), UnitWard(Intensive, w),
//	                        MonthDay(m, d), m >= "2005-08".
//	query marks(d) <- Shifts(W1, d, Mark, s).
//
// Variables are lowercase identifiers; constants are quoted strings,
// numbers, or identifiers starting with an uppercase letter (matching
// the paper's notation: u, d, p are variables, Intensive is a member).
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token types.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokNumber
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokComma
	tokSemicolon
	tokColon
	tokDot
	tokArrow   // ->
	tokImplied // <-
	tokBang    // !
	tokEq      // =
	tokNe      // !=
	tokLt      // <
	tokLe      // <=
	tokGt      // >
	tokGe      // >=
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokNumber:
		return "number"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokComma:
		return "','"
	case tokSemicolon:
		return "';'"
	case tokColon:
		return "':'"
	case tokDot:
		return "'.'"
	case tokArrow:
		return "'->'"
	case tokImplied:
		return "'<-'"
	case tokBang:
		return "'!'"
	case tokEq:
		return "'='"
	case tokNe:
		return "'!='"
	case tokLt:
		return "'<'"
	case tokLe:
		return "'<='"
	case tokGt:
		return "'>'"
	case tokGe:
		return "'>='"
	default:
		return "unknown token"
	}
}

// token is one lexical unit with its source position.
type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// lexer turns input text into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// Error is a parse or lex error with source position.
type Error struct {
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("mdq:%d:%d: %s", e.Line, e.Col, e.Msg)
}

func (l *lexer) errorf(format string, args ...any) *Error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() (byte, bool) {
	if l.pos >= len(l.src) {
		return 0, false
	}
	return l.src[l.pos], true
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() {
	for {
		c, ok := l.peekByte()
		if !ok {
			return
		}
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '#':
			for {
				c2, ok2 := l.peekByte()
				if !ok2 || c2 == '\n' {
					break
				}
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	c, ok := l.peekByte()
	if !ok {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	mk := func(kind tokenKind, text string) token {
		return token{kind: kind, text: text, line: line, col: col}
	}
	switch {
	case c == '(':
		l.advance()
		return mk(tokLParen, "("), nil
	case c == ')':
		l.advance()
		return mk(tokRParen, ")"), nil
	case c == '{':
		l.advance()
		return mk(tokLBrace, "{"), nil
	case c == '}':
		l.advance()
		return mk(tokRBrace, "}"), nil
	case c == ',':
		l.advance()
		return mk(tokComma, ","), nil
	case c == ';':
		l.advance()
		return mk(tokSemicolon, ";"), nil
	case c == ':':
		l.advance()
		return mk(tokColon, ":"), nil
	case c == '.':
		l.advance()
		return mk(tokDot, "."), nil
	case c == '!':
		l.advance()
		if c2, ok2 := l.peekByte(); ok2 && c2 == '=' {
			l.advance()
			return mk(tokNe, "!="), nil
		}
		return mk(tokBang, "!"), nil
	case c == '=':
		l.advance()
		return mk(tokEq, "="), nil
	case c == '-':
		l.advance()
		if c2, ok2 := l.peekByte(); ok2 && c2 == '>' {
			l.advance()
			return mk(tokArrow, "->"), nil
		}
		return token{}, l.errorf("unexpected '-' (did you mean '->'?)")
	case c == '<':
		l.advance()
		if c2, ok2 := l.peekByte(); ok2 {
			switch c2 {
			case '-':
				l.advance()
				return mk(tokImplied, "<-"), nil
			case '=':
				l.advance()
				return mk(tokLe, "<="), nil
			}
		}
		return mk(tokLt, "<"), nil
	case c == '>':
		l.advance()
		if c2, ok2 := l.peekByte(); ok2 && c2 == '=' {
			l.advance()
			return mk(tokGe, ">="), nil
		}
		return mk(tokGt, ">"), nil
	case c == '"':
		return l.lexString(line, col)
	case unicode.IsDigit(rune(c)):
		return l.lexNumber(line, col)
	case isIdentStart(c):
		var b strings.Builder
		for {
			c2, ok2 := l.peekByte()
			if !ok2 || !isIdentPart(c2) {
				break
			}
			b.WriteByte(l.advance())
		}
		return mk(tokIdent, b.String()), nil
	default:
		return token{}, l.errorf("unexpected character %q", string(rune(c)))
	}
}

func (l *lexer) lexString(line, col int) (token, error) {
	l.advance() // opening quote
	var b strings.Builder
	for {
		c, ok := l.peekByte()
		if !ok {
			return token{}, &Error{Line: line, Col: col, Msg: "unterminated string"}
		}
		l.advance()
		switch c {
		case '"':
			return token{kind: tokString, text: b.String(), line: line, col: col}, nil
		case '\\':
			c2, ok2 := l.peekByte()
			if !ok2 {
				return token{}, &Error{Line: line, Col: col, Msg: "unterminated escape"}
			}
			l.advance()
			switch c2 {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '"', '\\':
				b.WriteByte(c2)
			default:
				return token{}, &Error{Line: line, Col: col, Msg: fmt.Sprintf("unknown escape \\%c", c2)}
			}
		case '\n':
			return token{}, &Error{Line: line, Col: col, Msg: "newline in string"}
		default:
			b.WriteByte(c)
		}
	}
}

func (l *lexer) lexNumber(line, col int) (token, error) {
	var b strings.Builder
	seenDot := false
	for {
		c, ok := l.peekByte()
		if !ok {
			break
		}
		if c == '.' && !seenDot {
			// Lookahead: a digit must follow for this to be part of
			// the number; otherwise the dot is a statement terminator.
			if l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1])) {
				seenDot = true
				b.WriteByte(l.advance())
				continue
			}
			break
		}
		if !unicode.IsDigit(rune(c)) {
			break
		}
		b.WriteByte(l.advance())
	}
	return token{kind: tokNumber, text: b.String(), line: line, col: col}, nil
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
