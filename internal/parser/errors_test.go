package parser

import (
	"strings"
	"testing"
)

// TestParseEGDErrors exercises the egd statement's error paths.
func TestParseEGDErrors(t *testing.T) {
	base := `
dimension D { category C; member M in C; }
relation R(A: D.C; V)
`
	cases := []struct {
		stmt string
		frag string
	}{
		{"egd e1 t = t2 <- R(a, t).", "expected ':'"},
		{"egd e1: t 5 t2 <- R(a, t).", "expected '='"},
		{"egd e1: t = t2 R(a, t).", "expected '<-'"},
		{"egd e1: t = t2 <- R(a, t)", "expected ',' or '.'"},
		// Head variable not in body: datalog validation error.
		{"egd e1: t = zz <- R(a, t), R(a2, t2).", "not in body"},
	}
	for _, tc := range cases {
		_, err := Parse(base + tc.stmt + "\n")
		if err == nil {
			t.Errorf("stmt %q must fail", tc.stmt)
			continue
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("stmt %q: error %q, want fragment %q", tc.stmt, err, tc.frag)
		}
	}
	// A valid EGD for contrast.
	ok := base + "egd e1: t = t2 <- R(a, t), R(a, t2).\n"
	if _, err := Parse(ok); err != nil {
		t.Errorf("valid EGD rejected: %v", err)
	}
}

func TestParseConstraintErrors(t *testing.T) {
	base := `
dimension D { category C; member M in C; }
relation R(A: D.C; V)
`
	cases := []struct {
		stmt string
		frag string
	}{
		{"constraint c1: <- R(a, v).", "expected '!'"},
		{"constraint c1: ! R(a, v).", "expected '<-'"},
		{"constraint c1: ! <- not C(a).", "no positive atoms"},
		// Unsafe condition variable.
		{"constraint c1: ! <- R(a, v), zz < 3.", "not bound"},
	}
	for _, tc := range cases {
		_, err := Parse(base + tc.stmt + "\n")
		if err == nil {
			t.Errorf("stmt %q must fail", tc.stmt)
			continue
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("stmt %q: error %q, want fragment %q", tc.stmt, err, tc.frag)
		}
	}
}

func TestParseRuleErrors(t *testing.T) {
	base := `
dimension D { category C1; category C2; C1 -> C2;
  member A1 in C1; member B1 in C2; rollup A1 -> B1; }
relation R(A: D.C1; V)
relation S(A: D.C2; V)
`
	cases := []string{
		"rule r R(a, v) <- R(a, v).",         // missing colon
		"rule r: R(a, v) R(a, v).",           // missing <-
		"rule r: Mystery(a, v) <- R(a, v).",  // unknown head predicate
		"rule r: R(a, v) <- Mystery(a, v).",  // unknown body predicate
		"rule r: R(a, v) <- R(a, v), v < 3.", // comparisons not allowed in TGDs
		"rule r: R(a, v) <- not R(a, v).",    // negation not allowed in TGDs
		"rule r: exists R(a, v) <- R(a, v).", // exists needs variables... 'R' consumed as var name, then '(' breaks
	}
	for _, stmt := range cases {
		if _, err := Parse(base + stmt + "\n"); err == nil {
			t.Errorf("stmt %q must fail", stmt)
		}
	}
	// Valid upward rule for contrast.
	ok := base + "rule r: S(p, v) <- R(c, v), C2C1(p, c).\n"
	if _, err := Parse(ok); err != nil {
		t.Errorf("valid rule rejected: %v", err)
	}
}

func TestParseRelationErrors(t *testing.T) {
	cases := []string{
		"relation (A)",      // missing name
		"relation R(A: D)",  // missing .Cat
		"relation R(A: .C)", // missing dim
		"dimension D { category C; }\nrelation R(A: D.C) {\n  (x y);\n}", // missing comma is fine (space-separated names are two values -> arity error)
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("source %q must fail", src)
		}
	}
}

func TestParseDimensionEdgeErrors(t *testing.T) {
	cases := []string{
		"dimension D { category C; rollup X -> Y; }",     // unknown members
		"dimension D { category C; member M in Nope; }",  // unknown category
		"dimension D { category A; category B; A -> }",   // missing target
		"dimension D { category A; category B; A -> B }", // missing semicolon
		"dimension D { member M in C; }",                 // category not yet declared
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("source %q must fail", src)
		}
	}
}

func TestCompOpCoverage(t *testing.T) {
	// Every comparison operator round-trips through a query.
	src := `
dimension D { category C; member M in C; }
relation R(A: D.C; V)
query q(v) <- R(a, v), v = 1, v != 2, v < 9, v <= 9, v > 0, v >= 0.
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(f.Queries[0].Query.Conds); got != 6 {
		t.Errorf("conds = %d, want 6", got)
	}
}

func TestTokenKindStrings(t *testing.T) {
	kinds := []tokenKind{
		tokEOF, tokIdent, tokString, tokNumber, tokLParen, tokRParen,
		tokLBrace, tokRBrace, tokComma, tokSemicolon, tokColon, tokDot,
		tokArrow, tokImplied, tokBang, tokEq, tokNe, tokLt, tokLe, tokGt, tokGe,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || s == "unknown token" {
			t.Errorf("kind %d has no name", k)
		}
		if seen[s] {
			t.Errorf("duplicate token name %q", s)
		}
		seen[s] = true
	}
	if tokenKind(200).String() != "unknown token" {
		t.Error("out-of-range kind must render as unknown")
	}
}

func TestErrorType(t *testing.T) {
	_, err := Parse("dimension D {")
	if err == nil {
		t.Fatal("unclosed block must fail")
	}
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if perr.Line < 1 || !strings.Contains(perr.Error(), "mdq:") {
		t.Errorf("Error = %+v", perr)
	}
}
