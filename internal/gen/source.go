package gen

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"net/http"
	"os"
	"path"
	"path/filepath"
	"strings"
)

// This file is the source-fixture half of the workload generator: a
// tiny HTTP handler that serves relation payload files (NDJSON/JSON or
// CSV) with strong content-hash ETags and If-None-Match revalidation —
// exactly the upstream contract the mdqa HTTP source connector
// revalidates against. The e2e pipeline boots it as cmd/mdfixture,
// points an mdserve -source binding at it, rewrites a file and drives
// POST .../refresh; tests use the handler in-process via httptest.

// FixtureHandler serves the files under dir. Every 200 carries a
// strong ETag derived from the content (sha256), and a request whose
// If-None-Match matches the current content answers 304 with an empty
// body — so a poller's revalidation costs a hash comparison, not a
// transfer. Files may be rewritten between requests; the ETag moves
// with the bytes.
type FixtureHandler struct {
	dir string
}

// NewFixtureHandler builds a handler rooted at dir.
func NewFixtureHandler(dir string) *FixtureHandler { return &FixtureHandler{dir: dir} }

func (h *FixtureHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	// path.Clean plus the leading-slash trim confines lookups to dir
	// (".." never survives Clean on a rooted path).
	rel := strings.TrimPrefix(path.Clean("/"+r.URL.Path), "/")
	if rel == "" {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	data, err := os.ReadFile(filepath.Join(h.dir, filepath.FromSlash(rel)))
	if err != nil {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	sum := sha256.Sum256(data)
	etag := `"` + hex.EncodeToString(sum[:]) + `"`
	w.Header().Set("ETag", etag)
	if match := r.Header.Get("If-None-Match"); match != "" && match == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	if r.Method == http.MethodHead {
		return
	}
	_, _ = w.Write(data)
}

// Refresh drives POST .../sessions/{id}/refresh and reports whether
// the refresh changed the session and whether it rebuilt.
func (t HTTPTarget) Refresh(ctx context.Context, id string) (changed, rebuilt bool, err error) {
	var out struct {
		Changed bool `json:"changed"`
		Rebuilt bool `json:"rebuilt"`
	}
	err = t.do(ctx, http.MethodPost, "/v1/contexts/"+t.Context+"/sessions/"+id+"/refresh", nil, &out)
	return out.Changed, out.Rebuilt, err
}
