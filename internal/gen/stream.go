package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/datalog"
	"repro/internal/hm"
)

// StreamSpec parameterizes the streaming quality workload: the base
// QualityWorkload plus an endless sequence of per-tick delta batches —
// new patients arriving with their ward assignments, measurement
// times and measurements. It drives the warm-assessment benchmarks
// and the incremental-vs-scratch equivalence tests: a session built
// on the base instance absorbs Tick batches via Apply, while a cold
// assessment recomputes everything.
type StreamSpec struct {
	// Base is the initial workload (its Patients*Days measurements are
	// assessed cold when the session is opened).
	Base QualitySpec
	// TickPatients is the number of new patients arriving per tick;
	// each contributes one measurement per base day, so a tick is
	// TickPatients*Base.Days new measurements.
	TickPatients int
}

// StreamingWorkload couples the base quality workload with a
// deterministic delta generator.
type StreamingWorkload struct {
	// Base holds the context, the base instance under assessment and
	// its expected-clean bookkeeping.
	Base *StreamBase
	spec StreamSpec
}

// StreamBase is the cold-start state of a streaming workload.
type StreamBase = QualityWorkload

// NewStreamingWorkload builds the base workload and the tick
// generator.
func NewStreamingWorkload(spec StreamSpec) (*StreamingWorkload, error) {
	if spec.TickPatients < 1 {
		return nil, fmt.Errorf("gen: invalid stream spec %+v", spec)
	}
	base, err := NewQualityWorkload(spec.Base)
	if err != nil {
		return nil, err
	}
	return &StreamingWorkload{Base: base, spec: spec}, nil
}

// Tick deterministically generates the i-th delta batch (i >= 0): for
// every arriving patient, the batch carries the patient's ward
// assignment, the new measurement-time dimension members with their
// day rollups, and the measurements themselves — exactly the ground
// atoms a feeding process would push into an assessment session. It
// also returns how many of the tick's measurements must survive into
// the quality version (the patients assigned to good-unit wards).
func (w *StreamingWorkload) Tick(i int) (delta []datalog.Atom, clean int) {
	spec := w.spec
	rng := rand.New(rand.NewSource(spec.Base.Seed + int64(i) + 1))
	dirtyCount := int(float64(spec.TickPatients) * spec.Base.DirtyRatio)
	timeCat := hm.CategoryPredName("Time")
	dayTime := hm.RollupPredName("Time", "Day") // DayTime(day, time)
	for j := 0; j < spec.TickPatients; j++ {
		p := spec.Base.Patients + i*spec.TickPatients + j
		patient := fmt.Sprintf("p%d", p)
		dirty := j < dirtyCount
		for day := 0; day < spec.Base.Days; day++ {
			var ward string
			if dirty {
				ward = fmt.Sprintf("BW%d", rng.Intn(spec.Base.Wards))
			} else {
				ward = fmt.Sprintf("GW%d", rng.Intn(spec.Base.Wards))
				clean++
			}
			dn := dayName(day)
			tm := timeName(day, p)
			val := fmt.Sprintf("%.1f", 36.0+rng.Float64()*3)
			delta = append(delta,
				datalog.A(timeCat, datalog.C(tm)),
				datalog.A(dayTime, datalog.C(dn), datalog.C(tm)),
				datalog.A("PatientWard", datalog.C(ward), datalog.C(dn), datalog.C(patient)),
				datalog.A("Measurements", datalog.C(tm), datalog.C(patient), datalog.C(val)),
			)
		}
	}
	return delta, clean
}

// TickMeasurements returns the number of measurements per tick.
func (w *StreamingWorkload) TickMeasurements() int {
	return w.spec.TickPatients * w.spec.Base.Days
}
