// Package gen builds deterministic synthetic workloads for the
// benchmark harness and the cross-engine property tests: parameterized
// dimension hierarchies, categorical relations with data at chosen
// levels, upward/downward rule chains, and a scalable hospital-style
// quality-assessment workload with a controllable dirty-data ratio.
//
// Everything is seeded: the same spec always yields the same ontology,
// so benchmark runs and test failures are reproducible.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/hm"
)

// DimensionSpec parameterizes a linear dimension hierarchy.
type DimensionSpec struct {
	// Name of the dimension; categories are Name_L0 (bottom) through
	// Name_L{Levels-1} (top).
	Name string
	// Levels is the number of categories (≥ 1).
	Levels int
	// Fanout is how many level-k members share one level-k+1 parent.
	Fanout int
	// BaseMembers is the number of members at the bottom category.
	BaseMembers int
}

// CategoryName returns the category at the given level.
func (s DimensionSpec) CategoryName(level int) string {
	return fmt.Sprintf("%s_L%d", s.Name, level)
}

// MemberName returns the j-th member of the given level.
func (s DimensionSpec) MemberName(level, j int) string {
	return fmt.Sprintf("%s_m%d_%d", s.Name, level, j)
}

// MembersAt returns how many members the given level holds.
func (s DimensionSpec) MembersAt(level int) int {
	n := s.BaseMembers
	for k := 0; k < level; k++ {
		n = (n + s.Fanout - 1) / s.Fanout
		if n < 1 {
			n = 1
		}
	}
	return n
}

// LinearDimension builds the dimension instance: each member at level
// k rolls up to member j/Fanout at level k+1 — a strict, homogeneous
// hierarchy by construction.
func LinearDimension(spec DimensionSpec) (*hm.Dimension, error) {
	if spec.Levels < 1 || spec.Fanout < 1 || spec.BaseMembers < 1 {
		return nil, fmt.Errorf("gen: invalid spec %+v", spec)
	}
	s := hm.NewDimensionSchema(spec.Name)
	for l := 0; l < spec.Levels; l++ {
		if err := s.AddCategory(spec.CategoryName(l)); err != nil {
			return nil, err
		}
	}
	for l := 0; l+1 < spec.Levels; l++ {
		if err := s.AddEdge(spec.CategoryName(l), spec.CategoryName(l+1)); err != nil {
			return nil, err
		}
	}
	d := hm.NewDimension(s)
	for l := 0; l < spec.Levels; l++ {
		for j := 0; j < spec.MembersAt(l); j++ {
			if err := d.AddMember(spec.CategoryName(l), spec.MemberName(l, j)); err != nil {
				return nil, err
			}
		}
	}
	for l := 0; l+1 < spec.Levels; l++ {
		parents := spec.MembersAt(l + 1)
		for j := 0; j < spec.MembersAt(l); j++ {
			p := j / spec.Fanout
			if p >= parents {
				p = parents - 1
			}
			if err := d.AddRollup(spec.MemberName(l, j), spec.MemberName(l+1, p)); err != nil {
				return nil, err
			}
		}
	}
	return d, nil
}

// ChainSpec parameterizes a synthetic MD ontology whose rules chain
// data up (and optionally down) a linear dimension.
type ChainSpec struct {
	Dim DimensionSpec
	// Tuples is the number of base facts.
	Tuples int
	// Upward adds relations R0..R{Levels-1} with data in R0 and one
	// upward rule per level (the paper's rule (7) pattern).
	Upward bool
	// Downward adds relations S{Levels-1}..S0 with data at the top
	// and one existential downward rule per level (the rule (8)
	// pattern: the payload of the lower level is invented).
	Downward bool
	// Seed drives member assignment of the generated facts.
	Seed int64
}

// UpRelName returns the name of the upward relation at a level.
func UpRelName(level int) string { return fmt.Sprintf("R%d", level) }

// DownRelName returns the name of the downward relation at a level.
func DownRelName(level int) string { return fmt.Sprintf("S%d", level) }

// ChainOntology builds the ontology for a ChainSpec.
func ChainOntology(spec ChainSpec) (*core.Ontology, error) {
	dim, err := LinearDimension(spec.Dim)
	if err != nil {
		return nil, err
	}
	o := core.NewOntology()
	if err := o.AddDimension(dim); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	if spec.Upward {
		for l := 0; l < spec.Dim.Levels; l++ {
			rel := core.NewCategoricalRelation(UpRelName(l),
				core.Cat("C", spec.Dim.Name, spec.Dim.CategoryName(l)),
				core.NonCat("Val"))
			if err := o.AddRelation(rel); err != nil {
				return nil, err
			}
		}
		base := spec.Dim.MembersAt(0)
		for i := 0; i < spec.Tuples; i++ {
			m := spec.Dim.MemberName(0, rng.Intn(base))
			if err := o.AddFact(UpRelName(0), m, fmt.Sprintf("v%d", i)); err != nil {
				return nil, err
			}
		}
		for l := 0; l+1 < spec.Dim.Levels; l++ {
			roll := hm.RollupPredName(spec.Dim.CategoryName(l), spec.Dim.CategoryName(l+1))
			rule := datalog.NewTGD(fmt.Sprintf("up%d", l),
				[]datalog.Atom{datalog.A(UpRelName(l+1), datalog.V("p"), datalog.V("x"))},
				[]datalog.Atom{
					datalog.A(UpRelName(l), datalog.V("c"), datalog.V("x")),
					datalog.A(roll, datalog.V("p"), datalog.V("c")),
				})
			if err := o.AddRule(rule); err != nil {
				return nil, err
			}
		}
	}

	if spec.Downward {
		for l := 0; l < spec.Dim.Levels; l++ {
			rel := core.NewCategoricalRelation(DownRelName(l),
				core.Cat("C", spec.Dim.Name, spec.Dim.CategoryName(l)),
				core.NonCat("Val"),
				core.NonCat("Extra"))
			if err := o.AddRelation(rel); err != nil {
				return nil, err
			}
		}
		top := spec.Dim.Levels - 1
		topMembers := spec.Dim.MembersAt(top)
		for i := 0; i < spec.Tuples; i++ {
			m := spec.Dim.MemberName(top, rng.Intn(topMembers))
			if err := o.AddFact(DownRelName(top), m, fmt.Sprintf("w%d", i), "known"); err != nil {
				return nil, err
			}
		}
		for l := spec.Dim.Levels - 1; l > 0; l-- {
			roll := hm.RollupPredName(spec.Dim.CategoryName(l-1), spec.Dim.CategoryName(l))
			rule := datalog.NewTGD(fmt.Sprintf("down%d", l),
				[]datalog.Atom{datalog.A(DownRelName(l-1), datalog.V("c"), datalog.V("x"), datalog.V("z"))},
				[]datalog.Atom{
					datalog.A(DownRelName(l), datalog.V("p"), datalog.V("x"), datalog.V("e")),
					datalog.A(roll, datalog.V("p"), datalog.V("c")),
				})
			if err := o.AddRule(rule); err != nil {
				return nil, err
			}
		}
	}
	return o, nil
}

// ChainQueries builds a battery of conjunctive queries against a chain
// ontology, covering upward targets at every level, point lookups and
// joins with rollup predicates.
func ChainQueries(spec ChainSpec) []*datalog.Query {
	var out []*datalog.Query
	if spec.Upward {
		for l := 0; l < spec.Dim.Levels; l++ {
			out = append(out, datalog.NewQuery(
				datalog.A("Q", datalog.V("c"), datalog.V("x")),
				datalog.A(UpRelName(l), datalog.V("c"), datalog.V("x"))))
		}
		// Point lookup at the top for a known base value.
		top := spec.Dim.Levels - 1
		out = append(out, datalog.NewQuery(
			datalog.A("Q", datalog.V("c")),
			datalog.A(UpRelName(top), datalog.V("c"), datalog.C("v0"))))
		if spec.Dim.Levels >= 2 {
			roll := hm.RollupPredName(spec.Dim.CategoryName(0), spec.Dim.CategoryName(1))
			out = append(out, datalog.NewQuery(
				datalog.A("Q", datalog.V("x"), datalog.V("p")),
				datalog.A(UpRelName(0), datalog.V("c"), datalog.V("x")),
				datalog.A(roll, datalog.V("p"), datalog.V("c"))))
		}
	}
	if spec.Downward {
		for l := spec.Dim.Levels - 1; l >= 0; l-- {
			out = append(out, datalog.NewQuery(
				datalog.A("Q", datalog.V("c"), datalog.V("x")),
				datalog.A(DownRelName(l), datalog.V("c"), datalog.V("x"), datalog.V("z"))))
		}
		// The invented Extra attribute is never a certain answer.
		if spec.Dim.Levels >= 2 {
			out = append(out, datalog.NewQuery(
				datalog.A("Q", datalog.V("z")),
				datalog.A(DownRelName(0), datalog.V("c"), datalog.V("x"), datalog.V("z"))))
		}
	}
	return out
}
