package gen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/datalog"
	"repro/internal/hm"
	"repro/internal/par"
	"repro/internal/storage"
)

// This file is the HTTP half of the workload generator: a typed client
// for the mdserve wire API plus RunHTTPStress, the many-writers /
// many-readers workload behind the server's -race stress test and the
// HTTP-path benchmarks. The wire structs here deliberately mirror —
// rather than import — the server's, exactly as an external client
// would speak the protocol.

// HTTPTarget addresses one context on a running mdserve instance.
type HTTPTarget struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Context is the context name under /v1/contexts/.
	Context string
	// Client is the HTTP client (nil = http.DefaultClient).
	Client *http.Client
}

// DefaultConnsPerHost is the idle-connection budget of the package's
// shared HTTP client: generous enough that the stress suite's and
// mdload's worker fan-outs keep one persistent connection each instead
// of re-dialing per request (and exhausting ephemeral ports against a
// loopback server).
const DefaultConnsPerHost = 256

// NewHTTPClient builds an HTTP client whose transport keeps up to
// maxPerHost idle connections per backend — size it to the worker
// count of the load it will carry (values < 1 fall back to
// DefaultConnsPerHost).
func NewHTTPClient(maxPerHost int) *http.Client {
	if maxPerHost < 1 {
		maxPerHost = DefaultConnsPerHost
	}
	return &http.Client{Transport: &http.Transport{
		Proxy:               http.ProxyFromEnvironment,
		MaxIdleConns:        maxPerHost,
		MaxIdleConnsPerHost: maxPerHost,
		IdleConnTimeout:     90 * time.Second,
	}}
}

// sharedClient serves every HTTPTarget without an explicit Client: one
// transport reused across all workers of a stress or load run.
var sharedClient = NewHTTPClient(DefaultConnsPerHost)

func (t HTTPTarget) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return sharedClient
}

// HTTPError is a non-2xx response: the status code and the raw
// (structured) error body.
type HTTPError struct {
	Status int
	Body   string
}

func (e *HTTPError) Error() string { return fmt.Sprintf("http %d: %s", e.Status, e.Body) }

// do runs one JSON round trip; non-2xx statuses become *HTTPError and
// out (when non-nil) receives the decoded response body.
func (t HTTPTarget) do(ctx context.Context, method, path string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, t.BaseURL+path, body)
	if err != nil {
		return err
	}
	resp, err := t.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return &HTTPError{Status: resp.StatusCode, Body: strings.TrimSpace(string(data))}
	}
	if out != nil {
		return json.Unmarshal(data, out)
	}
	return nil
}

// wireAtom and wireBatch mirror the server's NDJSON apply vocabulary.
type wireAtom struct {
	Pred string   `json:"pred"`
	Args []string `json:"args"`
}

type wireBatch struct {
	Atoms []wireAtom `json:"atoms"`
}

// Assess posts a one-shot assessment. A nil instance assesses the
// server's default input for the context.
func (t HTTPTarget) Assess(ctx context.Context, instance map[string][][]string) error {
	var body io.Reader
	if instance != nil {
		data, err := json.Marshal(map[string]any{"instance": instance})
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	return t.do(ctx, "POST", "/v1/contexts/"+t.Context+"/assess", body, nil)
}

// OpenSession opens an assessment session over the server's default
// input and returns its id.
func (t HTTPTarget) OpenSession(ctx context.Context) (string, error) {
	var resp struct {
		ID string `json:"id"`
	}
	err := t.do(ctx, "POST", "/v1/contexts/"+t.Context+"/sessions", nil, &resp)
	return resp.ID, err
}

// OpenSessionWithID opens a session under a client-chosen id — the
// form a consistent-hash router needs, since only a caller-supplied id
// makes the session's shard placement reproducible. The returned
// created flag is false when the id already named a live session (the
// server's 409), which callers wanting to reuse a warm session treat
// as success.
func (t HTTPTarget) OpenSessionWithID(ctx context.Context, id string) (created bool, err error) {
	body, err := json.Marshal(map[string]string{"id": id})
	if err != nil {
		return false, err
	}
	err = t.do(ctx, "POST", "/v1/contexts/"+t.Context+"/sessions", bytes.NewReader(body), nil)
	var he *HTTPError
	if errors.As(err, &he) && he.Status == http.StatusConflict && strings.Contains(he.Body, "session_exists") {
		return false, nil
	}
	return err == nil, err
}

// CloseSession closes a session.
func (t HTTPTarget) CloseSession(ctx context.Context, id string) error {
	return t.do(ctx, "DELETE", "/v1/contexts/"+t.Context+"/sessions/"+id, nil, nil)
}

// ApplyBatch sends one delta batch as a single NDJSON line and decodes
// the per-batch result line. An error line mid-stream surfaces as an
// error.
func (t HTTPTarget) ApplyBatch(ctx context.Context, id string, atoms []datalog.Atom) error {
	batch := wireBatch{Atoms: make([]wireAtom, len(atoms))}
	for i, a := range atoms {
		wa := wireAtom{Pred: a.Pred, Args: make([]string, len(a.Args))}
		for j, arg := range a.Args {
			wa.Args[j] = arg.Name
		}
		batch.Atoms[i] = wa
	}
	data, err := json.Marshal(batch)
	if err != nil {
		return err
	}
	var line struct {
		Inserted int             `json:"inserted"`
		Error    json.RawMessage `json:"error"`
	}
	if err := t.do(ctx, "POST", "/v1/contexts/"+t.Context+"/sessions/"+id+"/apply", bytes.NewReader(append(data, '\n')), &line); err != nil {
		return err
	}
	if len(line.Error) > 0 {
		return fmt.Errorf("apply batch: %s", line.Error)
	}
	return nil
}

// Answers streams a query's answers off the session's current
// snapshot and returns the collected tuples. mode is "clean" or
// "raw"; q is an inline query or a declared query name.
func (t HTTPTarget) Answers(ctx context.Context, id, q, mode string) ([][]string, error) {
	path := "/v1/contexts/" + t.Context + "/sessions/" + id + "/answers?mode=" + mode + "&q=" + url.QueryEscape(q)
	req, err := http.NewRequestWithContext(ctx, "GET", t.BaseURL+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := t.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		data, _ := io.ReadAll(resp.Body)
		return nil, &HTTPError{Status: resp.StatusCode, Body: strings.TrimSpace(string(data))}
	}
	var out [][]string
	count := -1
	dec := json.NewDecoder(resp.Body)
	for {
		var line struct {
			Answer []string        `json:"answer"`
			Count  *int            `json:"count"`
			Error  json.RawMessage `json:"error"`
		}
		if err := dec.Decode(&line); err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		switch {
		case len(line.Error) > 0:
			return nil, fmt.Errorf("answers: %s", line.Error)
		case line.Count != nil:
			count = *line.Count
		default:
			out = append(out, line.Answer)
		}
	}
	if count != len(out) {
		return nil, fmt.Errorf("answers: stream count %d != %d tuples received", count, len(out))
	}
	return out, nil
}

// SessionAssessment materializes the session's current assessment and
// returns the quality-version tuple count per original relation.
func (t HTTPTarget) SessionAssessment(ctx context.Context, id string) (map[string]int, error) {
	var resp struct {
		Versions map[string]struct {
			Tuples [][]string `json:"tuples"`
		} `json:"versions"`
	}
	if err := t.do(ctx, "GET", "/v1/contexts/"+t.Context+"/sessions/"+id+"/assessment", nil, &resp); err != nil {
		return nil, err
	}
	out := make(map[string]int, len(resp.Versions))
	for rel, v := range resp.Versions {
		out[rel] = len(v.Tuples)
	}
	return out, nil
}

// WireInstance renders a storage instance in the wire's
// relation → tuple-list form (all terms ground constants).
func WireInstance(db *storage.Instance) map[string][][]string {
	out := map[string][][]string{}
	for _, name := range db.RelationNames() {
		var tuples [][]string
		for _, tup := range db.Relation(name).Tuples() {
			row := make([]string, len(tup))
			for i, t := range tup {
				row[i] = t.Name
			}
			tuples = append(tuples, row)
		}
		out[name] = tuples
	}
	return out
}

// HTTPStressSpec parameterizes RunHTTPStress: Writers concurrent
// delta streams and Readers concurrent snapshot readers hammering one
// session of a quality-workload context (the schema NewQualityWorkload
// builds).
type HTTPStressSpec struct {
	Target HTTPTarget
	// Writers is the number of concurrent writer goroutines; each
	// applies BatchesPerWriter delta batches of PatientsPerBatch new
	// patients (one measurement per day each).
	Writers, BatchesPerWriter, PatientsPerBatch int
	// Readers is the number of concurrent reader goroutines; each
	// streams the full measurement relation ReadsPerReader times and
	// verifies batch atomicity, hitting the materialized assessment
	// every third read.
	Readers, ReadsPerReader int
	// Days and Wards must match the QualitySpec the served context was
	// generated from.
	Days, Wards int
}

// HTTPStressResult reports what the stress run did.
type HTTPStressResult struct {
	SessionID string
	Batches   int // apply batches acknowledged
	Reads     int // answer streams fully consumed
	Tuples    int // answer tuples observed across all reads
}

// StressDelta builds writer w's i-th delta batch: PatientsPerBatch
// new patients, each with a ward assignment, measurement-time members
// with day rollups, and one measurement per day. Patient names embed
// (w, i), so batches are disjoint across writers and iterations and a
// snapshot reader can verify each batch is visible atomically.
func StressDelta(spec HTTPStressSpec, w, i int) []datalog.Atom {
	timeCat := hm.CategoryPredName("Time")
	dayTime := hm.RollupPredName("Time", "Day")
	var delta []datalog.Atom
	for j := 0; j < spec.PatientsPerBatch; j++ {
		patient := fmt.Sprintf("w%db%dp%d", w, i, j)
		ward := fmt.Sprintf("GW%d", j%spec.Wards)
		if j%2 == 1 {
			ward = fmt.Sprintf("BW%d", j%spec.Wards)
		}
		for day := 0; day < spec.Days; day++ {
			dn := dayName(day)
			tm := fmt.Sprintf("%s-%s", dn, patient)
			delta = append(delta,
				datalog.A(timeCat, datalog.C(tm)),
				datalog.A(dayTime, datalog.C(dn), datalog.C(tm)),
				datalog.A("PatientWard", datalog.C(ward), datalog.C(dn), datalog.C(patient)),
				datalog.A("Measurements", datalog.C(tm), datalog.C(patient), datalog.C("37.0")),
			)
		}
	}
	return delta
}

// CheckApplyAtomicity verifies a snapshot of the full Measurements
// relation never shows a half-applied batch: every patient (base or
// delta) contributes exactly days measurements, so any other count
// means a reader caught a batch mid-apply. tuples are (time, patient,
// value) rows.
func CheckApplyAtomicity(tuples [][]string, days int) error {
	per := map[string]int{}
	for _, tup := range tuples {
		if len(tup) != 3 {
			return fmt.Errorf("stress: bad answer arity %d", len(tup))
		}
		per[tup[1]]++
	}
	for p, n := range per {
		if n != days {
			return fmt.Errorf("stress: patient %s shows %d of %d measurements — half-applied delta observed", p, n, days)
		}
	}
	return nil
}

// RunHTTPStress opens one session and fans Writers+Readers concurrent
// clients out over it (everyone runs at once — the pool is sized to
// the task count). Writers stream disjoint delta batches; readers
// stream consistent snapshots and fail the run on any atomicity
// violation. The session is closed on the way out.
func RunHTTPStress(ctx context.Context, spec HTTPStressSpec) (*HTTPStressResult, error) {
	if spec.Writers < 1 || spec.Readers < 1 || spec.Days < 1 || spec.Wards < 1 {
		return nil, fmt.Errorf("gen: invalid stress spec %+v", spec)
	}
	id, err := spec.Target.OpenSession(ctx)
	if err != nil {
		return nil, err
	}
	res := &HTTPStressResult{SessionID: id}
	tasks := spec.Writers + spec.Readers
	counts, err := par.Map(ctx, par.New(tasks), tasks, func(task int) ([2]int, error) {
		if task < spec.Writers {
			for i := 0; i < spec.BatchesPerWriter; i++ {
				if err := spec.Target.ApplyBatch(ctx, id, StressDelta(spec, task, i)); err != nil {
					return [2]int{}, fmt.Errorf("writer %d batch %d: %w", task, i, err)
				}
			}
			return [2]int{spec.BatchesPerWriter, 0}, nil
		}
		reader := task - spec.Writers
		tuples := 0
		for i := 0; i < spec.ReadsPerReader; i++ {
			got, err := spec.Target.Answers(ctx, id, "meas(t, p, v) <- Measurements(t, p, v).", "raw")
			if err != nil {
				return [2]int{}, fmt.Errorf("reader %d read %d: %w", reader, i, err)
			}
			if err := CheckApplyAtomicity(got, spec.Days); err != nil {
				return [2]int{}, err
			}
			tuples += len(got)
			if i%3 == 2 {
				if _, err := spec.Target.SessionAssessment(ctx, id); err != nil {
					return [2]int{}, fmt.Errorf("reader %d assessment: %w", reader, err)
				}
			}
		}
		return [2]int{0, tuples}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range counts {
		res.Batches += c[0]
		if i >= spec.Writers {
			res.Reads += spec.ReadsPerReader
		}
		res.Tuples += c[1]
	}
	return res, spec.Target.CloseSession(ctx, id)
}
