package gen

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	dl "repro/internal/datalog"
	"repro/internal/eval"
	"repro/internal/qa"
)

func TestRelNameHelpers(t *testing.T) {
	if UpRelName(0) != "R0" || UpRelName(3) != "R3" {
		t.Error("UpRelName wrong")
	}
	if DownRelName(0) != "S0" || DownRelName(2) != "S2" {
		t.Error("DownRelName wrong")
	}
	spec := DimensionSpec{Name: "D", Levels: 2, Fanout: 2, BaseMembers: 4}
	if spec.CategoryName(1) != "D_L1" {
		t.Errorf("CategoryName = %q", spec.CategoryName(1))
	}
	if spec.MemberName(0, 3) != "D_m0_3" {
		t.Errorf("MemberName = %q", spec.MemberName(0, 3))
	}
}

func TestChainOntologyInvalidDim(t *testing.T) {
	spec := ChainSpec{
		Dim:    DimensionSpec{Name: "D", Levels: 0, Fanout: 2, BaseMembers: 4},
		Tuples: 5, Upward: true,
	}
	if _, err := ChainOntology(spec); err == nil {
		t.Error("invalid dimension spec must propagate")
	}
}

func TestChainOntologyDeterministicData(t *testing.T) {
	spec := ChainSpec{
		Dim:    DimensionSpec{Name: "D", Levels: 2, Fanout: 2, BaseMembers: 4},
		Tuples: 10, Upward: true, Seed: 99,
	}
	a, err := ChainOntology(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ChainOntology(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Data().Equal(b.Data()) {
		t.Error("same seed must produce identical data")
	}
	spec.Seed = 100
	c, err := ChainOntology(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Data().Equal(c.Data()) {
		t.Error("different seeds should (overwhelmingly) differ")
	}
}

func TestChainOntologySingleLevel(t *testing.T) {
	// One level: no rules at all, just the base relation.
	spec := ChainSpec{
		Dim:    DimensionSpec{Name: "D", Levels: 1, Fanout: 2, BaseMembers: 4},
		Tuples: 5, Upward: true, Seed: 1,
	}
	o, err := ChainOntology(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Rules()) != 0 {
		t.Errorf("single-level chain has no rules: %v", o.Rules())
	}
	if o.Data().Relation(UpRelName(0)).Len() == 0 {
		t.Error("base data missing")
	}
}

func TestQualityWorkloadCleanQueryAnswering(t *testing.T) {
	// The workload supports the full clean-answer path, not just
	// version counting.
	w, err := NewQualityWorkload(QualitySpec{
		Patients: 6, Days: 2, Wards: 2, DirtyRatio: 0.5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := w.Context.Assess(context.Background(), w.Instance)
	if err != nil {
		t.Fatal(err)
	}
	q := dl.NewQuery(dl.A("Q", dl.V("t"), dl.V("p")),
		dl.A("Measurements", dl.V("t"), dl.V("p"), dl.V("v")))
	clean, err := a.CleanAnswer(q)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Len() != w.ExpectedClean {
		t.Errorf("clean answers = %d, want %d", clean.Len(), w.ExpectedClean)
	}
	raw, err := eval.EvalQuery(q, a.Contextual)
	if err != nil {
		t.Fatal(err)
	}
	if raw.Len() != w.Total {
		t.Errorf("raw answers = %d, want %d", raw.Len(), w.Total)
	}
}

func TestQualityWorkloadIsWeaklySticky(t *testing.T) {
	w, err := NewQualityWorkload(QualitySpec{
		Patients: 4, Days: 2, Wards: 2, DirtyRatio: 0.25, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Reach the ontology through a version-definition assessment: the
	// context was built over it; compile independently to classify.
	a, err := w.Context.Assess(context.Background(), w.Instance)
	if err != nil {
		t.Fatal(err)
	}
	if a.Versions["Measurements"] == nil {
		t.Fatal("version missing")
	}
}

func TestChainQueriesAnswerableByDetQA(t *testing.T) {
	// Sanity: every generated query is actually runnable end to end
	// (the cross-check test asserts equality; this asserts liveness
	// with mixed up+down rules and deeper hierarchies).
	spec := ChainSpec{
		Dim:      DimensionSpec{Name: "M", Levels: 4, Fanout: 2, BaseMembers: 8},
		Tuples:   6,
		Upward:   true,
		Downward: true,
		Seed:     13,
	}
	o, err := ChainOntology(spec)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := o.Compile(core.CompileOptions{ReferentialNCs: true})
	if err != nil {
		t.Fatal(err)
	}
	if !comp.Report.WeaklySticky {
		t.Fatalf("not WS: %s", comp.Report.WSWitness)
	}
	for i, q := range ChainQueries(spec) {
		if _, err := qa.Answer(context.Background(), comp.Program, comp.Instance, q, qa.Options{MaxDepth: 12}); err != nil {
			t.Errorf("query %d (%s): %v", i, q, err)
		}
	}
}

func TestLinearDimensionEmitsSortableNames(t *testing.T) {
	spec := DimensionSpec{Name: "D", Levels: 2, Fanout: 3, BaseMembers: 6}
	d, err := LinearDimension(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range d.MembersOf("D_L0") {
		if !strings.HasPrefix(m, "D_m0_") {
			t.Errorf("member name %q not in the expected scheme", m)
		}
	}
}
