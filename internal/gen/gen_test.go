package gen

import (
	"context"
	"math"
	"testing"

	"repro/internal/chase"
	"repro/internal/core"
	dl "repro/internal/datalog"
	"repro/internal/qa"
	"repro/internal/rewrite"
)

func TestLinearDimensionShape(t *testing.T) {
	spec := DimensionSpec{Name: "D", Levels: 3, Fanout: 4, BaseMembers: 16}
	d, err := LinearDimension(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(d.MembersOf(spec.CategoryName(0))); got != 16 {
		t.Errorf("L0 members = %d, want 16", got)
	}
	if got := len(d.MembersOf(spec.CategoryName(1))); got != 4 {
		t.Errorf("L1 members = %d, want 4", got)
	}
	if got := len(d.MembersOf(spec.CategoryName(2))); got != 1 {
		t.Errorf("L2 members = %d, want 1", got)
	}
	if vs := d.CheckStrictness(); len(vs) != 0 {
		t.Errorf("generated dimension must be strict: %v", vs)
	}
	if vs := d.CheckHomogeneity(); len(vs) != 0 {
		t.Errorf("generated dimension must be homogeneous: %v", vs)
	}
	if !d.Summarizable(spec.CategoryName(0), spec.CategoryName(2)) {
		t.Error("generated dimension must be summarizable bottom to top")
	}
}

func TestLinearDimensionDeterminism(t *testing.T) {
	spec := DimensionSpec{Name: "D", Levels: 3, Fanout: 3, BaseMembers: 10}
	a, err := LinearDimension(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LinearDimension(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.MemberCount() != b.MemberCount() {
		t.Error("same spec must generate identical dimensions")
	}
}

func TestLinearDimensionInvalidSpec(t *testing.T) {
	for _, spec := range []DimensionSpec{
		{Name: "D", Levels: 0, Fanout: 2, BaseMembers: 4},
		{Name: "D", Levels: 2, Fanout: 0, BaseMembers: 4},
		{Name: "D", Levels: 2, Fanout: 2, BaseMembers: 0},
	} {
		if _, err := LinearDimension(spec); err == nil {
			t.Errorf("spec %+v must be rejected", spec)
		}
	}
}

func TestChainOntologyUpward(t *testing.T) {
	spec := ChainSpec{
		Dim:    DimensionSpec{Name: "D", Levels: 3, Fanout: 4, BaseMembers: 16},
		Tuples: 50,
		Upward: true,
		Seed:   1,
	}
	o, err := ChainOntology(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !o.IsUpwardOnly() {
		t.Error("upward chain must be upward-only")
	}
	comp, err := o.Compile(core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !comp.Report.WeaklySticky {
		t.Errorf("generated ontology must be WS: %s", comp.Report.WSWitness)
	}
	res, err := chase.Run(context.Background(), comp.Program, comp.Instance, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated {
		t.Fatal("chase must saturate")
	}
	// Every base tuple propagates to exactly one tuple per level
	// (strict hierarchy): R2 distinct count = distinct (top member,
	// val) pairs = number of base tuples (vals are unique).
	if got := res.Instance.Relation(UpRelName(2)).Len(); got != 50 {
		t.Errorf("R2 = %d tuples, want 50", got)
	}
	if res.NullsCreated != 0 {
		t.Error("upward chain must not invent nulls")
	}
}

func TestChainOntologyDownward(t *testing.T) {
	spec := ChainSpec{
		Dim:      DimensionSpec{Name: "D", Levels: 3, Fanout: 2, BaseMembers: 4},
		Tuples:   10,
		Downward: true,
		Seed:     2,
	}
	o, err := ChainOntology(spec)
	if err != nil {
		t.Fatal(err)
	}
	if o.IsUpwardOnly() {
		t.Error("downward chain is not upward-only")
	}
	comp, err := o.Compile(core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := chase.Run(context.Background(), comp.Program, comp.Instance, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated {
		t.Fatal("chase must saturate")
	}
	// Each top tuple fans out to its children: S0 = 10 × (children of
	// each top member down to L0) = 10 × 4 with fanout 2 over 2 hops
	// ... every L0 member maps up to the single L2 member, so each of
	// the 10 top tuples yields 4 S0 tuples.
	if got := res.Instance.Relation(DownRelName(0)).Len(); got != 40 {
		t.Errorf("S0 = %d tuples, want 40", got)
	}
	if res.NullsCreated == 0 {
		t.Error("downward rules must invent payload nulls")
	}
}

func TestEnginesAgreeOnGeneratedOntologies(t *testing.T) {
	// Cross-engine property: DetQA ≡ chase certain answers on every
	// generated ontology and query; rewriting agrees on the
	// upward-only ones.
	specs := []ChainSpec{
		{Dim: DimensionSpec{Name: "A", Levels: 2, Fanout: 3, BaseMembers: 9}, Tuples: 20, Upward: true, Seed: 3},
		{Dim: DimensionSpec{Name: "B", Levels: 3, Fanout: 2, BaseMembers: 8}, Tuples: 15, Upward: true, Seed: 4},
		{Dim: DimensionSpec{Name: "C", Levels: 3, Fanout: 2, BaseMembers: 4}, Tuples: 8, Downward: true, Seed: 5},
		{Dim: DimensionSpec{Name: "E", Levels: 2, Fanout: 4, BaseMembers: 8}, Tuples: 12, Upward: true, Downward: true, Seed: 6},
	}
	for si, spec := range specs {
		o, err := ChainOntology(spec)
		if err != nil {
			t.Fatal(err)
		}
		comp, err := o.Compile(core.CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range ChainQueries(spec) {
			oracle, err := qa.CertainAnswersViaChase(context.Background(), comp.Program, comp.Instance, q, qa.ChaseOptions{})
			if err != nil {
				t.Fatalf("spec %d query %d oracle: %v", si, qi, err)
			}
			det, err := qa.Answer(context.Background(), comp.Program, comp.Instance, q, qa.Options{
				MaxDepth: 2*spec.Dim.Levels + 4,
			})
			if err != nil {
				t.Fatalf("spec %d query %d det: %v", si, qi, err)
			}
			if !det.Equal(oracle) {
				t.Errorf("spec %d query %d (%s): DetQA %d answers, oracle %d\nDetQA: %soracle: %s",
					si, qi, q, det.Len(), oracle.Len(), det, oracle)
			}
			if o.IsUpwardOnly() {
				rew, err := rewrite.Answer(context.Background(), comp.Program, comp.Instance, q, rewrite.Options{})
				if err != nil {
					t.Fatalf("spec %d query %d rewrite: %v", si, qi, err)
				}
				if !rew.Equal(oracle) {
					t.Errorf("spec %d query %d: rewrite %d answers, oracle %d",
						si, qi, rew.Len(), oracle.Len())
				}
			}
		}
	}
}

func TestQualityWorkloadExactCleanCount(t *testing.T) {
	for _, ratio := range []float64{0.0, 0.25, 0.5, 1.0} {
		w, err := NewQualityWorkload(QualitySpec{
			Patients: 20, Days: 3, Wards: 2, DirtyRatio: ratio, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		a, err := w.Context.Assess(context.Background(), w.Instance)
		if err != nil {
			t.Fatal(err)
		}
		mq := a.Versions["Measurements"]
		if mq.Len() != w.ExpectedClean {
			t.Errorf("ratio %.2f: quality version = %d tuples, want %d",
				ratio, mq.Len(), w.ExpectedClean)
		}
		m := a.Measures["Measurements"]
		if m.Original != w.Total {
			t.Errorf("ratio %.2f: original = %d, want %d", ratio, m.Original, w.Total)
		}
		wantClean := float64(w.ExpectedClean) / float64(w.Total)
		if math.Abs(m.CleanFraction()-wantClean) > 1e-9 {
			t.Errorf("ratio %.2f: clean fraction = %v, want %v", ratio, m.CleanFraction(), wantClean)
		}
	}
}

func TestQualityWorkloadInvalidSpec(t *testing.T) {
	if _, err := NewQualityWorkload(QualitySpec{Patients: 0, Days: 1, Wards: 1}); err == nil {
		t.Error("invalid spec must be rejected")
	}
}

func TestChainQueriesValidity(t *testing.T) {
	spec := ChainSpec{
		Dim:      DimensionSpec{Name: "D", Levels: 3, Fanout: 2, BaseMembers: 4},
		Tuples:   5,
		Upward:   true,
		Downward: true,
		Seed:     8,
	}
	qs := ChainQueries(spec)
	if len(qs) == 0 {
		t.Fatal("no queries generated")
	}
	for i, q := range qs {
		if err := q.Validate(); err != nil {
			t.Errorf("query %d invalid: %v", i, err)
		}
	}
}

func TestMembersAtConvergesToOne(t *testing.T) {
	spec := DimensionSpec{Name: "D", Levels: 10, Fanout: 3, BaseMembers: 5}
	if spec.MembersAt(9) != 1 {
		t.Errorf("top level members = %d, want 1", spec.MembersAt(9))
	}
	if spec.MembersAt(0) != 5 {
		t.Errorf("bottom level members = %d, want 5", spec.MembersAt(0))
	}
}

func TestChaseCertainAnswersDropInventedPayload(t *testing.T) {
	// The "Extra" attribute query on S0 must return only "known"
	// from the top level... no: S0's Extra values are all invented
	// nulls (only the top level has "known"), so the certain answer
	// set is empty.
	spec := ChainSpec{
		Dim:      DimensionSpec{Name: "D", Levels: 2, Fanout: 2, BaseMembers: 4},
		Tuples:   6,
		Downward: true,
		Seed:     9,
	}
	o, err := ChainOntology(spec)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := o.Compile(core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := dl.NewQuery(dl.A("Q", dl.V("z")),
		dl.A(DownRelName(0), dl.V("c"), dl.V("x"), dl.V("z")))
	oracle, err := qa.CertainAnswersViaChase(context.Background(), comp.Program, comp.Instance, q, qa.ChaseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if oracle.Len() != 0 {
		t.Errorf("invented payloads must not be certain: %v", oracle)
	}
}
