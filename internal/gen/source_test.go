package gen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/source"
)

// TestFixtureHandlerETag pins the revalidation contract end to end:
// the handler's content-hash ETag round-trips through the HTTP source
// connector, a matching If-None-Match answers 304, and rewriting the
// file moves the ETag.
func TestFixtureHandlerETag(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "wards.ndjson")
	if err := os.WriteFile(file, []byte(`["W1","Sep/9","Tom Waits"]`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewFixtureHandler(dir))
	defer ts.Close()

	src := source.NewHTTP(ts.URL+"/wards.ndjson", source.Schema{Relation: "PatientWard"})
	ctx := context.Background()
	r1, err := src.Fetch(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Tuples) != 1 || r1.Version == "" {
		t.Fatalf("first fetch: %+v", r1)
	}
	r2, err := src.Fetch(ctx, r1.Version)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Unchanged {
		t.Fatalf("revalidation fetched a full body: %+v", r2)
	}
	if err := os.WriteFile(file, []byte(`["W1","Sep/9","Tom Waits"]`+"\n"+`["W2","Sep/9","Lou Reed"]`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	r3, err := src.Fetch(ctx, r1.Version)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Unchanged || len(r3.Tuples) != 2 || r3.Version == r1.Version {
		t.Fatalf("rewrite not observed: %+v", r3)
	}

	// Path traversal is confined to the fixture dir.
	resp, err := http.Get(ts.URL + "/../source.go")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("traversal answered %d", resp.StatusCode)
	}
}
