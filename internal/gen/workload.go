package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/eval"
	"repro/internal/hm"
	"repro/internal/quality"
	"repro/internal/storage"
)

// QualitySpec parameterizes the scalable hospital-style quality
// workload used by experiment C4 (quality-measure sweep) and the
// Figure 2 pipeline benchmark.
type QualitySpec struct {
	// Patients is the number of patients; each contributes one
	// measurement per day.
	Patients int
	// Days is the number of measurement days.
	Days int
	// Wards is the number of wards per unit (two units: one whose
	// measurements meet the guideline and one whose do not).
	Wards int
	// DirtyRatio is the fraction of patients placed in the
	// non-compliant unit (0.0 = all clean, 1.0 = all dirty).
	DirtyRatio float64
	// Seed drives patient-to-ward assignment.
	Seed int64
}

// QualityWorkload builds a context and an instance under assessment:
// the ontology has a Ward→Unit dimension with a GoodUnit (certified
// nurses, right thermometers via the guideline rule) and a BadUnit.
// Exactly the measurements of patients assigned to GoodUnit wards
// survive into the quality version.
type QualityWorkload struct {
	Context  *quality.Context
	Instance *storage.Instance
	// Ontology and Config are the pieces Context was built from, so
	// callers can rebuild equivalent contexts through other entry
	// points (the mdqa facade benchmarks do).
	Ontology *core.Ontology
	Config   quality.Config
	// ExpectedClean is the number of measurements that must survive.
	ExpectedClean int
	// Total is the total number of measurements.
	Total int
}

// NewQualityWorkload builds the workload.
func NewQualityWorkload(spec QualitySpec) (*QualityWorkload, error) {
	if spec.Patients < 1 || spec.Days < 1 || spec.Wards < 1 {
		return nil, fmt.Errorf("gen: invalid quality spec %+v", spec)
	}
	s := hm.NewDimensionSchema("Site")
	for _, c := range []string{"Ward", "Unit"} {
		if err := s.AddCategory(c); err != nil {
			return nil, err
		}
	}
	if err := s.AddEdge("Ward", "Unit"); err != nil {
		return nil, err
	}
	dim := hm.NewDimension(s)
	for _, u := range []string{"GoodUnit", "BadUnit"} {
		if err := dim.AddMember("Unit", u); err != nil {
			return nil, err
		}
	}
	for i := 0; i < spec.Wards; i++ {
		gw, bw := fmt.Sprintf("GW%d", i), fmt.Sprintf("BW%d", i)
		if err := dim.AddMember("Ward", gw); err != nil {
			return nil, err
		}
		if err := dim.AddMember("Ward", bw); err != nil {
			return nil, err
		}
		if err := dim.AddRollup(gw, "GoodUnit"); err != nil {
			return nil, err
		}
		if err := dim.AddRollup(bw, "BadUnit"); err != nil {
			return nil, err
		}
	}

	tdim, err := timeDimension(spec.Days)
	if err != nil {
		return nil, err
	}
	if err := registerTimes(tdim, spec.Patients, spec.Days); err != nil {
		return nil, err
	}

	o := core.NewOntology()
	if err := o.AddDimension(dim); err != nil {
		return nil, err
	}
	if err := o.AddDimension(tdim); err != nil {
		return nil, err
	}
	for _, rel := range []*core.CategoricalRelation{
		core.NewCategoricalRelation("PatientWard",
			core.Cat("Ward", "Site", "Ward"),
			core.Cat("Day", "T", "Day"),
			core.NonCat("Patient")),
		core.NewCategoricalRelation("PatientUnit",
			core.Cat("Unit", "Site", "Unit"),
			core.Cat("Day", "T", "Day"),
			core.NonCat("Patient")),
	} {
		if err := o.AddRelation(rel); err != nil {
			return nil, err
		}
	}
	rollPred := hm.RollupPredName("Ward", "Unit") // UnitWard
	if err := o.AddRule(datalog.NewTGD("up",
		[]datalog.Atom{datalog.A("PatientUnit", datalog.V("u"), datalog.V("d"), datalog.V("p"))},
		[]datalog.Atom{
			datalog.A("PatientWard", datalog.V("w"), datalog.V("d"), datalog.V("p")),
			datalog.A(rollPred, datalog.V("u"), datalog.V("w")),
		})); err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(spec.Seed))
	dirtyCount := int(float64(spec.Patients) * spec.DirtyRatio)
	d := storage.NewInstance()
	if _, err := d.CreateRelation("Measurements", "Time", "Patient", "Value"); err != nil {
		return nil, err
	}
	clean := 0
	for p := 0; p < spec.Patients; p++ {
		patient := fmt.Sprintf("p%d", p)
		dirty := p < dirtyCount
		for day := 0; day < spec.Days; day++ {
			var ward string
			if dirty {
				ward = fmt.Sprintf("BW%d", rng.Intn(spec.Wards))
			} else {
				ward = fmt.Sprintf("GW%d", rng.Intn(spec.Wards))
				clean++
			}
			dayName := dayName(day)
			if err := o.AddFact("PatientWard", ward, dayName, patient); err != nil {
				return nil, err
			}
			tm := timeName(day, p)
			val := fmt.Sprintf("%.1f", 36.0+rng.Float64()*3)
			d.MustInsert("Measurements", datalog.C(tm), datalog.C(patient), datalog.C(val))
		}
	}

	t, p, v := datalog.V("t"), datalog.V("p"), datalog.V("v")
	du := datalog.V("d")
	cfg := quality.Config{
		QualityRules: []*eval.Rule{
			eval.NewRule("guideline",
				datalog.A("RightTherm", t, p),
				datalog.A("PatientUnit", datalog.C("GoodUnit"), du, p),
				datalog.A("DayTime", du, t)),
		},
		Versions: []quality.VersionSpec{{
			Original: "Measurements",
			Pred:     "Measurements_q",
			Rules: []*eval.Rule{eval.NewRule("measurements-q",
				datalog.A("Measurements_q", t, p, v),
				datalog.A("Measurements", t, p, v),
				datalog.A("RightTherm", t, p))},
		}},
	}
	ctx, err := quality.NewContext(o, cfg)
	if err != nil {
		return nil, err
	}
	return &QualityWorkload{
		Context:       ctx,
		Instance:      d,
		Ontology:      o,
		Config:        cfg,
		ExpectedClean: clean,
		Total:         spec.Patients * spec.Days,
	}, nil
}

// timeDimension builds a Time→Day hierarchy with one day member per
// day index; registerTimes then adds one time member per
// (day, patient) pair with its rollup.
func timeDimension(days int) (*hm.Dimension, error) {
	s := hm.NewDimensionSchema("T")
	for _, c := range []string{"Time", "Day"} {
		if err := s.AddCategory(c); err != nil {
			return nil, err
		}
	}
	if err := s.AddEdge("Time", "Day"); err != nil {
		return nil, err
	}
	d := hm.NewDimension(s)
	for i := 0; i < days; i++ {
		if err := d.AddMember("Day", dayName(i)); err != nil {
			return nil, err
		}
	}
	return d, nil
}

func dayName(i int) string { return fmt.Sprintf("d%03d", i) }

func timeName(day, patient int) string {
	return fmt.Sprintf("%s-t%04d", dayName(day), patient)
}

// registerTimes adds the measurement time members and their rollups
// for the workload's patients and days.
func registerTimes(dim *hm.Dimension, patients, days int) error {
	for p := 0; p < patients; p++ {
		for day := 0; day < days; day++ {
			tm := timeName(day, p)
			if err := dim.AddMember("Time", tm); err != nil {
				return err
			}
			if err := dim.AddRollup(tm, dayName(day)); err != nil {
				return err
			}
		}
	}
	return nil
}
