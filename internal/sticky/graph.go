// Package sticky classifies Datalog± programs into the syntactic
// classes the paper relies on: linear, guarded, sticky, weakly-acyclic
// and weakly-sticky (WS). Section III of the paper argues that the
// compiled multidimensional ontologies are weakly sticky, which is what
// makes conjunctive query answering decidable (and tractable in data
// complexity); this package provides the executable membership tests.
//
// The definitions follow Calì, Gottlob and Pieris, "Towards more
// expressive ontology languages: the query answering problem" (AIJ
// 2012), and Fagin et al.'s weak acyclicity (TCS 2005).
package sticky

import (
	"sort"

	"repro/internal/datalog"
)

// edge is a dependency-graph edge between predicate positions. Special
// edges target positions where an existential variable is created.
type edge struct {
	from, to datalog.Position
	special  bool
}

// DependencyGraph is the position dependency graph of a set of TGDs:
// nodes are predicate positions; for every TGD and every universal
// variable x occurring in the body at position p and in the head,
// there is a normal edge from p to every head position of x, and a
// special edge from p to every head position holding an existential
// variable.
type DependencyGraph struct {
	positions []datalog.Position
	posIndex  map[datalog.Position]int
	edges     []edge
	adj       map[int][]int // adjacency over position indices
}

// BuildDependencyGraph constructs the graph for the program's TGDs.
func BuildDependencyGraph(prog *datalog.Program) *DependencyGraph {
	g := &DependencyGraph{posIndex: map[datalog.Position]int{}, adj: map[int][]int{}}
	addPos := func(p datalog.Position) int {
		if i, ok := g.posIndex[p]; ok {
			return i
		}
		i := len(g.positions)
		g.positions = append(g.positions, p)
		g.posIndex[p] = i
		return i
	}
	// Register every position of every predicate occurring anywhere.
	for _, pi := range prog.Predicates() {
		for i := 0; i < pi.Arity; i++ {
			addPos(datalog.Position{Pred: pi.Name, Index: i})
		}
	}
	addEdge := func(from, to datalog.Position, special bool) {
		f, t := addPos(from), addPos(to)
		g.edges = append(g.edges, edge{from: from, to: to, special: special})
		g.adj[f] = append(g.adj[f], t)
	}
	for _, tgd := range prog.TGDs {
		exVars := map[datalog.Term]bool{}
		for _, v := range tgd.ExistentialVars() {
			exVars[v] = true
		}
		headVars := map[datalog.Term]bool{}
		for _, v := range datalog.VarsOfAtoms(tgd.Head) {
			headVars[v] = true
		}
		// Positions of each variable in body and head.
		bodyPos := varPositions(tgd.Body)
		headPos := varPositions(tgd.Head)
		for v, bps := range bodyPos {
			if !headVars[v] {
				continue
			}
			for _, bp := range bps {
				for _, hp := range headPos[v] {
					addEdge(bp, hp, false)
				}
				for ev := range exVars {
					for _, ep := range headPos[ev] {
						addEdge(bp, ep, true)
					}
				}
			}
		}
	}
	return g
}

// varPositions maps each variable to the positions it occupies in the
// conjunction.
func varPositions(atoms []datalog.Atom) map[datalog.Term][]datalog.Position {
	out := map[datalog.Term][]datalog.Position{}
	for _, a := range atoms {
		for i, t := range a.Args {
			if t.IsVar() {
				out[t] = append(out[t], datalog.Position{Pred: a.Pred, Index: i})
			}
		}
	}
	return out
}

// Positions returns all graph positions, sorted.
func (g *DependencyGraph) Positions() []datalog.Position {
	out := make([]datalog.Position, len(g.positions))
	copy(out, g.positions)
	datalog.SortPositions(out)
	return out
}

// WeaklyAcyclic reports whether no cycle traverses a special edge —
// Fagin et al.'s sufficient condition for chase termination.
func (g *DependencyGraph) WeaklyAcyclic() bool {
	comp := g.sccs()
	for _, e := range g.edges {
		if !e.special {
			continue
		}
		f, t := g.posIndex[e.from], g.posIndex[e.to]
		if comp[f] == comp[t] {
			return false
		}
	}
	return true
}

// InfiniteRankPositions returns Π∞: positions reachable from a cycle
// that contains a special edge. During the chase, only these positions
// can host infinitely many distinct nulls; the finite-rank positions
// ΠF = all \ Π∞ can take only polynomially many values, which is what
// weak stickiness exploits.
func (g *DependencyGraph) InfiniteRankPositions() map[datalog.Position]bool {
	comp := g.sccs()
	// A "bad" SCC contains a special edge inside it.
	badComp := map[int]bool{}
	for _, e := range g.edges {
		f, t := g.posIndex[e.from], g.posIndex[e.to]
		if comp[f] == comp[t] && e.special {
			badComp[comp[f]] = true
		}
	}
	// BFS from every node of every bad SCC.
	reach := make([]bool, len(g.positions))
	var queue []int
	for i := range g.positions {
		if badComp[comp[i]] {
			reach[i] = true
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, m := range g.adj[n] {
			if !reach[m] {
				reach[m] = true
				queue = append(queue, m)
			}
		}
	}
	out := map[datalog.Position]bool{}
	for i, r := range reach {
		if r {
			out[g.positions[i]] = true
		}
	}
	return out
}

// FiniteRankPositions returns ΠF, sorted.
func (g *DependencyGraph) FiniteRankPositions() []datalog.Position {
	inf := g.InfiniteRankPositions()
	var out []datalog.Position
	for _, p := range g.positions {
		if !inf[p] {
			out = append(out, p)
		}
	}
	datalog.SortPositions(out)
	return out
}

// sccs computes strongly connected components (iterative Tarjan),
// returning the component id per node index.
func (g *DependencyGraph) sccs() []int {
	n := len(g.positions)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	next := 0
	compCount := 0

	type frame struct {
		node int
		iter int
	}
	for start := 0; start < n; start++ {
		if index[start] != -1 {
			continue
		}
		var frames []frame
		frames = append(frames, frame{node: start})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.node
			if f.iter == 0 {
				index[v] = next
				low[v] = next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.iter < len(g.adj[v]) {
				w := g.adj[v][f.iter]
				f.iter++
				if index[w] == -1 {
					frames = append(frames, frame{node: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// Post-order: fold low into parent, pop SCC root.
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = compCount
					if w == v {
						break
					}
				}
				compCount++
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].node
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}
	return comp
}

// sortedPositionSet renders a position set as a sorted slice, for
// deterministic reports.
func sortedPositionSet(m map[datalog.Position]bool) []datalog.Position {
	out := make([]datalog.Position, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pred != out[j].Pred {
			return out[i].Pred < out[j].Pred
		}
		return out[i].Index < out[j].Index
	})
	return out
}
