package sticky

import (
	"fmt"
	"strings"

	"repro/internal/datalog"
)

// Marking is the result of the sticky marking procedure: for each TGD
// (by index into the program), the set of marked body variables, plus
// the set of marked positions across the program.
type Marking struct {
	// MarkedVars[i] is the set of marked variables of prog.TGDs[i].
	MarkedVars []map[datalog.Term]bool
	// MarkedPositions holds every body position at which some marked
	// variable occurs in some rule.
	MarkedPositions map[datalog.Position]bool
}

// ComputeMarking runs the sticky marking procedure of Calì–Gottlob–
// Pieris:
//
//  1. For every TGD, mark each body variable that does not occur in
//     the head.
//  2. Propagate: if a head variable of some TGD occurs (in the head)
//     at a marked position — a position where a marked body variable
//     occurs in some rule — mark it in that TGD's body. Repeat to
//     fixpoint.
func ComputeMarking(prog *datalog.Program) *Marking {
	m := &Marking{
		MarkedVars:      make([]map[datalog.Term]bool, len(prog.TGDs)),
		MarkedPositions: map[datalog.Position]bool{},
	}
	// Step 1: variables absent from the head.
	for i, tgd := range prog.TGDs {
		m.MarkedVars[i] = map[datalog.Term]bool{}
		inHead := map[datalog.Term]bool{}
		for _, v := range datalog.VarsOfAtoms(tgd.Head) {
			inHead[v] = true
		}
		for _, v := range tgd.UniversalVars() {
			if !inHead[v] {
				m.MarkedVars[i][v] = true
			}
		}
	}
	recomputePositions := func() {
		m.MarkedPositions = map[datalog.Position]bool{}
		for i, tgd := range prog.TGDs {
			for _, a := range tgd.Body {
				for j, t := range a.Args {
					if t.IsVar() && m.MarkedVars[i][t] {
						m.MarkedPositions[datalog.Position{Pred: a.Pred, Index: j}] = true
					}
				}
			}
		}
	}
	recomputePositions()
	// Step 2: propagate through heads.
	for {
		changed := false
		for i, tgd := range prog.TGDs {
			for _, h := range tgd.Head {
				for j, t := range h.Args {
					if !t.IsVar() {
						continue
					}
					pos := datalog.Position{Pred: h.Pred, Index: j}
					if m.MarkedPositions[pos] && !m.MarkedVars[i][t] {
						// Only universal variables can be marked in a
						// body; existential head variables have no
						// body occurrence, so marking them is a no-op,
						// but we record universals only.
						if occursInBody(tgd, t) {
							m.MarkedVars[i][t] = true
							changed = true
						}
					}
				}
			}
		}
		if !changed {
			return m
		}
		recomputePositions()
	}
}

func occursInBody(tgd *datalog.TGD, v datalog.Term) bool {
	for _, a := range tgd.Body {
		for _, t := range a.Args {
			if t == v {
				return true
			}
		}
	}
	return false
}

// bodyOccurrenceCount counts the occurrences (not distinct atoms) of
// the variable in the TGD body.
func bodyOccurrenceCount(tgd *datalog.TGD, v datalog.Term) int {
	n := 0
	for _, a := range tgd.Body {
		for _, t := range a.Args {
			if t == v {
				n++
			}
		}
	}
	return n
}

// Report is the classification result for a program.
type Report struct {
	Linear        bool
	Guarded       bool
	WeaklyAcyclic bool
	Sticky        bool
	WeaklySticky  bool
	// FiniteRank and InfiniteRank partition the predicate positions.
	FiniteRank   []datalog.Position
	InfiniteRank []datalog.Position
	// StickyWitness and WSWitness name a violating rule/variable when
	// the respective test fails (empty otherwise).
	StickyWitness string
	WSWitness     string
}

// String summarizes the report.
func (r *Report) String() string {
	var classes []string
	add := func(ok bool, name string) {
		if ok {
			classes = append(classes, name)
		}
	}
	add(r.Linear, "linear")
	add(r.Guarded, "guarded")
	add(r.WeaklyAcyclic, "weakly-acyclic")
	add(r.Sticky, "sticky")
	add(r.WeaklySticky, "weakly-sticky")
	if len(classes) == 0 {
		classes = append(classes, "(none)")
	}
	return fmt.Sprintf("classes: %s; finite-rank positions: %d, infinite-rank: %d",
		strings.Join(classes, ", "), len(r.FiniteRank), len(r.InfiniteRank))
}

// Classify runs every membership test on the program's TGDs.
func Classify(prog *datalog.Program) *Report {
	g := BuildDependencyGraph(prog)
	inf := g.InfiniteRankPositions()
	marking := ComputeMarking(prog)

	rep := &Report{
		Linear:        true,
		Guarded:       true,
		WeaklyAcyclic: g.WeaklyAcyclic(),
		Sticky:        true,
		WeaklySticky:  true,
		FiniteRank:    g.FiniteRankPositions(),
		InfiniteRank:  sortedPositionSet(inf),
	}

	for i, tgd := range prog.TGDs {
		if len(tgd.Body) != 1 {
			rep.Linear = false
		}
		if !isGuarded(tgd) {
			rep.Guarded = false
		}
		for v := range marking.MarkedVars[i] {
			occ := bodyOccurrenceCount(tgd, v)
			if occ <= 1 {
				continue
			}
			// A marked variable occurring more than once breaks
			// stickiness.
			if rep.Sticky {
				rep.Sticky = false
				rep.StickyWitness = fmt.Sprintf("rule %s: marked variable %s occurs %d times in body", tgd.ID, v, occ)
			}
			// Weak stickiness additionally allows it when at least one
			// occurrence is at a finite-rank position.
			if !occursAtFiniteRank(tgd, v, inf) {
				if rep.WeaklySticky {
					rep.WeaklySticky = false
					rep.WSWitness = fmt.Sprintf("rule %s: marked variable %s occurs only at infinite-rank positions", tgd.ID, v)
				}
			}
		}
	}
	// Sticky implies weakly-sticky by definition; keep consistent even
	// for edge cases of the witness search.
	if rep.Sticky {
		rep.WeaklySticky = true
		rep.WSWitness = ""
	}
	return rep
}

// isGuarded reports whether some body atom contains every universal
// variable of the TGD body.
func isGuarded(tgd *datalog.TGD) bool {
	vars := tgd.UniversalVars()
	for _, a := range tgd.Body {
		has := map[datalog.Term]bool{}
		for _, t := range a.Args {
			if t.IsVar() {
				has[t] = true
			}
		}
		all := true
		for _, v := range vars {
			if !has[v] {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// occursAtFiniteRank reports whether v occurs in the body at some
// position of finite rank.
func occursAtFiniteRank(tgd *datalog.TGD, v datalog.Term, inf map[datalog.Position]bool) bool {
	for _, a := range tgd.Body {
		for i, t := range a.Args {
			if t == v && !inf[datalog.Position{Pred: a.Pred, Index: i}] {
				return true
			}
		}
	}
	return false
}
