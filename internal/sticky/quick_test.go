package sticky

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	dl "repro/internal/datalog"
)

// programValue generates small random TGD programs over a fixed
// predicate pool, existentials included, to stress the classifier's
// internal consistency.
type programValue struct {
	P *dl.Program
}

func (programValue) Generate(r *rand.Rand, _ int) reflect.Value {
	preds := []struct {
		name  string
		arity int
	}{{"P", 2}, {"Q", 2}, {"R", 1}, {"S", 3}}
	vars := []dl.Term{dl.V("x"), dl.V("y"), dl.V("z"), dl.V("w")}
	mkAtom := func() dl.Atom {
		p := preds[r.Intn(len(preds))]
		args := make([]dl.Term, p.arity)
		for i := range args {
			args[i] = vars[r.Intn(len(vars))]
		}
		return dl.Atom{Pred: p.name, Args: args}
	}
	prog := dl.NewProgram()
	rules := 1 + r.Intn(4)
	for i := 0; i < rules; i++ {
		nBody := 1 + r.Intn(2)
		body := make([]dl.Atom, nBody)
		for j := range body {
			body[j] = mkAtom()
		}
		head := []dl.Atom{mkAtom()}
		prog.AddTGD(dl.NewTGD(fmt.Sprintf("g%d", i), head, body))
	}
	return reflect.ValueOf(programValue{P: prog})
}

func TestQuickStickyImpliesWeaklySticky(t *testing.T) {
	f := func(pv programValue) bool {
		rep := Classify(pv.P)
		if rep.Sticky && !rep.WeaklySticky {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickWeakAcyclicityMatchesRankPartition(t *testing.T) {
	// WeaklyAcyclic <=> no infinite-rank positions.
	f := func(pv programValue) bool {
		g := BuildDependencyGraph(pv.P)
		return g.WeaklyAcyclic() == (len(g.InfiniteRankPositions()) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickRankPartitionCoversAllPositions(t *testing.T) {
	f := func(pv programValue) bool {
		g := BuildDependencyGraph(pv.P)
		inf := g.InfiniteRankPositions()
		fin := g.FiniteRankPositions()
		return len(inf)+len(fin) == len(g.Positions())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickLinearImpliesGuarded(t *testing.T) {
	// A single body atom trivially guards all its variables.
	f := func(pv programValue) bool {
		rep := Classify(pv.P)
		if rep.Linear && !rep.Guarded {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickNonWSHasWitness(t *testing.T) {
	f := func(pv programValue) bool {
		rep := Classify(pv.P)
		if !rep.WeaklySticky && rep.WSWitness == "" {
			return false
		}
		if !rep.Sticky && rep.StickyWitness == "" {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickClassifyDeterministic(t *testing.T) {
	f := func(pv programValue) bool {
		a := Classify(pv.P)
		b := Classify(pv.P)
		return a.Sticky == b.Sticky && a.WeaklySticky == b.WeaklySticky &&
			a.WeaklyAcyclic == b.WeaklyAcyclic && len(a.FiniteRank) == len(b.FiniteRank)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
