package sticky

import (
	"strings"
	"testing"

	dl "repro/internal/datalog"
)

func prog(tgds ...*dl.TGD) *dl.Program {
	p := dl.NewProgram()
	for _, t := range tgds {
		p.AddTGD(t)
	}
	return p
}

// hospitalProgram compiles the paper's dimensional rules (7), (8), (9).
func hospitalProgram() *dl.Program {
	r7 := dl.NewTGD("r7",
		[]dl.Atom{dl.A("PatientUnit", dl.V("u"), dl.V("d"), dl.V("p"))},
		[]dl.Atom{
			dl.A("PatientWard", dl.V("w"), dl.V("d"), dl.V("p")),
			dl.A("UnitWard", dl.V("u"), dl.V("w")),
		})
	r8 := dl.NewTGD("r8",
		[]dl.Atom{dl.A("Shifts", dl.V("w"), dl.V("d"), dl.V("n"), dl.V("z"))},
		[]dl.Atom{
			dl.A("WorkingSchedules", dl.V("u"), dl.V("d"), dl.V("n"), dl.V("t")),
			dl.A("UnitWard", dl.V("u"), dl.V("w")),
		})
	r9 := dl.NewTGD("r9",
		[]dl.Atom{
			dl.A("InstitutionUnit", dl.V("i"), dl.V("u")),
			dl.A("PatientUnit", dl.V("u"), dl.V("d"), dl.V("p")),
		},
		[]dl.Atom{dl.A("DischargePatients", dl.V("i"), dl.V("d"), dl.V("p"))})
	return prog(r7, r8, r9)
}

func TestDependencyGraphEdges(t *testing.T) {
	// ∃z S(y,z) <- R(x,y): normal R[1]->S[0], special R[1]->S[1].
	p := prog(dl.NewTGD("r",
		[]dl.Atom{dl.A("S", dl.V("y"), dl.V("z"))},
		[]dl.Atom{dl.A("R", dl.V("x"), dl.V("y"))}))
	g := BuildDependencyGraph(p)
	var normal, special int
	for _, e := range g.edges {
		if e.special {
			special++
			if e.from != (dl.Position{Pred: "R", Index: 1}) || e.to != (dl.Position{Pred: "S", Index: 1}) {
				t.Errorf("special edge %v -> %v unexpected", e.from, e.to)
			}
		} else {
			normal++
			if e.from != (dl.Position{Pred: "R", Index: 1}) || e.to != (dl.Position{Pred: "S", Index: 0}) {
				t.Errorf("normal edge %v -> %v unexpected", e.from, e.to)
			}
		}
	}
	if normal != 1 || special != 1 {
		t.Errorf("edges: normal=%d special=%d, want 1/1", normal, special)
	}
	if len(g.Positions()) != 4 {
		t.Errorf("positions = %v, want R[0],R[1],S[0],S[1]", g.Positions())
	}
}

func TestWeaklyAcyclic(t *testing.T) {
	// Acyclic: R -> S -> T.
	p := prog(
		dl.NewTGD("a", []dl.Atom{dl.A("S", dl.V("y"), dl.V("z"))}, []dl.Atom{dl.A("R", dl.V("x"), dl.V("y"))}),
		dl.NewTGD("b", []dl.Atom{dl.A("T", dl.V("x"), dl.V("y"))}, []dl.Atom{dl.A("S", dl.V("x"), dl.V("y"))}),
	)
	if !BuildDependencyGraph(p).WeaklyAcyclic() {
		t.Error("chain program must be weakly acyclic")
	}
	// Special self-loop: ∃z R(y,z) <- R(x,y).
	loop := prog(dl.NewTGD("l",
		[]dl.Atom{dl.A("R", dl.V("y"), dl.V("z"))},
		[]dl.Atom{dl.A("R", dl.V("x"), dl.V("y"))}))
	if BuildDependencyGraph(loop).WeaklyAcyclic() {
		t.Error("existential self-loop must break weak acyclicity")
	}
	// Normal-only cycle is fine: R(y,x) <- R(x,y).
	swap := prog(dl.NewTGD("s",
		[]dl.Atom{dl.A("R", dl.V("y"), dl.V("x"))},
		[]dl.Atom{dl.A("R", dl.V("x"), dl.V("y"))}))
	if !BuildDependencyGraph(swap).WeaklyAcyclic() {
		t.Error("cycle without special edges keeps weak acyclicity")
	}
}

func TestInfiniteRankPositions(t *testing.T) {
	// ∃z R(y,z) <- R(x,y): R[1] on a special cycle; R[0] reachable.
	p := prog(dl.NewTGD("l",
		[]dl.Atom{dl.A("R", dl.V("y"), dl.V("z"))},
		[]dl.Atom{dl.A("R", dl.V("x"), dl.V("y"))}))
	g := BuildDependencyGraph(p)
	inf := g.InfiniteRankPositions()
	if !inf[dl.Position{Pred: "R", Index: 1}] {
		t.Error("R[1] must have infinite rank (special self-loop)")
	}
	if !inf[dl.Position{Pred: "R", Index: 0}] {
		t.Error("R[0] must have infinite rank (reachable from the cycle)")
	}
	if len(g.FiniteRankPositions()) != 0 {
		t.Errorf("finite-rank = %v, want none", g.FiniteRankPositions())
	}
}

func TestInfiniteRankReachability(t *testing.T) {
	// The cycle contaminates downstream positions only.
	p := prog(
		dl.NewTGD("l",
			[]dl.Atom{dl.A("R", dl.V("y"), dl.V("z"))},
			[]dl.Atom{dl.A("R", dl.V("x"), dl.V("y"))}),
		dl.NewTGD("copy",
			[]dl.Atom{dl.A("S", dl.V("a"))},
			[]dl.Atom{dl.A("R", dl.V("a"), dl.V("b"))}),
		dl.NewTGD("island",
			[]dl.Atom{dl.A("Q", dl.V("a"))},
			[]dl.Atom{dl.A("P", dl.V("a"))}),
	)
	g := BuildDependencyGraph(p)
	inf := g.InfiniteRankPositions()
	if !inf[dl.Position{Pred: "S", Index: 0}] {
		t.Error("S[0] is fed from R[0]: infinite rank")
	}
	if inf[dl.Position{Pred: "P", Index: 0}] || inf[dl.Position{Pred: "Q", Index: 0}] {
		t.Error("island P->Q must stay finite rank")
	}
}

func TestMarkingInitial(t *testing.T) {
	// S(x) <- P(x,y): y not in head => marked.
	p := prog(dl.NewTGD("r",
		[]dl.Atom{dl.A("S", dl.V("x"))},
		[]dl.Atom{dl.A("P", dl.V("x"), dl.V("y"))}))
	m := ComputeMarking(p)
	if !m.MarkedVars[0][dl.V("y")] {
		t.Error("y must be marked (absent from head)")
	}
	if m.MarkedVars[0][dl.V("x")] {
		t.Error("x must not be marked")
	}
	if !m.MarkedPositions[dl.Position{Pred: "P", Index: 1}] {
		t.Error("P[1] must be a marked position")
	}
}

func TestMarkingPropagation(t *testing.T) {
	// σ1: S(x) <- P(x,y)         => y marked at P[1]
	// σ2: P(u,v) <- Q(u,v)       => head var v sits at marked P[1] => v marked at Q[1]
	// σ3: Q(a,b) <- T(a,b)       => head var b sits at marked Q[1] => b marked at T[1]
	p := prog(
		dl.NewTGD("s1", []dl.Atom{dl.A("S", dl.V("x"))}, []dl.Atom{dl.A("P", dl.V("x"), dl.V("y"))}),
		dl.NewTGD("s2", []dl.Atom{dl.A("P", dl.V("u"), dl.V("v"))}, []dl.Atom{dl.A("Q", dl.V("u"), dl.V("v"))}),
		dl.NewTGD("s3", []dl.Atom{dl.A("Q", dl.V("a"), dl.V("b"))}, []dl.Atom{dl.A("T", dl.V("a"), dl.V("b"))}),
	)
	m := ComputeMarking(p)
	if !m.MarkedVars[1][dl.V("v")] {
		t.Error("v must be marked by propagation into σ2")
	}
	if !m.MarkedVars[2][dl.V("b")] {
		t.Error("b must be marked by two-step propagation into σ3")
	}
	if m.MarkedVars[1][dl.V("u")] || m.MarkedVars[2][dl.V("a")] {
		t.Error("u/a feed unmarked positions and must stay unmarked")
	}
}

func TestClassifySticky(t *testing.T) {
	// Canonical sticky rule: ∃z R(y,z) <- R(x,y): x marked, occurs
	// once; sticky holds despite infinite rank.
	p := prog(dl.NewTGD("l",
		[]dl.Atom{dl.A("R", dl.V("y"), dl.V("z"))},
		[]dl.Atom{dl.A("R", dl.V("x"), dl.V("y"))}))
	rep := Classify(p)
	if !rep.Sticky || !rep.WeaklySticky {
		t.Errorf("linear existential loop is sticky: %+v", rep)
	}
	if !rep.Linear || !rep.Guarded {
		t.Error("single-body-atom rule is linear and guarded")
	}
	if rep.WeaklyAcyclic {
		t.Error("special self-loop is not weakly acyclic")
	}
}

func TestClassifyNonStickyButWS(t *testing.T) {
	// T(x) <- P(x,y), Q(y,x): y marked, occurs twice, but every
	// position has finite rank (no existentials) => WS, not sticky.
	p := prog(dl.NewTGD("j",
		[]dl.Atom{dl.A("T", dl.V("x"))},
		[]dl.Atom{dl.A("P", dl.V("x"), dl.V("y")), dl.A("Q", dl.V("y"), dl.V("x"))}))
	rep := Classify(p)
	if rep.Sticky {
		t.Error("marked join variable must break stickiness")
	}
	if rep.StickyWitness == "" || !strings.Contains(rep.StickyWitness, "y") {
		t.Errorf("witness must name the variable: %q", rep.StickyWitness)
	}
	if !rep.WeaklySticky {
		t.Errorf("finite-rank join keeps weak stickiness: %s", rep.WSWitness)
	}
	if !rep.WeaklyAcyclic {
		t.Error("no special edges: weakly acyclic")
	}
}

func TestClassifyNotWeaklySticky(t *testing.T) {
	// σ1: ∃z R(y,z) <- R(x,y)  — R[0], R[1] infinite rank.
	// σ2: S(x) <- R(x,y), R(y,x) — y marked, occurs only at R
	// positions of infinite rank => not WS.
	p := prog(
		dl.NewTGD("l",
			[]dl.Atom{dl.A("R", dl.V("y"), dl.V("z"))},
			[]dl.Atom{dl.A("R", dl.V("x"), dl.V("y"))}),
		dl.NewTGD("j",
			[]dl.Atom{dl.A("S", dl.V("x"))},
			[]dl.Atom{dl.A("R", dl.V("x"), dl.V("y")), dl.A("R", dl.V("y"), dl.V("x"))}),
	)
	rep := Classify(p)
	if rep.WeaklySticky {
		t.Error("marked join at infinite-rank-only positions must break WS")
	}
	if rep.WSWitness == "" {
		t.Error("WS witness expected")
	}
	if rep.Sticky {
		t.Error("cannot be sticky if not weakly sticky")
	}
}

func TestClassifyHospitalOntology(t *testing.T) {
	// Section III claim (experiment C3): the compiled MD ontology is
	// weakly sticky. It is not sticky (rule (7) joins PatientWard and
	// UnitWard on the marked ward variable) and not linear.
	rep := Classify(hospitalProgram())
	if !rep.WeaklySticky {
		t.Fatalf("hospital ontology must be WS: %s", rep.WSWitness)
	}
	if rep.Sticky {
		t.Error("hospital ontology is not sticky (marked join variable w in rule 7)")
	}
	if rep.Linear {
		t.Error("rules 7/8 have two body atoms")
	}
	if !rep.WeaklyAcyclic {
		t.Error("hospital ontology has no existential cycles: weakly acyclic")
	}
	if len(rep.InfiniteRank) != 0 {
		t.Errorf("no infinite-rank positions expected, got %v", rep.InfiniteRank)
	}
}

func TestClassifyGuardedness(t *testing.T) {
	guarded := prog(dl.NewTGD("g",
		[]dl.Atom{dl.A("T", dl.V("x"))},
		[]dl.Atom{dl.A("P", dl.V("x"), dl.V("y")), dl.A("Q", dl.V("y"))}))
	if !Classify(guarded).Guarded {
		t.Error("P(x,y) guards {x,y}")
	}
	unguarded := prog(dl.NewTGD("u",
		[]dl.Atom{dl.A("T", dl.V("x"))},
		[]dl.Atom{dl.A("P", dl.V("x"), dl.V("y")), dl.A("Q", dl.V("y"), dl.V("z"))}))
	if Classify(unguarded).Guarded {
		t.Error("no atom contains {x,y,z}")
	}
}

func TestClassifyReportString(t *testing.T) {
	rep := Classify(hospitalProgram())
	s := rep.String()
	if !strings.Contains(s, "weakly-sticky") {
		t.Errorf("report String must list classes: %q", s)
	}
}

func TestMarkingExistentialHeadVarsIgnored(t *testing.T) {
	// Existential head variables never occur in bodies; the marking
	// must not record them even when their head position is marked.
	p := prog(
		dl.NewTGD("a", []dl.Atom{dl.A("S", dl.V("x"))}, []dl.Atom{dl.A("P", dl.V("x"), dl.V("y"))}),
		dl.NewTGD("b", []dl.Atom{dl.A("P", dl.V("u"), dl.V("z"))}, []dl.Atom{dl.A("R", dl.V("u"))}),
	)
	m := ComputeMarking(p)
	if m.MarkedVars[1][dl.V("z")] {
		t.Error("existential z has no body occurrence and must not be marked")
	}
}
