// Package hospital builds the paper's running example in full: the
// Hospital and Time dimensions of Figure 1, the categorical relations
// PatientWard, PatientUnit, WorkingSchedules (Table III), Shifts
// (Table IV), DischargePatients (Table V) and Thermometer, the
// dimensional rules (7), (8) and (9), the dimensional constraints —
// EGD (6) and the "intensive care closed since August 2005" denial —
// and the Measurements instance of Table I under quality assessment.
//
// Substitution note (documented in DESIGN.md): the paper writes month
// members like "August/2005"; we name them "2005-08" so that the
// "since August 2005" guideline is expressible as an ordering
// condition (m >= "2005-08") over the Month category.
package hospital

import (
	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/hm"
	"repro/internal/storage"
)

// Member and table constants used across the example.
const (
	TomWaits      = "Tom Waits"
	LouReed       = "Lou Reed"
	ElvisCostello = "Elvis Costello"
)

// HospitalDimension builds the left-hand dimension of Figure 1:
// Ward → Unit → Institution → AllHospital, with wards W1–W4, units
// Standard/Intensive/Terminal, institutions H1/H2.
func HospitalDimension() *hm.Dimension {
	s := hm.NewDimensionSchema("Hospital")
	s.MustAddCategory("Ward")
	s.MustAddCategory("Unit")
	s.MustAddCategory("Institution")
	s.MustAddCategory("AllHospital")
	s.MustAddEdge("Ward", "Unit")
	s.MustAddEdge("Unit", "Institution")
	s.MustAddEdge("Institution", "AllHospital")

	d := hm.NewDimension(s)
	for _, w := range []string{"W1", "W2", "W3", "W4", "W5"} {
		d.MustAddMember("Ward", w)
	}
	for _, u := range []string{"Standard", "Intensive", "Terminal", "Surgery"} {
		d.MustAddMember("Unit", u)
	}
	d.MustAddMember("Institution", "H1")
	d.MustAddMember("Institution", "H2")
	d.MustAddMember("AllHospital", "allHospital")

	d.MustAddRollup("W1", "Standard")
	d.MustAddRollup("W2", "Standard")
	d.MustAddRollup("W3", "Intensive")
	d.MustAddRollup("W4", "Terminal")
	d.MustAddRollup("W5", "Surgery")
	d.MustAddRollup("Standard", "H1")
	d.MustAddRollup("Intensive", "H1")
	d.MustAddRollup("Terminal", "H1")
	d.MustAddRollup("Surgery", "H2")
	d.MustAddRollup("H1", "allHospital")
	d.MustAddRollup("H2", "allHospital")
	return d
}

// Days and times of the example.
var (
	Days  = []string{"Sep/5", "Sep/6", "Sep/7", "Sep/9", "Oct/5"}
	Times = []string{
		"Sep/5-11:45", "Sep/5-12:05", "Sep/5-12:10", "Sep/5-12:15",
		"Sep/6-11:05", "Sep/6-11:50", "Sep/7-12:15", "Sep/9-12:00",
	}
)

// dayOfTime maps each time member to its day member.
func dayOfTime(t string) string {
	for i := 0; i < len(t); i++ {
		if t[i] == '-' {
			return t[:i]
		}
	}
	return t
}

// monthOfDay maps each day member to its (sortable) month member.
func monthOfDay(d string) string {
	if len(d) >= 3 && d[:3] == "Oct" {
		return "2005-10"
	}
	return "2005-09"
}

// TimeDimension builds the right-hand dimension of Figure 1:
// Time → Day → Month → Year, with the example's timestamps and days,
// months 2005-08..2005-10 and year 2005.
func TimeDimension() *hm.Dimension {
	s := hm.NewDimensionSchema("Time")
	s.MustAddCategory("Time")
	s.MustAddCategory("Day")
	s.MustAddCategory("Month")
	s.MustAddCategory("Year")
	s.MustAddEdge("Time", "Day")
	s.MustAddEdge("Day", "Month")
	s.MustAddEdge("Month", "Year")

	d := hm.NewDimension(s)
	for _, t := range Times {
		d.MustAddMember("Time", t)
	}
	for _, day := range Days {
		d.MustAddMember("Day", day)
	}
	for _, m := range []string{"2005-08", "2005-09", "2005-10"} {
		d.MustAddMember("Month", m)
	}
	d.MustAddMember("Year", "2005")

	for _, t := range Times {
		d.MustAddRollup(t, dayOfTime(t))
	}
	for _, day := range Days {
		d.MustAddRollup(day, monthOfDay(day))
	}
	for _, m := range []string{"2005-08", "2005-09", "2005-10"} {
		d.MustAddRollup(m, "2005")
	}
	return d
}

// RuleSeven is the paper's upward-navigation rule (7):
//
//	PatientUnit(u, d; p) ← PatientWard(w, d; p), UnitWard(u, w)
func RuleSeven() *datalog.TGD {
	return datalog.NewTGD("r7",
		[]datalog.Atom{datalog.A("PatientUnit", datalog.V("u"), datalog.V("d"), datalog.V("p"))},
		[]datalog.Atom{
			datalog.A("PatientWard", datalog.V("w"), datalog.V("d"), datalog.V("p")),
			datalog.A("UnitWard", datalog.V("u"), datalog.V("w")),
		})
}

// RuleEight is the downward-navigation rule (8):
//
//	∃z Shifts(w, d; n, z) ← WorkingSchedules(u, d; n, t), UnitWard(u, w)
func RuleEight() *datalog.TGD {
	return datalog.NewTGD("r8",
		[]datalog.Atom{datalog.A("Shifts", datalog.V("w"), datalog.V("d"), datalog.V("n"), datalog.V("z"))},
		[]datalog.Atom{
			datalog.A("WorkingSchedules", datalog.V("u"), datalog.V("d"), datalog.V("n"), datalog.V("t")),
			datalog.A("UnitWard", datalog.V("u"), datalog.V("w")),
		})
}

// RuleNine is the form-(10) downward rule (9) with an existential
// categorical variable:
//
//	∃u InstitutionUnit(i, u), PatientUnit(u, d; p) ← DischargePatients(i, d; p)
func RuleNine() *datalog.TGD {
	return datalog.NewTGD("r9",
		[]datalog.Atom{
			datalog.A("InstitutionUnit", datalog.V("i"), datalog.V("u")),
			datalog.A("PatientUnit", datalog.V("u"), datalog.V("d"), datalog.V("p")),
		},
		[]datalog.Atom{datalog.A("DischargePatients", datalog.V("i"), datalog.V("d"), datalog.V("p"))})
}

// EGDSix is the paper's dimensional EGD (6): all thermometers used in
// a unit are of the same type.
func EGDSix() *datalog.EGD {
	return datalog.NewEGD("e6", datalog.V("t"), datalog.V("t2"), []datalog.Atom{
		datalog.A("Thermometer", datalog.V("w"), datalog.V("t"), datalog.V("n")),
		datalog.A("Thermometer", datalog.V("w2"), datalog.V("t2"), datalog.V("n2")),
		datalog.A("UnitWard", datalog.V("u"), datalog.V("w")),
		datalog.A("UnitWard", datalog.V("u"), datalog.V("w2")),
	})
}

// IntensiveClosedNC is the inter-dimensional constraint of Example 1:
// no patient in an intensive-care ward since August 2005.
func IntensiveClosedNC() *datalog.NC {
	nc := datalog.NewDenial("intensive-closed",
		datalog.A("PatientWard", datalog.V("w"), datalog.V("d"), datalog.V("p")),
		datalog.A("UnitWard", datalog.C("Intensive"), datalog.V("w")),
		datalog.A("MonthDay", datalog.V("m"), datalog.V("d")))
	nc.WithCond(datalog.OpGe, datalog.V("m"), datalog.C("2005-08"))
	return nc
}

// Options selects which optional parts of the running example to
// include.
type Options struct {
	// WithRuleNine includes the form-(10) rule (9) and Table V.
	WithRuleNine bool
	// WithConstraints includes EGD (6), the intensive-closed denial
	// and the Thermometer data.
	WithConstraints bool
}

// NewOntology assembles the complete multidimensional context ontology
// of the running example.
func NewOntology(opts Options) *core.Ontology {
	o := core.NewOntology()
	mustOK(o.AddDimension(HospitalDimension()))
	mustOK(o.AddDimension(TimeDimension()))

	mustOK(o.AddRelation(core.NewCategoricalRelation("PatientWard",
		core.Cat("Ward", "Hospital", "Ward"),
		core.Cat("Day", "Time", "Day"),
		core.NonCat("Patient"))))
	mustOK(o.AddRelation(core.NewCategoricalRelation("PatientUnit",
		core.Cat("Unit", "Hospital", "Unit"),
		core.Cat("Day", "Time", "Day"),
		core.NonCat("Patient"))))
	mustOK(o.AddRelation(core.NewCategoricalRelation("WorkingSchedules",
		core.Cat("Unit", "Hospital", "Unit"),
		core.Cat("Day", "Time", "Day"),
		core.NonCat("Nurse"),
		core.NonCat("Type"))))
	mustOK(o.AddRelation(core.NewCategoricalRelation("Shifts",
		core.Cat("Ward", "Hospital", "Ward"),
		core.Cat("Day", "Time", "Day"),
		core.NonCat("Nurse"),
		core.NonCat("Shift"))))

	// PatientWard: Tom's trajectory (Example 1) and Lou's stays in
	// non-standard wards (so that Table II keeps exactly Tom's first
	// two measurements).
	o.MustAddFact("PatientWard", "W1", "Sep/5", TomWaits)
	o.MustAddFact("PatientWard", "W2", "Sep/6", TomWaits)
	o.MustAddFact("PatientWard", "W3", "Sep/7", TomWaits)
	o.MustAddFact("PatientWard", "W4", "Sep/9", TomWaits)
	o.MustAddFact("PatientWard", "W4", "Sep/5", LouReed)
	o.MustAddFact("PatientWard", "W3", "Sep/6", LouReed)

	// Table III: WorkingSchedules.
	o.MustAddFact("WorkingSchedules", "Intensive", "Sep/5", "Cathy", "cert.")
	o.MustAddFact("WorkingSchedules", "Standard", "Sep/5", "Helen", "cert.")
	o.MustAddFact("WorkingSchedules", "Standard", "Sep/6", "Helen", "cert.")
	o.MustAddFact("WorkingSchedules", "Terminal", "Sep/5", "Susan", "non-c.")
	o.MustAddFact("WorkingSchedules", "Standard", "Sep/9", "Mark", "non-c.")

	// Table IV: Shifts.
	o.MustAddFact("Shifts", "W4", "Sep/5", "Cathy", "night")
	o.MustAddFact("Shifts", "W1", "Sep/6", "Helen", "morning")
	o.MustAddFact("Shifts", "W4", "Sep/5", "Susan", "evening")

	o.MustAddRule(RuleSeven())
	o.MustAddRule(RuleEight())

	if opts.WithRuleNine {
		mustOK(o.AddRelation(core.NewCategoricalRelation("DischargePatients",
			core.Cat("Inst", "Hospital", "Institution"),
			core.Cat("Day", "Time", "Day"),
			core.NonCat("Patient"))))
		// Table V.
		o.MustAddFact("DischargePatients", "H1", "Sep/9", TomWaits)
		o.MustAddFact("DischargePatients", "H1", "Sep/6", LouReed)
		o.MustAddFact("DischargePatients", "H2", "Oct/5", ElvisCostello)
		o.MustAddRule(RuleNine())
	}
	if opts.WithConstraints {
		mustOK(o.AddRelation(core.NewCategoricalRelation("Thermometer",
			core.Cat("Ward", "Hospital", "Ward"),
			core.NonCat("ThermType"),
			core.NonCat("Nurse"))))
		o.MustAddFact("Thermometer", "W1", "Oral", "Helen")
		o.MustAddFact("Thermometer", "W2", "Oral", "Helen")
		o.MustAddFact("Thermometer", "W4", "Tympanic", "Susan")
		mustOK(o.AddEGD(EGDSix()))
		mustOK(o.AddNC(IntensiveClosedNC()))
	}
	return o
}

// MeasurementsRows is Table I verbatim.
var MeasurementsRows = [][3]string{
	{"Sep/5-12:10", TomWaits, "38.2"},
	{"Sep/6-11:50", TomWaits, "37.1"},
	{"Sep/7-12:15", TomWaits, "37.7"},
	{"Sep/9-12:00", TomWaits, "37.0"},
	{"Sep/6-11:05", LouReed, "37.5"},
	{"Sep/5-12:05", LouReed, "38.0"},
}

// QualityRows is Table II verbatim: the expected quality version of
// Measurements (the paper's headline derivation).
var QualityRows = [][3]string{
	{"Sep/5-12:10", TomWaits, "38.2"},
	{"Sep/6-11:50", TomWaits, "37.1"},
}

// MeasurementsInstance builds the original instance D of Table I.
func MeasurementsInstance() *storage.Instance {
	db := storage.NewInstance()
	if _, err := db.CreateRelation("Measurements", "Time", "Patient", "Value"); err != nil {
		panic(err)
	}
	for _, row := range MeasurementsRows {
		db.MustInsert("Measurements", datalog.C(row[0]), datalog.C(row[1]), datalog.C(row[2]))
	}
	return db
}

func mustOK(err error) {
	if err != nil {
		panic(err)
	}
}
