package hospital

import (
	"repro/internal/datalog"
	"repro/internal/eval"
	"repro/internal/quality"
)

// Quality predicate and contextual predicate names of Example 7.
const (
	MeasurementC   = "Measurement_c"  // contextual copy of Measurements
	TakenByNurse   = "TakenByNurse"   // P_1: who took the measurement, with certification
	TakenWithTherm = "TakenWithTherm" // P_2: thermometer brand used
	MeasurementX   = "Measurement_x"  // Measurement' — the expanded contextual relation
	MeasurementsQ  = "Measurements_q" // the quality version (Table II)
)

// QualityContext assembles the paper's Example 7 context around the
// running-example ontology:
//
//	Measurement_c(t,p,v)    ← Measurements(t,p,v)
//	TakenByNurse(t,p,n,y)   ← WorkingSchedules(u,d,n,y), DayTime(d,t),
//	                          PatientUnit(u,d,p)
//	TakenWithTherm(t,p,B1)  ← PatientUnit(Standard,d,p), DayTime(d,t)
//	Measurement_x(t,p,v,y,b)← Measurement_c(t,p,v), TakenByNurse(t,p,n,y),
//	                          TakenWithTherm(t,p,b)
//	Measurements_q(t,p,v)   ← Measurement_x(t,p,v,y,b), y=cert., b=B1
//
// The TakenWithTherm rule encodes the institutional guideline of
// Example 1 ("temperatures in the standard care unit are taken with
// brand B1 thermometers") at the PatientUnit level, exactly as the
// paper does; answering through it triggers upward navigation via
// dimensional rule (7).
func QualityContext(opts Options) (*quality.Context, error) {
	o := NewOntology(opts)
	return quality.NewContext(o, QualityConfig())
}

// QualityConfig is the Example 7 context as a quality.Config, for
// callers that want to extend it (different chase options, extra
// external sources) before building the context.
func QualityConfig() quality.Config {
	t, p, v, n, y, b := datalog.V("t"), datalog.V("p"), datalog.V("v"), datalog.V("n"), datalog.V("y"), datalog.V("b")
	u, d := datalog.V("u"), datalog.V("d")

	versionRule := eval.NewRule("measurements-q",
		datalog.A(MeasurementsQ, t, p, v),
		datalog.A(MeasurementX, t, p, v, y, b)).
		WithCond(datalog.OpEq, y, datalog.C("cert.")).
		WithCond(datalog.OpEq, b, datalog.C("B1"))
	return quality.Config{
		Mappings: []*eval.Rule{
			eval.NewRule("map-measurements",
				datalog.A(MeasurementC, t, p, v),
				datalog.A("Measurements", t, p, v)),
		},
		QualityRules: []*eval.Rule{
			eval.NewRule("taken-by-nurse",
				datalog.A(TakenByNurse, t, p, n, y),
				datalog.A("WorkingSchedules", u, d, n, y),
				datalog.A("DayTime", d, t),
				datalog.A("PatientUnit", u, d, p)),
			eval.NewRule("taken-with-therm",
				datalog.A(TakenWithTherm, t, p, datalog.C("B1")),
				datalog.A("PatientUnit", datalog.C("Standard"), d, p),
				datalog.A("DayTime", d, t)),
			eval.NewRule("measurement-expanded",
				datalog.A(MeasurementX, t, p, v, y, b),
				datalog.A(MeasurementC, t, p, v),
				datalog.A(TakenByNurse, t, p, n, y),
				datalog.A(TakenWithTherm, t, p, b)),
		},
		Versions: []quality.VersionSpec{
			{Original: "Measurements", Pred: MeasurementsQ, Rules: []*eval.Rule{versionRule}},
		},
	}
}

// DoctorQuery is the doctor's request of Examples 1 and 7: Tom Waits'
// body temperatures on September 5 taken around noon —
//
//	Q(t,p,v) ← Measurements(t,p,v), p = "Tom Waits",
//	           Sep/5-11:45 ≤ t ≤ Sep/5-12:15
//
// Clean answering rewrites Measurements to Measurements_q.
func DoctorQuery() *datalog.Query {
	q := datalog.NewQuery(
		datalog.A("Q", datalog.V("t"), datalog.V("p"), datalog.V("v")),
		datalog.A("Measurements", datalog.V("t"), datalog.V("p"), datalog.V("v")))
	q.WithCond(datalog.OpEq, datalog.V("p"), datalog.C(TomWaits))
	q.WithCond(datalog.OpGe, datalog.V("t"), datalog.C("Sep/5-11:45"))
	q.WithCond(datalog.OpLe, datalog.V("t"), datalog.C("Sep/5-12:15"))
	return q
}
