package hospital

import (
	"testing"

	"repro/internal/core"
)

func TestHospitalDimensionIntegrity(t *testing.T) {
	d := HospitalDimension()
	if vs := d.CheckStrictness(); len(vs) != 0 {
		t.Errorf("Hospital must be strict: %v", vs)
	}
	if vs := d.CheckHomogeneity(); len(vs) != 0 {
		t.Errorf("Hospital must be homogeneous: %v", vs)
	}
	// Fig. 1 rollups.
	for member, want := range map[string]string{
		"W1": "Standard", "W2": "Standard", "W3": "Intensive", "W4": "Terminal",
	} {
		got, err := d.RollupOne(member, "Unit")
		if err != nil || got != want {
			t.Errorf("RollupOne(%s, Unit) = %q (%v), want %q", member, got, err, want)
		}
	}
	// Standard's wards (Example 2).
	if got := d.DrilldownAll("Standard", "Ward"); len(got) != 2 {
		t.Errorf("Standard wards = %v, want W1 and W2", got)
	}
}

func TestTimeDimensionIntegrity(t *testing.T) {
	d := TimeDimension()
	if vs := d.CheckStrictness(); len(vs) != 0 {
		t.Errorf("Time must be strict: %v", vs)
	}
	if vs := d.CheckHomogeneity(); len(vs) != 0 {
		t.Errorf("Time must be homogeneous: %v", vs)
	}
	// Each measurement time rolls to its day, days to sortable months.
	day, err := d.RollupOne("Sep/5-12:10", "Day")
	if err != nil || day != "Sep/5" {
		t.Errorf("time rollup = %q (%v), want Sep/5", day, err)
	}
	month, err := d.RollupOne("Sep/5", "Month")
	if err != nil || month != "2005-09" {
		t.Errorf("day rollup = %q (%v), want 2005-09", month, err)
	}
	if m, err := d.RollupOne("Oct/5", "Month"); err != nil || m != "2005-10" {
		t.Errorf("Oct/5 rollup = %q (%v), want 2005-10", m, err)
	}
}

func TestOntologyOptionCombos(t *testing.T) {
	plain := NewOntology(Options{})
	if len(plain.Rules()) != 2 || len(plain.EGDs()) != 0 || len(plain.NCs()) != 0 {
		t.Errorf("plain: rules/egds/ncs = %d/%d/%d", len(plain.Rules()), len(plain.EGDs()), len(plain.NCs()))
	}
	if plain.Relation("DischargePatients") != nil {
		t.Error("Table V must be absent without WithRuleNine")
	}
	full := NewOntology(Options{WithRuleNine: true, WithConstraints: true})
	if len(full.Rules()) != 3 || len(full.EGDs()) != 1 || len(full.NCs()) != 1 {
		t.Errorf("full: rules/egds/ncs = %d/%d/%d", len(full.Rules()), len(full.EGDs()), len(full.NCs()))
	}
	if full.Data().Relation("DischargePatients").Len() != 3 {
		t.Error("Table V must have 3 rows")
	}
	if full.Data().Relation("Thermometer").Len() != 3 {
		t.Error("Thermometer data must load with constraints")
	}
}

func TestFixtureCompilesCleanly(t *testing.T) {
	for _, opts := range []Options{
		{},
		{WithRuleNine: true},
		{WithConstraints: true},
		{WithRuleNine: true, WithConstraints: true},
	} {
		o := NewOntology(opts)
		comp, err := o.Compile(core.CompileOptions{ReferentialNCs: true, TransitiveRollups: true})
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if !comp.Report.WeaklySticky {
			t.Errorf("opts %+v: not WS: %s", opts, comp.Report.WSWitness)
		}
	}
}

func TestTableConstants(t *testing.T) {
	if len(MeasurementsRows) != 6 {
		t.Errorf("Table I rows = %d, want 6", len(MeasurementsRows))
	}
	if len(QualityRows) != 2 {
		t.Errorf("Table II rows = %d, want 2", len(QualityRows))
	}
	// Table II is a prefix of Table I (tuples 1-2), as in the paper.
	for i, row := range QualityRows {
		if row != MeasurementsRows[i] {
			t.Errorf("QualityRows[%d] = %v, want %v", i, row, MeasurementsRows[i])
		}
	}
}

func TestDoctorQueryShape(t *testing.T) {
	q := DoctorQuery()
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(q.Conds) != 3 {
		t.Errorf("conds = %d, want 3 (patient + time window)", len(q.Conds))
	}
	if q.Body[0].Pred != "Measurements" {
		t.Errorf("query over %s, want Measurements", q.Body[0].Pred)
	}
}
