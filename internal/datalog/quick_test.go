package datalog

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genTerm draws a random term over a tiny alphabet so collisions (and
// hence interesting unifications) are frequent.
func genTerm(r *rand.Rand) Term {
	names := []string{"a", "b", "c", "x", "y", "z"}
	name := names[r.Intn(len(names))]
	switch r.Intn(3) {
	case 0:
		return C(name)
	case 1:
		return V(name)
	default:
		return N(name)
	}
}

func genAtom(r *rand.Rand, groundOnly bool) Atom {
	preds := []string{"P", "Q"}
	arity := 1 + r.Intn(3)
	args := make([]Term, arity)
	for i := range args {
		t := genTerm(r)
		if groundOnly {
			for t.IsVar() {
				t = genTerm(r)
			}
		}
		args[i] = t
	}
	return Atom{Pred: preds[r.Intn(len(preds))], Args: args}
}

// atomValue adapts genAtom to testing/quick.
type atomValue struct{ A Atom }

func (atomValue) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(atomValue{A: genAtom(r, false)})
}

type groundAtomValue struct{ A Atom }

func (groundAtomValue) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(groundAtomValue{A: genAtom(r, true)})
}

func TestQuickUnifyProducesUnifier(t *testing.T) {
	f := func(av, bv atomValue) bool {
		a, b := av.A, bv.A
		s, ok := Unify(a, b, NewSubst())
		if !ok {
			return true // nothing to check
		}
		return s.ApplyAtom(a).Equal(s.ApplyAtom(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickMatchSoundness(t *testing.T) {
	f := func(pv atomValue, fv groundAtomValue) bool {
		pat, fact := pv.A, fv.A
		s, ok := Match(pat, fact, NewSubst())
		if !ok {
			return true
		}
		return s.ApplyAtom(pat).Equal(fact)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickMatchAgreesWithUnifyOnGround(t *testing.T) {
	// Against a ground fact, Match succeeds iff Unify succeeds.
	f := func(pv atomValue, fv groundAtomValue) bool {
		_, okM := Match(pv.A, fv.A, NewSubst())
		_, okU := Unify(pv.A, fv.A, NewSubst())
		return okM == okU
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickSubsumptionReflexive(t *testing.T) {
	f := func(av atomValue) bool {
		return AtomSubsumes(av.A, av.A)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestQuickConjunctionSubsumptionReflexive(t *testing.T) {
	f := func(av, bv atomValue) bool {
		conj := []Atom{av.A, bv.A}
		return ConjunctionSubsumes(conj, conj)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestQuickSubsumptionImpliesMatchability(t *testing.T) {
	// If a subsumes ground b, then Match(a, b) succeeds.
	f := func(av atomValue, bv groundAtomValue) bool {
		if !AtomSubsumes(av.A, bv.A) {
			return true
		}
		_, ok := Match(av.A, bv.A, NewSubst())
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickComposeSemantics(t *testing.T) {
	// Compose is used to fold match-produced bindings (variables to
	// ground terms) into an accumulated substitution. Unification
	// produces triangular (acyclic) substitutions, so the generator
	// draws s's keys and values from disjoint variable pools; u is
	// ground-valued like a Match result. Under these (real-usage)
	// conditions (s;u)(x) = u(s(x)) holds for every variable.
	f := func(x uint8, tv atomValue) bool {
		r := rand.New(rand.NewSource(int64(x)))
		sKeys := []string{"a", "b", "c"}
		sVals := []Term{V("x"), V("y"), V("z"), C("k1"), C("k2")}
		uKeys := []string{"a", "b", "c", "x", "y", "z"}
		s := NewSubst()
		u := NewSubst()
		for i := 0; i < 3; i++ {
			s.Bind(sKeys[r.Intn(len(sKeys))], sVals[r.Intn(len(sVals))])
			gt := genTerm(r)
			for gt.IsVar() {
				gt = genTerm(r)
			}
			u.Bind(uKeys[r.Intn(len(uKeys))], gt)
		}
		comp := s.Compose(u)
		for _, term := range tv.A.Args {
			if !term.IsVar() {
				continue
			}
			want := u.Apply(s.Apply(term))
			got := comp.Apply(term)
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestQuickAnswerKeyDistinguishes(t *testing.T) {
	f := func(av, bv groundAtomValue) bool {
		a := Answer{Terms: av.A.Args}
		b := Answer{Terms: bv.A.Args}
		sameTerms := len(a.Terms) == len(b.Terms)
		if sameTerms {
			for i := range a.Terms {
				if a.Terms[i] != b.Terms[i] {
					sameTerms = false
					break
				}
			}
		}
		return (a.Key() == b.Key()) == sameTerms
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickAtomKeyRoundTrip(t *testing.T) {
	f := func(av, bv atomValue) bool {
		sameKey := av.A.Key() == bv.A.Key()
		return sameKey == av.A.Equal(bv.A)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickTermCompareTotalOrder(t *testing.T) {
	f := func(x uint8) bool {
		r := rand.New(rand.NewSource(int64(x)))
		a, b, c := genTerm(r), genTerm(r), genTerm(r)
		// Antisymmetry.
		if a.Compare(b) != -b.Compare(a) {
			return false
		}
		// Transitivity (weak check: a<=b<=c => a<=c).
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
			return false
		}
		// Reflexivity.
		return a.Compare(a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
