package datalog

// Interner maps distinct terms (constants, variables and labeled
// nulls) to dense int32 ids, so the storage and evaluation layers can
// represent tuples as []int32 rows and compare terms by integer
// equality instead of hashing strings.
//
// Ids are handed out in first-intern order starting at 0 and are never
// reused or invalidated: an Interner only grows. The zero id is a
// valid term id; evaluation code uses negative values (see NoID) as
// "unbound" sentinels in register banks.
//
// An Interner is not safe for concurrent use, matching the rest of the
// storage layer. Instances created by Clone share their parent's
// interner: append-only interning keeps ids valid across clones, but
// it also means a clone and its parent must not be mutated from
// different goroutines without external synchronization.
type Interner struct {
	ids   map[Term]int32
	terms []Term
	// parent records fork lineage (see Fork and DescendsFrom): plans
	// compiled against an ancestor interner stay valid on descendants,
	// because Fork preserves every id assignment made before the fork.
	parent *Interner
}

// NoID is the sentinel used for "no term": it is never a valid id.
const NoID int32 = -1

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[Term]int32)}
}

// ID returns the id of t, interning it first if needed.
func (in *Interner) ID(t Term) int32 {
	if id, ok := in.ids[t]; ok {
		return id
	}
	id := int32(len(in.terms))
	in.ids[t] = id
	in.terms = append(in.terms, t)
	return id
}

// Lookup returns the id of t without interning; ok is false when t has
// never been interned.
func (in *Interner) Lookup(t Term) (int32, bool) {
	id, ok := in.ids[t]
	return id, ok
}

// TermOf returns the term with the given id. It panics on ids the
// interner never produced, which always indicates engine corruption.
func (in *Interner) TermOf(id int32) Term { return in.terms[id] }

// Len returns the number of interned terms (ids are 0..Len()-1).
func (in *Interner) Len() int { return len(in.terms) }

// IDs interns every term of the tuple and appends the ids to dst,
// returning the extended slice. Pass dst[:0] to reuse a buffer.
func (in *Interner) IDs(tuple []Term, dst []int32) []int32 {
	for _, t := range tuple {
		dst = append(dst, in.ID(t))
	}
	return dst
}

// Terms maps ids back to terms, appending to dst.
func (in *Interner) Terms(ids []int32, dst []Term) []Term {
	for _, id := range ids {
		dst = append(dst, in.terms[id])
	}
	return dst
}

// Fork returns an independent copy of the interner with identical id
// assignments. Engines that derive new facts over a cloned instance
// fork the interner first, so interning fresh symbols (invented nulls,
// rule-head constants) never mutates the input instance's interner —
// keeping read-only callers free of shared mutable state.
func (in *Interner) Fork() *Interner {
	out := &Interner{
		ids:    make(map[Term]int32, len(in.ids)),
		terms:  append([]Term(nil), in.terms...),
		parent: in,
	}
	for t, id := range in.ids {
		out.ids[t] = id
	}
	return out
}

// Parent returns the interner this one was forked from, or nil for a
// root interner. Two forks of the same parent with equal Len hold
// identical id assignments (forking copies the parent's table and a
// frozen fork never interns), which is what lets a shape-keyed plan
// cache rebind plans across sibling snapshots of one session.
func (in *Interner) Parent() *Interner { return in.parent }

// DescendsFrom reports whether in is anc or a (transitive) fork of
// anc. Ids assigned by an ancestor before forking are preserved in
// every descendant, so read structures compiled against anc (plans,
// projections) remain valid against descendants — provided the
// ancestor is no longer interning new terms, which could reuse ids the
// descendant assigned independently. Engine code enforces that
// discipline: prepared artifacts freeze their interner before sessions
// fork it.
func (in *Interner) DescendsFrom(anc *Interner) bool {
	for cur := in; cur != nil; cur = cur.parent {
		if cur == anc {
			return true
		}
	}
	return false
}

// HashInt32s is FNV-1a over a row of term ids (or any int32 slice),
// the shared hash for row dedup buckets and trigger memos.
func HashInt32s(row []int32) uint64 {
	h := uint64(14695981039346656037)
	for _, id := range row {
		v := uint32(id)
		h = (h ^ uint64(v&0xff)) * 1099511628211
		h = (h ^ uint64((v>>8)&0xff)) * 1099511628211
		h = (h ^ uint64((v>>16)&0xff)) * 1099511628211
		h = (h ^ uint64(v>>24)) * 1099511628211
	}
	return h
}

// Arena carves copies of small rows out of chunked backing arrays,
// one allocation per chunk instead of one per row. The zero value is
// ready to use. Used for interned tuple rows, term-view tuples and
// chase trigger snapshots.
type Arena[T any] struct {
	buf []T
}

// arenaChunkRows is the chunk size in rows (times the row length).
const arenaChunkRows = 256

// Copy stores a copy of src and returns the capped view.
func (a *Arena[T]) Copy(src []T) []T {
	n := len(src)
	if cap(a.buf)-len(a.buf) < n {
		chunk := arenaChunkRows * n
		if chunk < n {
			chunk = n
		}
		a.buf = make([]T, 0, chunk)
	}
	start := len(a.buf)
	a.buf = append(a.buf, src...)
	return a.buf[start : start+n : start+n]
}

// Reset drops the arena's current chunk so retired rows can be
// collected once their owners drop them.
func (a *Arena[T]) Reset() { a.buf = nil }

// Int32Arena is the arena for interned rows and register snapshots.
type Int32Arena = Arena[int32]
