package datalog

import (
	"testing"
	"testing/quick"
)

func TestMatchBindsVariables(t *testing.T) {
	pat := A("PatientWard", V("w"), V("d"), V("p"))
	fact := A("PatientWard", C("W1"), C("Sep/5"), C("Tom Waits"))
	s, ok := Match(pat, fact, NewSubst())
	if !ok {
		t.Fatal("match failed")
	}
	if s.Apply(V("w")) != C("W1") || s.Apply(V("d")) != C("Sep/5") || s.Apply(V("p")) != C("Tom Waits") {
		t.Errorf("bindings wrong: %v", s)
	}
}

func TestMatchRespectsExistingBindings(t *testing.T) {
	pat := A("P", V("x"), V("x"))
	if _, ok := Match(pat, A("P", C("a"), C("b")), NewSubst()); ok {
		t.Error("repeated variable must not match distinct constants")
	}
	if s, ok := Match(pat, A("P", C("a"), C("a")), NewSubst()); !ok || s.Apply(V("x")) != C("a") {
		t.Error("repeated variable must match equal constants")
	}
}

func TestMatchConstMismatch(t *testing.T) {
	if _, ok := Match(A("P", C("a")), A("P", C("b")), NewSubst()); ok {
		t.Error("distinct constants must not match")
	}
	if _, ok := Match(A("P", C("a")), A("Q", C("a")), NewSubst()); ok {
		t.Error("distinct predicates must not match")
	}
	if _, ok := Match(A("P", C("a")), A("P", C("a"), C("b")), NewSubst()); ok {
		t.Error("distinct arities must not match")
	}
}

func TestMatchTreatsNullsAsConstants(t *testing.T) {
	if _, ok := Match(A("P", N("1")), A("P", C("a")), NewSubst()); ok {
		t.Error("null must not match a distinct constant")
	}
	if _, ok := Match(A("P", N("1")), A("P", N("1")), NewSubst()); !ok {
		t.Error("identical nulls must match")
	}
	s, ok := Match(A("P", V("x")), A("P", N("1")), NewSubst())
	if !ok || s.Apply(V("x")) != N("1") {
		t.Error("variable must bind to a null")
	}
}

func TestMatchDoesNotMutateInput(t *testing.T) {
	s := NewSubst()
	s.Bind("y", C("keep"))
	_, ok := Match(A("P", V("x")), A("P", C("a")), s)
	if !ok {
		t.Fatal("match failed")
	}
	if _, bound := s.Lookup("x"); bound {
		t.Error("Match must not mutate the input substitution")
	}
}

func TestUnifyVarVar(t *testing.T) {
	s, ok := Unify(A("P", V("x"), C("a")), A("P", V("y"), V("y")), NewSubst())
	if !ok {
		t.Fatal("unify failed")
	}
	// After unification both x and y resolve to a.
	if s.Apply(V("x")) != C("a") || s.Apply(V("y")) != C("a") {
		t.Errorf("unify result wrong: %v", s)
	}
}

func TestUnifyOccursFree(t *testing.T) {
	// First-order terms are flat, so no occurs-check subtleties: x
	// unifies with y, then y with constant.
	s, ok := Unify(A("P", V("x"), V("x")), A("P", V("y"), C("c")), NewSubst())
	if !ok {
		t.Fatal("unify failed")
	}
	if s.Apply(V("x")) != C("c") || s.Apply(V("y")) != C("c") {
		t.Errorf("bindings wrong: x=%v y=%v", s.Apply(V("x")), s.Apply(V("y")))
	}
}

func TestUnifyFailure(t *testing.T) {
	if _, ok := Unify(A("P", C("a")), A("P", C("b")), NewSubst()); ok {
		t.Error("constants a/b must not unify")
	}
	if _, ok := Unify(A("P", N("1")), A("P", C("a")), NewSubst()); ok {
		t.Error("null and constant must not unify")
	}
}

func TestUnifySymmetricOnSuccess(t *testing.T) {
	f := func(aConst, bConst bool) bool {
		mk := func(isConst bool, name string) Term {
			if isConst {
				return C(name)
			}
			return V(name)
		}
		a := A("P", mk(aConst, "t1"))
		b := A("P", mk(bConst, "t2"))
		_, ok1 := Unify(a, b, NewSubst())
		_, ok2 := Unify(b, a, NewSubst())
		return ok1 == ok2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRenameApart(t *testing.T) {
	tgd := NewTGD("r", []Atom{A("H", V("x"), V("z"))}, []Atom{A("B", V("x"), V("y"))})
	fresh := NewCounter("v")
	r := RenameApart(tgd, fresh)
	for _, v := range r.Vars() {
		if v == V("x") || v == V("y") || v == V("z") {
			t.Errorf("variable %v not renamed", v)
		}
	}
	// Structure preserved: body var at position 0 of head and body match.
	if r.Head[0].Args[0] != r.Body[0].Args[0] {
		t.Error("renaming must preserve variable sharing")
	}
	if r.Head[0].Args[1] == r.Body[0].Args[1] {
		t.Error("distinct variables must stay distinct")
	}
}

func TestAtomSubsumes(t *testing.T) {
	if !AtomSubsumes(A("P", V("x"), V("y")), A("P", C("a"), C("b"))) {
		t.Error("P(x,y) subsumes P(a,b)")
	}
	if AtomSubsumes(A("P", V("x"), V("x")), A("P", C("a"), C("b"))) {
		t.Error("P(x,x) must not subsume P(a,b)")
	}
	if !AtomSubsumes(A("P", V("x"), V("x")), A("P", C("a"), C("a"))) {
		t.Error("P(x,x) subsumes P(a,a)")
	}
	if AtomSubsumes(A("P", C("a")), A("P", V("x"))) {
		t.Error("ground atom must not subsume a more general one")
	}
}

func TestConjunctionSubsumes(t *testing.T) {
	// Q1: P(x,y) subsumes Q2: P(x,y), R(y) — fewer constraints.
	q1 := []Atom{A("P", V("x"), V("y"))}
	q2 := []Atom{A("P", V("u"), V("v")), A("R", V("v"))}
	if !ConjunctionSubsumes(q1, q2) {
		t.Error("more general CQ must subsume the specialization")
	}
	if ConjunctionSubsumes(q2, q1) {
		t.Error("specialized CQ must not subsume the general one")
	}
}

func TestConjunctionSubsumesSharedNames(t *testing.T) {
	// Shared variable names across the two CQs must not confuse the
	// test: target vars are frozen.
	a := []Atom{A("P", V("x"), C("k"))}
	b := []Atom{A("P", V("x"), V("y"))}
	if ConjunctionSubsumes(a, b) {
		t.Error("P(x,k) must not subsume P(x,y): frozen y cannot equal k")
	}
	if !ConjunctionSubsumes(b, a) {
		t.Error("P(x,y) subsumes P(x,k)")
	}
}

func TestConjunctionSubsumesRepeatedVars(t *testing.T) {
	a := []Atom{A("P", V("x"), V("x"))}
	b := []Atom{A("P", V("y"), V("y"))}
	if !ConjunctionSubsumes(a, b) {
		t.Error("P(x,x) subsumes P(y,y)")
	}
	c := []Atom{A("P", V("y"), V("z"))}
	if ConjunctionSubsumes(a, c) {
		t.Error("P(x,x) must not subsume P(y,z)")
	}
}
