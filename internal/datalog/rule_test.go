package datalog

import (
	"strings"
	"testing"
)

// ruleSeven is the paper's upward-navigation rule (7):
// PatientUnit(u,d;p) <- PatientWard(w,d;p), UnitWard(u,w).
func ruleSeven() *TGD {
	return NewTGD("r7",
		[]Atom{A("PatientUnit", V("u"), V("d"), V("p"))},
		[]Atom{
			A("PatientWard", V("w"), V("d"), V("p")),
			A("UnitWard", V("u"), V("w")),
		})
}

// ruleEight is the paper's downward-navigation rule (8):
// ∃z Shifts(w,d;n,z) <- WorkingSchedules(u,d;n,t), UnitWard(u,w).
func ruleEight() *TGD {
	return NewTGD("r8",
		[]Atom{A("Shifts", V("w"), V("d"), V("n"), V("z"))},
		[]Atom{
			A("WorkingSchedules", V("u"), V("d"), V("n"), V("t")),
			A("UnitWard", V("u"), V("w")),
		})
}

// ruleNine is the paper's rule (9) with an existential categorical
// variable and a conjunctive head:
// ∃u InstitutionUnit(i,u), PatientUnit(u,d;p) <- DischargePatients(i,d;p).
func ruleNine() *TGD {
	return NewTGD("r9",
		[]Atom{
			A("InstitutionUnit", V("i"), V("u")),
			A("PatientUnit", V("u"), V("d"), V("p")),
		},
		[]Atom{A("DischargePatients", V("i"), V("d"), V("p"))})
}

func TestTGDExistentialVars(t *testing.T) {
	if ex := ruleSeven().ExistentialVars(); len(ex) != 0 {
		t.Errorf("rule (7) has no existential vars, got %v", ex)
	}
	if ex := ruleEight().ExistentialVars(); len(ex) != 1 || ex[0] != V("z") {
		t.Errorf("rule (8) existential vars = %v, want [z]", ex)
	}
	if ex := ruleNine().ExistentialVars(); len(ex) != 1 || ex[0] != V("u") {
		t.Errorf("rule (9) existential vars = %v, want [u]", ex)
	}
}

func TestTGDFrontierAndUniversal(t *testing.T) {
	r8 := ruleEight()
	uni := r8.UniversalVars()
	if len(uni) != 5 { // u, d, n, t, w
		t.Errorf("universal vars = %v, want 5 vars", uni)
	}
	fr := r8.FrontierVars()
	// w, d, n appear in head; u and t do not.
	want := map[Term]bool{V("w"): true, V("d"): true, V("n"): true}
	if len(fr) != len(want) {
		t.Fatalf("frontier = %v, want w,d,n", fr)
	}
	for _, v := range fr {
		if !want[v] {
			t.Errorf("unexpected frontier var %v", v)
		}
	}
}

func TestTGDFlags(t *testing.T) {
	if ruleSeven().IsExistential() {
		t.Error("rule (7) is not existential")
	}
	if !ruleEight().IsExistential() {
		t.Error("rule (8) is existential")
	}
	if ruleSeven().IsLinear() {
		t.Error("rule (7) has a two-atom body")
	}
	if !ruleNine().IsLinear() {
		t.Error("rule (9) has a single body atom")
	}
}

func TestTGDValidate(t *testing.T) {
	if err := ruleSeven().Validate(); err != nil {
		t.Errorf("rule (7) must validate: %v", err)
	}
	bad := NewTGD("b1", nil, []Atom{A("B", V("x"))})
	if err := bad.Validate(); err == nil {
		t.Error("empty head must fail validation")
	}
	bad2 := NewTGD("b2", []Atom{A("H", V("x"))}, nil)
	if err := bad2.Validate(); err == nil {
		t.Error("empty body must fail validation")
	}
	bad3 := NewTGD("b3", []Atom{A("H", N("1"))}, []Atom{A("B", V("x"))})
	if err := bad3.Validate(); err == nil {
		t.Error("null in rule must fail validation")
	}
}

func TestTGDString(t *testing.T) {
	s := ruleEight().String()
	if !strings.Contains(s, "∃z") {
		t.Errorf("String must show existential prefix, got %q", s)
	}
	if !strings.Contains(s, "Shifts(w, d, n, z) <- WorkingSchedules(u, d, n, t), UnitWard(u, w)") {
		t.Errorf("String = %q", s)
	}
}

// egdSix is the paper's EGD (6): all thermometers used in a unit are of
// the same type.
func egdSix() *EGD {
	return NewEGD("e6", V("t"), V("t2"), []Atom{
		A("Thermometer", V("w"), V("t"), V("n")),
		A("Thermometer", V("w2"), V("t2"), V("n2")),
		A("UnitWard", V("u"), V("w")),
		A("UnitWard", V("u"), V("w2")),
	})
}

func TestEGDValidate(t *testing.T) {
	if err := egdSix().Validate(); err != nil {
		t.Errorf("EGD (6) must validate: %v", err)
	}
	bad := NewEGD("b", V("x"), C("k"), []Atom{A("P", V("x"))})
	if err := bad.Validate(); err == nil {
		t.Error("constant head side must fail validation")
	}
	bad2 := NewEGD("b2", V("x"), V("y"), []Atom{A("P", V("x"))})
	if err := bad2.Validate(); err == nil {
		t.Error("head variable missing from body must fail validation")
	}
	bad3 := NewEGD("b3", V("x"), V("x"), nil)
	if err := bad3.Validate(); err == nil {
		t.Error("empty body must fail validation")
	}
}

func TestEGDString(t *testing.T) {
	if got := egdSix().String(); !strings.HasPrefix(got, "t = t2 <- Thermometer") {
		t.Errorf("String = %q", got)
	}
}

func TestNCValidateAndAccessors(t *testing.T) {
	// Paper constraint (5): ⊥ <- PatientUnit(u,d;p), not Unit(u).
	nc := NewNC("c5",
		Pos(A("PatientUnit", V("u"), V("d"), V("p"))),
		Neg(A("Unit", V("u"))))
	if err := nc.Validate(); err != nil {
		t.Errorf("constraint (5) must validate: %v", err)
	}
	if got := len(nc.PositiveBody()); got != 1 {
		t.Errorf("positive body size = %d, want 1", got)
	}
	if got := len(nc.NegativeBody()); got != 1 {
		t.Errorf("negative body size = %d, want 1", got)
	}
	unsafe := NewNC("u",
		Pos(A("P", V("x"))),
		Neg(A("Q", V("y"))))
	if err := unsafe.Validate(); err == nil {
		t.Error("negated variable not bound positively must fail validation")
	}
	onlyNeg := NewNC("n", Neg(A("Q", V("y"))))
	if err := onlyNeg.Validate(); err == nil {
		t.Error("NC with no positive atoms must fail validation")
	}
}

func TestNCString(t *testing.T) {
	nc := NewDenial("c",
		A("PatientWard", V("w"), V("d"), V("p")),
		A("UnitWard", C("Intensive"), V("w")))
	got := nc.String()
	if !strings.HasPrefix(got, "⊥ <- PatientWard") {
		t.Errorf("String = %q", got)
	}
}
