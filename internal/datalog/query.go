package datalog

import (
	"fmt"
	"strings"
)

// CompOp is a comparison operator usable in query conditions.
type CompOp uint8

// Comparison operators. They compare constants numerically when both
// sides parse as numbers, lexicographically otherwise (which orders the
// paper's timestamp literals such as "Sep/5-12:10" correctly within a
// day, and its date constants by the generators' zero-padded scheme).
const (
	OpEq CompOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator symbol.
func (op CompOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return "?"
	}
}

// Comparison is a built-in condition L op R evaluated on bound terms.
type Comparison struct {
	Op   CompOp
	L, R Term
}

// String renders the comparison.
func (c Comparison) String() string {
	return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R)
}

// Eval evaluates the comparison under substitution s. It returns an
// error if either side is still a variable after substitution. Nulls
// compare equal only to themselves and are incomparable under ordering
// operators (every ordering comparison involving a null is false),
// reflecting that a labeled null carries no domain value.
func (c Comparison) Eval(s Subst) (bool, error) {
	return c.EvalTerms(s.Apply(c.L), s.Apply(c.R))
}

// EvalTerms evaluates the comparison on already-resolved sides, the
// substitution-free entry point used by compiled join plans (which
// resolve variables through register banks instead of Subst maps).
func (c Comparison) EvalTerms(l, r Term) (bool, error) {
	if l.IsVar() || r.IsVar() {
		return false, fmt.Errorf("comparison %s: unbound side (%s vs %s)", c, l, r)
	}
	switch c.Op {
	case OpEq:
		return l == r, nil
	case OpNe:
		return l != r, nil
	}
	if l.IsNull() || r.IsNull() {
		return false, nil
	}
	cmp := l.Compare(r)
	switch c.Op {
	case OpLt:
		return cmp < 0, nil
	case OpLe:
		return cmp <= 0, nil
	case OpGt:
		return cmp > 0, nil
	case OpGe:
		return cmp >= 0, nil
	default:
		return false, fmt.Errorf("comparison %s: unknown operator", c)
	}
}

// Query is a conjunctive query with optional built-in comparisons and
// optional safe negated atoms:
//
//	Q(x̄) ← B1, ..., Bn, not N1, ..., not Nk, c1, ..., cm
//
// Head.Args are the answer variables (possibly none: a Boolean CQ).
// Negated atoms are evaluated under closed-world assumption by the
// engines that support them (bottom-up evaluation over a fixed
// instance); the certain-answer engines reject queries with negation.
type Query struct {
	Head    Atom
	Body    []Atom
	Negated []Atom
	Conds   []Comparison
}

// NewQuery builds a positive conjunctive query.
func NewQuery(head Atom, body ...Atom) *Query {
	return &Query{Head: head, Body: body}
}

// WithCond appends a comparison condition and returns the query.
func (q *Query) WithCond(op CompOp, l, r Term) *Query {
	q.Conds = append(q.Conds, Comparison{Op: op, L: l, R: r})
	return q
}

// WithNegated appends a negated atom and returns the query.
func (q *Query) WithNegated(a Atom) *Query {
	q.Negated = append(q.Negated, a)
	return q
}

// AnswerVars returns the distinct answer variables.
func (q *Query) AnswerVars() []Term { return q.Head.Vars() }

// IsBoolean reports whether the query has no answer variables.
func (q *Query) IsBoolean() bool { return len(q.AnswerVars()) == 0 }

// Validate checks safety: every answer variable occurs in the positive
// body; every variable of a negated atom or comparison occurs in the
// positive body.
func (q *Query) Validate() error {
	if len(q.Body) == 0 {
		return fmt.Errorf("query %s: empty body", q.Head.Pred)
	}
	bodyVars := map[Term]bool{}
	for _, v := range VarsOfAtoms(q.Body) {
		bodyVars[v] = true
	}
	for _, v := range q.AnswerVars() {
		if !bodyVars[v] {
			return fmt.Errorf("query %s: answer variable %s not in body", q.Head.Pred, v)
		}
	}
	for _, n := range q.Negated {
		for _, v := range n.Vars() {
			if !bodyVars[v] {
				return fmt.Errorf("query %s: variable %s of negated atom %s unsafe", q.Head.Pred, v, n)
			}
		}
	}
	for _, c := range q.Conds {
		for _, t := range []Term{c.L, c.R} {
			if t.IsVar() && !bodyVars[t] {
				return fmt.Errorf("query %s: variable %s of condition %s unsafe", q.Head.Pred, t, c)
			}
		}
	}
	return nil
}

// Clone deep-copies the query.
func (q *Query) Clone() *Query {
	out := &Query{Head: q.Head.Clone(), Body: CloneAtoms(q.Body)}
	out.Negated = CloneAtoms(q.Negated)
	out.Conds = append(out.Conds, q.Conds...)
	return out
}

// String renders the query.
func (q *Query) String() string {
	var parts []string
	for _, a := range q.Body {
		parts = append(parts, a.String())
	}
	for _, a := range q.Negated {
		parts = append(parts, "not "+a.String())
	}
	for _, c := range q.Conds {
		parts = append(parts, c.String())
	}
	return q.Head.String() + " <- " + strings.Join(parts, ", ")
}

// Answer is one query answer: the tuple of terms bound to the head
// arguments, in head-argument order.
type Answer struct {
	Terms []Term
}

// HasNull reports whether the answer contains a labeled null (such
// answers are not certain and are filtered by certain-answer engines).
func (ans Answer) HasNull() bool {
	for _, t := range ans.Terms {
		if t.IsNull() {
			return true
		}
	}
	return false
}

// Key returns a canonical deduplication key.
func (ans Answer) Key() string {
	var b strings.Builder
	for _, t := range ans.Terms {
		b.WriteByte(byte('0' + t.Kind))
		b.WriteString(t.Name)
		b.WriteByte('|')
	}
	return b.String()
}

// String renders the answer tuple.
func (ans Answer) String() string { return "(" + TermsString(ans.Terms) + ")" }

// AnswerSet is a deduplicated, order-preserving collection of answers.
type AnswerSet struct {
	answers []Answer
	index   map[string]bool
}

// NewAnswerSet returns an empty answer set.
func NewAnswerSet() *AnswerSet {
	return &AnswerSet{index: map[string]bool{}}
}

// Add inserts an answer if not already present; it reports whether the
// answer was new.
func (s *AnswerSet) Add(ans Answer) bool {
	k := ans.Key()
	if s.index[k] {
		return false
	}
	s.index[k] = true
	s.answers = append(s.answers, ans)
	return true
}

// Contains reports membership.
func (s *AnswerSet) Contains(ans Answer) bool { return s.index[ans.Key()] }

// Len returns the number of answers.
func (s *AnswerSet) Len() int { return len(s.answers) }

// All returns the answers in insertion order. The returned slice is
// owned by the set and must not be modified.
func (s *AnswerSet) All() []Answer { return s.answers }

// Sorted returns the answers sorted lexicographically by their terms,
// for deterministic output.
func (s *AnswerSet) Sorted() []Answer {
	out := make([]Answer, len(s.answers))
	copy(out, s.answers)
	sortAnswers(out)
	return out
}

func sortAnswers(as []Answer) {
	lessTerms := func(a, b []Term) bool {
		for i := 0; i < len(a) && i < len(b); i++ {
			if c := a[i].Compare(b[i]); c != 0 {
				return c < 0
			}
		}
		return len(a) < len(b)
	}
	for i := 1; i < len(as); i++ {
		for j := i; j > 0 && lessTerms(as[j].Terms, as[j-1].Terms); j-- {
			as[j], as[j-1] = as[j-1], as[j]
		}
	}
}

// Equal reports whether two answer sets contain exactly the same
// answers (order-independent).
func (s *AnswerSet) Equal(o *AnswerSet) bool {
	if s.Len() != o.Len() {
		return false
	}
	for k := range s.index {
		if !o.index[k] {
			return false
		}
	}
	return true
}

// String renders the sorted answers, one per line.
func (s *AnswerSet) String() string {
	var b strings.Builder
	for _, a := range s.Sorted() {
		b.WriteString(a.String())
		b.WriteByte('\n')
	}
	return b.String()
}
