// Package datalog implements the core Datalog± language used by the
// multidimensional ontologies of Milani, Bertossi and Ariyan (ICDE 2014):
// terms, atoms, tuple-generating dependencies (TGDs) with existential
// heads, equality-generating dependencies (EGDs), negative constraints,
// substitutions and unification.
//
// The package is purely syntactic: evaluation lives in the chase, qa and
// rewrite packages, and extensional data lives in the storage package.
package datalog

import (
	"fmt"
	"strconv"
	"strings"
)

// TermKind discriminates the three kinds of terms in Datalog±.
type TermKind uint8

const (
	// KindConst is a constant from the underlying domain.
	KindConst TermKind = iota
	// KindVar is a variable (universally or existentially quantified,
	// depending on the enclosing rule).
	KindVar
	// KindNull is a labeled null, invented by the chase for existential
	// variables. Nulls behave like constants during matching (two nulls
	// are equal iff they have the same label) but are not returned in
	// certain answers.
	KindNull
)

// Term is a constant, variable or labeled null. Terms are small immutable
// values and are comparable, so they can be used as map keys.
type Term struct {
	Kind TermKind
	Name string
}

// C returns a constant term.
func C(name string) Term { return Term{Kind: KindConst, Name: name} }

// V returns a variable term.
func V(name string) Term { return Term{Kind: KindVar, Name: name} }

// N returns a labeled null term.
func N(label string) Term { return Term{Kind: KindNull, Name: label} }

// IsConst reports whether t is a constant.
func (t Term) IsConst() bool { return t.Kind == KindConst }

// IsVar reports whether t is a variable.
func (t Term) IsVar() bool { return t.Kind == KindVar }

// IsNull reports whether t is a labeled null.
func (t Term) IsNull() bool { return t.Kind == KindNull }

// IsGround reports whether t contains no variables (constants and nulls
// are both ground in the chase sense).
func (t Term) IsGround() bool { return t.Kind != KindVar }

// String renders the term: constants that need quoting are double-quoted,
// variables are bare identifiers, nulls are rendered as ⊥label.
func (t Term) String() string {
	switch t.Kind {
	case KindConst:
		if needsQuote(t.Name) {
			return strconv.Quote(t.Name)
		}
		return t.Name
	case KindVar:
		return t.Name
	case KindNull:
		return "⊥" + t.Name
	default:
		return fmt.Sprintf("?badterm(%d,%s)", t.Kind, t.Name)
	}
}

// needsQuote reports whether a constant name must be quoted to be
// re-parseable (it contains characters outside the bare-identifier set
// or could be confused with a variable, which start with a lowercase
// letter in queries but are explicitly marked in our surface syntax).
func needsQuote(s string) bool {
	if s == "" {
		return true
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				// Leading digit is fine for numeric constants only.
				if !isNumeric(s) {
					return true
				}
				return false
			}
		case r == '.' || r == '/' || r == ':' || r == '-':
			// Common in the paper's data ("Sep/5-12:10", "37.5").
			if !isNumeric(s) {
				return true
			}
		default:
			return true
		}
	}
	return false
}

func isNumeric(s string) bool {
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}

// Compare orders terms: first by kind (consts < vars < nulls), then by
// name, numerically when both names are numeric constants. It returns
// -1, 0 or 1.
func (t Term) Compare(u Term) int {
	if t.Kind != u.Kind {
		if t.Kind < u.Kind {
			return -1
		}
		return 1
	}
	if t.Kind == KindConst {
		if c, ok := compareNumeric(t.Name, u.Name); ok {
			return c
		}
	}
	return strings.Compare(t.Name, u.Name)
}

func compareNumeric(a, b string) (int, bool) {
	fa, errA := strconv.ParseFloat(a, 64)
	fb, errB := strconv.ParseFloat(b, 64)
	if errA != nil || errB != nil {
		return 0, false
	}
	switch {
	case fa < fb:
		return -1, true
	case fa > fb:
		return 1, true
	default:
		return 0, true
	}
}

// TermsString renders a comma-separated term list.
func TermsString(ts []Term) string {
	var b strings.Builder
	for i, t := range ts {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	return b.String()
}

// CloneTerms returns a copy of the slice (terms themselves are values).
func CloneTerms(ts []Term) []Term {
	out := make([]Term, len(ts))
	copy(out, ts)
	return out
}

// Counter hands out fresh names with a prefix; it is used for fresh
// nulls during the chase and fresh variables during rule renaming. The
// zero value is ready to use. Counter is not safe for concurrent use.
type Counter struct {
	prefix string
	next   int
}

// NewCounter returns a counter producing names prefix0, prefix1, ...
func NewCounter(prefix string) *Counter { return &Counter{prefix: prefix} }

// Next returns the next fresh name.
func (c *Counter) Next() string {
	s := c.prefix + strconv.Itoa(c.next)
	c.next++
	return s
}

// Pos returns the counter's position: how many names it has handed
// out. A counter rebuilt with NewCounterAt(prefix, Pos()) continues
// the exact same name sequence — the persistence layer records the
// position so a restored chase invents nulls with the labels an
// uninterrupted run would have used.
func (c *Counter) Pos() int { return c.next }

// NewCounterAt returns a counter resumed at a recorded position: its
// next name is prefix<pos>.
func NewCounterAt(prefix string, pos int) *Counter {
	return &Counter{prefix: prefix, next: pos}
}

// FreshNull returns a fresh labeled null.
func (c *Counter) FreshNull() Term { return N(c.Next()) }

// FreshVar returns a fresh variable.
func (c *Counter) FreshVar() Term { return V(c.Next()) }
