package datalog

import "testing"

func TestSubstApplyChains(t *testing.T) {
	s := NewSubst()
	s.Bind("x", V("y"))
	s.Bind("y", C("a"))
	if got := s.Apply(V("x")); got != C("a") {
		t.Errorf("Apply(x) = %v, want a (chain resolution)", got)
	}
	if got := s.Apply(V("z")); got != V("z") {
		t.Errorf("Apply(z) = %v, want z (unbound)", got)
	}
	if got := s.Apply(C("k")); got != C("k") {
		t.Errorf("Apply on constants must be identity, got %v", got)
	}
}

func TestSubstApplyCycleTerminates(t *testing.T) {
	s := NewSubst()
	s.Bind("x", V("y"))
	s.Bind("y", V("x"))
	got := s.Apply(V("x")) // must terminate; result is one of the two vars
	if !got.IsVar() {
		t.Errorf("cycle resolution returned non-var %v", got)
	}
}

func TestSubstApplyAtom(t *testing.T) {
	s := NewSubst()
	s.Bind("w", C("W1"))
	a := s.ApplyAtom(A("PatientWard", V("w"), V("d"), C("Tom")))
	want := A("PatientWard", C("W1"), V("d"), C("Tom"))
	if !a.Equal(want) {
		t.Errorf("ApplyAtom = %v, want %v", a, want)
	}
}

func TestSubstCloneIsolation(t *testing.T) {
	s := NewSubst()
	s.Bind("x", C("a"))
	c := s.Clone()
	c.Bind("x", C("b"))
	if s.Apply(V("x")) != C("a") {
		t.Error("Clone must not alias the original")
	}
}

func TestSubstCompose(t *testing.T) {
	s := NewSubst()
	s.Bind("x", V("y"))
	u := NewSubst()
	u.Bind("y", C("a"))
	u.Bind("z", C("b"))
	comp := s.Compose(u)
	if comp.Apply(V("x")) != C("a") {
		t.Errorf("compose: x -> %v, want a", comp.Apply(V("x")))
	}
	if comp.Apply(V("z")) != C("b") {
		t.Errorf("compose: z -> %v, want b (bindings of second kept)", comp.Apply(V("z")))
	}
}

func TestSubstRestrict(t *testing.T) {
	s := NewSubst()
	s.Bind("x", C("a"))
	s.Bind("y", C("b"))
	r := s.Restrict([]Term{V("x"), V("missing"), C("const")})
	if len(r) != 1 {
		t.Fatalf("Restrict kept %d bindings, want 1", len(r))
	}
	if r.Apply(V("x")) != C("a") {
		t.Error("Restrict lost binding for x")
	}
}

func TestSubstIsGroundOn(t *testing.T) {
	s := NewSubst()
	s.Bind("x", C("a"))
	s.Bind("y", V("z"))
	if !s.IsGroundOn([]Term{V("x")}) {
		t.Error("x is ground")
	}
	if s.IsGroundOn([]Term{V("y")}) {
		t.Error("y resolves to a variable, not ground")
	}
	if s.IsGroundOn([]Term{V("w")}) {
		t.Error("unbound variable is not ground")
	}
}

func TestSubstKeyAndString(t *testing.T) {
	s := NewSubst()
	s.Bind("x", C("a"))
	s.Bind("y", N("1"))
	k1 := s.Key([]Term{V("x"), V("y")})
	k2 := s.Key([]Term{V("y"), V("x")})
	if k1 == k2 {
		t.Error("Key must be order-sensitive on the variable list")
	}
	if got, want := s.String(), "{x->a, y->⊥1}"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}
