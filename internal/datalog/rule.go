package datalog

import (
	"errors"
	"fmt"
	"strings"
)

// TGD is a tuple-generating dependency
//
//	∃z̄ H1(...), ..., Hk(...) ← B1(...), ..., Bn(...)
//
// where z̄ are the head variables not occurring in the body (the
// existential variables). Plain Datalog rules are TGDs without
// existential variables. A TGD with several head atoms is kept as one
// formula because the paper's downward-navigation rules of form (10)
// need joint heads sharing existential variables (e.g. rule (9):
// ∃u InstitutionUnit(i,u), PatientUnit(u,d;p) ← DischargePatients(i,d;p)).
type TGD struct {
	// ID is an optional human-readable name used in diagnostics and
	// chase provenance ("rule (7)", "r-shifts", ...).
	ID   string
	Body []Atom
	Head []Atom
}

// NewTGD builds a TGD with the given name.
func NewTGD(id string, head []Atom, body []Atom) *TGD {
	return &TGD{ID: id, Head: head, Body: body}
}

// Vars returns the distinct variables of the rule (body then head
// order of first occurrence).
func (t *TGD) Vars() []Term {
	seen := map[Term]bool{}
	var out []Term
	for _, as := range [][]Atom{t.Body, t.Head} {
		for _, a := range as {
			for _, tm := range a.Args {
				if tm.IsVar() && !seen[tm] {
					seen[tm] = true
					out = append(out, tm)
				}
			}
		}
	}
	return out
}

// UniversalVars returns the body variables.
func (t *TGD) UniversalVars() []Term { return VarsOfAtoms(t.Body) }

// ExistentialVars returns the head variables that do not occur in the
// body, in order of first occurrence in the head.
func (t *TGD) ExistentialVars() []Term {
	inBody := map[Term]bool{}
	for _, v := range VarsOfAtoms(t.Body) {
		inBody[v] = true
	}
	var out []Term
	for _, v := range VarsOfAtoms(t.Head) {
		if !inBody[v] {
			out = append(out, v)
		}
	}
	return out
}

// FrontierVars returns the body variables that also occur in the head.
func (t *TGD) FrontierVars() []Term {
	inHead := map[Term]bool{}
	for _, v := range VarsOfAtoms(t.Head) {
		inHead[v] = true
	}
	var out []Term
	for _, v := range VarsOfAtoms(t.Body) {
		if inHead[v] {
			out = append(out, v)
		}
	}
	return out
}

// IsExistential reports whether the rule has existential head variables.
func (t *TGD) IsExistential() bool { return len(t.ExistentialVars()) > 0 }

// IsLinear reports whether the body has a single atom.
func (t *TGD) IsLinear() bool { return len(t.Body) == 1 }

// Validate checks structural sanity: non-empty body and head, no
// nulls in the rule, every head variable either existential or from
// the body (trivially true), and no constants in existential
// positions (vacuous, kept for clarity).
func (t *TGD) Validate() error {
	if len(t.Body) == 0 {
		return fmt.Errorf("tgd %s: empty body", t.ID)
	}
	if len(t.Head) == 0 {
		return fmt.Errorf("tgd %s: empty head", t.ID)
	}
	for _, as := range [][]Atom{t.Body, t.Head} {
		for _, a := range as {
			if a.Pred == "" {
				return fmt.Errorf("tgd %s: atom with empty predicate", t.ID)
			}
			for _, tm := range a.Args {
				if tm.IsNull() {
					return fmt.Errorf("tgd %s: labeled null %s in rule", t.ID, tm)
				}
			}
		}
	}
	return nil
}

// String renders the TGD as "H1, ... <- B1, ...", prefixing existential
// variables with ∃.
func (t *TGD) String() string {
	var b strings.Builder
	if ex := t.ExistentialVars(); len(ex) > 0 {
		b.WriteString("∃")
		b.WriteString(TermsString(ex))
		b.WriteByte(' ')
	}
	b.WriteString(AtomsString(t.Head))
	b.WriteString(" <- ")
	b.WriteString(AtomsString(t.Body))
	return b.String()
}

// EGD is an equality-generating dependency
//
//	x = y ← B1(...), ..., Bn(...)
//
// where x and y are body variables. The paper uses EGDs as dimensional
// constraints of form (2), e.g. "all thermometers in a unit are of the
// same type".
type EGD struct {
	ID    string
	Body  []Atom
	Left  Term
	Right Term
}

// NewEGD builds an EGD.
func NewEGD(id string, left, right Term, body []Atom) *EGD {
	return &EGD{ID: id, Left: left, Right: right, Body: body}
}

// Validate checks that both sides are variables occurring in the body.
func (e *EGD) Validate() error {
	if len(e.Body) == 0 {
		return fmt.Errorf("egd %s: empty body", e.ID)
	}
	bodyVars := map[Term]bool{}
	for _, v := range VarsOfAtoms(e.Body) {
		bodyVars[v] = true
	}
	for _, side := range []Term{e.Left, e.Right} {
		if !side.IsVar() {
			return fmt.Errorf("egd %s: head term %s is not a variable", e.ID, side)
		}
		if !bodyVars[side] {
			return fmt.Errorf("egd %s: head variable %s not in body", e.ID, side)
		}
	}
	return nil
}

// String renders the EGD as "x = y <- B1, ...".
func (e *EGD) String() string {
	return fmt.Sprintf("%s = %s <- %s", e.Left, e.Right, AtomsString(e.Body))
}

// NC is a negative constraint
//
//	⊥ ← L1, ..., Ln
//
// whose body is a conjunction of literals; negated literals are allowed
// to express the paper's referential constraints of form (1)
// (⊥ ← R(ē;ā), ¬K(e)) and are evaluated under closed-world assumption
// on the extensional instance.
type NC struct {
	ID   string
	Body []Literal
	// Conds are built-in comparisons further restricting the body
	// match; the paper's "intensive care closed since August 2005"
	// constraint needs an ordering condition on the month member.
	Conds []Comparison
}

// NewNC builds a negative constraint from literals.
func NewNC(id string, body ...Literal) *NC { return &NC{ID: id, Body: body} }

// WithCond appends a comparison condition and returns the constraint.
func (n *NC) WithCond(op CompOp, l, r Term) *NC {
	n.Conds = append(n.Conds, Comparison{Op: op, L: l, R: r})
	return n
}

// NewDenial builds a purely positive negative constraint (form (3)).
func NewDenial(id string, body ...Atom) *NC {
	lits := make([]Literal, len(body))
	for i, a := range body {
		lits[i] = Pos(a)
	}
	return &NC{ID: id, Body: lits}
}

// PositiveBody returns the positive atoms of the constraint body.
func (n *NC) PositiveBody() []Atom {
	var out []Atom
	for _, l := range n.Body {
		if !l.Negated {
			out = append(out, l.Atom)
		}
	}
	return out
}

// NegativeBody returns the atoms under negation.
func (n *NC) NegativeBody() []Atom {
	var out []Atom
	for _, l := range n.Body {
		if l.Negated {
			out = append(out, l.Atom)
		}
	}
	return out
}

// Validate checks body sanity and safety: every variable of a negated
// atom must occur in some positive atom.
func (n *NC) Validate() error {
	if len(n.Body) == 0 {
		return fmt.Errorf("nc %s: empty body", n.ID)
	}
	if len(n.PositiveBody()) == 0 {
		return fmt.Errorf("nc %s: no positive atoms (unsafe)", n.ID)
	}
	posVars := map[Term]bool{}
	for _, v := range VarsOfAtoms(n.PositiveBody()) {
		posVars[v] = true
	}
	for _, a := range n.NegativeBody() {
		for _, v := range a.Vars() {
			if !posVars[v] {
				return fmt.Errorf("nc %s: variable %s of negated atom %s not bound by a positive atom", n.ID, v, a)
			}
		}
	}
	for _, c := range n.Conds {
		for _, t := range []Term{c.L, c.R} {
			if t.IsVar() && !posVars[t] {
				return fmt.Errorf("nc %s: variable %s of condition %s not bound by a positive atom", n.ID, t, c)
			}
		}
	}
	return nil
}

// String renders the NC as "⊥ <- L1, ...".
func (n *NC) String() string {
	parts := make([]string, 0, len(n.Body)+len(n.Conds))
	for _, l := range n.Body {
		parts = append(parts, l.String())
	}
	for _, c := range n.Conds {
		parts = append(parts, c.String())
	}
	return "⊥ <- " + strings.Join(parts, ", ")
}

// ErrEmptyProgram is returned when validating a program with no rules
// and no constraints.
var ErrEmptyProgram = errors.New("datalog: empty program")
