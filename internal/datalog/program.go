package datalog

import (
	"fmt"
	"sort"
	"strings"
)

// Program is a Datalog± program: a set of TGDs, EGDs and negative
// constraints. Extensional data is kept separately (storage.Instance).
type Program struct {
	TGDs []*TGD
	EGDs []*EGD
	NCs  []*NC
}

// NewProgram returns an empty program.
func NewProgram() *Program { return &Program{} }

// AddTGD appends a TGD.
func (p *Program) AddTGD(t *TGD) { p.TGDs = append(p.TGDs, t) }

// AddEGD appends an EGD.
func (p *Program) AddEGD(e *EGD) { p.EGDs = append(p.EGDs, e) }

// AddNC appends a negative constraint.
func (p *Program) AddNC(n *NC) { p.NCs = append(p.NCs, n) }

// Validate checks every rule and constraint, and arity consistency
// across all predicate occurrences.
func (p *Program) Validate() error {
	if len(p.TGDs) == 0 && len(p.EGDs) == 0 && len(p.NCs) == 0 {
		return ErrEmptyProgram
	}
	arities := map[string]int{}
	check := func(where string, a Atom) error {
		if prev, ok := arities[a.Pred]; ok && prev != len(a.Args) {
			return fmt.Errorf("%s: predicate %s used with arity %d and %d", where, a.Pred, prev, len(a.Args))
		}
		arities[a.Pred] = len(a.Args)
		return nil
	}
	for _, t := range p.TGDs {
		if err := t.Validate(); err != nil {
			return err
		}
		for _, a := range append(CloneAtoms(t.Body), t.Head...) {
			if err := check("tgd "+t.ID, a); err != nil {
				return err
			}
		}
	}
	for _, e := range p.EGDs {
		if err := e.Validate(); err != nil {
			return err
		}
		for _, a := range e.Body {
			if err := check("egd "+e.ID, a); err != nil {
				return err
			}
		}
	}
	for _, n := range p.NCs {
		if err := n.Validate(); err != nil {
			return err
		}
		for _, l := range n.Body {
			if err := check("nc "+n.ID, l.Atom); err != nil {
				return err
			}
		}
	}
	return nil
}

// Predicates returns every predicate name occurring in the program with
// its arity, sorted by name.
func (p *Program) Predicates() []PredicateInfo {
	seen := map[string]int{}
	add := func(a Atom) { seen[a.Pred] = len(a.Args) }
	for _, t := range p.TGDs {
		for _, a := range t.Body {
			add(a)
		}
		for _, a := range t.Head {
			add(a)
		}
	}
	for _, e := range p.EGDs {
		for _, a := range e.Body {
			add(a)
		}
	}
	for _, n := range p.NCs {
		for _, l := range n.Body {
			add(l.Atom)
		}
	}
	out := make([]PredicateInfo, 0, len(seen))
	for name, ar := range seen {
		out = append(out, PredicateInfo{Name: name, Arity: ar})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// PredicateInfo is a predicate name with its arity.
type PredicateInfo struct {
	Name  string
	Arity int
}

// String renders the predicate as name/arity.
func (pi PredicateInfo) String() string { return fmt.Sprintf("%s/%d", pi.Name, pi.Arity) }

// IDBPredicates returns the names of predicates that appear in some TGD
// head (intensional predicates).
func (p *Program) IDBPredicates() map[string]bool {
	out := map[string]bool{}
	for _, t := range p.TGDs {
		for _, a := range t.Head {
			out[a.Pred] = true
		}
	}
	return out
}

// TGDsByHeadPred indexes TGDs by the predicates of their head atoms.
// A rule with several head atoms is listed under each head predicate.
func (p *Program) TGDsByHeadPred() map[string][]*TGD {
	out := map[string][]*TGD{}
	for _, t := range p.TGDs {
		listed := map[string]bool{}
		for _, a := range t.Head {
			if !listed[a.Pred] {
				listed[a.Pred] = true
				out[a.Pred] = append(out[a.Pred], t)
			}
		}
	}
	return out
}

// NormalizeHeads splits TGDs with conjunctive heads into single-head
// rules where this preserves semantics — the paper's footnote 2 ("a
// rule with a conjunction in the head can be transformed into a set of
// rules with single atoms in heads"). Splitting is sound only when the
// head atoms share no existential variable: rule (9)'s two head atoms
// share the invented unit and must fire together, so such rules are
// kept intact. The receiver is not modified.
func (p *Program) NormalizeHeads() *Program {
	out := NewProgram()
	for _, t := range p.TGDs {
		if len(t.Head) == 1 || sharesExistential(t) {
			out.AddTGD(&TGD{ID: t.ID, Body: CloneAtoms(t.Body), Head: CloneAtoms(t.Head)})
			continue
		}
		for i, h := range t.Head {
			out.AddTGD(&TGD{
				ID:   fmt.Sprintf("%s#%d", t.ID, i),
				Body: CloneAtoms(t.Body),
				Head: []Atom{h.Clone()},
			})
		}
	}
	for _, e := range p.EGDs {
		out.AddEGD(e)
	}
	for _, n := range p.NCs {
		out.AddNC(n)
	}
	return out
}

// sharesExistential reports whether any existential variable occurs in
// more than one head atom.
func sharesExistential(t *TGD) bool {
	ex := map[Term]bool{}
	for _, v := range t.ExistentialVars() {
		ex[v] = true
	}
	if len(ex) == 0 {
		return false
	}
	seen := map[Term]bool{}
	for _, h := range t.Head {
		inThisAtom := map[Term]bool{}
		for _, tm := range h.Args {
			if tm.IsVar() && ex[tm] && !inThisAtom[tm] {
				inThisAtom[tm] = true
				if seen[tm] {
					return true
				}
				seen[tm] = true
			}
		}
	}
	return false
}

// Clone deep-copies the program (rules are copied; term slices are
// fresh).
func (p *Program) Clone() *Program {
	out := NewProgram()
	for _, t := range p.TGDs {
		out.AddTGD(&TGD{ID: t.ID, Body: CloneAtoms(t.Body), Head: CloneAtoms(t.Head)})
	}
	for _, e := range p.EGDs {
		out.AddEGD(&EGD{ID: e.ID, Body: CloneAtoms(e.Body), Left: e.Left, Right: e.Right})
	}
	for _, n := range p.NCs {
		lits := make([]Literal, len(n.Body))
		for i, l := range n.Body {
			lits[i] = Literal{Atom: l.Atom.Clone(), Negated: l.Negated}
		}
		out.AddNC(&NC{ID: n.ID, Body: lits, Conds: append([]Comparison(nil), n.Conds...)})
	}
	return out
}

// String renders the full program, one formula per line.
func (p *Program) String() string {
	var b strings.Builder
	for _, t := range p.TGDs {
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	for _, e := range p.EGDs {
		b.WriteString(e.String())
		b.WriteString("\n")
	}
	for _, n := range p.NCs {
		b.WriteString(n.String())
		b.WriteString("\n")
	}
	return b.String()
}
