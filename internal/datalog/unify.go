package datalog

// Match extends the substitution s so that pattern, under s, becomes
// exactly fact. fact must be variable-free (it may contain nulls, which
// behave as constants). It returns the extended substitution and true on
// success; s itself is never modified.
//
// Match is the homomorphism step used by the chase and by bottom-up
// evaluation: variables of the pattern may map to constants or nulls of
// the fact.
func Match(pattern, fact Atom, s Subst) (Subst, bool) {
	if pattern.Pred != fact.Pred || len(pattern.Args) != len(fact.Args) {
		return nil, false
	}
	out := s
	copied := false
	for i, pt := range pattern.Args {
		ft := fact.Args[i]
		pt = out.Apply(pt)
		switch {
		case pt.IsVar():
			if !copied {
				out = out.Clone()
				copied = true
			}
			out.Bind(pt.Name, ft)
		case pt != ft:
			return nil, false
		}
	}
	if !copied {
		out = out.Clone()
	}
	return out, true
}

// Unify computes a most general unifier of atoms a and b, treating
// variables in both as unifiable. Constants and nulls unify only with
// themselves. It returns the mgu extending s, or false.
func Unify(a, b Atom, s Subst) (Subst, bool) {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return nil, false
	}
	out := s.Clone()
	for i := range a.Args {
		if !unifyTerms(a.Args[i], b.Args[i], out) {
			return nil, false
		}
	}
	return out, true
}

// unifyTerms unifies two terms destructively into s.
func unifyTerms(x, y Term, s Subst) bool {
	x = s.Apply(x)
	y = s.Apply(y)
	switch {
	case x == y:
		return true
	case x.IsVar():
		s.Bind(x.Name, y)
		return true
	case y.IsVar():
		s.Bind(y.Name, x)
		return true
	default:
		return false
	}
}

// RenameApart returns a copy of the TGD with every variable renamed to a
// fresh one from the counter, so that the result shares no variables
// with any other formula. Used by top-down resolution and rewriting.
func RenameApart(t *TGD, fresh *Counter) *TGD {
	ren := NewSubst()
	for _, v := range t.Vars() {
		ren.Bind(v.Name, fresh.FreshVar())
	}
	return &TGD{
		ID:   t.ID,
		Body: ren.ApplyAtoms(t.Body),
		Head: ren.ApplyAtoms(t.Head),
	}
}

// AtomSubsumes reports whether atom a subsumes atom b: there is a
// substitution θ of a's variables with aθ = b. It is Match with a
// throwaway substitution.
func AtomSubsumes(a, b Atom) bool {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return false
	}
	s := NewSubst()
	for i := range a.Args {
		at := s.Apply(a.Args[i])
		bt := b.Args[i]
		switch {
		case at.IsVar():
			s.Bind(at.Name, bt)
		case at != bt:
			return false
		}
	}
	return true
}

// ConjunctionSubsumes reports whether conjunction a subsumes conjunction
// b: a single substitution θ maps every atom of a to some atom of b
// (θ-subsumption, the standard CQ containment check used for pruning
// rewritings). The variables of b are frozen — treated as fresh
// constants — so the test is correct even when a and b share variable
// names.
func ConjunctionSubsumes(a, b []Atom) bool {
	frozen := make([]Atom, len(b))
	for i, atom := range b {
		fa := Atom{Pred: atom.Pred, Args: make([]Term, len(atom.Args))}
		for j, t := range atom.Args {
			if t.IsVar() {
				fa.Args[j] = N("frozen·" + t.Name)
			} else {
				fa.Args[j] = t
			}
		}
		frozen[i] = fa
	}
	return subsume(a, frozen, NewSubst())
}

func subsume(rest []Atom, b []Atom, s Subst) bool {
	if len(rest) == 0 {
		return true
	}
	first := s.ApplyAtom(rest[0])
	for _, cand := range b {
		if s2, ok := Match(first, cand, s); ok {
			if subsume(rest[1:], b, s2) {
				return true
			}
		}
	}
	return false
}
