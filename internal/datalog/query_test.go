package datalog

import (
	"strings"
	"testing"
)

// paperQuery is the doctor's query of Example 7:
// Q(t,p,v) <- Measurements(t,p,v), p = "Tom Waits",
//
//	"Sep/5-11:45" <= t, t <= "Sep/5-12:15".
func paperQuery() *Query {
	q := NewQuery(
		A("Q", V("t"), V("p"), V("v")),
		A("Measurements", V("t"), V("p"), V("v")))
	q.WithCond(OpEq, V("p"), C("Tom Waits"))
	q.WithCond(OpGe, V("t"), C("Sep/5-11:45"))
	q.WithCond(OpLe, V("t"), C("Sep/5-12:15"))
	return q
}

func TestQueryValidate(t *testing.T) {
	if err := paperQuery().Validate(); err != nil {
		t.Fatalf("paper query must validate: %v", err)
	}
	unsafeAns := NewQuery(A("Q", V("x")), A("P", V("y")))
	if err := unsafeAns.Validate(); err == nil {
		t.Error("answer variable not in body must fail")
	}
	empty := NewQuery(A("Q"))
	if err := empty.Validate(); err == nil {
		t.Error("empty body must fail")
	}
	unsafeNeg := NewQuery(A("Q", V("x")), A("P", V("x"))).WithNegated(A("R", V("z")))
	if err := unsafeNeg.Validate(); err == nil {
		t.Error("unsafe negated variable must fail")
	}
	unsafeCond := NewQuery(A("Q", V("x")), A("P", V("x"))).WithCond(OpLt, V("w"), C("1"))
	if err := unsafeCond.Validate(); err == nil {
		t.Error("unsafe condition variable must fail")
	}
}

func TestQueryBooleanAndVars(t *testing.T) {
	b := NewQuery(A("Q"), A("P", V("x")))
	if !b.IsBoolean() {
		t.Error("no-answer-variable query is Boolean")
	}
	q := paperQuery()
	if q.IsBoolean() {
		t.Error("paper query is open")
	}
	if got := q.AnswerVars(); len(got) != 3 {
		t.Errorf("answer vars = %v, want t,p,v", got)
	}
}

func TestComparisonEval(t *testing.T) {
	s := NewSubst()
	s.Bind("t", C("Sep/5-12:10"))
	s.Bind("p", C("Tom Waits"))
	cases := []struct {
		c    Comparison
		want bool
	}{
		{Comparison{OpGe, V("t"), C("Sep/5-11:45")}, true},
		{Comparison{OpLe, V("t"), C("Sep/5-12:15")}, true},
		{Comparison{OpLt, V("t"), C("Sep/5-11:00")}, false},
		{Comparison{OpEq, V("p"), C("Tom Waits")}, true},
		{Comparison{OpNe, V("p"), C("Lou Reed")}, true},
		{Comparison{OpEq, C("2"), C("2.0")}, false}, // equality is syntactic
		{Comparison{OpLe, C("2"), C("10")}, true},   // ordering is numeric
		{Comparison{OpGt, C("10"), C("9")}, true},
	}
	for _, tc := range cases {
		got, err := tc.c.Eval(s)
		if err != nil {
			t.Errorf("Eval(%s) error: %v", tc.c, err)
			continue
		}
		if got != tc.want {
			t.Errorf("Eval(%s) = %v, want %v", tc.c, got, tc.want)
		}
	}
}

func TestComparisonEvalUnbound(t *testing.T) {
	c := Comparison{OpLt, V("x"), C("1")}
	if _, err := c.Eval(NewSubst()); err == nil {
		t.Error("unbound comparison must error")
	}
}

func TestComparisonNullSemantics(t *testing.T) {
	s := NewSubst()
	s.Bind("x", N("1"))
	eq, _ := Comparison{OpEq, V("x"), N("1")}.Eval(s)
	if !eq {
		t.Error("null equals itself")
	}
	lt, _ := Comparison{OpLt, V("x"), C("zzz")}.Eval(s)
	if lt {
		t.Error("ordering comparisons with nulls are false")
	}
	ge, _ := Comparison{OpGe, V("x"), C("")}.Eval(s)
	if ge {
		t.Error("ordering comparisons with nulls are false")
	}
}

func TestCompOpString(t *testing.T) {
	ops := map[CompOp]string{OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">="}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("op %d String = %q, want %q", op, op.String(), want)
		}
	}
}

func TestQueryString(t *testing.T) {
	s := paperQuery().String()
	for _, want := range []string{"Q(t, p, v) <-", "Measurements(t, p, v)", `p = "Tom Waits"`, `t <= "Sep/5-12:15"`} {
		if !strings.Contains(s, want) {
			t.Errorf("query String missing %q: %s", want, s)
		}
	}
	n := NewQuery(A("Q", V("x")), A("P", V("x"))).WithNegated(A("R", V("x")))
	if !strings.Contains(n.String(), "not R(x)") {
		t.Errorf("negated atom missing from String: %s", n)
	}
}

func TestQueryCloneIndependence(t *testing.T) {
	q := paperQuery()
	c := q.Clone()
	c.Body[0].Args[0] = C("mutated")
	c.Conds[0].L = C("mutated")
	if q.Body[0].Args[0] == C("mutated") {
		t.Error("Clone must deep-copy body")
	}
	if q.Conds[0].L == C("mutated") {
		t.Error("Clone must copy conditions")
	}
}

func TestAnswerSetBasics(t *testing.T) {
	s := NewAnswerSet()
	a1 := Answer{Terms: []Term{C("Sep/9")}}
	a2 := Answer{Terms: []Term{C("Sep/5")}}
	if !s.Add(a1) || !s.Add(a2) {
		t.Fatal("fresh answers must be added")
	}
	if s.Add(a1) {
		t.Error("duplicate answer must not be added")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	if !s.Contains(a1) {
		t.Error("Contains(a1) must be true")
	}
	sorted := s.Sorted()
	if sorted[0].Terms[0] != C("Sep/5") {
		t.Errorf("Sorted order wrong: %v", sorted)
	}
	// Insertion order preserved by All.
	if s.All()[0].Terms[0] != C("Sep/9") {
		t.Errorf("All order wrong: %v", s.All())
	}
}

func TestAnswerHasNullAndKey(t *testing.T) {
	withNull := Answer{Terms: []Term{C("a"), N("1")}}
	if !withNull.HasNull() {
		t.Error("HasNull must detect nulls")
	}
	clean := Answer{Terms: []Term{C("a"), C("1")}}
	if clean.HasNull() {
		t.Error("no null present")
	}
	if withNull.Key() == clean.Key() {
		t.Error("keys must distinguish null from constant")
	}
}

func TestAnswerSetEqual(t *testing.T) {
	s1, s2 := NewAnswerSet(), NewAnswerSet()
	s1.Add(Answer{Terms: []Term{C("a")}})
	s1.Add(Answer{Terms: []Term{C("b")}})
	s2.Add(Answer{Terms: []Term{C("b")}})
	s2.Add(Answer{Terms: []Term{C("a")}})
	if !s1.Equal(s2) {
		t.Error("order-independent equality expected")
	}
	s2.Add(Answer{Terms: []Term{C("c")}})
	if s1.Equal(s2) {
		t.Error("different sizes must not be equal")
	}
}

func TestAnswerSetString(t *testing.T) {
	s := NewAnswerSet()
	s.Add(Answer{Terms: []Term{C("b")}})
	s.Add(Answer{Terms: []Term{C("a")}})
	got := s.String()
	if got != "(a)\n(b)\n" {
		t.Errorf("String = %q", got)
	}
}
