package datalog

import "testing"

func TestNormalizeHeadsSplitsIndependentHeads(t *testing.T) {
	p := NewProgram()
	p.AddTGD(NewTGD("multi",
		[]Atom{A("H1", V("x")), A("H2", V("x"), V("y"))},
		[]Atom{A("B", V("x"), V("y"))}))
	n := p.NormalizeHeads()
	if len(n.TGDs) != 2 {
		t.Fatalf("TGDs = %d, want 2", len(n.TGDs))
	}
	for _, tgd := range n.TGDs {
		if len(tgd.Head) != 1 {
			t.Errorf("rule %s still has %d head atoms", tgd.ID, len(tgd.Head))
		}
	}
	if n.TGDs[0].ID != "multi#0" || n.TGDs[1].ID != "multi#1" {
		t.Errorf("split IDs = %s, %s", n.TGDs[0].ID, n.TGDs[1].ID)
	}
	// Original untouched.
	if len(p.TGDs) != 1 || len(p.TGDs[0].Head) != 2 {
		t.Error("NormalizeHeads must not mutate the receiver")
	}
}

func TestNormalizeHeadsKeepsSharedExistentials(t *testing.T) {
	// Rule (9): the two head atoms share existential u and must stay
	// one rule.
	p := NewProgram()
	p.AddTGD(NewTGD("r9",
		[]Atom{
			A("InstitutionUnit", V("i"), V("u")),
			A("PatientUnit", V("u"), V("d"), V("p")),
		},
		[]Atom{A("DischargePatients", V("i"), V("d"), V("p"))}))
	n := p.NormalizeHeads()
	if len(n.TGDs) != 1 || len(n.TGDs[0].Head) != 2 {
		t.Errorf("rule (9) must stay intact: %v", n.TGDs)
	}
}

func TestNormalizeHeadsSplitsUnsharedExistentials(t *testing.T) {
	// Each head atom has its own existential: splitting is sound
	// (each split rule invents its own null).
	p := NewProgram()
	p.AddTGD(NewTGD("two-ex",
		[]Atom{
			A("H1", V("x"), V("z1")),
			A("H2", V("x"), V("z2")),
		},
		[]Atom{A("B", V("x"))}))
	n := p.NormalizeHeads()
	if len(n.TGDs) != 2 {
		t.Errorf("unshared existentials must split: %v", n.TGDs)
	}
}

func TestNormalizeHeadsCarriesConstraints(t *testing.T) {
	p := NewProgram()
	p.AddTGD(NewTGD("single", []Atom{A("H", V("x"))}, []Atom{A("B", V("x"))}))
	p.AddEGD(NewEGD("e", V("x"), V("y"), []Atom{A("P", V("x"), V("y"))}))
	p.AddNC(NewDenial("c", A("Bad", V("x"))))
	n := p.NormalizeHeads()
	if len(n.TGDs) != 1 || len(n.EGDs) != 1 || len(n.NCs) != 1 {
		t.Errorf("normalize lost formulas: %d/%d/%d", len(n.TGDs), len(n.EGDs), len(n.NCs))
	}
}

func TestNormalizeRepeatedExistentialInOneAtom(t *testing.T) {
	// z occurs twice in ONE head atom only: no cross-atom sharing,
	// split is allowed.
	p := NewProgram()
	p.AddTGD(NewTGD("rep",
		[]Atom{
			A("H1", V("z"), V("z")),
			A("H2", V("x")),
		},
		[]Atom{A("B", V("x"))}))
	n := p.NormalizeHeads()
	if len(n.TGDs) != 2 {
		t.Errorf("within-atom repetition must still split: %v", n.TGDs)
	}
}
