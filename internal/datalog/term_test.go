package datalog

import (
	"testing"
	"testing/quick"
)

func TestTermKinds(t *testing.T) {
	c := C("W1")
	v := V("x")
	n := N("0")
	if !c.IsConst() || c.IsVar() || c.IsNull() {
		t.Errorf("C(W1) kind flags wrong: %+v", c)
	}
	if !v.IsVar() || v.IsConst() || v.IsNull() {
		t.Errorf("V(x) kind flags wrong: %+v", v)
	}
	if !n.IsNull() || n.IsConst() || n.IsVar() {
		t.Errorf("N(0) kind flags wrong: %+v", n)
	}
	if !c.IsGround() || v.IsGround() || !n.IsGround() {
		t.Errorf("groundness wrong: c=%v v=%v n=%v", c.IsGround(), v.IsGround(), n.IsGround())
	}
}

func TestTermEqualityAsMapKey(t *testing.T) {
	m := map[Term]int{}
	m[C("a")] = 1
	m[V("a")] = 2
	m[N("a")] = 3
	if len(m) != 3 {
		t.Fatalf("terms with same name but different kinds must be distinct keys, got %d entries", len(m))
	}
	if m[C("a")] != 1 || m[V("a")] != 2 || m[N("a")] != 3 {
		t.Fatalf("map lookups wrong: %v", m)
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{C("W1"), "W1"},
		{C("Tom Waits"), `"Tom Waits"`},
		{C("Sep/5-12:10"), `"Sep/5-12:10"`},
		{C("38.2"), "38.2"},
		{C(""), `""`},
		{C("123"), "123"},
		{V("x"), "x"},
		{N("7"), "⊥7"},
	}
	for _, tc := range cases {
		if got := tc.term.String(); got != tc.want {
			t.Errorf("String(%+v) = %q, want %q", tc.term, got, tc.want)
		}
	}
}

func TestTermCompare(t *testing.T) {
	cases := []struct {
		a, b Term
		want int
	}{
		{C("a"), C("b"), -1},
		{C("b"), C("a"), 1},
		{C("a"), C("a"), 0},
		{C("2"), C("10"), -1}, // numeric, not lexicographic
		{C("10"), C("2"), 1},
		{C("1.5"), C("1.50"), 0},
		{C("z"), V("a"), -1}, // consts before vars
		{V("z"), N("a"), -1}, // vars before nulls
		{C("Sep/5-11:45"), C("Sep/5-12:15"), -1},
	}
	for _, tc := range cases {
		if got := tc.a.Compare(tc.b); got != tc.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestTermCompareAntisymmetric(t *testing.T) {
	f := func(a, b string) bool {
		x, y := C(a), C(b)
		return x.Compare(y) == -y.Compare(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter("n")
	if got := c.Next(); got != "n0" {
		t.Errorf("first Next = %q, want n0", got)
	}
	if got := c.Next(); got != "n1" {
		t.Errorf("second Next = %q, want n1", got)
	}
	nu := c.FreshNull()
	if !nu.IsNull() || nu.Name != "n2" {
		t.Errorf("FreshNull = %v, want ⊥n2", nu)
	}
	va := c.FreshVar()
	if !va.IsVar() || va.Name != "n3" {
		t.Errorf("FreshVar = %v, want var n3", va)
	}
}

func TestTermsString(t *testing.T) {
	got := TermsString([]Term{C("W1"), V("x"), N("2")})
	want := "W1, x, ⊥2"
	if got != want {
		t.Errorf("TermsString = %q, want %q", got, want)
	}
}

func TestCloneTermsIndependence(t *testing.T) {
	orig := []Term{C("a"), V("x")}
	cl := CloneTerms(orig)
	cl[0] = C("b")
	if orig[0] != C("a") {
		t.Error("CloneTerms must not share backing array effects")
	}
}
