package datalog

import (
	"sort"
	"strings"
)

// Subst is a substitution: a finite mapping from variables to terms.
// Substitutions are applied with Apply*; bindings always map variable
// names, and the mapped-to term may itself be a variable (renamings).
type Subst map[string]Term

// NewSubst returns an empty substitution.
func NewSubst() Subst { return make(Subst) }

// Bind adds or overwrites a binding v -> t. v must be a variable name.
func (s Subst) Bind(v string, t Term) { s[v] = t }

// Lookup returns the binding of variable name v.
func (s Subst) Lookup(v string) (Term, bool) {
	t, ok := s[v]
	return t, ok
}

// Clone returns a copy of the substitution.
func (s Subst) Clone() Subst {
	out := make(Subst, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// Apply resolves t under s, following chains of variable bindings
// (v -> w -> c resolves to c). Cycles are broken by returning the last
// variable seen; well-formed substitutions produced by unification are
// idempotent after Resolve.
func (s Subst) Apply(t Term) Term {
	for i := 0; i < len(s)+1; i++ {
		if !t.IsVar() {
			return t
		}
		next, ok := s[t.Name]
		if !ok || next == t {
			return t
		}
		t = next
	}
	return t
}

// ApplyAtom applies the substitution to every argument of the atom.
func (s Subst) ApplyAtom(a Atom) Atom {
	out := Atom{Pred: a.Pred, Args: make([]Term, len(a.Args))}
	for i, t := range a.Args {
		out.Args[i] = s.Apply(t)
	}
	return out
}

// ApplyAtoms applies the substitution to a conjunction.
func (s Subst) ApplyAtoms(atoms []Atom) []Atom {
	out := make([]Atom, len(atoms))
	for i, a := range atoms {
		out[i] = s.ApplyAtom(a)
	}
	return out
}

// ApplyLiteral applies the substitution to a literal.
func (s Subst) ApplyLiteral(l Literal) Literal {
	return Literal{Atom: s.ApplyAtom(l.Atom), Negated: l.Negated}
}

// Compose returns the substitution equivalent to applying s first and
// then t: (s;t)(x) = t(s(x)). Bindings of t for variables untouched by
// s are retained.
func (s Subst) Compose(t Subst) Subst {
	out := make(Subst, len(s)+len(t))
	for v, term := range s {
		out[v] = t.Apply(term)
	}
	for v, term := range t {
		if _, done := out[v]; !done {
			out[v] = term
		}
	}
	return out
}

// Restrict returns s limited to the given variables.
func (s Subst) Restrict(vars []Term) Subst {
	out := NewSubst()
	for _, v := range vars {
		if !v.IsVar() {
			continue
		}
		if t, ok := s[v.Name]; ok {
			out[v.Name] = t
		}
	}
	return out
}

// IsGroundOn reports whether every variable in vars is bound to a
// ground term (constant or null) after resolution.
func (s Subst) IsGroundOn(vars []Term) bool {
	for _, v := range vars {
		if !v.IsVar() {
			continue
		}
		if !s.Apply(v).IsGround() {
			return false
		}
	}
	return true
}

// Key returns a canonical string for the substitution restricted to the
// given variables, usable as a map key for answer deduplication.
func (s Subst) Key(vars []Term) string {
	var b strings.Builder
	for _, v := range vars {
		t := s.Apply(v)
		b.WriteByte(byte('0' + t.Kind))
		b.WriteString(t.Name)
		b.WriteByte('|')
	}
	return b.String()
}

// String renders the substitution deterministically as {x->a, y->b}.
func (s Subst) String() string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(k)
		b.WriteString("->")
		b.WriteString(s[k].String())
	}
	b.WriteByte('}')
	return b.String()
}
