package datalog

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestInternerRoundTrip(t *testing.T) {
	in := NewInterner()
	terms := []Term{
		C("a"), V("x"), N("n0"), C("x"), V("a"), N("a"),
		C(""), C("Sep/5-12:10"), C("37.5"),
	}
	ids := make([]int32, len(terms))
	for i, tm := range terms {
		ids[i] = in.ID(tm)
	}
	for i, tm := range terms {
		if got := in.TermOf(ids[i]); got != tm {
			t.Errorf("TermOf(ID(%v)) = %v", tm, got)
		}
		if again := in.ID(tm); again != ids[i] {
			t.Errorf("re-interning %v: id %d != %d", tm, again, ids[i])
		}
	}
	// Same name, different kind must get distinct ids.
	if in.ID(C("a")) == in.ID(V("a")) || in.ID(C("a")) == in.ID(N("a")) {
		t.Error("terms of different kinds share an id")
	}
}

func TestInternerDenseIDs(t *testing.T) {
	in := NewInterner()
	seen := map[int32]bool{}
	for i := 0; i < 100; i++ {
		id := in.ID(C(fmt.Sprintf("c%d", i)))
		if id != int32(i) {
			t.Fatalf("id %d for %dth distinct term, want dense allocation", id, i)
		}
		seen[id] = true
	}
	if in.Len() != 100 || len(seen) != 100 {
		t.Fatalf("Len=%d distinct=%d, want 100", in.Len(), len(seen))
	}
}

func TestInternerLookupMiss(t *testing.T) {
	in := NewInterner()
	in.ID(C("present"))
	if _, ok := in.Lookup(C("absent")); ok {
		t.Error("Lookup of never-interned term reported ok")
	}
	if id, ok := in.Lookup(C("present")); !ok || id != 0 {
		t.Errorf("Lookup(present) = %d,%v want 0,true", id, ok)
	}
	if in.Len() != 1 {
		t.Errorf("Lookup must not intern; Len=%d", in.Len())
	}
}

func TestInternerBulkHelpers(t *testing.T) {
	in := NewInterner()
	r := rand.New(rand.NewSource(1))
	tuple := make([]Term, 8)
	for i := range tuple {
		tuple[i] = C(fmt.Sprintf("v%d", r.Intn(5)))
	}
	ids := in.IDs(tuple, nil)
	back := in.Terms(ids, nil)
	if len(back) != len(tuple) {
		t.Fatalf("len mismatch %d != %d", len(back), len(tuple))
	}
	for i := range tuple {
		if back[i] != tuple[i] {
			t.Errorf("pos %d: %v != %v", i, back[i], tuple[i])
		}
	}
	// Buffer reuse keeps the same backing array.
	buf := make([]int32, 0, 8)
	out := in.IDs(tuple, buf[:0])
	if &out[0] != &buf[:1][0] {
		t.Error("IDs did not reuse the provided buffer")
	}
}
