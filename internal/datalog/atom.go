package datalog

import (
	"fmt"
	"sort"
	"strings"
)

// Atom is a predicate applied to a list of terms, e.g.
// PatientWard(w, d, p) or UnitWard("Standard", w).
type Atom struct {
	Pred string
	Args []Term
}

// A builds an atom.
func A(pred string, args ...Term) Atom { return Atom{Pred: pred, Args: args} }

// Arity returns the number of arguments.
func (a Atom) Arity() int { return len(a.Args) }

// String renders the atom as Pred(t1, ..., tn).
func (a Atom) String() string {
	return a.Pred + "(" + TermsString(a.Args) + ")"
}

// IsGround reports whether the atom contains no variables.
func (a Atom) IsGround() bool {
	for _, t := range a.Args {
		if t.IsVar() {
			return false
		}
	}
	return true
}

// HasNull reports whether any argument is a labeled null.
func (a Atom) HasNull() bool {
	for _, t := range a.Args {
		if t.IsNull() {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the atom.
func (a Atom) Clone() Atom {
	return Atom{Pred: a.Pred, Args: CloneTerms(a.Args)}
}

// Equal reports syntactic equality.
func (a Atom) Equal(b Atom) bool {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical string key for a ground atom, used for
// deduplication. Variables are rendered too, so the key is usable for
// memoization of non-ground goals as well.
func (a Atom) Key() string {
	var b strings.Builder
	b.WriteString(a.Pred)
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteByte(byte('0' + t.Kind))
		b.WriteString(t.Name)
	}
	b.WriteByte(')')
	return b.String()
}

// Vars returns the distinct variables of the atom in order of first
// occurrence.
func (a Atom) Vars() []Term {
	var out []Term
	seen := map[Term]bool{}
	for _, t := range a.Args {
		if t.IsVar() && !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// Literal is an atom with a sign. Negative literals appear only in the
// bodies of negative constraints (the paper's referential constraint
// form (1) uses ¬K(e)) and of quality-predicate rules, where they are
// evaluated under closed-world assumption against extensional data.
type Literal struct {
	Atom    Atom
	Negated bool
}

// Pos returns a positive literal.
func Pos(a Atom) Literal { return Literal{Atom: a} }

// Neg returns a negated literal.
func Neg(a Atom) Literal { return Literal{Atom: a, Negated: true} }

// String renders the literal, prefixing negated atoms with "not ".
func (l Literal) String() string {
	if l.Negated {
		return "not " + l.Atom.String()
	}
	return l.Atom.String()
}

// VarsOfAtoms returns the distinct variables of a conjunction in order
// of first occurrence.
func VarsOfAtoms(atoms []Atom) []Term {
	var out []Term
	seen := map[Term]bool{}
	for _, a := range atoms {
		for _, t := range a.Args {
			if t.IsVar() && !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	return out
}

// AtomsString renders a conjunction as "a1, a2, ...".
func AtomsString(atoms []Atom) string {
	parts := make([]string, len(atoms))
	for i, a := range atoms {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}

// CloneAtoms deep-copies a conjunction.
func CloneAtoms(atoms []Atom) []Atom {
	out := make([]Atom, len(atoms))
	for i, a := range atoms {
		out[i] = a.Clone()
	}
	return out
}

// Position identifies an argument position of a predicate, written
// pred[i] in the Datalog± literature (0-based here).
type Position struct {
	Pred  string
	Index int
}

// String renders the position as pred[i].
func (p Position) String() string { return fmt.Sprintf("%s[%d]", p.Pred, p.Index) }

// SortPositions orders positions lexicographically (predicate, index);
// convenient for deterministic output in tests and tools.
func SortPositions(ps []Position) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Pred != ps[j].Pred {
			return ps[i].Pred < ps[j].Pred
		}
		return ps[i].Index < ps[j].Index
	})
}

// PositionsOf enumerates every position of atom a.
func PositionsOf(a Atom) []Position {
	out := make([]Position, len(a.Args))
	for i := range a.Args {
		out[i] = Position{Pred: a.Pred, Index: i}
	}
	return out
}
