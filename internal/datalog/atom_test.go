package datalog

import (
	"testing"
)

func TestAtomBasics(t *testing.T) {
	a := A("PatientWard", V("w"), V("d"), C("Tom Waits"))
	if a.Arity() != 3 {
		t.Errorf("arity = %d, want 3", a.Arity())
	}
	if a.IsGround() {
		t.Error("atom with variables must not be ground")
	}
	g := A("Ward", C("W1"))
	if !g.IsGround() {
		t.Error("ground atom reported non-ground")
	}
	if got, want := a.String(), `PatientWard(w, d, "Tom Waits")`; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestAtomHasNull(t *testing.T) {
	if A("P", C("a")).HasNull() {
		t.Error("no null expected")
	}
	if !A("P", C("a"), N("1")).HasNull() {
		t.Error("null expected")
	}
}

func TestAtomEqualAndKey(t *testing.T) {
	a := A("P", C("a"), V("x"))
	b := A("P", C("a"), V("x"))
	c := A("P", C("a"), C("x")) // same names, different kinds
	if !a.Equal(b) {
		t.Error("identical atoms must be Equal")
	}
	if a.Equal(c) {
		t.Error("atoms differing in term kind must not be Equal")
	}
	if a.Key() == c.Key() {
		t.Error("keys must distinguish term kinds")
	}
	if a.Key() != b.Key() {
		t.Error("keys of equal atoms must match")
	}
}

func TestAtomKeyInjectiveOnSeparators(t *testing.T) {
	// "ab","c" vs "a","bc" must not collide.
	a := A("P", C("ab"), C("c"))
	b := A("P", C("a"), C("bc"))
	if a.Key() == b.Key() {
		t.Errorf("key collision: %q", a.Key())
	}
}

func TestAtomVars(t *testing.T) {
	a := A("P", V("x"), C("c"), V("y"), V("x"))
	vars := a.Vars()
	if len(vars) != 2 || vars[0] != V("x") || vars[1] != V("y") {
		t.Errorf("Vars = %v, want [x y]", vars)
	}
}

func TestAtomCloneIndependence(t *testing.T) {
	a := A("P", V("x"))
	b := a.Clone()
	b.Args[0] = C("mutated")
	if a.Args[0] != V("x") {
		t.Error("Clone must not share argument storage")
	}
}

func TestVarsOfAtoms(t *testing.T) {
	atoms := []Atom{
		A("P", V("x"), V("y")),
		A("Q", V("y"), V("z"), C("k")),
	}
	vars := VarsOfAtoms(atoms)
	want := []Term{V("x"), V("y"), V("z")}
	if len(vars) != len(want) {
		t.Fatalf("VarsOfAtoms = %v, want %v", vars, want)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Errorf("VarsOfAtoms[%d] = %v, want %v", i, vars[i], want[i])
		}
	}
}

func TestLiteralString(t *testing.T) {
	l := Neg(A("Unit", V("u")))
	if got, want := l.String(), "not Unit(u)"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	p := Pos(A("Unit", V("u")))
	if got, want := p.String(), "Unit(u)"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestPositions(t *testing.T) {
	a := A("P", V("x"), V("y"))
	ps := PositionsOf(a)
	if len(ps) != 2 || ps[0] != (Position{"P", 0}) || ps[1] != (Position{"P", 1}) {
		t.Errorf("PositionsOf = %v", ps)
	}
	if ps[0].String() != "P[0]" {
		t.Errorf("Position.String = %q", ps[0].String())
	}
	unsorted := []Position{{"Q", 1}, {"P", 1}, {"P", 0}}
	SortPositions(unsorted)
	want := []Position{{"P", 0}, {"P", 1}, {"Q", 1}}
	for i := range want {
		if unsorted[i] != want[i] {
			t.Fatalf("SortPositions = %v, want %v", unsorted, want)
		}
	}
}

func TestAtomsString(t *testing.T) {
	got := AtomsString([]Atom{A("P", V("x")), A("Q", C("a"))})
	if got != "P(x), Q(a)" {
		t.Errorf("AtomsString = %q", got)
	}
}
