package datalog

import (
	"strings"
	"testing"
)

func hospitalProgram() *Program {
	p := NewProgram()
	p.AddTGD(ruleSeven())
	p.AddTGD(ruleEight())
	p.AddEGD(egdSix())
	p.AddNC(NewNC("c5",
		Pos(A("PatientUnit", V("u"), V("d"), V("p"))),
		Neg(A("Unit", V("u")))))
	return p
}

func TestProgramValidate(t *testing.T) {
	if err := hospitalProgram().Validate(); err != nil {
		t.Fatalf("hospital program must validate: %v", err)
	}
	if err := NewProgram().Validate(); err != ErrEmptyProgram {
		t.Errorf("empty program: got %v, want ErrEmptyProgram", err)
	}
}

func TestProgramValidateArityConflict(t *testing.T) {
	p := NewProgram()
	p.AddTGD(NewTGD("a", []Atom{A("H", V("x"))}, []Atom{A("P", V("x"))}))
	p.AddTGD(NewTGD("b", []Atom{A("H", V("x"), V("y"))}, []Atom{A("Q", V("x"), V("y"))}))
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "arity") {
		t.Errorf("arity conflict must be reported, got %v", err)
	}
}

func TestProgramPredicates(t *testing.T) {
	preds := hospitalProgram().Predicates()
	byName := map[string]int{}
	for _, pi := range preds {
		byName[pi.Name] = pi.Arity
	}
	want := map[string]int{
		"PatientUnit":      3,
		"PatientWard":      3,
		"UnitWard":         2,
		"Shifts":           4,
		"WorkingSchedules": 4,
		"Thermometer":      3,
		"Unit":             1,
	}
	for name, ar := range want {
		if byName[name] != ar {
			t.Errorf("predicate %s arity = %d, want %d", name, byName[name], ar)
		}
	}
	// Sorted by name.
	for i := 1; i < len(preds); i++ {
		if preds[i-1].Name >= preds[i].Name {
			t.Errorf("Predicates not sorted: %v before %v", preds[i-1], preds[i])
		}
	}
	if got := (PredicateInfo{Name: "P", Arity: 2}).String(); got != "P/2" {
		t.Errorf("PredicateInfo.String = %q", got)
	}
}

func TestProgramIDBPredicates(t *testing.T) {
	idb := hospitalProgram().IDBPredicates()
	if !idb["PatientUnit"] || !idb["Shifts"] {
		t.Errorf("IDB must contain PatientUnit and Shifts: %v", idb)
	}
	if idb["PatientWard"] || idb["UnitWard"] {
		t.Errorf("EDB-only predicates must not be IDB: %v", idb)
	}
}

func TestProgramTGDsByHeadPred(t *testing.T) {
	p := hospitalProgram()
	p.AddTGD(ruleNine()) // two head atoms: InstitutionUnit, PatientUnit
	byHead := p.TGDsByHeadPred()
	if len(byHead["PatientUnit"]) != 2 {
		t.Errorf("PatientUnit derivable by rules (7) and (9): got %d", len(byHead["PatientUnit"]))
	}
	if len(byHead["InstitutionUnit"]) != 1 {
		t.Errorf("InstitutionUnit derivable by rule (9): got %d", len(byHead["InstitutionUnit"]))
	}
}

func TestProgramCloneIsDeep(t *testing.T) {
	p := hospitalProgram()
	c := p.Clone()
	c.TGDs[0].Head[0].Args[0] = C("mutated")
	c.EGDs[0].Left = V("mutated")
	if p.TGDs[0].Head[0].Args[0] == C("mutated") {
		t.Error("Clone must deep-copy TGD atoms")
	}
	if p.EGDs[0].Left == V("mutated") {
		t.Error("Clone must copy EGDs")
	}
}

func TestProgramString(t *testing.T) {
	s := hospitalProgram().String()
	for _, want := range []string{"PatientUnit", "⊥ <-", "t = t2"} {
		if !strings.Contains(s, want) {
			t.Errorf("program String missing %q:\n%s", want, s)
		}
	}
}
