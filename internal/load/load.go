package load

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/datalog"
	"repro/internal/gen"
	"repro/internal/hospital"
)

// Spec parameterizes one open-loop run against a hospital-context
// endpoint (mdserve directly, or mdrouter in front of several).
type Spec struct {
	// Target addresses the context under test. Target.Client nil uses
	// the gen package's shared pooled transport.
	Target gen.HTTPTarget
	// Rate is the offered arrival rate in ops/sec. This is the open
	// loop: arrivals are scheduled on a fixed grid regardless of how
	// fast responses come back.
	Rate float64
	// Duration is how long arrivals are offered.
	Duration time.Duration
	// Workers bounds concurrency: how many in-flight ops the harness
	// will carry before arrivals queue (queueing time counts toward
	// latency). 0 = 2 * Rate * 50ms, minimum 8.
	Workers int
	// Sessions is the session population ("<SessionPrefix>-<i>"),
	// opened (or reused) before the clock starts. 0 = 8.
	Sessions int
	// SessionPrefix defaults to "lg".
	SessionPrefix string
	// Zipf skews session popularity: 0 = uniform, larger = more skew
	// (weight of the rank-r session ∝ 1/r^Zipf).
	Zipf float64
	// ReadRatio is the fraction of ops that are reads (answers
	// streams); the rest are NDJSON apply batches. Default 0.9.
	ReadRatio float64
	// DeltaAtoms is the number of (Clock, Measurements) fact pairs per
	// write batch. Default 4.
	DeltaAtoms int
	// Patients bounds each session's patient population, so reads can
	// target patients writes have touched. Default 16.
	Patients int
	// SeedBatches pre-populates each session with this many write
	// batches before the clock starts (default 1). Raising it scales
	// the per-read data volume: the built-in hospital example is tiny,
	// so a realistic read weight needs seeded measurements.
	SeedBatches int
	// Mode is the answers mode: "clean" (quality-rewritten, default)
	// or "raw".
	Mode string
	// ReadScope selects the read query: "patient" (default) streams
	// one patient's measurements — a cheap point read — while
	// "relation" streams the session's full Measurements relation, the
	// heavier scan an assessment dashboard would issue.
	ReadScope string
	// Seed makes the op sequence reproducible. 0 = 1.
	Seed int64
}

func (s *Spec) defaults() error {
	if s.Target.BaseURL == "" || s.Target.Context == "" {
		return fmt.Errorf("load: Target.BaseURL and Target.Context are required")
	}
	if s.Rate <= 0 || s.Duration <= 0 {
		return fmt.Errorf("load: Rate and Duration must be positive")
	}
	if s.Workers <= 0 {
		s.Workers = int(2 * s.Rate * 0.05)
		if s.Workers < 8 {
			s.Workers = 8
		}
	}
	if s.Sessions <= 0 {
		s.Sessions = 8
	}
	if s.SessionPrefix == "" {
		s.SessionPrefix = "lg"
	}
	if s.ReadRatio == 0 {
		s.ReadRatio = 0.9
	}
	if s.ReadRatio < 0 || s.ReadRatio > 1 {
		return fmt.Errorf("load: ReadRatio %v outside [0,1]", s.ReadRatio)
	}
	if s.DeltaAtoms <= 0 {
		s.DeltaAtoms = 4
	}
	if s.Patients <= 0 {
		s.Patients = 16
	}
	if s.SeedBatches <= 0 {
		s.SeedBatches = 1
	}
	if s.Mode == "" {
		s.Mode = "clean"
	}
	switch s.ReadScope {
	case "":
		s.ReadScope = "patient"
	case "patient", "relation":
	default:
		return fmt.Errorf("load: ReadScope %q (want patient or relation)", s.ReadScope)
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return nil
}

// op is one scheduled arrival.
type op struct {
	due     time.Time
	read    bool
	session string
	patient string
	seq     int // distinguishes write timestamps
}

// workerStats are worker-local so the hot path never contends.
type workerStats struct {
	read, write Histogram
	readErrs    int64
	writeErrs   int64
	lastErr     error
}

// Result is what one Run measured.
type Result struct {
	Offered   int64 // arrivals scheduled
	Dropped   int64 // arrivals shed because the queue was full (overload)
	Completed int64
	ReadErrs  int64
	WriteErrs int64
	Elapsed   time.Duration
	Read      Histogram
	Write     Histogram
	// LastErr samples one failure for diagnostics (errors are expected
	// under deliberate overload; the counts are the signal).
	LastErr error
}

// zipfCDF precomputes the session-pick distribution: weight of rank r
// (0-based) is 1/(r+1)^theta, normalized into a CDF for binary search.
// theta=0 degenerates to uniform.
func zipfCDF(n int, theta float64) []float64 {
	cdf := make([]float64, n)
	total := 0.0
	for r := 0; r < n; r++ {
		total += 1 / math.Pow(float64(r+1), theta)
		cdf[r] = total
	}
	for r := range cdf {
		cdf[r] /= total
	}
	return cdf
}

func pickCDF(cdf []float64, u float64) int {
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// writeBatch builds op o's delta: DeltaAtoms (Clock, Measurements)
// pairs at distinct synthetic timestamps within the hospital's day
// vocabulary, targeting the op's patient.
func writeBatch(spec *Spec, o op) []datalog.Atom {
	atoms := make([]datalog.Atom, 0, 2*spec.DeltaAtoms)
	for k := 0; k < spec.DeltaAtoms; k++ {
		di := (o.seq + k) % len(hospital.Days)
		if di < 0 {
			di += len(hospital.Days) // seed batches use negative seqs
		}
		day := hospital.Days[di]
		tm := fmt.Sprintf("%s-%s-q%d.%d", day, o.patient, o.seq, k)
		val := fmt.Sprintf("%.1f", 36.0+float64((o.seq+k)%40)/10)
		atoms = append(atoms,
			datalog.A("Clock", datalog.C(tm), datalog.C(day)),
			datalog.A("Measurements", datalog.C(tm), datalog.C(o.patient), datalog.C(val)),
		)
	}
	return atoms
}

// Run executes the spec: opens the session population, then offers
// Rate ops/sec for Duration, measuring each op from its scheduled
// arrival. Session and patient choice, read/write mix and delta
// contents are a pure function of Seed.
func Run(ctx context.Context, spec Spec) (*Result, error) {
	if err := spec.defaults(); err != nil {
		return nil, err
	}
	sessions := make([]string, spec.Sessions)
	for i := range sessions {
		sessions[i] = fmt.Sprintf("%s-%d", spec.SessionPrefix, i)
		if _, err := spec.Target.OpenSessionWithID(ctx, sessions[i]); err != nil {
			return nil, fmt.Errorf("load: open session %s: %w", sessions[i], err)
		}
		// Seed batches so reads have data from the first arrival.
		for b := 0; b < spec.SeedBatches; b++ {
			seed := op{session: sessions[i], patient: fmt.Sprintf("p%d", b%spec.Patients), seq: -1 - i - b*spec.Sessions}
			if err := spec.Target.ApplyBatch(ctx, sessions[i], writeBatch(&spec, seed)); err != nil {
				return nil, fmt.Errorf("load: seed session %s: %w", sessions[i], err)
			}
		}
	}

	// The arrival queue absorbs bursts; when the server falls behind by
	// more than the buffer, further arrivals are shed and counted —
	// sustained drops mean the offered rate exceeds capacity.
	queueCap := int(spec.Rate) // one second of backlog
	if queueCap < 1024 {
		queueCap = 1024
	}
	ops := make(chan op, queueCap)

	stats := make([]*workerStats, spec.Workers)
	var wg sync.WaitGroup
	for w := 0; w < spec.Workers; w++ {
		st := &workerStats{}
		stats[w] = st
		wg.Add(1)
		go func() {
			defer wg.Done()
			for o := range ops {
				if o.read {
					q := fmt.Sprintf("m(t, v) <- Measurements(t, %q, v).", o.patient)
					if spec.ReadScope == "relation" {
						q = "m(t, p, v) <- Measurements(t, p, v)."
					}
					_, err := spec.Target.Answers(ctx, o.session, q, spec.Mode)
					st.read.Observe(time.Since(o.due))
					if err != nil {
						st.readErrs++
						st.lastErr = err
					}
				} else {
					err := spec.Target.ApplyBatch(ctx, o.session, writeBatch(&spec, o))
					st.write.Observe(time.Since(o.due))
					if err != nil {
						st.writeErrs++
						st.lastErr = err
					}
				}
			}
		}()
	}

	res := &Result{}
	rng := rand.New(rand.NewSource(spec.Seed))
	cdf := zipfCDF(spec.Sessions, spec.Zipf)
	interval := time.Duration(float64(time.Second) / spec.Rate)
	start := time.Now()
	end := start.Add(spec.Duration)
scheduling:
	for i := 0; ; i++ {
		due := start.Add(time.Duration(i) * interval)
		if !due.Before(end) {
			break
		}
		if d := time.Until(due); d > 0 {
			select {
			case <-ctx.Done():
				break scheduling
			case <-time.After(d):
			}
		} else if ctx.Err() != nil {
			break
		}
		o := op{
			due:     due,
			read:    rng.Float64() < spec.ReadRatio,
			session: sessions[pickCDF(cdf, rng.Float64())],
			seq:     i,
		}
		o.patient = fmt.Sprintf("p%d", rng.Intn(spec.Patients))
		res.Offered++
		select {
		case ops <- o:
		default:
			res.Dropped++
		}
	}
	close(ops)
	wg.Wait()
	res.Elapsed = time.Since(start)

	for _, st := range stats {
		res.Read.Merge(&st.read)
		res.Write.Merge(&st.write)
		res.ReadErrs += st.readErrs
		res.WriteErrs += st.writeErrs
		if st.lastErr != nil {
			res.LastErr = st.lastErr
		}
	}
	res.Completed = res.Read.Count() + res.Write.Count()
	return res, nil
}
