// Package load is the open-loop workload harness behind cmd/mdload: it
// offers requests to an mdserve (or mdrouter) endpoint at a fixed
// arrival rate — the rate does NOT slow down when the server does,
// unlike a closed loop whose in-flight cap hides overload — and
// measures every operation's latency from its scheduled arrival time,
// so queueing delay under saturation is counted instead of silently
// omitted (the "coordinated omission" artifact of naive closed-loop
// harnesses).
package load

import (
	"fmt"
	"math/bits"
	"time"
)

// Histogram is an HDR-style log-linear latency histogram over
// nanosecond values: exact below 64ns, then 32 sub-buckets per power
// of two, bounding relative error by 1/32 (~3%) at ~1900 buckets for
// the full int64 range. Recording is a single increment — cheap enough
// for the per-op hot path — and histograms merge exactly, so each
// worker keeps its own and the run merges them at the end.
type Histogram struct {
	counts [numBuckets]int64
	count  int64
	sum    int64
	max    int64
	min    int64
}

const (
	subBits    = 5
	subBuckets = 1 << subBits // 32 per octave
	linearMax  = 1 << (subBits + 1)
	numBuckets = linearMax + (63-subBits)*subBuckets
)

// bucketIndex maps a non-negative value to its bucket: identity below
// linearMax, log-linear above.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < linearMax {
		return int(u)
	}
	exp := bits.Len64(u) - 1 // >= subBits+1
	sub := (u >> (uint(exp) - subBits)) & (subBuckets - 1)
	return linearMax + (exp-subBits-1)*subBuckets + int(sub)
}

// bucketMid returns a representative (midpoint) value for a bucket.
func bucketMid(i int) int64 {
	if i < linearMax {
		return int64(i)
	}
	oct := (i - linearMax) / subBuckets
	sub := (i - linearMax) % subBuckets
	exp := uint(oct + subBits + 1)
	low := (uint64(subBuckets) + uint64(sub)) << (exp - subBits)
	return int64(low + 1<<(exp-subBits-1))
}

// Observe records one latency. Negative values clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	if h.count == 1 || v < h.min {
		h.min = v
	}
}

// Merge adds other's observations into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.count == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the exact mean (the sum is tracked outside the
// buckets).
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Max and Min are exact.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }
func (h *Histogram) Min() time.Duration { return time.Duration(h.min) }

// Quantile returns the value at quantile p in [0,1], within the
// bucket resolution (~3% relative error). The exact min and max are
// substituted at the extremes so p=0 and p=1 are artifact-free.
func (h *Histogram) Quantile(p float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		return h.Min()
	}
	if p >= 1 {
		return h.Max()
	}
	rank := int64(p * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			mid := bucketMid(i)
			if mid > h.max {
				return time.Duration(h.max) // last occupied bucket can overshoot the true max
			}
			return time.Duration(mid)
		}
	}
	return h.Max()
}

// Summary condenses a histogram for the machine-readable report.
// Microseconds: latencies here run from tens of µs (raw reads, direct)
// to tens of ms (saturated applies), so µs keeps every regime readable
// without floats losing precision.
type Summary struct {
	Count  int64   `json:"count"`
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P90Us  float64 `json:"p90_us"`
	P99Us  float64 `json:"p99_us"`
	P999Us float64 `json:"p999_us"`
	MaxUs  float64 `json:"max_us"`
}

// Summarize builds the report form.
func (h *Histogram) Summarize() Summary {
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	return Summary{
		Count:  h.count,
		MeanUs: us(h.Mean()),
		P50Us:  us(h.Quantile(0.50)),
		P90Us:  us(h.Quantile(0.90)),
		P99Us:  us(h.Quantile(0.99)),
		P999Us: us(h.Quantile(0.999)),
		MaxUs:  us(h.Max()),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d p50=%.0fµs p90=%.0fµs p99=%.0fµs max=%.0fµs",
		s.Count, s.P50Us, s.P90Us, s.P99Us, s.MaxUs)
}
