package load

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

// Report is the machine-readable record of one run, the unit of a
// LOAD_<n>.json file. Latencies are Summary quantiles in µs; the spec
// echo makes a report self-describing (a number without its offered
// rate and mix is noise).
type Report struct {
	Name string `json:"name"`

	// Spec echo.
	TargetURL   string  `json:"target_url"`
	Context     string  `json:"context"`
	RateOps     float64 `json:"rate_ops_per_sec"`
	DurationSec float64 `json:"duration_sec"`
	Workers     int     `json:"workers"`
	Sessions    int     `json:"sessions"`
	Zipf        float64 `json:"zipf"`
	ReadRatio   float64 `json:"read_ratio"`
	DeltaAtoms  int     `json:"delta_atoms"`
	SeedBatches int     `json:"seed_batches"`
	Mode        string  `json:"mode"`
	ReadScope   string  `json:"read_scope"`

	// Outcome.
	Offered     int64   `json:"offered"`
	Dropped     int64   `json:"dropped"`
	Completed   int64   `json:"completed"`
	ReadErrs    int64   `json:"read_errors"`
	WriteErrs   int64   `json:"write_errors"`
	AchievedOps float64 `json:"achieved_ops_per_sec"`

	Read  Summary `json:"read"`
	Write Summary `json:"write"`
}

// NewReport condenses a Result under its spec.
func NewReport(name string, spec Spec, res *Result) Report {
	elapsed := res.Elapsed.Seconds()
	achieved := 0.0
	if elapsed > 0 {
		achieved = float64(res.Completed) / elapsed
	}
	return Report{
		Name:        name,
		TargetURL:   spec.Target.BaseURL,
		Context:     spec.Target.Context,
		RateOps:     spec.Rate,
		DurationSec: spec.Duration.Seconds(),
		Workers:     spec.Workers,
		Sessions:    spec.Sessions,
		Zipf:        spec.Zipf,
		ReadRatio:   spec.ReadRatio,
		DeltaAtoms:  spec.DeltaAtoms,
		SeedBatches: spec.SeedBatches,
		Mode:        spec.Mode,
		ReadScope:   spec.ReadScope,
		Offered:     res.Offered,
		Dropped:     res.Dropped,
		Completed:   res.Completed,
		ReadErrs:    res.ReadErrs,
		WriteErrs:   res.WriteErrs,
		AchievedOps: achieved,
		Read:        res.Read.Summarize(),
		Write:       res.Write.Summarize(),
	}
}

// ErrorRate is the fraction of completed ops that failed.
func (r Report) ErrorRate() float64 {
	if r.Completed == 0 {
		return 0
	}
	return float64(r.ReadErrs+r.WriteErrs) / float64(r.Completed)
}

// loadDoc is the LOAD_<n>.json shape: the runs plus the recording
// machine, mirroring BENCH_<n>.json's "_hardware" annotation so load
// numbers are never compared across machine shapes by accident.
type loadDoc struct {
	Hardware bench.Hardware `json:"_hardware"`
	Runs     []Report       `json:"runs"`
}

// WriteLoadJSON writes the reports to path annotated with the
// recording machine.
func WriteLoadJSON(path string, runs []Report) error {
	data, err := json.MarshalIndent(loadDoc{Hardware: bench.CurrentHardware(), Runs: runs}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadLoadJSON reads a LOAD_<n>.json file back.
func ReadLoadJSON(path string) ([]Report, *bench.Hardware, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var doc loadDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc.Runs, &doc.Hardware, nil
}

// FormatReport renders a human-readable block for terminal output.
func FormatReport(r Report) string {
	line := func(kind string, s Summary, errs int64) string {
		if s.Count == 0 {
			return fmt.Sprintf("  %-6s (none)\n", kind)
		}
		return fmt.Sprintf("  %-6s n=%-8d p50=%-9s p90=%-9s p99=%-9s max=%-9s errs=%d\n",
			kind, s.Count,
			time.Duration(s.P50Us*1e3).Round(time.Microsecond),
			time.Duration(s.P90Us*1e3).Round(time.Microsecond),
			time.Duration(s.P99Us*1e3).Round(time.Microsecond),
			time.Duration(s.MaxUs*1e3).Round(time.Microsecond),
			errs)
	}
	out := fmt.Sprintf("%s: offered %.0f ops/s for %.1fs -> achieved %.1f ops/s (%d completed, %d dropped)\n",
		r.Name, r.RateOps, r.DurationSec, r.AchievedOps, r.Completed, r.Dropped)
	out += line("reads", r.Read, r.ReadErrs)
	out += line("writes", r.Write, r.WriteErrs)
	return out
}
