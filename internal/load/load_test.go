package load

import (
	"context"
	"math"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/server"
	"repro/mdqa"
)

func TestHistogramQuantilesWithinResolution(t *testing.T) {
	// Uniform 1ms..100ms: quantiles must land within the ~3% bucket
	// resolution (plus sampling noise) of the exact values.
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	var exact []time.Duration
	for i := 0; i < 50000; i++ {
		d := time.Duration(1e6 + rng.Int63n(99e6))
		h.Observe(d)
		exact = append(exact, d)
	}
	for _, p := range []float64{0.5, 0.9, 0.99, 0.999} {
		got := h.Quantile(p).Seconds()
		want := (1e-3 + p*99e-3) // uniform quantile
		if math.Abs(got-want)/want > 0.06 {
			t.Fatalf("q%.3f = %.4fs, want ~%.4fs (>6%% off)", p, got, want)
		}
	}
	if h.Count() != 50000 {
		t.Fatalf("count %d", h.Count())
	}
	// Max/min are exact.
	var wantMax, wantMin time.Duration = 0, time.Hour
	for _, d := range exact {
		if d > wantMax {
			wantMax = d
		}
		if d < wantMin {
			wantMin = d
		}
	}
	if h.Max() != wantMax || h.Min() != wantMin {
		t.Fatalf("max/min %v/%v, want %v/%v", h.Max(), h.Min(), wantMax, wantMin)
	}
}

func TestHistogramMergeEqualsCombined(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var a, b, all Histogram
	for i := 0; i < 10000; i++ {
		d := time.Duration(rng.Int63n(1e9))
		all.Observe(d)
		if i%2 == 0 {
			a.Observe(d)
		} else {
			b.Observe(d)
		}
	}
	a.Merge(&b)
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if a.Quantile(p) != all.Quantile(p) {
			t.Fatalf("q%v: merged %v != combined %v", p, a.Quantile(p), all.Quantile(p))
		}
	}
	if a.Count() != all.Count() || a.Mean() != all.Mean() {
		t.Fatalf("merged count/mean diverge")
	}
}

func TestBucketIndexMonotoneAndBounded(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 63, 64, 65, 127, 128, 1000, 1e6, 1e9, 1e12, math.MaxInt64} {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex(%d) = %d < previous %d: not monotone", v, i, prev)
		}
		if i < 0 || i >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		// The bucket's representative value stays within 3.2% of v.
		if v >= linearMax {
			mid := bucketMid(i)
			if rel := math.Abs(float64(mid-v)) / float64(v); rel > 0.032 {
				t.Fatalf("bucketMid(%d)=%d for v=%d: relative error %.3f", i, mid, v, rel)
			}
		}
		prev = i
	}
}

func TestZipfCDFShapes(t *testing.T) {
	uniform := zipfCDF(4, 0)
	for r, want := range []float64{0.25, 0.5, 0.75, 1} {
		if math.Abs(uniform[r]-want) > 1e-9 {
			t.Fatalf("theta=0 cdf[%d] = %v, want %v", r, uniform[r], want)
		}
	}
	skewed := zipfCDF(100, 1.1)
	if skewed[0] < 0.15 {
		t.Fatalf("theta=1.1 head mass %v, want skew toward rank 0", skewed[0])
	}
	// pickCDF inverts the CDF.
	if pickCDF(uniform, 0.1) != 0 || pickCDF(uniform, 0.6) != 2 || pickCDF(uniform, 1.0) != 3 {
		t.Fatalf("pickCDF misroutes: %d %d %d",
			pickCDF(uniform, 0.1), pickCDF(uniform, 0.6), pickCDF(uniform, 1.0))
	}
}

// TestOpenLoopRunAgainstServer drives a short real run against an
// in-process mdserve: everything offered completes, reads and writes
// both happen, latencies are recorded, and the report round-trips
// through LOAD json.
func TestOpenLoopRunAgainstServer(t *testing.T) {
	srv, err := server.New(context.Background(), server.Config{Parallelism: 1}, []server.ContextSource{{
		Name:   "hospital",
		Source: mdqa.HospitalQualityExampleSource(),
	}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	spec := Spec{
		Target:   gen.HTTPTarget{BaseURL: ts.URL, Context: "hospital"},
		Rate:     200,
		Duration: 1500 * time.Millisecond,
		Workers:  16,
		Sessions: 4,
		Zipf:     1.0,
		Seed:     3,
	}
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered < 250 {
		t.Fatalf("offered only %d arrivals at 200/s over 1.5s", res.Offered)
	}
	if res.Completed != res.Offered-res.Dropped {
		t.Fatalf("completed %d != offered %d - dropped %d", res.Completed, res.Offered, res.Dropped)
	}
	if res.ReadErrs+res.WriteErrs > 0 {
		t.Fatalf("unloaded run had %d/%d errors (last: %v)", res.ReadErrs, res.WriteErrs, res.LastErr)
	}
	if res.Read.Count() == 0 || res.Write.Count() == 0 {
		t.Fatalf("mix broken: %d reads, %d writes", res.Read.Count(), res.Write.Count())
	}
	if res.Read.Quantile(0.5) <= 0 {
		t.Fatal("read p50 is zero — latencies not recorded")
	}

	rep := NewReport("smoke", spec, res)
	if rep.ErrorRate() != 0 || rep.AchievedOps <= 0 {
		t.Fatalf("report: %+v", rep)
	}
	path := filepath.Join(t.TempDir(), "LOAD_test.json")
	if err := WriteLoadJSON(path, []Report{rep}); err != nil {
		t.Fatal(err)
	}
	runs, hw, err := ReadLoadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].Name != "smoke" || hw == nil || hw.NumCPU == 0 {
		t.Fatalf("round trip: %d runs, hw %+v", len(runs), hw)
	}
	if runs[0].Read.P50Us != rep.Read.P50Us {
		t.Fatalf("p50 did not round-trip: %v vs %v", runs[0].Read.P50Us, rep.Read.P50Us)
	}
}

// TestRunIsDeterministicInShape pins the seeded op sequence: two specs
// with the same seed offer the same read/write split.
func TestRunSeedControlsMix(t *testing.T) {
	// Pure-function check on the op decision stream (no server): the
	// rng consumption order in Run is (read?, session, patient) per op.
	mix := func(seed int64) (reads int) {
		rng := rand.New(rand.NewSource(seed))
		cdf := zipfCDF(8, 0.9)
		for i := 0; i < 1000; i++ {
			if rng.Float64() < 0.9 {
				reads++
			}
			pickCDF(cdf, rng.Float64())
			rng.Intn(16)
		}
		return reads
	}
	if mix(5) != mix(5) {
		t.Fatal("same seed, different mix")
	}
	got := mix(5)
	if got < 850 || got > 950 {
		t.Fatalf("0.9 read ratio produced %d/1000 reads", got)
	}
}
