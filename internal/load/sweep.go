package load

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/bench"
	"repro/internal/router"
	"repro/internal/server"
	"repro/mdqa"
)

// SweepSpec parameterizes RunShardSweep: the same open-loop workload
// offered to one direct backend and to mdrouter in front of 1..N
// in-process shards, all on loopback listeners. The direct-vs-router
// shards=1 pair isolates the router's added latency; the shard sweep
// shows how capacity scales when sessions spread across backends.
type SweepSpec struct {
	// Shards are the router fleet sizes to sweep, e.g. [1, 2, 4].
	Shards []int
	// Load is the per-run workload. Target is overwritten per run;
	// Sessions should be >= the largest shard count to give the ring
	// something to spread.
	Load Spec
	// Parallelism is each backend's engine pool (0 = server default).
	Parallelism int
}

// shard is one in-process mdserve.
type shard struct {
	srv  *server.Server
	hs   *http.Server
	url  string
	done chan error
}

func startShard(ctx context.Context, parallelism int) (*shard, error) {
	srv, err := server.New(ctx, server.Config{Parallelism: parallelism}, []server.ContextSource{{
		Name:   "hospital",
		Source: mdqa.HospitalQualityExampleSource(),
	}})
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	sh := &shard{
		srv:  srv,
		hs:   &http.Server{Handler: srv},
		url:  "http://" + l.Addr().String(),
		done: make(chan error, 1),
	}
	go func() { sh.done <- sh.hs.Serve(l) }()
	return sh, nil
}

func (sh *shard) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = sh.hs.Shutdown(ctx)
	<-sh.done
}

// runOne boots the topology, runs the load, tears down, and returns
// the report.
func runOne(ctx context.Context, spec SweepSpec, name string, shards int, viaRouter bool) (Report, error) {
	var backends []*shard
	defer func() {
		for _, sh := range backends {
			sh.stop()
		}
	}()
	for i := 0; i < shards; i++ {
		sh, err := startShard(ctx, spec.Parallelism)
		if err != nil {
			return Report{}, err
		}
		backends = append(backends, sh)
	}
	ls := spec.Load
	ls.Target.Context = "hospital"
	if viaRouter {
		var urls []string
		for _, sh := range backends {
			urls = append(urls, sh.url)
		}
		rt, err := router.New(router.Config{Backends: urls})
		if err != nil {
			return Report{}, err
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return Report{}, err
		}
		fhs := &http.Server{Handler: rt}
		done := make(chan error, 1)
		go func() { done <- fhs.Serve(l) }()
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = fhs.Shutdown(sctx)
			<-done
		}()
		ls.Target.BaseURL = "http://" + l.Addr().String()
	} else {
		ls.Target.BaseURL = backends[0].url
	}
	res, err := Run(ctx, ls)
	if err != nil {
		return Report{}, err
	}
	if res.Completed == 0 {
		return Report{}, fmt.Errorf("load: run %s completed nothing (last error: %v)", name, res.LastErr)
	}
	return NewReport(name, ls, res), nil
}

// RunShardSweep runs direct (no router, 1 backend) plus router runs at
// each shard count, and returns both the reports and the
// BENCH-trajectory view: BenchmarkLoad{Read,Write}{P50,P99} keys whose
// NsPerOp is the measured latency quantile, named so ComparePerf can
// gate "BenchmarkLoad" as a family.
func RunShardSweep(ctx context.Context, spec SweepSpec) ([]Report, map[string]bench.PerfResult, error) {
	if len(spec.Shards) == 0 {
		spec.Shards = []int{1, 2, 4}
	}
	var reports []Report
	perf := map[string]bench.PerfResult{}
	record := func(r Report, mode string, shards int) {
		reports = append(reports, r)
		us := func(v float64) int64 { return int64(v * 1e3) }
		tag := fmt.Sprintf("mode=%s/shards=%d", mode, shards)
		perf["BenchmarkLoadReadP50/"+tag] = bench.PerfResult{NsPerOp: us(r.Read.P50Us)}
		perf["BenchmarkLoadReadP99/"+tag] = bench.PerfResult{NsPerOp: us(r.Read.P99Us)}
		perf["BenchmarkLoadWriteP50/"+tag] = bench.PerfResult{NsPerOp: us(r.Write.P50Us)}
		perf["BenchmarkLoadWriteP99/"+tag] = bench.PerfResult{NsPerOp: us(r.Write.P99Us)}
	}

	direct, err := runOne(ctx, spec, "direct/shards=1", 1, false)
	if err != nil {
		return nil, nil, err
	}
	record(direct, "direct", 1)

	for _, n := range spec.Shards {
		r, err := runOne(ctx, spec, fmt.Sprintf("router/shards=%d", n), n, true)
		if err != nil {
			return nil, nil, err
		}
		record(r, "router", n)
	}
	return reports, perf, nil
}

// RouterOverheadP50 extracts the acceptance number: the relative p50
// read-latency overhead of router/shards=1 over direct (0.07 = +7%).
func RouterOverheadP50(reports []Report) (float64, error) {
	var direct, routed *Report
	for i := range reports {
		switch reports[i].Name {
		case "direct/shards=1":
			direct = &reports[i]
		case "router/shards=1":
			routed = &reports[i]
		}
	}
	if direct == nil || routed == nil || direct.Read.P50Us == 0 {
		return 0, fmt.Errorf("load: sweep lacks the direct/router shards=1 pair")
	}
	return routed.Read.P50Us/direct.Read.P50Us - 1, nil
}
