package source

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/qerr"
	"repro/internal/storage"
)

// Binding attaches one Source to a quality context under a name, with
// the caching policy the context's sessions share.
type Binding struct {
	// Name identifies the binding in metrics and errors; unique per
	// context.
	Name string
	Src  Source
	// TTL is how long a fetched snapshot stays fresh: within the TTL,
	// Get serves the cache without consulting the source at all. 0
	// revalidates on every Get (connectors still short-circuit via
	// version tokens, so revalidation is cheap).
	TTL time.Duration
	// AllowStale serves the last good snapshot when a fetch fails,
	// instead of failing with qerr.ErrSourceUnavailable — the opt-in
	// degradation mode for sources that flap.
	AllowStale bool
}

// Snapshot is one materialized fetch: a frozen-by-convention instance
// (never mutated after construction — sessions diff and merge it, both
// read-only) plus the version it corresponds to.
type Snapshot struct {
	Inst    *storage.Instance
	Version string
	Fetched time.Time
}

// Stats counts one binding's resolver activity since construction.
type Stats struct {
	Fetches     int64 // connector Fetch calls, including revalidations
	Errors      int64 // failed Fetch calls
	CacheHits   int64 // Gets served inside the TTL without fetching
	StaleServed int64 // failed fetches degraded to the cached snapshot
}

// Resolver is the per-context source cache: one entry per binding,
// TTL-based freshness, and blocking singleflight — concurrent sessions
// resolving the same binding share one in-flight fetch instead of
// stampeding the upstream.
type Resolver struct {
	bindings []Binding
	entries  map[string]*entry
	now      func() time.Time // injected by TTL tests

	mu        sync.Mutex
	stats     map[string]*Stats
	latencies []time.Duration // fetch-latency ring
	latNext   int
	latFull   bool
}

// latencyRingSize bounds the fetch-latency samples kept for the
// /metrics percentiles.
const latencyRingSize = 256

type entry struct {
	mu   sync.Mutex // blocking singleflight: one fetch per binding at a time
	snap *Snapshot
}

// NewResolver builds a resolver over the bindings. Binding validation
// (unique names, unique relations) is the caller's job — the quality
// layer rejects bad configs before a resolver exists.
func NewResolver(bindings []Binding) *Resolver {
	r := &Resolver{
		bindings: append([]Binding(nil), bindings...),
		entries:  make(map[string]*entry, len(bindings)),
		stats:    make(map[string]*Stats, len(bindings)),
		now:      time.Now,
	}
	for _, b := range r.bindings {
		r.entries[b.Name] = &entry{}
		r.stats[b.Name] = &Stats{}
	}
	return r
}

// Bindings returns the bindings in declaration order.
func (r *Resolver) Bindings() []Binding { return append([]Binding(nil), r.bindings...) }

// Get resolves one binding, serving the cached snapshot when it is
// inside its TTL and fetching (with version revalidation) otherwise.
// Concurrent Gets of one binding serialize on the entry lock, so a
// burst of cold sessions triggers exactly one upstream fetch.
func (r *Resolver) Get(ctx context.Context, name string) (*Snapshot, error) {
	return r.resolve(ctx, name, false)
}

// Refresh revalidates one binding regardless of TTL — the
// Session.Refresh path, which wants "is there anything new right now".
func (r *Resolver) Refresh(ctx context.Context, name string) (*Snapshot, error) {
	return r.resolve(ctx, name, true)
}

func (r *Resolver) resolve(ctx context.Context, name string, force bool) (*Snapshot, error) {
	b, e := r.binding(name)
	if e == nil {
		return nil, &qerr.SourceUnavailableError{Source: name, Err: errors.New("no such source binding")}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if !force && e.snap != nil && b.TTL > 0 && r.now().Sub(e.snap.Fetched) < b.TTL {
		r.count(name, func(s *Stats) { s.CacheHits++ })
		return e.snap, nil
	}
	prev := ""
	if e.snap != nil {
		prev = e.snap.Version
	}
	start := r.now()
	res, err := b.Src.Fetch(ctx, prev)
	r.observe(name, r.now().Sub(start), err == nil)
	if err != nil {
		if b.AllowStale && e.snap != nil {
			r.count(name, func(s *Stats) { s.StaleServed++ })
			return e.snap, nil
		}
		return nil, &qerr.SourceUnavailableError{Source: name, Err: err}
	}
	if res.Unchanged && e.snap != nil {
		e.snap = &Snapshot{Inst: e.snap.Inst, Version: e.snap.Version, Fetched: r.now()}
		return e.snap, nil
	}
	inst, err := res.Instance(b.Src.Schema())
	if err != nil {
		return nil, &qerr.SourceUnavailableError{Source: name, Err: err}
	}
	e.snap = &Snapshot{Inst: inst, Version: res.Version, Fetched: r.now()}
	return e.snap, nil
}

func (r *Resolver) binding(name string) (Binding, *entry) {
	for _, b := range r.bindings {
		if b.Name == name {
			return b, r.entries[name]
		}
	}
	return Binding{}, nil
}

func (r *Resolver) count(name string, f func(*Stats)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s := r.stats[name]; s != nil {
		f(s)
	}
}

func (r *Resolver) observe(name string, d time.Duration, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s := r.stats[name]; s != nil {
		s.Fetches++
		if !ok {
			s.Errors++
		}
	}
	if len(r.latencies) < latencyRingSize {
		r.latencies = append(r.latencies, d)
		return
	}
	r.latencies[r.latNext] = d
	r.latNext = (r.latNext + 1) % latencyRingSize
	r.latFull = true
}

// Stats returns a copy of every binding's counters, keyed by binding
// name. Serving layers pull it at metrics-scrape time.
func (r *Resolver) Stats() map[string]Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]Stats, len(r.stats))
	for name, s := range r.stats {
		out[name] = *s
	}
	return out
}

// FetchLatencies returns the retained fetch-duration samples (newest
// ring contents, unordered).
func (r *Resolver) FetchLatencies() []time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]time.Duration(nil), r.latencies...)
}
