// Package source implements pluggable external-source connectors for
// quality contexts: the paper's external sources E_i, which PR 1–7
// only supported as pre-materialized in-memory instances, become live
// endpoints fetched at prepare/assess time and re-polled on demand.
//
// A Source declares the relation it feeds (Schema) and knows how to
// Fetch its current tuples together with an opaque version token.
// Versions make revalidation cheap: a connector that can prove the
// upstream is unchanged since the previous version (file mtime, HTTP
// ETag, row hash) returns Unchanged without re-parsing the payload.
//
// Three concrete connectors ship with the package — File (CSV/NDJSON,
// mtime change detection), HTTP (JSON/NDJSON bodies, ETag
// revalidation, retry with backoff) and SQL (parameterized query over
// database/sql) — plus Mem, a settable in-memory source for tests and
// benchmarks. Resolver adds the per-source TTL cache and singleflight
// dedup that sessions share.
package source

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"

	"repro/internal/datalog"
	"repro/internal/storage"
)

// Schema declares the contextual relation a source feeds. Attrs is
// optional: when empty, attribute names come from the payload (CSV
// header, SQL column names) or are synthesized a0..aN. NDJSON object
// rows require Attrs (or payload-derived attrs) to order their fields.
type Schema struct {
	Relation string
	Attrs    []string
}

// Result is one fetch outcome. When Unchanged is true the upstream
// proved it still matches the prev version passed to Fetch and Tuples
// is nil; otherwise Tuples is the complete current extension of the
// relation (sources deliver full snapshots — diffing against the
// previous snapshot is the resolver's and session's job).
type Result struct {
	Tuples    [][]string
	Attrs     []string // payload-derived attribute names, when any
	Version   string   // opaque revalidation token, never ""
	Unchanged bool
}

// Source is a pluggable external data source. Fetch returns the
// current tuples and version; prev is the version token from the
// previous successful fetch ("" on the first), enabling conditional
// requests (If-None-Match, mtime short-circuit). Implementations must
// be safe for concurrent Fetch calls.
type Source interface {
	Schema() Schema
	Fetch(ctx context.Context, prev string) (*Result, error)
}

// Instance materializes a fetch result as a one-relation storage
// instance. Attribute names are taken from the declared schema when
// present, else from the payload; a tuple whose arity disagrees with
// the first one (a torn payload) is an error, never a silent truncation.
func (r *Result) Instance(s Schema) (*storage.Instance, error) {
	attrs := s.Attrs
	if len(attrs) == 0 {
		attrs = r.Attrs
	}
	inst := storage.NewInstance()
	arity := len(attrs)
	if arity == 0 && len(r.Tuples) > 0 {
		arity = len(r.Tuples[0])
		attrs = make([]string, arity)
		for i := range attrs {
			attrs[i] = fmt.Sprintf("a%d", i)
		}
	}
	if arity == 0 {
		// Empty payload with no declared attrs: there is nothing to
		// infer an arity from, and creating the relation at arity 0
		// would collide with the contextual declaration on merge. An
		// empty snapshot contributes no relation at all.
		return inst, nil
	}
	if _, err := inst.CreateRelation(s.Relation, attrs...); err != nil {
		return nil, err
	}
	terms := make([]datalog.Term, arity)
	for i, tup := range r.Tuples {
		if len(tup) != arity {
			return nil, fmt.Errorf("source %s: row %d has %d values, want %d",
				s.Relation, i, len(tup), arity)
		}
		for j, v := range tup {
			terms[j] = datalog.C(v)
		}
		if _, err := inst.Insert(s.Relation, terms...); err != nil {
			return nil, err
		}
	}
	return inst, nil
}

// Mem is an in-memory source whose tuples are set programmatically;
// every Set/Add bumps the version. Tests and benchmarks use it to
// drive Session.Refresh without touching the filesystem or network.
type Mem struct {
	mu      sync.Mutex
	schema  Schema
	tuples  [][]string
	version int
	err     error
	fetches int
}

// NewMem builds an in-memory source over the given schema and initial
// tuples.
func NewMem(schema Schema, tuples ...[]string) *Mem {
	m := &Mem{schema: schema, version: 1}
	m.tuples = cloneTuples(tuples)
	return m
}

// Schema returns the declared schema.
func (m *Mem) Schema() Schema { return m.schema }

// Set replaces the source's tuples and bumps the version.
func (m *Mem) Set(tuples ...[]string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tuples = cloneTuples(tuples)
	m.version++
}

// Add appends one tuple and bumps the version.
func (m *Mem) Add(tuple ...string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tuples = append(m.tuples, append([]string(nil), tuple...))
	m.version++
}

// SetError makes every subsequent Fetch fail with err (nil restores
// normal operation) — the hook behind unavailability and stale-serving
// tests.
func (m *Mem) SetError(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.err = err
}

// Fetches returns how many Fetch calls the source has served,
// including Unchanged revalidations — the observable the singleflight
// and TTL tests pin.
func (m *Mem) Fetches() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fetches
}

// Fetch returns the current tuples, or Unchanged when prev matches the
// current version.
func (m *Mem) Fetch(ctx context.Context, prev string) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fetches++
	if m.err != nil {
		return nil, m.err
	}
	version := fmt.Sprintf("mem:%d", m.version)
	if prev != "" && prev == version {
		return &Result{Version: version, Unchanged: true}, nil
	}
	return &Result{Tuples: cloneTuples(m.tuples), Version: version}, nil
}

func cloneTuples(tuples [][]string) [][]string {
	out := make([][]string, len(tuples))
	for i, t := range tuples {
		out[i] = append([]string(nil), t...)
	}
	return out
}

// parseRows decodes a JSON/NDJSON payload into tuples: either one JSON
// array of rows, or newline-delimited rows. Each row is a JSON array
// (positional values) or a JSON object (fields ordered by attrs, which
// must then be declared). Shared by the File and HTTP connectors.
func parseRows(data []byte, attrs []string) ([][]string, error) {
	trimmed := strings.TrimSpace(string(data))
	if trimmed == "" {
		return nil, nil
	}
	var rawRows []json.RawMessage
	if trimmed[0] == '[' && looksLikeRowArray(trimmed) {
		if err := json.Unmarshal([]byte(trimmed), &rawRows); err != nil {
			return nil, fmt.Errorf("source: malformed JSON array payload: %w", err)
		}
	} else {
		for i, line := range strings.Split(trimmed, "\n") {
			line = strings.TrimSpace(line)
			if line == "" {
				continue
			}
			if !json.Valid([]byte(line)) {
				return nil, fmt.Errorf("source: malformed NDJSON line %d: %s", i+1, truncate(line))
			}
			rawRows = append(rawRows, json.RawMessage(line))
		}
	}
	out := make([][]string, 0, len(rawRows))
	for i, raw := range rawRows {
		tup, err := parseRow(raw, attrs)
		if err != nil {
			return nil, fmt.Errorf("source: row %d: %w", i+1, err)
		}
		out = append(out, tup)
	}
	return out, nil
}

// looksLikeRowArray distinguishes a whole-payload JSON array of rows
// from NDJSON whose first line happens to be an array row: a payload
// is a row array only when it parses as an array whose every element
// is itself an array or object (a single NDJSON row like ["a","b"]
// holds scalars, so it falls through to line-delimited parsing).
func looksLikeRowArray(s string) bool {
	var rows []json.RawMessage
	if json.Unmarshal([]byte(s), &rows) != nil {
		return false
	}
	for _, r := range rows {
		inner := strings.TrimSpace(string(r))
		if inner == "" || (inner[0] != '[' && inner[0] != '{') {
			return false
		}
	}
	return true
}

// parseRow decodes one row: array → positional, object → ordered by
// attrs. Values may be strings, numbers or booleans; nulls and nested
// structures are malformed.
func parseRow(raw json.RawMessage, attrs []string) ([]string, error) {
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("malformed row: %w", err)
	}
	switch row := v.(type) {
	case []any:
		tup := make([]string, len(row))
		for i, f := range row {
			s, err := fieldString(f)
			if err != nil {
				return nil, err
			}
			tup[i] = s
		}
		return tup, nil
	case map[string]any:
		if len(attrs) == 0 {
			return nil, fmt.Errorf("object row needs declared attributes to order its fields")
		}
		tup := make([]string, len(attrs))
		for i, a := range attrs {
			f, ok := row[a]
			if !ok {
				return nil, fmt.Errorf("object row is missing field %q", a)
			}
			s, err := fieldString(f)
			if err != nil {
				return nil, err
			}
			tup[i] = s
		}
		return tup, nil
	default:
		return nil, fmt.Errorf("row must be a JSON array or object, got %T", v)
	}
}

// fieldString renders one row field as a term constant.
func fieldString(v any) (string, error) {
	switch f := v.(type) {
	case string:
		return f, nil
	case json.Number:
		return f.String(), nil
	case bool:
		if f {
			return "true", nil
		}
		return "false", nil
	default:
		return "", fmt.Errorf("field must be a string, number or boolean, got %T", v)
	}
}

func truncate(s string) string {
	if len(s) > 60 {
		return s[:60] + "..."
	}
	return s
}
