package source

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/qerr"
)

func mustFetch(t *testing.T, s Source, prev string) *Result {
	t.Helper()
	res, err := s.Fetch(context.Background(), prev)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	return res
}

func wantTuples(t *testing.T, res *Result, want [][]string) {
	t.Helper()
	if len(res.Tuples) != len(want) {
		t.Fatalf("got %d tuples %v, want %d %v", len(res.Tuples), res.Tuples, len(want), want)
	}
	for i := range want {
		if strings.Join(res.Tuples[i], "\x00") != strings.Join(want[i], "\x00") {
			t.Fatalf("tuple %d = %v, want %v", i, res.Tuples[i], want[i])
		}
	}
}

// --- File connector ---

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFileCSVHeaderAndData(t *testing.T) {
	path := writeFile(t, "wards.csv", "ward,day,patient\nW1,Sep/5,Tom\nW2,Sep/6,Lou\n")
	src := NewFile(path, Schema{Relation: "PatientWard"})
	res := mustFetch(t, src, "")
	wantTuples(t, res, [][]string{{"W1", "Sep/5", "Tom"}, {"W2", "Sep/6", "Lou"}})
	if len(res.Attrs) != 3 || res.Attrs[0] != "ward" {
		t.Fatalf("header not used as attrs: %v", res.Attrs)
	}
	inst, err := res.Instance(src.Schema())
	if err != nil {
		t.Fatal(err)
	}
	rel := inst.Relation("PatientWard")
	if rel == nil || rel.Len() != 2 {
		t.Fatalf("instance missing tuples: %v", rel)
	}
	if rel.Schema().Attrs[1] != "day" {
		t.Fatalf("instance attrs = %v", rel.Schema().Attrs)
	}
}

func TestFileCSVDeclaredAttrsNoHeader(t *testing.T) {
	path := writeFile(t, "wards.csv", "W1,Sep/5,Tom\n")
	src := NewFile(path, Schema{Relation: "PatientWard", Attrs: []string{"w", "d", "p"}})
	res := mustFetch(t, src, "")
	wantTuples(t, res, [][]string{{"W1", "Sep/5", "Tom"}})
}

func TestFileMtimeUnchanged(t *testing.T) {
	path := writeFile(t, "rows.ndjson", `["a","b"]`)
	src := NewFile(path, Schema{Relation: "R"})
	res := mustFetch(t, src, "")
	again := mustFetch(t, src, res.Version)
	if !again.Unchanged {
		t.Fatalf("same mtime+size should be Unchanged, got %+v", again)
	}
	// A content change with a different size must invalidate the token.
	if err := os.WriteFile(path, []byte(`["a","b"]`+"\n"+`["c","d"]`), 0o644); err != nil {
		t.Fatal(err)
	}
	changed := mustFetch(t, src, res.Version)
	if changed.Unchanged {
		t.Fatal("rewritten file reported Unchanged")
	}
	wantTuples(t, changed, [][]string{{"a", "b"}, {"c", "d"}})
}

func TestFileNDJSONObjectRowsNeedAttrs(t *testing.T) {
	path := writeFile(t, "rows.ndjson", `{"w":"W1","d":"Sep/5"}`)
	src := NewFile(path, Schema{Relation: "R"})
	if _, err := src.Fetch(context.Background(), ""); err == nil {
		t.Fatal("object rows without declared attrs must fail")
	}
	src = NewFile(path, Schema{Relation: "R", Attrs: []string{"w", "d"}})
	res := mustFetch(t, src, "")
	wantTuples(t, res, [][]string{{"W1", "Sep/5"}})
}

func TestFileJSONArrayBody(t *testing.T) {
	path := writeFile(t, "rows.json", `[["a","1"],["b","2"]]`)
	src := NewFile(path, Schema{Relation: "R"})
	res := mustFetch(t, src, "")
	wantTuples(t, res, [][]string{{"a", "1"}, {"b", "2"}})
}

func TestFileEmptyPayload(t *testing.T) {
	for _, name := range []string{"empty.ndjson", "empty.csv"} {
		path := writeFile(t, name, "")
		src := NewFile(path, Schema{Relation: "R", Attrs: []string{"a", "b"}})
		res := mustFetch(t, src, "")
		if len(res.Tuples) != 0 {
			t.Fatalf("%s: want no tuples, got %v", name, res.Tuples)
		}
	}
}

func TestFileMalformedPayloads(t *testing.T) {
	cases := map[string]string{
		"torn.ndjson":   "[\"a\",\"b\"]\n[\"c\",",          // torn mid-row
		"badjson.ndjson": `{"w": }`,                        // invalid JSON
		"null.ndjson":   `["a", null]`,                     // null field
		"nested.ndjson": `["a", {"x": 1}]`,                 // nested structure
		"scalar.ndjson": `"just a string"`,                 // not a row
		"torn.csv":      "a,b\nx,y\nz\n",                   // ragged CSV
		"missing.ndjson": `{"w":"W1"}`,                     // missing declared field
	}
	for name, content := range cases {
		path := writeFile(t, name, content)
		attrs := []string{"w", "d"}
		src := NewFile(path, Schema{Relation: "R", Attrs: attrs})
		if _, err := src.Fetch(context.Background(), ""); err == nil {
			t.Errorf("%s: malformed payload fetched without error", name)
		}
	}
}

func TestFileMissing(t *testing.T) {
	src := NewFile(filepath.Join(t.TempDir(), "nope.csv"), Schema{Relation: "R"})
	if _, err := src.Fetch(context.Background(), ""); err == nil {
		t.Fatal("missing file must fail the fetch")
	}
}

// An empty payload with no declared attrs has no arity to infer from:
// the snapshot must contribute no relation at all rather than an
// arity-0 one that collides with the contextual declaration on merge.
func TestEmptyResultNoAttrsCreatesNoRelation(t *testing.T) {
	res := &Result{Version: "v"}
	inst, err := res.Instance(Schema{Relation: "PatientWard"})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Relation("PatientWard") != nil {
		t.Fatal("empty schema-less result materialized a relation")
	}
}

// TornResultArity covers the other torn shape: rows that parse but
// disagree in arity must fail at instance building.
func TestTornResultArity(t *testing.T) {
	res := &Result{Tuples: [][]string{{"a", "b"}, {"c"}}, Version: "v"}
	if _, err := res.Instance(Schema{Relation: "R", Attrs: []string{"x", "y"}}); err == nil {
		t.Fatal("mixed-arity tuples must not build an instance")
	}
}

// --- HTTP connector ---

func TestHTTPETagRevalidation(t *testing.T) {
	var hits atomic.Int64
	body := `["W1","Sep/5","Tom"]`
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if r.Header.Get("If-None-Match") == `"v1"` {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Header().Set("ETag", `"v1"`)
		fmt.Fprintln(w, body)
	}))
	defer srv.Close()
	src := NewHTTP(srv.URL, Schema{Relation: "PatientWard"})
	res := mustFetch(t, src, "")
	wantTuples(t, res, [][]string{{"W1", "Sep/5", "Tom"}})
	if res.Version != `etag:"v1"` {
		t.Fatalf("version = %q", res.Version)
	}
	again := mustFetch(t, src, res.Version)
	if !again.Unchanged {
		t.Fatalf("304 should report Unchanged, got %+v", again)
	}
	if hits.Load() != 2 {
		t.Fatalf("server hits = %d, want 2", hits.Load())
	}
}

func TestHTTPBodyHashFallback(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `[["a","1"]]`)
	}))
	defer srv.Close()
	src := NewHTTP(srv.URL, Schema{Relation: "R"})
	res := mustFetch(t, src, "")
	if !strings.HasPrefix(res.Version, "sha256:") {
		t.Fatalf("version = %q, want a body hash", res.Version)
	}
	again := mustFetch(t, src, res.Version)
	if !again.Unchanged {
		t.Fatal("identical body hash should report Unchanged")
	}
}

func TestHTTPRetryOn5xx(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) < 3 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		fmt.Fprint(w, `[["ok","1"]]`)
	}))
	defer srv.Close()
	src := NewHTTP(srv.URL, Schema{Relation: "R"}, WithRetries(3), WithBackoff(time.Millisecond))
	res := mustFetch(t, src, "")
	wantTuples(t, res, [][]string{{"ok", "1"}})
	if hits.Load() != 3 {
		t.Fatalf("hits = %d, want 3 (two failures then success)", hits.Load())
	}
}

func TestHTTPNoRetryOn404(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.NotFound(w, r)
	}))
	defer srv.Close()
	src := NewHTTP(srv.URL, Schema{Relation: "R"}, WithRetries(3), WithBackoff(time.Millisecond))
	if _, err := src.Fetch(context.Background(), ""); err == nil {
		t.Fatal("404 must fail")
	}
	if hits.Load() != 1 {
		t.Fatalf("hits = %d, want 1 (4xx is not retryable)", hits.Load())
	}
}

func TestHTTPMalformedBody(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"not": "rows"`)
	}))
	defer srv.Close()
	src := NewHTTP(srv.URL, Schema{Relation: "R"})
	if _, err := src.Fetch(context.Background(), ""); err == nil {
		t.Fatal("malformed body must fail")
	}
}

func TestHTTPDownServer(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close() // connection refused from here on
	src := NewHTTP(srv.URL, Schema{Relation: "R"}, WithRetries(1), WithBackoff(time.Millisecond))
	if _, err := src.Fetch(context.Background(), ""); err == nil {
		t.Fatal("down server must fail the fetch")
	}
}

// --- Resolver ---

func TestResolverTTLAndRevalidation(t *testing.T) {
	mem := NewMem(Schema{Relation: "R", Attrs: []string{"a"}}, []string{"x"})
	r := NewResolver([]Binding{{Name: "r", Src: mem, TTL: time.Minute}})
	clock := time.Unix(1000, 0)
	r.now = func() time.Time { return clock }

	snap, err := r.Get(context.Background(), "r")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Inst.Relation("R").Len() != 1 {
		t.Fatal("first Get did not materialize the source")
	}
	// Inside the TTL: cache hit, no connector call.
	if _, err := r.Get(context.Background(), "r"); err != nil {
		t.Fatal(err)
	}
	if got := mem.Fetches(); got != 1 {
		t.Fatalf("fetches = %d, want 1 (second Get is a cache hit)", got)
	}
	// Past the TTL: revalidate (Unchanged — same version).
	clock = clock.Add(2 * time.Minute)
	if _, err := r.Get(context.Background(), "r"); err != nil {
		t.Fatal(err)
	}
	if got := mem.Fetches(); got != 2 {
		t.Fatalf("fetches = %d, want 2 (TTL expiry revalidates)", got)
	}
	st := r.Stats()["r"]
	if st.CacheHits != 1 || st.Fetches != 2 || st.Errors != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestResolverRefreshIgnoresTTL(t *testing.T) {
	mem := NewMem(Schema{Relation: "R", Attrs: []string{"a"}}, []string{"x"})
	r := NewResolver([]Binding{{Name: "r", Src: mem, TTL: time.Hour}})
	if _, err := r.Get(context.Background(), "r"); err != nil {
		t.Fatal(err)
	}
	mem.Add("y")
	snap, err := r.Refresh(context.Background(), "r")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Inst.Relation("R").Len() != 2 {
		t.Fatal("Refresh did not revalidate inside the TTL")
	}
}

func TestResolverUnavailableAndStale(t *testing.T) {
	mem := NewMem(Schema{Relation: "R", Attrs: []string{"a"}}, []string{"x"})
	strict := NewResolver([]Binding{{Name: "r", Src: mem}})
	if _, err := strict.Get(context.Background(), "r"); err != nil {
		t.Fatal(err)
	}
	mem.SetError(errors.New("upstream down"))
	_, err := strict.Refresh(context.Background(), "r")
	if !errors.Is(err, qerr.ErrSourceUnavailable) {
		t.Fatalf("want ErrSourceUnavailable, got %v", err)
	}
	var se *qerr.SourceUnavailableError
	if !errors.As(err, &se) || se.Source != "r" {
		t.Fatalf("typed detail missing: %v", err)
	}

	mem.SetError(nil)
	lax := NewResolver([]Binding{{Name: "r", Src: mem, AllowStale: true}})
	if _, err := lax.Get(context.Background(), "r"); err != nil {
		t.Fatal(err)
	}
	mem.SetError(errors.New("upstream down"))
	snap, err := lax.Refresh(context.Background(), "r")
	if err != nil {
		t.Fatalf("AllowStale must degrade to the cached snapshot, got %v", err)
	}
	if snap.Inst.Relation("R").Len() != 1 {
		t.Fatal("stale snapshot lost tuples")
	}
	st := lax.Stats()["r"]
	if st.StaleServed != 1 || st.Errors != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// With no cached snapshot, AllowStale still fails.
	cold := NewResolver([]Binding{{Name: "r", Src: mem, AllowStale: true}})
	if _, err := cold.Get(context.Background(), "r"); !errors.Is(err, qerr.ErrSourceUnavailable) {
		t.Fatalf("cold stale-allowed fetch failure must surface, got %v", err)
	}
}

// TestResolverSingleflight pins the dedup contract: N concurrent cold
// Gets of one binding produce one connector fetch.
func TestResolverSingleflight(t *testing.T) {
	var fetches atomic.Int64
	slow := &slowSource{mem: NewMem(Schema{Relation: "R", Attrs: []string{"a"}}, []string{"x"}), fetches: &fetches}
	r := NewResolver([]Binding{{Name: "r", Src: slow, TTL: time.Hour}})
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = r.Get(context.Background(), "r")
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := fetches.Load(); got != 1 {
		t.Fatalf("fetches = %d, want 1 (singleflight)", got)
	}
}

type slowSource struct {
	mem     *Mem
	fetches *atomic.Int64
}

func (s *slowSource) Schema() Schema { return s.mem.Schema() }

func (s *slowSource) Fetch(ctx context.Context, prev string) (*Result, error) {
	s.fetches.Add(1)
	time.Sleep(10 * time.Millisecond)
	return s.mem.Fetch(ctx, prev)
}

func TestResolverLatencySamples(t *testing.T) {
	mem := NewMem(Schema{Relation: "R", Attrs: []string{"a"}})
	r := NewResolver([]Binding{{Name: "r", Src: mem}})
	for i := 0; i < 3; i++ {
		if _, err := r.Refresh(context.Background(), "r"); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(r.FetchLatencies()); got != 3 {
		t.Fatalf("latency samples = %d, want 3", got)
	}
}
