package source

import (
	"context"
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// File reads a relation from a CSV or NDJSON/JSON file. The format
// follows the extension: ".csv" parses with encoding/csv (the first
// record is a header naming the attributes unless the schema declares
// them, in which case every record is data); anything else parses as
// JSON rows (one JSON array of rows, or newline-delimited rows — see
// parseRows).
//
// Change detection is mtime-based: the version token is
// "mtime-ns:size", so a Fetch whose stat matches prev short-circuits
// to Unchanged without opening the file. A writer that rewrites the
// file within the filesystem's mtime granularity at identical size is
// missed until its next change — the usual mtime caveat, acceptable
// for the poll-driven refresh path.
type File struct {
	path   string
	schema Schema
}

// NewFile builds a file source over path feeding the schema's
// relation.
func NewFile(path string, schema Schema) *File {
	return &File{path: path, schema: schema}
}

// Schema returns the declared schema.
func (f *File) Schema() Schema { return f.schema }

// Fetch stats the file, short-circuits on an unchanged version, and
// otherwise parses the full payload. A missing file is an error (a
// source that wants "empty" serves an empty file).
func (f *File) Fetch(ctx context.Context, prev string) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	st, err := os.Stat(f.path)
	if err != nil {
		return nil, err
	}
	version := fmt.Sprintf("mtime:%d:%d", st.ModTime().UnixNano(), st.Size())
	if prev != "" && prev == version {
		return &Result{Version: version, Unchanged: true}, nil
	}
	data, err := os.ReadFile(f.path)
	if err != nil {
		return nil, err
	}
	res := &Result{Version: version}
	if strings.EqualFold(filepath.Ext(f.path), ".csv") {
		res.Tuples, res.Attrs, err = parseCSV(data, len(f.schema.Attrs) > 0)
	} else {
		res.Tuples, err = parseRows(data, f.schema.Attrs)
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", f.path, err)
	}
	return res, nil
}

// parseCSV decodes a CSV payload. Unless the schema already declares
// attributes, the first record is the header and becomes the result's
// Attrs. encoding/csv enforces rectangular records, so torn rows fail
// loudly here.
func parseCSV(data []byte, declaredAttrs bool) ([][]string, []string, error) {
	r := csv.NewReader(strings.NewReader(string(data)))
	records, err := r.ReadAll()
	if err != nil {
		return nil, nil, err
	}
	var attrs []string
	if !declaredAttrs && len(records) > 0 {
		attrs = records[0]
		records = records[1:]
	}
	return records, attrs, nil
}
