package source

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
)

// stubDriver is an in-process database/sql driver so CI exercises the
// SQL connector without a real database. Each DSN names a shared
// table; queries are answered by replaying the registered rows, and
// the rewritten positional query plus its args are recorded for the
// parameter-substitution assertions.
type stubDriver struct {
	mu     sync.Mutex
	tables map[string]*stubTable
}

type stubTable struct {
	cols []string
	rows [][]driver.Value

	lastQuery string
	lastArgs  []driver.Value
	failWith  error
}

var stub = &stubDriver{tables: map[string]*stubTable{}}

func init() { sql.Register("sourcestub", stub) }

func (d *stubDriver) Open(dsn string) (driver.Conn, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	tbl, ok := d.tables[dsn]
	if !ok {
		return nil, fmt.Errorf("stub: no table registered for %q", dsn)
	}
	return &stubConn{tbl: tbl, mu: &d.mu}, nil
}

type stubConn struct {
	tbl *stubTable
	mu  *sync.Mutex
}

func (c *stubConn) Prepare(query string) (driver.Stmt, error) {
	return &stubStmt{conn: c, query: query}, nil
}
func (c *stubConn) Close() error              { return nil }
func (c *stubConn) Begin() (driver.Tx, error) { return nil, errors.New("stub: no transactions") }

type stubStmt struct {
	conn  *stubConn
	query string
}

func (s *stubStmt) Close() error  { return nil }
func (s *stubStmt) NumInput() int { return strings.Count(s.query, "?") }
func (s *stubStmt) Exec(args []driver.Value) (driver.Result, error) {
	return nil, errors.New("stub: read-only")
}

func (s *stubStmt) Query(args []driver.Value) (driver.Rows, error) {
	s.conn.mu.Lock()
	defer s.conn.mu.Unlock()
	tbl := s.conn.tbl
	tbl.lastQuery = s.query
	tbl.lastArgs = append([]driver.Value(nil), args...)
	if tbl.failWith != nil {
		return nil, tbl.failWith
	}
	rows := make([][]driver.Value, len(tbl.rows))
	for i, r := range tbl.rows {
		rows[i] = append([]driver.Value(nil), r...)
	}
	return &stubRows{cols: tbl.cols, rows: rows}, nil
}

type stubRows struct {
	cols []string
	rows [][]driver.Value
	next int
}

func (r *stubRows) Columns() []string { return r.cols }
func (r *stubRows) Close() error      { return nil }
func (r *stubRows) Next(dest []driver.Value) error {
	if r.next >= len(r.rows) {
		return io.EOF
	}
	copy(dest, r.rows[r.next])
	r.next++
	return nil
}

// register installs a table under a unique DSN and returns it with an
// open handle.
func register(t *testing.T, cols []string, rows ...[]driver.Value) (*stubTable, *sql.DB) {
	t.Helper()
	stub.mu.Lock()
	dsn := fmt.Sprintf("tbl-%s-%d", t.Name(), len(stub.tables))
	tbl := &stubTable{cols: cols, rows: rows}
	stub.tables[dsn] = tbl
	stub.mu.Unlock()
	db, err := sql.Open("sourcestub", dsn)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return tbl, db
}

func TestSQLNamedParamsAndColumns(t *testing.T) {
	tbl, db := register(t, []string{"ward", "day", "patient"},
		[]driver.Value{"W1", "Sep/5", "Tom"},
		[]driver.Value{"W2", "Sep/6", "Lou"})
	src, err := NewSQL(db,
		"SELECT ward, day, patient FROM wards WHERE day >= :since AND unit = :unit",
		map[string]any{"since": "Sep/5", "unit": "Standard"},
		Schema{Relation: "PatientWard"})
	if err != nil {
		t.Fatal(err)
	}
	res := mustFetch(t, src, "")
	wantTuples(t, res, [][]string{{"W1", "Sep/5", "Tom"}, {"W2", "Sep/6", "Lou"}})
	if len(res.Attrs) != 3 || res.Attrs[2] != "patient" {
		t.Fatalf("column names not propagated: %v", res.Attrs)
	}
	if want := "SELECT ward, day, patient FROM wards WHERE day >= ? AND unit = ?"; tbl.lastQuery != want {
		t.Fatalf("rewritten query = %q, want %q", tbl.lastQuery, want)
	}
	if len(tbl.lastArgs) != 2 || tbl.lastArgs[0] != "Sep/5" || tbl.lastArgs[1] != "Standard" {
		t.Fatalf("args = %v", tbl.lastArgs)
	}
}

func TestSQLRowHashRevalidation(t *testing.T) {
	tbl, db := register(t, []string{"a"}, []driver.Value{"x"})
	src, err := NewSQL(db, "SELECT a FROM t", nil, Schema{Relation: "R"})
	if err != nil {
		t.Fatal(err)
	}
	res := mustFetch(t, src, "")
	again := mustFetch(t, src, res.Version)
	if !again.Unchanged {
		t.Fatal("identical rows should report Unchanged")
	}
	stub.mu.Lock()
	tbl.rows = append(tbl.rows, []driver.Value{"y"})
	stub.mu.Unlock()
	changed := mustFetch(t, src, res.Version)
	if changed.Unchanged {
		t.Fatal("new rows reported Unchanged")
	}
	wantTuples(t, changed, [][]string{{"x"}, {"y"}})
}

func TestSQLParamValidation(t *testing.T) {
	_, db := register(t, []string{"a"})
	if _, err := NewSQL(db, "SELECT a FROM t WHERE x = :missing", nil, Schema{Relation: "R"}); err == nil {
		t.Fatal("unresolved :missing must fail construction")
	}
	if _, err := NewSQL(db, "SELECT a FROM t", map[string]any{"unused": 1}, Schema{Relation: "R"}); err == nil {
		t.Fatal("unused parameter must fail construction")
	}
}

func TestSQLQueryFailureSurfaces(t *testing.T) {
	tbl, db := register(t, []string{"a"})
	tbl.failWith = errors.New("connection reset")
	src, err := NewSQL(db, "SELECT a FROM t", nil, Schema{Relation: "R"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Fetch(context.Background(), ""); err == nil {
		t.Fatal("query failure must surface")
	}
}

func TestSQLNullColumnRejected(t *testing.T) {
	_, db := register(t, []string{"a"}, []driver.Value{nil})
	src, err := NewSQL(db, "SELECT a FROM t", nil, Schema{Relation: "R"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Fetch(context.Background(), ""); err == nil {
		t.Fatal("NULL column must be rejected, not silently stringified")
	}
}

func TestRewriteNamedParams(t *testing.T) {
	cases := []struct {
		in        string
		wantQuery string
		wantNames []string
	}{
		{"SELECT * FROM t WHERE a = :a AND b = :b", "SELECT * FROM t WHERE a = ? AND b = ?", []string{"a", "b"}},
		{"SELECT ':nota' || x FROM t WHERE y = :y", "SELECT ':nota' || x FROM t WHERE y = ?", []string{"y"}},
		{`SELECT ":nota" FROM t`, `SELECT ":nota" FROM t`, nil},
		{"SELECT x::text FROM t WHERE a = :a", "SELECT x::text FROM t WHERE a = ?", []string{"a"}},
		{"SELECT 'it''s' FROM t WHERE a = :a", "SELECT 'it''s' FROM t WHERE a = ?", []string{"a"}},
		{"WHERE a = :a AND b = :a", "WHERE a = ? AND b = ?", []string{"a", "a"}},
	}
	for _, c := range cases {
		got, names, err := rewriteNamedParams(c.in, func(int) string { return "?" })
		if err != nil {
			t.Fatalf("%s: %v", c.in, err)
		}
		if got != c.wantQuery {
			t.Errorf("rewrite(%q) = %q, want %q", c.in, got, c.wantQuery)
		}
		if strings.Join(names, ",") != strings.Join(c.wantNames, ",") {
			t.Errorf("names(%q) = %v, want %v", c.in, names, c.wantNames)
		}
	}
	// Ordinal placeholders (Postgres style).
	got, _, err := rewriteNamedParams("WHERE a = :a AND b = :b", func(i int) string { return fmt.Sprintf("$%d", i) })
	if err != nil {
		t.Fatal(err)
	}
	if want := "WHERE a = $1 AND b = $2"; got != want {
		t.Fatalf("ordinal rewrite = %q, want %q", got, want)
	}
}
