package source

import (
	"context"
	"crypto/sha256"
	"database/sql"
	"encoding/hex"
	"fmt"
	"strings"
	"unicode"
)

// SQL reads a relation from a parameterized query over a database/sql
// handle. The query uses named parameters (":name"), substituted for
// positional placeholders at fetch time so any driver that supports
// ordinal arguments works; string literals and Postgres-style "::type"
// casts are left untouched. Attribute names come from the declared
// schema or, when absent, from the result set's column names.
//
// The version token is a hash of the result rows, so an unchanged
// query result reports Unchanged (the query itself still runs — SQL
// has no cheap revalidation handshake).
//
// The container ships no database drivers; SQL sources are wired
// programmatically by embedders that register their own driver. CI
// exercises the connector against an in-process stub driver.
type SQL struct {
	db          *sql.DB
	query       string // rewritten, positional form
	args        []any  // parameter values in placeholder order
	schema      Schema
	placeholder func(i int) string
}

// SQLOption tunes a SQL source.
type SQLOption func(*SQL)

// WithPlaceholder sets the positional placeholder syntax the driver
// expects, given the 1-based ordinal (default "?" for every ordinal;
// Postgres drivers use func(i) = "$i").
func WithPlaceholder(f func(i int) string) SQLOption { return func(s *SQL) { s.placeholder = f } }

// NewSQL builds a SQL source: query's ":name" parameters are resolved
// against params once, up front, so a missing or unused parameter
// fails at construction rather than at fetch time.
func NewSQL(db *sql.DB, query string, params map[string]any, schema Schema, opts ...SQLOption) (*SQL, error) {
	s := &SQL{db: db, schema: schema, placeholder: func(int) string { return "?" }}
	for _, o := range opts {
		o(s)
	}
	rewritten, names, err := rewriteNamedParams(query, s.placeholder)
	if err != nil {
		return nil, err
	}
	used := map[string]bool{}
	for _, n := range names {
		v, ok := params[n]
		if !ok {
			return nil, fmt.Errorf("source: query references :%s but no such parameter was given", n)
		}
		s.args = append(s.args, v)
		used[n] = true
	}
	for n := range params {
		if !used[n] {
			return nil, fmt.Errorf("source: parameter %q is not referenced by the query", n)
		}
	}
	s.query = rewritten
	return s, nil
}

// Schema returns the declared schema.
func (s *SQL) Schema() Schema { return s.schema }

// Fetch runs the query and reads every row as strings.
func (s *SQL) Fetch(ctx context.Context, prev string) (*Result, error) {
	rows, err := s.db.QueryContext(ctx, s.query, s.args...)
	if err != nil {
		return nil, fmt.Errorf("source: query %s: %w", s.schema.Relation, err)
	}
	defer rows.Close()
	cols, err := rows.Columns()
	if err != nil {
		return nil, err
	}
	h := sha256.New()
	var tuples [][]string
	scan := make([]any, len(cols))
	vals := make([]sql.NullString, len(cols))
	for i := range vals {
		scan[i] = &vals[i]
	}
	for rows.Next() {
		if err := rows.Scan(scan...); err != nil {
			return nil, err
		}
		tup := make([]string, len(cols))
		for i, v := range vals {
			if !v.Valid {
				return nil, fmt.Errorf("source %s: NULL in column %s", s.schema.Relation, cols[i])
			}
			tup[i] = v.String
			fmt.Fprintf(h, "%d:%s\x00", len(v.String), v.String)
		}
		h.Write([]byte{'\n'})
		tuples = append(tuples, tup)
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	version := "rows:" + hex.EncodeToString(h.Sum(nil))
	if prev != "" && prev == version {
		return &Result{Version: version, Unchanged: true}, nil
	}
	return &Result{Tuples: tuples, Attrs: cols, Version: version}, nil
}

// rewriteNamedParams replaces each ":name" parameter with the driver's
// positional placeholder, returning the referenced names in order
// (repeated names repeat in the output — each occurrence binds its own
// ordinal). Single- and double-quoted literals are skipped, as is
// "::" (a cast, not a parameter).
func rewriteNamedParams(query string, placeholder func(int) string) (string, []string, error) {
	var b strings.Builder
	var names []string
	i, n := 0, len(query)
	for i < n {
		c := query[i]
		switch {
		case c == '\'' || c == '"':
			// Copy the quoted literal verbatim, honoring doubled-quote
			// escapes ('it''s').
			j := i + 1
			for j < n {
				if query[j] == c {
					if j+1 < n && query[j+1] == c {
						j += 2
						continue
					}
					j++
					break
				}
				j++
			}
			if j > n {
				j = n
			}
			b.WriteString(query[i:j])
			i = j
		case c == ':' && i+1 < n && query[i+1] == ':':
			b.WriteString("::")
			i += 2
		case c == ':' && i+1 < n && isIdentStart(rune(query[i+1])):
			j := i + 1
			for j < n && isIdentPart(rune(query[j])) {
				j++
			}
			names = append(names, query[i+1:j])
			b.WriteString(placeholder(len(names)))
			i = j
		default:
			b.WriteByte(c)
			i++
		}
	}
	if len(names) == 0 && strings.Contains(query, ":") {
		// No parameters parsed but a ":" is present — fine (casts,
		// time literals); nothing to validate.
		return b.String(), nil, nil
	}
	return b.String(), names, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
