package source

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// HTTP reads a relation from an HTTP endpoint serving JSON or NDJSON
// rows. Revalidation uses ETags when the server provides them: the
// version token is "etag:<value>" and subsequent fetches send
// If-None-Match, so an unchanged upstream answers 304 with no body.
// Without an ETag the version falls back to a body hash
// ("sha256:<hex>") — the full body still transfers, but an unchanged
// hash reports Unchanged so the session skips re-diffing.
//
// Transient failures (connection errors, 5xx, 429) are retried with
// exponential backoff; 4xx responses other than 429 fail immediately.
type HTTP struct {
	url     string
	schema  Schema
	client  *http.Client
	retries int
	backoff time.Duration
}

// HTTPOption tunes an HTTP source.
type HTTPOption func(*HTTP)

// WithClient substitutes the http.Client (tests inject
// httptest servers; production injects timeouts/transport).
func WithClient(c *http.Client) HTTPOption { return func(h *HTTP) { h.client = c } }

// WithRetries sets how many times a transient failure is retried
// (default 2, i.e. up to 3 attempts).
func WithRetries(n int) HTTPOption { return func(h *HTTP) { h.retries = n } }

// WithBackoff sets the initial retry backoff, doubled per attempt
// (default 100ms).
func WithBackoff(d time.Duration) HTTPOption { return func(h *HTTP) { h.backoff = d } }

// NewHTTP builds an HTTP source over url feeding the schema's
// relation.
func NewHTTP(url string, schema Schema, opts ...HTTPOption) *HTTP {
	h := &HTTP{
		url:     url,
		schema:  schema,
		client:  http.DefaultClient,
		retries: 2,
		backoff: 100 * time.Millisecond,
	}
	for _, o := range opts {
		o(h)
	}
	return h
}

// Schema returns the declared schema.
func (h *HTTP) Schema() Schema { return h.schema }

// Fetch GETs the endpoint, revalidating against prev when it carries
// an ETag.
func (h *HTTP) Fetch(ctx context.Context, prev string) (*Result, error) {
	var lastErr error
	backoff := h.backoff
	for attempt := 0; attempt <= h.retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		res, retryable, err := h.fetchOnce(ctx, prev)
		if err == nil {
			return res, nil
		}
		lastErr = err
		if !retryable {
			break
		}
	}
	return nil, lastErr
}

// fetchOnce runs a single conditional GET; retryable classifies the
// failure for the backoff loop.
func (h *HTTP) fetchOnce(ctx context.Context, prev string) (res *Result, retryable bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, h.url, nil)
	if err != nil {
		return nil, false, err
	}
	if etag, ok := strings.CutPrefix(prev, "etag:"); ok {
		req.Header.Set("If-None-Match", etag)
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return nil, true, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotModified:
		return &Result{Version: prev, Unchanged: true}, false, nil
	case resp.StatusCode >= 500, resp.StatusCode == http.StatusTooManyRequests:
		io.Copy(io.Discard, resp.Body)
		return nil, true, fmt.Errorf("source: GET %s: %s", h.url, resp.Status)
	case resp.StatusCode != http.StatusOK:
		return nil, false, fmt.Errorf("source: GET %s: %s", h.url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, true, err
	}
	version := "etag:" + resp.Header.Get("ETag")
	if resp.Header.Get("ETag") == "" {
		sum := sha256.Sum256(body)
		version = "sha256:" + hex.EncodeToString(sum[:])
		if prev != "" && prev == version {
			return &Result{Version: version, Unchanged: true}, false, nil
		}
	}
	tuples, err := parseRows(body, h.schema.Attrs)
	if err != nil {
		return nil, false, fmt.Errorf("%s: %w", h.url, err)
	}
	return &Result{Tuples: tuples, Version: version}, false, nil
}
