package core

import (
	"fmt"
	"strings"

	"repro/internal/datalog"
	"repro/internal/sticky"
	"repro/internal/storage"
)

// CompileOptions tunes the Datalog± compilation.
type CompileOptions struct {
	// ReferentialNCs adds the form-(1) constraints ⊥ ← R(...), ¬K(e)
	// for every categorical attribute of every relation.
	ReferentialNCs bool
	// TransitiveRollups adds composition rules defining parent-child
	// predicates across non-adjacent category pairs, letting rules and
	// constraints navigate several levels in one atom (the paper's
	// MonthDay over a Time ⇒ Day ⇒ Month hierarchy is adjacent, but
	// e.g. InstitutionWard is not).
	TransitiveRollups bool
}

// Compiled is the Datalog± form of an ontology: the program Σ_M (rules
// and constraints) and the extensional instance D_M (dimension
// predicates plus categorical data).
type Compiled struct {
	Program  *datalog.Program
	Instance *storage.Instance
	// Report is the syntactic classification of the program (Section
	// III argues it is weakly sticky; tests assert it).
	Report *sticky.Report
	// Directions maps rule IDs to their navigation direction.
	Directions map[string]Direction
	// Forms maps rule IDs to their syntactic form.
	Forms map[string]RuleForm
}

// Compile emits the Datalog± program and extensional instance.
func (o *Ontology) Compile(opts CompileOptions) (*Compiled, error) {
	db := storage.NewInstance()
	// Dimension predicates: categories and rollups.
	for _, name := range o.dimOrder {
		if err := o.dimensions[name].EmitAtoms(db); err != nil {
			return nil, err
		}
	}
	// Categorical relation data.
	for _, name := range o.relOrder {
		rel := o.relations[name]
		if _, err := db.CreateRelation(name, rel.StorageSchema().Attrs...); err != nil {
			return nil, err
		}
		src := o.data.Relation(name)
		for _, tup := range src.Tuples() {
			if _, err := db.Insert(name, tup...); err != nil {
				return nil, err
			}
		}
	}

	prog := datalog.NewProgram()
	comp := &Compiled{
		Instance:   db,
		Directions: map[string]Direction{},
		Forms:      map[string]RuleForm{},
	}
	for _, t := range o.rules {
		prog.AddTGD(t)
		comp.Directions[t.ID] = o.NavigationDirection(t)
		form, err := o.RuleForm(t)
		if err != nil {
			return nil, err
		}
		comp.Forms[t.ID] = form
	}
	if opts.TransitiveRollups {
		for _, name := range o.dimOrder {
			for _, t := range o.dimensions[name].TransitiveRollupProgram() {
				prog.AddTGD(t)
				comp.Directions[t.ID] = DirectionNone
				comp.Forms[t.ID] = Form4
			}
		}
	}
	for _, e := range o.egds {
		prog.AddEGD(e)
	}
	for _, n := range o.ncs {
		prog.AddNC(n)
	}
	if opts.ReferentialNCs {
		for _, name := range o.relOrder {
			rel := o.relations[name]
			for _, pos := range rel.CategoricalPositions() {
				nc, err := rel.ReferentialNC(pos)
				if err != nil {
					return nil, err
				}
				prog.AddNC(nc)
			}
		}
	}
	if err := prog.Validate(); err != nil && err != datalog.ErrEmptyProgram {
		return nil, err
	}
	comp.Program = prog
	comp.Report = sticky.Classify(prog)
	return comp, nil
}

// SeparabilityHeuristic applies the paper's separability argument to
// the registered EGDs: when every EGD equates variables that occur
// only at categorical positions of categorical relations, EGD and TGD
// enforcement do not interact (the TGDs never invent values at those
// positions under form (4)), so the chase can treat them separately.
// Form-(10) rules invent category members, voiding the argument; the
// result then depends on the application (the paper's caveat at the
// end of Section III).
//
// It returns (separable, reason).
func (o *Ontology) SeparabilityHeuristic() (bool, string) {
	hasForm10 := false
	for _, t := range o.rules {
		if f, err := o.RuleForm(t); err == nil && f == Form10 {
			hasForm10 = true
			break
		}
	}
	for _, e := range o.egds {
		for _, side := range []datalog.Term{e.Left, e.Right} {
			cat, err := o.egdVarCategorical(e, side)
			if err != nil {
				return false, err.Error()
			}
			if !cat {
				return false, fmt.Sprintf("EGD %s equates non-categorical variable %s", e.ID, side)
			}
		}
	}
	if hasForm10 && len(o.egds) > 0 {
		return false, "form-(10) rules invent category members; separability is application-dependent"
	}
	return true, "all EGD head variables are categorical and no rule invents category members"
}

// egdVarCategorical reports whether the variable occurs only at
// categorical positions within the EGD body's categorical-relation
// atoms (occurrences in rollup/category atoms count as categorical).
func (o *Ontology) egdVarCategorical(e *datalog.EGD, v datalog.Term) (bool, error) {
	found := false
	for _, a := range e.Body {
		rel, isRel := o.relations[a.Pred]
		for i, tm := range a.Args {
			if tm != v {
				continue
			}
			found = true
			if isRel && !rel.Attrs[i].IsCategorical() {
				return false, nil
			}
		}
	}
	if !found {
		return false, fmt.Errorf("core: EGD %s: head variable %s not in body", e.ID, v)
	}
	return true, nil
}

// Summary renders a human-readable inventory of the ontology, used by
// the CLI's describe command.
func (o *Ontology) Summary() string {
	var b strings.Builder
	b.WriteString("Dimensions:\n")
	for _, name := range o.dimOrder {
		d := o.dimensions[name]
		fmt.Fprintf(&b, "  %s (%d members)\n", d.Schema(), d.MemberCount())
	}
	b.WriteString("Categorical relations:\n")
	for _, name := range o.relOrder {
		fmt.Fprintf(&b, "  %s (%d tuples)\n", o.relations[name], o.data.Relation(name).Len())
	}
	if len(o.rules) > 0 {
		b.WriteString("Dimensional rules:\n")
		for _, t := range o.rules {
			dir := o.NavigationDirection(t)
			form, _ := o.RuleForm(t)
			fmt.Fprintf(&b, "  [%s, %s, %s] %s\n", t.ID, form, dir, t)
		}
	}
	if len(o.egds) > 0 {
		b.WriteString("Dimensional EGDs:\n")
		for _, e := range o.egds {
			fmt.Fprintf(&b, "  [%s] %s\n", e.ID, e)
		}
	}
	if len(o.ncs) > 0 {
		b.WriteString("Dimensional constraints:\n")
		for _, n := range o.ncs {
			fmt.Fprintf(&b, "  [%s] %s\n", n.ID, n)
		}
	}
	return b.String()
}
