package core_test

import (
	"testing"

	"repro/internal/core"
	dl "repro/internal/datalog"
	"repro/internal/hm"
	"repro/internal/hospital"
)

func TestForm10WithoutHeadRollup(t *testing.T) {
	// An existential variable at a categorical head position makes a
	// rule form-(10) even without a parent-child atom in the head.
	o := hospital.NewOntology(hospital.Options{})
	rule := dl.NewTGD("ex-cat",
		[]dl.Atom{dl.A("PatientUnit", dl.V("u"), dl.V("d"), dl.V("p"))},
		[]dl.Atom{dl.A("WorkingSchedules", dl.V("u2"), dl.V("d"), dl.V("p"), dl.V("t"))})
	form, err := o.RuleForm(rule)
	if err != nil {
		t.Fatal(err)
	}
	if form != core.Form10 {
		t.Errorf("form = %v, want form-(10): u is existential at a categorical position", form)
	}
}

func TestForm4ExistentialNonCategorical(t *testing.T) {
	// Existential at a non-categorical position stays form (4).
	o := hospital.NewOntology(hospital.Options{})
	form, err := o.RuleForm(hospital.RuleEight())
	if err != nil || form != core.Form4 {
		t.Errorf("form = %v (%v), want form-(4)", form, err)
	}
}

func TestDirectionBoth(t *testing.T) {
	// A rule that joins a child of one rollup atom and a parent of
	// another navigates both ways.
	// Upward leg: UnitWard(u, w) with w in PatientWard (body) and u
	// in the head. Downward leg: UnitWard(u2, w2) with u2 in
	// PatientUnit (body) and w2 in the head.
	o := hospital.NewOntology(hospital.Options{})
	rule := dl.NewTGD("both",
		[]dl.Atom{
			dl.A("WorkingSchedules", dl.V("u"), dl.V("d"), dl.V("n"), dl.V("z")),
			dl.A("Shifts", dl.V("w2"), dl.V("d"), dl.V("n"), dl.V("z2")),
		},
		[]dl.Atom{
			dl.A("PatientWard", dl.V("w"), dl.V("d"), dl.V("p1")),
			dl.A("UnitWard", dl.V("u"), dl.V("w")),
			dl.A("PatientUnit", dl.V("u2"), dl.V("d"), dl.V("p2")),
			dl.A("UnitWard", dl.V("u2"), dl.V("w2")),
		})
	if got := o.NavigationDirection(rule); got != core.Both {
		t.Errorf("direction = %v, want both", got)
	}
}

func TestCompileEmptyOntology(t *testing.T) {
	o := core.NewOntology()
	if err := o.AddDimension(hospital.HospitalDimension()); err != nil {
		t.Fatal(err)
	}
	comp, err := o.Compile(core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Dimension data present even with no relations/rules.
	if !comp.Instance.ContainsAtom(dl.A("Ward", dl.C("W1"))) {
		t.Error("dimension atoms missing")
	}
	if len(comp.Program.TGDs) != 0 {
		t.Error("no rules expected")
	}
}

func TestAddRuleRejectsInvalidTGD(t *testing.T) {
	o := hospital.NewOntology(hospital.Options{})
	bad := dl.NewTGD("bad", nil, []dl.Atom{dl.A("PatientWard", dl.V("w"), dl.V("d"), dl.V("p"))})
	if err := o.AddRule(bad); err == nil {
		t.Error("empty-head TGD must be rejected")
	}
}

func TestAddEGDAddNCValidate(t *testing.T) {
	o := hospital.NewOntology(hospital.Options{})
	badEGD := dl.NewEGD("b", dl.V("x"), dl.V("y"), nil)
	if err := o.AddEGD(badEGD); err == nil {
		t.Error("invalid EGD must be rejected")
	}
	badNC := dl.NewNC("b")
	if err := o.AddNC(badNC); err == nil {
		t.Error("invalid NC must be rejected")
	}
}

func TestIsRollupAndCategoryPred(t *testing.T) {
	o := hospital.NewOntology(hospital.Options{})
	if d, ok := o.IsRollupPred("UnitWard"); !ok || d != "Hospital" {
		t.Errorf("IsRollupPred(UnitWard) = %q, %v", d, ok)
	}
	if d, ok := o.IsCategoryPred("Ward"); !ok || d != "Hospital" {
		t.Errorf("IsCategoryPred(Ward) = %q, %v", d, ok)
	}
	if _, ok := o.IsRollupPred("PatientWard"); ok {
		t.Error("categorical relation is not a rollup pred")
	}
	if _, ok := o.IsCategoryPred("Nope"); ok {
		t.Error("unknown pred is not a category pred")
	}
}

func TestCategoryPredicateClashAcrossDimensions(t *testing.T) {
	// Two dimensions declaring the same category name collide on the
	// category predicate.
	o := core.NewOntology()
	if err := o.AddDimension(hospital.HospitalDimension()); err != nil {
		t.Fatal(err)
	}
	d2 := hospital.HospitalDimension()
	// Same category names, different dimension name: rebuild under a
	// new name is not directly possible with the fixture, so approximate
	// with a fresh dimension sharing a category name.
	_ = d2
	s := hm.NewDimensionSchema("Clinic")
	s.MustAddCategory("Ward") // clashes with Hospital's Ward predicate
	clash := hm.NewDimension(s)
	if err := o.AddDimension(clash); err == nil {
		t.Error("category predicate clash must be rejected")
	}
}
