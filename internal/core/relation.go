// Package core implements the paper's primary contribution: the
// extended Hurtado–Mendelzon multidimensional model of Section III —
// categorical relations attached to dimension categories, dimensional
// rules (TGD forms (4) and (10)) enabling upward and downward
// navigation, dimensional constraints (EGD form (2) and negative-
// constraint form (3)), referential constraints (form (1)) — and its
// compilation into a Datalog± program plus extensional instance, with
// the weak-stickiness classification of the result.
package core

import (
	"fmt"
	"strings"

	"repro/internal/datalog"
	"repro/internal/storage"
)

// Attribute is one attribute of a categorical relation. Categorical
// attributes name the dimension and category they take members from;
// non-categorical attributes leave both empty.
type Attribute struct {
	Name      string
	Dimension string
	Category  string
}

// Cat builds a categorical attribute.
func Cat(name, dimension, category string) Attribute {
	return Attribute{Name: name, Dimension: dimension, Category: category}
}

// NonCat builds a non-categorical attribute.
func NonCat(name string) Attribute { return Attribute{Name: name} }

// IsCategorical reports whether the attribute takes category members.
func (a Attribute) IsCategorical() bool { return a.Category != "" }

// String renders the attribute, annotating categorical ones.
func (a Attribute) String() string {
	if a.IsCategorical() {
		return fmt.Sprintf("%s: %s.%s", a.Name, a.Dimension, a.Category)
	}
	return a.Name
}

// CategoricalRelation is the schema of a categorical relation: a named
// relation whose attributes are split into categorical ones (linked to
// dimension categories) and non-categorical ones, written
// R(ē; ā) in the paper — e.g. PatientWard(Ward, Day; Patient).
type CategoricalRelation struct {
	Name  string
	Attrs []Attribute
}

// NewCategoricalRelation builds a relation schema.
func NewCategoricalRelation(name string, attrs ...Attribute) *CategoricalRelation {
	return &CategoricalRelation{Name: name, Attrs: attrs}
}

// Arity returns the number of attributes.
func (r *CategoricalRelation) Arity() int { return len(r.Attrs) }

// CategoricalPositions returns the indices of categorical attributes.
func (r *CategoricalRelation) CategoricalPositions() []int {
	var out []int
	for i, a := range r.Attrs {
		if a.IsCategorical() {
			out = append(out, i)
		}
	}
	return out
}

// AttrIndex returns the index of the named attribute, or -1.
func (r *CategoricalRelation) AttrIndex(name string) int {
	for i, a := range r.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// StorageSchema converts to the storage schema (attribute names only).
func (r *CategoricalRelation) StorageSchema() storage.Schema {
	attrs := make([]string, len(r.Attrs))
	for i, a := range r.Attrs {
		attrs[i] = a.Name
	}
	return storage.Schema{Name: r.Name, Attrs: attrs}
}

// Validate checks the schema: non-empty name, unique attribute names.
func (r *CategoricalRelation) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("core: categorical relation with empty name")
	}
	if len(r.Attrs) == 0 {
		return fmt.Errorf("core: relation %s has no attributes", r.Name)
	}
	seen := map[string]bool{}
	for _, a := range r.Attrs {
		if a.Name == "" {
			return fmt.Errorf("core: relation %s has an unnamed attribute", r.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("core: relation %s: duplicate attribute %s", r.Name, a.Name)
		}
		seen[a.Name] = true
		if a.IsCategorical() && a.Dimension == "" {
			return fmt.Errorf("core: relation %s: attribute %s has a category but no dimension", r.Name, a.Name)
		}
	}
	return nil
}

// String renders the schema in the paper's R(ē; ā) style:
// PatientWard(Ward: Hospital.Ward, Day: Time.Day; Patient).
func (r *CategoricalRelation) String() string {
	var cat, non []string
	for _, a := range r.Attrs {
		if a.IsCategorical() {
			cat = append(cat, a.String())
		} else {
			non = append(non, a.String())
		}
	}
	inner := strings.Join(cat, ", ")
	if len(non) > 0 {
		inner += "; " + strings.Join(non, ", ")
	}
	return r.Name + "(" + inner + ")"
}

// ReferentialNC builds the form-(1) negative constraint tying one
// categorical attribute to its category predicate:
//
//	⊥ ← R(x0,...,xn), ¬K(xi)
func (r *CategoricalRelation) ReferentialNC(pos int) (*datalog.NC, error) {
	if pos < 0 || pos >= len(r.Attrs) || !r.Attrs[pos].IsCategorical() {
		return nil, fmt.Errorf("core: relation %s: position %d is not categorical", r.Name, pos)
	}
	args := make([]datalog.Term, len(r.Attrs))
	for i := range args {
		args[i] = datalog.V(fmt.Sprintf("x%d", i))
	}
	return datalog.NewNC(
		fmt.Sprintf("ref-%s-%s", r.Name, r.Attrs[pos].Name),
		datalog.Pos(datalog.Atom{Pred: r.Name, Args: args}),
		datalog.Neg(datalog.A(r.Attrs[pos].Category, args[pos])),
	), nil
}
