package core_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/chase"
	"repro/internal/core"
	dl "repro/internal/datalog"
	"repro/internal/hospital"
)

func TestAttributeKinds(t *testing.T) {
	c := core.Cat("Ward", "Hospital", "Ward")
	if !c.IsCategorical() {
		t.Error("Cat must be categorical")
	}
	if got := c.String(); got != "Ward: Hospital.Ward" {
		t.Errorf("String = %q", got)
	}
	n := core.NonCat("Patient")
	if n.IsCategorical() {
		t.Error("NonCat must not be categorical")
	}
	if n.String() != "Patient" {
		t.Errorf("String = %q", n.String())
	}
}

func TestCategoricalRelationSchema(t *testing.T) {
	r := core.NewCategoricalRelation("PatientWard",
		core.Cat("Ward", "Hospital", "Ward"),
		core.Cat("Day", "Time", "Day"),
		core.NonCat("Patient"))
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := r.CategoricalPositions(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("CategoricalPositions = %v", got)
	}
	if r.AttrIndex("Day") != 1 || r.AttrIndex("missing") != -1 {
		t.Error("AttrIndex wrong")
	}
	s := r.StorageSchema()
	if s.Name != "PatientWard" || len(s.Attrs) != 3 {
		t.Errorf("StorageSchema = %v", s)
	}
	// Paper-style rendering with the semicolon separator.
	if got := r.String(); !strings.Contains(got, "; Patient") {
		t.Errorf("String = %q, want semicolon before non-categorical attrs", got)
	}
}

func TestCategoricalRelationValidateErrors(t *testing.T) {
	cases := []*core.CategoricalRelation{
		core.NewCategoricalRelation(""),
		core.NewCategoricalRelation("R"),
		core.NewCategoricalRelation("R", core.NonCat("")),
		core.NewCategoricalRelation("R", core.NonCat("a"), core.NonCat("a")),
		core.NewCategoricalRelation("R", core.Attribute{Name: "x", Category: "C"}), // category without dimension
	}
	for i, r := range cases {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d must fail validation", i)
		}
	}
}

func TestReferentialNC(t *testing.T) {
	r := core.NewCategoricalRelation("PatientUnit",
		core.Cat("Unit", "Hospital", "Unit"),
		core.Cat("Day", "Time", "Day"),
		core.NonCat("Patient"))
	nc, err := r.ReferentialNC(0)
	if err != nil {
		t.Fatal(err)
	}
	// Constraint (5): ⊥ <- PatientUnit(u,d,p), not Unit(u).
	s := nc.String()
	if !strings.Contains(s, "PatientUnit(") || !strings.Contains(s, "not Unit(") {
		t.Errorf("referential NC = %q", s)
	}
	if err := nc.Validate(); err != nil {
		t.Errorf("generated NC invalid: %v", err)
	}
	if _, err := r.ReferentialNC(2); err == nil {
		t.Error("non-categorical position must error")
	}
	if _, err := r.ReferentialNC(7); err == nil {
		t.Error("out-of-range position must error")
	}
}

func TestOntologyRegistration(t *testing.T) {
	o := core.NewOntology()
	if err := o.AddDimension(hospital.HospitalDimension()); err != nil {
		t.Fatal(err)
	}
	if err := o.AddDimension(hospital.HospitalDimension()); err == nil {
		t.Error("duplicate dimension must fail")
	}
	if got := o.Dimensions(); len(got) != 1 || got[0] != "Hospital" {
		t.Errorf("Dimensions = %v", got)
	}
	if o.Dimension("Hospital") == nil {
		t.Error("Dimension accessor failed")
	}

	rel := core.NewCategoricalRelation("PatientWard",
		core.Cat("Ward", "Hospital", "Ward"),
		core.NonCat("Patient"))
	if err := o.AddRelation(rel); err != nil {
		t.Fatal(err)
	}
	if err := o.AddRelation(rel); err == nil {
		t.Error("duplicate relation must fail")
	}
	badDim := core.NewCategoricalRelation("X", core.Cat("a", "Nope", "Ward"))
	if err := o.AddRelation(badDim); err == nil {
		t.Error("unknown dimension must fail")
	}
	badCat := core.NewCategoricalRelation("Y", core.Cat("a", "Hospital", "Nope"))
	if err := o.AddRelation(badCat); err == nil {
		t.Error("unknown category must fail")
	}
	clash := core.NewCategoricalRelation("UnitWard", core.NonCat("x"))
	if err := o.AddRelation(clash); err == nil {
		t.Error("name clash with rollup predicate must fail")
	}
	clash2 := core.NewCategoricalRelation("Ward", core.NonCat("x"))
	if err := o.AddRelation(clash2); err == nil {
		t.Error("name clash with category predicate must fail")
	}
}

func TestOntologyFacts(t *testing.T) {
	o := core.NewOntology()
	if err := o.AddDimension(hospital.HospitalDimension()); err != nil {
		t.Fatal(err)
	}
	rel := core.NewCategoricalRelation("PatientWard",
		core.Cat("Ward", "Hospital", "Ward"),
		core.NonCat("Patient"))
	if err := o.AddRelation(rel); err != nil {
		t.Fatal(err)
	}
	if err := o.AddFact("PatientWard", "W1", "Tom"); err != nil {
		t.Fatal(err)
	}
	if err := o.AddFact("PatientWard", "W1"); err == nil {
		t.Error("arity mismatch must fail")
	}
	if err := o.AddFact("Nope", "x"); err == nil {
		t.Error("unknown relation must fail")
	}
	// Referential integrity: W99 is not a ward member.
	if err := o.AddFact("PatientWard", "W99", "Tom"); err == nil {
		t.Error("non-member categorical value must fail")
	}
	// Standard is a member, but of Unit, not Ward.
	if err := o.AddFact("PatientWard", "Standard", "Tom"); err == nil {
		t.Error("member of wrong category must fail")
	}
	// Unchecked path stages dirty data.
	if err := o.AddFactUnchecked("PatientWard", "W99", "Tom"); err != nil {
		t.Errorf("unchecked insert must succeed: %v", err)
	}
	if o.Data().Relation("PatientWard").Len() != 2 {
		t.Errorf("facts = %d, want 2", o.Data().Relation("PatientWard").Len())
	}
}

func TestRuleFormClassification(t *testing.T) {
	o := hospital.NewOntology(hospital.Options{WithRuleNine: true})
	form7, err := o.RuleForm(hospital.RuleSeven())
	if err != nil || form7 != core.Form4 {
		t.Errorf("rule 7 form = %v (%v), want form-(4)", form7, err)
	}
	form8, err := o.RuleForm(hospital.RuleEight())
	if err != nil || form8 != core.Form4 {
		t.Errorf("rule 8 form = %v (%v), want form-(4): existential z is non-categorical", form8, err)
	}
	form9, err := o.RuleForm(hospital.RuleNine())
	if err != nil || form9 != core.Form10 {
		t.Errorf("rule 9 form = %v (%v), want form-(10)", form9, err)
	}
	if core.Form4.String() != "form-(4)" || core.Form10.String() != "form-(10)" {
		t.Error("form names wrong")
	}
}

func TestRuleFormRejectsUnknownPredicates(t *testing.T) {
	o := hospital.NewOntology(hospital.Options{})
	bad := dl.NewTGD("bad",
		[]dl.Atom{dl.A("PatientUnit", dl.V("u"), dl.V("d"), dl.V("p"))},
		[]dl.Atom{dl.A("Mystery", dl.V("u"), dl.V("d"), dl.V("p"))})
	if _, err := o.RuleForm(bad); err == nil {
		t.Error("unknown body predicate must fail")
	}
	badHead := dl.NewTGD("bh",
		[]dl.Atom{dl.A("Ward", dl.V("w"))}, // category predicate in head
		[]dl.Atom{dl.A("PatientWard", dl.V("w"), dl.V("d"), dl.V("p"))})
	if _, err := o.RuleForm(badHead); err == nil {
		t.Error("category predicate in head must fail")
	}
}

func TestJoinVariableCondition(t *testing.T) {
	o := hospital.NewOntology(hospital.Options{})
	// Join on the non-categorical Patient attribute violates the WS
	// condition of Section III.
	bad := dl.NewTGD("join-noncat",
		[]dl.Atom{dl.A("PatientUnit", dl.V("u"), dl.V("d"), dl.V("p"))},
		[]dl.Atom{
			dl.A("PatientWard", dl.V("w"), dl.V("d"), dl.V("p")),
			dl.A("Shifts", dl.V("w2"), dl.V("d2"), dl.V("p"), dl.V("s")),
			dl.A("UnitWard", dl.V("u"), dl.V("w")),
		})
	if _, err := o.RuleForm(bad); err == nil || !strings.Contains(err.Error(), "non-categorical") {
		t.Errorf("non-categorical join must be rejected, got %v", err)
	}
	if err := o.AddRule(bad); err == nil {
		t.Error("AddRule must reject the rule too")
	}
}

func TestNavigationDirection(t *testing.T) {
	o := hospital.NewOntology(hospital.Options{WithRuleNine: true})
	if got := o.NavigationDirection(hospital.RuleSeven()); got != core.Upward {
		t.Errorf("rule 7 direction = %v, want upward", got)
	}
	if got := o.NavigationDirection(hospital.RuleEight()); got != core.Downward {
		t.Errorf("rule 8 direction = %v, want downward", got)
	}
	if got := o.NavigationDirection(hospital.RuleNine()); got != core.Downward {
		t.Errorf("rule 9 direction = %v, want downward (rollup atom in head)", got)
	}
	// A rule with no rollup atoms does not navigate.
	copyRule := dl.NewTGD("copy",
		[]dl.Atom{dl.A("PatientUnit", dl.V("u"), dl.V("d"), dl.V("p"))},
		[]dl.Atom{dl.A("WorkingSchedules", dl.V("u"), dl.V("d"), dl.V("p"), dl.V("t"))})
	if got := o.NavigationDirection(copyRule); got != core.DirectionNone {
		t.Errorf("copy rule direction = %v, want none", got)
	}
	for d, want := range map[core.Direction]string{
		core.Upward: "upward", core.Downward: "downward",
		core.Both: "both", core.DirectionNone: "none",
	} {
		if d.String() != want {
			t.Errorf("Direction(%d).String = %q", d, d.String())
		}
	}
}

func TestIsUpwardOnly(t *testing.T) {
	up := core.NewOntology()
	if err := up.AddDimension(hospital.HospitalDimension()); err != nil {
		t.Fatal(err)
	}
	if err := up.AddDimension(hospital.TimeDimension()); err != nil {
		t.Fatal(err)
	}
	for _, r := range []*core.CategoricalRelation{
		core.NewCategoricalRelation("PatientWard",
			core.Cat("Ward", "Hospital", "Ward"), core.Cat("Day", "Time", "Day"), core.NonCat("Patient")),
		core.NewCategoricalRelation("PatientUnit",
			core.Cat("Unit", "Hospital", "Unit"), core.Cat("Day", "Time", "Day"), core.NonCat("Patient")),
	} {
		if err := up.AddRelation(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := up.AddRule(hospital.RuleSeven()); err != nil {
		t.Fatal(err)
	}
	if !up.IsUpwardOnly() {
		t.Error("rule 7 only: upward-only ontology")
	}
	full := hospital.NewOntology(hospital.Options{})
	if full.IsUpwardOnly() {
		t.Error("rule 8 navigates downward: not upward-only")
	}
}

func TestCompileHospital(t *testing.T) {
	o := hospital.NewOntology(hospital.Options{WithRuleNine: true, WithConstraints: true})
	comp, err := o.Compile(core.CompileOptions{ReferentialNCs: true})
	if err != nil {
		t.Fatal(err)
	}
	// Extensional dimensional data present.
	if !comp.Instance.ContainsAtom(dl.A("UnitWard", dl.C("Standard"), dl.C("W1"))) {
		t.Error("UnitWard(Standard, W1) missing from compiled instance")
	}
	if !comp.Instance.ContainsAtom(dl.A("Ward", dl.C("W1"))) {
		t.Error("Ward(W1) missing")
	}
	if !comp.Instance.ContainsAtom(dl.A("MonthDay", dl.C("2005-09"), dl.C("Sep/5"))) {
		t.Error("MonthDay(2005-09, Sep/5) missing")
	}
	// Categorical data copied.
	if comp.Instance.Relation("PatientWard").Len() != 6 {
		t.Errorf("PatientWard = %d, want 6", comp.Instance.Relation("PatientWard").Len())
	}
	// Program contents: 3 rules, 1 EGD, intensive NC + referential NCs.
	if len(comp.Program.TGDs) != 3 {
		t.Errorf("TGDs = %d, want 3", len(comp.Program.TGDs))
	}
	if len(comp.Program.EGDs) != 1 {
		t.Errorf("EGDs = %d, want 1", len(comp.Program.EGDs))
	}
	refNCs := 0
	for _, nc := range comp.Program.NCs {
		if strings.HasPrefix(nc.ID, "ref-") {
			refNCs++
		}
	}
	// PatientWard 2 + PatientUnit 2 + WorkingSchedules 2 + Shifts 2 +
	// DischargePatients 2 + Thermometer 1 = 11 categorical positions.
	if refNCs != 11 {
		t.Errorf("referential NCs = %d, want 11", refNCs)
	}
	// Metadata.
	if comp.Directions["r7"] != core.Upward || comp.Directions["r8"] != core.Downward {
		t.Errorf("Directions = %v", comp.Directions)
	}
	if comp.Forms["r9"] != core.Form10 {
		t.Errorf("Forms = %v", comp.Forms)
	}
}

func TestCompiledOntologyIsWeaklySticky(t *testing.T) {
	// Section III / experiment C3: the compiled MD ontology falls in
	// WS Datalog±.
	o := hospital.NewOntology(hospital.Options{WithRuleNine: true, WithConstraints: true})
	comp, err := o.Compile(core.CompileOptions{ReferentialNCs: true})
	if err != nil {
		t.Fatal(err)
	}
	if !comp.Report.WeaklySticky {
		t.Fatalf("hospital MD ontology must be weakly sticky: %s", comp.Report.WSWitness)
	}
	if comp.Report.Sticky {
		t.Error("rule (7)'s marked ward join makes it non-sticky")
	}
}

func TestCompileTransitiveRollups(t *testing.T) {
	o := hospital.NewOntology(hospital.Options{})
	comp, err := o.Compile(core.CompileOptions{TransitiveRollups: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tgd := range comp.Program.TGDs {
		if len(tgd.Head) == 1 && tgd.Head[0].Pred == "InstitutionWard" {
			found = true
		}
	}
	if !found {
		t.Error("transitive rollup rule InstitutionWard missing")
	}
	// Chasing the compiled program materializes the composition.
	res, err := chase.Run(context.Background(), comp.Program, comp.Instance, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Instance.ContainsAtom(dl.A("InstitutionWard", dl.C("H1"), dl.C("W1"))) {
		t.Error("InstitutionWard(H1, W1) must be derivable")
	}
}

func TestSeparabilityHeuristic(t *testing.T) {
	// EGD (6) equates thermometer types, which are non-categorical:
	// not separable by the paper's categorical-head argument.
	o := hospital.NewOntology(hospital.Options{WithConstraints: true})
	sep, reason := o.SeparabilityHeuristic()
	if sep {
		t.Errorf("EGD (6) has non-categorical head variables: %s", reason)
	}
	// An EGD equating ward values (categorical) is separable.
	o2 := hospital.NewOntology(hospital.Options{})
	egd := dl.NewEGD("same-ward", dl.V("w"), dl.V("w2"), []dl.Atom{
		dl.A("PatientWard", dl.V("w"), dl.V("d"), dl.V("p")),
		dl.A("PatientWard", dl.V("w2"), dl.V("d"), dl.V("p")),
	})
	if err := o2.AddEGD(egd); err != nil {
		t.Fatal(err)
	}
	sep2, reason2 := o2.SeparabilityHeuristic()
	if !sep2 {
		t.Errorf("categorical-head EGD must be separable: %s", reason2)
	}
	// Form-(10) rules void the argument.
	o3 := hospital.NewOntology(hospital.Options{WithRuleNine: true})
	if err := o3.AddEGD(egd); err != nil {
		t.Fatal(err)
	}
	if sep3, _ := o3.SeparabilityHeuristic(); sep3 {
		t.Error("form-(10) rules make separability application-dependent")
	}
}

func TestOntologySummary(t *testing.T) {
	o := hospital.NewOntology(hospital.Options{WithRuleNine: true, WithConstraints: true})
	s := o.Summary()
	for _, want := range []string{"Hospital", "Time", "PatientWard", "r7", "upward", "r8", "downward", "e6", "intensive-closed"} {
		if !strings.Contains(s, want) {
			t.Errorf("Summary missing %q:\n%s", want, s)
		}
	}
}

func TestChaseCompiledHospitalExamples(t *testing.T) {
	// End-to-end: chase the compiled ontology and verify the paper's
	// Examples 1/5/6 data generation.
	o := hospital.NewOntology(hospital.Options{WithRuleNine: true})
	comp, err := o.Compile(core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := chase.Run(context.Background(), comp.Program, comp.Instance, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated || !res.Consistent() {
		t.Fatalf("chase failed: saturated=%v violations=%v", res.Saturated, res.Violations)
	}
	// Example 1: Tom in Standard on Sep/5 and Sep/6 (upward).
	for _, day := range []string{"Sep/5", "Sep/6"} {
		if !res.Instance.ContainsAtom(dl.A("PatientUnit", dl.C("Standard"), dl.C(day), dl.C(hospital.TomWaits))) {
			t.Errorf("PatientUnit(Standard, %s, Tom Waits) missing", day)
		}
	}
	// Example 5: Mark gets shifts in W1 and W2 on Sep/9 (downward).
	markShifts := 0
	for _, tup := range res.Instance.Relation("Shifts").Tuples() {
		if tup[2] == dl.C("Mark") {
			markShifts++
		}
	}
	if markShifts != 2 {
		t.Errorf("Mark shifts = %d, want 2 (W1 and W2)", markShifts)
	}
	// Example 6: only Elvis needs an invented unit (Tom's and Lou's
	// discharges are satisfied by upward-derived PatientUnit data).
	if res.NullsCreated < 3 { // 2 shifts nulls + 1 unit null
		t.Errorf("NullsCreated = %d, want >= 3", res.NullsCreated)
	}
	elvisFound := false
	for _, tup := range res.Instance.Relation("PatientUnit").Tuples() {
		if tup[2] == dl.C(hospital.ElvisCostello) {
			elvisFound = true
			if !tup[0].IsNull() {
				t.Errorf("Elvis's unit must be a fresh null, got %v", tup[0])
			}
		}
	}
	if !elvisFound {
		t.Error("rule (9) must derive a PatientUnit tuple for Elvis")
	}
}
