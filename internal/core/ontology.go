package core

import (
	"fmt"

	"repro/internal/datalog"
	"repro/internal/hm"
	"repro/internal/storage"
)

// Ontology is the paper's multidimensional ontology M = (S_M, D_M,
// Σ_M): dimensions (category predicates K and parent-child predicates
// O with their extensions), categorical relations R with extensional
// data, and the intentional part — dimensional rules and constraints.
type Ontology struct {
	dimensions map[string]*hm.Dimension
	dimOrder   []string
	relations  map[string]*CategoricalRelation
	relOrder   []string
	data       *storage.Instance

	rules []*datalog.TGD
	egds  []*datalog.EGD
	ncs   []*datalog.NC

	// rollupPreds maps a parent-child predicate name to the dimension
	// it belongs to; categoryPreds likewise for category predicates.
	rollupPreds   map[string]string
	categoryPreds map[string]string
}

// NewOntology returns an empty ontology.
func NewOntology() *Ontology {
	return &Ontology{
		dimensions:    map[string]*hm.Dimension{},
		relations:     map[string]*CategoricalRelation{},
		data:          storage.NewInstance(),
		rollupPreds:   map[string]string{},
		categoryPreds: map[string]string{},
	}
}

// AddDimension registers a dimension instance.
func (o *Ontology) AddDimension(d *hm.Dimension) error {
	name := d.Name()
	if _, dup := o.dimensions[name]; dup {
		return fmt.Errorf("core: dimension %s already added", name)
	}
	if err := d.Validate(); err != nil {
		return err
	}
	o.dimensions[name] = d
	o.dimOrder = append(o.dimOrder, name)
	for _, cat := range d.Schema().Categories() {
		pred := hm.CategoryPredName(cat)
		if owner, dup := o.categoryPreds[pred]; dup {
			return fmt.Errorf("core: category predicate %s declared by dimensions %s and %s", pred, owner, name)
		}
		o.categoryPreds[pred] = name
	}
	for _, e := range d.Schema().Edges() {
		pred := hm.RollupPredName(e[0], e[1])
		o.rollupPreds[pred] = name
	}
	return nil
}

// Dimension returns a registered dimension.
func (o *Ontology) Dimension(name string) *hm.Dimension { return o.dimensions[name] }

// Dimensions returns the dimension names in registration order.
func (o *Ontology) Dimensions() []string {
	out := make([]string, len(o.dimOrder))
	copy(out, o.dimOrder)
	return out
}

// AddRelation registers a categorical relation schema, checking that
// every categorical attribute names a registered dimension category.
func (o *Ontology) AddRelation(r *CategoricalRelation) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if _, dup := o.relations[r.Name]; dup {
		return fmt.Errorf("core: relation %s already declared", r.Name)
	}
	if o.categoryPreds[r.Name] != "" || o.rollupPreds[r.Name] != "" {
		return fmt.Errorf("core: relation name %s collides with a dimension predicate", r.Name)
	}
	for _, a := range r.Attrs {
		if !a.IsCategorical() {
			continue
		}
		d := o.dimensions[a.Dimension]
		if d == nil {
			return fmt.Errorf("core: relation %s: unknown dimension %s", r.Name, a.Dimension)
		}
		if !d.Schema().HasCategory(a.Category) {
			return fmt.Errorf("core: relation %s: dimension %s has no category %s", r.Name, a.Dimension, a.Category)
		}
	}
	o.relations[r.Name] = r
	o.relOrder = append(o.relOrder, r.Name)
	if _, err := o.data.CreateRelation(r.Name, r.StorageSchema().Attrs...); err != nil {
		return err
	}
	return nil
}

// Relation returns a registered relation schema.
func (o *Ontology) Relation(name string) *CategoricalRelation { return o.relations[name] }

// Relations returns the relation names in registration order.
func (o *Ontology) Relations() []string {
	out := make([]string, len(o.relOrder))
	copy(out, o.relOrder)
	return out
}

// AddFact inserts a tuple into a categorical relation, checking arity
// and that every categorical attribute value is a member of its
// category (eager referential integrity).
func (o *Ontology) AddFact(rel string, values ...string) error {
	return o.addFact(rel, true, values...)
}

// AddFactUnchecked inserts without the category-membership check; used
// to stage dirty data whose violations the form-(1) constraints should
// then surface.
func (o *Ontology) AddFactUnchecked(rel string, values ...string) error {
	return o.addFact(rel, false, values...)
}

func (o *Ontology) addFact(rel string, checked bool, values ...string) error {
	r := o.relations[rel]
	if r == nil {
		return fmt.Errorf("core: unknown relation %s", rel)
	}
	if len(values) != r.Arity() {
		return fmt.Errorf("core: relation %s expects %d values, got %d", rel, r.Arity(), len(values))
	}
	if checked {
		for i, a := range r.Attrs {
			if !a.IsCategorical() {
				continue
			}
			d := o.dimensions[a.Dimension]
			cat, ok := d.CategoryOf(values[i])
			if !ok || cat != a.Category {
				return fmt.Errorf("core: relation %s: value %q is not a member of %s.%s", rel, values[i], a.Dimension, a.Category)
			}
		}
	}
	terms := make([]datalog.Term, len(values))
	for i, v := range values {
		terms[i] = datalog.C(v)
	}
	_, err := o.data.Insert(rel, terms...)
	return err
}

// MustAddFact panics on error; for static example data.
func (o *Ontology) MustAddFact(rel string, values ...string) {
	if err := o.AddFact(rel, values...); err != nil {
		panic(err)
	}
}

// Data returns the ontology's extensional categorical data (without
// the dimension predicates, which Compile emits).
func (o *Ontology) Data() *storage.Instance { return o.data }

// AddRule registers a dimensional rule after validating it against the
// paper's forms (4) and (10) (see ValidateRule).
func (o *Ontology) AddRule(t *datalog.TGD) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if _, err := o.RuleForm(t); err != nil {
		return err
	}
	o.rules = append(o.rules, t)
	return nil
}

// MustAddRule panics on error.
func (o *Ontology) MustAddRule(t *datalog.TGD) {
	if err := o.AddRule(t); err != nil {
		panic(err)
	}
}

// AddEGD registers a dimensional constraint of form (2).
func (o *Ontology) AddEGD(e *datalog.EGD) error {
	if err := e.Validate(); err != nil {
		return err
	}
	o.egds = append(o.egds, e)
	return nil
}

// AddNC registers a dimensional constraint of form (3) (or a
// hand-written referential constraint of form (1)).
func (o *Ontology) AddNC(n *datalog.NC) error {
	if err := n.Validate(); err != nil {
		return err
	}
	o.ncs = append(o.ncs, n)
	return nil
}

// Rules returns the dimensional rules.
func (o *Ontology) Rules() []*datalog.TGD {
	out := make([]*datalog.TGD, len(o.rules))
	copy(out, o.rules)
	return out
}

// EGDs returns the registered EGDs.
func (o *Ontology) EGDs() []*datalog.EGD {
	out := make([]*datalog.EGD, len(o.egds))
	copy(out, o.egds)
	return out
}

// NCs returns the registered negative constraints.
func (o *Ontology) NCs() []*datalog.NC {
	out := make([]*datalog.NC, len(o.ncs))
	copy(out, o.ncs)
	return out
}

// IsRollupPred reports whether pred is a parent-child predicate of a
// registered dimension, returning the dimension name.
func (o *Ontology) IsRollupPred(pred string) (string, bool) {
	d, ok := o.rollupPreds[pred]
	return d, ok
}

// IsCategoryPred reports whether pred is a category predicate,
// returning the owning dimension name.
func (o *Ontology) IsCategoryPred(pred string) (string, bool) {
	d, ok := o.categoryPreds[pred]
	return d, ok
}

// atomKind classifies an atom of a rule with respect to the ontology.
type atomKind uint8

const (
	kindCategoricalRel atomKind = iota
	kindRollup
	kindCategory
	kindUnknown
)

func (o *Ontology) kindOf(a datalog.Atom) atomKind {
	if _, ok := o.relations[a.Pred]; ok {
		return kindCategoricalRel
	}
	if _, ok := o.rollupPreds[a.Pred]; ok {
		return kindRollup
	}
	if _, ok := o.categoryPreds[a.Pred]; ok {
		return kindCategory
	}
	return kindUnknown
}
