package core

import (
	"fmt"

	"repro/internal/datalog"
)

// RuleForm tags a dimensional rule with the paper's syntactic form.
type RuleForm uint8

const (
	// Form4 is the general dimensional rule (4): categorical-relation
	// head atoms, existential variables only at non-categorical
	// positions, navigation driven by parent-child atoms in the body.
	Form4 RuleForm = iota
	// Form10 is the downward rule with incomplete categorical data
	// (10): parent-child atoms may occur in the head and existential
	// variables may stand for unknown category members (rule (9) in
	// the paper).
	Form10
)

// String names the form.
func (f RuleForm) String() string {
	if f == Form10 {
		return "form-(10)"
	}
	return "form-(4)"
}

// Direction classifies the dimensional navigation a rule performs.
type Direction uint8

const (
	// DirectionNone: no level change (pure join/copy).
	DirectionNone Direction = iota
	// Upward navigation: data at a lower category generates data at a
	// higher category (rule (7)).
	Upward
	// Downward navigation: data at a higher category generates data
	// at lower categories (rules (8) and (9)).
	Downward
	// Both: the rule navigates upward and downward simultaneously.
	Both
)

// String names the direction.
func (d Direction) String() string {
	switch d {
	case Upward:
		return "upward"
	case Downward:
		return "downward"
	case Both:
		return "both"
	default:
		return "none"
	}
}

// RuleForm validates a dimensional rule against forms (4) and (10) and
// returns its form. Checks applied:
//
//   - every atom's predicate must be known (categorical relation,
//     parent-child, or category predicate);
//   - join variables (shared between body atoms) may occur in
//     categorical-relation atoms only at categorical positions — the
//     condition Section III uses to place the ontology in WS Datalog±;
//   - for form (4): head atoms are categorical relations and
//     existential variables occupy only non-categorical positions;
//   - parent-child atoms in the head, or existential variables at
//     categorical positions, make it form (10).
func (o *Ontology) RuleForm(t *datalog.TGD) (RuleForm, error) {
	for _, a := range t.Body {
		if o.kindOf(a) == kindUnknown {
			return Form4, fmt.Errorf("core: rule %s: unknown predicate %s in body", t.ID, a.Pred)
		}
	}
	headHasRollup := false
	for _, a := range t.Head {
		switch o.kindOf(a) {
		case kindCategoricalRel:
		case kindRollup:
			headHasRollup = true
		default:
			return Form4, fmt.Errorf("core: rule %s: head atom %s is neither a categorical relation nor a parent-child predicate", t.ID, a)
		}
	}
	if err := o.checkJoinVariables(t); err != nil {
		return Form4, err
	}
	// Locate existential variables at categorical positions.
	exAtCategorical := false
	ex := map[datalog.Term]bool{}
	for _, v := range t.ExistentialVars() {
		ex[v] = true
	}
	for _, a := range t.Head {
		rel, isRel := o.relations[a.Pred]
		for i, tm := range a.Args {
			if !tm.IsVar() || !ex[tm] {
				continue
			}
			if isRel && rel.Attrs[i].IsCategorical() {
				exAtCategorical = true
			}
			if !isRel { // rollup atom in head: positions are categorical
				exAtCategorical = true
			}
		}
	}
	if headHasRollup || exAtCategorical {
		return Form10, nil
	}
	return Form4, nil
}

// checkJoinVariables enforces the WS-enabling condition: variables
// occurring in more than one body atom must appear, within
// categorical-relation atoms, only at categorical positions.
func (o *Ontology) checkJoinVariables(t *datalog.TGD) error {
	occurrences := map[datalog.Term]int{}
	for _, a := range t.Body {
		seenHere := map[datalog.Term]bool{}
		for _, tm := range a.Args {
			if tm.IsVar() && !seenHere[tm] {
				seenHere[tm] = true
				occurrences[tm]++
			}
		}
	}
	for _, a := range t.Body {
		rel, isRel := o.relations[a.Pred]
		if !isRel {
			continue
		}
		for i, tm := range a.Args {
			if !tm.IsVar() || occurrences[tm] < 2 {
				continue
			}
			if !rel.Attrs[i].IsCategorical() {
				return fmt.Errorf("core: rule %s: join variable %s occurs at non-categorical position %s[%d] (%s)",
					t.ID, tm, a.Pred, i, rel.Attrs[i].Name)
			}
		}
	}
	return nil
}

// NavigationDirection analyses which way a dimensional rule navigates,
// per the paper's criterion below rule (4): with a body parent-child
// atom D(parent, child), the rule navigates upward when the child
// variable joins a body categorical relation and the parent variable
// reaches the head, downward in the symmetric case. Parent-child atoms
// in the head (form (10)) always navigate downward.
func (o *Ontology) NavigationDirection(t *datalog.TGD) Direction {
	inBodyRel := map[datalog.Term]bool{}
	for _, a := range t.Body {
		if o.kindOf(a) != kindCategoricalRel {
			continue
		}
		for _, tm := range a.Args {
			if tm.IsVar() {
				inBodyRel[tm] = true
			}
		}
	}
	inHead := map[datalog.Term]bool{}
	for _, a := range t.Head {
		for _, tm := range a.Args {
			if tm.IsVar() {
				inHead[tm] = true
			}
		}
	}
	var up, down bool
	for _, a := range t.Body {
		if o.kindOf(a) != kindRollup || len(a.Args) != 2 {
			continue
		}
		parent, child := a.Args[0], a.Args[1]
		if child.IsVar() && inBodyRel[child] && parent.IsVar() && inHead[parent] {
			up = true
		}
		if parent.IsVar() && inBodyRel[parent] && child.IsVar() && inHead[child] {
			down = true
		}
	}
	for _, a := range t.Head {
		if o.kindOf(a) == kindRollup {
			down = true
		}
	}
	switch {
	case up && down:
		return Both
	case up:
		return Upward
	case down:
		return Downward
	default:
		return DirectionNone
	}
}

// IsUpwardOnly reports whether every dimensional rule navigates upward
// (or not at all) — the class of MD ontologies for which Section IV
// offers first-order rewriting instead of the chase.
func (o *Ontology) IsUpwardOnly() bool {
	for _, t := range o.rules {
		switch o.NavigationDirection(t) {
		case Downward, Both:
			return false
		}
	}
	return true
}
