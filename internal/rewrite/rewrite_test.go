package rewrite

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	dl "repro/internal/datalog"
	"repro/internal/hospital"
	"repro/internal/qa"
	"repro/internal/storage"
)

// upwardOntology compiles the hospital ontology with rule (7) only —
// the paper's upward-only case where FO rewriting applies.
func upwardOntology(t *testing.T) (*dl.Program, *storage.Instance) {
	t.Helper()
	o := core.NewOntology()
	for _, err := range []error{
		o.AddDimension(hospital.HospitalDimension()),
		o.AddDimension(hospital.TimeDimension()),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, rel := range []*core.CategoricalRelation{
		core.NewCategoricalRelation("PatientWard",
			core.Cat("Ward", "Hospital", "Ward"), core.Cat("Day", "Time", "Day"), core.NonCat("Patient")),
		core.NewCategoricalRelation("PatientUnit",
			core.Cat("Unit", "Hospital", "Unit"), core.Cat("Day", "Time", "Day"), core.NonCat("Patient")),
	} {
		if err := o.AddRelation(rel); err != nil {
			t.Fatal(err)
		}
	}
	o.MustAddFact("PatientWard", "W1", "Sep/5", hospital.TomWaits)
	o.MustAddFact("PatientWard", "W2", "Sep/6", hospital.TomWaits)
	o.MustAddFact("PatientWard", "W3", "Sep/7", hospital.TomWaits)
	o.MustAddFact("PatientWard", "W4", "Sep/9", hospital.TomWaits)
	o.MustAddRule(hospital.RuleSeven())
	if !o.IsUpwardOnly() {
		t.Fatal("fixture must be upward-only")
	}
	comp, err := o.Compile(core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return comp.Program, comp.Instance
}

func TestRewriteUpwardQuery(t *testing.T) {
	prog, _ := upwardOntology(t)
	// Q(u,d) <- PatientUnit(u,d,"Tom Waits") unfolds into the base
	// query plus the rule-(7) expansion.
	q := dl.NewQuery(dl.A("Q", dl.V("u"), dl.V("d")),
		dl.A("PatientUnit", dl.V("u"), dl.V("d"), dl.C(hospital.TomWaits)))
	ucq, err := Rewrite(prog, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ucq) != 2 {
		t.Fatalf("UCQ size = %d, want 2:\n%v", len(ucq), ucq)
	}
	// One disjunct queries PatientUnit directly, the other joins
	// PatientWard with UnitWard.
	var direct, unfolded bool
	for _, cq := range ucq {
		preds := map[string]bool{}
		for _, a := range cq.Body {
			preds[a.Pred] = true
		}
		if preds["PatientUnit"] {
			direct = true
		}
		if preds["PatientWard"] && preds["UnitWard"] {
			unfolded = true
		}
	}
	if !direct || !unfolded {
		t.Errorf("UCQ missing expected disjuncts: %v", ucq)
	}
}

func TestRewriteAnswersMatchChase(t *testing.T) {
	// Section IV: for upward-only ontologies the rewritten query
	// evaluated on the extensional data equals chase-based certain
	// answers (experiment C2's correctness leg).
	prog, db := upwardOntology(t)
	queries := []*dl.Query{
		dl.NewQuery(dl.A("Q", dl.V("u"), dl.V("d")),
			dl.A("PatientUnit", dl.V("u"), dl.V("d"), dl.C(hospital.TomWaits))),
		dl.NewQuery(dl.A("Q", dl.V("d")),
			dl.A("PatientUnit", dl.C("Standard"), dl.V("d"), dl.V("p"))),
		dl.NewQuery(dl.A("Q", dl.V("p")),
			dl.A("PatientUnit", dl.V("u"), dl.V("d"), dl.V("p")),
			dl.A("MonthDay", dl.C("2005-09"), dl.V("d"))),
		dl.NewQuery(dl.A("Q", dl.V("u")),
			dl.A("PatientUnit", dl.V("u"), dl.C("Sep/5"), dl.V("p"))).
			WithCond(dl.OpNe, dl.V("u"), dl.C("Intensive")),
	}
	for i, q := range queries {
		viaRewrite, err := Answer(context.Background(), prog, db, q, Options{})
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		viaChase, err := qa.CertainAnswersViaChase(context.Background(), prog, db, q, qa.ChaseOptions{})
		if err != nil {
			t.Fatalf("query %d oracle: %v", i, err)
		}
		if !viaRewrite.Equal(viaChase) {
			t.Errorf("query %d (%s):\nrewrite: %voracle: %v", i, q, viaRewrite, viaChase)
		}
	}
}

func TestRewriteMultiLevel(t *testing.T) {
	// Two chained upward rules: Ward -> Unit -> Institution. The
	// rewriting must unfold transitively (depth 2).
	prog, db := upwardOntology(t)
	prog.AddTGD(dl.NewTGD("r-up2",
		[]dl.Atom{dl.A("PatientInstitution", dl.V("i"), dl.V("d"), dl.V("p"))},
		[]dl.Atom{
			dl.A("PatientUnit", dl.V("u"), dl.V("d"), dl.V("p")),
			dl.A("InstitutionUnit", dl.V("i"), dl.V("u")),
		}))
	q := dl.NewQuery(dl.A("Q", dl.V("i")),
		dl.A("PatientInstitution", dl.V("i"), dl.V("d"), dl.C(hospital.TomWaits)))
	ucq, err := Rewrite(prog, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Disjuncts: direct; via r-up2; via r-up2 + r7.
	if len(ucq) != 3 {
		t.Fatalf("UCQ size = %d, want 3:\n%v", len(ucq), ucq)
	}
	ans, err := Answer(context.Background(), prog, db, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Tom was in wards of Standard/Intensive/Terminal, all under H1.
	if ans.Len() != 1 || ans.All()[0].Terms[0] != dl.C("H1") {
		t.Errorf("answers = %v, want H1", ans)
	}
	viaChase, err := qa.CertainAnswersViaChase(context.Background(), prog, db, q, qa.ChaseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Equal(viaChase) {
		t.Errorf("rewrite %v != chase %v", ans, viaChase)
	}
}

func TestRewriteExistentialNonCategorical(t *testing.T) {
	// Rule (8) has ∃z in the head. Rewriting a query that does not
	// constrain the shift attribute still works: z unifies with an
	// unshared variable.
	o := hospital.NewOntology(hospital.Options{})
	comp, err := o.Compile(core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := dl.NewQuery(dl.A("Q", dl.V("d")),
		dl.A("Shifts", dl.C("W1"), dl.V("d"), dl.C("Mark"), dl.V("s")))
	ucq, err := Rewrite(comp.Program, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ucq) != 2 {
		t.Fatalf("UCQ size = %d, want 2:\n%v", len(ucq), ucq)
	}
	ans, err := Answer(context.Background(), comp.Program, comp.Instance, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 1 || ans.All()[0].Terms[0] != dl.C("Sep/9") {
		t.Errorf("answers = %v, want Sep/9 (Example 5 via rewriting)", ans)
	}
	// A query binding the shift to a constant cannot use rule (8).
	qc := dl.NewQuery(dl.A("Q", dl.V("d")),
		dl.A("Shifts", dl.C("W2"), dl.V("d"), dl.C("Mark"), dl.C("night")))
	ucq2, err := Rewrite(comp.Program, qc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ucq2) != 1 {
		t.Errorf("constant shift blocks unfolding: UCQ = %v", ucq2)
	}
	// A query where the shift is an answer variable cannot either.
	qa2 := dl.NewQuery(dl.A("Q", dl.V("s")),
		dl.A("Shifts", dl.C("W2"), dl.V("d"), dl.C("Mark"), dl.V("s")))
	ucq3, err := Rewrite(comp.Program, qa2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ucq3) != 1 {
		t.Errorf("answer-variable shift blocks unfolding: UCQ = %v", ucq3)
	}
}

func TestRewritePieceAbsorption(t *testing.T) {
	// Rule (9)'s conjunctive head: a query joining on the invented
	// unit must absorb both atoms into one piece and unfold to
	// DischargePatients.
	o := hospital.NewOntology(hospital.Options{WithRuleNine: true})
	comp, err := o.Compile(core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := dl.NewQuery(dl.A("Q", dl.V("p")),
		dl.A("InstitutionUnit", dl.C("H2"), dl.V("u")),
		dl.A("PatientUnit", dl.V("u"), dl.C("Oct/5"), dl.V("p")))
	ucq, err := Rewrite(comp.Program, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	foundDischarge := false
	for _, cq := range ucq {
		for _, a := range cq.Body {
			if a.Pred == "DischargePatients" {
				foundDischarge = true
			}
		}
	}
	if !foundDischarge {
		t.Errorf("piece rewriting must reach DischargePatients:\n%v", ucq)
	}
	ans, err := Answer(context.Background(), comp.Program, comp.Instance, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 1 || ans.All()[0].Terms[0] != dl.C(hospital.ElvisCostello) {
		t.Errorf("answers = %v, want Elvis Costello", ans)
	}
}

func TestRewriteBudget(t *testing.T) {
	// A recursive rule set is not FO-rewritable: the budget aborts.
	prog := dl.NewProgram()
	prog.AddTGD(dl.NewTGD("base",
		[]dl.Atom{dl.A("Reach", dl.V("x"), dl.V("y"))},
		[]dl.Atom{dl.A("Next", dl.V("x"), dl.V("y"))}))
	prog.AddTGD(dl.NewTGD("step",
		[]dl.Atom{dl.A("Reach", dl.V("x"), dl.V("z"))},
		[]dl.Atom{dl.A("Reach", dl.V("x"), dl.V("y")), dl.A("Next", dl.V("y"), dl.V("z"))}))
	q := dl.NewQuery(dl.A("Q", dl.V("x")), dl.A("Reach", dl.V("x"), dl.C("end")))
	if _, err := Rewrite(prog, q, Options{MaxRewritings: 50}); err == nil {
		t.Error("recursive program must exceed the rewriting budget")
	}
}

func TestSubsumptionPruning(t *testing.T) {
	prog, _ := upwardOntology(t)
	// Add a redundant rule whose unfolding duplicates rule (7)'s
	// modulo an extra atom: subsumption prunes the specialization.
	prog.AddTGD(dl.NewTGD("r7-redundant",
		[]dl.Atom{dl.A("PatientUnit", dl.V("u"), dl.V("d"), dl.V("p"))},
		[]dl.Atom{
			dl.A("PatientWard", dl.V("w"), dl.V("d"), dl.V("p")),
			dl.A("UnitWard", dl.V("u"), dl.V("w")),
			dl.A("Ward", dl.V("w")),
		}))
	q := dl.NewQuery(dl.A("Q", dl.V("u")),
		dl.A("PatientUnit", dl.V("u"), dl.V("d"), dl.V("p")))
	pruned, err := Rewrite(prog, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	unpruned, err := Rewrite(prog, q, Options{DisableSubsumption: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned) >= len(unpruned) {
		t.Errorf("subsumption must prune: pruned=%d unpruned=%d", len(pruned), len(unpruned))
	}
	if len(pruned) != 2 { // direct + rule (7); redundant variant subsumed
		t.Errorf("pruned UCQ = %d CQs, want 2:\n%v", len(pruned), pruned)
	}
}

func TestRewriteRejectsNegation(t *testing.T) {
	prog, _ := upwardOntology(t)
	q := dl.NewQuery(dl.A("Q", dl.V("u")),
		dl.A("PatientUnit", dl.V("u"), dl.V("d"), dl.V("p"))).
		WithNegated(dl.A("Ward", dl.V("u")))
	if _, err := Rewrite(prog, q, Options{}); err == nil {
		t.Error("negated atoms must be rejected")
	}
}

func TestRewriteCarriesConditions(t *testing.T) {
	prog, db := upwardOntology(t)
	q := dl.NewQuery(dl.A("Q", dl.V("d")),
		dl.A("PatientUnit", dl.C("Standard"), dl.V("d"), dl.C(hospital.TomWaits))).
		WithCond(dl.OpGe, dl.V("d"), dl.C("Sep/6"))
	ucq, err := Rewrite(prog, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cq := range ucq {
		if len(cq.Conds) != 1 {
			t.Errorf("conditions lost in rewriting: %v", cq)
		}
	}
	ans, err := Answer(context.Background(), prog, db, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 1 || ans.All()[0].Terms[0] != dl.C("Sep/6") {
		t.Errorf("answers = %v, want Sep/6", ans)
	}
}

func TestCanonicalKeyDeduplicates(t *testing.T) {
	q1 := dl.NewQuery(dl.A("Q", dl.V("x")), dl.A("P", dl.V("x"), dl.V("y")))
	q2 := dl.NewQuery(dl.A("Q", dl.V("a")), dl.A("P", dl.V("a"), dl.V("b")))
	if canonicalKey(q1) != canonicalKey(q2) {
		t.Error("alpha-equivalent queries must share a key")
	}
	q3 := dl.NewQuery(dl.A("Q", dl.V("x")), dl.A("P", dl.V("y"), dl.V("x")))
	if canonicalKey(q1) == canonicalKey(q3) {
		t.Error("structurally different queries must differ")
	}
}

func TestRewriteStringsMentionRuleBodies(t *testing.T) {
	prog, _ := upwardOntology(t)
	q := dl.NewQuery(dl.A("Q", dl.V("u"), dl.V("d")),
		dl.A("PatientUnit", dl.V("u"), dl.V("d"), dl.C(hospital.TomWaits)))
	ucq, err := Rewrite(prog, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	joined := ""
	for _, cq := range ucq {
		joined += cq.String() + "\n"
	}
	if !strings.Contains(joined, "PatientWard") || !strings.Contains(joined, "UnitWard") {
		t.Errorf("rewriting output unexpected:\n%s", joined)
	}
}
