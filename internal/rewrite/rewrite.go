// Package rewrite implements first-order (UCQ) query rewriting for MD
// ontologies (Section IV of the paper): for upward-navigating
// ontologies, a conjunctive query over intensional categorical
// relations is compiled into a union of conjunctive queries that can
// be evaluated directly on the extensional database — no chase, no
// data generation.
//
// The rewriter is a piece-based unfolding procedure in the style of
// Gottlob–Orsi–Pieris XRewrite: a query atom (or a piece of atoms
// sharing variables captured by existential head variables) is
// replaced by the body of a rule whose head produces it. It terminates
// on the paper's upward-only ontologies (level-acyclic unfolding) and
// guards against non-FO-rewritable inputs with a rewriting budget.
package rewrite

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/datalog"
	"repro/internal/eval"
	"repro/internal/storage"
)

// Options configures the rewriter.
type Options struct {
	// MaxRewritings aborts when the UCQ exceeds this many CQs
	// (0 = DefaultMaxRewritings); recursive rule sets are not
	// FO-rewritable and hit this bound.
	MaxRewritings int
	// DisableSubsumption keeps subsumed CQs (ablation benchmark).
	DisableSubsumption bool
}

// DefaultMaxRewritings bounds the UCQ size.
const DefaultMaxRewritings = 10_000

// Rewrite unfolds the query against the program's TGDs into a union of
// conjunctive queries over extensional predicates (and any predicates
// the rules cannot produce). Queries with negated atoms are rejected.
func Rewrite(prog *datalog.Program, q *datalog.Query, opts Options) ([]*datalog.Query, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(q.Negated) > 0 {
		return nil, fmt.Errorf("rewrite: query %s has negated atoms", q.Head.Pred)
	}
	limit := opts.MaxRewritings
	if limit <= 0 {
		limit = DefaultMaxRewritings
	}
	fresh := datalog.NewCounter("ρ")

	seen := map[string]bool{}
	var result []*datalog.Query
	queue := []*datalog.Query{q.Clone()}
	seen[canonicalKey(q)] = true

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		result = append(result, cur)
		if len(result)+len(queue) > limit {
			return nil, fmt.Errorf("rewrite: more than %d rewritings; the rule set is not FO-rewritable within the budget (downward or recursive rules?)", limit)
		}
		for _, next := range rewriteStep(prog, cur, fresh) {
			k := canonicalKey(next)
			if !seen[k] {
				seen[k] = true
				queue = append(queue, next)
			}
		}
	}
	if !opts.DisableSubsumption {
		result = pruneSubsumed(result)
	}
	return result, nil
}

// rewriteStep produces every single-step unfolding of the query.
func rewriteStep(prog *datalog.Program, q *datalog.Query, fresh *datalog.Counter) []*datalog.Query {
	var out []*datalog.Query
	for i := range q.Body {
		for _, tgd := range prog.TGDs {
			producesAtom := false
			for _, h := range tgd.Head {
				if h.Pred == q.Body[i].Pred {
					producesAtom = true
					break
				}
			}
			if !producesAtom {
				continue
			}
			ren := datalog.RenameApart(tgd, fresh)
			out = append(out, unfoldVia(q, i, ren)...)
		}
	}
	return out
}

// unfoldVia unfolds query atom i through the (renamed) rule,
// considering every head atom and growing pieces when existential
// markers capture shared variables.
func unfoldVia(q *datalog.Query, i int, ren *datalog.TGD) []*datalog.Query {
	exVars := map[datalog.Term]bool{}
	for _, z := range ren.ExistentialVars() {
		exVars[z] = true
	}
	var out []*datalog.Query
	goal := q.Body[i]
	rest := make([]datalog.Atom, 0, len(q.Body)-1)
	rest = append(rest, q.Body[:i]...)
	rest = append(rest, q.Body[i+1:]...)
	for _, head := range ren.Head {
		sigma, ok := datalog.Unify(goal, head, datalog.NewSubst())
		if !ok {
			continue
		}
		out = append(out, growPiece(q, ren, exVars, sigma, rest)...)
	}
	return out
}

// growPiece checks marker soundness, absorbs goals captured by
// existential markers, and emits the unfolded CQ when the piece is
// closed.
func growPiece(q *datalog.Query, ren *datalog.TGD, exVars map[datalog.Term]bool, sigma datalog.Subst, rest []datalog.Atom) []*datalog.Query {
	markers := map[datalog.Term]bool{}
	for z := range exVars {
		img := sigma.Apply(z)
		if !img.IsVar() {
			return nil // existential bound to a constant: unsound
		}
		markers[img] = true
	}
	// Protected variables must not be captured: answer variables and
	// condition variables survive into the rewritten query.
	for _, av := range q.Head.Vars() {
		if img := sigma.Apply(av); img.IsVar() && markers[img] {
			return nil
		}
	}
	for _, c := range q.Conds {
		for _, tm := range []datalog.Term{c.L, c.R} {
			if tm.IsVar() {
				if img := sigma.Apply(tm); img.IsVar() && markers[img] {
					return nil
				}
			}
		}
	}
	// A remaining goal mentioning a marker must join the piece.
	pending := -1
	for j, g := range rest {
		ga := sigma.ApplyAtom(g)
		for _, tm := range ga.Args {
			if tm.IsVar() && markers[tm] {
				pending = j
				break
			}
		}
		if pending >= 0 {
			break
		}
	}
	if pending < 0 {
		body := append(sigma.ApplyAtoms(ren.Body), sigma.ApplyAtoms(rest)...)
		nq := &datalog.Query{
			Head: sigma.ApplyAtom(q.Head),
			Body: body,
		}
		for _, c := range q.Conds {
			nq.Conds = append(nq.Conds, datalog.Comparison{
				Op: c.Op,
				L:  sigma.Apply(c.L),
				R:  sigma.Apply(c.R),
			})
		}
		return []*datalog.Query{nq}
	}
	var out []*datalog.Query
	goal := sigma.ApplyAtom(rest[pending])
	remaining := make([]datalog.Atom, 0, len(rest)-1)
	remaining = append(remaining, rest[:pending]...)
	remaining = append(remaining, rest[pending+1:]...)
	for _, head := range ren.Head {
		sigma2, ok := datalog.Unify(goal, sigma.ApplyAtom(head), sigma)
		if !ok {
			continue
		}
		out = append(out, growPiece(q, ren, exVars, sigma2, remaining)...)
	}
	return out
}

// canonicalKey renders a CQ up to variable renaming, for duplicate
// elimination in the rewriting queue.
func canonicalKey(q *datalog.Query) string {
	ren := map[string]string{}
	next := 0
	canon := func(t datalog.Term) string {
		switch t.Kind {
		case datalog.KindVar:
			if _, ok := ren[t.Name]; !ok {
				ren[t.Name] = fmt.Sprintf("v%d", next)
				next++
			}
			return "?" + ren[t.Name]
		case datalog.KindNull:
			return "⊥" + t.Name
		default:
			return "c" + t.Name
		}
	}
	var b strings.Builder
	writeAtom := func(a datalog.Atom) {
		b.WriteString(a.Pred)
		b.WriteByte('(')
		for k, t := range a.Args {
			if k > 0 {
				b.WriteByte(',')
			}
			b.WriteString(canon(t))
		}
		b.WriteByte(')')
	}
	writeAtom(q.Head)
	b.WriteString(":-")
	// Sort body atoms by a stable pre-rendering to tolerate atom
	// reorderings (a weak canonical form: exact canonicalization is
	// graph isomorphism; this is a sound dedup key — equal keys imply
	// equal queries up to renaming only when orderings align, so it
	// may keep some duplicates, never drops distinct CQs).
	body := datalog.CloneAtoms(q.Body)
	sort.SliceStable(body, func(i, j int) bool {
		return body[i].String() < body[j].String()
	})
	for _, a := range body {
		writeAtom(a)
		b.WriteByte(';')
	}
	for _, c := range q.Conds {
		b.WriteString(canon(c.L))
		b.WriteString(c.Op.String())
		b.WriteString(canon(c.R))
		b.WriteByte(';')
	}
	return b.String()
}

// pruneSubsumed removes CQs subsumed by a more general CQ in the set.
// Subsumption is checked only between queries with identical condition
// lists (conservative but sound).
func pruneSubsumed(qs []*datalog.Query) []*datalog.Query {
	condKey := func(q *datalog.Query) string {
		parts := make([]string, len(q.Conds))
		for i, c := range q.Conds {
			parts[i] = c.String()
		}
		sort.Strings(parts)
		return strings.Join(parts, "&")
	}
	var out []*datalog.Query
	for i, q := range qs {
		subsumed := false
		for j, p := range qs {
			if i == j || subsumed {
				continue
			}
			if condKey(p) != condKey(q) {
				continue
			}
			// p subsumes q: θ(head_p)=head_q and θ(body_p) ⊆ body_q.
			if len(p.Body) <= len(q.Body) &&
				datalog.ConjunctionSubsumes(
					append([]datalog.Atom{p.Head}, p.Body...),
					append([]datalog.Atom{q.Head}, q.Body...)) {
				// Break ties (mutual subsumption) by keeping the
				// earlier query.
				if len(p.Body) < len(q.Body) || j < i {
					subsumed = true
				}
			}
		}
		if !subsumed {
			out = append(out, q)
		}
	}
	return out
}

// Answer rewrites the query and evaluates the UCQ over the extensional
// instance, filtering answers that contain labeled nulls (certain
// answers). For upward-only MD ontologies this is equivalent to
// chase-based certain answers, without materializing any data. ctx is
// checked between UCQ disjuncts.
func Answer(ctx context.Context, prog *datalog.Program, db *storage.Instance, q *datalog.Query, opts Options) (*datalog.AnswerSet, error) {
	ucq, err := Rewrite(prog, q, opts)
	if err != nil {
		return nil, err
	}
	raw, err := eval.EvalUCQ(ctx, ucq, db)
	if err != nil {
		return nil, err
	}
	certain := datalog.NewAnswerSet()
	for _, a := range raw.All() {
		if !a.HasNull() {
			certain.Add(a)
		}
	}
	return certain, nil
}
