package eval

import (
	"context"
	"testing"
	"testing/quick"

	dl "repro/internal/datalog"
	"repro/internal/storage"
)

// evalAt runs the closure program at one parallelism degree.
func evalAt(t *testing.T, p *Program, db *storage.Instance, parallelism int) *storage.Instance {
	t.Helper()
	strata, err := p.Stratify()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	out := db.CloneDetached()
	st := NewState(strata, out)
	st.SetParallelism(parallelism)
	if err := st.Init(context.Background()); err != nil {
		t.Fatal(err)
	}
	return out
}

func closureProgram() *Program {
	p := NewProgram()
	p.Add(NewRule("base", dl.A("Reach", dl.V("x"), dl.V("y")), dl.A("Edge", dl.V("x"), dl.V("y"))))
	p.Add(NewRule("step", dl.A("Reach", dl.V("x"), dl.V("z")),
		dl.A("Reach", dl.V("x"), dl.V("y")), dl.A("Edge", dl.V("y"), dl.V("z"))))
	return p
}

// TestQuickParallelInitMatchesSequential pins the parallel round loop
// (p=4: sharded full passes, chunked delta passes, deterministic batch
// merges) to the sequential engine (p=1) on random graphs — the
// fixpoints must hold exactly the same tuples.
func TestQuickParallelInitMatchesSequential(t *testing.T) {
	f := func(gv graphValue) bool {
		p := closureProgram()
		p.Add(NewRule("n1", dl.A("Node", dl.V("x")), dl.A("Edge", dl.V("x"), dl.V("y"))))
		p.Add(NewRule("n2", dl.A("Node", dl.V("y")), dl.A("Edge", dl.V("x"), dl.V("y"))))
		p.Add(NewRule("sink", dl.A("Sink", dl.V("x")), dl.A("Node", dl.V("x"))).
			WithNegated(dl.A("Edge", dl.V("x"), dl.V("x"))))
		seq := evalAt(t, p, gv.DB, 1)
		par := evalAt(t, p, gv.DB, 4)
		return par.Equal(seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickParallelExtendMatchesSequential pins the parallel
// incremental path: a state extended delta-by-delta at p=4 must land
// on the same fixpoint as the sequential state.
func TestQuickParallelExtendMatchesSequential(t *testing.T) {
	f := func(base, delta graphValue) bool {
		p := closureProgram()
		strata, err := p.Stratify()
		if err != nil {
			return false
		}
		states := make([]*State, 2)
		for i, deg := range []int{1, 4} {
			st := NewState(strata, base.DB.CloneDetached())
			st.SetParallelism(deg)
			if err := st.Init(context.Background()); err != nil {
				return false
			}
			states[i] = st
		}
		var facts []Fact
		in := states[0].Instance().Interner()
		for _, row := range delta.DB.Relation("Edge").Rows() {
			// Both states are detached clones of one base, so ids line
			// up only for terms the base interner already knew; re-map
			// through terms to be safe.
			terms := delta.DB.Interner().Terms(row, nil)
			facts = append(facts, Fact{Pred: "Edge", Row: in.IDs(terms, nil)})
		}
		var facts4 []Fact
		in4 := states[1].Instance().Interner()
		for _, row := range delta.DB.Relation("Edge").Rows() {
			terms := delta.DB.Interner().Terms(row, nil)
			facts4 = append(facts4, Fact{Pred: "Edge", Row: in4.IDs(terms, nil)})
		}
		if _, err := states[0].Extend(context.Background(), facts); err != nil {
			return false
		}
		if _, err := states[1].Extend(context.Background(), facts4); err != nil {
			return false
		}
		return states[0].Instance().Equal(states[1].Instance())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestParallelCancellation is the per-worker-unit cancellation
// regression: an already-cancelled context must fail Init at every
// parallelism degree, before any derivation work runs to completion.
func TestParallelCancellation(t *testing.T) {
	db := storage.NewInstance()
	for i := 0; i < 8; i++ {
		db.MustInsert("Edge", dl.C(string(rune('a'+i))), dl.C(string(rune('a'+(i+1)%8))))
	}
	for _, deg := range []int{1, 4} {
		p := closureProgram()
		strata, err := p.Stratify()
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		st := NewState(strata, db.CloneDetached())
		st.SetParallelism(deg)
		if err := st.Init(ctx); err == nil {
			t.Fatalf("p=%d: Init with cancelled context succeeded", deg)
		}
		// The state recovers with a live context.
		st2 := NewState(strata, db.CloneDetached())
		st2.SetParallelism(deg)
		if err := st2.Init(context.Background()); err != nil {
			t.Fatalf("p=%d: %v", deg, err)
		}
		ctx2, cancel2 := context.WithCancel(context.Background())
		cancel2()
		if _, err := st2.Extend(ctx2, []Fact{{Pred: "Edge", Row: st2.Instance().Relation("Edge").Row(0)}}); err == nil {
			t.Fatalf("p=%d: Extend with cancelled context succeeded", deg)
		}
	}
}
