package eval

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/datalog"
	"repro/internal/storage"
)

// evalSplit is a random EDB split into a base and a delta batch, over
// the two-stratum positive program of chainProgram.
type evalSplit struct {
	Base  *storage.Instance
	Delta []datalog.Atom
}

func (evalSplit) Generate(r *rand.Rand, _ int) reflect.Value {
	consts := []string{"a", "b", "c", "d"}
	randAtom := func() datalog.Atom {
		x := datalog.C(consts[r.Intn(len(consts))])
		y := datalog.C(consts[r.Intn(len(consts))])
		if r.Intn(2) == 0 {
			return datalog.A("E", x, y)
		}
		return datalog.A("Mark", x)
	}
	db := storage.NewInstance()
	for i := 1 + r.Intn(8); i > 0; i-- {
		a := randAtom()
		db.MustInsert(a.Pred, a.Args...)
	}
	var delta []datalog.Atom
	for i := 1 + r.Intn(8); i > 0; i-- {
		delta = append(delta, randAtom())
	}
	return reflect.ValueOf(evalSplit{Base: db, Delta: delta})
}

// chainProgram: transitive closure of E, then paths ending in a
// marked node — recursion plus a second stratum-free dependency, all
// positive (Extend-compatible).
func chainProgram() *Program {
	p := NewProgram()
	p.Add(NewRule("t1", datalog.A("T", datalog.V("x"), datalog.V("y")),
		datalog.A("E", datalog.V("x"), datalog.V("y"))))
	p.Add(NewRule("t2", datalog.A("T", datalog.V("x"), datalog.V("z")),
		datalog.A("T", datalog.V("x"), datalog.V("y")),
		datalog.A("E", datalog.V("y"), datalog.V("z"))))
	p.Add(NewRule("good", datalog.A("Good", datalog.V("x")),
		datalog.A("T", datalog.V("x"), datalog.V("y")),
		datalog.A("Mark", datalog.V("y"))))
	return p
}

func TestQuickStateExtendMatchesEval(t *testing.T) {
	f := func(w evalSplit) bool {
		// Scratch: full evaluation over base+delta.
		combined := w.Base.Clone()
		for _, a := range w.Delta {
			if _, err := combined.InsertAtom(a); err != nil {
				t.Fatal(err)
			}
		}
		want, err := Eval(context.Background(), chainProgram(), combined)
		if err != nil {
			t.Fatal(err)
		}

		// Incremental: Init on base, then Extend with the delta rows.
		strata, err := chainProgram().Stratify()
		if err != nil {
			t.Fatal(err)
		}
		inst := w.Base.CloneDetached()
		st := NewState(strata, inst)
		if err := st.Init(context.Background()); err != nil {
			t.Fatal(err)
		}
		var facts []Fact
		for _, a := range w.Delta {
			row := inst.Interner().IDs(a.Args, nil)
			facts = append(facts, Fact{Pred: a.Pred, Row: row})
		}
		if _, err := st.Extend(context.Background(), facts); err != nil {
			t.Fatal(err)
		}
		return st.Instance().Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStateExtendRejectsNegation(t *testing.T) {
	p := NewProgram()
	p.Add(NewRule("pos", datalog.A("P", datalog.V("x")), datalog.A("E", datalog.V("x"), datalog.V("y"))))
	neg := NewRule("neg", datalog.A("Q", datalog.V("x")), datalog.A("E", datalog.V("x"), datalog.V("y")))
	neg.WithNegated(datalog.A("Mark", datalog.V("x")))
	p.Add(neg)
	strata, err := p.Stratify()
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewInstance()
	db.MustInsert("E", datalog.C("a"), datalog.C("b"))
	st := NewState(strata, db)
	if st.Incremental() {
		t.Fatal("program with negation reported incremental")
	}
	if err := st.Init(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Extend(context.Background(), nil); err == nil {
		t.Fatal("Extend on a negated program succeeded")
	}
}

func TestEvalCancellation(t *testing.T) {
	db := storage.NewInstance()
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}, {"d", "e"}} {
		db.MustInsert("E", datalog.C(e[0]), datalog.C(e[1]))
	}
	db.MustInsert("Mark", datalog.C("e"))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Eval(ctx, chainProgram(), db); err == nil {
		t.Fatal("want cancellation error, got nil")
	}
}
