package eval

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	dl "repro/internal/datalog"
	"repro/internal/storage"
)

// graphValue generates a random edge relation for closure programs.
type graphValue struct {
	DB *storage.Instance
}

func (graphValue) Generate(r *rand.Rand, _ int) reflect.Value {
	db := storage.NewInstance()
	nodes := 2 + r.Intn(6)
	edges := 1 + r.Intn(12)
	for i := 0; i < edges; i++ {
		a := fmt.Sprintf("n%d", r.Intn(nodes))
		b := fmt.Sprintf("n%d", r.Intn(nodes))
		db.MustInsert("Edge", dl.C(a), dl.C(b))
	}
	return reflect.ValueOf(graphValue{DB: db})
}

// naiveEval is a reference implementation: apply every rule against
// the full instance until nothing changes (no delta optimization).
// Used to cross-check the semi-naive engine.
func naiveEval(p *Program, db *storage.Instance) (*storage.Instance, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	strata, err := p.Stratify()
	if err != nil {
		return nil, err
	}
	out := db.Clone()
	for _, rules := range strata {
		for {
			changed := false
			for _, r := range rules {
				var derr error
				out.MatchConjunction(r.Body, dl.NewSubst(), func(s dl.Subst) bool {
					ok, err := ruleFilters(r, s, out)
					if err != nil {
						derr = err
						return false
					}
					if !ok {
						return true
					}
					isNew, err := out.InsertAtom(s.ApplyAtom(r.Head))
					if err != nil {
						derr = err
						return false
					}
					if isNew {
						changed = true
					}
					return true
				})
				if derr != nil {
					return nil, derr
				}
			}
			if !changed {
				break
			}
		}
	}
	return out, nil
}

func TestQuickSemiNaiveMatchesNaive(t *testing.T) {
	f := func(gv graphValue) bool {
		p := NewProgram()
		p.Add(NewRule("base", dl.A("Reach", dl.V("x"), dl.V("y")), dl.A("Edge", dl.V("x"), dl.V("y"))))
		p.Add(NewRule("step", dl.A("Reach", dl.V("x"), dl.V("z")),
			dl.A("Reach", dl.V("x"), dl.V("y")), dl.A("Edge", dl.V("y"), dl.V("z"))))
		fast, err := Eval(context.Background(), p, gv.DB)
		if err != nil {
			return false
		}
		slow, err := naiveEval(p, gv.DB)
		if err != nil {
			return false
		}
		return fast.Equal(slow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickSemiNaiveMatchesNaiveWithNegation(t *testing.T) {
	f := func(gv graphValue) bool {
		p := NewProgram()
		p.Add(NewRule("base", dl.A("Reach", dl.V("x"), dl.V("y")), dl.A("Edge", dl.V("x"), dl.V("y"))))
		p.Add(NewRule("step", dl.A("Reach", dl.V("x"), dl.V("z")),
			dl.A("Reach", dl.V("x"), dl.V("y")), dl.A("Edge", dl.V("y"), dl.V("z"))))
		p.Add(NewRule("n1", dl.A("Node", dl.V("x")), dl.A("Edge", dl.V("x"), dl.V("y"))))
		p.Add(NewRule("n2", dl.A("Node", dl.V("y")), dl.A("Edge", dl.V("x"), dl.V("y"))))
		p.Add(NewRule("sink", dl.A("Sink", dl.V("x")), dl.A("Node", dl.V("x"))).
			WithNegated(dl.A("Edge", dl.V("x"), dl.V("x"))))
		fast, err := Eval(context.Background(), p, gv.DB)
		if err != nil {
			return false
		}
		slow, err := naiveEval(p, gv.DB)
		if err != nil {
			return false
		}
		return fast.Equal(slow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickEvalQueryMatchesLegacyMatcher(t *testing.T) {
	// The compiled-plan EvalQuery must return exactly the answer set
	// the legacy Subst-based matcher enumerates.
	f := func(gv graphValue) bool {
		q := dl.NewQuery(dl.A("Q", dl.V("x"), dl.V("z")),
			dl.A("Edge", dl.V("x"), dl.V("y")), dl.A("Edge", dl.V("y"), dl.V("z"))).
			WithNegated(dl.A("Edge", dl.V("x"), dl.V("x")))
		fast, err := EvalQuery(q, gv.DB)
		if err != nil {
			return false
		}
		slow := dl.NewAnswerSet()
		gv.DB.MatchConjunction(q.Body, dl.NewSubst(), func(s dl.Subst) bool {
			for _, n := range q.Negated {
				if gv.DB.ContainsAtom(s.ApplyAtom(n)) {
					return true
				}
			}
			terms := make([]dl.Term, len(q.Head.Args))
			for i, v := range q.Head.Args {
				terms[i] = s.Apply(v)
			}
			slow.Add(dl.Answer{Terms: terms})
			return true
		})
		return fast.Equal(slow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickClosureContainsEdges(t *testing.T) {
	// Reach ⊇ Edge and Reach is transitively closed.
	f := func(gv graphValue) bool {
		p := NewProgram()
		p.Add(NewRule("base", dl.A("Reach", dl.V("x"), dl.V("y")), dl.A("Edge", dl.V("x"), dl.V("y"))))
		p.Add(NewRule("step", dl.A("Reach", dl.V("x"), dl.V("z")),
			dl.A("Reach", dl.V("x"), dl.V("y")), dl.A("Edge", dl.V("y"), dl.V("z"))))
		out, err := Eval(context.Background(), p, gv.DB)
		if err != nil {
			return false
		}
		reach := out.Relation("Reach")
		for _, e := range gv.DB.Relation("Edge").Tuples() {
			if !reach.Contains(e) {
				return false
			}
		}
		// Closure: Reach ∘ Edge ⊆ Reach.
		for _, rt := range reach.Tuples() {
			for _, e := range gv.DB.Relation("Edge").Tuples() {
				if rt[1] == e[0] && !reach.Contains([]dl.Term{rt[0], e[1]}) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
