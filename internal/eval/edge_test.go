package eval

import (
	"context"
	"testing"

	dl "repro/internal/datalog"
	"repro/internal/storage"
)

func TestEvalComparisonErrorPropagates(t *testing.T) {
	// A rule whose condition references an unbound side can only be
	// constructed by skipping Validate; Eval surfaces the error
	// instead of silently dropping derivations.
	db := storage.NewInstance()
	db.MustInsert("P", dl.C("a"))
	p := NewProgram()
	// Bypass WithCond validation by constructing the rule directly.
	r := &Rule{
		ID:   "raw",
		Head: dl.A("H", dl.V("x")),
		Body: []dl.Atom{dl.A("P", dl.V("x"))},
	}
	p.Add(r)
	if _, err := Eval(context.Background(), p, db); err != nil {
		t.Fatalf("valid rule: %v", err)
	}
	// Force an invalid comparison past Validate by mutating after
	// validation would have passed: Eval re-validates, so it is
	// caught up front.
	r.Conds = append(r.Conds, dl.Comparison{Op: dl.OpLt, L: dl.V("zz"), R: dl.C("1")})
	if _, err := Eval(context.Background(), p, db); err == nil {
		t.Error("unsafe condition must fail validation in Eval")
	}
}

func TestEvalEmptyProgram(t *testing.T) {
	db := storage.NewInstance()
	db.MustInsert("P", dl.C("a"))
	out, err := Eval(context.Background(), NewProgram(), db)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(db) {
		t.Error("empty program must return a copy of the input")
	}
}

func TestEvalMultiStrataChain(t *testing.T) {
	// Three strata: base, negation over base, negation over that.
	db := storage.NewInstance()
	db.MustInsert("E", dl.C("a"), dl.C("b"))
	db.MustInsert("E", dl.C("b"), dl.C("c"))
	p := NewProgram()
	p.Add(NewRule("n1", dl.A("N", dl.V("x")), dl.A("E", dl.V("x"), dl.V("y"))))
	p.Add(NewRule("n2", dl.A("N", dl.V("y")), dl.A("E", dl.V("x"), dl.V("y"))))
	p.Add(NewRule("leaf", dl.A("Leaf", dl.V("x")), dl.A("N", dl.V("x"))).
		WithNegated(dl.A("E", dl.V("x"), dl.V("x"))).
		WithNegated(dl.A("HasOut", dl.V("x"))))
	p.Add(NewRule("hasout", dl.A("HasOut", dl.V("x")), dl.A("E", dl.V("x"), dl.V("y"))))
	p.Add(NewRule("top", dl.A("NonLeaf", dl.V("x")), dl.A("N", dl.V("x"))).
		WithNegated(dl.A("Leaf", dl.V("x"))))
	out, err := Eval(context.Background(), p, db)
	if err != nil {
		t.Fatal(err)
	}
	// Leaves: nodes with no outgoing edge: c.
	if !out.ContainsAtom(dl.A("Leaf", dl.C("c"))) {
		t.Error("c is a leaf")
	}
	if out.ContainsAtom(dl.A("Leaf", dl.C("a"))) {
		t.Error("a has outgoing edges")
	}
	if !out.ContainsAtom(dl.A("NonLeaf", dl.C("a"))) || !out.ContainsAtom(dl.A("NonLeaf", dl.C("b"))) {
		t.Error("a and b are non-leaves")
	}
	if out.ContainsAtom(dl.A("NonLeaf", dl.C("c"))) {
		t.Error("c is a leaf, not a non-leaf")
	}
}

func TestEvalRuleFiltersNegationBeforeInsert(t *testing.T) {
	db := storage.NewInstance()
	db.MustInsert("P", dl.C("a"))
	db.MustInsert("P", dl.C("b"))
	db.MustInsert("Block", dl.C("a"))
	p := NewProgram()
	p.Add(NewRule("r", dl.A("H", dl.V("x")), dl.A("P", dl.V("x"))).
		WithNegated(dl.A("Block", dl.V("x"))))
	out, err := Eval(context.Background(), p, db)
	if err != nil {
		t.Fatal(err)
	}
	if out.ContainsAtom(dl.A("H", dl.C("a"))) {
		t.Error("blocked derivation must not fire")
	}
	if !out.ContainsAtom(dl.A("H", dl.C("b"))) {
		t.Error("unblocked derivation must fire")
	}
}

func TestEvalQueryInvalid(t *testing.T) {
	db := storage.NewInstance()
	q := dl.NewQuery(dl.A("Q", dl.V("x"))) // empty body
	if _, err := EvalQuery(q, db); err == nil {
		t.Error("invalid query must be rejected")
	}
}

func TestEvalUCQPropagatesErrors(t *testing.T) {
	db := storage.NewInstance()
	good := dl.NewQuery(dl.A("Q", dl.V("x")), dl.A("P", dl.V("x")))
	bad := dl.NewQuery(dl.A("Q", dl.V("x")))
	if _, err := EvalUCQ(context.Background(), []*dl.Query{good, bad}, db); err == nil {
		t.Error("UCQ with an invalid disjunct must error")
	}
}

func TestEvalSelfRecursiveSingleRule(t *testing.T) {
	// A rule that feeds itself through the delta path only.
	db := storage.NewInstance()
	db.MustInsert("Succ", dl.C("0"), dl.C("1"))
	db.MustInsert("Succ", dl.C("1"), dl.C("2"))
	db.MustInsert("Succ", dl.C("2"), dl.C("3"))
	db.MustInsert("LE", dl.C("0"), dl.C("0"))
	p := NewProgram()
	p.Add(NewRule("step", dl.A("LE", dl.V("x"), dl.V("z")),
		dl.A("LE", dl.V("x"), dl.V("y")), dl.A("Succ", dl.V("y"), dl.V("z"))))
	out, err := Eval(context.Background(), p, db)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"0", "1", "2", "3"} {
		if !out.ContainsAtom(dl.A("LE", dl.C("0"), dl.C(n))) {
			t.Errorf("LE(0, %s) missing", n)
		}
	}
	if out.Relation("LE").Len() != 4 {
		t.Errorf("LE = %d tuples, want 4", out.Relation("LE").Len())
	}
}
