package eval

import (
	"context"
	"strings"
	"testing"

	dl "repro/internal/datalog"
	"repro/internal/storage"
)

func edgeGraph() *storage.Instance {
	db := storage.NewInstance()
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}, {"x", "y"}} {
		db.MustInsert("Edge", dl.C(e[0]), dl.C(e[1]))
	}
	return db
}

func reachProgram() *Program {
	p := NewProgram()
	p.Add(NewRule("base", dl.A("Reach", dl.V("x"), dl.V("y")), dl.A("Edge", dl.V("x"), dl.V("y"))))
	p.Add(NewRule("step", dl.A("Reach", dl.V("x"), dl.V("z")),
		dl.A("Reach", dl.V("x"), dl.V("y")), dl.A("Edge", dl.V("y"), dl.V("z"))))
	return p
}

func TestEvalTransitiveClosure(t *testing.T) {
	out, err := Eval(context.Background(), reachProgram(), edgeGraph())
	if err != nil {
		t.Fatal(err)
	}
	reach := out.Relation("Reach")
	if reach.Len() != 7 { // ab ac ad bc bd cd xy
		t.Fatalf("Reach size = %d, want 7: %v", reach.Len(), reach.Tuples())
	}
	if !out.ContainsAtom(dl.A("Reach", dl.C("a"), dl.C("d"))) {
		t.Error("a reaches d")
	}
	if out.ContainsAtom(dl.A("Reach", dl.C("a"), dl.C("y"))) {
		t.Error("a must not reach y")
	}
}

func TestEvalDoesNotMutateInput(t *testing.T) {
	db := edgeGraph()
	if _, err := Eval(context.Background(), reachProgram(), db); err != nil {
		t.Fatal(err)
	}
	if db.Relation("Reach") != nil {
		t.Error("input instance must stay untouched")
	}
}

func TestEvalStratifiedNegation(t *testing.T) {
	// Unreachable pairs: node pairs with no path. Needs two strata.
	p := reachProgram()
	p.Add(NewRule("nodes1", dl.A("Node", dl.V("x")), dl.A("Edge", dl.V("x"), dl.V("y"))))
	p.Add(NewRule("nodes2", dl.A("Node", dl.V("y")), dl.A("Edge", dl.V("x"), dl.V("y"))))
	p.Add(NewRule("unreach", dl.A("Unreach", dl.V("x"), dl.V("y")),
		dl.A("Node", dl.V("x")), dl.A("Node", dl.V("y"))).
		WithNegated(dl.A("Reach", dl.V("x"), dl.V("y"))))
	out, err := Eval(context.Background(), p, edgeGraph())
	if err != nil {
		t.Fatal(err)
	}
	if !out.ContainsAtom(dl.A("Unreach", dl.C("a"), dl.C("x"))) {
		t.Error("a does not reach x")
	}
	if out.ContainsAtom(dl.A("Unreach", dl.C("a"), dl.C("d"))) {
		t.Error("a reaches d; Unreach(a,d) must not hold")
	}
	// 6 nodes, 36 pairs, 7 reachable => 29 unreachable.
	if got := out.Relation("Unreach").Len(); got != 29 {
		t.Errorf("Unreach size = %d, want 29", got)
	}
}

func TestStratifyRejectsNegativeCycle(t *testing.T) {
	p := NewProgram()
	p.Add(NewRule("p", dl.A("P", dl.V("x")), dl.A("Base", dl.V("x"))).
		WithNegated(dl.A("Q", dl.V("x"))))
	p.Add(NewRule("q", dl.A("Q", dl.V("x")), dl.A("Base", dl.V("x"))).
		WithNegated(dl.A("P", dl.V("x"))))
	if _, err := p.Stratify(); err == nil {
		t.Fatal("recursion through negation must be rejected")
	}
}

func TestStratifyOrdersStrata(t *testing.T) {
	p := reachProgram()
	p.Add(NewRule("nodes1", dl.A("Node", dl.V("x")), dl.A("Edge", dl.V("x"), dl.V("y"))))
	p.Add(NewRule("unreach", dl.A("Unreach", dl.V("x"), dl.V("y")),
		dl.A("Node", dl.V("x")), dl.A("Node", dl.V("y"))).
		WithNegated(dl.A("Reach", dl.V("x"), dl.V("y"))))
	strata, err := p.Stratify()
	if err != nil {
		t.Fatal(err)
	}
	if len(strata) < 2 {
		t.Fatalf("want >= 2 strata, got %d", len(strata))
	}
	// Unreach must be strictly after Reach.
	stratumOf := map[string]int{}
	for i, rules := range strata {
		for _, r := range rules {
			stratumOf[r.Head.Pred] = i
		}
	}
	if stratumOf["Unreach"] <= stratumOf["Reach"] {
		t.Errorf("Unreach stratum %d must exceed Reach stratum %d",
			stratumOf["Unreach"], stratumOf["Reach"])
	}
}

func TestEvalWithComparisons(t *testing.T) {
	db := storage.NewInstance()
	db.MustInsert("Measurements", dl.C("Sep/5-12:10"), dl.C("Tom Waits"), dl.C("38.2"))
	db.MustInsert("Measurements", dl.C("Sep/6-11:50"), dl.C("Tom Waits"), dl.C("37.1"))
	p := NewProgram()
	p.Add(NewRule("fever", dl.A("Fever", dl.V("t"), dl.V("p")),
		dl.A("Measurements", dl.V("t"), dl.V("p"), dl.V("v"))).
		WithCond(dl.OpGe, dl.V("v"), dl.C("38.0")))
	out, err := Eval(context.Background(), p, db)
	if err != nil {
		t.Fatal(err)
	}
	if out.Relation("Fever").Len() != 1 {
		t.Fatalf("Fever = %v", out.Relation("Fever").Tuples())
	}
	if !out.ContainsAtom(dl.A("Fever", dl.C("Sep/5-12:10"), dl.C("Tom Waits"))) {
		t.Error("38.2 is a fever reading")
	}
}

func TestRuleValidate(t *testing.T) {
	bad := NewRule("b", dl.A("H", dl.V("x"), dl.V("z")), dl.A("B", dl.V("x")))
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "head variable") {
		t.Errorf("unbound head variable must fail: %v", err)
	}
	empty := NewRule("e", dl.A("H"))
	if err := empty.Validate(); err == nil {
		t.Error("empty body must fail")
	}
	unsafeNeg := NewRule("n", dl.A("H", dl.V("x")), dl.A("B", dl.V("x"))).
		WithNegated(dl.A("Q", dl.V("y")))
	if err := unsafeNeg.Validate(); err == nil {
		t.Error("unsafe negation must fail")
	}
	unsafeCond := NewRule("c", dl.A("H", dl.V("x")), dl.A("B", dl.V("x"))).
		WithCond(dl.OpLt, dl.V("q"), dl.C("3"))
	if err := unsafeCond.Validate(); err == nil {
		t.Error("unsafe condition must fail")
	}
	if err := NewRule("ok", dl.A("H", dl.V("x")), dl.A("B", dl.V("x"))).Validate(); err != nil {
		t.Errorf("valid rule rejected: %v", err)
	}
}

func TestEvalRejectsInvalidProgram(t *testing.T) {
	p := NewProgram()
	p.Add(NewRule("b", dl.A("H", dl.V("z")), dl.A("B", dl.V("x"))))
	if _, err := Eval(context.Background(), p, storage.NewInstance()); err == nil {
		t.Error("invalid program must be rejected")
	}
}

func TestEvalQueryPositive(t *testing.T) {
	db := edgeGraph()
	q := dl.NewQuery(dl.A("Q", dl.V("y")), dl.A("Edge", dl.C("a"), dl.V("y")))
	as, err := EvalQuery(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if as.Len() != 1 || as.All()[0].Terms[0] != dl.C("b") {
		t.Errorf("answers = %v, want (b)", as)
	}
}

func TestEvalQueryWithNegationAndConds(t *testing.T) {
	db := edgeGraph()
	db.MustInsert("Blocked", dl.C("b"))
	q := dl.NewQuery(dl.A("Q", dl.V("x"), dl.V("y")), dl.A("Edge", dl.V("x"), dl.V("y"))).
		WithNegated(dl.A("Blocked", dl.V("y"))).
		WithCond(dl.OpNe, dl.V("x"), dl.C("x"))
	as, err := EvalQuery(q, db)
	if err != nil {
		t.Fatal(err)
	}
	// Edges: ab (blocked y=b), bc, cd, xy (excluded x=x) => bc, cd.
	if as.Len() != 2 {
		t.Errorf("answers = %v, want bc and cd", as)
	}
}

func TestEvalQueryBoolean(t *testing.T) {
	db := edgeGraph()
	q := dl.NewQuery(dl.A("Q"), dl.A("Edge", dl.C("a"), dl.V("y")))
	as, err := EvalQuery(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if as.Len() != 1 {
		t.Errorf("boolean query true: one empty answer expected, got %d", as.Len())
	}
	qNo := dl.NewQuery(dl.A("Q"), dl.A("Edge", dl.C("zz"), dl.V("y")))
	as2, err := EvalQuery(qNo, db)
	if err != nil {
		t.Fatal(err)
	}
	if as2.Len() != 0 {
		t.Error("boolean query false: no answers expected")
	}
}

func TestEvalQueryReturnsNullAnswers(t *testing.T) {
	db := storage.NewInstance()
	db.MustInsert("Shifts", dl.C("W1"), dl.C("Sep/9"), dl.C("Mark"), dl.N("z0"))
	q := dl.NewQuery(dl.A("Q", dl.V("s")), dl.A("Shifts", dl.C("W1"), dl.C("Sep/9"), dl.C("Mark"), dl.V("s")))
	as, err := EvalQuery(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if as.Len() != 1 || !as.All()[0].HasNull() {
		t.Errorf("EvalQuery must surface null answers (filtering is qa's job): %v", as)
	}
}

func TestEvalUCQ(t *testing.T) {
	db := edgeGraph()
	q1 := dl.NewQuery(dl.A("Q", dl.V("y")), dl.A("Edge", dl.C("a"), dl.V("y")))
	q2 := dl.NewQuery(dl.A("Q", dl.V("y")), dl.A("Edge", dl.C("b"), dl.V("y")))
	q3 := dl.NewQuery(dl.A("Q", dl.V("y")), dl.A("Edge", dl.C("a"), dl.V("y"))) // duplicate of q1
	as, err := EvalUCQ(context.Background(), []*dl.Query{q1, q2, q3}, db)
	if err != nil {
		t.Fatal(err)
	}
	if as.Len() != 2 { // b and c, deduplicated
		t.Errorf("UCQ answers = %v, want (b),(c)", as)
	}
}

func TestEvalRecursiveRequiresSemiNaiveTermination(t *testing.T) {
	// A cycle in the data: closure must still terminate.
	db := storage.NewInstance()
	db.MustInsert("Edge", dl.C("a"), dl.C("b"))
	db.MustInsert("Edge", dl.C("b"), dl.C("a"))
	out, err := Eval(context.Background(), reachProgram(), db)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Relation("Reach").Len(); got != 4 { // aa ab ba bb
		t.Errorf("Reach on 2-cycle = %d, want 4", got)
	}
}

func TestRuleString(t *testing.T) {
	r := NewRule("r", dl.A("H", dl.V("x")), dl.A("B", dl.V("x"))).
		WithNegated(dl.A("N", dl.V("x"))).
		WithCond(dl.OpLt, dl.V("x"), dl.C("5"))
	s := r.String()
	for _, want := range []string{"H(x) <-", "B(x)", "not N(x)", "x < 5"} {
		if !strings.Contains(s, want) {
			t.Errorf("Rule.String missing %q: %s", want, s)
		}
	}
}
