// Package eval implements bottom-up evaluation of plain Datalog
// programs (TGDs without existential variables) with stratified
// negation and built-in comparisons, using semi-naive iteration over
// storage instances.
//
// The quality framework of the paper (Section V) defines contextual
// predicates, quality predicates P_i and quality versions S^q through
// plain Datalog rules over the chased ontology — this package is the
// engine that computes them. It also evaluates the unions of
// conjunctive queries produced by the FO rewriting of Section IV.
package eval

import (
	"fmt"

	"repro/internal/datalog"
	"repro/internal/storage"
)

// Rule is a plain Datalog rule with one head atom, a positive body,
// optional safe negated atoms (stratified), and optional built-in
// comparisons:
//
//	Head ← B1, ..., Bn, not N1, ..., not Nk, c1, ..., cm
type Rule struct {
	ID      string
	Head    datalog.Atom
	Body    []datalog.Atom
	Negated []datalog.Atom
	Conds   []datalog.Comparison
}

// NewRule builds a positive rule.
func NewRule(id string, head datalog.Atom, body ...datalog.Atom) *Rule {
	return &Rule{ID: id, Head: head, Body: body}
}

// WithNegated appends a negated atom and returns the rule.
func (r *Rule) WithNegated(a datalog.Atom) *Rule {
	r.Negated = append(r.Negated, a)
	return r
}

// WithCond appends a comparison and returns the rule.
func (r *Rule) WithCond(op datalog.CompOp, l, rt datalog.Term) *Rule {
	r.Conds = append(r.Conds, datalog.Comparison{Op: op, L: l, R: rt})
	return r
}

// Validate checks safety: every head variable, negated-atom variable
// and comparison variable must occur in the positive body.
func (r *Rule) Validate() error {
	if len(r.Body) == 0 {
		return fmt.Errorf("eval: rule %s has empty body", r.ID)
	}
	bodyVars := map[datalog.Term]bool{}
	for _, v := range datalog.VarsOfAtoms(r.Body) {
		bodyVars[v] = true
	}
	for _, v := range r.Head.Vars() {
		if !bodyVars[v] {
			return fmt.Errorf("eval: rule %s: head variable %s not bound in body (existential rules belong to the chase, not eval)", r.ID, v)
		}
	}
	for _, n := range r.Negated {
		for _, v := range n.Vars() {
			if !bodyVars[v] {
				return fmt.Errorf("eval: rule %s: negated variable %s unsafe", r.ID, v)
			}
		}
	}
	for _, c := range r.Conds {
		for _, t := range []datalog.Term{c.L, c.R} {
			if t.IsVar() && !bodyVars[t] {
				return fmt.Errorf("eval: rule %s: condition variable %s unsafe", r.ID, t)
			}
		}
	}
	return nil
}

// String renders the rule.
func (r *Rule) String() string {
	q := datalog.Query{Head: r.Head, Body: r.Body, Negated: r.Negated, Conds: r.Conds}
	return q.String()
}

// Program is a set of plain Datalog rules.
type Program struct {
	Rules []*Rule
}

// NewProgram returns an empty program.
func NewProgram() *Program { return &Program{} }

// Add appends rules.
func (p *Program) Add(rules ...*Rule) { p.Rules = append(p.Rules, rules...) }

// Validate validates every rule.
func (p *Program) Validate() error {
	for _, r := range p.Rules {
		if err := r.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Stratify partitions the rules into strata such that negation never
// crosses within a stratum: the stratum of a head predicate is at
// least the stratum of every positive body predicate, and strictly
// greater than the stratum of every negated predicate. It returns an
// error when the program has recursion through negation.
func (p *Program) Stratify() ([][]*Rule, error) {
	stratum := map[string]int{}
	idb := map[string]bool{}
	for _, r := range p.Rules {
		idb[r.Head.Pred] = true
	}
	// Iterate the constraints to a fixpoint; n*|rules| iterations
	// suffice for a stratifiable program, one more pass detects cycles.
	limit := len(p.Rules)*len(idb) + len(p.Rules) + 1
	for i := 0; i < limit; i++ {
		changed := false
		for _, r := range p.Rules {
			h := stratum[r.Head.Pred]
			for _, b := range r.Body {
				if idb[b.Pred] && stratum[b.Pred] > h {
					h = stratum[b.Pred]
				}
			}
			for _, n := range r.Negated {
				if idb[n.Pred] && stratum[n.Pred]+1 > h {
					h = stratum[n.Pred] + 1
				}
			}
			if h > len(idb) {
				return nil, fmt.Errorf("eval: recursion through negation involving %s", r.Head.Pred)
			}
			if h != stratum[r.Head.Pred] {
				stratum[r.Head.Pred] = h
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	max := 0
	for _, s := range stratum {
		if s > max {
			max = s
		}
	}
	out := make([][]*Rule, max+1)
	for _, r := range p.Rules {
		s := stratum[r.Head.Pred]
		out[s] = append(out[s], r)
	}
	return out, nil
}

// Eval computes the program's least fixpoint over a copy of db and
// returns the resulting instance (EDB plus derived IDB atoms). The
// input instance is not modified.
//
// Evaluation runs on compiled join plans over interned rows (see
// storage.CompilePlan): every rule body is compiled once per stratum,
// matches bind a flat register bank instead of cloning substitution
// maps, and derived facts are projected and inserted as []int32 rows
// without materializing atoms or string keys.
func Eval(p *Program, db *storage.Instance) (*storage.Instance, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	strata, err := p.Stratify()
	if err != nil {
		return nil, err
	}
	out := db.CloneDetached()
	for _, rules := range strata {
		if len(rules) == 0 {
			continue
		}
		if err := evalStratum(rules, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// fact is a derived tuple in interned form.
type fact struct {
	pred string
	row  []int32
}

// compiledRule is a rule lowered onto one register space: the base
// plan and every delta plan share slot assignments (CompilePlan
// assigns slots by first occurrence in the body, independent of the
// bound-variable declaration), so a single set of head/negation
// projections serves all of them.
type compiledRule struct {
	r    *Rule
	plan *storage.Plan // full body, nothing pre-bound
	head storage.Proj
	negs []storage.Proj
	// deltaPlans[i] re-evaluates the full body with body[i]'s
	// variables pre-bound from a delta fact; nil when body[i] is not
	// an IDB atom of the stratum.
	deltaPlans []*storage.Plan
	pivotProj  []storage.Proj // body[i] as a projection, for seeding registers
	idbAtoms   int            // number of IDB body atoms
	regs       []int32        // reusable register bank
	buf        []int32        // reusable projection buffer
}

func compileRule(r *Rule, db *storage.Instance, idb map[string]bool) *compiledRule {
	cr := &compiledRule{
		r:    r,
		plan: storage.CompilePlan(db, r.Body),
	}
	cr.head = cr.plan.CompileProj(r.Head)
	for _, n := range r.Negated {
		cr.negs = append(cr.negs, cr.plan.CompileProj(n))
	}
	cr.deltaPlans = make([]*storage.Plan, len(r.Body))
	cr.pivotProj = make([]storage.Proj, len(r.Body))
	for i, a := range r.Body {
		if !idb[a.Pred] {
			continue
		}
		cr.idbAtoms++
		cr.deltaPlans[i] = storage.CompilePlan(db, r.Body, a.Vars()...)
		cr.pivotProj[i] = cr.plan.CompileProj(a)
	}
	cr.regs = cr.plan.NewRegs()
	maxAr := len(r.Head.Args)
	for _, n := range r.Negated {
		if len(n.Args) > maxAr {
			maxAr = len(n.Args)
		}
	}
	cr.buf = make([]int32, maxAr)
	return cr
}

// filters checks the rule's negated atoms (closed world) and
// comparisons against the register bank.
func (cr *compiledRule) filters(db *storage.Instance, regs []int32) (bool, error) {
	for i := range cr.negs {
		n := &cr.negs[i]
		buf := cr.buf[:n.Len()]
		n.Project(regs, buf)
		if db.ContainsRow(n.Pred, buf) {
			return false, nil
		}
	}
	for _, c := range cr.r.Conds {
		ok, err := c.EvalTerms(cr.plan.TermAt(regs, c.L), cr.plan.TermAt(regs, c.R))
		if err != nil {
			return false, fmt.Errorf("eval: rule %s: %w", cr.r.ID, err)
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// derive applies filters and, on success, inserts the head row,
// appending newly derived facts to *out.
func (cr *compiledRule) derive(db *storage.Instance, regs []int32, out *[]fact) error {
	ok, err := cr.filters(db, regs)
	if err != nil || !ok {
		return err
	}
	buf := cr.buf[:cr.head.Len()]
	cr.head.Project(regs, buf)
	isNew, err := db.InsertRow(cr.head.Pred, buf)
	if err != nil {
		return err
	}
	if isNew {
		row := make([]int32, len(buf))
		copy(row, buf)
		*out = append(*out, fact{pred: cr.head.Pred, row: row})
	}
	return nil
}

// evalStratum runs semi-naive iteration for one stratum, mutating db.
// Rule bodies are compiled once; the delta index is built once per
// round (not once per rule per round), and rules with several IDB body
// atoms deduplicate pivot matches so the same homomorphism is not
// re-derived through every pivot position it touches.
func evalStratum(rules []*Rule, db *storage.Instance) error {
	idb := map[string]bool{}
	for _, r := range rules {
		idb[r.Head.Pred] = true
	}
	comp := make([]*compiledRule, len(rules))
	for i, r := range rules {
		comp[i] = compileRule(r, db, idb)
	}

	// Round 0: full naive pass.
	var delta []fact
	for _, cr := range comp {
		var derr error
		cr.plan.ResetRegs(cr.regs)
		cr.plan.Execute(db, cr.regs, func(regs []int32) bool {
			derr = cr.derive(db, regs, &delta)
			return derr == nil
		})
		if derr != nil {
			return derr
		}
	}

	// Subsequent rounds: a rule re-fires only with at least one body
	// atom matching the previous round's delta.
	deltaByPred := map[string][][]int32{}
	for len(delta) > 0 {
		for pred := range deltaByPred {
			deltaByPred[pred] = deltaByPred[pred][:0]
		}
		for _, f := range delta {
			deltaByPred[f.pred] = append(deltaByPred[f.pred], f.row)
		}
		var next []fact
		for _, cr := range comp {
			if err := deltaPass(cr, db, deltaByPred, &next); err != nil {
				return err
			}
		}
		delta = next
	}
	return nil
}

// deltaPass re-fires one rule seeded by every delta fact at every IDB
// pivot position.
func deltaPass(cr *compiledRule, db *storage.Instance, deltaByPred map[string][][]int32, next *[]fact) error {
	// A rule with ≥2 IDB body atoms can reach the same homomorphism
	// through several pivots; dedup complete matches by their packed
	// register image.
	var seen map[string]bool
	if cr.idbAtoms > 1 {
		seen = map[string]bool{}
	}
	var key []byte
	for i := range cr.r.Body {
		plan := cr.deltaPlans[i]
		if plan == nil {
			continue
		}
		proj := &cr.pivotProj[i]
		for _, row := range deltaByPred[proj.Pred] {
			cr.plan.ResetRegs(cr.regs)
			if !proj.Bind(row, cr.regs) {
				continue
			}
			var derr error
			plan.Execute(db, cr.regs, func(regs []int32) bool {
				if seen != nil {
					key = packRegs(key[:0], regs)
					if seen[string(key)] {
						return true
					}
					seen[string(key)] = true
				}
				derr = cr.derive(db, regs, next)
				return derr == nil
			})
			if derr != nil {
				return derr
			}
		}
	}
	return nil
}

// packRegs appends the register bank's raw bytes to dst, producing a
// compact dedup key.
func packRegs(dst []byte, regs []int32) []byte {
	for _, r := range regs {
		dst = append(dst, byte(r), byte(r>>8), byte(r>>16), byte(r>>24))
	}
	return dst
}

// ruleFilters checks the rule's negated atoms (closed world) and
// comparisons under a complete body match.
func ruleFilters(r *Rule, s datalog.Subst, db *storage.Instance) (bool, error) {
	for _, n := range r.Negated {
		if db.ContainsAtom(s.ApplyAtom(n)) {
			return false, nil
		}
	}
	for _, c := range r.Conds {
		ok, err := c.Eval(s)
		if err != nil {
			return false, fmt.Errorf("eval: rule %s: %w", r.ID, err)
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// EvalQuery evaluates a conjunctive query (with optional negation and
// comparisons, both under closed-world assumption) directly over an
// instance, returning all answers including those containing labeled
// nulls. Certain-answer filtering is the caller's concern (see qa).
// The body is compiled to a join plan; the instance is not modified.
func EvalQuery(q *datalog.Query, db *storage.Instance) (*datalog.AnswerSet, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	plan := storage.CompileQueryPlan(db, q.Body)
	negs := make([]storage.Proj, len(q.Negated))
	for i, n := range q.Negated {
		negs[i] = plan.CompileProbe(n)
	}
	maxAr := 0
	for _, n := range negs {
		if n.Len() > maxAr {
			maxAr = n.Len()
		}
	}
	buf := make([]int32, maxAr)
	answers := datalog.NewAnswerSet()
	ansVars := q.Head.Args
	var derr error
	plan.Execute(db, plan.NewRegs(), func(regs []int32) bool {
		for i := range negs {
			n := &negs[i]
			nb := buf[:n.Len()]
			n.Project(regs, nb)
			if db.ContainsRow(n.Pred, nb) {
				return true
			}
		}
		for _, c := range q.Conds {
			ok, err := c.EvalTerms(plan.TermAt(regs, c.L), plan.TermAt(regs, c.R))
			if err != nil {
				derr = err
				return false
			}
			if !ok {
				return true
			}
		}
		terms := make([]datalog.Term, len(ansVars))
		for i, v := range ansVars {
			terms[i] = plan.TermAt(regs, v)
		}
		answers.Add(datalog.Answer{Terms: terms})
		return true
	})
	if derr != nil {
		return nil, derr
	}
	return answers, nil
}

// EvalUCQ evaluates a union of conjunctive queries, unioning the
// answer sets. All queries must share the head arity.
func EvalUCQ(qs []*datalog.Query, db *storage.Instance) (*datalog.AnswerSet, error) {
	answers := datalog.NewAnswerSet()
	for _, q := range qs {
		as, err := EvalQuery(q, db)
		if err != nil {
			return nil, err
		}
		for _, a := range as.All() {
			answers.Add(a)
		}
	}
	return answers, nil
}
