// Package eval implements bottom-up evaluation of plain Datalog
// programs (TGDs without existential variables) with stratified
// negation and built-in comparisons, using semi-naive iteration over
// storage instances.
//
// The quality framework of the paper (Section V) defines contextual
// predicates, quality predicates P_i and quality versions S^q through
// plain Datalog rules over the chased ontology — this package is the
// engine that computes them. It also evaluates the unions of
// conjunctive queries produced by the FO rewriting of Section IV.
package eval

import (
	"fmt"

	"repro/internal/datalog"
	"repro/internal/storage"
)

// Rule is a plain Datalog rule with one head atom, a positive body,
// optional safe negated atoms (stratified), and optional built-in
// comparisons:
//
//	Head ← B1, ..., Bn, not N1, ..., not Nk, c1, ..., cm
type Rule struct {
	ID      string
	Head    datalog.Atom
	Body    []datalog.Atom
	Negated []datalog.Atom
	Conds   []datalog.Comparison
}

// NewRule builds a positive rule.
func NewRule(id string, head datalog.Atom, body ...datalog.Atom) *Rule {
	return &Rule{ID: id, Head: head, Body: body}
}

// WithNegated appends a negated atom and returns the rule.
func (r *Rule) WithNegated(a datalog.Atom) *Rule {
	r.Negated = append(r.Negated, a)
	return r
}

// WithCond appends a comparison and returns the rule.
func (r *Rule) WithCond(op datalog.CompOp, l, rt datalog.Term) *Rule {
	r.Conds = append(r.Conds, datalog.Comparison{Op: op, L: l, R: rt})
	return r
}

// Validate checks safety: every head variable, negated-atom variable
// and comparison variable must occur in the positive body.
func (r *Rule) Validate() error {
	if len(r.Body) == 0 {
		return fmt.Errorf("eval: rule %s has empty body", r.ID)
	}
	bodyVars := map[datalog.Term]bool{}
	for _, v := range datalog.VarsOfAtoms(r.Body) {
		bodyVars[v] = true
	}
	for _, v := range r.Head.Vars() {
		if !bodyVars[v] {
			return fmt.Errorf("eval: rule %s: head variable %s not bound in body (existential rules belong to the chase, not eval)", r.ID, v)
		}
	}
	for _, n := range r.Negated {
		for _, v := range n.Vars() {
			if !bodyVars[v] {
				return fmt.Errorf("eval: rule %s: negated variable %s unsafe", r.ID, v)
			}
		}
	}
	for _, c := range r.Conds {
		for _, t := range []datalog.Term{c.L, c.R} {
			if t.IsVar() && !bodyVars[t] {
				return fmt.Errorf("eval: rule %s: condition variable %s unsafe", r.ID, t)
			}
		}
	}
	return nil
}

// String renders the rule.
func (r *Rule) String() string {
	q := datalog.Query{Head: r.Head, Body: r.Body, Negated: r.Negated, Conds: r.Conds}
	return q.String()
}

// Program is a set of plain Datalog rules.
type Program struct {
	Rules []*Rule
}

// NewProgram returns an empty program.
func NewProgram() *Program { return &Program{} }

// Add appends rules.
func (p *Program) Add(rules ...*Rule) { p.Rules = append(p.Rules, rules...) }

// Validate validates every rule.
func (p *Program) Validate() error {
	for _, r := range p.Rules {
		if err := r.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Stratify partitions the rules into strata such that negation never
// crosses within a stratum: the stratum of a head predicate is at
// least the stratum of every positive body predicate, and strictly
// greater than the stratum of every negated predicate. It returns an
// error when the program has recursion through negation.
func (p *Program) Stratify() ([][]*Rule, error) {
	stratum := map[string]int{}
	idb := map[string]bool{}
	for _, r := range p.Rules {
		idb[r.Head.Pred] = true
	}
	// Iterate the constraints to a fixpoint; n*|rules| iterations
	// suffice for a stratifiable program, one more pass detects cycles.
	limit := len(p.Rules)*len(idb) + len(p.Rules) + 1
	for i := 0; i < limit; i++ {
		changed := false
		for _, r := range p.Rules {
			h := stratum[r.Head.Pred]
			for _, b := range r.Body {
				if idb[b.Pred] && stratum[b.Pred] > h {
					h = stratum[b.Pred]
				}
			}
			for _, n := range r.Negated {
				if idb[n.Pred] && stratum[n.Pred]+1 > h {
					h = stratum[n.Pred] + 1
				}
			}
			if h > len(idb) {
				return nil, fmt.Errorf("eval: recursion through negation involving %s", r.Head.Pred)
			}
			if h != stratum[r.Head.Pred] {
				stratum[r.Head.Pred] = h
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	max := 0
	for _, s := range stratum {
		if s > max {
			max = s
		}
	}
	out := make([][]*Rule, max+1)
	for _, r := range p.Rules {
		s := stratum[r.Head.Pred]
		out[s] = append(out[s], r)
	}
	return out, nil
}

// Eval computes the program's least fixpoint over a copy of db and
// returns the resulting instance (EDB plus derived IDB atoms). The
// input instance is not modified.
func Eval(p *Program, db *storage.Instance) (*storage.Instance, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	strata, err := p.Stratify()
	if err != nil {
		return nil, err
	}
	out := db.Clone()
	for _, rules := range strata {
		if len(rules) == 0 {
			continue
		}
		if err := evalStratum(rules, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// evalStratum runs semi-naive iteration for one stratum, mutating db.
func evalStratum(rules []*Rule, db *storage.Instance) error {
	idb := map[string]bool{}
	for _, r := range rules {
		idb[r.Head.Pred] = true
	}

	// Round 0: full naive pass.
	delta, err := fullPass(rules, db)
	if err != nil {
		return err
	}
	// Subsequent rounds: a rule re-fires only with at least one body
	// atom matching the previous round's delta.
	for len(delta) > 0 {
		var next []datalog.Atom
		for _, r := range rules {
			derived, err := deltaPass(r, db, delta, idb)
			if err != nil {
				return err
			}
			next = append(next, derived...)
		}
		delta = next
	}
	return nil
}

// fullPass applies every rule against the full instance once,
// returning newly inserted atoms.
func fullPass(rules []*Rule, db *storage.Instance) ([]datalog.Atom, error) {
	var added []datalog.Atom
	for _, r := range rules {
		var derr error
		db.MatchConjunction(r.Body, datalog.NewSubst(), func(s datalog.Subst) bool {
			ok, err := ruleFilters(r, s, db)
			if err != nil {
				derr = err
				return false
			}
			if !ok {
				return true
			}
			atom := s.ApplyAtom(r.Head)
			isNew, err := db.InsertAtom(atom)
			if err != nil {
				derr = err
				return false
			}
			if isNew {
				added = append(added, atom)
			}
			return true
		})
		if derr != nil {
			return nil, derr
		}
	}
	return added, nil
}

// deltaPass applies one rule requiring some IDB body atom to match an
// atom of the delta, returning newly inserted atoms.
func deltaPass(r *Rule, db *storage.Instance, delta []datalog.Atom, idb map[string]bool) ([]datalog.Atom, error) {
	var added []datalog.Atom
	deltaByPred := map[string][]datalog.Atom{}
	for _, a := range delta {
		deltaByPred[a.Pred] = append(deltaByPred[a.Pred], a)
	}
	for i, pivot := range r.Body {
		if !idb[pivot.Pred] {
			continue
		}
		for _, fact := range deltaByPred[pivot.Pred] {
			s, ok := datalog.Match(pivot, fact, datalog.NewSubst())
			if !ok {
				continue
			}
			rest := make([]datalog.Atom, 0, len(r.Body)-1)
			rest = append(rest, r.Body[:i]...)
			rest = append(rest, r.Body[i+1:]...)
			var derr error
			db.MatchConjunction(rest, s, func(s2 datalog.Subst) bool {
				ok, err := ruleFilters(r, s2, db)
				if err != nil {
					derr = err
					return false
				}
				if !ok {
					return true
				}
				atom := s2.ApplyAtom(r.Head)
				isNew, err := db.InsertAtom(atom)
				if err != nil {
					derr = err
					return false
				}
				if isNew {
					added = append(added, atom)
				}
				return true
			})
			if derr != nil {
				return nil, derr
			}
		}
	}
	return added, nil
}

// ruleFilters checks the rule's negated atoms (closed world) and
// comparisons under a complete body match.
func ruleFilters(r *Rule, s datalog.Subst, db *storage.Instance) (bool, error) {
	for _, n := range r.Negated {
		if db.ContainsAtom(s.ApplyAtom(n)) {
			return false, nil
		}
	}
	for _, c := range r.Conds {
		ok, err := c.Eval(s)
		if err != nil {
			return false, fmt.Errorf("eval: rule %s: %w", r.ID, err)
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// EvalQuery evaluates a conjunctive query (with optional negation and
// comparisons, both under closed-world assumption) directly over an
// instance, returning all answers including those containing labeled
// nulls. Certain-answer filtering is the caller's concern (see qa).
func EvalQuery(q *datalog.Query, db *storage.Instance) (*datalog.AnswerSet, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	answers := datalog.NewAnswerSet()
	ansVars := q.Head.Args
	var derr error
	db.MatchConjunction(q.Body, datalog.NewSubst(), func(s datalog.Subst) bool {
		for _, n := range q.Negated {
			if db.ContainsAtom(s.ApplyAtom(n)) {
				return true
			}
		}
		for _, c := range q.Conds {
			ok, err := c.Eval(s)
			if err != nil {
				derr = err
				return false
			}
			if !ok {
				return true
			}
		}
		terms := make([]datalog.Term, len(ansVars))
		for i, v := range ansVars {
			terms[i] = s.Apply(v)
		}
		answers.Add(datalog.Answer{Terms: terms})
		return true
	})
	if derr != nil {
		return nil, derr
	}
	return answers, nil
}

// EvalUCQ evaluates a union of conjunctive queries, unioning the
// answer sets. All queries must share the head arity.
func EvalUCQ(qs []*datalog.Query, db *storage.Instance) (*datalog.AnswerSet, error) {
	answers := datalog.NewAnswerSet()
	for _, q := range qs {
		as, err := EvalQuery(q, db)
		if err != nil {
			return nil, err
		}
		for _, a := range as.All() {
			answers.Add(a)
		}
	}
	return answers, nil
}
