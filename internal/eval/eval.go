// Package eval implements bottom-up evaluation of plain Datalog
// programs (TGDs without existential variables) with stratified
// negation and built-in comparisons, using semi-naive iteration over
// storage instances.
//
// The quality framework of the paper (Section V) defines contextual
// predicates, quality predicates P_i and quality versions S^q through
// plain Datalog rules over the chased ontology — this package is the
// engine that computes them. It also evaluates the unions of
// conjunctive queries produced by the FO rewriting of Section IV.
package eval

import (
	"context"
	"fmt"

	"repro/internal/datalog"
	"repro/internal/par"
	"repro/internal/qerr"
	"repro/internal/storage"
)

// Rule is a plain Datalog rule with one head atom, a positive body,
// optional safe negated atoms (stratified), and optional built-in
// comparisons:
//
//	Head ← B1, ..., Bn, not N1, ..., not Nk, c1, ..., cm
type Rule struct {
	ID      string
	Head    datalog.Atom
	Body    []datalog.Atom
	Negated []datalog.Atom
	Conds   []datalog.Comparison
}

// NewRule builds a positive rule.
func NewRule(id string, head datalog.Atom, body ...datalog.Atom) *Rule {
	return &Rule{ID: id, Head: head, Body: body}
}

// WithNegated appends a negated atom and returns the rule.
func (r *Rule) WithNegated(a datalog.Atom) *Rule {
	r.Negated = append(r.Negated, a)
	return r
}

// WithCond appends a comparison and returns the rule.
func (r *Rule) WithCond(op datalog.CompOp, l, rt datalog.Term) *Rule {
	r.Conds = append(r.Conds, datalog.Comparison{Op: op, L: l, R: rt})
	return r
}

// Validate checks safety: every head variable, negated-atom variable
// and comparison variable must occur in the positive body.
func (r *Rule) Validate() error {
	if len(r.Body) == 0 {
		return fmt.Errorf("eval: %w", &qerr.UnsafeRuleError{Rule: r.ID, Reason: "empty body"})
	}
	bodyVars := map[datalog.Term]bool{}
	for _, v := range datalog.VarsOfAtoms(r.Body) {
		bodyVars[v] = true
	}
	for _, v := range r.Head.Vars() {
		if !bodyVars[v] {
			return fmt.Errorf("eval: %w", &qerr.UnsafeRuleError{
				Rule: r.ID, Var: v.Name,
				Reason: "head variable not bound in body (existential rules belong to the chase, not eval)",
			})
		}
	}
	for _, n := range r.Negated {
		for _, v := range n.Vars() {
			if !bodyVars[v] {
				return fmt.Errorf("eval: %w", &qerr.UnsafeRuleError{
					Rule: r.ID, Var: v.Name, Reason: "negated variable not bound by a positive atom",
				})
			}
		}
	}
	for _, c := range r.Conds {
		for _, t := range []datalog.Term{c.L, c.R} {
			if t.IsVar() && !bodyVars[t] {
				return fmt.Errorf("eval: %w", &qerr.UnsafeRuleError{
					Rule: r.ID, Var: t.Name, Reason: "condition variable not bound by a positive atom",
				})
			}
		}
	}
	return nil
}

// String renders the rule.
func (r *Rule) String() string {
	q := datalog.Query{Head: r.Head, Body: r.Body, Negated: r.Negated, Conds: r.Conds}
	return q.String()
}

// Program is a set of plain Datalog rules.
type Program struct {
	Rules []*Rule
}

// NewProgram returns an empty program.
func NewProgram() *Program { return &Program{} }

// Add appends rules.
func (p *Program) Add(rules ...*Rule) { p.Rules = append(p.Rules, rules...) }

// Validate validates every rule.
func (p *Program) Validate() error {
	for _, r := range p.Rules {
		if err := r.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Stratify partitions the rules into strata such that negation never
// crosses within a stratum: the stratum of a head predicate is at
// least the stratum of every positive body predicate, and strictly
// greater than the stratum of every negated predicate. It returns an
// error when the program has recursion through negation.
func (p *Program) Stratify() ([][]*Rule, error) {
	stratum := map[string]int{}
	idb := map[string]bool{}
	for _, r := range p.Rules {
		idb[r.Head.Pred] = true
	}
	// Iterate the constraints to a fixpoint; n*|rules| iterations
	// suffice for a stratifiable program, one more pass detects cycles.
	limit := len(p.Rules)*len(idb) + len(p.Rules) + 1
	for i := 0; i < limit; i++ {
		changed := false
		for _, r := range p.Rules {
			h := stratum[r.Head.Pred]
			for _, b := range r.Body {
				if idb[b.Pred] && stratum[b.Pred] > h {
					h = stratum[b.Pred]
				}
			}
			for _, n := range r.Negated {
				if idb[n.Pred] && stratum[n.Pred]+1 > h {
					h = stratum[n.Pred] + 1
				}
			}
			if h > len(idb) {
				return nil, fmt.Errorf("eval: recursion through negation involving %s", r.Head.Pred)
			}
			if h != stratum[r.Head.Pred] {
				stratum[r.Head.Pred] = h
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	max := 0
	for _, s := range stratum {
		if s > max {
			max = s
		}
	}
	out := make([][]*Rule, max+1)
	for _, r := range p.Rules {
		s := stratum[r.Head.Pred]
		out[s] = append(out[s], r)
	}
	return out, nil
}

// Eval computes the program's least fixpoint over a copy of db and
// returns the resulting instance (EDB plus derived IDB atoms). The
// input instance is not modified. ctx is checked once per rule pass
// of every semi-naive round (per worker unit under parallelism), so a
// serving process can time-bound a runaway evaluation with bounded
// cancellation latency.
//
// Evaluation runs on compiled join plans over interned rows (see
// storage.CompilePlan): every rule body is compiled once per stratum,
// matches bind a flat register bank instead of cloning substitution
// maps, and derived facts are projected and inserted as []int32 rows
// without materializing atoms or string keys.
func Eval(ctx context.Context, p *Program, db *storage.Instance) (*storage.Instance, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	strata, err := p.Stratify()
	if err != nil {
		return nil, err
	}
	out := db.CloneDetached()
	st := NewState(strata, out)
	if err := st.Init(ctx); err != nil {
		return nil, err
	}
	return out, nil
}

// Fact is a derived or delta tuple in interned form (row ids belong to
// the owning instance's interner).
type Fact struct {
	Pred string
	Row  []int32
}

// compiledRule is a rule lowered onto one register space: the base
// plan and every delta plan share slot assignments (CompilePlan
// assigns slots by first occurrence in the body, independent of the
// bound-variable declaration), so a single set of head/negation
// projections serves all of them.
type compiledRule struct {
	r    *Rule
	plan *storage.Plan // full body, nothing pre-bound
	head storage.Proj
	negs []storage.Proj
	// deltaPlans[i] re-evaluates the full body with body[i]'s
	// variables pre-bound from a delta fact; nil when body[i] cannot
	// receive delta facts (cold evaluation: non-IDB atoms of the
	// stratum; incremental state: every atom gets a plan).
	deltaPlans []*storage.Plan
	pivotProj  []storage.Proj // body[i] as a projection, for seeding registers
	pivots     int            // number of body atoms with delta plans
	regs       []int32        // reusable register bank
	buf        []int32        // reusable projection buffer
}

// compileRule lowers one rule. idb names the predicates that can grow
// during the stratum's own fixpoint; allDelta additionally compiles a
// delta plan for every body atom, which incremental evaluation needs
// because delta facts can arrive for any predicate, EDB included.
func compileRule(r *Rule, db *storage.Instance, idb map[string]bool, allDelta bool) *compiledRule {
	cr := &compiledRule{
		r:    r,
		plan: storage.CompilePlan(db, r.Body),
	}
	cr.head = cr.plan.CompileProj(r.Head)
	for _, n := range r.Negated {
		cr.negs = append(cr.negs, cr.plan.CompileProj(n))
	}
	cr.deltaPlans = make([]*storage.Plan, len(r.Body))
	cr.pivotProj = make([]storage.Proj, len(r.Body))
	for i, a := range r.Body {
		if !allDelta && !idb[a.Pred] {
			continue
		}
		cr.pivots++
		cr.deltaPlans[i] = storage.CompilePlan(db, r.Body, a.Vars()...)
		cr.pivotProj[i] = cr.plan.CompileProj(a)
	}
	cr.regs = cr.plan.NewRegs()
	maxAr := len(r.Head.Args)
	for _, n := range r.Negated {
		if len(n.Args) > maxAr {
			maxAr = len(n.Args)
		}
	}
	cr.buf = make([]int32, maxAr)
	return cr
}

// filters checks the rule's negated atoms (closed world) and
// comparisons against the register bank. buf is projection scratch of
// at least len(cr.buf); parallel workers pass their own so one rule
// can be filtered from many goroutines.
func (cr *compiledRule) filters(db *storage.Instance, regs []int32, buf []int32) (bool, error) {
	for i := range cr.negs {
		n := &cr.negs[i]
		nb := buf[:n.Len()]
		n.Project(regs, nb)
		if db.ContainsRow(n.Pred, nb) {
			return false, nil
		}
	}
	for _, c := range cr.r.Conds {
		ok, err := c.EvalTerms(cr.plan.TermAt(regs, c.L), cr.plan.TermAt(regs, c.R))
		if err != nil {
			return false, fmt.Errorf("eval: rule %s: %w", cr.r.ID, err)
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// derive applies filters and, on success, inserts the head row,
// appending newly derived facts to *out.
func (cr *compiledRule) derive(db *storage.Instance, regs []int32, out *[]Fact) error {
	ok, err := cr.filters(db, regs, cr.buf)
	if err != nil || !ok {
		return err
	}
	buf := cr.buf[:cr.head.Len()]
	cr.head.Project(regs, buf)
	isNew, err := db.InsertRow(cr.head.Pred, buf)
	if err != nil {
		return err
	}
	if isNew {
		row := make([]int32, len(buf))
		copy(row, buf)
		*out = append(*out, Fact{Pred: cr.head.Pred, Row: row})
	}
	return nil
}

// State is a resumable stratified evaluation: it owns an instance
// holding the EDB plus every derived fact, with each stratum's rules
// compiled once. Init computes the full least fixpoint; Extend grows
// it incrementally from a batch of delta facts, re-matching rule
// bodies only against the delta — sound for negation-free programs
// (Incremental reports whether Extend is available; programs with
// negation are non-monotone under insertions and need re-evaluation).
//
// A State is single-writer: Init and Extend must not be called
// concurrently. Concurrent readers use Instance().Snapshot().
//
// A State may still evaluate in parallel internally (SetParallelism):
// each semi-naive round fans its rule passes out across a bounded
// worker pool, every worker matching against the frozen round view
// and staging derived rows into a private storage.Batch, and the
// single writer merges the batches in deterministic unit order (rule
// index, then shard/chunk index, then emission order) before the next
// round. Parallelism 1 runs the exact sequential code path; higher
// degrees produce the same fixpoint (set-identical instances), with
// insertion order deterministic for a fixed degree.
type State struct {
	strata [][]*Rule
	inst   *storage.Instance
	comp   [][]*compiledRule
	pool   par.Pool
	hasNeg bool
	inited bool
}

// NewState builds an evaluation state over inst, which the state takes
// ownership of (derived facts are inserted in place; callers wanting
// an untouched input pass a clone). The strata come from
// Program.Stratify; rules are assumed validated.
func NewState(strata [][]*Rule, inst *storage.Instance) *State {
	st := &State{strata: strata, inst: inst, pool: par.New(0)}
	for _, rules := range strata {
		for _, r := range rules {
			if len(r.Negated) > 0 {
				st.hasNeg = true
			}
		}
	}
	return st
}

// SetParallelism bounds the state's worker pool: n <= 0 resolves to
// runtime.GOMAXPROCS(0) (the default), 1 selects the exact sequential
// code path, n > 1 fans rule passes out across up to n workers. Call
// it before Init; the degree is fixed for the state's lifetime.
func (st *State) SetParallelism(n int) { st.pool = par.New(n) }

// Instance returns the state's live instance (EDB + derived facts).
// Callers must not mutate it; take a Snapshot for concurrent reads.
func (st *State) Instance() *storage.Instance { return st.inst }

// Incremental reports whether Extend is available: true for
// negation-free programs, whose fixpoints grow monotonically under
// insertions.
func (st *State) Incremental() bool { return !st.hasNeg }

// Reset rebinds the state to a fresh instance for re-evaluation,
// keeping the compiled rule plans (valid because plans bind to the
// interner, which inst must share with the previous instance — the
// session layer re-evaluates over clones of one chased instance).
// Call Init afterwards.
func (st *State) Reset(inst *storage.Instance) {
	if st.inst.Interner() != inst.Interner() {
		panic("eval: State.Reset onto an instance with a different interner")
	}
	st.inst = inst
	st.inited = false
}

// Replan recompiles every rule's join plans against the state's live
// instance, refreshing the cost-based atom order from its current
// statistics — the session layer calls this when relation
// cardinalities have drifted far from what the original plans were
// costed against. Slot assignment depends only on the body's source
// order (first occurrence), never on atom order, so the existing
// projections, register banks and pivot compilations all remain valid;
// only the plans themselves are replaced. No-op before the first Init
// compiles. Single-writer, like Init and Extend.
func (st *State) Replan() {
	if st.comp == nil {
		return
	}
	for _, comp := range st.comp {
		for _, cr := range comp {
			cr.plan = storage.CompilePlan(st.inst, cr.r.Body)
			for i, a := range cr.r.Body {
				if cr.deltaPlans[i] != nil {
					cr.deltaPlans[i] = storage.CompilePlan(st.inst, cr.r.Body, a.Vars()...)
				}
			}
		}
	}
}

// Init computes the least fixpoint stratum by stratum. ctx is checked
// once per rule pass (per worker unit when the pool is parallel).
// Rule plans are compiled on the first Init
// and reused by later Reset+Init cycles.
func (st *State) Init(ctx context.Context) error {
	if st.comp == nil {
		st.comp = make([][]*compiledRule, len(st.strata))
		for si, rules := range st.strata {
			if len(rules) == 0 {
				continue
			}
			idb := map[string]bool{}
			for _, r := range rules {
				idb[r.Head.Pred] = true
			}
			comp := make([]*compiledRule, len(rules))
			for i, r := range rules {
				// With negation, Extend is rejected, so only the
				// stratum's own IDB pivots are needed; negation-free
				// programs additionally compile a delta plan per body
				// atom (Extend pivots on any atom, EDB included).
				comp[i] = compileRule(r, st.inst, idb, !st.hasNeg)
			}
			st.comp[si] = comp
		}
	}
	for si, rules := range st.strata {
		if err := ctx.Err(); err != nil {
			return err
		}
		if len(rules) == 0 {
			continue
		}
		idb := map[string]bool{}
		for _, r := range rules {
			idb[r.Head.Pred] = true
		}
		comp := st.comp[si]

		// Round 0: full naive pass — sequential rule-by-rule, or rule
		// passes sharded across the worker pool with a deterministic
		// batch merge.
		var delta []Fact
		if st.pool.Sequential() {
			for _, cr := range comp {
				if err := ctx.Err(); err != nil {
					return err
				}
				var derr error
				cr.plan.ResetRegs(cr.regs)
				cr.plan.Execute(st.inst, cr.regs, func(regs []int32) bool {
					derr = cr.derive(st.inst, regs, &delta)
					return derr == nil
				})
				if derr != nil {
					return derr
				}
			}
		} else if err := st.fullRoundPar(ctx, comp, &delta); err != nil {
			return err
		}

		// Subsequent rounds: a rule re-fires only with at least one
		// body atom matching the previous round's delta, pivoting on
		// the stratum's own IDB predicates.
		deltaByPred := map[string][][]int32{}
		for len(delta) > 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
			for pred := range deltaByPred {
				deltaByPred[pred] = deltaByPred[pred][:0]
			}
			for _, f := range delta {
				if idb[f.Pred] {
					deltaByPred[f.Pred] = append(deltaByPred[f.Pred], f.Row)
				}
			}
			var next []Fact
			if err := st.deltaRound(ctx, comp, deltaByPred, &next); err != nil {
				return err
			}
			delta = next
		}
	}
	st.inited = true
	return nil
}

// deltaRound runs one semi-naive delta round over every rule:
// sequentially via deltaPass, or — with a parallel pool — as delta-row
// chunks fanned across workers staging into private batches.
func (st *State) deltaRound(ctx context.Context, comp []*compiledRule, deltaByPred map[string][][]int32, next *[]Fact) error {
	if st.pool.Sequential() {
		for _, cr := range comp {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := deltaPass(cr, st.inst, deltaByPred, next); err != nil {
				return err
			}
		}
		return nil
	}
	units := make([]evalUnit, 0, len(comp))
	for _, cr := range comp {
		for i := range cr.r.Body {
			if cr.deltaPlans[i] == nil {
				continue
			}
			rows := deltaByPred[cr.pivotProj[i].Pred]
			for _, c := range par.Chunks(len(rows), st.pool.Width()) {
				units = append(units, evalUnit{cr: cr, pivot: i, lo: c[0], hi: c[1]})
			}
		}
	}
	return st.runUnits(ctx, units, deltaByPred, next)
}

// evalUnit is one parallel work unit of a round: a shard of a rule's
// full-body plan (pivot < 0) or a chunk of one pivot's delta rows.
// Units are built in (rule index, pivot, chunk/shard) order, which
// fixes the batch merge order.
type evalUnit struct {
	cr     *compiledRule
	pivot  int // -1: full pass
	shard  int // full pass: shard index
	nshard int // full pass: shard count
	lo, hi int // delta pass: row range within the pivot's delta
}

// fullRoundPar shards every rule's full-body pass across the pool.
func (st *State) fullRoundPar(ctx context.Context, comp []*compiledRule, out *[]Fact) error {
	w := st.pool.Width()
	units := make([]evalUnit, 0, len(comp)*w)
	for _, cr := range comp {
		for s := 0; s < w; s++ {
			units = append(units, evalUnit{cr: cr, pivot: -1, shard: s, nshard: w})
		}
	}
	return st.runUnits(ctx, units, nil, out)
}

// runUnits executes the units on the worker pool — every worker
// matching against the round's frozen instance view and staging head
// rows into the unit's private batch — then merges all batches in
// unit order on the calling goroutine, appending each genuinely new
// fact to *out. Cancellation is checked once per unit (par.Map),
// bounding latency by a single work unit rather than a whole round.
func (st *State) runUnits(ctx context.Context, units []evalUnit, deltaByPred map[string][][]int32, out *[]Fact) error {
	if len(units) == 0 {
		return nil
	}
	batches, err := par.Map(ctx, st.pool, len(units), func(t int) (*storage.Batch, error) {
		u := &units[t]
		cr := u.cr
		regs := cr.plan.NewRegs()
		buf := make([]int32, len(cr.buf))
		b := &storage.Batch{}
		var serr error
		stage := func(regs []int32) bool {
			ok, err := cr.filters(st.inst, regs, buf)
			if err != nil {
				serr = err
				return false
			}
			if ok {
				hb := buf[:cr.head.Len()]
				cr.head.Project(regs, hb)
				b.Add(cr.head.Pred, hb)
			}
			return true
		}
		if u.pivot < 0 {
			cr.plan.ExecuteShard(st.inst, regs, u.shard, u.nshard, stage)
			return b, serr
		}
		proj := &cr.pivotProj[u.pivot]
		dp := cr.deltaPlans[u.pivot]
		for _, row := range deltaByPred[proj.Pred][u.lo:u.hi] {
			cr.plan.ResetRegs(regs)
			if !proj.Bind(row, regs) {
				continue
			}
			if !dp.Execute(st.inst, regs, stage) {
				break // aborted on a filter error
			}
		}
		return b, serr
	})
	if err != nil {
		return err
	}
	for _, b := range batches {
		if _, err := st.inst.MergeBatch(b, func(pred string, row []int32) {
			*out = append(*out, Fact{Pred: pred, Row: row})
		}); err != nil {
			return err
		}
	}
	return nil
}

// Extend inserts the delta facts (rows in the instance's interner) and
// grows the fixpoint incrementally: every stratum, in order, re-fires
// its rules seeded by the incoming delta plus everything derived by
// earlier strata during this call. It returns all newly derived facts
// (not including the input delta) and requires a negation-free
// program (see Incremental) and a prior Init.
func (st *State) Extend(ctx context.Context, delta []Fact) ([]Fact, error) {
	if !st.inited {
		return nil, fmt.Errorf("eval: Extend before Init")
	}
	if st.hasNeg {
		return nil, fmt.Errorf("eval: Extend on a program with negation (non-monotone); re-evaluate instead")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// all accumulates every fact visible as a pivot: the input delta
	// plus everything derived during this call. Each stratum consumes
	// it from the start (its rules have seen none of it), in segments
	// so its own derivations re-pivot within the stratum.
	all := make([]Fact, 0, len(delta))
	for _, f := range delta {
		isNew, err := st.inst.InsertRow(f.Pred, f.Row)
		if err != nil {
			return nil, fmt.Errorf("eval: extend: %w", err)
		}
		if isNew {
			all = append(all, f)
		}
	}
	inserted := len(all)
	deltaByPred := map[string][][]int32{}
	for _, comp := range st.comp {
		if len(comp) == 0 {
			continue
		}
		start := 0
		for start < len(all) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			end := len(all)
			for pred := range deltaByPred {
				deltaByPred[pred] = deltaByPred[pred][:0]
			}
			for _, f := range all[start:end] {
				deltaByPred[f.Pred] = append(deltaByPred[f.Pred], f.Row)
			}
			if err := st.deltaRound(ctx, comp, deltaByPred, &all); err != nil {
				return nil, err
			}
			start = end
		}
	}
	return all[inserted:], nil
}

// deltaPass re-fires one rule seeded by every delta fact at every
// pivot position that has a delta plan.
func deltaPass(cr *compiledRule, db *storage.Instance, deltaByPred map[string][][]int32, next *[]Fact) error {
	// A rule with ≥2 pivot atoms can reach the same homomorphism
	// through several pivots; dedup complete matches by their packed
	// register image.
	var seen map[string]bool
	if cr.pivots > 1 {
		seen = map[string]bool{}
	}
	var key []byte
	for i := range cr.r.Body {
		plan := cr.deltaPlans[i]
		if plan == nil {
			continue
		}
		proj := &cr.pivotProj[i]
		for _, row := range deltaByPred[proj.Pred] {
			cr.plan.ResetRegs(cr.regs)
			if !proj.Bind(row, cr.regs) {
				continue
			}
			var derr error
			plan.Execute(db, cr.regs, func(regs []int32) bool {
				if seen != nil {
					key = packRegs(key[:0], regs)
					if seen[string(key)] {
						return true
					}
					seen[string(key)] = true
				}
				derr = cr.derive(db, regs, next)
				return derr == nil
			})
			if derr != nil {
				return derr
			}
		}
	}
	return nil
}

// packRegs appends the register bank's raw bytes to dst, producing a
// compact dedup key.
func packRegs(dst []byte, regs []int32) []byte {
	for _, r := range regs {
		dst = append(dst, byte(r), byte(r>>8), byte(r>>16), byte(r>>24))
	}
	return dst
}

// ruleFilters checks the rule's negated atoms (closed world) and
// comparisons under a complete body match.
func ruleFilters(r *Rule, s datalog.Subst, db *storage.Instance) (bool, error) {
	for _, n := range r.Negated {
		if db.ContainsAtom(s.ApplyAtom(n)) {
			return false, nil
		}
	}
	for _, c := range r.Conds {
		ok, err := c.Eval(s)
		if err != nil {
			return false, fmt.Errorf("eval: rule %s: %w", r.ID, err)
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// EvalQuery evaluates a conjunctive query (with optional negation and
// comparisons, both under closed-world assumption) directly over an
// instance, returning all answers including those containing labeled
// nulls. Certain-answer filtering is the caller's concern (see qa).
// The body is compiled to a join plan; the instance is not modified.
func EvalQuery(q *datalog.Query, db *storage.Instance) (*datalog.AnswerSet, error) {
	answers := datalog.NewAnswerSet()
	err := EvalQueryFunc(q, db, func(ans datalog.Answer) bool {
		answers.Add(ans)
		return true
	})
	if err != nil {
		return nil, err
	}
	return answers, nil
}

// QueryPlanner supplies compiled read-only plans for query bodies —
// the seam a plan cache plugs into (*storage.PlanCache implements it).
// Implementations must return plans equivalent to
// storage.CompileQueryPlan(db, body).
type QueryPlanner interface {
	QueryPlan(db *storage.Instance, body []datalog.Atom) *storage.Plan
}

// EvalQueryFunc is the streaming form of EvalQuery: each distinct
// answer is passed to yield as it is produced by the join plan,
// without materializing an answer set. Returning false from yield
// stops the evaluation early. Answers are deduplicated (a seen-set of
// answer keys is kept, but never the answers themselves), so yield
// observes each answer exactly once.
func EvalQueryFunc(q *datalog.Query, db *storage.Instance, yield func(datalog.Answer) bool) error {
	return EvalQueryFuncPlanned(q, db, nil, yield)
}

// EvalQueryFuncPlanned is EvalQueryFunc with plan supply delegated to
// planner; a nil planner compiles fresh per call.
func EvalQueryFuncPlanned(q *datalog.Query, db *storage.Instance, planner QueryPlanner, yield func(datalog.Answer) bool) error {
	if err := q.Validate(); err != nil {
		return err
	}
	var plan *storage.Plan
	if planner != nil {
		plan = planner.QueryPlan(db, q.Body)
	} else {
		plan = storage.CompileQueryPlan(db, q.Body)
	}
	negs := make([]storage.Proj, len(q.Negated))
	for i, n := range q.Negated {
		negs[i] = plan.CompileProbe(n)
	}
	maxAr := 0
	for _, n := range negs {
		if n.Len() > maxAr {
			maxAr = n.Len()
		}
	}
	buf := make([]int32, maxAr)
	seen := map[string]bool{}
	ansVars := q.Head.Args
	var derr error
	plan.Execute(db, plan.NewRegs(), func(regs []int32) bool {
		for i := range negs {
			n := &negs[i]
			nb := buf[:n.Len()]
			n.Project(regs, nb)
			if db.ContainsRow(n.Pred, nb) {
				return true
			}
		}
		for _, c := range q.Conds {
			ok, err := c.EvalTerms(plan.TermAt(regs, c.L), plan.TermAt(regs, c.R))
			if err != nil {
				derr = err
				return false
			}
			if !ok {
				return true
			}
		}
		terms := make([]datalog.Term, len(ansVars))
		for i, v := range ansVars {
			terms[i] = plan.TermAt(regs, v)
		}
		ans := datalog.Answer{Terms: terms}
		if key := ans.Key(); !seen[key] {
			seen[key] = true
			return yield(ans)
		}
		return true
	})
	return derr
}

// EvalUCQ evaluates a union of conjunctive queries, unioning the
// answer sets. All queries must share the head arity. ctx is checked
// between disjuncts.
func EvalUCQ(ctx context.Context, qs []*datalog.Query, db *storage.Instance) (*datalog.AnswerSet, error) {
	answers := datalog.NewAnswerSet()
	for _, q := range qs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		as, err := EvalQuery(q, db)
		if err != nil {
			return nil, err
		}
		for _, a := range as.All() {
			answers.Add(a)
		}
	}
	return answers, nil
}
