package wal

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/datalog"
)

// FuzzWALDecode feeds arbitrary bytes to the segment decoder as both a
// final and a non-final segment. The decoder must never panic and
// never hand a batch to the callback with out-of-table symbols (the
// decoder's bounds checks are its memory-safety story).
func FuzzWALDecode(f *testing.F) {
	// Seed with valid encodings so the fuzzer starts past the framing.
	seed := func(bs []Batch) []byte {
		dir := f.TempDir()
		path := filepath.Join(dir, SegmentName(1))
		w, err := Create(path, Options{Mode: SyncNone})
		if err != nil {
			f.Fatal(err)
		}
		for _, b := range bs {
			if err := w.Append(b.Seq, b.Atoms); err != nil {
				f.Fatal(err)
			}
		}
		w.Close()
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		return data
	}
	f.Add(seed(nil))
	f.Add(seed([]Batch{{Seq: 1, Atoms: []datalog.Atom{
		{Pred: "p", Args: []datalog.Term{datalog.C("a"), datalog.N("n0")}},
	}}}))
	f.Add(seed([]Batch{
		{Seq: 1, Atoms: []datalog.Atom{{Pred: "q", Args: []datalog.Term{datalog.C("x")}}}},
		{Seq: 2, Atoms: []datalog.Atom{{Pred: "q", Args: []datalog.Term{datalog.C("x"), datalog.C("y")}}}},
	}))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, final := range []bool{true, false} {
			_ = DecodeSegment("fuzz", data, final, func(b Batch) error {
				for _, a := range b.Atoms {
					if a.Pred == "" && len(a.Args) == 0 {
						// fine — just touch the batch
						continue
					}
				}
				return nil
			})
		}
	})
}
