package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/datalog"
)

// Batch is one replayed apply batch.
type Batch struct {
	Seq   uint64
	Atoms []datalog.Atom
}

// CorruptError reports interior log damage: a record that cannot be a
// torn trailing write (see the package comment). Replay never skips
// past one — acknowledged data may be missing and the operator must
// decide, not the recovery path.
type CorruptError struct {
	Path   string
	Offset int
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: corrupt log %s at offset %d: %s", e.Path, e.Offset, e.Reason)
}

// SegmentName formats a segment file name for a generation number.
func SegmentName(gen uint64) string { return fmt.Sprintf("wal-%016x.log", gen) }

// segmentGen parses a segment file name, reporting whether it is one.
func segmentGen(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	var gen uint64
	if _, err := fmt.Sscanf(name, "wal-%016x.log", &gen); err != nil {
		return 0, false
	}
	return gen, true
}

// Segments lists a directory's segment files in generation order and
// returns the highest generation seen (0 when none).
func Segments(dir string) (paths []string, maxGen uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, err
	}
	type seg struct {
		gen  uint64
		path string
	}
	var segs []seg
	for _, e := range entries {
		if gen, ok := segmentGen(e.Name()); ok {
			segs = append(segs, seg{gen: gen, path: filepath.Join(dir, e.Name())})
			if gen > maxGen {
				maxGen = gen
			}
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].gen < segs[j].gen })
	for _, s := range segs {
		paths = append(paths, s.path)
	}
	return paths, maxGen, nil
}

// DecodeSegment decodes one segment's records, invoking fn per batch.
// final marks the directory's last segment: only there is a trailing
// torn record tolerated (and silently dropped); anywhere else — and
// for any damage that is not a clean torn tail — decoding fails with a
// *CorruptError. fn returning an error aborts decoding with it.
func DecodeSegment(path string, data []byte, final bool, fn func(Batch) error) error {
	var table []datalog.Term // segment-local symbol table; preds as KindConst
	var preds []bool
	off := 0
	corrupt := func(at int, format string, args ...any) error {
		return &CorruptError{Path: path, Offset: at, Reason: fmt.Sprintf(format, args...)}
	}
	torn := func(at int, reason string) error {
		if final {
			return nil // torn trailing write: drop the tail
		}
		return corrupt(at, "torn record in a non-final segment (%s)", reason)
	}
	for off < len(data) {
		rest := data[off:]
		if len(rest) < 8 {
			return torn(off, "short header")
		}
		length := binary.LittleEndian.Uint32(rest[:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if length > MaxRecord {
			return torn(off, "unreadable length prefix")
		}
		if len(rest) < 8+int(length) {
			return torn(off, "short payload")
		}
		payload := rest[8 : 8+int(length)]
		if crc32.Checksum(payload, castagnoli) != sum {
			// The payload is fully present, and appends are prefix-
			// atomic single writes: this cannot be a torn tail.
			return corrupt(off, "CRC mismatch on a complete record")
		}
		if len(payload) == 0 {
			return corrupt(off, "empty record")
		}
		switch payload[0] {
		case recSyms:
			if err := decodeSyms(payload[1:], &table, &preds); err != nil {
				return corrupt(off, "syms record: %v", err)
			}
		case recBatch:
			b, err := decodeBatch(payload[1:], table, preds)
			if err != nil {
				return corrupt(off, "batch record: %v", err)
			}
			if err := fn(b); err != nil {
				return err
			}
		default:
			return corrupt(off, "unknown record type %d", payload[0])
		}
		off += 8 + int(length)
	}
	return nil
}

// decodeSyms appends a syms record's entries to the segment table.
func decodeSyms(p []byte, table *[]datalog.Term, preds *[]bool) error {
	count, p, err := uvarint(p)
	if err != nil {
		return err
	}
	if count > uint64(len(p)) {
		// Each entry costs at least two bytes; reject insane counts
		// before looping.
		return fmt.Errorf("symbol count %d exceeds record size", count)
	}
	for i := uint64(0); i < count; i++ {
		if len(p) < 1 {
			return fmt.Errorf("truncated symbol entry")
		}
		kind := p[0]
		p = p[1:]
		var n uint64
		n, p, err = uvarint(p)
		if err != nil {
			return err
		}
		if n > uint64(len(p)) {
			return fmt.Errorf("symbol name runs past record")
		}
		name := string(p[:n])
		p = p[n:]
		switch kind {
		case byte(datalog.KindConst), byte(datalog.KindVar), byte(datalog.KindNull):
			*table = append(*table, datalog.Term{Kind: datalog.TermKind(kind), Name: name})
			*preds = append(*preds, false)
		case symPred:
			*table = append(*table, datalog.Term{Kind: datalog.KindConst, Name: name})
			*preds = append(*preds, true)
		default:
			return fmt.Errorf("unknown symbol kind %d", kind)
		}
	}
	if len(p) != 0 {
		return fmt.Errorf("%d trailing bytes", len(p))
	}
	return nil
}

// decodeBatch decodes one batch record against the segment table.
func decodeBatch(p []byte, table []datalog.Term, preds []bool) (Batch, error) {
	seq, p, err := uvarint(p)
	if err != nil {
		return Batch{}, err
	}
	natoms, p, err := uvarint(p)
	if err != nil {
		return Batch{}, err
	}
	if natoms > uint64(len(p)) {
		// Each atom costs at least one byte; reject insane counts
		// before allocating.
		return Batch{}, fmt.Errorf("atom count %d exceeds record size", natoms)
	}
	b := Batch{Seq: seq, Atoms: make([]datalog.Atom, 0, natoms)}
	for i := uint64(0); i < natoms; i++ {
		var predID uint64
		predID, p, err = uvarint(p)
		if err != nil {
			return Batch{}, err
		}
		if predID >= uint64(len(table)) || !preds[predID] {
			return Batch{}, fmt.Errorf("predicate symbol %d out of table", predID)
		}
		var arity uint64
		arity, p, err = uvarint(p)
		if err != nil {
			return Batch{}, err
		}
		if arity > uint64(len(p)) {
			return Batch{}, fmt.Errorf("arity %d exceeds record size", arity)
		}
		a := datalog.Atom{Pred: table[predID].Name, Args: make([]datalog.Term, 0, arity)}
		for j := uint64(0); j < arity; j++ {
			var id uint64
			id, p, err = uvarint(p)
			if err != nil {
				return Batch{}, err
			}
			if id >= uint64(len(table)) || preds[id] {
				return Batch{}, fmt.Errorf("term symbol %d out of table", id)
			}
			a.Args = append(a.Args, table[id])
		}
		b.Atoms = append(b.Atoms, a)
	}
	if len(p) != 0 {
		return Batch{}, fmt.Errorf("%d trailing bytes", len(p))
	}
	return b, nil
}

// uvarint decodes one uvarint, returning the rest of the buffer.
func uvarint(p []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, fmt.Errorf("bad uvarint")
	}
	return v, p[n:], nil
}

// ReplayDir replays every batch with Seq > afterSeq from the
// directory's segments in order, returning the highest sequence seen
// (afterSeq when none). Sequences must be strictly increasing across
// the whole log; a regression is corruption.
func ReplayDir(dir string, afterSeq uint64, fn func(Batch) error) (uint64, error) {
	return ReplayRange(dir, afterSeq, ^uint64(0), fn)
}

// ReplayRange replays every batch with afterSeq < Seq <= upToSeq from
// the directory's segments in order, returning the highest sequence
// seen in the whole log (afterSeq when none) — callers that replay a
// prefix still learn how far the log extends. Every segment is decoded
// and integrity-checked end to end even when the range ends early: a
// bounded replay must not report success over a log whose tail is
// corrupt. As-of reconstruction (persist.ReadSessionAt) uses this to
// roll a historical snapshot forward to an exact version.
func ReplayRange(dir string, afterSeq, upToSeq uint64, fn func(Batch) error) (uint64, error) {
	paths, _, err := Segments(dir)
	if err != nil {
		return afterSeq, err
	}
	last := afterSeq
	prev := uint64(0)
	for i, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return last, err
		}
		final := i == len(paths)-1
		err = DecodeSegment(path, data, final, func(b Batch) error {
			if b.Seq <= prev {
				return &CorruptError{Path: path, Reason: fmt.Sprintf("sequence %d not increasing (previous %d)", b.Seq, prev)}
			}
			prev = b.Seq
			if b.Seq > last {
				last = b.Seq
			}
			if b.Seq <= afterSeq || b.Seq > upToSeq {
				return nil // covered by the snapshot, or beyond the range
			}
			return fn(b)
		})
		if err != nil {
			return last, err
		}
	}
	return last, nil
}
