// Package wal implements the per-session write-ahead log behind
// mdserve's durable sessions: every acknowledged apply batch is
// appended as a length-prefixed, CRC32C-checksummed record before the
// acknowledgment goes out, so a crash loses at most batches that were
// never acked.
//
// # On-disk format
//
// A session's log is a directory of segment files named
// wal-<%016x generation>.log, replayed in generation order. Each
// segment is a sequence of records:
//
//	| len uint32 LE | crc uint32 LE | payload (len bytes) |
//
// where crc is CRC32-C (Castagnoli) over the payload. The payload's
// first byte is the record type:
//
//	recSyms  (1): uvarint count, then per symbol: kind byte,
//	              uvarint len, name bytes. Symbols extend the
//	              segment-local symbol table in order (ids are dense,
//	              0-based, per segment — every segment is
//	              self-contained and replayable alone).
//	recBatch (2): uvarint seq, uvarint natoms, then per atom:
//	              uvarint pred symbol, uvarint arity, per argument a
//	              uvarint term symbol.
//
// Symbol kinds 0–2 are datalog term kinds (constant, variable, null);
// kind 3 marks a predicate name.
//
// # Torn tails vs corruption
//
// Appends are single write syscalls, so a crash — even SIGKILL —
// leaves at most one partially-written record at the very end of the
// final segment (kernel writes are prefix-atomic per call; nothing is
// buffered in user space between Append and its acknowledgment).
// Decoding therefore tolerates exactly that shape: a record whose
// header or payload runs past end-of-file is a torn tail and is
// dropped. A record whose payload is fully present but fails its CRC,
// or that decodes inconsistently under a valid CRC, can not be a torn
// write — that is corruption, and replay fails loudly rather than
// silently dropping acknowledged data. Likewise a torn tail in any
// segment but the last one is corruption (earlier segments were closed
// cleanly before a successor was created).
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"time"

	"repro/internal/datalog"
)

// SyncMode selects when appends reach stable storage.
type SyncMode uint8

const (
	// SyncAlways fsyncs after every append: an acknowledged batch
	// survives power loss.
	SyncAlways SyncMode = iota
	// SyncInterval fsyncs at most once per Options.Interval,
	// piggybacked on appends (no background goroutine), and always on
	// Close. Acknowledged batches survive process death immediately
	// and power loss up to one interval behind.
	SyncInterval
	// SyncNone never fsyncs explicitly (OS writeback only, still
	// synced on Close). Acknowledged batches survive process death
	// but not necessarily power loss.
	SyncNone
)

// String renders the mode as its flag spelling.
func (m SyncMode) String() string {
	switch m {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	default:
		return "async"
	}
}

// ParseSyncMode parses the -fsync flag vocabulary.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval", "":
		return SyncInterval, nil
	case "async":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync mode %q (always, interval, async)", s)
}

// DefaultInterval is the SyncInterval flush period when
// Options.Interval is zero.
const DefaultInterval = 100 * time.Millisecond

// MaxRecord bounds a single record's payload. Appends beyond it fail;
// decoders treat larger length prefixes as unreadable (torn or
// garbage) rather than allocating unbounded buffers.
const MaxRecord = 64 << 20

// Options configures a segment writer.
type Options struct {
	Mode     SyncMode
	Interval time.Duration // SyncInterval period (0 = DefaultInterval)
	// OnSync is invoked after every fsync (metrics hook). May be nil.
	OnSync func()
}

// castagnoli is the CRC32-C table shared by writer and reader.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record type tags (first payload byte).
const (
	recSyms  = 1
	recBatch = 2
)

// Symbol kind tags. 0–2 mirror datalog.TermKind; symPred marks a
// predicate name.
const symPred = 3

// symKey identifies one symbol in a segment's symbol table.
type symKey struct {
	kind byte
	name string
}

// Writer appends batches to one segment file. It is not safe for
// concurrent use; the session layer serializes appends on its writer
// lock (the same lock that orders the engine applies being logged).
type Writer struct {
	f        *os.File
	opts     Options
	syms     map[symKey]uint64
	lastSync time.Time
	fsyncs   int64
	buf      []byte
	rec      []byte
}

// Create opens a fresh segment file for appending. It fails if the
// file already exists — recovery never appends to an existing
// (possibly torn) segment; it starts a new one.
func Create(path string, opts Options) (*Writer, error) {
	if opts.Interval <= 0 {
		opts.Interval = DefaultInterval
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create segment: %w", err)
	}
	return &Writer{f: f, opts: opts, syms: map[symKey]uint64{}, lastSync: time.Now()}, nil
}

// sym returns the segment-local id of a symbol, staging a table entry
// into the pending syms record when it is new.
func (w *Writer) sym(kind byte, name string, pending *[]byte) uint64 {
	k := symKey{kind: kind, name: name}
	if id, ok := w.syms[k]; ok {
		return id
	}
	id := uint64(len(w.syms))
	w.syms[k] = id
	*pending = append(*pending, kind)
	*pending = binary.AppendUvarint(*pending, uint64(len(name)))
	*pending = append(*pending, name...)
	return id
}

// Append logs one batch under the given sequence number. The batch is
// on disk — in the kernel, and per the sync mode on stable storage —
// when Append returns nil; only then may the caller acknowledge it.
func (w *Writer) Append(seq uint64, atoms []datalog.Atom) error {
	// Build the batch payload, staging new symbols on the side.
	var symEntries []byte
	symCount := 0
	nsyms0 := len(w.syms)
	batch := w.rec[:0]
	batch = append(batch, recBatch)
	batch = binary.AppendUvarint(batch, seq)
	batch = binary.AppendUvarint(batch, uint64(len(atoms)))
	for _, a := range atoms {
		batch = binary.AppendUvarint(batch, w.sym(symPred, a.Pred, &symEntries))
		batch = binary.AppendUvarint(batch, uint64(len(a.Args)))
		for _, t := range a.Args {
			batch = binary.AppendUvarint(batch, w.sym(byte(t.Kind), t.Name, &symEntries))
		}
	}
	w.rec = batch[:0]
	symCount = len(w.syms) - nsyms0

	// One write syscall covers the syms record (when any) and the
	// batch record, so a crash tears at most a suffix of this append.
	out := w.buf[:0]
	if symCount > 0 {
		var payload []byte
		payload = append(payload, recSyms)
		payload = binary.AppendUvarint(payload, uint64(symCount))
		payload = append(payload, symEntries...)
		out = appendRecord(out, payload)
	}
	out = appendRecord(out, batch)
	w.buf = out[:0]
	if len(batch) > MaxRecord {
		return fmt.Errorf("wal: batch record of %d bytes exceeds MaxRecord", len(batch))
	}
	if _, err := w.f.Write(out); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}

	switch w.opts.Mode {
	case SyncAlways:
		return w.Sync()
	case SyncInterval:
		if time.Since(w.lastSync) >= w.opts.Interval {
			return w.Sync()
		}
	}
	return nil
}

// appendRecord frames one payload (length prefix + CRC32-C).
func appendRecord(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}

// Sync forces the segment to stable storage.
func (w *Writer) Sync() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	w.fsyncs++
	w.lastSync = time.Now()
	if w.opts.OnSync != nil {
		w.opts.OnSync()
	}
	return nil
}

// Fsyncs returns how many fsyncs this writer has issued.
func (w *Writer) Fsyncs() int64 { return w.fsyncs }

// Close syncs (in every mode — shutdown flushes are unconditional) and
// closes the segment.
func (w *Writer) Close() error {
	if err := w.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}
