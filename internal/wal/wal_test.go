package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/datalog"
)

func batch(preds ...string) []datalog.Atom {
	var out []datalog.Atom
	for i, p := range preds {
		out = append(out, datalog.Atom{Pred: p, Args: []datalog.Term{
			datalog.C("v" + p),
			datalog.N("n" + p),
			datalog.C("k"), // shared across atoms: exercises symbol reuse
		}})
		_ = i
	}
	return out
}

// writeSegments writes the given batches split across segment files,
// one slice of batches per segment, and returns the directory.
func writeSegments(t *testing.T, segs ...[]Batch) string {
	t.Helper()
	dir := t.TempDir()
	for i, bs := range segs {
		w, err := Create(filepath.Join(dir, SegmentName(uint64(i+1))), Options{Mode: SyncNone})
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range bs {
			if err := w.Append(b.Seq, b.Atoms); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func replayAll(t *testing.T, dir string, afterSeq uint64) ([]Batch, uint64, error) {
	t.Helper()
	var got []Batch
	last, err := ReplayDir(dir, afterSeq, func(b Batch) error {
		got = append(got, b)
		return nil
	})
	return got, last, err
}

func TestRoundTripAcrossSegments(t *testing.T) {
	want := [][]Batch{
		{{Seq: 1, Atoms: batch("p", "q")}, {Seq: 2, Atoms: batch("p")}},
		{{Seq: 5, Atoms: batch("q", "r", "p")}},
		{{Seq: 6, Atoms: nil}, {Seq: 9, Atoms: batch("r")}},
	}
	dir := writeSegments(t, want...)

	got, last, err := replayAll(t, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if last != 9 {
		t.Fatalf("last seq = %d, want 9", last)
	}
	var flat []Batch
	for _, seg := range want {
		flat = append(flat, seg...)
	}
	if len(got) != len(flat) {
		t.Fatalf("replayed %d batches, want %d", len(got), len(flat))
	}
	for i := range flat {
		if got[i].Seq != flat[i].Seq {
			t.Fatalf("batch %d: seq %d, want %d", i, got[i].Seq, flat[i].Seq)
		}
		if len(got[i].Atoms) != len(flat[i].Atoms) {
			t.Fatalf("batch %d: %d atoms, want %d", i, len(got[i].Atoms), len(flat[i].Atoms))
		}
		for j := range flat[i].Atoms {
			if !reflect.DeepEqual(got[i].Atoms[j], flat[i].Atoms[j]) {
				t.Fatalf("batch %d atom %d: %v, want %v", i, j, got[i].Atoms[j], flat[i].Atoms[j])
			}
		}
	}

	// Replay after a snapshot boundary skips covered batches.
	got, last, err = replayAll(t, dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	if last != 9 || len(got) != 2 || got[0].Seq != 6 || got[1].Seq != 9 {
		t.Fatalf("afterSeq=5 replay: last=%d batches=%v", last, got)
	}
}

func TestSyncModes(t *testing.T) {
	dir := t.TempDir()

	w, err := Create(filepath.Join(dir, SegmentName(1)), Options{Mode: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := w.Append(uint64(i), batch("p")); err != nil {
			t.Fatal(err)
		}
	}
	if w.Fsyncs() != 3 {
		t.Fatalf("always mode: %d fsyncs after 3 appends, want 3", w.Fsyncs())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	synced := 0
	w, err = Create(filepath.Join(dir, SegmentName(2)), Options{Mode: SyncInterval, Interval: time.Hour, OnSync: func() { synced++ }})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if err := w.Append(uint64(i), batch("p")); err != nil {
			t.Fatal(err)
		}
	}
	if w.Fsyncs() != 0 {
		t.Fatalf("interval mode within period: %d fsyncs, want 0", w.Fsyncs())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if synced != 1 {
		t.Fatalf("OnSync fired %d times, want 1 (the Close flush)", synced)
	}

	w, err = Create(filepath.Join(dir, SegmentName(3)), Options{Mode: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, batch("p")); err != nil {
		t.Fatal(err)
	}
	if w.Fsyncs() != 0 {
		t.Fatalf("async mode: %d fsyncs before Close, want 0", w.Fsyncs())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Fsyncs() != 1 {
		t.Fatalf("async mode: %d fsyncs after Close, want 1", w.Fsyncs())
	}
}

func TestTornTailDropped(t *testing.T) {
	dir := writeSegments(t, []Batch{
		{Seq: 1, Atoms: batch("p")},
		{Seq: 2, Atoms: batch("q")},
	})
	path := filepath.Join(dir, SegmentName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop increasing suffixes off the file; every cut must replay
	// cleanly with only the fully-written prefix of batches.
	for cut := 1; cut < 12; cut++ {
		if err := os.WriteFile(path, data[:len(data)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, last, err := replayAll(t, dir, 0)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if last != 1 || len(got) != 1 || got[0].Seq != 1 {
			t.Fatalf("cut %d: last=%d got=%v, want only batch 1", cut, last, got)
		}
	}
}

func TestTornTailInNonFinalSegmentIsCorruption(t *testing.T) {
	dir := writeSegments(t,
		[]Batch{{Seq: 1, Atoms: batch("p")}},
		[]Batch{{Seq: 2, Atoms: batch("q")}},
	)
	path := filepath.Join(dir, SegmentName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = replayAll(t, dir, 0)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CorruptError", err)
	}
}

func TestBadCRCIsCorruption(t *testing.T) {
	dir := writeSegments(t, []Batch{{Seq: 1, Atoms: batch("p")}})
	path := filepath.Join(dir, SegmentName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit in the last byte: the payload is complete, so this
	// can never be mistaken for a torn tail, even in the final segment.
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = replayAll(t, dir, 0)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CorruptError", err)
	}
}

func TestSequenceRegressionIsCorruption(t *testing.T) {
	dir := writeSegments(t, []Batch{
		{Seq: 5, Atoms: batch("p")},
		{Seq: 5, Atoms: batch("q")},
	})
	_, _, err := replayAll(t, dir, 0)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CorruptError", err)
	}
}

func TestCreateRefusesExisting(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, SegmentName(1))
	w, err := Create(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, err := Create(path, Options{}); err == nil {
		t.Fatal("Create over an existing segment succeeded")
	}
}

func TestSegmentsOrderAndMaxGen(t *testing.T) {
	dir := t.TempDir()
	for _, gen := range []uint64{7, 2, 12} {
		w, err := Create(filepath.Join(dir, SegmentName(gen)), Options{})
		if err != nil {
			t.Fatal(err)
		}
		w.Close()
	}
	// Non-segment files are ignored.
	if err := os.WriteFile(filepath.Join(dir, "snap-0000000000000000.snap"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	paths, maxGen, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if maxGen != 12 || len(paths) != 3 {
		t.Fatalf("maxGen=%d paths=%v", maxGen, paths)
	}
	for i, want := range []uint64{2, 7, 12} {
		if filepath.Base(paths[i]) != SegmentName(want) {
			t.Fatalf("paths[%d] = %s, want %s", i, paths[i], SegmentName(want))
		}
	}
}

func TestParseSyncMode(t *testing.T) {
	for in, want := range map[string]SyncMode{
		"always": SyncAlways, "interval": SyncInterval, "": SyncInterval, "async": SyncNone,
	} {
		got, err := ParseSyncMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncMode("sometimes"); err == nil {
		t.Fatal("ParseSyncMode accepted an unknown mode")
	}
}
