package persist

import (
	"strings"
	"testing"

	"repro/internal/chase"
	"repro/internal/datalog"
	"repro/internal/storage"
)

// buildBase returns a compile-style base interner holding the terms a
// prepared context would have interned, plus a chased instance over a
// fork of it (with one invented null) and a small orig instance.
func buildState(t testing.TB) (*datalog.Interner, SessionState) {
	t.Helper()
	base := datalog.NewInterner()
	for _, name := range []string{"alice", "bob", "hep"} {
		base.ID(datalog.C(name))
	}
	chased := storage.NewInstanceWith(base.Fork())
	if _, err := chased.CreateRelation("treats", "doc", "cond"); err != nil {
		t.Fatal(err)
	}
	chased.MustInsert("treats", datalog.C("alice"), datalog.C("hep"))
	chased.MustInsert("treats", datalog.C("bob"), datalog.C("hep"))
	chased.MustInsert("cert", datalog.C("alice"), datalog.N("n0"))

	orig := storage.NewInstance()
	orig.MustInsert("treats@v1", datalog.C("alice"), datalog.C("hep"))

	st := SessionState{
		Chased: chased,
		Orig:   orig,
		Chase: chase.Restored{
			Rounds: 3, Fired: 7, Merged: 1, NullsCreated: 1, FreshPos: 1,
			Saturated: true,
			Violations: []chase.Violation{
				{Kind: 0, ID: "nc1", Detail: "negative constraint matched"},
			},
		},
	}
	return base, st
}

func TestCodecRoundTrip(t *testing.T) {
	base, st := buildState(t)
	data, err := EncodeSnapshot(Meta{Context: "hospital", Session: "s1", Seq: 42, Applies: 5}, st)
	if err != nil {
		t.Fatal(err)
	}
	meta, got, err := ReadSnapshot(data, base)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Context != "hospital" || meta.Session != "s1" || meta.Seq != 42 || meta.Applies != 5 {
		t.Fatalf("meta round-trip: %+v", meta)
	}
	if !got.Chased.Equal(st.Chased) {
		t.Fatalf("chased instance differs:\n%s\nvs\n%s", got.Chased, st.Chased)
	}
	if !got.Orig.Equal(st.Orig) {
		t.Fatalf("orig instance differs")
	}
	if got.Chase.Rounds != 3 || got.Chase.Fired != 7 || got.Chase.Merged != 1 ||
		got.Chase.NullsCreated != 1 || got.Chase.FreshPos != 1 || !got.Chase.Saturated {
		t.Fatalf("chase counters differ: %+v", got.Chase)
	}
	if len(got.Chase.Violations) != 1 || got.Chase.Violations[0].ID != "nc1" {
		t.Fatalf("violations differ: %+v", got.Chase.Violations)
	}
	if got.Chased.Frozen() || got.Orig.Frozen() {
		t.Fatal("decoded instances must be mutable")
	}
	// Restored rows keep base ids: "alice" must decode to the same id.
	fork := got.Chased.Interner()
	if id, ok := fork.Lookup(datalog.C("alice")); !ok || id != 0 {
		t.Fatalf("alice decoded to id %d (ok=%v), want 0", id, ok)
	}
	// A frozen export encodes identically to its live source.
	st2 := st
	st2.Chased = st.Chased.Snapshot()
	data2, err := EncodeSnapshot(Meta{Context: "hospital", Session: "s1", Seq: 42, Applies: 5}, st2)
	if err != nil {
		t.Fatal(err)
	}
	if string(data2) != string(data) {
		t.Fatal("frozen snapshot encodes differently from its live source")
	}
}

func TestIncompatibleBaseRejected(t *testing.T) {
	_, st := buildState(t)
	data, err := EncodeSnapshot(Meta{Context: "hospital", Session: "s1"}, st)
	if err != nil {
		t.Fatal(err)
	}
	// A base whose id 0 is a different term: prefix verification fails.
	other := datalog.NewInterner()
	other.ID(datalog.C("mallory"))
	if _, _, err := ReadSnapshot(data, other); err == nil || !strings.Contains(err.Error(), "incompatible") {
		t.Fatalf("mismatched base: err = %v, want incompatible-context error", err)
	}
	// A base that interned MORE than the snapshot ever saw: also
	// incompatible (the snapshot cannot vouch for the extra prefix).
	longer := datalog.NewInterner()
	for _, name := range []string{"alice", "bob", "hep"} {
		longer.ID(datalog.C(name))
	}
	for i := 0; i < 10; i++ {
		longer.ID(datalog.C(strings.Repeat("x", i+1)))
	}
	if _, _, err := ReadSnapshot(data, longer); err == nil || !strings.Contains(err.Error(), "incompatible") {
		t.Fatalf("longer base: err = %v, want incompatible-context error", err)
	}
}

func TestCorruptedSectionsRejected(t *testing.T) {
	base, st := buildState(t)
	good, err := EncodeSnapshot(Meta{Context: "c", Session: "s"}, st)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadSnapshot(good, base); err != nil {
		t.Fatalf("pristine snapshot failed: %v", err)
	}
	// Flipping any single byte must be detected (magic, meta CRC or a
	// section CRC), never silently decoded.
	for off := 0; off < len(good); off++ {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x40
		if _, _, err := ReadSnapshot(bad, base); err == nil {
			t.Fatalf("bit flip at offset %d decoded cleanly", off)
		}
	}
	// Truncations must be detected too.
	for _, cut := range []int{1, 5, 9, len(good) / 2, len(good) - 1} {
		if _, _, err := ReadSnapshot(good[:len(good)-cut], base); err == nil {
			t.Fatalf("truncation by %d decoded cleanly", cut)
		}
	}
}

func TestRowHashGuardsSemanticCorruption(t *testing.T) {
	// The per-relation row-hash fold catches a decoded instance whose
	// rows differ from the encoded ones even if a CRC were somehow
	// satisfied; here we exercise the check directly by re-framing a
	// tampered body with a fresh (valid) CRC.
	base, st := buildState(t)
	good, err := EncodeSnapshot(Meta{Context: "c", Session: "s"}, st)
	if err != nil {
		t.Fatal(err)
	}
	_, metaEnd, err := ReadMeta(good)
	if err != nil {
		t.Fatal(err)
	}
	name, body, _, err := readSection(good, metaEnd)
	if err != nil || name != SectionChase {
		t.Fatalf("first section %q err %v", name, err)
	}
	tampered := append([]byte(nil), body...)
	tampered[len(tampered)-9] ^= 0x01 // a row byte, not the hash itself
	reframed := append([]byte(nil), good[:metaEnd]...)
	reframed = appendSection(reframed, SectionChase, tampered)
	reframed = appendSection(reframed, SectionOrig, nil)
	// Meta lists the sections, so reuse it as-is; only the chase body
	// changed. Decoding must fail on the row-hash (or row validation),
	// not succeed.
	if _, _, err := ReadSnapshot(reframed, base); err == nil {
		t.Fatal("tampered rows decoded cleanly")
	}
}
