package persist

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden snapshot files")

// goldenMeta is fixed so the golden bytes are deterministic.
func goldenMeta() Meta {
	return Meta{Context: "hospital", Session: "s1", Seq: 42, Created: "2026-01-01T00:00:00Z", Applies: 5}
}

// TestGoldenSnapshotLayout pins the on-disk snapshot layout: the
// checked-in golden file must decode with today's code, and today's
// encoder must reproduce it byte for byte. A diff here means the disk
// format changed — bump Format and write a migration before touching
// the golden.
func TestGoldenSnapshotLayout(t *testing.T) {
	base, st := buildState(t)
	path := filepath.Join("testdata", "golden.snap")
	encoded, err := EncodeSnapshot(goldenMeta(), st)
	if err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, encoded, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	meta, got, err := ReadSnapshot(golden, base)
	if err != nil {
		t.Fatalf("golden snapshot no longer decodes: %v", err)
	}
	if meta.Seq != 42 || meta.Context != "hospital" {
		t.Fatalf("golden meta: %+v", meta)
	}
	if !got.Chased.Equal(st.Chased) || !got.Orig.Equal(st.Orig) {
		t.Fatal("golden snapshot decodes to different instances")
	}
	reencoded, err := EncodeSnapshot(goldenMeta(), got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reencoded, golden) {
		t.Fatal("decode→encode of the golden snapshot is not byte-identical: the disk layout changed")
	}
	if !bytes.Equal(encoded, golden) {
		t.Fatal("encoder output differs from the golden snapshot: the disk layout changed")
	}
}
