package persist

import (
	"testing"

	"repro/internal/datalog"
)

// FuzzSnapshotHeader feeds arbitrary bytes to the snapshot decoder.
// It must never panic — every length, id and count is attacker-
// controlled until its CRC is verified, and even a CRC-valid body must
// be bounds-checked (CRCs catch rot, not crafted input).
func FuzzSnapshotHeader(f *testing.F) {
	seedBase, st := buildState(f)
	good, err := EncodeSnapshot(goldenMeta(), st)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte(magic))
	f.Add([]byte{})
	truncated := good[:len(good)/2]
	f.Add(truncated)

	f.Fuzz(func(t *testing.T, data []byte) {
		if _, _, err := ReadMeta(data); err != nil {
			// Invalid header: ReadSnapshot must agree.
			if _, _, err2 := ReadSnapshot(data, seedBase); err2 == nil {
				t.Fatal("ReadSnapshot accepted what ReadMeta rejected")
			}
			return
		}
		base := datalog.NewInterner()
		for _, name := range []string{"alice", "bob", "hep"} {
			base.ID(datalog.C(name))
		}
		_, _, _ = ReadSnapshot(data, base)
	})
}
