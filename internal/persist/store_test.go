package persist

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/datalog"
	"repro/internal/wal"
)

func testAtoms(tag string) []datalog.Atom {
	return []datalog.Atom{
		{Pred: "treats@v1", Args: []datalog.Term{datalog.C(tag), datalog.C("hep")}},
	}
}

func TestStoreRoundTrip(t *testing.T) {
	base, st := buildState(t)
	store, err := OpenStore(t.TempDir(), Options{WAL: wal.Options{Mode: wal.SyncNone}})
	if err != nil {
		t.Fatal(err)
	}
	l, err := store.CreateSession("hospital", "s1", Meta{}, st)
	if err != nil {
		t.Fatal(err)
	}
	for i, tag := range []string{"a", "b", "c"} {
		seq, err := l.Append(testAtoms(tag))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append %d assigned seq %d", i, seq)
		}
	}
	// Simulated crash: the log is dropped without Close. Same-process
	// reads see the kernel page cache, so the appended (un-fsynced)
	// batches are visible, as they would be after a SIGKILL.
	var got []wal.Batch
	l2, meta, st2, err := store.OpenSession("hospital", "s1", base, func(b wal.Batch) error {
		got = append(got, b)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if meta.Seq != 0 || len(got) != 3 || got[0].Seq != 1 || got[2].Seq != 3 {
		t.Fatalf("recovery: meta.Seq=%d batches=%v", meta.Seq, got)
	}
	if got[1].Atoms[0].Args[0] != datalog.C("b") {
		t.Fatalf("batch 2 atoms = %v", got[1].Atoms)
	}
	if !st2.Chased.Equal(st.Chased) || !st2.Orig.Equal(st.Orig) {
		t.Fatal("recovered state differs from created state")
	}
	if l2.Seq() != 3 {
		t.Fatalf("recovered log at seq %d, want 3", l2.Seq())
	}
	// New appends continue the numbering in a fresh segment.
	if seq, err := l2.Append(testAtoms("d")); err != nil || seq != 4 {
		t.Fatalf("post-recovery append: seq=%d err=%v", seq, err)
	}
}

func TestSnapshotCompaction(t *testing.T) {
	base, st := buildState(t)
	store, err := OpenStore(t.TempDir(), Options{WAL: wal.Options{Mode: wal.SyncNone}, SnapshotEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	l, err := store.CreateSession("hospital", "s1", Meta{}, st)
	if err != nil {
		t.Fatal(err)
	}
	if l.NeedSnapshot() {
		t.Fatal("fresh log wants a snapshot")
	}
	for _, tag := range []string{"a", "b"} {
		if _, err := l.Append(testAtoms(tag)); err != nil {
			t.Fatal(err)
		}
	}
	if !l.NeedSnapshot() {
		t.Fatal("log past SnapshotEvery does not want a snapshot")
	}
	covered, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if covered != 2 || l.NeedSnapshot() {
		t.Fatalf("rotate covered %d, need=%v", covered, l.NeedSnapshot())
	}
	// Appends may land in the new segment before the snapshot is out.
	if _, err := l.Append(testAtoms("c")); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot(Meta{Context: "hospital", Session: "s1", Seq: covered, Applies: 2}, st); err != nil {
		t.Fatal(err)
	}
	// Compaction: exactly one snapshot (the new one) and one segment
	// (the live one) remain.
	dir := filepath.Join(store.Root(), "hospital", "s1")
	snaps, seqs, err := snapshots(dir)
	if err != nil || len(snaps) != 1 || seqs[0] != 2 {
		t.Fatalf("snapshots after compaction: %v (seqs %v, err %v)", snaps, seqs, err)
	}
	segs, _, err := wal.Segments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments after compaction: %v (err %v)", segs, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Recovery replays only the post-snapshot batch.
	var got []wal.Batch
	l2, meta, _, err := store.OpenSession("hospital", "s1", base, func(b wal.Batch) error {
		got = append(got, b)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if meta.Seq != 2 || len(got) != 1 || got[0].Seq != 3 {
		t.Fatalf("post-compaction recovery: meta.Seq=%d batches=%v", meta.Seq, got)
	}
}

func TestInterruptedCleanupRecovers(t *testing.T) {
	// A crash between snapshot rename and cleanup leaves an old
	// snapshot and sealed segments behind; recovery must use the
	// newest snapshot and skip covered sequences in old segments.
	base, st := buildState(t)
	store, err := OpenStore(t.TempDir(), Options{WAL: wal.Options{Mode: wal.SyncNone}})
	if err != nil {
		t.Fatal(err)
	}
	l, err := store.CreateSession("hospital", "s1", Meta{}, st)
	if err != nil {
		t.Fatal(err)
	}
	for _, tag := range []string{"a", "b"} {
		if _, err := l.Append(testAtoms(tag)); err != nil {
			t.Fatal(err)
		}
	}
	covered, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(testAtoms("c")); err != nil {
		t.Fatal(err)
	}
	// Write the covering snapshot by hand, skipping cleanup (as if the
	// process died right after the rename).
	data, err := EncodeSnapshot(Meta{Context: "hospital", Session: "s1", Seq: covered, Applies: 2}, st)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(store.Root(), "hospital", "s1")
	if err := WriteFileAtomic(filepath.Join(dir, SnapName(covered)), data); err != nil {
		t.Fatal(err)
	}
	snaps, _, _ := snapshots(dir)
	segs, _, _ := wal.Segments(dir)
	if len(snaps) != 2 || len(segs) != 2 {
		t.Fatalf("setup: %d snaps, %d segs; want 2 and 2", len(snaps), len(segs))
	}
	var got []wal.Batch
	l2, meta, _, err := store.OpenSession("hospital", "s1", base, func(b wal.Batch) error {
		got = append(got, b)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if meta.Seq != 2 || len(got) != 1 || got[0].Seq != 3 {
		t.Fatalf("recovery with leftovers: meta.Seq=%d batches=%v", meta.Seq, got)
	}
}

func TestStoreListingAndRemove(t *testing.T) {
	_, st := buildState(t)
	store, err := OpenStore(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sid := range []string{"s2", "s1"} {
		l, err := store.CreateSession("hospital", sid, Meta{}, st)
		if err != nil {
			t.Fatal(err)
		}
		l.Close()
	}
	ctxs, err := store.ContextDirs()
	if err != nil || len(ctxs) != 1 || ctxs[0] != "hospital" {
		t.Fatalf("contexts: %v (err %v)", ctxs, err)
	}
	sids, err := store.SessionDirs("hospital")
	if err != nil || len(sids) != 2 || sids[0] != "s1" {
		t.Fatalf("sessions: %v (err %v)", sids, err)
	}
	if err := store.RemoveSession("hospital", "s1"); err != nil {
		t.Fatal(err)
	}
	if sids, _ = store.SessionDirs("hospital"); len(sids) != 1 || sids[0] != "s2" {
		t.Fatalf("sessions after remove: %v", sids)
	}
	if _, err := store.CreateSession("../evil", "s1", Meta{}, st); err == nil || !strings.Contains(err.Error(), "unsafe") {
		t.Fatalf("path traversal accepted: %v", err)
	}
	if _, err := os.Stat(filepath.Join(store.Root(), "hospital", "s2", SnapName(0))); err != nil {
		t.Fatalf("expected initial snapshot on disk: %v", err)
	}
}
