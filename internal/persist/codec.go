// Package persist implements mdserve's durable session snapshots: a
// versioned binary codec for saturated quality contexts plus the
// per-session store (see store.go) that pairs snapshots with a
// write-ahead log (package wal) into a crash-recoverable session
// directory.
//
// # Snapshot file layout
//
//	| magic "MDQSNP01" | metaLen u32 LE | metaCRC u32 LE | meta JSON |
//	| section* |
//
// where each section is
//
//	| nameLen u32 LE | name | bodyLen u32 LE | bodyCRC u32 LE | body |
//
// CRCs are CRC32-C (Castagnoli). The meta JSON (see Meta) carries the
// covered sequence number, the chase counters, and the section list; a
// session snapshot has two instance sections, "chase" (the saturated
// instance) and "orig" (the raw applied facts, for departure
// measures).
//
// An instance body is the full interner term table in id order
// followed by every relation as flat little-endian int32 row blocks,
// closed by an order-independent fold of the per-row bucket hashes
// (datalog.HashInt32s) — the same hashes the in-memory dedup buckets
// are built from — so a decoded instance is verified against the
// hash-bucket metadata of the encoded one, not just against the byte
// CRC.
//
// Decoding the "chase" section materializes rows over a fork of the
// live prepared base interner, verifying term-by-term that the encoded
// table is an extension of the base's: restored rows keep the exact
// ids the compiled plans were built against, and a snapshot written
// under a different context version fails loudly as incompatible
// rather than silently mis-joining.
package persist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/chase"
	"repro/internal/datalog"
	"repro/internal/history"
	"repro/internal/storage"
)

// Format is the snapshot format version, embedded in the magic and
// the meta JSON.
const Format = 1

const magic = "MDQSNP01"

// MaxMeta bounds the meta JSON; larger length prefixes are rejected
// before allocating.
const MaxMeta = 1 << 20

// MaxSection bounds a section body.
const MaxSection = 1 << 30

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Instance section names.
const (
	SectionChase = "chase"
	SectionOrig  = "orig"
	// SectionSources holds the last-applied external source tuples of
	// a session with live source bindings (one instance, one relation
	// per binding). Optional: snapshots written before sources existed
	// — or by sessions without them — omit it, and decode to a nil
	// Sources instance.
	SectionSources = "sources"
)

// Meta is the snapshot's JSON header.
type Meta struct {
	Format  int    `json:"format"`
	Context string `json:"context"`
	Session string `json:"session"`
	// Seq is the highest acknowledged apply sequence the snapshot
	// covers; WAL batches with Seq beyond it are replayed on recovery.
	Seq     uint64 `json:"seq"`
	Created string `json:"created,omitempty"`
	// Applies is the session's cumulative acknowledged batch count.
	Applies int       `json:"applies"`
	Chase   ChaseMeta `json:"chase"`
	// Instances lists the section names, in file order.
	Instances []string `json:"instances"`
	// SourceVersions records each source binding's version token as of
	// the snapshot, keyed by binding name; present only when the
	// session has live sources.
	SourceVersions map[string]string `json:"source_versions,omitempty"`
	// History is the session's version metadata (trajectory, wall
	// times, delta attribution) up to Seq. Metadata only — as-of reads
	// behind the in-memory ring reconstruct instances by WAL replay
	// from an earlier snapshot file. Absent from pre-history snapshots.
	History []history.Version `json:"history,omitempty"`
}

// ChaseMeta is the JSON shape of chase.Restored.
type ChaseMeta struct {
	Rounds     int               `json:"rounds"`
	Fired      int               `json:"fired"`
	Merged     int               `json:"merged"`
	Nulls      int               `json:"nulls"`
	FreshPos   int               `json:"fresh_pos"`
	Saturated  bool              `json:"saturated"`
	Violations []chase.Violation `json:"violations,omitempty"`
}

// ChaseMetaOf converts chase counters to their JSON shape.
func ChaseMetaOf(r chase.Restored) ChaseMeta {
	return ChaseMeta{
		Rounds:     r.Rounds,
		Fired:      r.Fired,
		Merged:     r.Merged,
		Nulls:      r.NullsCreated,
		FreshPos:   r.FreshPos,
		Saturated:  r.Saturated,
		Violations: r.Violations,
	}
}

// Restored converts back to chase counters.
func (m ChaseMeta) Restored() chase.Restored {
	return chase.Restored{
		Rounds:       m.Rounds,
		Fired:        m.Fired,
		Merged:       m.Merged,
		NullsCreated: m.Nulls,
		FreshPos:     m.FreshPos,
		Saturated:    m.Saturated,
		Violations:   m.Violations,
	}
}

// SessionState is the canonical durable state of one quality session:
// the saturated (chased) instance, the raw applied facts, and the
// portable chase counters. The quality layer exports and restores it;
// this package encodes and decodes it.
type SessionState struct {
	Chased *storage.Instance
	Orig   *storage.Instance
	Chase  chase.Restored
	// Sources holds the last-applied external source tuples (nil for
	// sessions without live source bindings), with SourceVersions the
	// per-binding version tokens they correspond to.
	Sources        *storage.Instance
	SourceVersions map[string]string
	// Seq is the apply sequence the state covers — the version number
	// the restored session resumes at. Carried in Meta.Seq on disk;
	// EncodeSnapshot takes it from its meta argument, ReadSnapshot
	// fills it in from the decoded header.
	Seq uint64
	// History is the session's version metadata up to Seq (see
	// Meta.History).
	History []history.Version
}

// EncodeSnapshot serializes a session snapshot. meta.Format, meta.Chase
// and meta.Instances are filled in from st.
func EncodeSnapshot(meta Meta, st SessionState) ([]byte, error) {
	if st.Chased == nil || st.Orig == nil {
		return nil, fmt.Errorf("persist: nil instance in session state")
	}
	meta.Format = Format
	meta.Chase = ChaseMetaOf(st.Chase)
	meta.History = st.History
	meta.Instances = []string{SectionChase, SectionOrig}
	if st.Sources != nil {
		meta.Instances = append(meta.Instances, SectionSources)
		meta.SourceVersions = st.SourceVersions
	}
	mj, err := json.Marshal(meta)
	if err != nil {
		return nil, fmt.Errorf("persist: marshal meta: %w", err)
	}
	out := append([]byte(nil), magic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(mj)))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(mj, castagnoli))
	out = append(out, mj...)
	out = appendSection(out, SectionChase, encodeInstance(st.Chased))
	out = appendSection(out, SectionOrig, encodeInstance(st.Orig))
	if st.Sources != nil {
		out = appendSection(out, SectionSources, encodeInstance(st.Sources))
	}
	return out, nil
}

func appendSection(dst []byte, name string, body []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(name)))
	dst = append(dst, name...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(body)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(body, castagnoli))
	return append(dst, body...)
}

// encodeInstance serializes one instance body: the interner term table
// in id order, then every relation's schema and flat int32 rows with a
// row-hash fold.
func encodeInstance(db *storage.Instance) []byte {
	in := db.Interner()
	var out []byte
	out = binary.AppendUvarint(out, uint64(in.Len()))
	for id := 0; id < in.Len(); id++ {
		t := in.TermOf(int32(id))
		out = append(out, byte(t.Kind))
		out = binary.AppendUvarint(out, uint64(len(t.Name)))
		out = append(out, t.Name...)
	}
	names := db.RelationNames()
	out = binary.AppendUvarint(out, uint64(len(names)))
	for _, name := range names {
		rel := db.Relation(name)
		attrs := rel.Schema().Attrs
		out = binary.AppendUvarint(out, uint64(len(name)))
		out = append(out, name...)
		out = binary.AppendUvarint(out, uint64(len(attrs)))
		for _, a := range attrs {
			out = binary.AppendUvarint(out, uint64(len(a)))
			out = append(out, a...)
		}
		rows := rel.Rows()
		out = binary.AppendUvarint(out, uint64(len(rows)))
		var fold uint64
		for _, row := range rows {
			for _, id := range row {
				out = binary.LittleEndian.AppendUint32(out, uint32(id))
			}
			fold ^= datalog.HashInt32s(row)
		}
		out = binary.LittleEndian.AppendUint64(out, fold)
	}
	return out
}

// ReadMeta parses and verifies the snapshot header, returning the meta
// and the offset of the first section.
func ReadMeta(data []byte) (Meta, int, error) {
	if len(data) < len(magic)+8 {
		return Meta{}, 0, fmt.Errorf("persist: snapshot too short for header")
	}
	if string(data[:len(magic)]) != magic {
		return Meta{}, 0, fmt.Errorf("persist: bad magic %q", data[:len(magic)])
	}
	off := len(magic)
	mlen := binary.LittleEndian.Uint32(data[off : off+4])
	msum := binary.LittleEndian.Uint32(data[off+4 : off+8])
	off += 8
	if mlen > MaxMeta || int(mlen) > len(data)-off {
		return Meta{}, 0, fmt.Errorf("persist: meta length %d out of range", mlen)
	}
	mj := data[off : off+int(mlen)]
	if crc32.Checksum(mj, castagnoli) != msum {
		return Meta{}, 0, fmt.Errorf("persist: meta CRC mismatch")
	}
	var meta Meta
	if err := json.Unmarshal(mj, &meta); err != nil {
		return Meta{}, 0, fmt.Errorf("persist: unmarshal meta: %w", err)
	}
	if meta.Format != Format {
		return Meta{}, 0, fmt.Errorf("persist: unsupported snapshot format %d (want %d)", meta.Format, Format)
	}
	return meta, off + int(mlen), nil
}

// ReadSnapshot decodes a snapshot against the live prepared base
// interner: the "chase" section is materialized over base.Fork() with
// term-by-term prefix verification (see the package comment), the
// "orig" section over a fresh interner. The returned instances are
// mutable and owned by the caller.
func ReadSnapshot(data []byte, base *datalog.Interner) (Meta, SessionState, error) {
	meta, off, err := ReadMeta(data)
	if err != nil {
		return Meta{}, SessionState{}, err
	}
	bodies := map[string][]byte{}
	var order []string
	for off < len(data) {
		name, body, next, err := readSection(data, off)
		if err != nil {
			return Meta{}, SessionState{}, err
		}
		if _, dup := bodies[name]; dup {
			return Meta{}, SessionState{}, fmt.Errorf("persist: duplicate section %q", name)
		}
		bodies[name] = body
		order = append(order, name)
		off = next
	}
	if len(order) != len(meta.Instances) {
		return Meta{}, SessionState{}, fmt.Errorf("persist: %d sections, meta lists %d", len(order), len(meta.Instances))
	}
	for i, name := range meta.Instances {
		if order[i] != name {
			return Meta{}, SessionState{}, fmt.Errorf("persist: section %d is %q, meta lists %q", i, order[i], name)
		}
	}
	chaseBody, ok := bodies[SectionChase]
	if !ok {
		return Meta{}, SessionState{}, fmt.Errorf("persist: missing %q section", SectionChase)
	}
	origBody, ok := bodies[SectionOrig]
	if !ok {
		return Meta{}, SessionState{}, fmt.Errorf("persist: missing %q section", SectionOrig)
	}
	chased, err := decodeInstance(chaseBody, base.Fork())
	if err != nil {
		return Meta{}, SessionState{}, fmt.Errorf("persist: %s section: %w", SectionChase, err)
	}
	orig, err := decodeInstance(origBody, datalog.NewInterner())
	if err != nil {
		return Meta{}, SessionState{}, fmt.Errorf("persist: %s section: %w", SectionOrig, err)
	}
	st := SessionState{
		Chased:  chased,
		Orig:    orig,
		Chase:   meta.Chase.Restored(),
		Seq:     meta.Seq,
		History: meta.History,
	}
	if srcBody, ok := bodies[SectionSources]; ok {
		st.Sources, err = decodeInstance(srcBody, datalog.NewInterner())
		if err != nil {
			return Meta{}, SessionState{}, fmt.Errorf("persist: %s section: %w", SectionSources, err)
		}
		st.SourceVersions = meta.SourceVersions
	}
	return meta, st, nil
}

func readSection(data []byte, off int) (name string, body []byte, next int, err error) {
	if len(data)-off < 4 {
		return "", nil, 0, fmt.Errorf("persist: truncated section header at %d", off)
	}
	nlen := binary.LittleEndian.Uint32(data[off : off+4])
	off += 4
	if nlen > 256 || int(nlen) > len(data)-off {
		return "", nil, 0, fmt.Errorf("persist: section name length %d out of range", nlen)
	}
	name = string(data[off : off+int(nlen)])
	off += int(nlen)
	if len(data)-off < 8 {
		return "", nil, 0, fmt.Errorf("persist: truncated section %q header", name)
	}
	blen := binary.LittleEndian.Uint32(data[off : off+4])
	bsum := binary.LittleEndian.Uint32(data[off+4 : off+8])
	off += 8
	if blen > MaxSection || int(blen) > len(data)-off {
		return "", nil, 0, fmt.Errorf("persist: section %q length %d out of range", name, blen)
	}
	body = data[off : off+int(blen)]
	if crc32.Checksum(body, castagnoli) != bsum {
		return "", nil, 0, fmt.Errorf("persist: section %q CRC mismatch", name)
	}
	return name, body, off + int(blen), nil
}

// decodeInstance materializes one instance body over the given
// interner. Encoded term ids below the interner's current length must
// match its existing assignments exactly (the prefix verification that
// binds a "chase" section to the live base); ids beyond it are
// interned in order and must come out dense.
func decodeInstance(p []byte, in *datalog.Interner) (*storage.Instance, error) {
	baseLen := uint64(in.Len())
	nterms, p, err := uvarint(p)
	if err != nil {
		return nil, err
	}
	if nterms > uint64(len(p)) {
		return nil, fmt.Errorf("term count %d exceeds body size", nterms)
	}
	if nterms < baseLen {
		return nil, fmt.Errorf("term table shorter than live base (%d < %d): snapshot is incompatible with this context", nterms, baseLen)
	}
	for id := uint64(0); id < nterms; id++ {
		if len(p) < 1 {
			return nil, fmt.Errorf("truncated term table")
		}
		kind := datalog.TermKind(p[0])
		p = p[1:]
		if kind != datalog.KindConst && kind != datalog.KindVar && kind != datalog.KindNull {
			return nil, fmt.Errorf("term %d: unknown kind %d", id, kind)
		}
		var n uint64
		n, p, err = uvarint(p)
		if err != nil {
			return nil, err
		}
		if n > uint64(len(p)) {
			return nil, fmt.Errorf("term %d: name runs past body", id)
		}
		t := datalog.Term{Kind: kind, Name: string(p[:n])}
		p = p[n:]
		if id < uint64(in.Len()) {
			if in.TermOf(int32(id)) != t {
				return nil, fmt.Errorf("term %d is %v, live base has %v: snapshot is incompatible with this context (was it written under a different context version or data dir?)", id, t, in.TermOf(int32(id)))
			}
			continue
		}
		if got := in.ID(t); got != int32(id) {
			return nil, fmt.Errorf("term %d re-interned as %d: duplicate table entry", id, got)
		}
	}
	db := storage.NewInstanceWith(in)
	nrel, p, err := uvarint(p)
	if err != nil {
		return nil, err
	}
	if nrel > uint64(len(p)) {
		return nil, fmt.Errorf("relation count %d exceeds body size", nrel)
	}
	var rowBuf []int32
	for r := uint64(0); r < nrel; r++ {
		var name string
		name, p, err = readString(p)
		if err != nil {
			return nil, fmt.Errorf("relation %d: %v", r, err)
		}
		var nattrs uint64
		nattrs, p, err = uvarint(p)
		if err != nil {
			return nil, err
		}
		if nattrs > uint64(len(p)) {
			return nil, fmt.Errorf("relation %s: attr count %d exceeds body size", name, nattrs)
		}
		attrs := make([]string, 0, nattrs)
		for i := uint64(0); i < nattrs; i++ {
			var a string
			a, p, err = readString(p)
			if err != nil {
				return nil, fmt.Errorf("relation %s attr %d: %v", name, i, err)
			}
			attrs = append(attrs, a)
		}
		rel, err := db.CreateRelation(name, attrs...)
		if err != nil {
			return nil, err
		}
		var nrows uint64
		nrows, p, err = uvarint(p)
		if err != nil {
			return nil, err
		}
		arity := uint64(len(attrs))
		need := nrows * arity * 4
		if arity > 0 && nrows > uint64(len(p))/(arity*4) {
			return nil, fmt.Errorf("relation %s: %d rows run past body", name, nrows)
		}
		if uint64(len(p)) < need {
			return nil, fmt.Errorf("relation %s: %d rows run past body", name, nrows)
		}
		var fold uint64
		for i := uint64(0); i < nrows; i++ {
			rowBuf = rowBuf[:0]
			for j := uint64(0); j < arity; j++ {
				rowBuf = append(rowBuf, int32(binary.LittleEndian.Uint32(p[:4])))
				p = p[4:]
			}
			fresh, err := rel.InsertRow(rowBuf)
			if err != nil {
				return nil, fmt.Errorf("relation %s row %d: %w", name, i, err)
			}
			if !fresh {
				return nil, fmt.Errorf("relation %s row %d: duplicate row in snapshot", name, i)
			}
			fold ^= datalog.HashInt32s(rowBuf)
		}
		if len(p) < 8 {
			return nil, fmt.Errorf("relation %s: truncated row-hash", name)
		}
		if want := binary.LittleEndian.Uint64(p[:8]); fold != want {
			return nil, fmt.Errorf("relation %s: row-hash mismatch (%#x != %#x)", name, fold, want)
		}
		p = p[8:]
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%d trailing bytes after relations", len(p))
	}
	return db, nil
}

func readString(p []byte) (string, []byte, error) {
	n, p, err := uvarint(p)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(p)) {
		return "", nil, fmt.Errorf("string runs past body")
	}
	return string(p[:n]), p[n:], nil
}

func uvarint(p []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, fmt.Errorf("bad uvarint")
	}
	return v, p[n:], nil
}

// WriteFileAtomic writes data to path durably: a temp file in the same
// directory is written, fsynced and renamed over path, and the
// directory is fsynced so the rename itself survives power loss.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
