package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/datalog"
	"repro/internal/qerr"
	"repro/internal/wal"
)

// DefaultSnapshotEvery is how many acknowledged batches accumulate in
// the WAL before NeedSnapshot reports true, when Options.SnapshotEvery
// is zero.
const DefaultSnapshotEvery = 256

// Options configures a store.
type Options struct {
	// WAL configures segment writers (sync mode, interval, OnSync).
	WAL wal.Options
	// SnapshotEvery is the batch count between snapshots
	// (0 = DefaultSnapshotEvery).
	SnapshotEvery int
	// RetainHistory keeps as-of reads answerable for the last N
	// versions after compaction: WriteSnapshot preserves the newest
	// older snapshot covering seq <= newSeq-N as a replay base (plus
	// any sealed WAL segments it still needs) instead of deleting
	// everything older. 0 preserves the historical behavior — one
	// snapshot, no replay-based time travel past it.
	RetainHistory int
}

// Store is the on-disk root of durable sessions, laid out as
// <root>/<context>/<session>/{snap-*.snap, wal-*.log}. A Store is
// cheap and stateless; all per-session state lives in SessionLog.
type Store struct {
	root string
	opts Options
}

// OpenStore opens (creating if needed) a store root.
func OpenStore(root string, opts Options) (*Store, error) {
	if opts.SnapshotEvery <= 0 {
		opts.SnapshotEvery = DefaultSnapshotEvery
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("persist: open store: %w", err)
	}
	return &Store{root: root, opts: opts}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// safeName guards path components built from context and session
// names.
func safeName(name string) error {
	if name == "" || name == "." || name == ".." || strings.ContainsAny(name, "/\\") {
		return fmt.Errorf("persist: unsafe path component %q", name)
	}
	return nil
}

func (s *Store) sessionDir(context, sid string) (string, error) {
	if err := safeName(context); err != nil {
		return "", err
	}
	if err := safeName(sid); err != nil {
		return "", err
	}
	return filepath.Join(s.root, context, sid), nil
}

// ContextDirs lists the context names with durable state.
func (s *Store) ContextDirs() ([]string, error) {
	return subdirs(s.root)
}

// SessionDirs lists the session ids persisted under a context.
func (s *Store) SessionDirs(context string) ([]string, error) {
	if err := safeName(context); err != nil {
		return nil, err
	}
	return subdirs(filepath.Join(s.root, context))
}

func subdirs(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// RemoveSession deletes a session's durable state entirely.
func (s *Store) RemoveSession(context, sid string) error {
	dir, err := s.sessionDir(context, sid)
	if err != nil {
		return err
	}
	return os.RemoveAll(dir)
}

// SnapName formats a snapshot file name for its covered sequence.
func SnapName(seq uint64) string { return fmt.Sprintf("snap-%016x.snap", seq) }

// snapSeq parses a snapshot file name, reporting whether it is one.
func snapSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
		return 0, false
	}
	var seq uint64
	if _, err := fmt.Sscanf(name, "snap-%016x.snap", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// snapshots lists a session directory's snapshot files in ascending
// covered-sequence order.
func snapshots(dir string) (paths []string, seqs []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	type snap struct {
		seq  uint64
		path string
	}
	var all []snap
	for _, e := range entries {
		if seq, ok := snapSeq(e.Name()); ok {
			all = append(all, snap{seq: seq, path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	for _, sn := range all {
		paths = append(paths, sn.path)
		seqs = append(seqs, sn.seq)
	}
	return paths, seqs, nil
}

// SessionLog is one session's durable log: the live WAL segment writer
// plus the snapshot bookkeeping. It is not safe for concurrent use;
// the server serializes on the session lock that also orders applies.
type SessionLog struct {
	dir       string
	opts      Options
	w         *wal.Writer
	gen       uint64 // current segment generation
	seq       uint64 // highest appended (or recovered) sequence
	snapSeq   uint64 // sequence covered by the latest durable snapshot
	sinceSnap int    // batches appended since that snapshot
}

// CreateSession initializes a fresh session directory: an initial
// snapshot of the given state (covering sequence 0, so recovery always
// has a base to replay onto) and the first WAL segment.
func (s *Store) CreateSession(context, sid string, meta Meta, st SessionState) (*SessionLog, error) {
	dir, err := s.sessionDir(context, sid)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: create session dir: %w", err)
	}
	meta.Context, meta.Session, meta.Seq = context, sid, 0
	data, err := EncodeSnapshot(meta, st)
	if err != nil {
		return nil, err
	}
	if err := WriteFileAtomic(filepath.Join(dir, SnapName(0)), data); err != nil {
		return nil, fmt.Errorf("persist: write initial snapshot: %w", err)
	}
	w, err := wal.Create(filepath.Join(dir, wal.SegmentName(1)), s.opts.WAL)
	if err != nil {
		return nil, err
	}
	return &SessionLog{dir: dir, opts: s.opts, w: w, gen: 1}, nil
}

// OpenSession recovers a persisted session: it decodes the newest
// snapshot (falling back to an older one only if a newer snapshot
// file is unreadable as a whole — sections are CRC'd, so a readable
// file that fails verification is corruption and fails loudly),
// replays every WAL batch beyond the snapshot's covered sequence
// through replay in order, then opens a fresh segment for new appends.
// The returned log continues the recovered sequence numbering.
func (s *Store) OpenSession(context, sid string, base *datalog.Interner, replay func(wal.Batch) error) (*SessionLog, Meta, SessionState, error) {
	dir, err := s.sessionDir(context, sid)
	if err != nil {
		return nil, Meta{}, SessionState{}, err
	}
	paths, seqs, err := snapshots(dir)
	if err != nil {
		return nil, Meta{}, SessionState{}, err
	}
	if len(paths) == 0 {
		return nil, Meta{}, SessionState{}, fmt.Errorf("persist: session %s/%s has no snapshot", context, sid)
	}
	// Newest snapshot first. WriteSnapshot only deletes older files
	// after the new one is durably renamed in, so the newest readable
	// file is always complete; older leftovers exist only when a crash
	// interrupted cleanup.
	i := len(paths) - 1
	data, err := os.ReadFile(paths[i])
	if err != nil {
		return nil, Meta{}, SessionState{}, err
	}
	meta, st, err := ReadSnapshot(data, base)
	if err != nil {
		return nil, Meta{}, SessionState{}, fmt.Errorf("persist: snapshot %s: %w", filepath.Base(paths[i]), err)
	}
	if meta.Seq != seqs[i] {
		return nil, Meta{}, SessionState{}, fmt.Errorf("persist: snapshot %s covers seq %d, file name says %d", filepath.Base(paths[i]), meta.Seq, seqs[i])
	}
	last, err := wal.ReplayDir(dir, meta.Seq, replay)
	if err != nil {
		return nil, Meta{}, SessionState{}, err
	}
	replayed := int(last - meta.Seq)
	_, maxGen, err := wal.Segments(dir)
	if err != nil {
		return nil, Meta{}, SessionState{}, err
	}
	gen := maxGen + 1
	w, err := wal.Create(filepath.Join(dir, wal.SegmentName(gen)), s.opts.WAL)
	if err != nil {
		return nil, Meta{}, SessionState{}, err
	}
	l := &SessionLog{
		dir: dir, opts: s.opts, w: w, gen: gen,
		seq: last, snapSeq: meta.Seq, sinceSnap: replayed,
	}
	return l, meta, st, nil
}

// Seq returns the highest appended (or recovered) sequence number.
func (l *SessionLog) Seq() uint64 { return l.seq }

// Append assigns the next sequence number and logs the batch. Only
// when Append returns nil may the batch be acknowledged.
func (l *SessionLog) Append(atoms []datalog.Atom) (uint64, error) {
	seq := l.seq + 1
	if err := l.w.Append(seq, atoms); err != nil {
		return 0, err
	}
	l.seq = seq
	l.sinceSnap++
	return seq, nil
}

// NeedSnapshot reports whether enough batches have accumulated since
// the last snapshot to warrant compaction.
func (l *SessionLog) NeedSnapshot() bool {
	return l.sinceSnap >= l.opts.SnapshotEvery
}

// Rotate seals the live segment and opens the next generation,
// returning the sequence number the pending snapshot must cover.
// Appends may continue (into the new segment) while the snapshot is
// encoded and written outside the session lock.
func (l *SessionLog) Rotate() (uint64, error) {
	if err := l.w.Close(); err != nil {
		return 0, err
	}
	l.gen++
	w, err := wal.Create(filepath.Join(l.dir, wal.SegmentName(l.gen)), l.opts.WAL)
	if err != nil {
		return 0, err
	}
	l.w = w
	covered := l.seq
	l.sinceSnap = 0
	return covered, nil
}

// WriteSnapshot writes a snapshot covering meta.Seq durably, then
// compacts: with Options.RetainHistory zero every older snapshot and
// every sealed (non-current) WAL segment is deleted — all their
// batches are covered. With retention N, the newest older snapshot
// covering seq <= meta.Seq-N survives as the replay base for as-of
// reconstruction (ReadSessionAt), along with every snapshot newer than
// it and every sealed segment holding batches beyond the base. Safe to
// call without the session lock: it touches no writer state.
func (l *SessionLog) WriteSnapshot(meta Meta, st SessionState) error {
	data, err := EncodeSnapshot(meta, st)
	if err != nil {
		return err
	}
	if err := WriteFileAtomic(filepath.Join(l.dir, SnapName(meta.Seq)), data); err != nil {
		return fmt.Errorf("persist: write snapshot: %w", err)
	}
	l.snapSeq = meta.Seq
	// The retention floor: versions >= floor must stay reconstructable,
	// so the newest snapshot covering seq <= floor is the replay base.
	floor := meta.Seq
	if retain := uint64(l.opts.RetainHistory); retain > 0 {
		if retain < floor {
			floor -= retain
		} else {
			floor = 0
		}
	}
	// Cleanup is best-effort: leftovers are re-deleted after the next
	// snapshot, and recovery tolerates them (replay skips covered
	// sequences).
	paths, seqs, err := snapshots(l.dir)
	baseSeq := meta.Seq
	if err == nil {
		base := -1
		for i, seq := range seqs {
			if seq <= floor && (base < 0 || seq > seqs[base]) {
				base = i
			}
		}
		if base >= 0 {
			baseSeq = seqs[base]
		}
		for i, p := range paths {
			if i < base || (base < 0 && seqs[i] != meta.Seq) {
				os.Remove(p)
			}
		}
	}
	segs, _, err := wal.Segments(l.dir)
	if err == nil {
		cur := filepath.Join(l.dir, wal.SegmentName(l.gen))
		for _, p := range segs {
			if p == cur {
				continue
			}
			if l.opts.RetainHistory > 0 && !segmentCovered(p, baseSeq) {
				continue // still needed to replay base -> newer versions
			}
			os.Remove(p)
		}
	}
	return nil
}

// segmentCovered reports whether every batch in a sealed segment has
// Seq <= baseSeq, i.e. the segment is fully behind the replay base and
// deletable. Any read or decode doubt keeps the segment — deleting a
// needed segment silently truncates time travel, keeping a stale one
// only costs disk.
func segmentCovered(path string, baseSeq uint64) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return false
	}
	covered := true
	err = wal.DecodeSegment(path, data, false, func(b wal.Batch) error {
		if b.Seq > baseSeq {
			covered = false
		}
		return nil
	})
	return err == nil && covered
}

// ReadSessionAt reconstructs a session's durable state at an exact
// historical version: it decodes the newest snapshot covering
// seq <= target and replays the WAL batches in (snapshot, target]
// through replay, in order. It is read-only — no segment is opened for
// appends and no file is touched — so it is safe alongside a live
// SessionLog on the same directory. A target older than every retained
// snapshot (compaction has dropped its replay base) yields a
// *qerr.VersionEvictedError naming the oldest reconstructable version;
// a target beyond the log yields a plain error (callers validate
// against the live session's latest version first).
func (s *Store) ReadSessionAt(context, sid string, target uint64, base *datalog.Interner, replay func(wal.Batch) error) (Meta, SessionState, error) {
	dir, err := s.sessionDir(context, sid)
	if err != nil {
		return Meta{}, SessionState{}, err
	}
	paths, seqs, err := snapshots(dir)
	if err != nil {
		return Meta{}, SessionState{}, err
	}
	bi := -1
	for i, seq := range seqs {
		if seq <= target {
			bi = i // ascending order: last match is the newest base
		}
	}
	if bi < 0 {
		oldest := uint64(0)
		if len(seqs) > 0 {
			oldest = seqs[0]
		}
		return Meta{}, SessionState{}, &qerr.VersionEvictedError{Version: target, Oldest: oldest}
	}
	data, err := os.ReadFile(paths[bi])
	if err != nil {
		return Meta{}, SessionState{}, err
	}
	meta, st, err := ReadSnapshot(data, base)
	if err != nil {
		return Meta{}, SessionState{}, fmt.Errorf("persist: snapshot %s: %w", filepath.Base(paths[bi]), err)
	}
	if meta.Seq != seqs[bi] {
		return Meta{}, SessionState{}, fmt.Errorf("persist: snapshot %s covers seq %d, file name says %d", filepath.Base(paths[bi]), meta.Seq, seqs[bi])
	}
	replayed := uint64(0)
	if _, err := wal.ReplayRange(dir, meta.Seq, target, func(b wal.Batch) error {
		replayed++
		return replay(b)
	}); err != nil {
		return Meta{}, SessionState{}, err
	}
	if meta.Seq+replayed != target {
		return Meta{}, SessionState{}, fmt.Errorf("persist: as-of %d: log ends at %d (snapshot %d + %d replayed)", target, meta.Seq+replayed, meta.Seq, replayed)
	}
	return meta, st, nil
}

// Sync forces the live segment to stable storage (shutdown flushes).
func (l *SessionLog) Sync() error { return l.w.Sync() }

// Close seals the live segment. The log is unusable afterwards; a
// later OpenSession resumes in a fresh generation.
func (l *SessionLog) Close() error { return l.w.Close() }
