package storage

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	dl "repro/internal/datalog"
)

// tuplesValue generates a batch of random ground tuples of fixed
// arity over a small alphabet, so duplicates and index collisions are
// common.
type tuplesValue struct {
	Tuples [][]dl.Term
}

func (tuplesValue) Generate(r *rand.Rand, _ int) reflect.Value {
	names := []string{"a", "b", "c", "d"}
	n := 1 + r.Intn(20)
	out := make([][]dl.Term, n)
	for i := range out {
		tup := make([]dl.Term, 3)
		for j := range tup {
			if r.Intn(6) == 0 {
				tup[j] = dl.N(names[r.Intn(len(names))])
			} else {
				tup[j] = dl.C(names[r.Intn(len(names))])
			}
		}
		out[i] = tup
	}
	return reflect.ValueOf(tuplesValue{Tuples: out})
}

func TestQuickInsertContains(t *testing.T) {
	f := func(tv tuplesValue) bool {
		rel := NewRelation(Schema{Name: "R", Attrs: []string{"x", "y", "z"}})
		for _, tup := range tv.Tuples {
			if _, err := rel.Insert(tup); err != nil {
				return false
			}
		}
		for _, tup := range tv.Tuples {
			if !rel.Contains(tup) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickInsertDedupCount(t *testing.T) {
	f := func(tv tuplesValue) bool {
		rel := NewRelation(Schema{Name: "R", Attrs: []string{"x", "y", "z"}})
		distinct := map[string]bool{}
		for _, tup := range tv.Tuples {
			added, err := rel.Insert(tup)
			if err != nil {
				return false
			}
			k := dl.Atom{Pred: "R", Args: tup}.Key()
			if added == distinct[k] {
				return false // added iff not seen before
			}
			distinct[k] = true
		}
		return rel.Len() == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickDeleteRemoves(t *testing.T) {
	f := func(tv tuplesValue, pick uint8) bool {
		rel := NewRelation(Schema{Name: "R", Attrs: []string{"x", "y", "z"}})
		for _, tup := range tv.Tuples {
			if _, err := rel.Insert(tup); err != nil {
				return false
			}
		}
		victim := tv.Tuples[int(pick)%len(tv.Tuples)]
		before := rel.Len()
		if !rel.Delete(victim) {
			return false
		}
		return !rel.Contains(victim) && rel.Len() == before-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickMatchAtomAgreesWithScan(t *testing.T) {
	// The indexed MatchAtom must return exactly the tuples a brute
	// force scan+Match finds.
	f := func(tv tuplesValue, pv uint8) bool {
		db := NewInstance()
		for _, tup := range tv.Tuples {
			if _, err := db.Insert("R", tup...); err != nil {
				return false
			}
		}
		// Random pattern: mix of constants from the alphabet and vars.
		r := rand.New(rand.NewSource(int64(pv)))
		names := []string{"a", "b", "c", "d"}
		args := make([]dl.Term, 3)
		for i := range args {
			if r.Intn(2) == 0 {
				args[i] = dl.V([]string{"u", "v", "w"}[i])
			} else {
				args[i] = dl.C(names[r.Intn(len(names))])
			}
		}
		pattern := dl.Atom{Pred: "R", Args: args}

		indexed := map[string]int{}
		db.MatchAtom(pattern, dl.NewSubst(), func(s dl.Subst) bool {
			indexed[s.ApplyAtom(pattern).Key()]++
			return true
		})
		scanned := map[string]int{}
		for _, tup := range db.Relation("R").Tuples() {
			fact := dl.Atom{Pred: "R", Args: tup}
			if s, ok := dl.Match(pattern, fact, dl.NewSubst()); ok {
				scanned[s.ApplyAtom(pattern).Key()]++
			}
		}
		if len(indexed) != len(scanned) {
			return false
		}
		for k, v := range scanned {
			if indexed[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickCloneEquality(t *testing.T) {
	f := func(tv tuplesValue) bool {
		db := NewInstance()
		for _, tup := range tv.Tuples {
			if _, err := db.Insert("R", tup...); err != nil {
				return false
			}
		}
		clone := db.Clone()
		if !db.Equal(clone) {
			return false
		}
		// Mutating the clone must not affect the original.
		clone.MustInsert("R", dl.C("fresh"), dl.C("fresh"), dl.C("fresh"))
		return !db.ContainsAtom(dl.A("R", dl.C("fresh"), dl.C("fresh"), dl.C("fresh")))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickReplaceTermEliminatesOld(t *testing.T) {
	f := func(tv tuplesValue) bool {
		db := NewInstance()
		for _, tup := range tv.Tuples {
			if _, err := db.Insert("R", tup...); err != nil {
				return false
			}
		}
		old := dl.N("a")
		db.ReplaceTerm(old, dl.C("merged"))
		for _, tup := range db.Relation("R").Tuples() {
			for _, term := range tup {
				if term == old {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickReplaceTermsMatchesSequential(t *testing.T) {
	// One batched ReplaceTerms (single rebuild) must produce the same
	// instance as applying the merges one at a time, chains included.
	f := func(tv tuplesValue) bool {
		batched := NewInstance()
		sequential := NewInstance()
		for _, tup := range tv.Tuples {
			if _, err := batched.Insert("R", tup...); err != nil {
				return false
			}
			if _, err := sequential.Insert("R", tup...); err != nil {
				return false
			}
		}
		// A merge cascade with a chain: n(a)->n(b)->C(m), plus an
		// independent merge n(c)->C(k).
		repl := map[dl.Term]dl.Term{
			dl.N("a"): dl.N("b"),
			dl.N("b"): dl.C("m"),
			dl.N("c"): dl.C("k"),
		}
		batched.ReplaceTerms(repl)
		// Sequential application in chain order.
		sequential.ReplaceTerm(dl.N("a"), dl.N("b"))
		sequential.ReplaceTerm(dl.N("b"), dl.C("m"))
		sequential.ReplaceTerm(dl.N("c"), dl.C("k"))
		return batched.Equal(sequential)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestReplaceTermsCycleMergesToLeast(t *testing.T) {
	// A cyclic replacement request is a merge class: every member maps
	// to the cycle's least term, not a parity-dependent rotation.
	db := NewInstance()
	db.MustInsert("R", dl.N("a"), dl.N("b"), dl.N("c"))
	db.ReplaceTerms(map[dl.Term]dl.Term{
		dl.N("a"): dl.N("b"),
		dl.N("b"): dl.N("a"),
		dl.N("c"): dl.N("a"), // chain into the cycle
	})
	want := []dl.Term{dl.N("a"), dl.N("a"), dl.N("a")}
	if !db.Relation("R").Contains(want) || db.Relation("R").Len() != 1 {
		t.Errorf("cycle merge produced %v, want single row %v", db.Relation("R").Tuples(), want)
	}
}

func TestQuickRowAPIAgreesWithTermAPI(t *testing.T) {
	// InsertRow/ContainsRow over interned ids must agree with the
	// Term-level Insert/Contains views.
	f := func(tv tuplesValue) bool {
		db := NewInstance()
		in := db.Interner()
		if _, err := db.CreateRelation("R", "x", "y", "z"); err != nil {
			return false
		}
		for _, tup := range tv.Tuples {
			row := in.IDs(tup, nil)
			wasPresent := db.Relation("R").Contains(tup)
			isNew, err := db.InsertRow("R", row)
			if err != nil {
				return false
			}
			if isNew == wasPresent {
				return false // new iff absent before
			}
			if !db.ContainsRow("R", row) || !db.Relation("R").Contains(tup) {
				return false
			}
		}
		// Every stored row round-trips through the interner.
		rel := db.Relation("R")
		for i, row := range rel.Rows() {
			terms := in.Terms(row, nil)
			tup := rel.Tuples()[i]
			for j := range terms {
				if terms[j] != tup[j] {
					return false
				}
			}
		}
		return rel.Len() <= len(tv.Tuples)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickMergeSuperset(t *testing.T) {
	f := func(av, bv tuplesValue) bool {
		a, b := NewInstance(), NewInstance()
		for _, tup := range av.Tuples {
			if _, err := a.Insert("R", tup...); err != nil {
				return false
			}
		}
		for _, tup := range bv.Tuples {
			if _, err := b.Insert("R", tup...); err != nil {
				return false
			}
		}
		if err := Merge(a, b); err != nil {
			return false
		}
		// a now contains everything from b.
		return len(b.Diff(a)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
