package storage

import (
	"container/list"
	"fmt"
	"strings"
	"sync"

	"repro/internal/datalog"
)

// PlanCache is a concurrency-safe LRU of compiled query plans keyed by
// normalized query shape, fronting CompileQueryPlan for ad-hoc queries
// (mdserve's ?q= answers re-parse and would otherwise re-plan the same
// conjunction on every request).
//
// Cache hits must be exactly as correct as a fresh compile, which
// pivots on interner identity: a query plan hard-codes interned
// constant ids and is only meaningful against an interner holding the
// same assignments. Server queries run against frozen snapshots, each
// a fresh fork of the session's live interner — never the same
// *Interner twice — so keying on db.Interner() would never hit.
// Instead entries are keyed by the snapshot's fork parent (the
// session's live interner, stable across snapshots) plus the query
// shape, and guarded by the interner length and total tuple count at
// compile time: two frozen forks of the same parent with equal Len
// hold identical id assignments (forking copies the parent's table,
// and a frozen instance never interns), so rebinding the cached plan
// to the new snapshot's interner is sound. The tuple-count guard
// additionally drops plans whose cost-based atom order was computed
// against data that has since changed — stale ordering is only a
// performance bug, but the guard is cheap and keeps estimates honest.
type PlanCache struct {
	mu      sync.Mutex
	cap     int
	entries map[cacheKey]*list.Element
	order   *list.List // front = most recently used
	hits    int64
	misses  int64
	evicted int64
}

type cacheKey struct {
	lineage *datalog.Interner // fork parent (or the interner itself for roots)
	shape   string
}

type cacheEntry struct {
	key   cacheKey
	plan  *Plan
	inLen int // interner length at compile time
	rows  int // total tuple count at compile time
}

// NewPlanCache returns a cache holding at most capacity plans;
// capacity <= 0 disables caching (every call compiles fresh).
func NewPlanCache(capacity int) *PlanCache {
	return &PlanCache{
		cap:     capacity,
		entries: map[cacheKey]*list.Element{},
		order:   list.New(),
	}
}

// ShapeKey returns the normalized shape of a conjunction: predicate
// symbols and argument patterns with variables canonicalized by first
// occurrence, so α-equivalent queries share one cache entry. Constants
// are length-prefixed, making the encoding injective.
func ShapeKey(body []datalog.Atom) string {
	var b strings.Builder
	vars := map[string]int{}
	for _, a := range body {
		b.WriteString(a.Pred)
		b.WriteByte('(')
		for i, t := range a.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			if t.IsVar() {
				n, ok := vars[t.Name]
				if !ok {
					n = len(vars)
					vars[t.Name] = n
				}
				fmt.Fprintf(&b, "v%d", n)
			} else {
				s := t.String()
				fmt.Fprintf(&b, "c%d:%s", len(s), s)
			}
		}
		b.WriteString(").")
	}
	return b.String()
}

// QueryPlan returns a compiled read-only plan for the conjunction over
// db, serving from the cache when a structurally identical query was
// planned against an equivalent snapshot (see the type comment for the
// soundness argument). A nil cache, a disabled cache and a non-frozen
// instance all fall back to a plain CompileQueryPlan. It implements
// eval.QueryPlanner.
func (c *PlanCache) QueryPlan(db *Instance, body []datalog.Atom) *Plan {
	if c == nil || c.cap <= 0 || !db.Frozen() {
		return CompileQueryPlan(db, body)
	}
	in := db.Interner()
	lineage := in.Parent()
	if lineage == nil {
		lineage = in
	}
	key := cacheKey{lineage: lineage, shape: ShapeKey(body)}

	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		if e.inLen == in.Len() && e.rows == db.TotalTuples() {
			c.order.MoveToFront(el)
			c.hits++
			c.mu.Unlock()
			// Rebind to this snapshot's interner: a struct copy sharing
			// the immutable compile artifacts, same as Plan.Retarget.
			out := *e.plan
			out.in = in
			return &out
		}
		// Stale (data or interner advanced): replace below.
		c.order.Remove(el)
		delete(c.entries, key)
	}
	c.misses++
	c.mu.Unlock()

	plan := CompileQueryPlan(db, body)

	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; !ok { // a racing compile may have filled it
		c.entries[key] = c.order.PushFront(&cacheEntry{
			key: key, plan: plan, inLen: in.Len(), rows: db.TotalTuples(),
		})
		for len(c.entries) > c.cap {
			back := c.order.Back()
			c.order.Remove(back)
			delete(c.entries, back.Value.(*cacheEntry).key)
			c.evicted++
		}
	}
	return plan
}

// Stats returns the cumulative hit/miss/eviction counters, for
// /metrics export.
func (c *PlanCache) Stats() (hits, misses, evictions int64) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evicted
}
