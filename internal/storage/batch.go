package storage

import (
	"fmt"

	"repro/internal/datalog"
)

// Batch is a per-worker staging buffer for derived rows: parallel
// chase and eval workers accumulate (relation, interned row) pairs
// into a private Batch while matching against a frozen round view,
// and a single writer merges every batch afterwards in a fixed order
// (Instance.MergeBatch). Rows are copied into a chunked arena on Add,
// so staging allocates once per chunk, not once per row, and the
// emission order is preserved exactly — the merge order of a round is
// (unit order, emission order), which keeps parallel runs
// deterministic for a fixed worker count.
//
// A Batch is not safe for concurrent use; the parallel engines give
// every work unit its own.
type Batch struct {
	preds []string
	rows  [][]int32
	arena datalog.Int32Arena
}

// Add stages one row for the named relation. The row is copied; the
// caller may reuse the slice immediately (register/projection buffers
// are reused across matches).
func (b *Batch) Add(pred string, row []int32) {
	b.preds = append(b.preds, pred)
	b.rows = append(b.rows, b.arena.Copy(row))
}

// Len returns the number of staged rows.
func (b *Batch) Len() int { return len(b.rows) }

// Pred returns the relation name of the i-th staged row.
func (b *Batch) Pred(i int) string { return b.preds[i] }

// Row returns the i-th staged row. The slice is owned by the batch.
func (b *Batch) Row(i int) []int32 { return b.rows[i] }

// Reset empties the batch for reuse, dropping its arena chunks.
func (b *Batch) Reset() {
	b.preds = b.preds[:0]
	b.rows = b.rows[:0]
	b.arena.Reset()
}

// InsertBatch merges a slice of staged rows into the relation under
// the single-writer contract: rows are deduplicated against the
// existing hash buckets (and each other) exactly as row-at-a-time
// InsertRow would, stored through the same arenas, and indexed
// incrementally — the merged relation is indistinguishable from one
// built by sequential inserts in the same order. onNew, when non-nil,
// receives the arena-stored copy of every row that was actually new
// (valid for the relation's lifetime, like Rows() entries). It
// returns the number of new rows.
func (r *Relation) InsertBatch(rows [][]int32, onNew func(stored []int32)) (int, error) {
	if r.frozen {
		return 0, errFrozen(r.schema.Name)
	}
	added := 0
	for _, ids := range rows {
		stored, isNew, err := r.insertRowStored(ids)
		if err != nil {
			return added, err
		}
		if isNew {
			added++
			if onNew != nil {
				onNew(stored)
			}
		}
	}
	return added, nil
}

// MergeBatch merges a staged batch into the instance in emission
// order, creating relations as needed (synthetic attribute names,
// like InsertRow). onNew, when non-nil, receives the relation name
// and arena-stored row of every row that was actually new. It returns
// the number of new rows. MergeBatch is the single-writer half of the
// parallel round protocol: workers stage into private Batches against
// a frozen view, then one goroutine merges every batch in unit order.
// Each run of consecutive same-relation rows merges through one
// Relation.InsertBatch call.
func (db *Instance) MergeBatch(b *Batch, onNew func(pred string, stored []int32)) (int, error) {
	added := 0
	for i := 0; i < len(b.rows); {
		pred := b.preds[i]
		j := i + 1
		for j < len(b.rows) && b.preds[j] == pred {
			j++
		}
		rel, err := db.ensure(pred, len(b.rows[i]))
		if err != nil {
			return added, err
		}
		var perRow func(stored []int32)
		if onNew != nil {
			perRow = func(stored []int32) { onNew(pred, stored) }
		}
		n, err := rel.InsertBatch(b.rows[i:j], perRow)
		added += n
		if err != nil {
			return added, fmt.Errorf("storage: merge batch: %w", err)
		}
		i = j
	}
	return added, nil
}
