package storage

import (
	"testing"

	dl "repro/internal/datalog"
)

// idOf resolves a constant's interned id, failing the test when the
// instance has never seen it.
func idOf(t *testing.T, db *Instance, name string) int32 {
	t.Helper()
	id, ok := db.Interner().Lookup(dl.C(name))
	if !ok {
		t.Fatalf("constant %q not interned", name)
	}
	return id
}

func TestRelationStatsIncremental(t *testing.T) {
	db := NewInstance()
	db.MustInsert("R", dl.C("a"), dl.C("x"))
	db.MustInsert("R", dl.C("a"), dl.C("y"))
	db.MustInsert("R", dl.C("b"), dl.C("x"))
	rel := db.Relation("R")
	if got := rel.DistinctAt(0); got != 2 {
		t.Errorf("DistinctAt(0) = %d, want 2 (a, b)", got)
	}
	if got := rel.DistinctAt(1); got != 2 {
		t.Errorf("DistinctAt(1) = %d, want 2 (x, y)", got)
	}
	if got := rel.MaxBucketAt(0); got != 2 {
		t.Errorf("MaxBucketAt(0) = %d, want 2 (bucket a)", got)
	}
	if got := rel.BucketLen(0, idOf(t, db, "a")); got != 2 {
		t.Errorf("BucketLen(0, a) = %d, want 2", got)
	}
	if got := rel.BucketLen(1, idOf(t, db, "x")); got != 2 {
		t.Errorf("BucketLen(1, x) = %d, want 2", got)
	}
	// Duplicates are rejected and must not inflate any counter.
	db.MustInsert("R", dl.C("a"), dl.C("x"))
	if got := rel.MaxBucketAt(0); got != 2 {
		t.Errorf("MaxBucketAt(0) after dup insert = %d, want 2", got)
	}
	// A third distinct value in a new bucket grows the max.
	db.MustInsert("R", dl.C("a"), dl.C("z"))
	if got, want := rel.MaxBucketAt(0), 3; got != want {
		t.Errorf("MaxBucketAt(0) = %d, want %d", got, want)
	}
	if got, want := rel.DistinctAt(1), 3; got != want {
		t.Errorf("DistinctAt(1) = %d, want %d", got, want)
	}
}

func TestRelationStatsSurviveRebuild(t *testing.T) {
	db := NewInstance()
	db.MustInsert("R", dl.C("a"), dl.C("x"))
	db.MustInsert("R", dl.C("a"), dl.C("y"))
	db.MustInsert("R", dl.C("b"), dl.C("x"))
	rel := db.Relation("R")

	// Delete triggers a full rebuild; stats must reflect what remains.
	if !db.DeleteAtom(dl.A("R", dl.C("a"), dl.C("y"))) {
		t.Fatal("delete failed")
	}
	if got := rel.MaxBucketAt(0); got != 1 {
		t.Errorf("MaxBucketAt(0) after delete = %d, want 1", got)
	}
	if got := rel.DistinctAt(1); got != 1 {
		t.Errorf("DistinctAt(1) after delete = %d, want 1 (x)", got)
	}
	if got := rel.BucketLen(0, idOf(t, db, "a")); got != 1 {
		t.Errorf("BucketLen(0, a) after delete = %d, want 1", got)
	}

	// ReplaceTerm also rebuilds: folding b into a merges the buckets.
	db.ReplaceTerm(dl.C("b"), dl.C("a"))
	if got := rel.DistinctAt(0); got != 1 {
		t.Errorf("DistinctAt(0) after replace = %d, want 1", got)
	}
	if got := rel.MaxBucketAt(0); got != rel.Len() {
		t.Errorf("MaxBucketAt(0) after replace = %d, want %d", got, rel.Len())
	}
}

func TestRelationStatsCopyOnWrite(t *testing.T) {
	db := NewInstance()
	db.MustInsert("R", dl.C("a"), dl.C("x"))
	db.MustInsert("R", dl.C("a"), dl.C("y"))
	snap := db.Snapshot()
	live := db.Relation("R")
	frozen := snap.Relation("R")

	// Growing the live side must not disturb the frozen snapshot's
	// statistics — the planner costs cached plans against them.
	db.MustInsert("R", dl.C("a"), dl.C("z"))
	db.MustInsert("R", dl.C("b"), dl.C("z"))
	if got := frozen.MaxBucketAt(0); got != 2 {
		t.Errorf("frozen MaxBucketAt(0) = %d, want 2", got)
	}
	if got := frozen.DistinctAt(0); got != 1 {
		t.Errorf("frozen DistinctAt(0) = %d, want 1", got)
	}
	if got := live.MaxBucketAt(0); got != 3 {
		t.Errorf("live MaxBucketAt(0) = %d, want 3", got)
	}
	if got := live.DistinctAt(0); got != 2 {
		t.Errorf("live DistinctAt(0) = %d, want 2", got)
	}

	// Clone copies the stats picture wholesale.
	clone := live.Clone()
	if got, want := clone.MaxBucketAt(0), live.MaxBucketAt(0); got != want {
		t.Errorf("clone MaxBucketAt(0) = %d, want %d", got, want)
	}
	if got, want := clone.DistinctAt(1), live.DistinctAt(1); got != want {
		t.Errorf("clone DistinctAt(1) = %d, want %d", got, want)
	}
}
