package storage

import (
	"testing"

	"repro/internal/datalog"
)

func snapDB(t *testing.T) *Instance {
	t.Helper()
	db := NewInstance()
	if _, err := db.CreateRelation("R", "a", "b"); err != nil {
		t.Fatal(err)
	}
	db.MustInsert("R", datalog.C("x"), datalog.C("y"))
	db.MustInsert("R", datalog.C("x"), datalog.C("z"))
	return db
}

func TestSnapshotIsolatesFromInserts(t *testing.T) {
	db := snapDB(t)
	snap := db.Snapshot()
	if !snap.Frozen() {
		t.Fatal("snapshot not frozen")
	}
	if snap.Relation("R").Len() != 2 {
		t.Fatalf("snapshot len = %d, want 2", snap.Relation("R").Len())
	}
	db.MustInsert("R", datalog.C("w"), datalog.C("y"))
	if snap.Relation("R").Len() != 2 {
		t.Fatalf("snapshot grew to %d after writer insert", snap.Relation("R").Len())
	}
	if db.Relation("R").Len() != 3 {
		t.Fatalf("writer len = %d, want 3", db.Relation("R").Len())
	}
	// A fresh snapshot sees the new state.
	if db.Snapshot().Relation("R").Len() != 3 {
		t.Fatal("fresh snapshot missed the insert")
	}
}

func TestSnapshotIsolatesFromReplaceTerms(t *testing.T) {
	db := snapDB(t)
	snap := db.Snapshot()
	if n := db.ReplaceTerm(datalog.C("x"), datalog.C("q")); n != 2 {
		t.Fatalf("ReplaceTerm changed %d tuples, want 2", n)
	}
	if !snap.Relation("R").Contains([]datalog.Term{datalog.C("x"), datalog.C("y")}) {
		t.Fatal("snapshot lost its original tuple after writer ReplaceTerm")
	}
	if snap.Relation("R").Contains([]datalog.Term{datalog.C("q"), datalog.C("y")}) {
		t.Fatal("snapshot sees the writer's rewrite")
	}
	if !db.Relation("R").Contains([]datalog.Term{datalog.C("q"), datalog.C("y")}) {
		t.Fatal("writer lost its rewrite")
	}
}

func TestSnapshotIsolatesFromDelete(t *testing.T) {
	db := snapDB(t)
	snap := db.Snapshot()
	if !db.Relation("R").Delete([]datalog.Term{datalog.C("x"), datalog.C("y")}) {
		t.Fatal("delete failed")
	}
	if snap.Relation("R").Len() != 2 {
		t.Fatalf("snapshot len = %d after writer delete, want 2", snap.Relation("R").Len())
	}
}

func TestSnapshotRejectsMutation(t *testing.T) {
	db := snapDB(t)
	snap := db.Snapshot()
	if _, err := snap.Insert("R", datalog.C("a"), datalog.C("b")); err == nil {
		t.Fatal("insert into frozen snapshot succeeded")
	}
	if _, err := snap.CreateRelation("S", "a"); err == nil {
		t.Fatal("relation creation in frozen snapshot succeeded")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ReplaceTerm on frozen snapshot did not panic")
			}
		}()
		snap.ReplaceTerm(datalog.C("x"), datalog.C("q"))
	}()
}

func TestSnapshotInternerIsForked(t *testing.T) {
	db := snapDB(t)
	snap := db.Snapshot()
	// Writer interning after the snapshot must not touch the
	// snapshot's interner.
	before := snap.Interner().Len()
	db.MustInsert("R", datalog.C("fresh"), datalog.C("fresh2"))
	if snap.Interner().Len() != before {
		t.Fatal("snapshot interner grew with writer interning")
	}
	if !snap.Interner().DescendsFrom(db.Interner()) {
		t.Fatal("snapshot interner does not descend from the writer's")
	}
}

func TestSnapshotReadsAndClones(t *testing.T) {
	db := snapDB(t)
	snap := db.Snapshot()
	db.MustInsert("R", datalog.C("w"), datalog.C("v"))

	// Reads on the snapshot work: match, contains, query plans.
	found := 0
	snap.MatchAtom(datalog.A("R", datalog.V("a"), datalog.V("b")), datalog.NewSubst(), func(datalog.Subst) bool {
		found++
		return true
	})
	if found != 2 {
		t.Fatalf("snapshot matched %d tuples, want 2", found)
	}
	plan := CompileQueryPlan(snap, []datalog.Atom{datalog.A("R", datalog.C("x"), datalog.V("b"))})
	n := 0
	plan.Execute(snap, plan.NewRegs(), func([]int32) bool {
		n++
		return true
	})
	if n != 2 {
		t.Fatalf("plan over snapshot found %d rows, want 2", n)
	}

	// A detached clone of a snapshot is mutable again.
	c := snap.CloneDetached()
	if c.Frozen() {
		t.Fatal("clone of a snapshot is frozen")
	}
	c.MustInsert("R", datalog.C("m"), datalog.C("n"))
	if snap.Relation("R").Len() != 2 {
		t.Fatal("mutating a clone leaked into the snapshot")
	}
}

func TestSnapshotOfSnapshot(t *testing.T) {
	db := snapDB(t)
	snap := db.Snapshot()
	snap2 := snap.Snapshot()
	if snap2.Relation("R").Len() != 2 {
		t.Fatal("snapshot of snapshot lost data")
	}
}

func TestPlanRetarget(t *testing.T) {
	db := snapDB(t)
	plan := CompilePlan(db, []datalog.Atom{datalog.A("R", datalog.V("a"), datalog.V("b"))})
	det := db.CloneDetached()
	rp := plan.Retarget(det.Interner())
	n := 0
	rp.Execute(det, rp.NewRegs(), func([]int32) bool {
		n++
		return true
	})
	if n != 2 {
		t.Fatalf("retargeted plan found %d rows, want 2", n)
	}
	// Retarget onto an unrelated interner must panic.
	other := NewInstance()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Retarget onto unrelated interner did not panic")
			}
		}()
		plan.Retarget(other.Interner())
	}()
}
