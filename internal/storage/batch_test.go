package storage

import (
	"fmt"
	"math/rand"
	"testing"

	dl "repro/internal/datalog"
)

// joinDB builds a two-relation instance for shard/batch tests.
func joinDB(t *testing.T, seed int64, rows int) *Instance {
	t.Helper()
	db := NewInstance()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < rows; i++ {
		db.MustInsert("R", dl.C(fmt.Sprintf("a%d", rng.Intn(8))), dl.C(fmt.Sprintf("b%d", rng.Intn(8))))
		db.MustInsert("S", dl.C(fmt.Sprintf("b%d", rng.Intn(8))), dl.C(fmt.Sprintf("c%d", rng.Intn(8))))
	}
	return db
}

// TestExecuteShardPartitionsExecute pins the sharding contract: the
// concatenation of shards 0..n-1 must reproduce Execute's matches in
// Execute's order, for any shard count.
func TestExecuteShardPartitionsExecute(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		db := joinDB(t, seed, 30)
		body := []dl.Atom{
			dl.A("R", dl.V("x"), dl.V("y")),
			dl.A("S", dl.V("y"), dl.V("z")),
		}
		plan := CompilePlan(db, body)
		collect := func(run func(fn func([]int32) bool)) [][]int32 {
			var out [][]int32
			run(func(regs []int32) bool {
				out = append(out, append([]int32(nil), regs...))
				return true
			})
			return out
		}
		want := collect(func(fn func([]int32) bool) {
			plan.Execute(db, plan.NewRegs(), fn)
		})
		for _, nshards := range []int{1, 2, 3, 7, 64} {
			var got [][]int32
			for s := 0; s < nshards; s++ {
				got = append(got, collect(func(fn func([]int32) bool) {
					plan.ExecuteShard(db, plan.NewRegs(), s, nshards, fn)
				})...)
			}
			if len(got) != len(want) {
				t.Fatalf("seed %d nshards %d: %d sharded matches, want %d", seed, nshards, len(got), len(want))
			}
			for i := range want {
				for j := range want[i] {
					if got[i][j] != want[i][j] {
						t.Fatalf("seed %d nshards %d: match %d = %v, want %v", seed, nshards, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestExecuteShardGroundBody covers the zero-slot edge: a fully
// ground body has exactly one match, owned by shard 0.
func TestExecuteShardGroundBody(t *testing.T) {
	db := NewInstance()
	db.MustInsert("R", dl.C("a"), dl.C("b"))
	plan := CompilePlan(db, []dl.Atom{dl.A("R", dl.C("a"), dl.C("b"))})
	total := 0
	for s := 0; s < 4; s++ {
		plan.ExecuteShard(db, plan.NewRegs(), s, 4, func([]int32) bool {
			total++
			return true
		})
	}
	if total != 1 {
		t.Fatalf("ground body matched %d times across shards, want 1", total)
	}
}

// TestMergeBatchMatchesSequentialInserts pins the single-writer merge
// to row-at-a-time insertion: same dedup, same final relation, and
// onNew fires exactly for the genuinely new rows, in batch order.
func TestMergeBatchMatchesSequentialInserts(t *testing.T) {
	db := NewInstance()
	in := db.Interner()
	a, b, c := in.ID(dl.C("a")), in.ID(dl.C("b")), in.ID(dl.C("c"))
	if _, err := db.CreateRelation("R", "x", "y"); err != nil {
		t.Fatal(err)
	}
	db.MustInsert("R", dl.C("a"), dl.C("b")) // pre-existing row

	var batch Batch
	staged := [][]int32{{a, b}, {a, c}, {b, c}, {a, c}, {c, c}}
	preds := []string{"R", "R", "R", "R", "T"}
	for i, row := range staged {
		batch.Add(preds[i], row)
	}
	if batch.Len() != len(staged) {
		t.Fatalf("batch len = %d, want %d", batch.Len(), len(staged))
	}

	seq := db.Clone()
	var wantNew [][2]string
	for i, row := range staged {
		isNew, err := seq.InsertRow(preds[i], row)
		if err != nil {
			t.Fatal(err)
		}
		if isNew {
			wantNew = append(wantNew, [2]string{preds[i], fmt.Sprint(row)})
		}
	}

	var gotNew [][2]string
	added, err := db.MergeBatch(&batch, func(pred string, stored []int32) {
		gotNew = append(gotNew, [2]string{pred, fmt.Sprint(stored)})
	})
	if err != nil {
		t.Fatal(err)
	}
	if added != len(wantNew) {
		t.Fatalf("MergeBatch added %d, want %d", added, len(wantNew))
	}
	if fmt.Sprint(gotNew) != fmt.Sprint(wantNew) {
		t.Fatalf("onNew sequence %v, want %v", gotNew, wantNew)
	}
	if !db.Equal(seq) {
		t.Fatalf("merged instance differs from sequential inserts:\n%s\nvs\n%s", db, seq)
	}
	// Insertion order must match too (merge order = batch order).
	for _, name := range seq.RelationNames() {
		sr, mr := seq.Relation(name), db.Relation(name)
		if sr.Len() != mr.Len() {
			t.Fatalf("relation %s: %d vs %d rows", name, mr.Len(), sr.Len())
		}
		for i, row := range sr.Rows() {
			for j := range row {
				if mr.Row(i)[j] != row[j] {
					t.Fatalf("relation %s row %d: %v vs %v", name, i, mr.Row(i), row)
				}
			}
		}
	}

	// Reset empties the batch for reuse.
	batch.Reset()
	if batch.Len() != 0 {
		t.Fatalf("reset batch len = %d", batch.Len())
	}
}

// TestInsertBatchFrozen verifies batch merges respect the snapshot
// freeze.
func TestInsertBatchFrozen(t *testing.T) {
	db := NewInstance()
	db.MustInsert("R", dl.C("a"), dl.C("b"))
	snap := db.Snapshot()
	row := []int32{0, 1}
	if _, err := snap.Relation("R").InsertBatch([][]int32{row}, nil); err == nil {
		t.Fatal("InsertBatch into frozen snapshot succeeded")
	}
	var batch Batch
	batch.Add("R", row)
	if _, err := snap.MergeBatch(&batch, nil); err == nil {
		t.Fatal("MergeBatch into frozen snapshot succeeded")
	}
}
