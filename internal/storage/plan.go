package storage

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/datalog"
)

// Plan is a compiled join plan for a positive conjunction: the atom
// order, the variable-to-register-slot assignment and the per-argument
// actions are all computed once at compile time, so executing the plan
// performs no map operations, no substitution cloning and no per-level
// slice allocation — candidate rows are filtered by integer
// comparisons against a flat []int32 register bank, with backtracking
// implemented as slot resets (an undo trail whose entries are known
// statically per atom).
//
// A plan is compiled against an instance (whose interner supplies the
// ids for the plan's constants and whose relation sizes break ordering
// ties) and may be executed against that instance or any instance
// sharing its interner — in particular every Clone, which is how the
// chase and eval engines reuse one plan across rounds. Executing
// against an instance with a different interner transparently falls
// back to the legacy Subst-based matcher.
type Plan struct {
	in   *datalog.Interner
	body []datalog.Atom // original conjunction, for fallback and display
	// vars assigns register slots: slot i holds the binding of vars[i]
	// (datalog.NoID when unbound).
	vars  []datalog.Term
	slots map[string]int // variable name -> slot
	atoms []planAtom     // in execution order
}

// planArg is one argument position of a plan atom.
type planArg struct {
	isConst bool
	id      int32 // interned constant id (isConst)
	slot    int   // register slot (!isConst)
}

// planAtom is one body atom, reordered and compiled.
type planAtom struct {
	pred  string
	arity int
	args  []planArg
	// groundPos lists argument positions known to be ground when this
	// atom executes (constants, or variables bound by earlier atoms or
	// declared bound at compile time); the executor probes the smallest
	// index bucket among them.
	groundPos []int
	// allGround marks an atom whose every position is ground at compile
	// time: it binds nothing, so executing it is a pure membership test
	// and the executor probes the relation's row-hash bucket in O(1)
	// instead of scanning a posting list. (Declared-bound slots the
	// caller leaves unseeded fall back to the scan path at run time.)
	allGround bool
	// est is the planner's candidate-row estimate for this atom at the
	// point it was chosen (see atomCost), kept for EXPLAIN output.
	est float64
}

// unknownID is the compile-time id of a constant the interner has
// never seen in read-only (non-interning) mode. It is negative and
// distinct from datalog.NoID, so it can never equal a stored row
// value: atoms carrying it simply match nothing, which is exactly the
// semantics of a constant absent from the instance.
const unknownID int32 = -2

// CompilePlan compiles a join plan for the conjunction over db's
// interner. bound declares variables the caller will pre-bind in the
// registers before execution (e.g. the frontier variables of a TGD
// head check, or the pivot variables of a semi-naive delta pass);
// declaring them lets the planner order atoms as if they were
// constants. Atom order is greedy and cost-based: each step picks the
// remaining atom with the smallest estimated candidate count under the
// bindings accumulated so far, reading the relations' live statistics
// (row counts, per-position distinct counts and max-bucket sizes — see
// atomCost). The legacy static ordering remains reachable through
// CompilePlanStatic so tests can pin the two orderings to identical
// match sets.
//
// CompilePlan interns the conjunction's constants, so ids stay stable
// while the instance grows — the right mode for the chase and eval
// engines, which compile against instances they own (see
// CloneDetached) and then insert into them. For evaluation over a
// fixed instance the caller does not own, use CompileQueryPlan, which
// leaves the interner untouched.
func CompilePlan(db *Instance, body []datalog.Atom, bound ...datalog.Term) *Plan {
	return compilePlan(db, body, bound, true, false)
}

// CompilePlanStatic compiles with the pre-cost-model ordering (most
// ground arguments first, smaller relation breaking ties), kept as the
// reference ordering for property tests: cost-ordered and
// static-ordered plans must enumerate identical match sets.
func CompilePlanStatic(db *Instance, body []datalog.Atom, bound ...datalog.Term) *Plan {
	return compilePlan(db, body, bound, true, true)
}

// CompileQueryPlan compiles a read-only join plan: constants the
// instance has never seen become a never-matching sentinel instead of
// being interned, so compiling and executing the plan leaves the
// instance — including its interner — completely unmodified. Correct
// for fixed instances; do not use it when facts will be inserted
// between compilation and execution.
func CompileQueryPlan(db *Instance, body []datalog.Atom, bound ...datalog.Term) *Plan {
	return compilePlan(db, body, bound, false, false)
}

func compilePlan(db *Instance, body []datalog.Atom, bound []datalog.Term, intern, static bool) *Plan {
	p := &Plan{
		in:    db.in,
		body:  datalog.CloneAtoms(body),
		slots: map[string]int{},
	}
	for _, a := range body {
		for _, t := range a.Args {
			if t.IsVar() {
				if _, ok := p.slots[t.Name]; !ok {
					p.slots[t.Name] = len(p.vars)
					p.vars = append(p.vars, t)
				}
			}
		}
	}

	boundSlots := make([]bool, len(p.vars))
	for _, v := range bound {
		if s, ok := p.slots[v.Name]; ok {
			boundSlots[s] = true
		}
	}

	// Greedy ordering simulation: each step picks the cheapest remaining
	// atom under the slots bound so far. Both orderings are fully
	// deterministic (strict comparisons, remaining kept in source
	// order), which the parallel engines' byte-identity depends on.
	remaining := make([]datalog.Atom, len(body))
	copy(remaining, body)
	for len(remaining) > 0 {
		best := 0
		if static {
			bestScore, bestSize := -1, 0
			for i, a := range remaining {
				score := p.groundCount(a, boundSlots)
				size := 0
				if rel := db.relations[a.Pred]; rel != nil {
					size = rel.Len()
				}
				if score > bestScore || (score == bestScore && size < bestSize) {
					best, bestScore, bestSize = i, score, size
				}
			}
		} else {
			bestCost, bestGround := math.Inf(1), -1
			for i, a := range remaining {
				cost := p.atomCost(db, a, boundSlots)
				// Ties (common on empty prepare-time instances, where
				// every cost is 0) fall back to most-ground-first, then
				// source order.
				ground := p.groundCount(a, boundSlots)
				if cost < bestCost || (cost == bestCost && ground > bestGround) {
					best, bestCost, bestGround = i, cost, ground
				}
			}
		}
		chosen := remaining[best]
		est := p.atomCost(db, chosen, boundSlots)
		remaining = append(remaining[:best], remaining[best+1:]...)

		pa := planAtom{pred: chosen.Pred, arity: len(chosen.Args), est: est}
		pa.args = make([]planArg, len(chosen.Args))
		for pos, t := range chosen.Args {
			if t.IsVar() {
				slot := p.slots[t.Name]
				pa.args[pos] = planArg{slot: slot}
				if boundSlots[slot] {
					pa.groundPos = append(pa.groundPos, pos)
				}
				boundSlots[slot] = true
			} else {
				pa.args[pos] = planArg{isConst: true, id: p.constID(t, intern)}
				pa.groundPos = append(pa.groundPos, pos)
			}
		}
		pa.allGround = len(pa.groundPos) == pa.arity
		p.atoms = append(p.atoms, pa)
	}
	return p
}

// constID resolves a ground term to an id at compile time: interning
// in engine mode, the never-matching sentinel for unseen terms in
// read-only mode.
func (p *Plan) constID(t datalog.Term, intern bool) int32 {
	if intern {
		return p.in.ID(t)
	}
	if id, ok := p.in.Lookup(t); ok {
		return id
	}
	return unknownID
}

// groundCount counts arguments of a that are ground under boundSlots:
// constants plus variables already bound.
func (p *Plan) groundCount(a datalog.Atom, boundSlots []bool) int {
	n := 0
	for _, t := range a.Args {
		if !t.IsVar() || boundSlots[p.slots[t.Name]] {
			n++
		}
	}
	return n
}

// atomCost estimates how many candidate rows executing atom a would
// touch under the given bound slots, from the relation's live
// statistics. The executor probes the smallest index bucket among the
// atom's ground positions, so the estimate is the cheapest
// per-position bucket estimate, scaled by the selectivity of the other
// ground positions (each filters the candidates by roughly est/rows):
//
//   - a compile-time constant costs its exact posting-list length
//     (constant pushdown: the planner sees precisely what the index
//     probe will scan, and an absent constant prunes to zero);
//   - a bound variable's value is unknown at plan time, so its bucket
//     is estimated as the geometric mean of the average bucket
//     (rows/distinct) and the largest bucket — a cheap skew guard: a
//     position dominated by one hot value is not priced at its
//     misleadingly low average;
//   - an atom with no ground positions costs a full scan (rows).
//
// A missing relation, arity mismatch or empty relation costs 0 —
// matching nothing is the cheapest possible atom and pruning early is
// exactly right. An atom ground at every position costs at most 1: the
// executor resolves it as a row-hash membership probe, not a scan.
func (p *Plan) atomCost(db *Instance, a datalog.Atom, boundSlots []bool) float64 {
	rel := db.relations[a.Pred]
	if rel == nil || rel.schema.Arity() != len(a.Args) {
		return 0
	}
	rows := float64(rel.Len())
	if rows == 0 {
		return 0
	}
	best, sel := rows, 1.0
	ground := 0
	for pos, t := range a.Args {
		var est float64
		if !t.IsVar() {
			id, ok := p.in.Lookup(t)
			if !ok {
				return 0 // constant the instance has never seen: no match
			}
			est = float64(rel.BucketLen(pos, id))
			if est == 0 {
				return 0
			}
		} else if boundSlots[p.slots[t.Name]] {
			avg := rows / float64(rel.DistinctAt(pos))
			est = math.Sqrt(avg * float64(rel.MaxBucketAt(pos)))
			if est > rows {
				est = rows
			}
		} else {
			continue
		}
		ground++
		if est < best {
			best, est = est, best // previous best becomes a filter
		}
		sel *= est / rows
	}
	cost := best * sel
	// A fully-ground atom executes as an O(1) row-hash membership probe
	// (see probeGround), not a posting-list scan: cap its cost at one
	// row so the planner front-loads these fail-fast checks.
	if ground == len(a.Args) && cost > 1 {
		cost = 1
	}
	return cost
}

// NumSlots returns the register bank size.
func (p *Plan) NumSlots() int { return len(p.vars) }

// Vars returns the plan's variables in slot order. The slice is owned
// by the plan.
func (p *Plan) Vars() []datalog.Term { return p.vars }

// Slot returns the register slot of variable v, or -1 when v does not
// occur in the plan's conjunction.
func (p *Plan) Slot(v datalog.Term) int {
	if s, ok := p.slots[v.Name]; ok {
		return s
	}
	return -1
}

// Interner returns the interner the plan's constants were compiled
// against.
func (p *Plan) Interner() *datalog.Interner { return p.in }

// Retarget returns a copy of the plan bound to a descendant interner
// (see datalog.Interner.DescendsFrom). Forks preserve every id the
// ancestor assigned, so the compiled constants and slot assignments
// stay valid; the copy shares the immutable compile artifacts (atom
// order, projections) with the original. This is how a prepared
// session re-homes plans compiled once against a base instance onto
// its own detached clone: Retarget is O(1) where recompiling is
// O(body). It panics when in does not descend from the plan's
// interner, since register values would be meaningless.
func (p *Plan) Retarget(in *datalog.Interner) *Plan {
	if in == p.in {
		return p
	}
	if !in.DescendsFrom(p.in) {
		panic("storage: Plan.Retarget onto unrelated interner")
	}
	out := *p
	out.in = in
	return &out
}

// NewRegs returns a fresh register bank with every slot unbound.
func (p *Plan) NewRegs() []int32 {
	regs := make([]int32, len(p.vars))
	for i := range regs {
		regs[i] = datalog.NoID
	}
	return regs
}

// ResetRegs marks every slot unbound, for register-bank reuse.
func (p *Plan) ResetRegs(regs []int32) {
	for i := range regs {
		regs[i] = datalog.NoID
	}
}

// Execute enumerates all homomorphisms of the conjunction into db,
// extending the bindings already present in regs (slots holding
// datalog.NoID are free). fn is invoked once per complete match with
// the filled register bank; it must not retain regs, which is reused.
// fn returning false stops enumeration; Execute reports whether
// enumeration ran to completion. On return, regs holds exactly its
// initial bindings again.
//
// db must share the plan's interner (true for the compile instance and
// all its clones); Execute panics otherwise, since raw register values
// would be meaningless. Use Run for the checked, Subst-based entry
// point.
//
// Execute only reads db: any number of goroutines may execute plans
// (each with its own register bank) against one instance concurrently,
// provided nothing mutates the instance or interns new terms for the
// duration — the discipline the parallel chase/eval rounds follow by
// staging all insertions into per-worker Batches and merging them
// after the workers join.
func (p *Plan) Execute(db *Instance, regs []int32, fn func(regs []int32) bool) bool {
	if db.in != p.in {
		panic("storage: Plan.Execute on instance with foreign interner")
	}
	return p.exec(db, 0, regs, fn)
}

// ExecuteShard enumerates the subset of Execute's matches whose
// first-atom candidate row falls in the shard-th of nshards contiguous
// slices of the first atom's candidate list. Shards partition the
// match set: concatenating the matches of shards 0..nshards-1 yields
// exactly Execute's matches in Execute's order, which is how parallel
// engines split one plan across workers while keeping a deterministic
// merge order. Like Execute it only reads db; each worker passes its
// own register bank.
func (p *Plan) ExecuteShard(db *Instance, regs []int32, shard, nshards int, fn func(regs []int32) bool) bool {
	if db.in != p.in {
		panic("storage: Plan.ExecuteShard on instance with foreign interner")
	}
	if nshards <= 1 {
		return p.exec(db, 0, regs, fn)
	}
	if len(p.atoms) == 0 {
		// A zero-atom plan has exactly one (empty) match; shard 0 owns it.
		if shard == 0 {
			return fn(regs)
		}
		return true
	}
	pa := &p.atoms[0]
	rel := db.relations[pa.pred]
	if rel == nil || rel.schema.Arity() != pa.arity {
		return true
	}
	bucket, haveBucket := p.candidates(rel, pa, regs)
	n := len(rel.rows)
	if haveBucket {
		n = len(bucket)
	}
	lo, hi := shard*n/nshards, (shard+1)*n/nshards
	for i := lo; i < hi; i++ {
		idx := i
		if haveBucket {
			idx = bucket[i]
		}
		if !p.tryRow(db, pa, 0, rel.rows[idx], regs, fn) {
			return false
		}
	}
	return true
}

// probeGround resolves a fully-ground atom as an O(1) membership test
// against the relation's row-hash buckets: rows are deduplicated on
// insert, so the probe row matches at most once and the continuation
// is identical to scanning a posting list — just without touching it.
// This is the run-time half of constant pushdown, and it is what makes
// semi-naive delta pivots cheap: a delta plan's residual atoms are
// often fully bound by the pivot row, turning each of potentially
// millions of pivot executions into a hash lookup. ok=false means some
// declared-bound slot was left unseeded, so the atom is not actually
// ground and the caller must take the scan path.
func (p *Plan) probeGround(rel *Relation, pa *planAtom, regs []int32) (member, ok bool) {
	var buf [8]int32
	row := buf[:0]
	if pa.arity > len(buf) {
		row = make([]int32, 0, pa.arity)
	}
	for pos := range pa.args {
		a := &pa.args[pos]
		id := a.id
		if !a.isConst {
			id = regs[a.slot]
			if id == datalog.NoID {
				return false, false
			}
		}
		row = append(row, id)
	}
	_, member = rel.lookupRow(row)
	return member, true
}

// candidates returns the candidate row list for atom pa under regs:
// the smallest index bucket among pa's ground positions (positions
// beyond the compile-time groundPos may also be ground — callers can
// seed extra slots — and are checked per row either way), or
// haveBucket=false meaning every row must be scanned. It is the one
// shared implementation behind exec's per-level probe and
// ExecuteShard's partition, so a shard always slices exactly the list
// exec would walk — the invariant the parallel engines' determinism
// rests on.
func (p *Plan) candidates(rel *Relation, pa *planAtom, regs []int32) (bucket []int, haveBucket bool) {
	for _, pos := range pa.groundPos {
		a := pa.args[pos]
		id := a.id
		if !a.isConst {
			id = regs[a.slot]
			if id == datalog.NoID {
				continue // declared bound but not seeded: treat as free
			}
		}
		b := rel.indexes[pos][id]
		if !haveBucket || len(b) < len(bucket) {
			bucket, haveBucket = b, true
		}
		if len(bucket) == 0 {
			break // empty bucket: nothing can match
		}
	}
	return bucket, haveBucket
}

func (p *Plan) exec(db *Instance, ai int, regs []int32, fn func([]int32) bool) bool {
	if ai == len(p.atoms) {
		return fn(regs)
	}
	pa := &p.atoms[ai]
	rel := db.relations[pa.pred]
	if rel == nil || rel.schema.Arity() != pa.arity {
		return true // no facts can match; enumeration is (vacuously) complete
	}
	if pa.allGround {
		if member, ok := p.probeGround(rel, pa, regs); ok {
			if !member {
				return true
			}
			return p.exec(db, ai+1, regs, fn)
		}
	}
	bucket, haveBucket := p.candidates(rel, pa, regs)
	if haveBucket {
		for _, idx := range bucket {
			if !p.tryRow(db, pa, ai, rel.rows[idx], regs, fn) {
				return false
			}
		}
		return true
	}
	for idx := range rel.rows {
		if !p.tryRow(db, pa, ai, rel.rows[idx], regs, fn) {
			return false
		}
	}
	return true
}

// tryRow matches one candidate row against the atom's arguments,
// binding free slots, and recurses into the rest of the plan. Slots
// bound here are reset before returning (static undo trail).
func (p *Plan) tryRow(db *Instance, pa *planAtom, ai int, row []int32, regs []int32, fn func([]int32) bool) bool {
	var trail [16]int
	bound := trail[:0]
	if len(pa.args) > len(trail) {
		bound = make([]int, 0, len(pa.args))
	}
	ok := true
	for pos := range pa.args {
		a := &pa.args[pos]
		if a.isConst {
			if row[pos] != a.id {
				ok = false
				break
			}
			continue
		}
		if v := regs[a.slot]; v != datalog.NoID {
			if row[pos] != v {
				ok = false
				break
			}
			continue
		}
		regs[a.slot] = row[pos]
		bound = append(bound, a.slot)
	}
	complete := true
	if ok {
		complete = p.exec(db, ai+1, regs, fn)
	}
	for _, s := range bound {
		regs[s] = datalog.NoID
	}
	return complete
}

// Run enumerates the conjunction's homomorphisms extending the initial
// substitution, invoking fn with a Subst per match — the thin adapter
// that keeps compiled plans source-compatible with the legacy
// MatchConjunction API. It falls back to the legacy matcher when db
// does not share the plan's interner or when init binds a plan
// variable to a non-ground term (variable renamings are outside the
// register representation).
func (p *Plan) Run(db *Instance, init datalog.Subst, fn func(datalog.Subst) bool) bool {
	if db.in != p.in {
		return db.MatchConjunction(p.body, init, fn)
	}
	regs := p.NewRegs()
	for i, v := range p.vars {
		t := init.Apply(v)
		if t == v {
			continue // unbound
		}
		if !t.IsGround() {
			return db.MatchConjunction(p.body, init, fn)
		}
		if id, ok := p.in.Lookup(t); ok {
			regs[i] = id
		} else {
			// A term no row can hold: the variable occurs in some body
			// atom, so no homomorphism exists. Seeding the sentinel
			// makes every candidate row fail without interning the
			// term.
			regs[i] = unknownID
		}
	}
	return p.Execute(db, regs, func(rs []int32) bool {
		return fn(p.SubstAt(rs, init))
	})
}

// SubstAt materializes the register bank as a substitution extending
// base (base itself is not modified).
func (p *Plan) SubstAt(regs []int32, base datalog.Subst) datalog.Subst {
	out := base.Clone()
	for i, v := range p.vars {
		if regs[i] != datalog.NoID {
			out.Bind(v.Name, p.in.TermOf(regs[i]))
		}
	}
	return out
}

// TermAt resolves the plan term t under the register bank: constants
// and nulls resolve to themselves, bound plan variables to their
// register value, anything else to t itself.
func (p *Plan) TermAt(regs []int32, t datalog.Term) datalog.Term {
	if !t.IsVar() {
		return t
	}
	if s, ok := p.slots[t.Name]; ok && regs[s] != datalog.NoID {
		return p.in.TermOf(regs[s])
	}
	return t
}

// Proj is a compiled projection from a plan's register bank onto the
// argument row of one atom: each item is either an interned constant
// or a register slot. Evaluation engines use projections to build
// derived rows, probe negated atoms and seed delta pivots without
// materializing atoms or substitutions.
type Proj struct {
	Pred  string
	items []planArg
}

// CompileProj compiles atom a against the plan's register space,
// interning a's constants (engine mode: the projected rows will be
// inserted, so ids must be real). Every variable of a must occur in
// the plan's conjunction (rule safety guarantees this for heads and
// negated atoms); CompileProj panics otherwise.
func (p *Plan) CompileProj(a datalog.Atom) Proj {
	return p.compileProj(a, true)
}

// CompileProbe compiles atom a for membership probes only, without
// interning: constants the instance has never seen become the
// never-matching sentinel, so ContainsRow on the projected row is
// false — the correct closed-world answer — and the instance stays
// unmodified.
func (p *Plan) CompileProbe(a datalog.Atom) Proj {
	return p.compileProj(a, false)
}

func (p *Plan) compileProj(a datalog.Atom, intern bool) Proj {
	items := make([]planArg, len(a.Args))
	for i, t := range a.Args {
		if t.IsVar() {
			s := p.Slot(t)
			if s < 0 {
				panic(fmt.Sprintf("storage: projection variable %s not in plan", t))
			}
			items[i] = planArg{slot: s}
		} else {
			items[i] = planArg{isConst: true, id: p.constID(t, intern)}
		}
	}
	return Proj{Pred: a.Pred, items: items}
}

// Len returns the projected row arity.
func (pr *Proj) Len() int { return len(pr.items) }

// Project fills dst (len == Len()) with the atom's row under regs.
func (pr *Proj) Project(regs []int32, dst []int32) {
	for i, it := range pr.items {
		if it.isConst {
			dst[i] = it.id
		} else {
			dst[i] = regs[it.slot]
		}
	}
}

// Bind seeds regs from a concrete row of the projected atom, the
// reverse of Project: constants are checked against the row, variable
// slots are bound (or checked when already bound, which also handles
// repeated variables). It reports false when the row cannot match.
func (pr *Proj) Bind(row []int32, regs []int32) bool {
	for i, it := range pr.items {
		if it.isConst {
			if row[i] != it.id {
				return false
			}
			continue
		}
		if v := regs[it.slot]; v != datalog.NoID && v != row[i] {
			return false
		}
		regs[it.slot] = row[i]
	}
	return true
}

// String renders the plan's atom order and slot assignment, for tests
// and EXPLAIN-style debugging.
func (p *Plan) String() string {
	var b strings.Builder
	b.WriteString("plan[")
	for i := range p.atoms {
		if i > 0 {
			b.WriteString(" ⋈ ")
		}
		p.writeAtom(&b, &p.atoms[i])
	}
	b.WriteByte(']')
	return b.String()
}

// writeAtom renders one compiled atom as Pred(r0,c,...).
func (p *Plan) writeAtom(b *strings.Builder, pa *planAtom) {
	b.WriteString(pa.pred)
	b.WriteByte('(')
	for j, a := range pa.args {
		if j > 0 {
			b.WriteByte(',')
		}
		if a.isConst {
			if a.id == unknownID {
				b.WriteString("⊥")
			} else {
				b.WriteString(p.in.TermOf(a.id).String())
			}
		} else {
			fmt.Fprintf(b, "r%d", a.slot)
		}
	}
	b.WriteByte(')')
}

// Explain renders the full EXPLAIN view: one line per atom in chosen
// execution order, with the planner's candidate estimate at the point
// the atom was picked and the index positions the executor will probe.
// mdq -explain and mdserve's ?explain=1 surface this text.
func (p *Plan) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan: %d atom(s), %d slot(s)\n", len(p.atoms), len(p.vars))
	for i := range p.atoms {
		pa := &p.atoms[i]
		fmt.Fprintf(&b, "  %d. ", i+1)
		p.writeAtom(&b, pa)
		fmt.Fprintf(&b, "  est≈%.1f rows", pa.est)
		if len(pa.groundPos) > 0 {
			fmt.Fprintf(&b, "  probe@%v", pa.groundPos)
		} else {
			b.WriteString("  scan")
		}
		b.WriteByte('\n')
	}
	return b.String()
}
