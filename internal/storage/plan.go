package storage

import (
	"fmt"
	"strings"

	"repro/internal/datalog"
)

// Plan is a compiled join plan for a positive conjunction: the atom
// order, the variable-to-register-slot assignment and the per-argument
// actions are all computed once at compile time, so executing the plan
// performs no map operations, no substitution cloning and no per-level
// slice allocation — candidate rows are filtered by integer
// comparisons against a flat []int32 register bank, with backtracking
// implemented as slot resets (an undo trail whose entries are known
// statically per atom).
//
// A plan is compiled against an instance (whose interner supplies the
// ids for the plan's constants and whose relation sizes break ordering
// ties) and may be executed against that instance or any instance
// sharing its interner — in particular every Clone, which is how the
// chase and eval engines reuse one plan across rounds. Executing
// against an instance with a different interner transparently falls
// back to the legacy Subst-based matcher.
type Plan struct {
	in   *datalog.Interner
	body []datalog.Atom // original conjunction, for fallback and display
	// vars assigns register slots: slot i holds the binding of vars[i]
	// (datalog.NoID when unbound).
	vars  []datalog.Term
	slots map[string]int // variable name -> slot
	atoms []planAtom     // in execution order
}

// planArg is one argument position of a plan atom.
type planArg struct {
	isConst bool
	id      int32 // interned constant id (isConst)
	slot    int   // register slot (!isConst)
}

// planAtom is one body atom, reordered and compiled.
type planAtom struct {
	pred  string
	arity int
	args  []planArg
	// groundPos lists argument positions known to be ground when this
	// atom executes (constants, or variables bound by earlier atoms or
	// declared bound at compile time); the executor probes the smallest
	// index bucket among them.
	groundPos []int
}

// unknownID is the compile-time id of a constant the interner has
// never seen in read-only (non-interning) mode. It is negative and
// distinct from datalog.NoID, so it can never equal a stored row
// value: atoms carrying it simply match nothing, which is exactly the
// semantics of a constant absent from the instance.
const unknownID int32 = -2

// CompilePlan compiles a join plan for the conjunction over db's
// interner. bound declares variables the caller will pre-bind in the
// registers before execution (e.g. the frontier variables of a TGD
// head check, or the pivot variables of a semi-naive delta pass);
// declaring them lets the planner order atoms as if they were
// constants. Atom order is greedy — most ground arguments first,
// smaller relations breaking ties — mirroring (and fixing) the legacy
// matcher's heuristic at plan time instead of per recursion level.
//
// CompilePlan interns the conjunction's constants, so ids stay stable
// while the instance grows — the right mode for the chase and eval
// engines, which compile against instances they own (see
// CloneDetached) and then insert into them. For evaluation over a
// fixed instance the caller does not own, use CompileQueryPlan, which
// leaves the interner untouched.
func CompilePlan(db *Instance, body []datalog.Atom, bound ...datalog.Term) *Plan {
	return compilePlan(db, body, bound, true)
}

// CompileQueryPlan compiles a read-only join plan: constants the
// instance has never seen become a never-matching sentinel instead of
// being interned, so compiling and executing the plan leaves the
// instance — including its interner — completely unmodified. Correct
// for fixed instances; do not use it when facts will be inserted
// between compilation and execution.
func CompileQueryPlan(db *Instance, body []datalog.Atom, bound ...datalog.Term) *Plan {
	return compilePlan(db, body, bound, false)
}

func compilePlan(db *Instance, body []datalog.Atom, bound []datalog.Term, intern bool) *Plan {
	p := &Plan{
		in:    db.in,
		body:  datalog.CloneAtoms(body),
		slots: map[string]int{},
	}
	for _, a := range body {
		for _, t := range a.Args {
			if t.IsVar() {
				if _, ok := p.slots[t.Name]; !ok {
					p.slots[t.Name] = len(p.vars)
					p.vars = append(p.vars, t)
				}
			}
		}
	}

	boundSlots := make([]bool, len(p.vars))
	for _, v := range bound {
		if s, ok := p.slots[v.Name]; ok {
			boundSlots[s] = true
		}
	}

	// Greedy ordering simulation.
	remaining := make([]datalog.Atom, len(body))
	copy(remaining, body)
	for len(remaining) > 0 {
		best, bestScore, bestSize := 0, -1, 0
		for i, a := range remaining {
			score := 0
			for _, t := range a.Args {
				if !t.IsVar() || boundSlots[p.slots[t.Name]] {
					score++
				}
			}
			size := 0
			if rel := db.relations[a.Pred]; rel != nil {
				size = rel.Len()
			}
			if score > bestScore || (score == bestScore && size < bestSize) {
				best, bestScore, bestSize = i, score, size
			}
		}
		chosen := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)

		pa := planAtom{pred: chosen.Pred, arity: len(chosen.Args)}
		pa.args = make([]planArg, len(chosen.Args))
		for pos, t := range chosen.Args {
			if t.IsVar() {
				slot := p.slots[t.Name]
				pa.args[pos] = planArg{slot: slot}
				if boundSlots[slot] {
					pa.groundPos = append(pa.groundPos, pos)
				}
				boundSlots[slot] = true
			} else {
				pa.args[pos] = planArg{isConst: true, id: p.constID(t, intern)}
				pa.groundPos = append(pa.groundPos, pos)
			}
		}
		p.atoms = append(p.atoms, pa)
	}
	return p
}

// constID resolves a ground term to an id at compile time: interning
// in engine mode, the never-matching sentinel for unseen terms in
// read-only mode.
func (p *Plan) constID(t datalog.Term, intern bool) int32 {
	if intern {
		return p.in.ID(t)
	}
	if id, ok := p.in.Lookup(t); ok {
		return id
	}
	return unknownID
}

// NumSlots returns the register bank size.
func (p *Plan) NumSlots() int { return len(p.vars) }

// Vars returns the plan's variables in slot order. The slice is owned
// by the plan.
func (p *Plan) Vars() []datalog.Term { return p.vars }

// Slot returns the register slot of variable v, or -1 when v does not
// occur in the plan's conjunction.
func (p *Plan) Slot(v datalog.Term) int {
	if s, ok := p.slots[v.Name]; ok {
		return s
	}
	return -1
}

// Interner returns the interner the plan's constants were compiled
// against.
func (p *Plan) Interner() *datalog.Interner { return p.in }

// Retarget returns a copy of the plan bound to a descendant interner
// (see datalog.Interner.DescendsFrom). Forks preserve every id the
// ancestor assigned, so the compiled constants and slot assignments
// stay valid; the copy shares the immutable compile artifacts (atom
// order, projections) with the original. This is how a prepared
// session re-homes plans compiled once against a base instance onto
// its own detached clone: Retarget is O(1) where recompiling is
// O(body). It panics when in does not descend from the plan's
// interner, since register values would be meaningless.
func (p *Plan) Retarget(in *datalog.Interner) *Plan {
	if in == p.in {
		return p
	}
	if !in.DescendsFrom(p.in) {
		panic("storage: Plan.Retarget onto unrelated interner")
	}
	out := *p
	out.in = in
	return &out
}

// NewRegs returns a fresh register bank with every slot unbound.
func (p *Plan) NewRegs() []int32 {
	regs := make([]int32, len(p.vars))
	for i := range regs {
		regs[i] = datalog.NoID
	}
	return regs
}

// ResetRegs marks every slot unbound, for register-bank reuse.
func (p *Plan) ResetRegs(regs []int32) {
	for i := range regs {
		regs[i] = datalog.NoID
	}
}

// Execute enumerates all homomorphisms of the conjunction into db,
// extending the bindings already present in regs (slots holding
// datalog.NoID are free). fn is invoked once per complete match with
// the filled register bank; it must not retain regs, which is reused.
// fn returning false stops enumeration; Execute reports whether
// enumeration ran to completion. On return, regs holds exactly its
// initial bindings again.
//
// db must share the plan's interner (true for the compile instance and
// all its clones); Execute panics otherwise, since raw register values
// would be meaningless. Use Run for the checked, Subst-based entry
// point.
//
// Execute only reads db: any number of goroutines may execute plans
// (each with its own register bank) against one instance concurrently,
// provided nothing mutates the instance or interns new terms for the
// duration — the discipline the parallel chase/eval rounds follow by
// staging all insertions into per-worker Batches and merging them
// after the workers join.
func (p *Plan) Execute(db *Instance, regs []int32, fn func(regs []int32) bool) bool {
	if db.in != p.in {
		panic("storage: Plan.Execute on instance with foreign interner")
	}
	return p.exec(db, 0, regs, fn)
}

// ExecuteShard enumerates the subset of Execute's matches whose
// first-atom candidate row falls in the shard-th of nshards contiguous
// slices of the first atom's candidate list. Shards partition the
// match set: concatenating the matches of shards 0..nshards-1 yields
// exactly Execute's matches in Execute's order, which is how parallel
// engines split one plan across workers while keeping a deterministic
// merge order. Like Execute it only reads db; each worker passes its
// own register bank.
func (p *Plan) ExecuteShard(db *Instance, regs []int32, shard, nshards int, fn func(regs []int32) bool) bool {
	if db.in != p.in {
		panic("storage: Plan.ExecuteShard on instance with foreign interner")
	}
	if nshards <= 1 {
		return p.exec(db, 0, regs, fn)
	}
	if len(p.atoms) == 0 {
		// A zero-atom plan has exactly one (empty) match; shard 0 owns it.
		if shard == 0 {
			return fn(regs)
		}
		return true
	}
	pa := &p.atoms[0]
	rel := db.relations[pa.pred]
	if rel == nil || rel.schema.Arity() != pa.arity {
		return true
	}
	bucket, haveBucket := p.candidates(rel, pa, regs)
	n := len(rel.rows)
	if haveBucket {
		n = len(bucket)
	}
	lo, hi := shard*n/nshards, (shard+1)*n/nshards
	for i := lo; i < hi; i++ {
		idx := i
		if haveBucket {
			idx = bucket[i]
		}
		if !p.tryRow(db, pa, 0, rel.rows[idx], regs, fn) {
			return false
		}
	}
	return true
}

// candidates returns the candidate row list for atom pa under regs:
// the smallest index bucket among pa's ground positions (positions
// beyond the compile-time groundPos may also be ground — callers can
// seed extra slots — and are checked per row either way), or
// haveBucket=false meaning every row must be scanned. It is the one
// shared implementation behind exec's per-level probe and
// ExecuteShard's partition, so a shard always slices exactly the list
// exec would walk — the invariant the parallel engines' determinism
// rests on.
func (p *Plan) candidates(rel *Relation, pa *planAtom, regs []int32) (bucket []int, haveBucket bool) {
	for _, pos := range pa.groundPos {
		a := pa.args[pos]
		id := a.id
		if !a.isConst {
			id = regs[a.slot]
			if id == datalog.NoID {
				continue // declared bound but not seeded: treat as free
			}
		}
		b := rel.indexes[pos][id]
		if !haveBucket || len(b) < len(bucket) {
			bucket, haveBucket = b, true
		}
		if len(bucket) == 0 {
			break // empty bucket: nothing can match
		}
	}
	return bucket, haveBucket
}

func (p *Plan) exec(db *Instance, ai int, regs []int32, fn func([]int32) bool) bool {
	if ai == len(p.atoms) {
		return fn(regs)
	}
	pa := &p.atoms[ai]
	rel := db.relations[pa.pred]
	if rel == nil || rel.schema.Arity() != pa.arity {
		return true // no facts can match; enumeration is (vacuously) complete
	}
	bucket, haveBucket := p.candidates(rel, pa, regs)
	if haveBucket {
		for _, idx := range bucket {
			if !p.tryRow(db, pa, ai, rel.rows[idx], regs, fn) {
				return false
			}
		}
		return true
	}
	for idx := range rel.rows {
		if !p.tryRow(db, pa, ai, rel.rows[idx], regs, fn) {
			return false
		}
	}
	return true
}

// tryRow matches one candidate row against the atom's arguments,
// binding free slots, and recurses into the rest of the plan. Slots
// bound here are reset before returning (static undo trail).
func (p *Plan) tryRow(db *Instance, pa *planAtom, ai int, row []int32, regs []int32, fn func([]int32) bool) bool {
	var trail [16]int
	bound := trail[:0]
	if len(pa.args) > len(trail) {
		bound = make([]int, 0, len(pa.args))
	}
	ok := true
	for pos := range pa.args {
		a := &pa.args[pos]
		if a.isConst {
			if row[pos] != a.id {
				ok = false
				break
			}
			continue
		}
		if v := regs[a.slot]; v != datalog.NoID {
			if row[pos] != v {
				ok = false
				break
			}
			continue
		}
		regs[a.slot] = row[pos]
		bound = append(bound, a.slot)
	}
	complete := true
	if ok {
		complete = p.exec(db, ai+1, regs, fn)
	}
	for _, s := range bound {
		regs[s] = datalog.NoID
	}
	return complete
}

// Run enumerates the conjunction's homomorphisms extending the initial
// substitution, invoking fn with a Subst per match — the thin adapter
// that keeps compiled plans source-compatible with the legacy
// MatchConjunction API. It falls back to the legacy matcher when db
// does not share the plan's interner or when init binds a plan
// variable to a non-ground term (variable renamings are outside the
// register representation).
func (p *Plan) Run(db *Instance, init datalog.Subst, fn func(datalog.Subst) bool) bool {
	if db.in != p.in {
		return db.MatchConjunction(p.body, init, fn)
	}
	regs := p.NewRegs()
	for i, v := range p.vars {
		t := init.Apply(v)
		if t == v {
			continue // unbound
		}
		if !t.IsGround() {
			return db.MatchConjunction(p.body, init, fn)
		}
		if id, ok := p.in.Lookup(t); ok {
			regs[i] = id
		} else {
			// A term no row can hold: the variable occurs in some body
			// atom, so no homomorphism exists. Seeding the sentinel
			// makes every candidate row fail without interning the
			// term.
			regs[i] = unknownID
		}
	}
	return p.Execute(db, regs, func(rs []int32) bool {
		return fn(p.SubstAt(rs, init))
	})
}

// SubstAt materializes the register bank as a substitution extending
// base (base itself is not modified).
func (p *Plan) SubstAt(regs []int32, base datalog.Subst) datalog.Subst {
	out := base.Clone()
	for i, v := range p.vars {
		if regs[i] != datalog.NoID {
			out.Bind(v.Name, p.in.TermOf(regs[i]))
		}
	}
	return out
}

// TermAt resolves the plan term t under the register bank: constants
// and nulls resolve to themselves, bound plan variables to their
// register value, anything else to t itself.
func (p *Plan) TermAt(regs []int32, t datalog.Term) datalog.Term {
	if !t.IsVar() {
		return t
	}
	if s, ok := p.slots[t.Name]; ok && regs[s] != datalog.NoID {
		return p.in.TermOf(regs[s])
	}
	return t
}

// Proj is a compiled projection from a plan's register bank onto the
// argument row of one atom: each item is either an interned constant
// or a register slot. Evaluation engines use projections to build
// derived rows, probe negated atoms and seed delta pivots without
// materializing atoms or substitutions.
type Proj struct {
	Pred  string
	items []planArg
}

// CompileProj compiles atom a against the plan's register space,
// interning a's constants (engine mode: the projected rows will be
// inserted, so ids must be real). Every variable of a must occur in
// the plan's conjunction (rule safety guarantees this for heads and
// negated atoms); CompileProj panics otherwise.
func (p *Plan) CompileProj(a datalog.Atom) Proj {
	return p.compileProj(a, true)
}

// CompileProbe compiles atom a for membership probes only, without
// interning: constants the instance has never seen become the
// never-matching sentinel, so ContainsRow on the projected row is
// false — the correct closed-world answer — and the instance stays
// unmodified.
func (p *Plan) CompileProbe(a datalog.Atom) Proj {
	return p.compileProj(a, false)
}

func (p *Plan) compileProj(a datalog.Atom, intern bool) Proj {
	items := make([]planArg, len(a.Args))
	for i, t := range a.Args {
		if t.IsVar() {
			s := p.Slot(t)
			if s < 0 {
				panic(fmt.Sprintf("storage: projection variable %s not in plan", t))
			}
			items[i] = planArg{slot: s}
		} else {
			items[i] = planArg{isConst: true, id: p.constID(t, intern)}
		}
	}
	return Proj{Pred: a.Pred, items: items}
}

// Len returns the projected row arity.
func (pr *Proj) Len() int { return len(pr.items) }

// Project fills dst (len == Len()) with the atom's row under regs.
func (pr *Proj) Project(regs []int32, dst []int32) {
	for i, it := range pr.items {
		if it.isConst {
			dst[i] = it.id
		} else {
			dst[i] = regs[it.slot]
		}
	}
}

// Bind seeds regs from a concrete row of the projected atom, the
// reverse of Project: constants are checked against the row, variable
// slots are bound (or checked when already bound, which also handles
// repeated variables). It reports false when the row cannot match.
func (pr *Proj) Bind(row []int32, regs []int32) bool {
	for i, it := range pr.items {
		if it.isConst {
			if row[i] != it.id {
				return false
			}
			continue
		}
		if v := regs[it.slot]; v != datalog.NoID && v != row[i] {
			return false
		}
		regs[it.slot] = row[i]
	}
	return true
}

// String renders the plan's atom order and slot assignment, for tests
// and EXPLAIN-style debugging.
func (p *Plan) String() string {
	var b strings.Builder
	b.WriteString("plan[")
	for i, pa := range p.atoms {
		if i > 0 {
			b.WriteString(" ⋈ ")
		}
		b.WriteString(pa.pred)
		b.WriteByte('(')
		for j, a := range pa.args {
			if j > 0 {
				b.WriteByte(',')
			}
			if a.isConst {
				b.WriteString(p.in.TermOf(a.id).String())
			} else {
				fmt.Fprintf(&b, "r%d", a.slot)
			}
		}
		b.WriteByte(')')
	}
	b.WriteByte(']')
	return b.String()
}
