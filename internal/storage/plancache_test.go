package storage

import (
	"reflect"
	"testing"

	dl "repro/internal/datalog"
)

func cacheTestBody() []dl.Atom {
	return []dl.Atom{
		dl.A("R0", dl.V("c"), dl.V("x")),
		dl.A("Up", dl.V("p"), dl.V("c")),
	}
}

func TestShapeKeyAlphaEquivalence(t *testing.T) {
	a := []dl.Atom{dl.A("P", dl.V("x"), dl.V("y")), dl.A("Q", dl.V("y"), dl.C("k"))}
	b := []dl.Atom{dl.A("P", dl.V("u"), dl.V("v")), dl.A("Q", dl.V("v"), dl.C("k"))}
	if ShapeKey(a) != ShapeKey(b) {
		t.Errorf("α-equivalent bodies got distinct keys:\n%s\n%s", ShapeKey(a), ShapeKey(b))
	}
	// A different constant is a different query.
	c := []dl.Atom{dl.A("P", dl.V("u"), dl.V("v")), dl.A("Q", dl.V("v"), dl.C("k2"))}
	if ShapeKey(a) == ShapeKey(c) {
		t.Error("distinct constants share a key")
	}
	// A different variable pattern (join vs no join) is too.
	d := []dl.Atom{dl.A("P", dl.V("u"), dl.V("v")), dl.A("Q", dl.V("w"), dl.C("k"))}
	if ShapeKey(a) == ShapeKey(d) {
		t.Error("distinct join patterns share a key")
	}
}

func TestPlanCacheHitAcrossSiblingSnapshots(t *testing.T) {
	db := planTestInstance(t)
	pc := NewPlanCache(8)
	body := cacheTestBody()
	vars := dl.VarsOfAtoms(body)

	snap1 := db.Snapshot()
	p1 := pc.QueryPlan(snap1, body)
	want := collectRun(p1, snap1, dl.NewSubst(), vars)
	if h, m, e := pc.Stats(); h != 0 || m != 1 || e != 0 {
		t.Fatalf("after first query: hits=%d misses=%d evictions=%d, want 0/1/0", h, m, e)
	}

	// A sibling snapshot of the unchanged instance must hit, and the
	// rebound plan must produce identical answers.
	snap2 := db.Snapshot()
	p2 := pc.QueryPlan(snap2, body)
	if got := collectRun(p2, snap2, dl.NewSubst(), vars); !reflect.DeepEqual(got, want) {
		t.Errorf("cached plan answers %v, want %v", got, want)
	}
	if h, m, _ := pc.Stats(); h != 1 || m != 1 {
		t.Errorf("after sibling query: hits=%d misses=%d, want 1/1", h, m)
	}

	// An α-variant of the same query shares the entry.
	renamed := []dl.Atom{
		dl.A("R0", dl.V("cc"), dl.V("xx")),
		dl.A("Up", dl.V("pp"), dl.V("cc")),
	}
	p3 := pc.QueryPlan(snap2, renamed)
	if got := collectRun(p3, snap2, dl.NewSubst(), dl.VarsOfAtoms(renamed)); len(got) != len(want) {
		t.Errorf("α-variant answers %d rows, want %d", len(got), len(want))
	}
	if h, _, _ := pc.Stats(); h != 2 {
		t.Errorf("α-variant did not hit: hits=%d, want 2", h)
	}
}

func TestPlanCacheStaleEntryDropped(t *testing.T) {
	db := planTestInstance(t)
	pc := NewPlanCache(8)
	body := cacheTestBody()
	vars := dl.VarsOfAtoms(body)

	pc.QueryPlan(db.Snapshot(), body)

	// Growing the instance invalidates the entry (row count and
	// interner length both moved): next lookup recompiles.
	db.MustInsert("Up", dl.C("p9"), dl.C("c9"))
	snap := db.Snapshot()
	p := pc.QueryPlan(snap, body)
	got := collectRun(p, snap, dl.NewSubst(), vars)
	want := collectLegacy(snap, body, dl.NewSubst(), vars)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("post-growth answers %v, want %v", got, want)
	}
	if h, m, _ := pc.Stats(); h != 0 || m != 2 {
		t.Errorf("stale entry served: hits=%d misses=%d, want 0/2", h, m)
	}
	// The refreshed entry hits again.
	pc.QueryPlan(db.Snapshot(), body)
	if h, _, _ := pc.Stats(); h != 1 {
		t.Errorf("refreshed entry missed: hits=%d, want 1", h)
	}
}

func TestPlanCacheEviction(t *testing.T) {
	db := planTestInstance(t)
	pc := NewPlanCache(2)
	snap := db.Snapshot()
	bodies := [][]dl.Atom{
		{dl.A("R0", dl.V("c"), dl.V("x"))},
		{dl.A("Up", dl.V("p"), dl.V("c"))},
		{dl.A("R0", dl.V("c"), dl.C("a"))},
	}
	for _, b := range bodies {
		pc.QueryPlan(snap, b)
	}
	if h, m, e := pc.Stats(); h != 0 || m != 3 || e != 1 {
		t.Fatalf("hits=%d misses=%d evictions=%d, want 0/3/1", h, m, e)
	}
	// The least recently used entry (the first body) was evicted.
	pc.QueryPlan(snap, bodies[0])
	if _, m, _ := pc.Stats(); m != 4 {
		t.Errorf("evicted entry still served: misses=%d, want 4", m)
	}
	// The most recent one survives.
	pc.QueryPlan(snap, bodies[2])
	if h, _, _ := pc.Stats(); h != 1 {
		t.Errorf("resident entry missed: hits=%d, want 1", h)
	}
}

func TestPlanCacheBypassesLiveInstances(t *testing.T) {
	db := planTestInstance(t)
	pc := NewPlanCache(8)
	body := cacheTestBody()
	// A mutable instance is never cached — its interner and data can
	// move under a cached plan.
	p := pc.QueryPlan(db, body)
	if p == nil {
		t.Fatal("nil plan for live instance")
	}
	if h, m, e := pc.Stats(); h != 0 || m != 0 || e != 0 {
		t.Errorf("live instance touched the cache: %d/%d/%d", h, m, e)
	}
	// A nil cache degrades to a plain compile.
	var nilCache *PlanCache
	if nilCache.QueryPlan(db.Snapshot(), body) == nil {
		t.Error("nil cache returned nil plan")
	}
}
