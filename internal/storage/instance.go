package storage

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/datalog"
)

// Instance is a database instance: a collection of relations by name.
// Relations are created explicitly (with attribute names) or implicitly
// on first insert (with synthesized attribute names). All relations of
// an instance share one term interner, so interned rows and compiled
// join plans are valid across the whole instance (and across clones,
// which share the interner too).
type Instance struct {
	relations map[string]*Relation
	order     []string // creation order, for deterministic iteration
	in        *datalog.Interner
	// frozen marks an immutable snapshot (see Snapshot): relation
	// creation and every tuple mutation fail.
	frozen bool
}

// NewInstance returns an empty instance.
func NewInstance() *Instance {
	return &Instance{relations: map[string]*Relation{}, in: datalog.NewInterner()}
}

// NewInstanceWith returns an empty instance over the given interner.
// The persistence layer uses it to materialize decoded snapshots
// against a fork of a live prepared base, so restored rows keep the
// exact ids the compiled plans were built against.
func NewInstanceWith(in *datalog.Interner) *Instance {
	return &Instance{relations: map[string]*Relation{}, in: in}
}

// Interner returns the instance's shared term interner.
func (db *Instance) Interner() *datalog.Interner { return db.in }

// CreateRelation registers an empty relation. It errors if the name is
// taken with a different schema.
func (db *Instance) CreateRelation(name string, attrs ...string) (*Relation, error) {
	if rel, ok := db.relations[name]; ok {
		if rel.Schema().Arity() != len(attrs) {
			return nil, fmt.Errorf("storage: relation %s already exists with arity %d", name, rel.Schema().Arity())
		}
		return rel, nil
	}
	if db.frozen {
		return nil, fmt.Errorf("storage: cannot create relation %s in a frozen snapshot", name)
	}
	rel := newRelation(Schema{Name: name, Attrs: attrs}, db.in)
	db.relations[name] = rel
	db.order = append(db.order, name)
	return rel, nil
}

// Relation returns the named relation, or nil if absent.
func (db *Instance) Relation(name string) *Relation { return db.relations[name] }

// RelationNames returns the relation names in creation order.
func (db *Instance) RelationNames() []string {
	out := make([]string, len(db.order))
	copy(out, db.order)
	return out
}

// ensure returns the relation, creating it with synthetic attribute
// names a0..aN-1 if needed.
func (db *Instance) ensure(name string, arity int) (*Relation, error) {
	if rel, ok := db.relations[name]; ok {
		if rel.Schema().Arity() != arity {
			return nil, fmt.Errorf("storage: relation %s has arity %d, got tuple of arity %d", name, rel.Schema().Arity(), arity)
		}
		return rel, nil
	}
	attrs := make([]string, arity)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("a%d", i)
	}
	rel, err := db.CreateRelation(name, attrs...)
	if err != nil {
		return nil, err
	}
	return rel, nil
}

// Insert adds a ground tuple to the named relation, creating the
// relation if necessary. It reports whether the tuple was new.
func (db *Instance) Insert(name string, tuple ...datalog.Term) (bool, error) {
	rel, err := db.ensure(name, len(tuple))
	if err != nil {
		return false, err
	}
	return rel.Insert(tuple)
}

// InsertAtom adds a ground atom as a tuple.
func (db *Instance) InsertAtom(a datalog.Atom) (bool, error) {
	if !a.IsGround() {
		return false, fmt.Errorf("storage: atom %s is not ground", a)
	}
	return db.Insert(a.Pred, a.Args...)
}

// MustInsert inserts and panics on error; for test and example setup
// where schemas are static.
func (db *Instance) MustInsert(name string, tuple ...datalog.Term) {
	if _, err := db.Insert(name, tuple...); err != nil {
		panic(err)
	}
}

// ContainsAtom reports whether the ground atom is present.
func (db *Instance) ContainsAtom(a datalog.Atom) bool {
	rel := db.relations[a.Pred]
	if rel == nil {
		return false
	}
	return rel.Contains(a.Args)
}

// InsertRow adds a tuple of interned term ids to the named relation,
// creating the relation if necessary. The ids must come from this
// instance's interner; the slice is copied.
func (db *Instance) InsertRow(name string, ids []int32) (bool, error) {
	rel, err := db.ensure(name, len(ids))
	if err != nil {
		return false, err
	}
	return rel.InsertRow(ids)
}

// ContainsRow reports whether the named relation holds the row of
// interned term ids.
func (db *Instance) ContainsRow(name string, ids []int32) bool {
	rel := db.relations[name]
	if rel == nil {
		return false
	}
	return rel.ContainsRow(ids)
}

// DeleteAtom removes the ground atom if present.
func (db *Instance) DeleteAtom(a datalog.Atom) bool {
	rel := db.relations[a.Pred]
	if rel == nil {
		return false
	}
	return rel.Delete(a.Args)
}

// TotalTuples returns the number of tuples across all relations.
func (db *Instance) TotalTuples() int {
	n := 0
	for _, rel := range db.relations {
		n += rel.Len()
	}
	return n
}

// Clone returns a deep copy of the instance's data in O(rows): every
// relation is bulk-copied (see Relation.Clone). The term interner is
// shared with the parent — ids stay compatible with plans compiled
// against either — which means a clone and its parent (or two clones)
// must not be mutated from different goroutines without external
// synchronization, even though their tuple data is independent.
func (db *Instance) Clone() *Instance {
	out := &Instance{
		relations: make(map[string]*Relation, len(db.relations)),
		order:     append([]string(nil), db.order...),
		in:        db.in,
	}
	for _, name := range db.order {
		out.relations[name] = db.relations[name].Clone()
	}
	return out
}

// Snapshot returns a frozen, immutable view of the instance that
// shares tuple storage with the live relations (copy-on-write: the
// first mutation of a live relation after a snapshot copies its
// storage, so the snapshot's view never changes). The snapshot gets a
// forked interner, so concurrent readers of the snapshot never race
// with a writer interning new terms into the live instance. Taking a
// snapshot is O(relations + interned terms), independent of the number
// of tuples.
//
// Concurrency contract: Snapshot must be called from the (single)
// writer goroutine — or with the writer quiescent — after which the
// snapshot may be read freely from any number of goroutines while the
// writer keeps mutating the live instance.
func (db *Instance) Snapshot() *Instance {
	out := &Instance{
		relations: make(map[string]*Relation, len(db.relations)),
		order:     append([]string(nil), db.order...),
		in:        db.in.Fork(),
		frozen:    true,
	}
	for _, name := range db.order {
		out.relations[name] = db.relations[name].snapshot(out.in)
	}
	return out
}

// Frozen reports whether the instance is an immutable snapshot.
func (db *Instance) Frozen() bool { return db.frozen }

// CloneDetached returns a deep copy with its own forked interner: the
// clone can intern new symbols (invented nulls, derived constants)
// without touching the parent's interner. The chase and eval engines
// use it for their output instances, so their inputs stay completely
// unmodified. Existing ids are preserved, so rows — and plans compiled
// against the clone — remain valid.
func (db *Instance) CloneDetached() *Instance {
	out := db.Clone()
	out.in = db.in.Fork()
	for _, rel := range out.relations {
		rel.in = out.in
	}
	return out
}

// ReplaceTerm rewrites old to new across all relations, returning the
// number of modified tuples. Used for EGD enforcement (null merging).
func (db *Instance) ReplaceTerm(old, new datalog.Term) int {
	return db.ReplaceTerms(map[datalog.Term]datalog.Term{old: new})
}

// ReplaceTerms applies a batch of term rewrites across all relations in
// one pass per relation (one index rebuild each), returning the number
// of modified tuples. The chase uses it to enforce a whole EGD merge
// cascade with a single rebuild.
func (db *Instance) ReplaceTerms(repl map[datalog.Term]datalog.Term) int {
	n := 0
	for _, rel := range db.relations {
		n += rel.ReplaceTerms(repl)
	}
	return n
}

// MatchAtom finds all extensions of s that map pattern into a fact of
// the instance, invoking fn for each; fn returning false stops the
// enumeration early. It reports whether enumeration ran to completion.
func (db *Instance) MatchAtom(pattern datalog.Atom, s datalog.Subst, fn func(datalog.Subst) bool) bool {
	rel := db.relations[pattern.Pred]
	if rel == nil || rel.Schema().Arity() != len(pattern.Args) {
		return true
	}
	for _, idx := range rel.matchCandidates(pattern, s) {
		fact := datalog.Atom{Pred: pattern.Pred, Args: rel.tuples[idx]}
		if ext, ok := datalog.Match(pattern, fact, s); ok {
			if !fn(ext) {
				return false
			}
		}
	}
	return true
}

// MatchConjunction enumerates the homomorphisms of the positive
// conjunction body into the instance, extending s. Atoms are matched in
// a greedy order: at each step the atom with the most arguments already
// ground under the current substitution is chosen, which lets the
// per-position indexes prune effectively. fn returning false stops
// enumeration; the return value reports whether enumeration completed.
func (db *Instance) MatchConjunction(body []datalog.Atom, s datalog.Subst, fn func(datalog.Subst) bool) bool {
	remaining := make([]datalog.Atom, len(body))
	copy(remaining, body)
	return db.matchRest(remaining, s, fn)
}

func (db *Instance) matchRest(remaining []datalog.Atom, s datalog.Subst, fn func(datalog.Subst) bool) bool {
	if len(remaining) == 0 {
		return fn(s)
	}
	// Pick the atom with the highest number of ground arguments under s.
	best, bestScore, bestSize := 0, -1, 0
	for i, a := range remaining {
		score := 0
		for _, t := range a.Args {
			if s.Apply(t).IsGround() {
				score++
			}
		}
		size := 0
		if rel := db.relations[a.Pred]; rel != nil {
			size = rel.Len()
		}
		// Prefer smaller relations on ties to shrink the branching early.
		if score > bestScore || (score == bestScore && size < bestSize) {
			best, bestScore, bestSize = i, score, size
		}
	}
	chosen := remaining[best]
	rest := make([]datalog.Atom, 0, len(remaining)-1)
	rest = append(rest, remaining[:best]...)
	rest = append(rest, remaining[best+1:]...)
	return db.MatchAtom(chosen, s, func(ext datalog.Subst) bool {
		return db.matchRest(rest, ext, fn)
	})
}

// HasMatch reports whether the conjunction has at least one
// homomorphism into the instance extending s.
func (db *Instance) HasMatch(body []datalog.Atom, s datalog.Subst) bool {
	found := false
	db.MatchConjunction(body, s, func(datalog.Subst) bool {
		found = true
		return false
	})
	return found
}

// Merge copies every tuple of src into dst, creating relations as
// needed (attribute names are taken from src when the relation is
// new). It errors on arity conflicts.
func Merge(dst, src *Instance) error {
	for _, name := range src.RelationNames() {
		rel := src.Relation(name)
		if _, err := dst.CreateRelation(name, rel.Schema().Attrs...); err != nil {
			return err
		}
		for _, tup := range rel.Tuples() {
			if _, err := dst.Insert(name, tup...); err != nil {
				return err
			}
		}
	}
	return nil
}

// Diff returns the tuples of db not present in other, as ground atoms,
// across all relations of db.
func (db *Instance) Diff(other *Instance) []datalog.Atom {
	var out []datalog.Atom
	for _, name := range db.order {
		rel := db.relations[name]
		orel := other.relations[name]
		for _, tup := range rel.Tuples() {
			if orel == nil || !orel.Contains(tup) {
				out = append(out, datalog.Atom{Pred: name, Args: datalog.CloneTerms(tup)})
			}
		}
	}
	return out
}

// Equal reports whether both instances hold exactly the same tuples.
func (db *Instance) Equal(other *Instance) bool {
	return len(db.Diff(other)) == 0 && len(other.Diff(db)) == 0
}

// String renders every relation as a formatted table, sorted by
// relation name.
func (db *Instance) String() string {
	names := make([]string, len(db.order))
	copy(names, db.order)
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		b.WriteString(FormatRelation(db.relations[name]))
		b.WriteByte('\n')
	}
	return b.String()
}
