// Package storage implements the in-memory relational substrate the
// ontologies run on: named relations of ground tuples (constants and
// labeled nulls), per-position hash indexes, homomorphism search for
// conjunctions, and utilities for diffing and pretty-printing that the
// experiment harness uses to regenerate the paper's tables.
package storage

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/datalog"
)

// Schema describes a relation: its name and attribute names. Attribute
// names are carried for documentation and table printing; matching is
// positional.
type Schema struct {
	Name  string
	Attrs []string
}

// Arity returns the number of attributes.
func (s Schema) Arity() int { return len(s.Attrs) }

// String renders the schema as Name(attr1, ..., attrN).
func (s Schema) String() string {
	return s.Name + "(" + strings.Join(s.Attrs, ", ") + ")"
}

// Relation is a set of ground tuples under a schema, with hash indexes
// on every position maintained incrementally. Tuples are deduplicated.
type Relation struct {
	schema  Schema
	tuples  [][]datalog.Term
	keys    map[string]int           // tuple key -> index into tuples
	indexes []map[datalog.Term][]int // position -> value -> tuple indices
}

// NewRelation creates an empty relation.
func NewRelation(schema Schema) *Relation {
	r := &Relation{
		schema: schema,
		keys:   map[string]int{},
	}
	r.indexes = make([]map[datalog.Term][]int, schema.Arity())
	for i := range r.indexes {
		r.indexes[i] = map[datalog.Term][]int{}
	}
	return r
}

// Schema returns the relation schema.
func (r *Relation) Schema() Schema { return r.schema }

// Name returns the relation name.
func (r *Relation) Name() string { return r.schema.Name }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

func tupleKey(tuple []datalog.Term) string {
	var b strings.Builder
	for _, t := range tuple {
		b.WriteByte(byte('0' + t.Kind))
		b.WriteString(t.Name)
		b.WriteByte(0)
	}
	return b.String()
}

// Insert adds a ground tuple. It returns true if the tuple was new, and
// an error on arity mismatch or non-ground terms.
func (r *Relation) Insert(tuple []datalog.Term) (bool, error) {
	if len(tuple) != r.schema.Arity() {
		return false, fmt.Errorf("storage: %s expects %d attributes, got %d", r.schema.Name, r.schema.Arity(), len(tuple))
	}
	for _, t := range tuple {
		if t.IsVar() {
			return false, fmt.Errorf("storage: cannot insert non-ground tuple into %s: %v", r.schema.Name, datalog.TermsString(tuple))
		}
	}
	k := tupleKey(tuple)
	if _, dup := r.keys[k]; dup {
		return false, nil
	}
	idx := len(r.tuples)
	stored := datalog.CloneTerms(tuple)
	r.tuples = append(r.tuples, stored)
	r.keys[k] = idx
	for pos, t := range stored {
		r.indexes[pos][t] = append(r.indexes[pos][t], idx)
	}
	return true, nil
}

// Contains reports whether the ground tuple is present.
func (r *Relation) Contains(tuple []datalog.Term) bool {
	if len(tuple) != r.schema.Arity() {
		return false
	}
	_, ok := r.keys[tupleKey(tuple)]
	return ok
}

// Delete removes a ground tuple if present, reporting whether it was.
// Deletion rebuilds the relation's indexes; it is intended for
// low-frequency cleaning operations, not hot loops.
func (r *Relation) Delete(tuple []datalog.Term) bool {
	k := tupleKey(tuple)
	idx, ok := r.keys[k]
	if !ok {
		return false
	}
	r.tuples = append(r.tuples[:idx], r.tuples[idx+1:]...)
	r.rebuild()
	return true
}

// rebuild reconstructs key and index maps from the tuple slice.
func (r *Relation) rebuild() {
	r.keys = make(map[string]int, len(r.tuples))
	for i := range r.indexes {
		r.indexes[i] = map[datalog.Term][]int{}
	}
	// Deduplicate in place, preserving first occurrence order.
	dedup := r.tuples[:0]
	for _, tup := range r.tuples {
		k := tupleKey(tup)
		if _, dup := r.keys[k]; dup {
			continue
		}
		idx := len(dedup)
		dedup = append(dedup, tup)
		r.keys[k] = idx
		for pos, t := range tup {
			r.indexes[pos][t] = append(r.indexes[pos][t], idx)
		}
	}
	r.tuples = dedup
}

// Tuples returns the tuples in insertion order. The slice and its
// elements are owned by the relation; callers must not modify them.
func (r *Relation) Tuples() [][]datalog.Term { return r.tuples }

// SortedTuples returns a copy of the tuples sorted lexicographically,
// for deterministic display.
func (r *Relation) SortedTuples() [][]datalog.Term {
	out := make([][]datalog.Term, len(r.tuples))
	copy(out, r.tuples)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if c := a[k].Compare(b[k]); c != 0 {
				return c < 0
			}
		}
		return len(a) < len(b)
	})
	return out
}

// ReplaceTerm rewrites every occurrence of old with new, deduplicating
// the result. It returns the number of tuples modified. It is the
// primitive used when the chase enforces an EGD by merging a labeled
// null into another term.
func (r *Relation) ReplaceTerm(old, new datalog.Term) int {
	changed := 0
	seen := map[int]bool{}
	for pos := range r.indexes {
		for _, idx := range r.indexes[pos][old] {
			if !seen[idx] {
				seen[idx] = true
			}
		}
	}
	if len(seen) == 0 {
		return 0
	}
	for idx := range seen {
		tup := r.tuples[idx]
		for i, t := range tup {
			if t == old {
				tup[i] = new
			}
		}
		changed++
	}
	r.rebuild()
	return changed
}

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	out := NewRelation(r.schema)
	for _, tup := range r.tuples {
		if _, err := out.Insert(tup); err != nil {
			// Tuples in a relation are always well-formed.
			panic("storage: clone insert failed: " + err.Error())
		}
	}
	return out
}

// matchCandidates returns the indices of tuples that can possibly match
// the pattern atom under the substitution: it picks the ground argument
// position with the smallest index bucket, or all tuples when no
// argument is ground.
func (r *Relation) matchCandidates(pattern datalog.Atom, s datalog.Subst) []int {
	best := -1
	var bestBucket []int
	for pos, t := range pattern.Args {
		rt := s.Apply(t)
		if !rt.IsGround() {
			continue
		}
		bucket := r.indexes[pos][rt]
		if best == -1 || len(bucket) < len(bestBucket) {
			best = pos
			bestBucket = bucket
		}
	}
	if best == -1 {
		all := make([]int, len(r.tuples))
		for i := range all {
			all[i] = i
		}
		return all
	}
	return bestBucket
}
